package kshot

import (
	"context"
	"testing"
	"time"

	"kshot/internal/evalharness"
)

// TestRQ1AllCVEs is the paper's primary applicability result (§VI-B):
// every one of the 30 Table I CVE patches applies correctly — the
// exploit works before, fails after, the kernel stays healthy, and
// rollback restores the original behaviour.
func TestRQ1AllCVEs(t *testing.T) {
	if testing.Short() {
		t.Skip("RQ1 sweep skipped in -short mode")
	}
	rows, err := evalharness.RunRQ1("4.4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("ran %d CVEs, want 30", len(rows))
	}
	passed := 0
	for _, r := range rows {
		if r.Passed() {
			passed++
			continue
		}
		t.Errorf("%s (type %s): before=%v after=%v healthy=%v rollback=%v",
			r.CVE, r.Types, r.VulnBefore, r.VulnAfter, r.KernelHealthy, r.RollbackWorked)
	}
	if passed != 30 {
		t.Errorf("RQ1: %d/30 passed", passed)
	}
	// The paper's headline pause claim: ~50µs for ~1KB patches; all
	// of our (sub-4KB) benchmark patches must pause well under 1ms.
	for _, r := range rows {
		if r.PauseVirtual > time.Millisecond {
			t.Errorf("%s: OS pause %v above scale", r.CVE, r.PauseVirtual)
		}
	}
}

// TestPublicAPIQuickstart exercises the package-level API end to end,
// mirroring examples/quickstart.
func TestPublicAPIQuickstart(t *testing.T) {
	entry, ok := LookupCVE("CVE-2016-5195") // Dirty COW
	if !ok {
		t.Fatal("benchmark registry missing Dirty COW")
	}
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := NewSystem(Options{
		Version:    "4.4",
		ExtraFiles: map[string]string{entry.File: entry.Vuln},
		ServerAddr: srv.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	res, err := entry.Exploit(sys.Kernel, 0)
	if err != nil || !res.Vulnerable {
		t.Fatalf("expected vulnerable kernel: %+v %v", res, err)
	}
	rep, err := sys.Apply(context.Background(), entry.CVE)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages.SMMTotal() <= 0 {
		t.Error("no pause recorded")
	}
	res, err = entry.Exploit(sys.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("Dirty COW still exploitable after live patch")
	}
}

func TestPublicAPIRegistry(t *testing.T) {
	if len(CVEList()) != 30 {
		t.Errorf("CVEList = %d entries", len(CVEList()))
	}
	if len(FigureCVEs()) != 6 {
		t.Errorf("FigureCVEs = %d entries", len(FigureCVEs()))
	}
	if _, ok := LookupCVE("CVE-0000-0000"); ok {
		t.Error("bogus CVE resolved")
	}
	tree, err := BaseKernelTree("3.14")
	if err != nil || len(tree.Files()) == 0 {
		t.Errorf("BaseKernelTree: %v", err)
	}
}

func TestPublicAPIWorkload(t *testing.T) {
	entry, _ := LookupCVE("CVE-2014-0196")
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())
	sys, err := NewSystem(Options{
		Version:    "4.4",
		ExtraFiles: map[string]string{entry.File: entry.Vuln},
		ServerAddr: srv.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	w := NewWorkload(sys, WorkloadMixed)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
		t.Fatalf("apply under workload: %v", err)
	}
	stats := w.Stop()
	if stats.Ops == 0 || stats.Errors != 0 {
		t.Errorf("workload stats = %+v", stats)
	}
}

// TestRQ1UnderLoad mirrors the paper's "heavier active workloads
// during live patching" variant (§VI-B/§VI-C3) on a subset of the
// suite: patches land while every vCPU runs the mixed workload, and
// the exploits still flip.
func TestRQ1UnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("under-load sweep skipped in -short mode")
	}
	for _, id := range []string{"CVE-2014-0196", "CVE-2016-5195", "CVE-2017-17053", "CVE-2014-3690"} {
		t.Run(id, func(t *testing.T) {
			entry, ok := LookupCVE(id)
			if !ok {
				t.Fatal("missing entry")
			}
			srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			srv.RegisterPatch(entry.SourcePatch())
			sys, err := NewSystem(Options{
				Version:    "4.4",
				NumVCPUs:   4,
				ExtraFiles: map[string]string{entry.File: entry.Vuln},
				ServerAddr: srv.Addr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			w := NewWorkload(sys, WorkloadMixed)
			if err := w.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
				t.Fatalf("apply under load: %v", err)
			}
			stats := w.Stop()
			if stats.Errors != 0 {
				t.Errorf("%d workload errors during live patching", stats.Errors)
			}
			res, err := entry.Exploit(sys.Kernel, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Vulnerable {
				t.Error("patch under load ineffective")
			}
		})
	}
}

// TestFunctionalOptions checks that New assembles the same Options a
// struct-literal caller would, including merge semantics for repeated
// WithExtraFiles, and that the built system honours them.
func TestFunctionalOptions(t *testing.T) {
	entry, _ := LookupCVE("CVE-2014-0196")
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := New(
		WithVersion("4.4"),
		WithVCPUs(2),
		WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		WithExtraFiles(map[string]string{"docs/readme.txt": "; notes"}),
		WithServerAddr(srv.Addr()),
		WithHashAlg(HashSDBM),
		WithActivenessCheck(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if got := sys.Machine.NumVCPUs(); got != 2 {
		t.Errorf("vCPUs = %d, want 2", got)
	}
	if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
		t.Fatalf("apply on New()-built system: %v", err)
	}
	res, err := entry.Exploit(sys.Kernel, 0)
	if err != nil || res.Vulnerable {
		t.Errorf("exploit after patch: %+v %v", res, err)
	}
}

// TestFunctionalOptionsDefaults: New with only a server address boots
// the default 4.4 kernel on the default vCPU count.
func TestFunctionalOptionsDefaults(t *testing.T) {
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sys, err := New(WithServerAddr(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if v := sys.Kernel.Config().Version; v != "4.4" {
		t.Errorf("default version = %q, want 4.4", v)
	}
	if got := sys.Machine.NumVCPUs(); got != 4 {
		t.Errorf("default vCPUs = %d, want 4", got)
	}
}

// TestPublicAPIApplyAll drives the batched pipeline through the facade:
// several CVEs, one SMI, typed option plumbing intact.
func TestPublicAPIApplyAll(t *testing.T) {
	ids := []string{"CVE-2014-0196", "CVE-2016-7916", "CVE-2016-2543"}
	entries := make([]*CVE, len(ids))
	files := make(map[string]string, len(ids))
	for i, id := range ids {
		e, ok := LookupCVE(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		entries[i] = e
		files[e.File] = e.Vuln
	}
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entries...)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}
	sys, err := New(WithExtraFiles(files), WithServerAddr(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	rep, err := sys.ApplyAll(context.Background(), ids,
		WithBatchSize(8), WithFetchWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("failures: %v", rep.Failed)
	}
	if rep.SMIs != 1 {
		t.Errorf("SMIs = %d, want 1 for a single batch", rep.SMIs)
	}
	for _, e := range entries {
		res, err := e.Exploit(sys.Kernel, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Vulnerable {
			t.Errorf("%s still exploitable after ApplyAll", e.CVE)
		}
	}
}
