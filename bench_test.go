package kshot

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§VI). Each benchmark reports the same per-stage
// virtual-time metrics the corresponding paper artifact tabulates
// (suffix _vus = virtual microseconds from the calibrated cost model),
// alongside Go's real ns/op for the simulation itself. Absolute
// numbers are not expected to match the authors' i7 testbed; the
// shapes — linearity in patch size, stage dominance, system ordering —
// are asserted by the test suite and recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"kshot/internal/evalharness"
	"kshot/internal/kcrypto"
	"kshot/internal/timing"
)

func vus(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

// BenchmarkTable1Suite builds the full 30-CVE binary patch suite
// (Table I): source diff, call-graph/inlining analysis, binary
// matching, and payload extraction for every entry.
func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := evalharness.Table1()
		if err != nil {
			b.Fatal(err)
		}
		_ = tbl
	}
	b.ReportMetric(30, "patches")
}

// BenchmarkTable2SGXBreakdown reproduces Table II: the SGX-side stage
// breakdown (fetching, pre-processing, passing) across the paper's
// patch sizes from 40 B to 10 MB.
func BenchmarkTable2SGXBreakdown(b *testing.B) {
	for _, size := range evalharness.PaperSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			pt, err := evalharness.RunSizePoint(size, b.N, kcrypto.HashSHA256)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(vus(pt.Fetch), "fetch_vus")
			b.ReportMetric(vus(pt.Preprocess), "preprocess_vus")
			b.ReportMetric(vus(pt.Pass), "pass_vus")
			b.ReportMetric(vus(pt.SGXTotal()), "total_vus")
		})
	}
}

// BenchmarkTable3SMMBreakdown reproduces Table III: the SMM-side stage
// breakdown (decryption, verification, application; total including
// key generation and world switches) across the same sizes.
func BenchmarkTable3SMMBreakdown(b *testing.B) {
	for _, size := range evalharness.PaperSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			pt, err := evalharness.RunSizePoint(size, b.N, kcrypto.HashSHA256)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(vus(pt.Decrypt), "decrypt_vus")
			b.ReportMetric(vus(pt.Verify), "verify_vus")
			b.ReportMetric(vus(pt.Apply), "apply_vus")
			b.ReportMetric(vus(pt.SMMTotal()), "total_vus")
		})
	}
}

// BenchmarkFigure4SGXPerCVE reproduces Figure 4: SGX-based patch
// preparation time for the six whole-system CVEs of §VI-C3.
func BenchmarkFigure4SGXPerCVE(b *testing.B) {
	benchFigureCVEs(b, func(b *testing.B, p evalharness.CVEPoint) {
		b.ReportMetric(vus(p.Stages.Fetch), "fetch_vus")
		b.ReportMetric(vus(p.Stages.Preprocess), "preprocess_vus")
		b.ReportMetric(vus(p.Stages.Pass), "pass_vus")
		b.ReportMetric(float64(p.Bytes), "payload_bytes")
	})
}

// BenchmarkFigure5SMMPerCVE reproduces Figure 5: SMM-based live
// patching time for the same six CVEs.
func BenchmarkFigure5SMMPerCVE(b *testing.B) {
	benchFigureCVEs(b, func(b *testing.B, p evalharness.CVEPoint) {
		b.ReportMetric(vus(p.Stages.KeyGen), "keygen_vus")
		b.ReportMetric(vus(p.Stages.Decrypt), "decrypt_vus")
		b.ReportMetric(vus(p.Stages.Verify), "verify_vus")
		b.ReportMetric(vus(p.Stages.Apply), "apply_vus")
		b.ReportMetric(vus(p.Stages.Switch), "switch_vus")
		b.ReportMetric(vus(p.Stages.SMMTotal()), "pause_vus")
	})
}

func benchFigureCVEs(b *testing.B, report func(*testing.B, evalharness.CVEPoint)) {
	for _, e := range FigureCVEs() {
		cve := e.CVE
		b.Run(cve, func(b *testing.B) {
			pt, err := evalharness.RunFigureCVEOnce(cve, b.N)
			if err != nil {
				b.Fatal(err)
			}
			report(b, pt)
		})
	}
}

// BenchmarkTable5Comparison reproduces Table V: kpatch-, KUP- and
// KARMA-style baselines against KShot on the same machine and CVE,
// reporting OS-pause, total time, and memory consumption.
func BenchmarkTable5Comparison(b *testing.B) {
	for _, system := range []string{"KUP", "KARMA", "kpatch", "KShot"} {
		b.Run(system, func(b *testing.B) {
			var pause, total time.Duration
			var memBytes uint64
			for i := 0; i < b.N; i++ {
				rows, err := evalharness.RunTable5("CVE-2014-4157")
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.System == system {
						pause, total, memBytes = r.Pause, r.Total, r.MemoryBytes
					}
				}
			}
			b.ReportMetric(vus(pause), "pause_vus")
			b.ReportMetric(vus(total), "total_vus")
			b.ReportMetric(float64(memBytes), "mem_bytes")
		})
	}
}

// BenchmarkSMMFixedCosts verifies the §VI-C2 fixed-cost constants the
// model carries (switch to SMM 12.9µs, resume 21.7µs, key generation
// 5.2µs).
func BenchmarkSMMFixedCosts(b *testing.B) {
	model := timing.Calibrated()
	for i := 0; i < b.N; i++ {
		_ = model
	}
	b.ReportMetric(vus(model.SMMEntry), "smm_entry_vus")
	b.ReportMetric(vus(model.SMMExit), "smm_exit_vus")
	b.ReportMetric(vus(model.KeyGen), "keygen_vus")
}

// BenchmarkSysbenchOverhead reproduces the §VI-C3 whole-system
// experiment: workload throughput with and without a live patch storm
// (the paper runs 1,000 patches and reports <3% overhead; the
// benchmark uses a proportional storm per iteration and reports the
// measured fraction).
func BenchmarkSysbenchOverhead(b *testing.B) {
	var res *evalharness.OverheadResult
	for i := 0; i < b.N; i++ {
		r, err := evalharness.RunOverhead(20, 400*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Overhead*100, "wall_overhead_pct")
	b.ReportMetric(res.VirtualPauseFraction*100, "pause_fraction_pct")
	b.ReportMetric(vus(res.PausePerOp), "pause_per_patch_vus")
}

// BenchmarkAblationVerifyHash compares SHA-256 against the SDBM hash
// the paper suggests for cutting SMM verification time (§VI-C2),
// at the 400 KB size where verification dominates.
func BenchmarkAblationVerifyHash(b *testing.B) {
	for _, alg := range []kcrypto.HashAlg{kcrypto.HashSHA256, kcrypto.HashSDBM} {
		b.Run(alg.String(), func(b *testing.B) {
			pt, err := evalharness.RunSizePoint(400<<10, b.N, alg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(vus(pt.Verify), "verify_vus")
			b.ReportMetric(vus(pt.SMMTotal()), "pause_vus")
		})
	}
}

// BenchmarkAblationPrepLocation quantifies the paper's core design
// decision: preprocessing in the (non-blocking) SGX enclave versus
// hypothetically doing it inside the (blocking) SMM handler. The
// as-built OS pause excludes preprocessing; the ablated pause adds it.
func BenchmarkAblationPrepLocation(b *testing.B) {
	for _, size := range []int{4 << 10, 400 << 10} {
		b.Run(sizeName(size), func(b *testing.B) {
			pt, err := evalharness.RunSizePoint(size, b.N, kcrypto.HashSHA256)
			if err != nil {
				b.Fatal(err)
			}
			asBuilt := pt.SMMTotal()
			inSMM := asBuilt + pt.Preprocess
			b.ReportMetric(vus(asBuilt), "pause_sgxprep_vus")
			b.ReportMetric(vus(inSMM), "pause_smmprep_vus")
			b.ReportMetric(float64(inSMM)/float64(asBuilt), "pause_blowup_x")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// BenchmarkPipelinedApplyAll reproduces the batched-SMI experiment:
// the full Table I suite applied serially (one SMI per patch) versus
// through the concurrent ApplyAll pipeline (batched SMIs), on
// identically provisioned deployments per conflict-free wave.
func BenchmarkPipelinedApplyAll(b *testing.B) {
	var p *evalharness.PipelinedComparison
	for i := 0; i < b.N; i++ {
		r, err := evalharness.RunPipelinedComparison("4.4", 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		p = r
	}
	b.ReportMetric(float64(p.Patches), "patches")
	b.ReportMetric(float64(p.SerialSMIs), "serial_smis")
	b.ReportMetric(float64(p.BatchSMIs), "batch_smis")
	b.ReportMetric(vus(p.SerialPause), "serial_pause_vus")
	b.ReportMetric(vus(p.BatchPause), "batch_pause_vus")
	b.ReportMetric(100*p.PauseReduction(), "pause_reduction_pct")
}

// BenchmarkProvision measures target provisioning two ways: cold (the
// paper's boot — kernel build, machine bring-up, SMM lock, eager
// server registration, bootstrap SMI) versus forked from a cached
// template (COW frames, per-fork secrets, SMRAM lock; server attach
// and bootstrap SMI deferred to first contact). The forked/cold ns/op
// ratio is the template-fork payoff; systems_per_sec is the fleet
// provisioning rate either mode sustains.
func BenchmarkProvision(b *testing.B) {
	entry, _ := LookupCVE("CVE-2014-0196")
	srv, err := NewPatchServer(WithTreeProvider(TreeProviderFor(entry)))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())
	files := map[string]string{entry.File: entry.Vuln}

	b.Run("cold", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sys, err := New(WithExtraFiles(files), WithServerAddr(srv.Addr()))
			if err != nil {
				b.Fatal(err)
			}
			sys.Close()
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "systems_per_sec")
	})
	b.Run("forked", func(b *testing.B) {
		cache := NewTemplateCache()
		defer cache.Close()
		// Boot the template outside the timed region: it is a one-time
		// per-configuration cost the fleet amortizes.
		warm, err := New(WithExtraFiles(files), WithServerAddr(srv.Addr()), WithTemplateCache(cache))
		if err != nil {
			b.Fatal(err)
		}
		warm.Close()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sys, err := New(WithExtraFiles(files), WithServerAddr(srv.Addr()), WithTemplateCache(cache))
			if err != nil {
				b.Fatal(err)
			}
			sys.Close()
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "systems_per_sec")
	})
}

// TestPipelinedBeatsSerial is the acceptance gate for the batched
// pipeline: applying all 30 Table I CVEs through ApplyAll must take
// strictly fewer than 30 SMM world switches and strictly less total
// virtual OS pause than the serial per-patch path, while every patch
// still lands.
func TestPipelinedBeatsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("pipelined sweep skipped in -short mode")
	}
	p, err := evalharness.RunPipelinedComparison("4.4", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Patches != 30 {
		t.Fatalf("pipeline applied %d patches, want 30", p.Patches)
	}
	if p.SerialSMIs != 30 {
		t.Errorf("serial mode took %d SMIs, want exactly 30", p.SerialSMIs)
	}
	if p.BatchSMIs >= 30 {
		t.Errorf("batched mode took %d SMIs, want strictly fewer than 30", p.BatchSMIs)
	}
	if p.BatchPause >= p.SerialPause {
		t.Errorf("batched pause %v not below serial pause %v", p.BatchPause, p.SerialPause)
	}
	if p.Degraded != 0 || p.Retries != 0 {
		t.Errorf("unexpected degradations (%d) or retries (%d) on an idle machine", p.Degraded, p.Retries)
	}
	t.Logf("serial: %d SMIs, %v pause; batched: %d SMIs (%d batches + %d singles), %v pause (-%.1f%%)",
		p.SerialSMIs, p.SerialPause, p.BatchSMIs, p.Batches, p.Singles,
		p.BatchPause, 100*p.PauseReduction())
}
