// Compromised kernel: live patching while a rootkit fights back
// (§V-D "Malicious Patch Reversion").
//
// A kernel-resident attacker snapshots the vulnerable function entry
// before the patch lands and restores it afterwards — against
// kernel-trusted patching systems (kpatch/Ksplice-style) this silently
// re-opens the hole, because both the patch and the attacker operate
// at the same privilege. KShot's patch state lives in SMRAM: the SMM
// introspection pass compares live kernel text against its journal,
// detects the reversion, repairs the trampoline, and reports the
// tampering to the operator.
//
//	go run ./examples/compromised
package main

import (
	"context"
	"fmt"
	"log"

	"kshot"
)

func main() {
	entry, ok := kshot.LookupCVE("CVE-2014-0196")
	if !ok {
		log.Fatal("registry missing CVE-2014-0196")
	}
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := kshot.New(
		kshot.WithVersion("4.4"),
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The rootkit is already resident when the patch arrives.
	rootkit, err := kshot.InstallRootkit(sys, entry.Functions...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rootkit installed: snapshot of vulnerable entry bytes taken")

	if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
		log.Fatal(err)
	}
	res, _ := entry.Exploit(sys.Kernel, 0)
	fmt.Printf("after patch:            vulnerable=%v\n", res.Vulnerable)

	// The attack: revert the patched entry at kernel privilege.
	if err := rootkit.RevertPatches(); err != nil {
		log.Fatal(err)
	}
	res, _ = entry.Exploit(sys.Kernel, 0)
	fmt.Printf("after rootkit reversion: vulnerable=%v  <-- a kernel-trusted patcher never notices\n", res.Vulnerable)

	// KShot's defense: SMM introspection compares the live trampoline
	// and mem_X payload against SMRAM-held ground truth.
	tampered, err := sys.Protect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SMM introspection:      tampering detected=%v (repaired)\n", tampered)

	res, _ = entry.Exploit(sys.Kernel, 0)
	fmt.Printf("after repair:           vulnerable=%v\n", res.Vulnerable)

	// Subsequent sweeps stay clean.
	tampered, err = sys.Protect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follow-up sweep:        tampering detected=%v\n", tampered)
}
