// Rollback: apply a live patch, then undo it (§V-C "Patch
// Rollback/Update").
//
// The paper motivates rollback with Yin et al.'s finding that 15–24%
// of human-written OS patches are themselves incorrect: after a
// deployment, the operator may need to take the patch back out without
// rebooting. KShot keeps the overwritten trampoline bytes in
// SMM-protected storage, so the most recent patch can always be
// reverted by another SMI.
//
//	go run ./examples/rollback
package main

import (
	"context"
	"fmt"
	"log"

	"kshot"
)

func main() {
	entry, ok := kshot.LookupCVE("CVE-2017-17806")
	if !ok {
		log.Fatal("registry missing CVE-2017-17806")
	}
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := kshot.New(
		kshot.WithVersion("4.4"),
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	probe := func(label string) {
		res, err := entry.Exploit(sys.Kernel, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s vulnerable=%v\n", label+":", res.Vulnerable)
	}

	probe("fresh kernel")
	if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
		log.Fatal(err)
	}
	probe("after live patch")
	fmt.Println("applied set:", sys.Applied())

	// Suppose post-deployment monitoring blames the new code: the
	// operator sends the rollback command. The SMM handler restores
	// the journaled entry bytes and rewinds its mem_X allocation.
	if _, err := sys.Rollback(context.Background(), entry.CVE); err != nil {
		log.Fatal(err)
	}
	probe("after rollback")
	fmt.Println("applied set:", sys.Applied())

	// A corrected patch can go right back in.
	if _, err := sys.Apply(context.Background(), entry.CVE); err != nil {
		log.Fatal(err)
	}
	probe("after re-apply")
}
