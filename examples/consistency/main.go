// Consistency: activeness-checked patching (the paper's §VIII
// "consistency model" future work, implemented).
//
// A patch that replaces a function while some CPU is executing inside
// it can change semantics out from under the caller. With
// CheckActiveness enabled, KShot's SMM handler inspects the paused
// vCPUs — saved RIPs and a conservative stack scan for return
// addresses — and refuses to patch a live target, returning
// ErrTargetActive for the operator to retry. This example parks every
// vCPU in a long-running syscall, shows the refusal, then drains the
// calls and retries successfully.
//
//	go run ./examples/consistency
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"kshot"
	"kshot/internal/smmpatch"
)

func main() {
	entry, ok := kshot.LookupCVE("CVE-2016-7914")
	if !ok {
		log.Fatal("registry missing CVE-2016-7914")
	}
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := kshot.New(
		kshot.WithVersion("4.4"),
		kshot.WithVCPUs(2),
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
		kshot.WithActivenessCheck(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Keep a vCPU hammering the vulnerable function so the SMI is
	// overwhelmingly likely to catch it mid-execution.
	target := entry.Functions[0]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Repeated in-bounds writes through the vulnerable path.
			if _, err := sys.Kernel.Call(1, target, 3, 7); err != nil {
				log.Printf("workload: %v", err)
				return
			}
		}
	}()

	// Try until the SMI lands while the target is live (each attempt
	// is an independent SMI; the workload occupies the function most
	// of the time).
	refused := 0
	for i := 0; i < 50; i++ {
		_, err := sys.Apply(context.Background(), entry.CVE)
		if err == nil {
			// Landed in a gap between calls — roll back and retry to
			// demonstrate the refusal path.
			if _, err := sys.Rollback(context.Background(), entry.CVE); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if errors.Is(err, smmpatch.ErrTargetActive) {
			refused++
			fmt.Printf("attempt %2d: refused — %v\n", i+1, err)
			break
		}
		log.Fatalf("unexpected error: %v", err)
	}
	if refused == 0 {
		fmt.Println("(the SMI never caught the function live; machine too fast — continuing)")
	}

	// Drain the workload and retry on a quiescent machine.
	close(stop)
	wg.Wait()
	start := time.Now()
	rep, err := sys.Apply(context.Background(), entry.CVE)
	if err != nil {
		log.Fatalf("quiescent apply: %v", err)
	}
	fmt.Printf("quiescent retry: patched %s in %v (OS paused %v)\n",
		rep.ID, time.Since(start).Round(time.Millisecond), rep.Stages.SMMTotal())

	res, err := entry.Exploit(sys.Kernel, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploit after patch: vulnerable=%v\n", res.Vulnerable)
}
