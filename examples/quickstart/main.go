// Quickstart: live-patch one kernel CVE end to end.
//
// The example boots a simulated target machine running a kernel
// vulnerable to CVE-2016-5195 (Dirty COW in the benchmark registry),
// starts a local patch server, and walks the paper's Figure 2
// pipeline: fetch the encrypted binary patch, preprocess it in the
// SGX enclave, stage it through the reserved memory, and apply it in
// SMM while the OS is briefly paused. The exploit probe demonstrates
// the fix.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"kshot"
)

func main() {
	entry, ok := kshot.LookupCVE("CVE-2016-5195")
	if !ok {
		log.Fatal("benchmark registry missing CVE-2016-5195")
	}

	// The remote patch server: the trusted vendor machine holding full
	// kernel source (including the vulnerable subsystem) and the fix.
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	// The target machine: boots the vulnerable kernel, locks SMRAM,
	// loads the preparation enclave, and attests to the server.
	fmt.Println("booting target machine (kernel 4.4, vulnerable to", entry.CVE+")...")
	sys, err := kshot.New(
		kshot.WithVersion("4.4"),
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Prove the kernel is exploitable.
	res, err := entry.Exploit(sys.Kernel, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: vulnerable=%v — %s\n", res.Vulnerable, res.Detail)

	// Live patch. The OS pauses only for the SMM stage.
	rep, err := sys.Apply(context.Background(), entry.CVE)
	if err != nil {
		log.Fatal(err)
	}
	st := rep.Stages
	fmt.Printf("patched %s: payload %dB\n", rep.ID, st.PayloadBytes)
	fmt.Printf("  SGX (OS running): fetch %v, preprocess %v, pass %v\n", st.Fetch, st.Preprocess, st.Pass)
	fmt.Printf("  SMM (OS paused):  %v total — switch %v, keygen %v, decrypt %v, verify %v, apply %v\n",
		st.SMMTotal(), st.Switch, st.KeyGen, st.Decrypt, st.Verify, st.Apply)

	// Prove the exploit is gone.
	res, err = entry.Exploit(sys.Kernel, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:  vulnerable=%v — %s\n", res.Vulnerable, res.Detail)
}
