// Under load: live patching while the machine is busy (§VI-C3).
//
// Sysbench-style workload threads hammer the kernel's CPU, memory and
// checksum syscalls on every vCPU while a series of live patches is
// applied and rolled back. The run demonstrates the paper's
// consistency and overhead claims: no workload operation fails or
// observes a half-patched kernel (the SMI pauses all vCPUs at
// instruction boundaries), and the OS-pause per patch stays in the
// tens of microseconds while throughput continues.
//
//	go run ./examples/underload
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kshot"
)

func main() {
	entry, ok := kshot.LookupCVE("CVE-2014-4608")
	if !ok {
		log.Fatal("registry missing CVE-2014-4608")
	}
	srv, err := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := kshot.New(
		kshot.WithVersion("4.4"),
		kshot.WithVCPUs(4),
		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
		kshot.WithServerAddr(srv.Addr()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Baseline throughput without patching.
	w := kshot.NewWorkload(sys, kshot.WorkloadMixed)
	base, err := w.RunFor(300 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  %d ops in %v (%.0f ops/s, %d errors)\n",
		base.Ops, base.Elapsed.Round(time.Millisecond), base.OpsPerSec(), base.Errors)

	// Same workload, with a patch storm in the middle.
	if err := w.Start(); err != nil {
		log.Fatal(err)
	}
	const storms = 25
	var pause time.Duration
	for i := 0; i < storms; i++ {
		rep, err := sys.Apply(context.Background(), entry.CVE)
		if err != nil {
			log.Fatalf("apply %d: %v", i, err)
		}
		pause += rep.Stages.SMMTotal()
		if _, err := sys.Rollback(context.Background(), entry.CVE); err != nil {
			log.Fatalf("rollback %d: %v", i, err)
		}
	}
	loaded := w.Stop()
	fmt.Printf("with %d live patches: %d ops in %v (%.0f ops/s, %d errors)\n",
		storms, loaded.Ops, loaded.Elapsed.Round(time.Millisecond), loaded.OpsPerSec(), loaded.Errors)
	fmt.Printf("virtual OS pause per patch: %v (paper: ~47.6us for this CVE)\n",
		(pause / storms).Round(10*time.Nanosecond))
	if loaded.Errors > 0 {
		log.Fatal("consistency violation: workload operations failed during patching")
	}
	fmt.Println("consistency: every workload op completed with pre- or post-patch semantics; none failed")
}
