// Package kshot is a simulation-grade reproduction of "KShot: Live
// Kernel Patching with SMM and SGX" (DSN 2020): trustworthy live
// kernel patching whose preparation runs in an SGX enclave and whose
// deployment runs in an SMM handler, so that neither step depends on
// the correctness — or honesty — of the kernel being patched.
//
// Because SMM handlers and SGX enclaves are not reachable from a Go
// process, the system runs on a fully simulated x86-class target
// machine: access-controlled physical memory, an x86-like ISA with
// 5-byte jmp/call rel32 encodings, a multi-vCPU interpreter, SMRAM/SMI
// semantics, and an EPC with enclave-only pages. Every mechanism of
// the paper — binary diffing, inlining analysis, trampoline patching,
// ftrace-aware redirection, DH-keyed SGX→SMM transport, rollback, and
// introspection — executes as real code against that machine.
//
// The typical flow mirrors the paper's Figure 2:
//
//	srv, _ := kshot.NewPatchServer("127.0.0.1:0", kshot.TreeProviderFor(entry))
//	srv.RegisterPatch(entry.SourcePatch())
//	sys, _ := kshot.New(
//		kshot.WithVersion("4.4"),
//		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
//		kshot.WithServerAddr(srv.Addr()),
//	)
//	report, _ := sys.Apply(ctx, entry.CVE) // fetch → enclave prep → SMI → patched
//
// Many CVEs go through the concurrent batch pipeline instead, which
// fans out the fetches and delivers whole batches under single SMIs:
//
//	batch, _ := sys.ApplyAll(ctx, cves, kshot.WithBatchSize(8))
//
// See the examples directory for runnable end-to-end scenarios and
// bench_test.go for the harness regenerating every table and figure of
// the paper's evaluation.
package kshot

import (
	"fmt"
	"io"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/patchserver"
	"kshot/internal/workload"
)

// System is a provisioned KShot deployment on one simulated target
// machine.
type System = core.System

// Options configures NewSystem. New is the preferred constructor; this
// struct remains for callers that assemble configuration imperatively.
type Options = core.Options

// Report is the outcome of one Apply or Rollback, with per-stage
// times.
type Report = core.Report

// StageTimes breaks a patch down into the paper's pipeline stages.
type StageTimes = core.StageTimes

// BatchReport is the outcome of one ApplyAll run over the concurrent
// batch pipeline.
type BatchReport = core.BatchReport

// HashAlg selects payload verification hashing.
type HashAlg = kcrypto.HashAlg

// Verification hash algorithms (SHA-256 is the paper's default, SDBM
// its cheaper alternative).
const (
	HashSHA256 = kcrypto.HashSHA256
	HashSDBM   = kcrypto.HashSDBM
)

// Typed failure classes for Apply/Rollback/ApplyAll; branch with
// errors.Is instead of matching messages.
var (
	ErrFetch          = core.ErrFetch
	ErrEnclavePrepare = core.ErrEnclavePrepare
	ErrStatusMismatch = core.ErrStatusMismatch
	ErrTargetActive   = core.ErrTargetActive
)

// StatusError carries the mailbox codes behind an ErrStatusMismatch;
// retrieve it with errors.As.
type StatusError = core.StatusError

// Option configures New.
type Option func(*Options)

// WithVersion selects the kernel version to boot ("3.14" or "4.4",
// the default).
func WithVersion(v string) Option { return func(o *Options) { o.Version = v } }

// WithVCPUs sets the target machine's vCPU count (default 4).
func WithVCPUs(n int) Option { return func(o *Options) { o.NumVCPUs = n } }

// WithExtraFiles adds subsystem source files to the base kernel tree —
// the vulnerable code the benchmark kernels ship with. Repeated use
// merges.
func WithExtraFiles(files map[string]string) Option {
	return func(o *Options) {
		if o.ExtraFiles == nil {
			o.ExtraFiles = make(map[string]string, len(files))
		}
		for name, src := range files {
			o.ExtraFiles[name] = src
		}
	}
}

// WithServerAddr points the system at a remote patch server.
func WithServerAddr(addr string) Option { return func(o *Options) { o.ServerAddr = addr } }

// WithHashAlg selects the payload verification hash (default SHA-256).
func WithHashAlg(alg HashAlg) Option { return func(o *Options) { o.HashAlg = alg } }

// WithRand sets the entropy source for all key material (crypto/rand
// by default; deterministic readers in tests).
func WithRand(r io.Reader) Option { return func(o *Options) { o.Rand = r } }

// WithActivenessCheck enables the SMM handler's conservative
// activeness check: patches to functions currently executing on (or
// returning into) some vCPU are refused with ErrTargetActive and can
// be retried.
func WithActivenessCheck(on bool) Option { return func(o *Options) { o.CheckActiveness = on } }

// WithDialRetries allows the system's patch-server connections extra
// TCP connect attempts with exponential backoff.
func WithDialRetries(n int) Option { return func(o *Options) { o.DialRetries = n } }

// WithRequestRetries lets the system's patch-server connections
// reconnect and replay a transport-failed request burst (safe because
// the system's hellos are attested, so a reconnect converges on the
// same channel key).
func WithRequestRetries(n int) Option { return func(o *Options) { o.RequestRetries = n } }

// WithDialBackoff sets the base backoff before the first dial or
// request retry (doubling per attempt).
func WithDialBackoff(d time.Duration) Option { return func(o *Options) { o.RetryBackoff = d } }

// ApplyOption tunes System.ApplyAll (batch size, fetch fan-out, retry
// policy).
type ApplyOption = core.ApplyOption

// ApplyAll tuning options.
var (
	WithBatchSize    = core.WithBatchSize
	WithFetchWorkers = core.WithFetchWorkers
	WithMaxRetries   = core.WithMaxRetries
	WithRetryBackoff = core.WithRetryBackoff
)

// New boots a simulated target machine with the given options, locks
// down SMM, attests and loads the preparation enclave, and registers
// with the patch server.
func New(opts ...Option) (*System, error) {
	o := Options{Version: "4.4"}
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewSystem(o)
}

// NewSystem boots a system from an assembled Options struct. It is the
// pre-functional-options constructor, kept for compatibility; New is
// preferred.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// PatchServer is the remote, trusted patch build server.
type PatchServer = patchserver.Server

// PatchClient is a target's connection to the patch server.
type PatchClient = patchserver.Client

// OSInfo is the target build description uploaded to the server.
type OSInfo = patchserver.OSInfo

// TreeProvider supplies full kernel source trees per version.
type TreeProvider = patchserver.TreeProvider

// ServerOption tunes NewPatchServer: the build-cache bound, the
// per-connection idle deadline, and the concurrency gate.
type ServerOption = patchserver.ServerOption

// Patch server tuning options.
var (
	WithServerMaxConns      = patchserver.WithMaxConns
	WithServerAcceptWait    = patchserver.WithAcceptWait
	WithServerIdleTimeout   = patchserver.WithIdleTimeout
	WithServerCacheCapacity = patchserver.WithCacheCapacity
)

// DialOption tunes DialPatchServer: connect/request retry policy and
// I/O deadlines.
type DialOption = patchserver.DialOption

// Patch client tuning options.
var (
	WithClientDialTimeout    = patchserver.WithDialTimeout
	WithClientDialRetries    = patchserver.WithDialRetries
	WithClientRequestRetries = patchserver.WithRequestRetries
	WithClientRetryBackoff   = patchserver.WithRetryBackoff
	WithClientIOTimeout      = patchserver.WithIOTimeout
)

// NewPatchServer starts a patch server on addr ("host:0" picks an
// ephemeral port). Built patch artifacts are cached and shared across
// targets with the same kernel configuration; per-session encryption
// stays per-client.
func NewPatchServer(addr string, trees TreeProvider, opts ...ServerOption) (*PatchServer, error) {
	return patchserver.NewServer(addr, trees, opts...)
}

// DialPatchServer connects a client to a patch server.
func DialPatchServer(addr string, opts ...DialOption) (*PatchClient, error) {
	return patchserver.Dial(addr, opts...)
}

// CVE is one benchmark vulnerability: vulnerable subsystem source, its
// fix, and an exploit probe.
type CVE = cvebench.Entry

// ExploitResult reports one exploit probe.
type ExploitResult = cvebench.ExploitResult

// CVEList returns the paper's 30-entry Table I benchmark suite.
func CVEList() []*CVE { return cvebench.All() }

// FigureCVEs returns the six CVEs of the paper's Figures 4 and 5.
func FigureCVEs() []*CVE { return cvebench.FigureSix() }

// LookupCVE returns a benchmark entry by identifier.
func LookupCVE(id string) (*CVE, bool) { return cvebench.Get(id) }

// TreeProviderFor builds a TreeProvider whose kernels include the
// given entries' vulnerable subsystems (the distro vendor's full
// source view).
func TreeProviderFor(entries ...*CVE) TreeProvider {
	return cvebench.TreeProviderFor(entries...)
}

// SourceTree is a kernel source tree.
type SourceTree = kernel.SourceTree

// SourcePatch is a source-level kernel patch.
type SourcePatch = kernel.SourcePatch

// BaseKernelTree returns the base kernel source for a supported
// version ("3.14" or "4.4").
func BaseKernelTree(version string) (*SourceTree, error) { return kernel.BaseTree(version) }

// Workload is the Sysbench-like whole-system workload driver.
type Workload = workload.Driver

// WorkloadKind selects the workload mix.
type WorkloadKind = workload.Kind

// Workload kinds.
const (
	WorkloadCPU    = workload.CPU
	WorkloadMemory = workload.Memory
	WorkloadMixed  = workload.Mixed
)

// NewWorkload creates a workload driver on a system's kernel.
func NewWorkload(sys *System, kind WorkloadKind) *Workload {
	return workload.New(sys.Kernel, kind)
}

// Rootkit simulates a kernel-resident attacker on a System: it
// snapshots the entry bytes of chosen kernel functions and can later
// restore them at kernel privilege — the malicious patch reversion of
// the paper's §V-D. It exists so examples and experiments can
// demonstrate that SMM introspection (System.Protect) detects and
// repairs the reversion, where kernel-trusted patching systems are
// silently defeated.
type Rootkit struct {
	sys   *System
	saved map[string][]byte
}

// InstallRootkit plants the attacker before patching: it snapshots the
// (still vulnerable) entry bytes of the named kernel functions.
func InstallRootkit(sys *System, functions ...string) (*Rootkit, error) {
	rk := &Rootkit{sys: sys, saved: make(map[string][]byte, len(functions))}
	for _, fn := range functions {
		buf, err := sys.Kernel.FuncBytes(fn)
		if err != nil {
			return nil, fmt.Errorf("rootkit: %w", err)
		}
		n := 10
		if len(buf) < n {
			n = len(buf)
		}
		rk.saved[fn] = buf[:n]
	}
	return rk, nil
}

// RevertPatches writes the snapshotted vulnerable bytes back over the
// function entries, undoing any trampolines — a kernel-privilege
// write, exactly what a rootkit can do.
func (rk *Rootkit) RevertPatches() error {
	for fn, orig := range rk.saved {
		addr, err := rk.sys.Kernel.FuncAddr(fn)
		if err != nil {
			return fmt.Errorf("rootkit: %w", err)
		}
		if err := rk.sys.Machine.Mem.Write(mem.PrivKernel, addr, orig); err != nil {
			return fmt.Errorf("rootkit: %w", err)
		}
	}
	return nil
}
