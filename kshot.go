// Package kshot is a simulation-grade reproduction of "KShot: Live
// Kernel Patching with SMM and SGX" (DSN 2020): trustworthy live
// kernel patching whose preparation runs in an SGX enclave and whose
// deployment runs in an SMM handler, so that neither step depends on
// the correctness — or honesty — of the kernel being patched.
//
// Because SMM handlers and SGX enclaves are not reachable from a Go
// process, the system runs on a fully simulated x86-class target
// machine: access-controlled physical memory, an x86-like ISA with
// 5-byte jmp/call rel32 encodings, a multi-vCPU interpreter, SMRAM/SMI
// semantics, and an EPC with enclave-only pages. Every mechanism of
// the paper — binary diffing, inlining analysis, trampoline patching,
// ftrace-aware redirection, DH-keyed SGX→SMM transport, rollback, and
// introspection — executes as real code against that machine.
//
// Every constructor in the package shares one configuration idiom:
// functional options that validate eagerly and fail construction with
// a typed *OptionError (matching ErrInvalidOption) the moment an
// argument is out of range or two options conflict.
//
// The typical single-target flow mirrors the paper's Figure 2:
//
//	srv, _ := kshot.NewPatchServer(kshot.WithTreeProvider(kshot.TreeProviderFor(entry)))
//	srv.RegisterPatch(entry.SourcePatch())
//	sys, _ := kshot.New(
//		kshot.WithVersion("4.4"),
//		kshot.WithExtraFiles(map[string]string{entry.File: entry.Vuln}),
//		kshot.WithServerAddr(srv.Addr()),
//	)
//	report, _ := sys.Apply(ctx, entry.CVE) // fetch → enclave prep → SMI → patched
//
// Many CVEs go through the concurrent batch pipeline instead, which
// fans out the fetches and delivers whole batches under single SMIs:
//
//	batch, _ := sys.ApplyAll(ctx, cves, kshot.WithBatchSize(8))
//
// Whole fleets go through the rollout orchestrator, which drives a
// CVE batch across many targets in staged canary waves, health-gating
// each wave on the targets' own metrics and rolling back waves that
// regress:
//
//	roll, _ := kshot.NewRollout(
//		kshot.WithTargets(fleet),
//		kshot.WithCVEs("CVE-2016-0728", "CVE-2017-7184"),
//		kshot.WithProvisioner(kshot.SystemProvisioner(srv.Addr())),
//	)
//	result, _ := roll.Run(ctx)
//
// See the examples directory for runnable end-to-end scenarios and
// bench_test.go for the harness regenerating every table and figure of
// the paper's evaluation.
package kshot

import (
	"context"
	"fmt"
	"io"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/introspect"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/options"
	"kshot/internal/orchestrator"
	"kshot/internal/patchserver"
	"kshot/internal/workload"
)

// ---------------------------------------------------------------------------
// Option errors — the vocabulary every constructor's With* options
// share. A rejected option fails construction with a *OptionError
// naming the constructor, the option, and the reason; all of them
// match ErrInvalidOption under errors.Is.
// ---------------------------------------------------------------------------

// ErrInvalidOption classifies every eager option-validation failure
// from New, NewPatchServer, NewRollout, and DialPatchServer.
var ErrInvalidOption = options.ErrInvalid

// OptionError is the typed rejection carrying the constructor and
// option names; retrieve it with errors.As.
type OptionError = options.Error

// ---------------------------------------------------------------------------
// System — booting and patching one simulated target machine.
// ---------------------------------------------------------------------------

// System is a provisioned KShot deployment on one simulated target
// machine.
type System = core.System

// Options configures NewSystem. New is the preferred constructor; this
// struct remains for callers that assemble configuration imperatively.
type Options = core.Options

// Report is the outcome of one Apply or Rollback, with per-stage
// times.
type Report = core.Report

// StageTimes breaks a patch down into the paper's pipeline stages.
type StageTimes = core.StageTimes

// BatchReport is the outcome of one ApplyAll run over the concurrent
// batch pipeline.
type BatchReport = core.BatchReport

// HashAlg selects payload verification hashing.
type HashAlg = kcrypto.HashAlg

// Verification hash algorithms (SHA-256 is the paper's default, SDBM
// its cheaper alternative).
const (
	HashSHA256 = kcrypto.HashSHA256
	HashSDBM   = kcrypto.HashSDBM
)

// Typed failure classes for Apply/Rollback/ApplyAll; branch with
// errors.Is instead of matching messages.
var (
	ErrFetch          = core.ErrFetch
	ErrEnclavePrepare = core.ErrEnclavePrepare
	ErrStatusMismatch = core.ErrStatusMismatch
	ErrTargetActive   = core.ErrTargetActive
)

// StatusError carries the mailbox codes behind an ErrStatusMismatch;
// retrieve it with errors.As.
type StatusError = core.StatusError

// Option configures New. Every With* validates its argument eagerly:
// New reports the first rejected option as a *OptionError before any
// hardware is simulated.
type Option func(*Options) error

func newErr(option, format string, a ...any) error {
	return options.Errorf("kshot.New", option, format, a...)
}

// WithVersion selects the kernel version to boot ("3.14" or "4.4",
// the default). Selecting two different versions is a conflict.
func WithVersion(v string) Option {
	return func(o *Options) error {
		if v != "3.14" && v != "4.4" {
			return newErr("WithVersion", "unsupported kernel version %q (want 3.14 or 4.4)", v)
		}
		if o.Version != "" && o.Version != v {
			return newErr("WithVersion", "conflicting versions %q and %q", o.Version, v)
		}
		o.Version = v
		return nil
	}
}

// WithVCPUs sets the target machine's vCPU count (default 4).
func WithVCPUs(n int) Option {
	return func(o *Options) error {
		if n < 1 {
			return newErr("WithVCPUs", "must be >= 1, got %d", n)
		}
		o.NumVCPUs = n
		return nil
	}
}

// Dispatch selects the vCPU execution engine.
type Dispatch = isa.Dispatch

// Execution engine modes for WithDispatch. Virtual-time metrics are
// identical across modes; only wall-clock speed differs.
const (
	// DispatchBlocks executes through predecoded basic blocks with
	// epoch-keyed invalidation (the default).
	DispatchBlocks = isa.DispatchBlocks
	// DispatchOracle forces the per-instruction decode-switch
	// interpreter the block engine is verified against.
	DispatchOracle = isa.DispatchOracle
	// DispatchLockstep cross-checks both engines every dispatch unit;
	// verification only, and requires a single vCPU.
	DispatchLockstep = isa.DispatchLockstep
)

// WithDispatch selects the vCPU execution engine (default
// DispatchBlocks). DispatchLockstep conflicts with WithVCPUs(n) for
// n > 1: lockstep rewinds and replays shared memory every unit.
func WithDispatch(d Dispatch) Option {
	return func(o *Options) error {
		switch d {
		case DispatchBlocks, DispatchOracle:
		case DispatchLockstep:
			if o.NumVCPUs > 1 {
				return newErr("WithDispatch", "lockstep requires exactly 1 vCPU, got %d", o.NumVCPUs)
			}
		default:
			return newErr("WithDispatch", "unknown dispatch mode %d", int(d))
		}
		o.Dispatch = d
		return nil
	}
}

// WithExtraFiles adds subsystem source files to the base kernel tree —
// the vulnerable code the benchmark kernels ship with. Repeated use
// merges.
func WithExtraFiles(files map[string]string) Option {
	return func(o *Options) error {
		if len(files) == 0 {
			return newErr("WithExtraFiles", "no files given")
		}
		if o.ExtraFiles == nil {
			o.ExtraFiles = make(map[string]string, len(files))
		}
		for name, src := range files {
			if name == "" {
				return newErr("WithExtraFiles", "empty file name")
			}
			o.ExtraFiles[name] = src
		}
		return nil
	}
}

// WithServerAddr points the system at a remote patch server. Pointing
// one system at two different servers is a conflict.
func WithServerAddr(addr string) Option {
	return func(o *Options) error {
		if addr == "" {
			return newErr("WithServerAddr", "empty address")
		}
		if o.ServerAddr != "" && o.ServerAddr != addr {
			return newErr("WithServerAddr", "conflicting addresses %q and %q", o.ServerAddr, addr)
		}
		o.ServerAddr = addr
		return nil
	}
}

// WithHashAlg selects the payload verification hash (default SHA-256).
func WithHashAlg(alg HashAlg) Option {
	return func(o *Options) error {
		if alg != HashSHA256 && alg != HashSDBM {
			return newErr("WithHashAlg", "unknown hash algorithm %v", alg)
		}
		o.HashAlg = alg
		return nil
	}
}

// WithRand sets the entropy source for all key material (crypto/rand
// by default; deterministic readers in tests).
func WithRand(r io.Reader) Option {
	return func(o *Options) error {
		if r == nil {
			return newErr("WithRand", "nil reader")
		}
		o.Rand = r
		return nil
	}
}

// WithActivenessCheck enables the SMM handler's conservative
// activeness check: patches to functions currently executing on (or
// returning into) some vCPU are refused with ErrTargetActive and can
// be retried.
func WithActivenessCheck(on bool) Option {
	return func(o *Options) error {
		o.CheckActiveness = on
		return nil
	}
}

// WithFtrace switches the booted kernel's ftrace instrumentation on or
// off (on by default). The patch server rebuilds with whatever config
// the target attests, so patches stay address-compatible either way;
// with ftrace off, trampolines overwrite function entry bytes instead
// of the __fentry__ prologue.
func WithFtrace(on bool) Option {
	return func(o *Options) error {
		o.DisableFtrace = !on
		return nil
	}
}

// WithInlining switches the kernel build's compiler inlining on or off
// (on by default). Inlining changes the patch-type landscape: helpers
// marked inline vanish from the binary when it is on (their fixes land
// at every call site, Type 2) and become directly patchable standalone
// functions when it is off (Type 1).
func WithInlining(on bool) Option {
	return func(o *Options) error {
		o.DisableInline = !on
		return nil
	}
}

// WithDialRetries allows the system's patch-server connections extra
// TCP connect attempts with exponential backoff.
func WithDialRetries(n int) Option {
	return func(o *Options) error {
		if n < 0 {
			return newErr("WithDialRetries", "must be >= 0, got %d", n)
		}
		o.DialRetries = n
		return nil
	}
}

// WithRequestRetries lets the system's patch-server connections
// reconnect and replay a transport-failed request burst (safe because
// the system's hellos are attested, so a reconnect converges on the
// same channel key).
func WithRequestRetries(n int) Option {
	return func(o *Options) error {
		if n < 0 {
			return newErr("WithRequestRetries", "must be >= 0, got %d", n)
		}
		o.RequestRetries = n
		return nil
	}
}

// WithDialBackoff sets the base backoff before the first dial or
// request retry (doubling per attempt).
func WithDialBackoff(d time.Duration) Option {
	return func(o *Options) error {
		if d < 0 {
			return newErr("WithDialBackoff", "must be >= 0, got %v", d)
		}
		o.RetryBackoff = d
		return nil
	}
}

// TemplateCache provisions Systems by COW-forking one cached template
// machine per kernel configuration instead of cold-booting every
// target: the first System for a (version, ftrace, inline,
// extra-files, dispatch, vCPUs) configuration pays the full boot, and
// every later one forks its clean memory. Each fork is provisioned
// with its own SMM attestation key, channel root, clock, and SMRAM
// lock — nothing secret is shared. Share one cache across a fleet via
// WithTemplateCache or SystemProvisioner's WithTemplateCache option.
type TemplateCache = core.TemplateCache

// TemplateCacheStats is a TemplateCache traffic snapshot.
type TemplateCacheStats = core.TemplateCacheStats

// NewTemplateCache builds an empty template cache. Close it when the
// fleet is provisioned to release the cached template machines (live
// forked Systems keep working).
func NewTemplateCache() *TemplateCache { return core.NewTemplateCache() }

// WithTemplateCache provisions the System by forking tc's cached
// template for this configuration instead of cold-booting one.
func WithTemplateCache(tc *TemplateCache) Option {
	return func(o *Options) error {
		if tc == nil {
			return newErr("WithTemplateCache", "nil cache")
		}
		o.TemplateCache = tc
		return nil
	}
}

// IntrospectConfig configures the event-driven kernel-text integrity
// layer (see WithIntrospection). The zero value enables introspection
// with defaults: a bounded event buffer, manual sweeps only, per-unit
// step events disarmed.
type IntrospectConfig = introspect.Config

// IntrospectVerdict is one typed detection raised by the introspection
// detector: kernel-text tampering, a stale-patch replay, or activeness
// grooming. Harvest them via System.Introspection().Verdicts().
type IntrospectVerdict = introspect.Verdict

// WithIntrospection enables continuous kernel-text integrity
// monitoring: cheap hooks in the memory, execution, and SMM layers
// feed a typed, bounded, drop-counting event channel, and a detector
// sweeps kernel.text against the last-known-good snapshot between
// SMIs, classifying writes outside SMI windows, unannounced patch
// SMIs, and activeness-check starvation into typed verdicts.
// Introspection is off by default; disabled, the hooks cost one
// predictable branch on paths that are already rare.
func WithIntrospection(cfg IntrospectConfig) Option {
	return func(o *Options) error {
		if cfg.Capacity < 0 {
			return newErr("WithIntrospection", "capacity must be >= 0, got %d", cfg.Capacity)
		}
		if cfg.SweepEvery < 0 {
			return newErr("WithIntrospection", "sweep period must be >= 0, got %v", cfg.SweepEvery)
		}
		if cfg.GroomThreshold < 0 {
			return newErr("WithIntrospection", "groom threshold must be >= 0, got %d", cfg.GroomThreshold)
		}
		o.Introspection = &cfg
		return nil
	}
}

// ApplyOption tunes System.ApplyAll (batch size, fetch fan-out, retry
// policy). Like every option in the package it validates eagerly:
// ApplyAll rejects out-of-range tuning before starting the pipeline.
type ApplyOption = core.ApplyOption

// ApplyAll tuning options.
var (
	WithBatchSize    = core.WithBatchSize
	WithFetchWorkers = core.WithFetchWorkers
	WithMaxRetries   = core.WithMaxRetries
	WithRetryBackoff = core.WithRetryBackoff
	WithSyncFetch    = core.WithSyncFetch
)

// New boots a simulated target machine with the given options, locks
// down SMM, attests and loads the preparation enclave, and registers
// with the patch server.
func New(opts ...Option) (*System, error) {
	return NewCtx(context.Background(), opts...)
}

// NewCtx is New with provisioning-time cancellation: ctx is checked
// between boot stages (kernel build, machine boot, SMM provisioning,
// server registration), so callers provisioning fleets can abandon
// in-flight boots when the rollout is halted.
func NewCtx(ctx context.Context, opts ...Option) (*System, error) {
	var o Options
	for _, opt := range opts {
		if opt == nil {
			return nil, newErr("Option", "nil option")
		}
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	return core.NewSystemCtx(ctx, o)
}

// NewSystem boots a system from an assembled Options struct.
//
// Deprecated: use New with functional options, which validates
// configuration eagerly and is where new knobs land. NewSystem remains
// for callers that assemble Options imperatively and delegates to the
// same construction path.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// ---------------------------------------------------------------------------
// Patch server & client — the trusted build side of the protocol.
// ---------------------------------------------------------------------------

// PatchServer is the remote, trusted patch build server.
type PatchServer = patchserver.Server

// PatchClient is a target's connection to the patch server.
type PatchClient = patchserver.Client

// OSInfo is the target build description uploaded to the server.
type OSInfo = patchserver.OSInfo

// TreeProvider supplies full kernel source trees per version.
type TreeProvider = patchserver.TreeProvider

// ServerOption configures NewPatchServer: the listen address, the
// source trees served, the build-cache bound, the per-connection idle
// deadline, and the concurrency gate.
type ServerOption = patchserver.ServerOption

// Patch server options. WithTreeProvider is required; WithListenAddr
// defaults to an ephemeral localhost port.
var (
	WithListenAddr          = patchserver.WithListenAddr
	WithTreeProvider        = patchserver.WithTreeProvider
	WithServerMaxConns      = patchserver.WithMaxConns
	WithServerAcceptWait    = patchserver.WithAcceptWait
	WithServerIdleTimeout   = patchserver.WithIdleTimeout
	WithServerCacheCapacity = patchserver.WithCacheCapacity
)

// DialOption tunes DialPatchServer: connect/request retry policy and
// I/O deadlines.
type DialOption = patchserver.DialOption

// Patch client tuning options.
var (
	WithClientDialTimeout    = patchserver.WithDialTimeout
	WithClientDialRetries    = patchserver.WithDialRetries
	WithClientRequestRetries = patchserver.WithRequestRetries
	WithClientRetryBackoff   = patchserver.WithRetryBackoff
	WithClientIOTimeout      = patchserver.WithIOTimeout
)

// NewPatchServer starts a patch server. WithTreeProvider supplies the
// kernel sources it builds from (required); WithListenAddr picks the
// TCP address ("host:0" — the default — takes an ephemeral port).
// Built patch artifacts are cached and shared across targets with the
// same kernel configuration; per-session encryption stays per-client.
func NewPatchServer(opts ...ServerOption) (*PatchServer, error) {
	return patchserver.New(opts...)
}

// DialPatchServer connects a client to a patch server.
func DialPatchServer(addr string, opts ...DialOption) (*PatchClient, error) {
	return patchserver.Dial(addr, opts...)
}

// ---------------------------------------------------------------------------
// Fleet rollout — staged canary waves across many targets.
// ---------------------------------------------------------------------------

// Rollout is a configured staged rollout of one CVE batch across a
// fleet of targets: canary wave, first percentage wave, exponentially
// widening waves — each health-gated on the targets' own metrics and
// rolled back in place when the gate fails.
type Rollout = orchestrator.Rollout

// RolloutOption configures NewRollout.
type RolloutOption = orchestrator.Option

// RolloutTarget is one fleet member, tagged with its failure domain;
// the wave scheduler never puts a quorum of one domain in flight.
type RolloutTarget = orchestrator.Target

// Patcher is the per-target patching surface a rollout drives. A
// *System is a Patcher; tests substitute fakes.
type Patcher = orchestrator.Patcher

// Provisioner turns a RolloutTarget into a live Patcher when the
// target's wave starts. SystemProvisioner builds the standard one.
type Provisioner = orchestrator.Provisioner

// RolloutResult is a finished rollout's accounting: per-target states,
// per-wave outcomes, and the canary baseline.
type RolloutResult = orchestrator.Result

// WaveResult is one wave's gated outcome.
type WaveResult = orchestrator.WaveResult

// Wave is one planned rollout stage.
type Wave = orchestrator.Wave

// RolloutState is the resumable rollout record a RolloutStore
// persists; a new coordinator handed the same store picks up where
// the last one crashed without re-patching completed targets.
type RolloutState = orchestrator.State

// TargetState is one target's recorded outcome within a rollout.
type TargetState = orchestrator.TargetState

// RolloutStatus is a target's position in the rollout lifecycle.
type RolloutStatus = orchestrator.Status

// Target lifecycle states.
const (
	RolloutPending    = orchestrator.StatusPending
	RolloutPatched    = orchestrator.StatusPatched
	RolloutFailed     = orchestrator.StatusFailed
	RolloutRolledBack = orchestrator.StatusRolledBack
)

// RolloutStore persists rollout state across coordinator restarts.
type RolloutStore = orchestrator.Store

// RolloutMemStore is an in-memory RolloutStore — the determinism
// witness in tests (Bytes exposes the exact persisted encoding).
type RolloutMemStore = orchestrator.MemStore

// RolloutFileStore is a file-backed RolloutStore with atomic saves.
type RolloutFileStore = orchestrator.FileStore

// NewRolloutFileStore builds a RolloutStore writing to path.
func NewRolloutFileStore(path string) *RolloutFileStore {
	return orchestrator.NewFileStore(path)
}

// Typed failure classes for Rollout.Run; branch with errors.Is.
var (
	ErrWaveRolledBack = orchestrator.ErrWaveRolledBack
	ErrRolloutHalted  = orchestrator.ErrRolloutHalted
	ErrStateMismatch  = orchestrator.ErrStateMismatch
)

// WaveError reports one rolled-back wave; HaltError reports an early
// stop. Retrieve them with errors.As.
type (
	WaveError = orchestrator.WaveError
	HaltError = orchestrator.HaltError
)

// Rollout options. WithTargets, WithCVEs, and WithProvisioner are
// required; the rest tune wave shape, health gating, chaos, and
// persistence.
var (
	WithTargets            = orchestrator.WithTargets
	WithCVEs               = orchestrator.WithCVEs
	WithProvisioner        = orchestrator.WithProvisioner
	WithCanarySize         = orchestrator.WithCanarySize
	WithFirstWaveFraction  = orchestrator.WithFirstWaveFraction
	WithGrowthFactor       = orchestrator.WithGrowthFactor
	WithWaveConcurrency    = orchestrator.WithWaveConcurrency
	WithSeed               = orchestrator.WithSeed
	WithPauseBudget        = orchestrator.WithPauseBudget
	WithRegressFactor      = orchestrator.WithRegressFactor
	WithUnhealthyTolerance = orchestrator.WithUnhealthyTolerance
	WithHaltThreshold      = orchestrator.WithHaltThreshold
	WithTargetBatchSize    = orchestrator.WithTargetBatchSize
	WithTargetFetchWorkers = orchestrator.WithTargetFetchWorkers
	WithTargetSyncFetch    = orchestrator.WithTargetSyncFetch
	WithStateStore         = orchestrator.WithStateStore
	WithTargetFaults       = orchestrator.WithTargetFaults
	WithWallClock          = orchestrator.WithWallClock
	WithRolloutObserver    = orchestrator.WithObserver
	WithProgress           = orchestrator.WithProgress
)

// FaultFraction builds a deterministic chaos schedule for
// WithTargetFaults: a seeded hash selects frac of the fleet to
// receive the given faults, replayably. SMIFaults is the canonical
// mid-SMI schedule (the chipset refuses the first n SMI deliveries).
var (
	FaultFraction = orchestrator.FaultFraction
	SMIFaults     = orchestrator.SMIFaults
)

// NewRollout builds a staged rollout. The wave plan is fixed here —
// a pure function of the fleet, the options, and the seed — and, when
// WithStateStore finds persisted state for this rollout, construction
// adopts it so Run resumes instead of starting over.
func NewRollout(opts ...RolloutOption) (*Rollout, error) {
	return orchestrator.New(opts...)
}

// SystemProvisioner is the standard fleet provisioner: each target
// boots a fresh simulated System dialed at the shared patch server,
// with any extra New options applied after the address. Provisioning
// honors ctx — a halted rollout stops booting stragglers. Pass
// WithTemplateCache(cache) in opts to fork targets from cached
// templates instead of cold-booting each one.
func SystemProvisioner(serverAddr string, opts ...Option) Provisioner {
	return func(ctx context.Context, t RolloutTarget) (Patcher, error) {
		sys, err := NewCtx(ctx, append([]Option{WithServerAddr(serverAddr)}, opts...)...)
		if err != nil {
			return nil, fmt.Errorf("provision %s: %w", t.ID, err)
		}
		return sys, nil
	}
}

// ---------------------------------------------------------------------------
// CVE benchmark, kernels & workloads — the paper's evaluation inputs.
// ---------------------------------------------------------------------------

// CVE is one benchmark vulnerability: vulnerable subsystem source, its
// fix, and an exploit probe.
type CVE = cvebench.Entry

// ExploitResult reports one exploit probe.
type ExploitResult = cvebench.ExploitResult

// CVEList returns the paper's 30-entry Table I benchmark suite.
func CVEList() []*CVE { return cvebench.All() }

// FigureCVEs returns the six CVEs of the paper's Figures 4 and 5.
func FigureCVEs() []*CVE { return cvebench.FigureSix() }

// LookupCVE returns a benchmark entry by identifier.
func LookupCVE(id string) (*CVE, bool) { return cvebench.Get(id) }

// TreeProviderFor builds a TreeProvider whose kernels include the
// given entries' vulnerable subsystems (the distro vendor's full
// source view).
func TreeProviderFor(entries ...*CVE) TreeProvider {
	return cvebench.TreeProviderFor(entries...)
}

// SourceTree is a kernel source tree.
type SourceTree = kernel.SourceTree

// SourcePatch is a source-level kernel patch.
type SourcePatch = kernel.SourcePatch

// BaseKernelTree returns the base kernel source for a supported
// version ("3.14" or "4.4").
func BaseKernelTree(version string) (*SourceTree, error) { return kernel.BaseTree(version) }

// Workload is the Sysbench-like whole-system workload driver.
type Workload = workload.Driver

// WorkloadKind selects the workload mix.
type WorkloadKind = workload.Kind

// Workload kinds.
const (
	WorkloadCPU    = workload.CPU
	WorkloadMemory = workload.Memory
	WorkloadMixed  = workload.Mixed
)

// NewWorkload creates a workload driver on a system's kernel.
func NewWorkload(sys *System, kind WorkloadKind) *Workload {
	return workload.New(sys.Kernel, kind)
}

// ---------------------------------------------------------------------------
// Adversarial demos — the kernel-resident attacker of §V-D.
// ---------------------------------------------------------------------------

// Rootkit simulates a kernel-resident attacker on a System: it
// snapshots the entry bytes of chosen kernel functions and can later
// restore them at kernel privilege — the malicious patch reversion of
// the paper's §V-D. It exists so examples and experiments can
// demonstrate that SMM introspection (System.Protect) detects and
// repairs the reversion, where kernel-trusted patching systems are
// silently defeated.
type Rootkit struct {
	sys   *System
	saved map[string][]byte
}

// InstallRootkit plants the attacker before patching: it snapshots the
// (still vulnerable) entry bytes of the named kernel functions.
func InstallRootkit(sys *System, functions ...string) (*Rootkit, error) {
	rk := &Rootkit{sys: sys, saved: make(map[string][]byte, len(functions))}
	for _, fn := range functions {
		buf, err := sys.Kernel.FuncBytes(fn)
		if err != nil {
			return nil, fmt.Errorf("rootkit: %w", err)
		}
		n := 10
		if len(buf) < n {
			n = len(buf)
		}
		rk.saved[fn] = buf[:n]
	}
	return rk, nil
}

// RevertPatches writes the snapshotted vulnerable bytes back over the
// function entries, undoing any trampolines — a kernel-privilege
// write, exactly what a rootkit can do.
func (rk *Rootkit) RevertPatches() error {
	for fn, orig := range rk.saved {
		addr, err := rk.sys.Kernel.FuncAddr(fn)
		if err != nil {
			return fmt.Errorf("rootkit: %w", err)
		}
		if err := rk.sys.Machine.Mem.Write(mem.PrivKernel, addr, orig); err != nil {
			return fmt.Errorf("rootkit: %w", err)
		}
	}
	return nil
}
