package patchserver

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/faultinject"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// assertServerStillServes proves the server survived whatever the test
// just threw at it: a fresh well-formed client completes a full
// hello→patch exchange.
func assertServerStillServes(t *testing.T, srv *Server, cve string) {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("server no longer accepting: %v", err)
	}
	defer c.Close()
	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
		t.Fatalf("server no longer serving hellos: %v", err)
	}
	if _, err := c.FetchPatch(context.Background(), cve); err != nil {
		t.Fatalf("server no longer serving patches: %v", err)
	}
}

// TestGarbageBytesKillOnlyThatSession writes non-gob garbage to a raw
// connection: the server must drop that session (EOF back to us) and
// keep serving everyone else.
func TestGarbageBytesKillOnlyThatSession(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_ = raw.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Write([]byte("\xff\x03not a gob stream at all\x00\x00")); err != nil {
		t.Fatal(err)
	}
	// The server closes the broken session: our read drains to EOF.
	if _, err := io.Copy(io.Discard, raw); err != nil {
		t.Fatalf("draining killed session: %v", err)
	}

	assertServerStillServes(t, srv, entries[0].CVE)
}

// TestTruncatedStreamKillsOnlyThatSession sends a valid gob prefix and
// hangs up mid-message: the server sees an unexpected EOF, drops the
// session, and keeps serving.
func TestTruncatedStreamKillsOnlyThatSession(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")

	full, err := gobEncode(&request{Kind: kindHello, Info: OSInfo{Version: "4.4"}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_ = raw.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	_ = raw.(*net.TCPConn).CloseWrite()
	if _, err := io.Copy(io.Discard, raw); err != nil {
		t.Fatalf("draining truncated session: %v", err)
	}

	assertServerStillServes(t, srv, entries[0].CVE)
}

// TestPatchBeforeHelloKeepsSessionAlive sends a patch request before
// any hello: the server answers with an in-band error and the same
// session can then hello and fetch normally — protocol errors are not
// transport errors.
func TestPatchBeforeHelloKeepsSessionAlive(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.FetchPatch(context.Background(), entries[0].CVE); err == nil {
		t.Fatal("patch served before hello")
	}
	// Same connection, proper order: everything works.
	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
		t.Fatalf("hello after rejected patch: %v", err)
	}
	if _, err := c.FetchPatch(context.Background(), entries[0].CVE); err != nil {
		t.Fatalf("fetch after rejected patch: %v", err)
	}
}

// TestMidResponseDisconnect has a client hang up right after sending a
// patch request, while the server is (or is about to be) writing the
// response. Only that session dies.
func TestMidResponseDisconnect(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")

	hello, err := gobEncode(&request{
		Kind:        kindHello,
		Info:        OSInfo{Version: "4.4", Ftrace: true, Inline: true},
		Measurement: goodMeasurement("4.4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	fetch, err := gobEncode(&request{Kind: kindPatch, CVE: entries[0].CVE})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(append(hello, fetch...)); err != nil {
		t.Fatal(err)
	}
	// Hang up without reading either response: the server's writes hit
	// a dead peer.
	raw.Close()

	assertServerStillServes(t, srv, entries[0].CVE)
}

// TestSilentClientDoesNotBlockClose is the regression test for the
// connection-pinning bug: a client that connects and then never sends
// a byte used to park its serve goroutine in Decode forever (no read
// deadline), so Server.Close hung on wg.Wait. Close must now return
// promptly — the watchdog failed before the fix.
func TestSilentClientDoesNotBlockClose(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Give the accept loop a moment to hand the conn to a serve
	// goroutine, so Close genuinely has a parked reader to reap.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Live() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on a silent client (serve goroutine pinned without a read deadline)")
	}
}

// TestIdleDeadlineReapsSilentClient proves the idle deadline alone —
// no Close involved — reclaims a silent connection's goroutine.
func TestIdleDeadlineReapsSilentClient(t *testing.T) {
	e, ok := cvebench.Get("CVE-2014-0196")
	if !ok {
		t.Fatal("unknown CVE")
	}
	srv, err := NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e),
		WithIdleTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(e.SourcePatch())

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_ = raw.SetDeadline(time.Now().Add(5 * time.Second))
	// The server reaps us at the idle deadline: our read returns EOF
	// well before our own 5s guard.
	if _, err := io.Copy(io.Discard, raw); err != nil {
		t.Fatalf("expected clean EOF from idle reap, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Live() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection still live: %d", srv.Live())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDialRetrySucceedsAfterInjectedFailures drives the dial-retry
// path on fake time: the first two connect attempts fail via the
// injected DialError fault, the third succeeds, and the backoff waits
// are visible on the fake clock instead of the host's.
func TestDialRetrySucceedsAfterInjectedFailures(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")

	fw := timing.NewFakeWall()
	fi := faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.DialError, Call: 0},
		faultinject.Fault{Point: faultinject.DialError, Call: 1},
	))
	hooks := obs.NewHooks(16, fw)

	c, err := Dial(srv.Addr(),
		WithDialRetries(3),
		WithRetryBackoff(10*time.Millisecond),
		WithClientWallClock(fw),
		WithClientFaultInjector(fi),
		WithClientObserver(hooks),
	)
	if err != nil {
		t.Fatalf("dial with retries: %v", err)
	}
	defer c.Close()
	// Backoff doubled across the two retries: 10ms + 20ms of fake time.
	if got := fw.Slept(); got != 30*time.Millisecond {
		t.Errorf("fake backoff slept %v, want 30ms", got)
	}
	if got := hooks.Metrics.Counter(obs.CtrDialRetries).Value(); got != 2 {
		t.Errorf("dial retries counter = %d, want 2", got)
	}

	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchPatch(context.Background(), entries[0].CVE); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetriesExhausted: with fewer retries than injected failures
// the dial fails, and the error unwraps to the injected sentinel.
func TestDialRetriesExhausted(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	faults := make([]faultinject.Fault, 5)
	for i := range faults {
		faults[i] = faultinject.Fault{Point: faultinject.DialError, Call: i}
	}
	fi := faultinject.New(faultinject.Exact(faults...))
	_, err := Dial(srv.Addr(),
		WithDialRetries(2),
		WithRetryBackoff(time.Nanosecond),
		WithClientFaultInjector(fi),
	)
	if err == nil {
		t.Fatal("dial succeeded past injected failures")
	}
}

// TestRequestRetryReconnects kills the client's connection out from
// under it mid-session; with request retries enabled the next fetch
// transparently redials, replays the attested hello, and succeeds with
// the same channel key.
func TestRequestRetryReconnects(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr(),
		WithRequestRetries(2),
		WithRetryBackoff(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	attKey := bytes.Repeat([]byte{5}, 32)
	key1, err := c.HelloWithAttestation(info, goodMeasurement(info.Version), attKey)
	if err != nil {
		t.Fatal(err)
	}

	// Sever the transport behind the client's back.
	c.connMu.Lock()
	c.conn.Close()
	c.connMu.Unlock()

	blob, err := c.FetchPatch(context.Background(), entries[0].CVE)
	if err != nil {
		t.Fatalf("fetch after severed transport: %v", err)
	}
	if len(blob) == 0 {
		t.Fatal("empty blob after reconnect")
	}
	// The replayed attested hello converged on the same channel key, so
	// the blob still decrypts under key1.
	key2, err := c.HelloWithAttestation(info, goodMeasurement(info.Version), attKey)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key1, key2) {
		t.Error("reconnect changed the attested channel key")
	}
}

// TestNoRequestRetryFailsFast: without request retries a severed
// transport surfaces the error to the caller (the default behavior
// every pre-existing test relies on).
func TestNoRequestRetryFailsFast(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
		t.Fatal(err)
	}
	c.connMu.Lock()
	c.conn.Close()
	c.connMu.Unlock()
	if _, err := c.FetchPatch(context.Background(), entries[0].CVE); err == nil {
		t.Fatal("fetch succeeded on a severed transport without retries")
	}
}
