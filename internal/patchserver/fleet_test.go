package patchserver

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
)

// fleetConfigs are the three distinct build configurations the fleet
// conformance suite spreads its targets across.
var fleetConfigs = []OSInfo{
	{Version: "4.4", Ftrace: true, Inline: true},
	{Version: "4.4", Ftrace: false, Inline: true},
	{Version: "3.14", Ftrace: true, Inline: true},
}

// TestFleetConformance is the 64-target end-to-end conformance run over
// real TCP loopback: every target completes hello→patch→status for a
// wave of CVEs, targets sharing a build configuration receive
// byte-identical plaintext patches, the server performs exactly one
// double kernel build per distinct (configuration, CVE) pair no matter
// how many targets request it, and every status report arrives.
func TestFleetConformance(t *testing.T) {
	const nTargets = 64
	cves := []string{"CVE-2014-0196", "CVE-2016-7916"}
	srv, _ := newTestServer(t, cves...)

	type fetchKey struct {
		config int
		cve    string
	}
	var (
		mu     sync.Mutex
		plains = make(map[fetchKey][][]byte) // decrypted plaintexts per (config, CVE)
	)
	var wg sync.WaitGroup
	errs := make(chan error, nTargets)
	for i := 0; i < nTargets; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cfg := id % len(fleetConfigs)
			info := fleetConfigs[cfg]
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- fmt.Errorf("target %d dial: %w", id, err)
				return
			}
			defer c.Close()
			// Anonymous hello: every session gets its own channel key, so
			// the identical-plaintext assertion below also witnesses that
			// per-session encryption stayed per-client.
			key, err := c.Hello(info, goodMeasurement(info.Version))
			if err != nil {
				errs <- fmt.Errorf("target %d hello: %w", id, err)
				return
			}
			sess, err := kcrypto.NewSession(key, nil)
			if err != nil {
				errs <- err
				return
			}
			rs, err := c.FetchPatches(context.Background(), cves)
			if err != nil {
				errs <- fmt.Errorf("target %d fetch: %w", id, err)
				return
			}
			for _, r := range rs {
				if r.Err != nil {
					errs <- fmt.Errorf("target %d %s: %w", id, r.CVE, r.Err)
					return
				}
				plain, err := sess.Decrypt(r.Blob)
				if err != nil {
					errs <- fmt.Errorf("target %d %s decrypt: %w", id, r.CVE, err)
					return
				}
				mu.Lock()
				k := fetchKey{cfg, r.CVE}
				plains[k] = append(plains[k], plain)
				mu.Unlock()
			}
			if err := c.ReportStatus(1, uint64(id)+1, bytes.Repeat([]byte{byte(id)}, 8)); err != nil {
				errs <- fmt.Errorf("target %d status: %w", id, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Byte-identical plaintext per (config, CVE) — and distinct across
	// configs for the same CVE (the server honored each configuration).
	for cfg := range fleetConfigs {
		for _, cve := range cves {
			group := plains[fetchKey{cfg, cve}]
			if want := nTargets / len(fleetConfigs); len(group) < want {
				t.Fatalf("config %d %s: %d plaintexts, want >= %d", cfg, cve, len(group), want)
			}
			for i := 1; i < len(group); i++ {
				if !bytes.Equal(group[0], group[i]) {
					t.Fatalf("config %d %s: plaintext %d differs from plaintext 0", cfg, cve, i)
				}
			}
		}
	}
	for _, cve := range cves {
		if bytes.Equal(plains[fetchKey{0, cve}][0], plains[fetchKey{1, cve}][0]) {
			t.Errorf("%s: ftrace=true and ftrace=false configs produced identical patches", cve)
		}
	}

	// Exactly one double kernel build per distinct (config, CVE) pair.
	if want := uint64(len(fleetConfigs) * len(cves)); srv.Builds() != want {
		t.Errorf("server builds = %d, want exactly %d (one per (config, CVE))", srv.Builds(), want)
	}
	if got := len(srv.Statuses()); got != nTargets {
		t.Errorf("status reports = %d, want %d", got, nTargets)
	}
}

// TestCacheSoakUnderEviction hammers the single-flight cache from
// concurrent sessions while the 2-entry capacity forces constant
// eviction, then closes the server mid-flight and asserts the drain
// leaks no goroutines. Run under -race this is the cache's
// thread-safety witness.
func TestCacheSoakUnderEviction(t *testing.T) {
	before := runtime.NumGoroutine()

	cves := []string{"CVE-2014-0196", "CVE-2016-7916"}
	srv, _ := newTestServer(t, cves...)
	// Capacity 2 with 8 distinct build keys in play: most fetches
	// rebuild, concurrent identical fetches coalesce, entries churn.
	srv.cache = newBuildCache(2)

	configs := []OSInfo{
		{Version: "4.4", Ftrace: true, Inline: true},
		{Version: "4.4", Ftrace: false, Inline: true},
		{Version: "4.4", Ftrace: true, Inline: false},
		{Version: "4.4", Ftrace: false, Inline: false},
	}
	const workers = 12
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				return // server may already be closing
			}
			defer c.Close()
			info := configs[w%len(configs)]
			if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the mid-flight Close lands; the
				// soak only cares that nothing races or leaks.
				_, _ = c.FetchPatch(context.Background(), cves[i%len(cves)])
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond) // let the fleet reach steady state
	srv.Close()                        // mid-flight: workers are inside fetches
	close(stop)
	wg.Wait()

	if n := srv.CachedArtifacts(); n > 2 {
		t.Errorf("cache retained %d entries, capacity 2", n)
	}

	// All server and client goroutines must be gone. Poll: goroutine
	// teardown is asynchronous after Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 { // slack for runtime helpers
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainFinishesInFlight verifies graceful drain: after Drain is
// initiated no new connection is accepted, but a response already in
// flight completes.
func TestDrainFinishesInFlight(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
		t.Fatal(err)
	}

	// Start a fetch, then drain concurrently: the fetch must still be
	// answered (drain finishes in-flight work, it does not abort it).
	fetchDone := make(chan error, 1)
	go func() {
		_, err := c.FetchPatch(context.Background(), entries[0].CVE)
		fetchDone <- err
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(drainCtx) }()

	if err := <-fetchDone; err != nil {
		t.Fatalf("in-flight fetch aborted by drain: %v", err)
	}
	// An established session keeps being served while the drain waits.
	if _, err := c.FetchPatch(context.Background(), entries[0].CVE); err != nil {
		t.Fatalf("established session dropped during drain: %v", err)
	}
	// Draining stopped the listener: new connections are refused.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("dial succeeded during drain")
	}
	// Once the last client leaves, the drain completes.
	c.Close()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv.Close()
}

// TestMaxConnsBackpressureAndRefusal exercises the connection gate in
// both modes: with no accept wait the gate applies pure backpressure
// (the connection is served once a slot frees), and with an accept
// wait the connection is actively refused with a capacity error.
func TestMaxConnsBackpressureAndRefusal(t *testing.T) {
	e, ok := cvebench.Get("CVE-2014-0196")
	if !ok {
		t.Fatal("unknown CVE")
	}
	gated, err := NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e),
		WithMaxConns(1), WithAcceptWait(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer gated.Close()
	gated.RegisterPatch(e.SourcePatch())

	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	c1, err := Dial(gated.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Hello(info, goodMeasurement(info.Version)); err != nil {
		t.Fatal(err)
	}

	// The single slot is held by c1: a second client is refused after
	// the accept wait, with the capacity error on its first response.
	c2, err := Dial(gated.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.Hello(info, goodMeasurement(info.Version))
	if err == nil {
		t.Fatal("second client served past a full gate")
	}
	if gated.Refused() != 1 {
		t.Errorf("refused = %d, want 1", gated.Refused())
	}

	// Once c1 leaves, the slot frees and a new client is served.
	c1.Close()
	var c3 *Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err = Dial(gated.Addr())
		if err == nil {
			if _, err = c3.Hello(info, goodMeasurement(info.Version)); err == nil {
				break
			}
			c3.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer c3.Close()
	if _, err := c3.FetchPatch(context.Background(), e.CVE); err != nil {
		t.Fatalf("fetch after slot freed: %v", err)
	}
}
