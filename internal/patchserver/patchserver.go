// Package patchserver implements KShot's remote Patch Server and its
// client protocol (§IV, §V-A): the target uploads its OS information
// (version, build configuration, enclave measurement); the server
// verifies the enclave identity (the MITM mitigation of §V-C),
// establishes an encrypted channel to it, rebuilds pre- and post-patch
// kernels with the target's exact configuration, extracts the
// function-level binary diff, and ships it encrypted; finally, the
// target's status reports let the server detect stalled patch
// deployments (the DoS-detection handshake of §V-D).
//
// The wire protocol is length-framed gob over TCP (stdlib net).
package patchserver

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/obs"
	"kshot/internal/patch"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/timing"
)

// OSInfo is what the target machine reports about itself — enough for
// the server to rebuild a bit-identical kernel binary.
type OSInfo struct {
	Version string
	Ftrace  bool
	Inline  bool
}

// Request/response message kinds.
const (
	kindHello  = "hello"
	kindPatch  = "patch"
	kindStatus = "status"
)

type request struct {
	Kind string

	// hello
	Info        OSInfo
	Measurement sgx.Measurement
	// AttKey is the status-attestation HMAC key the target provisioned
	// into its SMM handler, so the server can authenticate deployment
	// confirmations. (The hello channel is assumed transport-protected,
	// as the paper assumes encrypted server communication.)
	AttKey []byte

	// patch
	CVE string

	// status
	Code   uint32
	Seq    uint64
	Digest []byte
	MAC    []byte
}

type response struct {
	Err string

	// hello
	ServerKey []byte

	// patch
	Blob []byte
}

// TreeProvider returns the full kernel source tree for a version —
// the distro vendor's copy, which must match what the target runs.
type TreeProvider func(version string) (*kernel.SourceTree, error)

// Server is the remote patch server.
type Server struct {
	ln    net.Listener
	trees TreeProvider

	mu       sync.Mutex
	patches  map[string]kernel.SourcePatch
	statuses []StatusReport
	closed   bool
	wg       sync.WaitGroup

	// channelKeys caches the server→enclave channel key per attested
	// target identity (version + measurement + attestation key), so a
	// target may open several helper connections — pipelined fetching —
	// that all encrypt to the one key its enclave holds. Only attested
	// hellos (non-empty AttKey) are cached; anonymous hellos keep the
	// fresh-key-per-connection behavior.
	channelKeys map[string][]byte
}

// StatusReport is one target status received by the server.
type StatusReport struct {
	Code   uint32
	Seq    uint64
	Digest []byte
	At     time.Time

	// Authentic reports whether the record's HMAC verified under the
	// attestation key the target registered at hello. A forged
	// confirmation (a kernel attacker scribbling on the mem_RW mailbox
	// to mask a suppressed deployment) arrives with Authentic=false.
	Authentic bool
}

// NewServer starts a server on addr ("127.0.0.1:0" for an ephemeral
// port). Close it when done.
func NewServer(addr string, trees TreeProvider) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("patchserver: %w", err)
	}
	s := &Server{
		ln: ln, trees: trees,
		patches:     make(map[string]kernel.SourcePatch),
		channelKeys: make(map[string][]byte),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// RegisterPatch adds a source patch (a CVE fix) to the server's
// catalogue.
func (s *Server) RegisterPatch(p kernel.SourcePatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.patches[p.ID] = p
}

// Statuses returns the status reports received so far.
func (s *Server) Statuses() []StatusReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StatusReport(nil), s.statuses...)
}

// AwaitStatus waits for a target status report with sequence number
// greater than `after`. Returning ok=false after the timeout is the
// paper's DoS detection (§V-D): the server initiated a patch, but the
// target's helper never confirmed deployment — an attacker is likely
// suppressing the patching flow and the operator should intervene.
func (s *Server) AwaitStatus(after uint64, timeout time.Duration) (StatusReport, bool) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		for _, st := range s.statuses {
			if st.Seq > after {
				s.mu.Unlock()
				return st, true
			}
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			return StatusReport{}, false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the server and waits for connection handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// session is the per-connection state: the registered target.
type session struct {
	info      OSInfo
	serverKey []byte
	crypt     *kcrypto.Session
	attKey    []byte
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var sess *session

	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		resp := s.handle(&sess, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(sess **session, req *request) *response {
	switch req.Kind {
	case kindHello:
		return s.handleHello(sess, req)
	case kindPatch:
		return s.handlePatch(*sess, req)
	case kindStatus:
		rep := StatusReport{
			Code: req.Code, Seq: req.Seq,
			Digest: append([]byte(nil), req.Digest...),
			At:     time.Now(),
		}
		if sess := *sess; sess != nil && len(sess.attKey) > 0 && len(req.MAC) == kcrypto.DigestSize {
			buf := make([]byte, 12+len(req.Digest))
			binary.LittleEndian.PutUint32(buf, req.Code)
			binary.LittleEndian.PutUint64(buf[4:], req.Seq)
			copy(buf[12:], req.Digest)
			var mac [kcrypto.DigestSize]byte
			copy(mac[:], req.MAC)
			rep.Authentic = kcrypto.VerifyMAC(sess.attKey, buf, mac)
		}
		s.mu.Lock()
		s.statuses = append(s.statuses, rep)
		s.mu.Unlock()
		return &response{}
	default:
		return &response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

func (s *Server) handleHello(sess **session, req *request) *response {
	// Verify the enclave identity: a genuine KShot preparation enclave
	// for the reported kernel version has a known measurement. This is
	// how the server refuses to provision keys to an impostor enclave
	// (§V-C's MITM mitigation).
	expected := sgx.MeasureIdentity(sgxprep.Identity(req.Info.Version))
	if req.Measurement != expected {
		return &response{Err: "enclave attestation failed: unexpected measurement"}
	}
	if _, err := s.trees(req.Info.Version); err != nil {
		return &response{Err: fmt.Sprintf("unsupported kernel: %v", err)}
	}
	var cacheID string
	if len(req.AttKey) > 0 {
		sum := sha256.Sum256(req.AttKey)
		cacheID = fmt.Sprintf("%s|%t|%t|%x|%x", req.Info.Version, req.Info.Ftrace, req.Info.Inline, req.Measurement, sum)
	}
	key := make([]byte, 32)
	s.mu.Lock()
	cached, ok := s.channelKeys[cacheID]
	s.mu.Unlock()
	if cacheID != "" && ok {
		copy(key, cached)
	} else {
		if _, err := io.ReadFull(rand.Reader, key); err != nil {
			return &response{Err: "server entropy failure"}
		}
		if cacheID != "" {
			s.mu.Lock()
			if prior, ok := s.channelKeys[cacheID]; ok {
				copy(key, prior) // lost a racing hello: converge on its key
			} else {
				s.channelKeys[cacheID] = append([]byte(nil), key...)
			}
			s.mu.Unlock()
		}
	}
	crypt, err := kcrypto.NewSession(key, nil)
	if err != nil {
		return &response{Err: err.Error()}
	}
	*sess = &session{
		info: req.Info, serverKey: key, crypt: crypt,
		attKey: append([]byte(nil), req.AttKey...),
	}
	return &response{ServerKey: key}
}

func (s *Server) handlePatch(sess *session, req *request) *response {
	if sess == nil {
		return &response{Err: "hello required before patch requests"}
	}
	blob, err := s.BuildPatchBlob(sess.info, req.CVE, sess.crypt)
	if err != nil {
		return &response{Err: err.Error()}
	}
	return &response{Blob: blob}
}

// BuildPatchBlob rebuilds pre/post kernels with the target's exact
// configuration, extracts the binary patch, and encrypts it for the
// enclave. Exposed for in-process use by benchmarks that bypass TCP.
func (s *Server) BuildPatchBlob(info OSInfo, cve string, crypt *kcrypto.Session) ([]byte, error) {
	s.mu.Lock()
	sp, ok := s.patches[cve]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no patch registered for %q", cve)
	}
	pre, err := s.trees(info.Version)
	if err != nil {
		return nil, err
	}
	// Apply the target's build configuration knobs.
	cfg := pre.Config()
	cfg.Ftrace = info.Ftrace
	cfg.Inline = info.Inline
	preTree := kernel.NewSourceTree(cfg)
	for _, f := range pre.Files() {
		src, _ := pre.File(f)
		preTree.AddFile(f, src)
	}
	preImg, preUnit, err := preTree.Build()
	if err != nil {
		return nil, fmt.Errorf("pre build: %w", err)
	}
	postTree := preTree.Clone()
	if err := postTree.Apply(sp); err != nil {
		return nil, err
	}
	postImg, postUnit, err := postTree.Build()
	if err != nil {
		return nil, fmt.Errorf("post build: %w", err)
	}
	bp, err := patch.Build(cve, info.Version, patch.ImagePair{Img: preImg, Unit: preUnit}, patch.ImagePair{Img: postImg, Unit: postUnit})
	if err != nil {
		return nil, err
	}
	plain, err := gobEncode(bp)
	if err != nil {
		return nil, err
	}
	return crypt.Encrypt(plain)
}

// Client is the target machine's connection to the patch server. Its
// methods are invoked by the untrusted helper application; everything
// it carries is ciphertext or public.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	mu   sync.Mutex

	// fi injects per-fetch failures (errors, truncated bodies, extra
	// latency) for the chaos suite; wall paces injected latency so
	// fakes keep the suite off the host clock. Guarded by mu.
	fi   *faultinject.Set
	wall timing.WallClock
	obs  *obs.Hooks
}

// Dial connects to the server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("patchserver dial: %w", err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted on every fetch result.
func (c *Client) SetFaultInjector(fi *faultinject.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fi = fi
}

// SetWallClock replaces the clock that paces injected fetch latency
// (real time when nil).
func (c *Client) SetWallClock(wc timing.WallClock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wall = wc
}

// SetObserver installs (or, with nil, removes) the observability hooks
// counting per-CVE fetch outcomes.
func (c *Client) SetObserver(ob *obs.Hooks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = ob
}

func (c *Client) hooks() (*faultinject.Set, timing.WallClock, *obs.Hooks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wall := c.wall
	if wall == nil {
		wall = timing.Real()
	}
	return c.fi, wall, c.obs
}

func (c *Client) roundTrip(req *request) (*response, error) {
	resps, err := c.roundTrips(context.Background(), []*request{req})
	if err != nil {
		return nil, err
	}
	if resps[0].Err != "" {
		return nil, errors.New("patchserver: " + resps[0].Err)
	}
	return resps[0], nil
}

// roundTrips sends a pipelined burst of requests and collects the
// responses in order. The server's per-connection loop processes
// requests sequentially, so pipelining N fetches saves N-1 round trip
// waits without any protocol change.
//
// Cancellation is logical, not transport-level: when ctx fires, the
// call returns immediately, but the exchange finishes in the
// background under the connection mutex so the gob stream stays framed
// and the client remains usable. (An abandoned fetch's responses are
// drained and discarded.)
func (c *Client) roundTrips(ctx context.Context, reqs []*request) ([]*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		resps []*response
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, req := range reqs {
			if err := c.enc.Encode(req); err != nil {
				ch <- outcome{nil, fmt.Errorf("patchserver send: %w", err)}
				return
			}
		}
		resps := make([]*response, 0, len(reqs))
		for range reqs {
			var resp response
			if err := c.dec.Decode(&resp); err != nil {
				ch <- outcome{nil, fmt.Errorf("patchserver recv: %w", err)}
				return
			}
			resps = append(resps, &resp)
		}
		ch <- outcome{resps, nil}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case out := <-ch:
		return out.resps, out.err
	}
}

// Hello registers the target's OS information and enclave measurement
// and returns the server→enclave channel key (provisioned under the
// attested measurement).
func (c *Client) Hello(info OSInfo, meas sgx.Measurement) ([]byte, error) {
	return c.HelloWithAttestation(info, meas, nil)
}

// HelloWithAttestation additionally registers the target's
// status-attestation key so the server can authenticate deployment
// confirmations.
func (c *Client) HelloWithAttestation(info OSInfo, meas sgx.Measurement, attKey []byte) ([]byte, error) {
	resp, err := c.roundTrip(&request{Kind: kindHello, Info: info, Measurement: meas, AttKey: attKey})
	if err != nil {
		return nil, err
	}
	if len(resp.ServerKey) != 32 {
		return nil, errors.New("patchserver: malformed server key")
	}
	return resp.ServerKey, nil
}

// FetchResult is one CVE's outcome from a pipelined fetch.
type FetchResult struct {
	CVE  string
	Blob []byte
	Err  error
}

// FetchPatch downloads the encrypted binary patch for a CVE. The
// context cancels or deadlines the wait (see roundTrips for the
// cancellation semantics).
func (c *Client) FetchPatch(ctx context.Context, cve string) ([]byte, error) {
	rs, err := c.FetchPatches(ctx, []string{cve})
	if err != nil {
		return nil, err
	}
	if rs[0].Err != nil {
		return nil, rs[0].Err
	}
	return rs[0].Blob, nil
}

// FetchPatches downloads many encrypted binary patches in one
// pipelined burst over the connection. The returned slice matches cves
// in order; per-CVE failures land in FetchResult.Err while the error
// return is reserved for transport-level failures.
func (c *Client) FetchPatches(ctx context.Context, cves []string) ([]FetchResult, error) {
	reqs := make([]*request, len(cves))
	for i, cve := range cves {
		reqs[i] = &request{Kind: kindPatch, CVE: cve}
	}
	fi, wall, ob := c.hooks()
	resps, err := c.roundTrips(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]FetchResult, len(cves))
	for i, resp := range resps {
		out[i].CVE = cves[i]
		ob.Count(obs.CtrFetches, 1)
		// Injected transport failures, applied per result: extra
		// latency (an induced timeout when ctx expires first), a
		// failed fetch, or a truncated body the enclave must reject.
		if d, ok := fi.Delay(faultinject.FetchDelay); ok {
			if !wall.Sleep(ctx, d) {
				return nil, ctx.Err()
			}
		}
		if err := fi.Error(faultinject.FetchError); err != nil {
			out[i].Err = fmt.Errorf("patchserver: %s: %w", cves[i], err)
			ob.Count(obs.CtrFetchErrors, 1)
			continue
		}
		if resp.Err != "" {
			out[i].Err = errors.New("patchserver: " + resp.Err)
			ob.Count(obs.CtrFetchErrors, 1)
			continue
		}
		blob := resp.Blob
		if n, ok := fi.Truncate(faultinject.FetchTruncate, len(blob)); ok {
			blob = blob[:n]
		}
		out[i].Blob = blob
	}
	return out, nil
}

// ReportStatus forwards the SMM status mailbox to the server (the
// deployment-progress handshake the server uses for DoS detection).
func (c *Client) ReportStatus(code uint32, seq uint64, digest []byte) error {
	return c.ReportStatusMAC(code, seq, digest, nil)
}

// ReportStatusMAC forwards a status record together with its HMAC.
func (c *Client) ReportStatusMAC(code uint32, seq uint64, digest, mac []byte) error {
	_, err := c.roundTrip(&request{Kind: kindStatus, Code: code, Seq: seq, Digest: digest, MAC: mac})
	return err
}

func gobEncode(v any) ([]byte, error) {
	var b netBuffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, err
	}
	return b.data, nil
}

// netBuffer is a minimal io.Writer over a byte slice.
type netBuffer struct{ data []byte }

func (b *netBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
