// Package patchserver implements KShot's remote Patch Server and its
// client protocol (§IV, §V-A): the target uploads its OS information
// (version, build configuration, enclave measurement); the server
// verifies the enclave identity (the MITM mitigation of §V-C),
// establishes an encrypted channel to it, rebuilds pre- and post-patch
// kernels with the target's exact configuration, extracts the
// function-level binary diff, and ships it encrypted; finally, the
// target's status reports let the server detect stalled patch
// deployments (the DoS-detection handshake of §V-D).
//
// The server is built to serve fleets, not single targets: built
// artifacts are cached in a bounded LRU keyed by (version, build
// knobs, CVE) with single-flight deduplication, so N identical targets
// requesting the same CVE trigger exactly one double kernel build
// while per-session encryption stays per-client; connections carry
// idle deadlines and an optional max-concurrency gate with accept
// backpressure; and Drain offers a graceful stop (quit accepting,
// finish in-flight responses, then close). The client side matches
// with context-aware dial/request retry over timing.WallClock and
// per-operation I/O deadlines.
//
// The wire protocol is length-framed gob over TCP (stdlib net).
package patchserver

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/obs"
	"kshot/internal/options"
	"kshot/internal/patch"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/timing"
)

// OSInfo is what the target machine reports about itself — enough for
// the server to rebuild a bit-identical kernel binary.
type OSInfo struct {
	Version string
	Ftrace  bool
	Inline  bool
}

// Request/response message kinds.
const (
	kindHello  = "hello"
	kindPatch  = "patch"
	kindStatus = "status"
)

type request struct {
	Kind string

	// hello
	Info        OSInfo
	Measurement sgx.Measurement
	// AttKey is the status-attestation HMAC key the target provisioned
	// into its SMM handler, so the server can authenticate deployment
	// confirmations. (The hello channel is assumed transport-protected,
	// as the paper assumes encrypted server communication.)
	AttKey []byte

	// patch
	CVE string

	// status
	Code   uint32
	Seq    uint64
	Digest []byte
	MAC    []byte
}

type response struct {
	Err string

	// hello
	ServerKey []byte

	// patch
	Blob []byte
}

// TreeProvider returns the full kernel source tree for a version —
// the distro vendor's copy, which must match what the target runs.
type TreeProvider func(version string) (*kernel.SourceTree, error)

// Server tuning defaults.
const (
	// DefaultListenAddr is the listen address New uses when no
	// WithListenAddr option is given: loopback, ephemeral port.
	DefaultListenAddr = "127.0.0.1:0"

	// DefaultIdleTimeout bounds how long a connection may sit between
	// requests (and how long one response write may take) before the
	// server reclaims it. A connected-but-silent client therefore costs
	// a goroutine for at most this long.
	DefaultIdleTimeout = 2 * time.Minute

	// DefaultCacheCapacity is the build-cache entry bound: distinct
	// (version, ftrace, inline, CVE) artifacts retained at once.
	DefaultCacheCapacity = 64
)

// serverConfig collects the ServerOption-tunable knobs.
type serverConfig struct {
	listenAddr    string
	trees         TreeProvider
	idleTimeout   time.Duration
	maxConns      int
	acceptWait    time.Duration
	cacheCapacity int
	fi            *faultinject.Set
	obs           *obs.Hooks
}

// ServerOption tunes a Server. Every With* validates its argument
// eagerly; New reports the first rejected option as a typed
// *options.Error matching options.ErrInvalid.
type ServerOption func(*serverConfig) error

func serverOptErr(option, format string, a ...any) error {
	return options.Errorf("patchserver.New", option, format, a...)
}

// WithListenAddr sets the TCP listen address ("host:0" picks an
// ephemeral port; DefaultListenAddr when the option is absent).
// Setting two different addresses is a conflict.
func WithListenAddr(addr string) ServerOption {
	return func(c *serverConfig) error {
		if addr == "" {
			return serverOptErr("WithListenAddr", "address must not be empty")
		}
		if c.listenAddr != "" && c.listenAddr != addr {
			return serverOptErr("WithListenAddr", "conflicting addresses %q and %q", c.listenAddr, addr)
		}
		c.listenAddr = addr
		return nil
	}
}

// WithTreeProvider sets the kernel source provider the server builds
// patches from. New requires exactly one provider.
func WithTreeProvider(tp TreeProvider) ServerOption {
	return func(c *serverConfig) error {
		if tp == nil {
			return serverOptErr("WithTreeProvider", "provider must not be nil")
		}
		if c.trees != nil {
			return serverOptErr("WithTreeProvider", "provider set twice")
		}
		c.trees = tp
		return nil
	}
}

// WithIdleTimeout sets the per-connection idle deadline (zero or
// negative disables it — connections may then pin their handler
// goroutine forever; see DefaultIdleTimeout).
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) error {
		c.idleTimeout = d
		return nil
	}
}

// WithMaxConns gates the server at n concurrently served connections.
// When the gate is full the accept loop stops accepting (backpressure
// through the listen backlog) until a slot frees, or — if an accept
// wait is configured — sheds the next connection with a counted
// refusal once the wait expires. n == 0 means unlimited.
func WithMaxConns(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 0 {
			return serverOptErr("WithMaxConns", "must be >= 0, got %d", n)
		}
		c.maxConns = n
		return nil
	}
}

// WithAcceptWait bounds how long a full connection gate holds the
// accept loop before the server actively refuses the next connection
// (a "server at capacity" response). Zero — the default — waits
// indefinitely: pure backpressure, no refusals.
func WithAcceptWait(d time.Duration) ServerOption {
	return func(c *serverConfig) error {
		if d < 0 {
			return serverOptErr("WithAcceptWait", "must be >= 0, got %v", d)
		}
		c.acceptWait = d
		return nil
	}
}

// WithCacheCapacity bounds the build cache to n entries (0 uses
// DefaultCacheCapacity, negative disables retention entirely —
// single-flight deduplication of concurrent identical builds remains).
func WithCacheCapacity(n int) ServerOption {
	return func(c *serverConfig) error {
		c.cacheCapacity = n
		return nil
	}
}

// WithServerObserver installs observability hooks at construction.
func WithServerObserver(ob *obs.Hooks) ServerOption {
	return func(c *serverConfig) error {
		c.obs = ob
		return nil
	}
}

// WithServerFaultInjector installs a fault injection set at
// construction (the chaos suite's server-side entry point).
func WithServerFaultInjector(fi *faultinject.Set) ServerOption {
	return func(c *serverConfig) error {
		c.fi = fi
		return nil
	}
}

// Server is the remote patch server.
type Server struct {
	ln    net.Listener
	trees TreeProvider

	idleTimeout time.Duration
	acceptWait  time.Duration
	slots       chan struct{} // nil = unlimited
	done        chan struct{} // closed when accepting stops (Drain or Close)
	hardStop    chan struct{} // closed by Close only: abort live sessions
	stopOnce    sync.Once

	cache  *buildCache
	builds atomic.Uint64 // completed double kernel builds

	live    atomic.Int64
	refused atomic.Int64

	mu       sync.Mutex
	patches  map[string]kernel.SourcePatch
	statuses []StatusReport
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// channelKeys caches the server→enclave channel key per attested
	// target identity (version + measurement + attestation key), so a
	// target may open several helper connections — pipelined fetching —
	// that all encrypt to the one key its enclave holds. Only attested
	// hellos (non-empty AttKey) are cached; anonymous hellos keep the
	// fresh-key-per-connection behavior.
	channelKeys map[string][]byte

	hooksMu sync.Mutex
	fi      *faultinject.Set
	obs     *obs.Hooks
}

// StatusReport is one target status received by the server.
type StatusReport struct {
	Code   uint32
	Seq    uint64
	Digest []byte
	At     time.Time

	// Authentic reports whether the record's HMAC verified under the
	// attestation key the target registered at hello. A forged
	// confirmation (a kernel attacker scribbling on the mem_RW mailbox
	// to mask a suppressed deployment) arrives with Authentic=false.
	Authentic bool
}

// New starts a server configured entirely through functional options.
// WithTreeProvider is required; the listen address defaults to
// DefaultListenAddr. Close the server when done.
func New(opts ...ServerOption) (*Server, error) {
	cfg := serverConfig{idleTimeout: DefaultIdleTimeout, cacheCapacity: DefaultCacheCapacity}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.trees == nil {
		return nil, serverOptErr("WithTreeProvider", "required: no tree provider configured")
	}
	if cfg.listenAddr == "" {
		cfg.listenAddr = DefaultListenAddr
	}
	if cfg.cacheCapacity == 0 {
		cfg.cacheCapacity = DefaultCacheCapacity
	}
	return newServer(cfg)
}

// NewServer starts a server on addr ("127.0.0.1:0" for an ephemeral
// port). Close it when done.
//
// Deprecated: NewServer is the pre-functional-options constructor,
// kept for compatibility. Use New with WithListenAddr and
// WithTreeProvider.
func NewServer(addr string, trees TreeProvider, opts ...ServerOption) (*Server, error) {
	return New(append([]ServerOption{WithListenAddr(addr), WithTreeProvider(trees)}, opts...)...)
}

func newServer(cfg serverConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.listenAddr)
	if err != nil {
		return nil, fmt.Errorf("patchserver: %w", err)
	}
	s := &Server{
		ln: ln, trees: cfg.trees,
		idleTimeout: cfg.idleTimeout,
		acceptWait:  cfg.acceptWait,
		done:        make(chan struct{}),
		hardStop:    make(chan struct{}),
		cache:       newBuildCache(cfg.cacheCapacity),
		patches:     make(map[string]kernel.SourcePatch),
		conns:       make(map[net.Conn]struct{}),
		channelKeys: make(map[string][]byte),
		fi:          cfg.fi,
		obs:         cfg.obs,
	}
	if cfg.maxConns > 0 {
		s.slots = make(chan struct{}, cfg.maxConns)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetObserver installs (or, with nil, removes) the observability hooks
// counting cache traffic, builds, and connection churn.
func (s *Server) SetObserver(ob *obs.Hooks) {
	s.hooksMu.Lock()
	defer s.hooksMu.Unlock()
	s.obs = ob
}

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted on the cache and accept paths.
func (s *Server) SetFaultInjector(fi *faultinject.Set) {
	s.hooksMu.Lock()
	defer s.hooksMu.Unlock()
	s.fi = fi
}

func (s *Server) hooks() (*faultinject.Set, *obs.Hooks) {
	s.hooksMu.Lock()
	defer s.hooksMu.Unlock()
	return s.fi, s.obs
}

// RegisterPatch adds a source patch (a CVE fix) to the server's
// catalogue, invalidating any cached builds of an earlier revision.
func (s *Server) RegisterPatch(p kernel.SourcePatch) {
	s.mu.Lock()
	s.patches[p.ID] = p
	s.mu.Unlock()
	s.cache.invalidateCVE(p.ID)
}

// Statuses returns the status reports received so far.
func (s *Server) Statuses() []StatusReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StatusReport(nil), s.statuses...)
}

// AwaitStatus waits for a target status report with sequence number
// greater than `after`. Returning ok=false after the timeout is the
// paper's DoS detection (§V-D): the server initiated a patch, but the
// target's helper never confirmed deployment — an attacker is likely
// suppressing the patching flow and the operator should intervene.
func (s *Server) AwaitStatus(after uint64, timeout time.Duration) (StatusReport, bool) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		for _, st := range s.statuses {
			if st.Seq > after {
				s.mu.Unlock()
				return st, true
			}
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			return StatusReport{}, false
		}
		time.Sleep(time.Millisecond)
	}
}

// Builds reports how many double kernel builds (pre + post patch) the
// server has performed — the fleet conformance witness: with caching
// it stays at one per distinct (configuration, CVE) pair no matter how
// many targets request it.
func (s *Server) Builds() uint64 { return s.builds.Load() }

// Live reports the number of connections currently being served.
func (s *Server) Live() int { return int(s.live.Load()) }

// Refused reports how many connections the full gate actively shed.
func (s *Server) Refused() int { return int(s.refused.Load()) }

// CachedArtifacts reports how many built artifacts the cache retains.
func (s *Server) CachedArtifacts() int { return s.cache.len() }

// FlushCache empties the build cache (benchmarks use this to measure
// cold-cache behavior; operators can use it to force rebuilds).
func (s *Server) FlushCache() { s.cache.flush() }

// stop quits accepting: closes the done signal and the listener.
func (s *Server) stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		_ = s.ln.Close()
	})
}

// Drain gracefully stops the server: no new connections are accepted,
// established sessions keep being served until their clients
// disconnect (silent peers are bounded by the idle deadline), and
// Drain returns once every connection has finished or ctx expires.
// Call Close afterwards to force-abort whatever remains.
func (s *Server) Drain(ctx context.Context) error {
	s.stop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the server and waits for connection handlers. In-flight
// responses are still written (under the write deadline); reads parked
// waiting for a next request are aborted immediately.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.stop()
	close(s.hardStop)
	for _, c := range conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		fi, _ := s.hooks()
		if d, ok := fi.Delay(faultinject.AcceptStall); ok {
			// Injected accept-path stall: the whole accept loop wedges,
			// modeling a slow or contended frontend.
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-s.done:
				t.Stop()
			}
		}
		s.admit(conn)
	}
}

// admit passes an accepted connection through the concurrency gate and
// starts its handler. When the gate is full it blocks the accept loop
// (backpressure: later connections queue in the listen backlog) until
// a slot frees or, past the configured accept wait, refuses the
// connection outright.
func (s *Server) admit(conn net.Conn) {
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			if s.acceptWait > 0 {
				t := time.NewTimer(s.acceptWait)
				select {
				case s.slots <- struct{}{}:
					t.Stop()
				case <-t.C:
					s.refuse(conn)
					return
				case <-s.done:
					t.Stop()
					conn.Close()
					return
				}
			} else {
				select {
				case s.slots <- struct{}{}:
				case <-s.done:
					conn.Close()
					return
				}
			}
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.slots != nil {
			<-s.slots
		}
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.live.Add(1)
	_, ob := s.hooks()
	ob.Count(obs.CtrConnAccepted, 1)
	ob.Count(obs.CtrConnLive, 1)
	go s.serveConn(conn)
}

// refuse sheds one connection at the full gate: it answers the peer's
// first read with a capacity error and closes.
func (s *Server) refuse(conn net.Conn) {
	s.refused.Add(1)
	_, ob := s.hooks()
	ob.Count(obs.CtrConnRefused, 1)
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_ = gob.NewEncoder(conn).Encode(&response{Err: "server at capacity"})
	conn.Close()
}

// session is the per-connection state: the registered target.
type session struct {
	info      OSInfo
	serverKey []byte
	crypt     *kcrypto.Session
	attKey    []byte
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if s.slots != nil {
			<-s.slots
		}
		s.live.Add(-1)
		_, ob := s.hooks()
		ob.Count(obs.CtrConnLive, -1)
		s.wg.Done()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var sess *session

	for {
		// The idle deadline is armed before the shutdown check: if Close
		// runs between the two, its SetReadDeadline(now) lands after ours
		// and the Decode below fails immediately instead of idling. Only
		// Close aborts live sessions — a draining server keeps serving
		// established connections until their clients leave.
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		select {
		case <-s.hardStop:
			return
		default:
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF, timeout, or broken peer
		}
		resp := s.handle(&sess, &req)
		if s.idleTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.idleTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(sess **session, req *request) *response {
	switch req.Kind {
	case kindHello:
		return s.handleHello(sess, req)
	case kindPatch:
		return s.handlePatch(*sess, req)
	case kindStatus:
		rep := StatusReport{
			Code: req.Code, Seq: req.Seq,
			Digest: append([]byte(nil), req.Digest...),
			At:     time.Now(),
		}
		if sess := *sess; sess != nil && len(sess.attKey) > 0 && len(req.MAC) == kcrypto.DigestSize {
			buf := make([]byte, 12+len(req.Digest))
			binary.LittleEndian.PutUint32(buf, req.Code)
			binary.LittleEndian.PutUint64(buf[4:], req.Seq)
			copy(buf[12:], req.Digest)
			var mac [kcrypto.DigestSize]byte
			copy(mac[:], req.MAC)
			rep.Authentic = kcrypto.VerifyMAC(sess.attKey, buf, mac)
		}
		s.mu.Lock()
		s.statuses = append(s.statuses, rep)
		s.mu.Unlock()
		return &response{}
	default:
		return &response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

func (s *Server) handleHello(sess **session, req *request) *response {
	// Verify the enclave identity: a genuine KShot preparation enclave
	// for the reported kernel version has a known measurement. This is
	// how the server refuses to provision keys to an impostor enclave
	// (§V-C's MITM mitigation).
	expected := sgx.MeasureIdentity(sgxprep.Identity(req.Info.Version))
	if req.Measurement != expected {
		return &response{Err: "enclave attestation failed: unexpected measurement"}
	}
	if _, err := s.trees(req.Info.Version); err != nil {
		return &response{Err: fmt.Sprintf("unsupported kernel: %v", err)}
	}
	var cacheID string
	if len(req.AttKey) > 0 {
		sum := sha256.Sum256(req.AttKey)
		cacheID = fmt.Sprintf("%s|%t|%t|%x|%x", req.Info.Version, req.Info.Ftrace, req.Info.Inline, req.Measurement, sum)
	}
	key := make([]byte, 32)
	s.mu.Lock()
	cached, ok := s.channelKeys[cacheID]
	s.mu.Unlock()
	if cacheID != "" && ok {
		copy(key, cached)
	} else {
		if _, err := io.ReadFull(rand.Reader, key); err != nil {
			return &response{Err: "server entropy failure"}
		}
		if cacheID != "" {
			s.mu.Lock()
			if prior, ok := s.channelKeys[cacheID]; ok {
				copy(key, prior) // lost a racing hello: converge on its key
			} else {
				s.channelKeys[cacheID] = append([]byte(nil), key...)
			}
			s.mu.Unlock()
		}
	}
	crypt, err := kcrypto.NewSession(key, nil)
	if err != nil {
		return &response{Err: err.Error()}
	}
	*sess = &session{
		info: req.Info, serverKey: key, crypt: crypt,
		attKey: append([]byte(nil), req.AttKey...),
	}
	return &response{ServerKey: key}
}

func (s *Server) handlePatch(sess *session, req *request) *response {
	if sess == nil {
		return &response{Err: "hello required before patch requests"}
	}
	blob, err := s.BuildPatchBlob(sess.info, req.CVE, sess.crypt)
	if err != nil {
		return &response{Err: err.Error()}
	}
	return &response{Blob: blob}
}

// BuildPatchBlob returns the encrypted binary patch for (info, cve),
// encrypting for the given session. The underlying plaintext artifact
// — rebuild pre/post kernels with the target's exact configuration,
// extract the binary diff, gob-encode — is served from the bounded
// single-flight build cache: concurrent identical requests share one
// build, later ones hit the cache. Encryption always runs per call, so
// every session's ciphertext is keyed to its own channel. Exposed for
// in-process use by benchmarks that bypass TCP.
func (s *Server) BuildPatchBlob(info OSInfo, cve string, crypt *kcrypto.Session) ([]byte, error) {
	s.mu.Lock()
	sp, ok := s.patches[cve]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no patch registered for %q", cve)
	}
	key := buildKey{version: info.Version, ftrace: info.Ftrace, inline: info.Inline, cve: cve}
	fi, ob := s.hooks()
	if fi.Fire(faultinject.BuildCacheBypass) {
		// Injected cache loss: drop the entry so this request takes the
		// full rebuild path (cache corruption / cold restart model).
		s.cache.invalidate(key)
	}
	plain, outcome, evicted, err := s.cache.getOrBuild(key, func() ([]byte, error) {
		start := time.Now()
		p, err := s.buildPlain(info, sp)
		if err == nil {
			s.builds.Add(1)
			ob.Count(obs.CtrBuilds, 1)
			ob.ObserveDur(obs.HistBuildLatency, time.Since(start))
		}
		return p, err
	})
	if evicted > 0 {
		ob.Count(obs.CtrCacheEvicted, int64(evicted))
	}
	switch outcome {
	case outcomeHit:
		ob.Count(obs.CtrCacheHits, 1)
	case outcomeBuilt:
		ob.Count(obs.CtrCacheMisses, 1)
	case outcomeCoalesced:
		ob.Count(obs.CtrCacheCoalesced, 1)
	}
	if err != nil {
		return nil, err
	}
	return crypt.Encrypt(plain)
}

// buildPlain performs the expensive part once per cache key: rebuild
// the pre- and post-patch kernels with the target's configuration,
// extract the function-level binary diff, and gob-encode it. The
// result is plaintext — per-session encryption happens per request in
// BuildPatchBlob, which is what keeps the cache safe to share across
// targets (§V-A's confidentiality argument needs ciphertext per
// channel, not per build).
func (s *Server) buildPlain(info OSInfo, sp kernel.SourcePatch) ([]byte, error) {
	pre, err := s.trees(info.Version)
	if err != nil {
		return nil, err
	}
	// Apply the target's build configuration knobs.
	cfg := pre.Config()
	cfg.Ftrace = info.Ftrace
	cfg.Inline = info.Inline
	preTree := kernel.NewSourceTree(cfg)
	for _, f := range pre.Files() {
		src, _ := pre.File(f)
		preTree.AddFile(f, src)
	}
	preImg, preUnit, err := preTree.Build()
	if err != nil {
		return nil, fmt.Errorf("pre build: %w", err)
	}
	postTree := preTree.Clone()
	if err := postTree.Apply(sp); err != nil {
		return nil, err
	}
	postImg, postUnit, err := postTree.Build()
	if err != nil {
		return nil, fmt.Errorf("post build: %w", err)
	}
	bp, err := patch.Build(sp.ID, info.Version, patch.ImagePair{Img: preImg, Unit: preUnit}, patch.ImagePair{Img: postImg, Unit: postUnit})
	if err != nil {
		return nil, err
	}
	return gobEncode(bp)
}

// Client tuning defaults.
const (
	// DefaultDialTimeout bounds one TCP connect attempt.
	DefaultDialTimeout = 5 * time.Second

	// DefaultRetryBackoff is the base delay before the first dial or
	// request retry; it doubles per attempt.
	DefaultRetryBackoff = 50 * time.Millisecond
)

// clientConfig collects the DialOption-tunable knobs.
type clientConfig struct {
	dialTimeout    time.Duration
	dialRetries    int
	requestRetries int
	retryBackoff   time.Duration
	ioTimeout      time.Duration
	fi             *faultinject.Set
	wall           timing.WallClock
	obs            *obs.Hooks
}

// DialOption tunes a Client. Every With* validates its argument
// eagerly; Dial reports the first rejected option as a typed
// *options.Error matching options.ErrInvalid.
type DialOption func(*clientConfig) error

func dialOptErr(option, format string, a ...any) error {
	return options.Errorf("patchserver.Dial", option, format, a...)
}

// WithDialTimeout bounds each TCP connect attempt.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *clientConfig) error {
		if d < 0 {
			return dialOptErr("WithDialTimeout", "must be >= 0, got %v", d)
		}
		c.dialTimeout = d
		return nil
	}
}

// WithDialRetries allows n additional dial attempts after a failed
// connect, with exponential backoff between attempts.
func WithDialRetries(n int) DialOption {
	return func(c *clientConfig) error {
		if n < 0 {
			return dialOptErr("WithDialRetries", "must be >= 0, got %d", n)
		}
		c.dialRetries = n
		return nil
	}
}

// WithRequestRetries allows n reconnect-and-replay attempts when a
// request burst fails at the transport level (send/receive error, a
// reaped idle connection). The client redials, replays its recorded
// hello, and resends the burst. Patch fetches are idempotent; status
// reports may be duplicated by a retry, which the server tolerates.
// Anonymous (non-attested) sessions receive a fresh channel key on
// reconnect, so callers holding a kcrypto session should only enable
// this together with an attested hello (whose key the server caches).
func WithRequestRetries(n int) DialOption {
	return func(c *clientConfig) error {
		if n < 0 {
			return dialOptErr("WithRequestRetries", "must be >= 0, got %d", n)
		}
		c.requestRetries = n
		return nil
	}
}

// WithRetryBackoff sets the base backoff before the first retry
// (doubling per attempt) for both dial and request retries.
func WithRetryBackoff(d time.Duration) DialOption {
	return func(c *clientConfig) error {
		if d < 0 {
			return dialOptErr("WithRetryBackoff", "must be >= 0, got %v", d)
		}
		c.retryBackoff = d
		return nil
	}
}

// WithIOTimeout arms a deadline on every socket read and write (zero
// disables; the server's idle deadline is then the only reaper).
func WithIOTimeout(d time.Duration) DialOption {
	return func(c *clientConfig) error {
		if d < 0 {
			return dialOptErr("WithIOTimeout", "must be >= 0, got %v", d)
		}
		c.ioTimeout = d
		return nil
	}
}

// WithClientWallClock sets the clock pacing retry backoff and injected
// latency (real time when nil). The chaos suite passes timing.FakeWall
// so retries never depend on the host clock.
func WithClientWallClock(wc timing.WallClock) DialOption {
	return func(c *clientConfig) error {
		c.wall = wc
		return nil
	}
}

// WithClientFaultInjector installs a fault injection set at dial time,
// so dial-path faults (faultinject.DialError) can fire on the very
// first connect.
func WithClientFaultInjector(fi *faultinject.Set) DialOption {
	return func(c *clientConfig) error {
		c.fi = fi
		return nil
	}
}

// WithClientObserver installs observability hooks at dial time.
func WithClientObserver(ob *obs.Hooks) DialOption {
	return func(c *clientConfig) error {
		c.obs = ob
		return nil
	}
}

// Client is the target machine's connection to the patch server. Its
// methods are invoked by the untrusted helper application; everything
// it carries is ciphertext or public.
type Client struct {
	addr string
	cfg  clientConfig

	// mu serializes request bursts: one exchange owns the connection
	// end to end (including any reconnect-and-replay retries).
	mu sync.Mutex

	// connMu guards the connection state and the injectable hooks, so
	// Close and the Set* methods never block behind an exchange.
	connMu sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
	hello  *request // recorded attested hello, replayed on reconnect

	fi   *faultinject.Set
	wall timing.WallClock
	obs  *obs.Hooks
}

// Dial connects to the server.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to the server, retrying failed connect attempts
// with exponential backoff when dial retries are configured. ctx
// cancels the connect and any backoff wait.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := clientConfig{
		dialTimeout:  DefaultDialTimeout,
		retryBackoff: DefaultRetryBackoff,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	conn, err := dialConn(ctx, addr, cfg, cfg.fi, cfg.wall, cfg.obs)
	if err != nil {
		return nil, err
	}
	c := &Client{
		addr: addr, cfg: cfg, conn: conn,
		enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn),
		fi: cfg.fi, wall: cfg.wall, obs: cfg.obs,
	}
	return c, nil
}

// dialConn runs the connect-with-backoff loop.
func dialConn(ctx context.Context, addr string, cfg clientConfig, fi *faultinject.Set, wall timing.WallClock, ob *obs.Hooks) (net.Conn, error) {
	bo := timing.NewBackoff(wall, cfg.retryBackoff, 0)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := fi.Error(faultinject.DialError); err != nil {
			lastErr = fmt.Errorf("patchserver dial: %w", err)
		} else {
			d := net.Dialer{Timeout: cfg.dialTimeout}
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err == nil {
				return conn, nil
			}
			lastErr = fmt.Errorf("patchserver dial: %w", err)
		}
		if attempt >= cfg.dialRetries {
			return nil, lastErr
		}
		ob.Count(obs.CtrDialRetries, 1)
		if !bo.Sleep(ctx) {
			return nil, ctx.Err()
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.closed = true
	return c.conn.Close()
}

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted on every fetch result.
func (c *Client) SetFaultInjector(fi *faultinject.Set) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.fi = fi
}

// SetWallClock replaces the clock that paces injected fetch latency
// and retry backoff (real time when nil).
func (c *Client) SetWallClock(wc timing.WallClock) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.wall = wc
}

// SetObserver installs (or, with nil, removes) the observability hooks
// counting per-CVE fetch outcomes.
func (c *Client) SetObserver(ob *obs.Hooks) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.obs = ob
}

func (c *Client) hooks() (*faultinject.Set, timing.WallClock, *obs.Hooks) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	wall := c.wall
	if wall == nil {
		wall = timing.Real()
	}
	return c.fi, wall, c.obs
}

// transport snapshots the current connection endpoints.
func (c *Client) transport() (net.Conn, *gob.Encoder, *gob.Decoder) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn, c.enc, c.dec
}

// recordHello remembers a successful attested hello for replay after a
// reconnect (only attested hellos converge on the same channel key, so
// only they are safe to replay transparently).
func (c *Client) recordHello(req *request) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if len(req.AttKey) > 0 {
		c.hello = req
	}
}

// reconnect redials the server, swaps the connection, and replays the
// recorded hello so the new connection's session matches the old one.
func (c *Client) reconnect(ctx context.Context) error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return errors.New("patchserver: client closed")
	}
	fi, wall, ob := c.fi, c.wall, c.obs
	hello := c.hello
	c.connMu.Unlock()

	conn, err := dialConn(ctx, c.addr, c.cfg, fi, wall, ob)
	if err != nil {
		return err
	}
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if hello != nil {
		if err := c.exchangeOn(conn, enc, dec, []*request{hello}, nil); err != nil {
			conn.Close()
			return fmt.Errorf("patchserver: hello replay: %w", err)
		}
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return errors.New("patchserver: client closed")
	}
	old := c.conn
	c.conn, c.enc, c.dec = conn, enc, dec
	c.connMu.Unlock()
	_ = old.Close()
	return nil
}

func (c *Client) roundTrip(req *request) (*response, error) {
	resps, err := c.roundTrips(context.Background(), []*request{req})
	if err != nil {
		return nil, err
	}
	if resps[0].Err != "" {
		return nil, errors.New("patchserver: " + resps[0].Err)
	}
	return resps[0], nil
}

// roundTrips sends a pipelined burst of requests and collects the
// responses in order. The server's per-connection loop processes
// requests sequentially, so pipelining N fetches saves N-1 round trip
// waits without any protocol change.
//
// A transport-level failure (send/receive error, a reaped idle
// connection) triggers reconnect-and-replay when request retries are
// configured: the whole burst is resent on a fresh connection after
// the recorded hello is replayed.
//
// Cancellation is logical, not transport-level: when ctx fires, the
// call returns immediately, but the exchange finishes in the
// background under the connection mutex so the gob stream stays framed
// and the client remains usable. (An abandoned fetch's responses are
// drained and discarded; retries stop once ctx is done.)
func (c *Client) roundTrips(ctx context.Context, reqs []*request) ([]*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		resps []*response
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		resps, err := c.exchange(reqs)
		if err != nil {
			_, wall, _ := c.hooks()
			bo := timing.NewBackoff(wall, c.cfg.retryBackoff, 0)
			for attempt := 0; attempt < c.cfg.requestRetries && ctx.Err() == nil; attempt++ {
				if !bo.Sleep(ctx) {
					break
				}
				if rerr := c.reconnect(ctx); rerr != nil {
					err = rerr
					continue
				}
				resps, err = c.exchange(reqs)
				if err == nil {
					break
				}
			}
		}
		ch <- outcome{resps, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case out := <-ch:
		return out.resps, out.err
	}
}

// exchange runs one burst on the current connection. Callers hold c.mu.
func (c *Client) exchange(reqs []*request) ([]*response, error) {
	conn, enc, dec := c.transport()
	resps := make([]*response, 0, len(reqs))
	if err := c.exchangeOn(conn, enc, dec, reqs, &resps); err != nil {
		return nil, err
	}
	return resps, nil
}

// exchangeOn writes reqs and reads their responses on the given
// endpoints, arming per-operation I/O deadlines when configured. When
// resps is nil the responses are still read (keeping the stream
// framed) and checked for errors, but discarded — the hello-replay
// path uses this.
func (c *Client) exchangeOn(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, reqs []*request, resps *[]*response) error {
	for _, req := range reqs {
		if c.cfg.ioTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.ioTimeout))
		}
		if err := enc.Encode(req); err != nil {
			return fmt.Errorf("patchserver send: %w", err)
		}
	}
	for range reqs {
		if c.cfg.ioTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ioTimeout))
		}
		var resp response
		if err := dec.Decode(&resp); err != nil {
			return fmt.Errorf("patchserver recv: %w", err)
		}
		if resps != nil {
			*resps = append(*resps, &resp)
		} else if resp.Err != "" {
			return errors.New(resp.Err)
		}
	}
	return nil
}

// Hello registers the target's OS information and enclave measurement
// and returns the server→enclave channel key (provisioned under the
// attested measurement).
func (c *Client) Hello(info OSInfo, meas sgx.Measurement) ([]byte, error) {
	return c.HelloWithAttestation(info, meas, nil)
}

// HelloWithAttestation additionally registers the target's
// status-attestation key so the server can authenticate deployment
// confirmations.
func (c *Client) HelloWithAttestation(info OSInfo, meas sgx.Measurement, attKey []byte) ([]byte, error) {
	req := &request{Kind: kindHello, Info: info, Measurement: meas, AttKey: attKey}
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if len(resp.ServerKey) != 32 {
		return nil, errors.New("patchserver: malformed server key")
	}
	c.recordHello(req)
	return resp.ServerKey, nil
}

// FetchResult is one CVE's outcome from a pipelined fetch.
type FetchResult struct {
	CVE  string
	Blob []byte
	Err  error
}

// FetchPatch downloads the encrypted binary patch for a CVE. The
// context cancels or deadlines the wait (see roundTrips for the
// cancellation semantics).
func (c *Client) FetchPatch(ctx context.Context, cve string) ([]byte, error) {
	rs, err := c.FetchPatches(ctx, []string{cve})
	if err != nil {
		return nil, err
	}
	if rs[0].Err != nil {
		return nil, rs[0].Err
	}
	return rs[0].Blob, nil
}

// FetchPatches downloads many encrypted binary patches in one
// pipelined burst over the connection. The returned slice matches cves
// in order; per-CVE failures land in FetchResult.Err while the error
// return is reserved for transport-level failures.
func (c *Client) FetchPatches(ctx context.Context, cves []string) ([]FetchResult, error) {
	reqs := make([]*request, len(cves))
	for i, cve := range cves {
		reqs[i] = &request{Kind: kindPatch, CVE: cve}
	}
	fi, wall, ob := c.hooks()
	resps, err := c.roundTrips(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]FetchResult, len(cves))
	for i, resp := range resps {
		out[i].CVE = cves[i]
		ob.Count(obs.CtrFetches, 1)
		// Injected transport failures, applied per result: extra
		// latency (an induced timeout when ctx expires first), a
		// failed fetch, or a truncated body the enclave must reject.
		if d, ok := fi.Delay(faultinject.FetchDelay); ok {
			if !wall.Sleep(ctx, d) {
				return nil, ctx.Err()
			}
		}
		if err := fi.Error(faultinject.FetchError); err != nil {
			out[i].Err = fmt.Errorf("patchserver: %s: %w", cves[i], err)
			ob.Count(obs.CtrFetchErrors, 1)
			continue
		}
		if resp.Err != "" {
			out[i].Err = errors.New("patchserver: " + resp.Err)
			ob.Count(obs.CtrFetchErrors, 1)
			continue
		}
		blob := resp.Blob
		if n, ok := fi.Truncate(faultinject.FetchTruncate, len(blob)); ok {
			blob = blob[:n]
		}
		out[i].Blob = blob
	}
	return out, nil
}

// ReportStatus forwards the SMM status mailbox to the server (the
// deployment-progress handshake the server uses for DoS detection).
func (c *Client) ReportStatus(code uint32, seq uint64, digest []byte) error {
	return c.ReportStatusMAC(code, seq, digest, nil)
}

// ReportStatusMAC forwards a status record together with its HMAC.
func (c *Client) ReportStatusMAC(code uint32, seq uint64, digest, mac []byte) error {
	_, err := c.roundTrip(&request{Kind: kindStatus, Code: code, Seq: seq, Digest: digest, MAC: mac})
	return err
}

func gobEncode(v any) ([]byte, error) {
	var b netBuffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, err
	}
	return b.data, nil
}

// netBuffer is a minimal io.Writer over a byte slice.
type netBuffer struct{ data []byte }

func (b *netBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
