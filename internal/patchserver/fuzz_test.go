package patchserver

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kshot/internal/cvebench"
)

// fuzzSeedBytes builds the structured wire-protocol seeds: well-formed
// requests (in and out of order), so the fuzzer starts from inputs
// that reach deep into handle() rather than dying in the gob decoder.
func fuzzSeedBytes(tb testing.TB) [][]byte {
	tb.Helper()
	mk := func(req *request) []byte {
		b, err := gobEncode(req)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	hello := mk(&request{
		Kind:        kindHello,
		Info:        OSInfo{Version: "4.4", Ftrace: true, Inline: true},
		Measurement: goodMeasurement("4.4"),
	})
	patchReq := mk(&request{Kind: kindPatch, CVE: "CVE-2014-0196"})
	status := mk(&request{Kind: kindStatus, Code: 1, Seq: 7, Digest: []byte{1, 2, 3}})
	return [][]byte{
		hello,
		patchReq,                      // patch before hello: in-band error
		status,                        // status without hello: unauthenticated report
		append(hello, patchReq...),    // full happy path in one write
		hello[:len(hello)/2],          // truncated mid-message
		[]byte("\xff\x03garbage\x00"), // not gob at all
	}
}

// TestGenerateFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzServerFrame from fuzzSeedBytes. Skipped unless
// GEN_FUZZ_CORPUS is set, so the corpus only changes deliberately
// (rerun with GEN_FUZZ_CORPUS=1 after editing the seeds).
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate the committed seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzServerFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedBytes(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzServerFrame throws arbitrary bytes at a live server over real
// TCP: whatever arrives — garbage, truncated gob, out-of-order or
// duplicated requests — may only kill that one session. The server
// must neither crash nor wedge; the harness's final good-client
// exchange (registered before srv.Close) proves it survived the whole
// campaign.
func FuzzServerFrame(f *testing.F) {
	e, ok := cvebench.Get("CVE-2014-0196")
	if !ok {
		f.Fatal("unknown CVE")
	}
	srv, err := NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e),
		WithIdleTimeout(2*time.Second))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	srv.RegisterPatch(e.SourcePatch())
	f.Cleanup(func() {
		// Runs before srv.Close (cleanups are LIFO): the server still
		// serves a well-formed client after everything the fuzzer sent.
		c, err := Dial(srv.Addr())
		if err != nil {
			f.Errorf("server unreachable after fuzzing: %v", err)
			return
		}
		defer c.Close()
		info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
		if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
			f.Errorf("server broken after fuzzing: %v", err)
		}
	})

	for _, seed := range fuzzSeedBytes(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := conn.Write(data); err != nil {
			return // server already rejected the session mid-write
		}
		_ = conn.(*net.TCPConn).CloseWrite()
		// Drain whatever the server answers until it closes the session.
		// An error here is a deadline hit: the server wedged on input —
		// exactly the bug class this target hunts.
		if _, err := io.Copy(io.Discard, conn); err != nil {
			t.Fatalf("server wedged on %d-byte input: %v", len(data), err)
		}
	})
}
