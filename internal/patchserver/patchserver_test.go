package patchserver

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"strings"
	"testing"

	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/patch"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
)

func newTestServer(t *testing.T, cves ...string) (*Server, []*cvebench.Entry) {
	t.Helper()
	entries := make([]*cvebench.Entry, len(cves))
	for i, id := range cves {
		e, ok := cvebench.Get(id)
		if !ok {
			t.Fatalf("unknown CVE %s", id)
		}
		entries[i] = e
	}
	srv, err := NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entries...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}
	return srv, entries
}

func goodMeasurement(version string) sgx.Measurement {
	return sgx.MeasureIdentity(sgxprep.Identity(version))
}

func TestHelloAndFetch(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	key, err := c.Hello(info, goodMeasurement("4.4"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.FetchPatch(context.Background(), entries[0].CVE)
	if err != nil {
		t.Fatal(err)
	}
	// The blob decrypts under the provisioned key into a BinaryPatch
	// for the right kernel.
	sess, err := kcrypto.NewSession(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sess.Decrypt(blob)
	if err != nil {
		t.Fatal(err)
	}
	var bp patch.BinaryPatch
	if err := decodeGobInto(plain, &bp); err != nil {
		t.Fatal(err)
	}
	if bp.ID != entries[0].CVE || bp.KernelVersion != "4.4" || len(bp.Funcs) == 0 {
		t.Errorf("binary patch = %+v", bp)
	}
}

func TestHelloRejectsBadMeasurement(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var bogus sgx.Measurement
	bogus[0] = 0xFF
	_, err = c.Hello(OSInfo{Version: "4.4", Ftrace: true, Inline: true}, bogus)
	if err == nil || !strings.Contains(err.Error(), "attestation") {
		t.Fatalf("bad measurement accepted: %v", err)
	}
	// Measurement for the wrong version is also an impostor.
	_, err = c.Hello(OSInfo{Version: "4.4", Ftrace: true, Inline: true}, goodMeasurement("3.14"))
	if err == nil {
		t.Fatal("cross-version measurement accepted")
	}
}

func TestHelloRejectsUnknownKernel(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(OSInfo{Version: "9.9"}, goodMeasurement("9.9")); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestFetchBeforeHello(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.FetchPatch(context.Background(), "CVE-2014-0196"); err == nil {
		t.Fatal("patch served without hello")
	}
}

func TestFetchUnknownCVE(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(OSInfo{Version: "4.4", Ftrace: true, Inline: true}, goodMeasurement("4.4")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchPatch(context.Background(), "CVE-0000-0000"); err == nil {
		t.Fatal("unknown CVE served")
	}
}

func TestConfigurationMattersToBlob(t *testing.T) {
	// The same CVE fetched by targets with different build configs
	// must produce different patches (different addresses/payloads).
	srv, entries := newTestServer(t, "CVE-2016-7916")
	fetch := func(info OSInfo) *patch.BinaryPatch {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		key, err := c.Hello(info, goodMeasurement(info.Version))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := c.FetchPatch(context.Background(), entries[0].CVE)
		if err != nil {
			t.Fatal(err)
		}
		sess, _ := kcrypto.NewSession(key, nil)
		plain, err := sess.Decrypt(blob)
		if err != nil {
			t.Fatal(err)
		}
		var bp patch.BinaryPatch
		if err := decodeGobInto(plain, &bp); err != nil {
			t.Fatal(err)
		}
		return &bp
	}
	traced := fetch(OSInfo{Version: "4.4", Ftrace: true, Inline: true})
	plain := fetch(OSInfo{Version: "4.4", Ftrace: false, Inline: true})
	if traced.Funcs[0].Traced == plain.Funcs[0].Traced {
		t.Error("ftrace knob ignored by server build")
	}
	v314 := fetch(OSInfo{Version: "3.14", Ftrace: true, Inline: true})
	if v314.KernelVersion == traced.KernelVersion {
		t.Error("version knob ignored")
	}
}

func TestStatusReports(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ReportStatus(2, 7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	sts := srv.Statuses()
	if len(sts) != 1 || sts[0].Code != 2 || sts[0].Seq != 7 || len(sts[0].Digest) != 3 {
		t.Errorf("statuses = %+v", sts)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := Dial(srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			if _, err := c.Hello(OSInfo{Version: "4.4", Ftrace: true, Inline: true}, goodMeasurement("4.4")); err != nil {
				done <- err
				return
			}
			_, err = c.FetchPatch(context.Background(), entries[0].CVE)
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	srv.Close()
	srv.Close()
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("dial succeeded after close")
	}
}

// decodeGobInto mirrors the enclave-side decode for test inspection.
func decodeGobInto(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

func TestAuthenticatedStatus(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	attKey := bytes.Repeat([]byte{7}, 32)
	if _, err := c.HelloWithAttestation(OSInfo{Version: "4.4", Ftrace: true, Inline: true},
		goodMeasurement("4.4"), attKey); err != nil {
		t.Fatal(err)
	}

	// A properly MACed record verifies.
	digest := bytes.Repeat([]byte{3}, 32)
	buf := make([]byte, 12+32)
	binary.LittleEndian.PutUint32(buf, 2)
	binary.LittleEndian.PutUint64(buf[4:], 5)
	copy(buf[12:], digest)
	mac := kcrypto.MAC(attKey, buf)
	if err := c.ReportStatusMAC(2, 5, digest, mac[:]); err != nil {
		t.Fatal(err)
	}
	// A record with a wrong MAC does not.
	bad := make([]byte, 32)
	if err := c.ReportStatusMAC(2, 6, digest, bad); err != nil {
		t.Fatal(err)
	}
	// A record with no MAC at all does not.
	if err := c.ReportStatus(2, 7, digest); err != nil {
		t.Fatal(err)
	}
	sts := srv.Statuses()
	if len(sts) != 3 {
		t.Fatalf("statuses = %d", len(sts))
	}
	if !sts[0].Authentic || sts[1].Authentic || sts[2].Authentic {
		t.Errorf("authenticity = %v %v %v, want true false false",
			sts[0].Authentic, sts[1].Authentic, sts[2].Authentic)
	}
}

func TestFetchPatchesPipelined(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196", "CVE-2016-7916")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(OSInfo{Version: "4.4", Ftrace: true, Inline: true}, goodMeasurement("4.4")); err != nil {
		t.Fatal(err)
	}
	rs, err := c.FetchPatches(context.Background(),
		[]string{entries[0].CVE, "CVE-0000-0000", entries[1].CVE})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Err != nil || len(rs[0].Blob) == 0 {
		t.Errorf("member 0: %v", rs[0].Err)
	}
	// Per-CVE failure lands in the member, not the transport error.
	if rs[1].Err == nil {
		t.Error("unknown CVE served in pipelined fetch")
	}
	if rs[2].Err != nil || len(rs[2].Blob) == 0 {
		t.Errorf("member 2 after failed member: %v", rs[2].Err)
	}
}

func TestFetchCancellationKeepsClientUsable(t *testing.T) {
	srv, entries := newTestServer(t, "CVE-2014-0196")
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(OSInfo{Version: "4.4", Ftrace: true, Inline: true}, goodMeasurement("4.4")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.FetchPatch(ctx, entries[0].CVE); err == nil {
		t.Fatal("canceled fetch succeeded")
	}
	// The abandoned exchange drains in the background; the connection
	// stays framed and a follow-up fetch works.
	if _, err := c.FetchPatch(context.Background(), entries[0].CVE); err != nil {
		t.Fatalf("fetch after cancellation: %v", err)
	}
}

func TestChannelKeyCacheForAttestedTargets(t *testing.T) {
	srv, _ := newTestServer(t, "CVE-2014-0196")
	attKey := bytes.Repeat([]byte{9}, 32)
	hello := func(key []byte) []byte {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		k, err := c.HelloWithAttestation(OSInfo{Version: "4.4", Ftrace: true, Inline: true},
			goodMeasurement("4.4"), key)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k1 := hello(attKey)
	k2 := hello(attKey)
	if !bytes.Equal(k1, k2) {
		t.Error("attested re-hello did not return the cached channel key (parallel fetch connections would not decrypt)")
	}
	k3 := hello(bytes.Repeat([]byte{8}, 32))
	if bytes.Equal(k1, k3) {
		t.Error("different attestation identity shares a channel key")
	}
}
