package patchserver

import (
	"container/list"
	"sync"
)

// buildKey identifies one cacheable build artifact: the target's exact
// build configuration plus the CVE. Two targets with the same key
// receive byte-identical plaintext patches (the gob type-ID pinning in
// internal/patch makes the encoding deterministic), so the expensive
// double kernel build only ever needs to happen once per key.
type buildKey struct {
	version string
	ftrace  bool
	inline  bool
	cve     string
}

// buildOutcome says how getOrBuild satisfied a request.
type buildOutcome int

const (
	// outcomeHit served a previously built artifact from the cache.
	outcomeHit buildOutcome = iota
	// outcomeBuilt ran the build (cache miss, this caller led).
	outcomeBuilt
	// outcomeCoalesced waited on a concurrent caller's in-flight build
	// for the same key (single-flight deduplication).
	outcomeCoalesced
)

// flight is one in-progress build other callers can wait on.
type flight struct {
	done  chan struct{}
	plain []byte
	err   error
}

// buildCache is a bounded LRU of built plaintext patch artifacts with
// single-flight deduplication: concurrent requests for the same key
// share one build, later requests hit the cache until the entry is
// evicted. Cached values are plaintext (pre-encryption) — per-session
// encryption stays per-client, so caching never shares key material
// across targets.
type buildCache struct {
	mu       sync.Mutex
	capacity int        // <0 disables retention (single-flight only)
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[buildKey]*list.Element
	inflight map[buildKey]*flight
}

type cacheEntry struct {
	key   buildKey
	plain []byte
}

// newBuildCache builds a cache holding at most capacity entries.
// capacity < 0 disables retention entirely; single-flight coalescing
// of concurrent identical builds still applies.
func newBuildCache(capacity int) *buildCache {
	return &buildCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[buildKey]*list.Element),
		inflight: make(map[buildKey]*flight),
	}
}

// getOrBuild returns the plaintext artifact for key, building it with
// build on a miss. Exactly one caller runs build per key at a time:
// concurrent callers for the same key block on the leader's flight and
// share its result (including its error — a failed build fails the
// whole coalesced group, each caller may retry). The returned slice is
// shared and must be treated as read-only. evicted reports how many
// entries this call pushed out of the LRU.
func (c *buildCache) getOrBuild(key buildKey, build func() ([]byte, error)) (plain []byte, outcome buildOutcome, evicted int, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		plain := el.Value.(*cacheEntry).plain
		c.mu.Unlock()
		return plain, outcomeHit, 0, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.plain, outcomeCoalesced, 0, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.plain, fl.err = build()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && c.capacity >= 0 {
		// A racing invalidate between unlock and here already removed
		// any stale entry; insert fresh and trim to capacity.
		if el, ok := c.entries[key]; ok {
			c.lru.Remove(el)
		}
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, plain: fl.plain})
		for c.capacity > 0 && c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			evicted++
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.plain, outcomeBuilt, evicted, fl.err
}

// invalidate drops the entry for key, if cached. In-flight builds are
// not interrupted; their result still lands in the cache.
func (c *buildCache) invalidate(key buildKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// invalidateCVE drops every cached artifact for the CVE across all
// build configurations — a re-registered (revised) patch must never be
// served from a stale build.
func (c *buildCache) invalidateCVE(cve string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if key.cve == cve {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
}

// flush empties the cache.
func (c *buildCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[buildKey]*list.Element)
}

// len reports the number of retained entries.
func (c *buildCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
