package patchserver

import (
	"context"
	"sync"
	"testing"

	"kshot/internal/cvebench"
)

// BenchmarkFleetFetch measures per-request patch delivery over real
// TCP loopback with the build cache cold (every request pays the
// double kernel build) versus warm (requests hit the cached artifact
// and only pay per-session encryption + transport), across fleet
// sizes. ns/op is per request. The acceptance bar for the caching
// tier: warm-cache per-request cost ≥ 5x below cold.
func BenchmarkFleetFetch(b *testing.B) {
	const cve = "CVE-2014-0196"
	info := OSInfo{Version: "4.4", Ftrace: true, Inline: true}

	for _, tc := range []struct {
		name    string
		clients int
		warm    bool
	}{
		{"cold/clients=1", 1, false},
		{"warm/clients=1", 1, true},
		{"warm/clients=16", 16, true},
		{"warm/clients=64", 64, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			srv := newBenchServer(b, cve)
			clients := make([]*Client, tc.clients)
			for i := range clients {
				c, err := Dial(srv.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if _, err := c.Hello(info, goodMeasurement(info.Version)); err != nil {
					b.Fatal(err)
				}
				clients[i] = c
			}
			if tc.warm {
				// Prime the cache so every measured request is a hit.
				if _, err := clients[0].FetchPatch(context.Background(), cve); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !tc.warm {
					srv.FlushCache()
				}
				var wg sync.WaitGroup
				errs := make(chan error, len(clients))
				for _, c := range clients {
					wg.Add(1)
					go func(c *Client) {
						defer wg.Done()
						if _, err := c.FetchPatch(context.Background(), cve); err != nil {
							errs <- err
						}
					}(c)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Report per-request, not per-wave: a wave is len(clients)
			// requests.
			perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(clients))
			b.ReportMetric(perReq, "ns/req")
		})
	}
}

// newBenchServer mirrors newTestServer for benchmarks.
func newBenchServer(b *testing.B, cves ...string) *Server {
	b.Helper()
	entries := make([]*cvebench.Entry, len(cves))
	for i, id := range cves {
		e, ok := cvebench.Get(id)
		if !ok {
			b.Fatalf("unknown CVE %s", id)
		}
		entries[i] = e
	}
	srv, err := NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entries...))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}
	return srv
}
