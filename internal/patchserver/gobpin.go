package patchserver

import (
	"encoding/gob"
	"io"
)

// init pins encoding/gob's process-global type IDs for the protocol
// messages, in one canonical order, so wire sizes never depend on what
// else the process gob-encoded first. See the matching pins in
// internal/patch and internal/sgxprep.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{&request{}, &response{}} {
		if err := enc.Encode(v); err != nil {
			panic("patchserver: gob type pin: " + err.Error())
		}
	}
}
