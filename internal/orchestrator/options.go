package orchestrator

import (
	"time"

	"kshot/internal/core"
	"kshot/internal/faultinject"
	"kshot/internal/obs"
	"kshot/internal/options"
	"kshot/internal/timing"
)

// Rollout tuning defaults.
const (
	// DefaultCanarySize is the size of wave 0.
	DefaultCanarySize = 1

	// DefaultFirstWaveFraction is the share of the fleet in the first
	// post-canary wave — the paper-style "canary → 1% → widening"
	// ramp.
	DefaultFirstWaveFraction = 0.01

	// DefaultGrowthFactor multiplies the wave size each stage after
	// the first percentage wave.
	DefaultGrowthFactor = 2.0

	// DefaultWaveConcurrency is how many targets of one wave are
	// patched in parallel.
	DefaultWaveConcurrency = 4

	// DefaultRegressFactor is the phase-time regression gate: a wave
	// whose mean per-patch downtime exceeds this multiple of the
	// canary baseline is unhealthy.
	DefaultRegressFactor = 3.0

	// DefaultHaltThreshold is the fleet-wide failure budget: once more
	// than this fraction of the fleet has failed or been rolled back,
	// the rollout halts with ErrRolloutHalted.
	DefaultHaltThreshold = 0.25
)

// Option configures NewRollout. Every With* validates its argument
// eagerly; NewRollout reports the first rejected option as a typed
// *options.Error matching options.ErrInvalid, before provisioning
// anything.
type Option func(*config) error

type config struct {
	targets   []Target
	cves      []string
	provision Provisioner

	canarySize  int
	firstFrac   float64
	growth      float64
	concurrency int
	seed        int64

	pauseBudget   time.Duration
	regressFactor float64
	unhealthyTol  float64
	haltFrac      float64

	batchSize    int
	fetchWorkers int
	syncFetch    bool

	store    Store
	faults   func(Target) *faultinject.Set
	wall     timing.WallClock
	obs      *obs.Hooks
	progress func(WaveResult)
}

func defaultConfig() config {
	return config{
		canarySize:    DefaultCanarySize,
		firstFrac:     DefaultFirstWaveFraction,
		growth:        DefaultGrowthFactor,
		concurrency:   DefaultWaveConcurrency,
		regressFactor: DefaultRegressFactor,
		haltFrac:      DefaultHaltThreshold,
	}
}

func optErr(option, format string, a ...any) error {
	return options.Errorf("kshot.NewRollout", option, format, a...)
}

// WithTargets sets the fleet: every target the rollout will patch,
// each tagged with its failure domain. Required; IDs must be unique
// and non-empty. Setting the fleet twice is a conflict.
func WithTargets(targets []Target) Option {
	return func(c *config) error {
		if len(targets) == 0 {
			return optErr("WithTargets", "fleet must not be empty")
		}
		if c.targets != nil {
			return optErr("WithTargets", "fleet set twice")
		}
		seen := make(map[string]bool, len(targets))
		for _, t := range targets {
			if t.ID == "" {
				return optErr("WithTargets", "target with empty ID")
			}
			if seen[t.ID] {
				return optErr("WithTargets", "duplicate target ID %q", t.ID)
			}
			seen[t.ID] = true
		}
		c.targets = append([]Target(nil), targets...)
		return nil
	}
}

// WithCVEs sets the CVE batch rolled out to every target, in
// application order. Required; setting it twice is a conflict.
func WithCVEs(cves ...string) Option {
	return func(c *config) error {
		if len(cves) == 0 {
			return optErr("WithCVEs", "batch must not be empty")
		}
		if c.cves != nil {
			return optErr("WithCVEs", "batch set twice")
		}
		for _, cve := range cves {
			if cve == "" {
				return optErr("WithCVEs", "empty CVE ID")
			}
		}
		c.cves = append([]string(nil), cves...)
		return nil
	}
}

// WithProvisioner sets the factory that turns a Target into a live
// Patcher (ordinarily a kshot.System dialed at the shared patch
// server). Required.
func WithProvisioner(p Provisioner) Option {
	return func(c *config) error {
		if p == nil {
			return optErr("WithProvisioner", "provisioner must not be nil")
		}
		if c.provision != nil {
			return optErr("WithProvisioner", "provisioner set twice")
		}
		c.provision = p
		return nil
	}
}

// WithCanarySize sets how many targets form wave 0 (default
// DefaultCanarySize).
func WithCanarySize(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return optErr("WithCanarySize", "must be >= 1, got %d", n)
		}
		c.canarySize = n
		return nil
	}
}

// WithFirstWaveFraction sets the share of the fleet in the first
// post-canary wave, in (0, 1] (default DefaultFirstWaveFraction).
func WithFirstWaveFraction(f float64) Option {
	return func(c *config) error {
		if f <= 0 || f > 1 {
			return optErr("WithFirstWaveFraction", "must be in (0, 1], got %v", f)
		}
		c.firstFrac = f
		return nil
	}
}

// WithGrowthFactor sets the per-wave size multiplier, > 1 (default
// DefaultGrowthFactor).
func WithGrowthFactor(g float64) Option {
	return func(c *config) error {
		if g <= 1 {
			return optErr("WithGrowthFactor", "must be > 1, got %v", g)
		}
		c.growth = g
		return nil
	}
}

// WithWaveConcurrency bounds how many of a wave's targets are patched
// in parallel (default DefaultWaveConcurrency).
func WithWaveConcurrency(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return optErr("WithWaveConcurrency", "must be >= 1, got %d", n)
		}
		c.concurrency = n
		return nil
	}
}

// WithSeed sets the determinism root: wave composition and any chaos
// schedule derive from it, so a rollout replays exactly.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithPauseBudget bounds the total virtual SMM pause one target may
// spend applying the batch; exceeding it marks the target unhealthy
// (zero — the default — disables the budget).
func WithPauseBudget(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return optErr("WithPauseBudget", "must be >= 0, got %v", d)
		}
		c.pauseBudget = d
		return nil
	}
}

// WithRegressFactor sets the phase-time regression gate: a target
// whose mean per-patch downtime exceeds factor × the canary baseline
// is unhealthy. Must be >= 1; zero disables the gate (default
// DefaultRegressFactor).
func WithRegressFactor(f float64) Option {
	return func(c *config) error {
		if f != 0 && f < 1 {
			return optErr("WithRegressFactor", "must be 0 (disabled) or >= 1, got %v", f)
		}
		c.regressFactor = f
		return nil
	}
}

// WithUnhealthyTolerance sets the fraction of a wave that may be
// unhealthy without failing the gate, in [0, 1) (default 0: one
// unhealthy target rolls the wave back).
func WithUnhealthyTolerance(f float64) Option {
	return func(c *config) error {
		if f < 0 || f >= 1 {
			return optErr("WithUnhealthyTolerance", "must be in [0, 1), got %v", f)
		}
		c.unhealthyTol = f
		return nil
	}
}

// WithHaltThreshold sets the fleet-wide failure budget, in (0, 1]:
// once more than this fraction of the fleet has failed or rolled
// back, the rollout halts (default DefaultHaltThreshold).
func WithHaltThreshold(f float64) Option {
	return func(c *config) error {
		if f <= 0 || f > 1 {
			return optErr("WithHaltThreshold", "must be in (0, 1], got %v", f)
		}
		c.haltFrac = f
		return nil
	}
}

// WithTargetBatchSize caps how many patches each target delivers
// under one SMI (passed through to every target's ApplyAll).
func WithTargetBatchSize(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return optErr("WithTargetBatchSize", "must be >= 1, got %d", n)
		}
		c.batchSize = n
		return nil
	}
}

// WithTargetFetchWorkers sets each target's fetch fan-out (passed
// through to every target's ApplyAll).
func WithTargetFetchWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return optErr("WithTargetFetchWorkers", "must be >= 1, got %d", n)
		}
		c.fetchWorkers = n
		return nil
	}
}

// WithTargetSyncFetch makes every target fetch synchronously (see
// core.WithSyncFetch) so seeded fault schedules replay at identical
// call indices — the chaos suite's determinism mode.
func WithTargetSyncFetch() Option {
	return func(c *config) error {
		c.syncFetch = true
		return nil
	}
}

// WithStateStore persists rollout state through store after every
// target completion and wave boundary. If the store already holds
// state for this rollout (same seed, CVE batch, and fleet), the
// rollout resumes from it instead of starting over; state for a
// different rollout is rejected with ErrStateMismatch.
func WithStateStore(store Store) Option {
	return func(c *config) error {
		if store == nil {
			return optErr("WithStateStore", "store must not be nil")
		}
		if c.store != nil {
			return optErr("WithStateStore", "store set twice")
		}
		c.store = store
		return nil
	}
}

// WithTargetFaults installs a per-target fault-injection schedule:
// fn is consulted once per provisioned target and may return nil (no
// faults for that target). FaultFraction builds the usual
// deterministic fleet-fraction schedules.
func WithTargetFaults(fn func(Target) *faultinject.Set) Option {
	return func(c *config) error {
		if fn == nil {
			return optErr("WithTargetFaults", "schedule must not be nil")
		}
		c.faults = fn
		return nil
	}
}

// WithWallClock sets the clock pacing real-time waits on every
// target (retry backoff, injected latency). Tests pass
// timing.FakeWall.
func WithWallClock(wc timing.WallClock) Option {
	return func(c *config) error {
		c.wall = wc
		return nil
	}
}

// WithObserver installs rollout-level observability hooks: wave and
// target counters under the rollout.* namespace plus the per-target
// pause histogram.
func WithObserver(ob *obs.Hooks) Option {
	return func(c *config) error {
		c.obs = ob
		return nil
	}
}

// WithProgress registers a callback invoked after each wave's health
// gate with that wave's result — how kshot-rollout narrates
// progress. The callback runs on the coordinator goroutine.
func WithProgress(fn func(WaveResult)) Option {
	return func(c *config) error {
		c.progress = fn
		return nil
	}
}

// applyOptions builds the per-target ApplyAll option list from the
// rollout's pass-through knobs.
func (c *config) applyOptions() []core.ApplyOption {
	var out []core.ApplyOption
	if c.batchSize > 0 {
		out = append(out, core.WithBatchSize(c.batchSize))
	}
	if c.fetchWorkers > 0 {
		out = append(out, core.WithFetchWorkers(c.fetchWorkers))
	}
	if c.syncFetch {
		out = append(out, core.WithSyncFetch())
	}
	return out
}
