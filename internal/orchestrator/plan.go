package orchestrator

import (
	"math/rand"
	"sort"
)

// planWaves fixes the full wave schedule up front, as a pure function
// of (targets, options, seed): a canary wave, then a first real wave
// of firstFrac of the fleet, then exponentially widening waves
// (growth factor each), every wave failure-domain aware.
//
// The domain rule is the quorum constraint: a wave never carries a
// quorum of any single failure domain, so a wave-wide fault (or the
// wave's own rollback) can never take a domain below majority. A
// domain of n targets contributes at most max(1, n/2) targets to one
// wave; the max(1, …) concession is forced for one- and two-target
// domains, which could otherwise never be scheduled.
//
// Targets are seeded-shuffled before assignment so wave composition
// decorrelates from lexical ID order while staying replayable from
// the seed alone; each wave's member list is then re-sorted so the
// persisted plan is canonical.
func planWaves(targets []Target, canary int, firstFrac, growth float64, seed int64) []Wave {
	n := len(targets)
	if n == 0 {
		return nil
	}

	domainSize := make(map[string]int, 8)
	for _, t := range targets {
		domainSize[t.Domain]++
	}
	capFor := func(domain string) int {
		c := domainSize[domain] / 2
		if c < 1 {
			c = 1
		}
		return c
	}

	order := append([]Target(nil), targets...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Wave size schedule: canary, then firstFrac of the fleet, then
	// ×growth per wave.
	size := canary
	next := func() int {
		s := size
		size = int(float64(size) * growth)
		if size <= s {
			size = s + 1
		}
		return s
	}
	// After the canary, restart the ramp at the first-wave fraction.
	firstWave := int(float64(n)*firstFrac + 0.999999)
	if firstWave < 1 {
		firstWave = 1
	}

	var waves []Wave
	for len(order) > 0 {
		want := next()
		if len(waves) == 1 {
			// The wave after the canary begins the percentage ramp.
			want = firstWave
			size = int(float64(firstWave) * growth)
			if size <= firstWave {
				size = firstWave + 1
			}
		}
		inWave := make(map[string]int, 8)
		var members []string
		var rest []Target
		for _, t := range order {
			if len(members) < want && inWave[t.Domain] < capFor(t.Domain) {
				inWave[t.Domain]++
				members = append(members, t.ID)
				continue
			}
			rest = append(rest, t)
		}
		sort.Strings(members)
		waves = append(waves, Wave{Index: len(waves), Targets: members})
		order = rest
	}
	return waves
}
