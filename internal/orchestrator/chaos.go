package orchestrator

import (
	"hash/fnv"

	"kshot/internal/faultinject"
)

// FaultFraction builds a deterministic chaos schedule for
// WithTargetFaults: frac of the fleet — selected by a seeded hash of
// each target's ID, so the choice is a pure function of (seed, ID)
// and independent of wave composition — receives a fault set firing
// the given faults; every other target receives nil. Replaying the
// same seed faults exactly the same targets.
//
//	// 3% of the fleet refuses its SMIs mid-rollout:
//	orchestrator.WithTargetFaults(orchestrator.FaultFraction(seed, 0.03,
//		orchestrator.SMIFaults(8)...))
func FaultFraction(seed int64, frac float64, faults ...faultinject.Fault) func(Target) *faultinject.Set {
	return func(t Target) *faultinject.Set {
		h := fnv.New64a()
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(seed) >> (8 * i))
		}
		h.Write(b[:])
		h.Write([]byte(t.ID))
		// FNV's high bits barely move across short, similar IDs, so
		// run the sum through a 64-bit avalanche finalizer before
		// taking the top 53 bits → uniform float in [0, 1).
		x := h.Sum64()
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		u := float64(x>>11) / float64(1<<53)
		if u >= frac {
			return nil
		}
		return faultinject.New(faultinject.Exact(faults...))
	}
}

// SMIFaults is the canonical mid-SMI chaos schedule: the chipset
// refuses the target's first n SMI deliveries, so every delivery
// attempt of a typical rollout run dies inside the SMM world switch.
func SMIFaults(n int) []faultinject.Fault {
	out := make([]faultinject.Fault, n)
	for i := range out {
		out[i] = faultinject.Fault{Point: faultinject.SMMRefuse, Call: i}
	}
	return out
}
