package orchestrator

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Status is a target's position in the rollout lifecycle.
type Status uint8

// Target lifecycle states.
const (
	// StatusPending — not yet reached by any wave.
	StatusPending Status = iota
	// StatusPatched — its wave passed the health gate; the CVE batch
	// is live on the target.
	StatusPatched
	// StatusFailed — the target's own run errored terminally (and it
	// had nothing applied to roll back).
	StatusFailed
	// StatusRolledBack — the target sat in a wave that failed the
	// health gate; whatever it had applied was rolled back.
	StatusRolledBack
)

// String returns the state's report name.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusPatched:
		return "patched"
	case StatusFailed:
		return "failed"
	case StatusRolledBack:
		return "rolled-back"
	default:
		return "unknown"
	}
}

// Wave is one planned rollout stage: the targets patched together and
// health-gated as a unit.
type Wave struct {
	// Index is the wave's position: 0 is the canary.
	Index int

	// Targets holds the member target IDs, sorted.
	Targets []string
}

// TargetState is one target's recorded outcome — everything the
// health gate and a resumed coordinator need, and nothing wall-clock
// dependent, so replaying a seeded rollout reproduces it byte for
// byte.
type TargetState struct {
	ID     string
	Domain string

	// Wave is the index of the wave the plan assigned the target to.
	Wave int

	// Status is the target's lifecycle state.
	Status Status

	// Applied lists the CVEs that landed, in application order — the
	// exact sequence a wave rollback unwinds in reverse.
	Applied []string

	// Failures counts per-patch failures within the target's run.
	Failures int

	// Pause is the total virtual time the target's OS spent paused in
	// SMM for its ApplyAll.
	Pause time.Duration

	// Downtime is the mean per-patch SMM downtime read back from the
	// target's obs metrics (the patch.downtime_us histogram) — the
	// number the phase-time regression gate compares against the
	// canary baseline.
	Downtime time.Duration

	// Err records the terminal error of a failed run, if any.
	Err string
}

// State is the resumable rollout record. It is persisted through a
// Store after every target completion and wave boundary, so a
// coordinator crash resumes without re-patching completed targets.
// Encoding is gob with pinned type IDs; all slices are kept in sorted
// or plan order, so the same seed always persists identical bytes.
type State struct {
	// Seed is the determinism root the plan and chaos schedules
	// derive from.
	Seed int64

	// CVEs is the batch being rolled out, in request order.
	CVEs []string

	// Waves is the full plan, fixed at rollout construction.
	Waves []Wave

	// Targets holds per-target outcomes, sorted by ID.
	Targets []TargetState

	// NextWave is the first wave that has not completed its health
	// gate — where a resumed coordinator picks up.
	NextWave int

	// Baseline is the canary wave's mean per-patch downtime, the
	// reference the regression gate multiplies by the regress factor.
	Baseline time.Duration

	// Halted records that the rollout stopped early (canary rollback
	// or the fleet-wide failure threshold); a resume clears it and
	// continues with the remaining pending waves.
	Halted bool
}

// target returns the state record for id, or nil.
func (st *State) target(id string) *TargetState {
	for i := range st.Targets {
		if st.Targets[i].ID == id {
			return &st.Targets[i]
		}
	}
	return nil
}

// clone deep-copies the state so callers can inspect it without
// racing the coordinator.
func (st *State) clone() *State {
	out := *st
	out.CVEs = append([]string(nil), st.CVEs...)
	out.Waves = make([]Wave, len(st.Waves))
	for i, w := range st.Waves {
		out.Waves[i] = Wave{Index: w.Index, Targets: append([]string(nil), w.Targets...)}
	}
	out.Targets = make([]TargetState, len(st.Targets))
	for i, t := range st.Targets {
		t.Applied = append([]string(nil), t.Applied...)
		out.Targets[i] = t
	}
	return &out
}

// EncodeState serializes a rollout state with the package's pinned
// gob encoding. Same state, same bytes — the chaos suite's replay
// witness compares these directly.
func EncodeState(st *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("orchestrator: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState deserializes a persisted rollout state.
func DecodeState(b []byte) (*State, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return nil, fmt.Errorf("orchestrator: decode state: %w", err)
	}
	return &st, nil
}

// Store persists rollout state across coordinator restarts. Load
// returns (nil, nil) when no state has been saved yet.
type Store interface {
	Save(*State) error
	Load() (*State, error)
}

// MemStore is an in-memory Store: the default for tests and the
// determinism witness for the chaos suite (Bytes exposes the exact
// persisted encoding).
type MemStore struct {
	mu  sync.Mutex
	buf []byte
}

// Save encodes and retains the state.
func (m *MemStore) Save(st *State) error {
	b, err := EncodeState(st)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.buf = b
	m.mu.Unlock()
	return nil
}

// Load decodes the last saved state, or (nil, nil) if none.
func (m *MemStore) Load() (*State, error) {
	m.mu.Lock()
	b := append([]byte(nil), m.buf...)
	m.mu.Unlock()
	if len(b) == 0 {
		return nil, nil
	}
	return DecodeState(b)
}

// Bytes returns the last persisted encoding (nil if none) — the
// byte-identity witness seeded replays are compared on.
func (m *MemStore) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf...)
}

// FileStore persists state to one file with write-to-temp-then-rename
// atomicity, so a crash mid-save never leaves a torn record.
type FileStore struct {
	path string
	mu   sync.Mutex
}

// NewFileStore builds a store writing to path.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Save atomically replaces the state file.
func (f *FileStore) Save(st *State) error {
	b, err := EncodeState(st)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("orchestrator: save state: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		return fmt.Errorf("orchestrator: save state: %w", err)
	}
	return nil
}

// Load reads the state file, or (nil, nil) if it does not exist.
func (f *FileStore) Load() (*State, error) {
	f.mu.Lock()
	b, err := os.ReadFile(f.path)
	f.mu.Unlock()
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("orchestrator: load state: %w", err)
	}
	return DecodeState(b)
}
