package orchestrator

import (
	"encoding/gob"
	"io"
)

// init pins encoding/gob's process-global type IDs for the persisted
// rollout state, in one canonical order, so the byte encoding never
// depends on what else the process gob-encoded first. This is what
// makes a resumed coordinator's state file — and the chaos suite's
// byte-identity replay witness — stable across processes. See the
// matching pins in internal/patch, internal/sgxprep, and
// internal/patchserver.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{&State{}, &Wave{}, &TargetState{}} {
		if err := enc.Encode(v); err != nil {
			panic("orchestrator: gob type pin: " + err.Error())
		}
	}
}
