package orchestrator

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"kshot/internal/core"
	"kshot/internal/faultinject"
	"kshot/internal/obs"
	"kshot/internal/options"
	"kshot/internal/timing"
)

// fakePatcher implements Patcher without booting a machine. Each
// applied patch records downtimeUS into the observer the rollout
// installs, so the health gate reads it back the same way it reads a
// real system's metrics.
type fakePatcher struct {
	applyErr   error
	failCVEs   map[string]error
	downtimeUS float64
	pause      time.Duration

	mu        sync.Mutex
	hooks     *obs.Hooks
	rollbacks []string
	closed    bool
}

func (f *fakePatcher) ApplyAll(ctx context.Context, cves []string, opts ...core.ApplyOption) (*core.BatchReport, error) {
	rep := &core.BatchReport{Requested: len(cves), Failed: map[string]error{}, SMMPause: f.pause}
	if f.applyErr != nil {
		// A run-level failure lands nothing, like a dead server dial.
		return rep, f.applyErr
	}
	for _, cve := range cves {
		if err, bad := f.failCVEs[cve]; bad {
			rep.Failed[cve] = err
			continue
		}
		rep.Reports = append(rep.Reports, &core.Report{ID: cve})
		f.mu.Lock()
		h := f.hooks
		f.mu.Unlock()
		h.Observe(obs.HistDowntime, f.downtimeUS)
	}
	return rep, nil
}

func (f *fakePatcher) Rollback(ctx context.Context, cve string) (*core.Report, error) {
	f.mu.Lock()
	f.rollbacks = append(f.rollbacks, cve)
	f.mu.Unlock()
	return &core.Report{ID: cve}, nil
}

func (f *fakePatcher) SetObserver(h *obs.Hooks) {
	f.mu.Lock()
	f.hooks = h
	f.mu.Unlock()
}

func (f *fakePatcher) SetFaultInjector(*faultinject.Set) {}
func (f *fakePatcher) SetWallClock(timing.WallClock)     {}

func (f *fakePatcher) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
}

// fakeFleet provisions fakePatchers, remembering every provisioned
// target and handing out per-target overrides.
type fakeFleet struct {
	mu          sync.Mutex
	provisioned []string
	patchers    map[string]*fakePatcher
	tweak       func(id string, p *fakePatcher)
}

func newFakeFleet(tweak func(id string, p *fakePatcher)) *fakeFleet {
	return &fakeFleet{patchers: make(map[string]*fakePatcher), tweak: tweak}
}

func (ff *fakeFleet) provision(ctx context.Context, t Target) (Patcher, error) {
	p := &fakePatcher{downtimeUS: 100}
	if ff.tweak != nil {
		ff.tweak(t.ID, p)
	}
	ff.mu.Lock()
	ff.provisioned = append(ff.provisioned, t.ID)
	ff.patchers[t.ID] = p
	ff.mu.Unlock()
	return p, nil
}

func (ff *fakeFleet) provisionedSet() map[string]bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	out := make(map[string]bool, len(ff.provisioned))
	for _, id := range ff.provisioned {
		out[id] = true
	}
	return out
}

func fleetTargets(n int, domains int) []Target {
	out := make([]Target, n)
	for i := range out {
		out[i] = Target{
			ID:     fmt.Sprintf("node-%02d", i),
			Domain: fmt.Sprintf("rack-%d", i%domains),
		}
	}
	return out
}

func statusOf(res *Result, id string) Status {
	for _, ts := range res.Targets {
		if ts.ID == id {
			return ts.Status
		}
	}
	return Status(255)
}

func TestPlanWavesCoversFleetOnce(t *testing.T) {
	targets := fleetTargets(37, 5)
	waves := planWaves(targets, 1, 0.05, 2.0, 42)

	seen := make(map[string]int)
	for _, w := range waves {
		if len(w.Targets) == 0 {
			t.Fatalf("wave %d is empty", w.Index)
		}
		if !sort.StringsAreSorted(w.Targets) {
			t.Fatalf("wave %d members not sorted: %v", w.Index, w.Targets)
		}
		for _, id := range w.Targets {
			seen[id]++
		}
	}
	if len(seen) != len(targets) {
		t.Fatalf("plan covers %d targets, fleet has %d", len(seen), len(targets))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("target %s scheduled %d times", id, n)
		}
	}
	if got := len(waves[0].Targets); got != 1 {
		t.Fatalf("canary wave has %d targets, want 1", got)
	}
	// ceil(37 * 0.05) = 2.
	if got := len(waves[1].Targets); got != 2 {
		t.Fatalf("first ramp wave has %d targets, want 2", got)
	}
}

func TestPlanWavesRespectsDomainQuorum(t *testing.T) {
	// Two domains of 6: a wave may carry at most 3 of either (< quorum
	// of 4).
	targets := fleetTargets(12, 2)
	waves := planWaves(targets, 2, 0.25, 2.0, 7)

	domain := make(map[string]string, len(targets))
	for _, tg := range targets {
		domain[tg.ID] = tg.Domain
	}
	for _, w := range waves {
		perDomain := make(map[string]int)
		for _, id := range w.Targets {
			perDomain[domain[id]]++
		}
		for d, n := range perDomain {
			if n > 3 {
				t.Fatalf("wave %d carries %d of domain %s (cap 3)", w.Index, n, d)
			}
		}
	}
}

func TestPlanWavesDeterministicPerSeed(t *testing.T) {
	targets := fleetTargets(20, 4)
	a := planWaves(targets, 1, 0.1, 2.0, 99)
	b := planWaves(targets, 1, 0.1, 2.0, 99)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := planWaves(targets, 1, 0.1, 2.0, 100)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical plans (possible but wildly unlikely)")
	}
}

func rollout(t *testing.T, ff *fakeFleet, extra ...Option) *Rollout {
	t.Helper()
	opts := append([]Option{
		WithTargets(fleetTargets(16, 4)),
		WithCVEs("CVE-2016-0728", "CVE-2017-7184"),
		WithProvisioner(ff.provision),
		WithFirstWaveFraction(0.125),
		WithSeed(1),
	}, extra...)
	r, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestRunAllHealthy(t *testing.T) {
	ff := newFakeFleet(nil)
	r := rollout(t, ff)
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Patched != 16 || res.Failed != 0 || res.RolledBack != 0 {
		t.Fatalf("got patched=%d failed=%d rolledback=%d", res.Patched, res.Failed, res.RolledBack)
	}
	if res.Baseline <= 0 {
		t.Fatalf("no canary baseline recorded")
	}
	for id, p := range ff.patchers {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if !closed {
			t.Fatalf("patcher %s not closed", id)
		}
	}
}

func TestWaveRollbackReversesAppliedOrder(t *testing.T) {
	// node-00 fails its second CVE. Whatever wave carries it rolls
	// back; every wave-mate unwinds its applied patches in reverse.
	ff := newFakeFleet(func(id string, p *fakePatcher) {
		if id == "node-00" {
			p.failCVEs = map[string]error{"CVE-2017-7184": errors.New("boom")}
		}
	})
	// Halt threshold 1 ≈ disabled: even a large rolled-back wave must
	// not stop the rest of the rollout in this test.
	r := rollout(t, ff, WithHaltThreshold(1))

	var badWave Wave
	for _, w := range r.Plan() {
		for _, id := range w.Targets {
			if id == "node-00" {
				badWave = w
			}
		}
	}
	if badWave.Index == 0 {
		t.Skip("seed put node-00 in the canary; covered by TestCanaryRollbackHalts")
	}

	res, err := r.Run(context.Background())
	if !errors.Is(err, ErrWaveRolledBack) {
		t.Fatalf("err = %v, want ErrWaveRolledBack", err)
	}
	var we *WaveError
	if !errors.As(err, &we) {
		t.Fatalf("err %v does not unwrap to *WaveError", err)
	}
	if we.Wave != badWave.Index {
		t.Fatalf("WaveError.Wave = %d, want %d", we.Wave, badWave.Index)
	}
	if len(we.Unhealthy) != 1 || we.Unhealthy[0] != "node-00" {
		t.Fatalf("Unhealthy = %v, want [node-00]", we.Unhealthy)
	}

	for _, id := range badWave.Targets {
		if got := statusOf(res, id); got != StatusRolledBack {
			t.Fatalf("wave member %s status %v, want rolled-back", id, got)
		}
		p := ff.patchers[id]
		want := []string{"CVE-2017-7184", "CVE-2016-0728"}
		if id == "node-00" {
			want = []string{"CVE-2016-0728"} // its second CVE never landed
		}
		if fmt.Sprint(p.rollbacks) != fmt.Sprint(want) {
			t.Fatalf("%s rollbacks = %v, want %v (reverse apply order)", id, p.rollbacks, want)
		}
	}
	// Every target outside the bad wave still patched.
	if res.RolledBack != len(badWave.Targets) {
		t.Fatalf("RolledBack = %d, want %d", res.RolledBack, len(badWave.Targets))
	}
	if res.Patched != 16-len(badWave.Targets) {
		t.Fatalf("Patched = %d, want %d", res.Patched, 16-len(badWave.Targets))
	}
}

func TestCanaryRollbackHalts(t *testing.T) {
	ff := newFakeFleet(func(id string, p *fakePatcher) {
		p.applyErr = errors.New("patch refused")
	})
	r := rollout(t, ff)
	res, err := r.Run(context.Background())
	if !errors.Is(err, ErrRolloutHalted) {
		t.Fatalf("err = %v, want ErrRolloutHalted", err)
	}
	if !errors.Is(err, ErrWaveRolledBack) {
		t.Fatalf("halt err %v should also match ErrWaveRolledBack", err)
	}
	var he *HaltError
	if !errors.As(err, &he) || he.Wave != 0 {
		t.Fatalf("err %v should carry *HaltError for wave 0", err)
	}
	if !res.Halted {
		t.Fatalf("Result.Halted = false after halt")
	}
	// Only the canary ran; the rest of the fleet is untouched.
	if got := res.Patched + res.Failed + res.RolledBack; got != 1 {
		t.Fatalf("%d targets reached terminal state, want 1 (canary only)", got)
	}
}

func TestHaltThresholdStopsFleetwideFailure(t *testing.T) {
	// Everything outside the canary fails: the canary passes (so we
	// exercise the threshold halt, not the canary halt), then failed
	// fraction climbs past the 25% budget. Provisioning is lazy, so
	// the healthy set can be filled in from the plan before Run.
	healthy := map[string]bool{}
	ff := newFakeFleet(func(id string, p *fakePatcher) {
		if !healthy[id] {
			p.applyErr = errors.New("patch refused")
		}
	})
	r := rollout(t, ff)
	for _, id := range r.Plan()[0].Targets {
		healthy[id] = true
	}
	res, err := r.Run(context.Background())
	if !errors.Is(err, ErrRolloutHalted) {
		t.Fatalf("err = %v, want ErrRolloutHalted", err)
	}
	if !res.Halted {
		t.Fatalf("Result.Halted = false")
	}
	// The rollout stopped early: some targets never reached a wave.
	pending := 0
	for _, ts := range res.Targets {
		if ts.Status == StatusPending {
			pending++
		}
	}
	if pending == 0 {
		t.Fatalf("halt left no pending targets; rollout ran to completion")
	}
}

func TestRegressionGateRollsBackSlowWave(t *testing.T) {
	// Canary and early waves run at 100µs per patch; node-09's machine
	// regresses to 900µs — past 3× baseline — so its wave rolls back.
	ff := newFakeFleet(func(id string, p *fakePatcher) {
		if id == "node-09" {
			p.downtimeUS = 900
		}
	})
	r := rollout(t, ff)
	var badWave int
	for _, w := range r.Plan() {
		for _, id := range w.Targets {
			if id == "node-09" {
				badWave = w.Index
			}
		}
	}
	if badWave == 0 {
		t.Skip("seed put node-09 in the canary; regression gate needs a baseline")
	}
	res, err := r.Run(context.Background())
	if !errors.Is(err, ErrWaveRolledBack) {
		t.Fatalf("err = %v, want ErrWaveRolledBack", err)
	}
	var we *WaveError
	if !errors.As(err, &we) {
		t.Fatalf("err %v does not unwrap to *WaveError", err)
	}
	if we.Wave != badWave || len(we.Unhealthy) != 1 || we.Unhealthy[0] != "node-09" {
		t.Fatalf("WaveError = %+v, want wave %d unhealthy [node-09]", we, badWave)
	}
	if got := statusOf(res, "node-09"); got != StatusRolledBack {
		t.Fatalf("node-09 status %v, want rolled-back", got)
	}
}

func TestPauseBudgetGate(t *testing.T) {
	ff := newFakeFleet(func(id string, p *fakePatcher) {
		p.pause = 50 * time.Microsecond
		if id == "node-05" {
			p.pause = 5 * time.Millisecond
		}
	})
	r := rollout(t, ff, WithPauseBudget(time.Millisecond))
	var badWave int
	for _, w := range r.Plan() {
		for _, id := range w.Targets {
			if id == "node-05" {
				badWave = w.Index
			}
		}
	}
	if badWave == 0 {
		t.Skip("seed put node-05 in the canary")
	}
	_, err := r.Run(context.Background())
	var we *WaveError
	if !errors.As(err, &we) || len(we.Unhealthy) != 1 || we.Unhealthy[0] != "node-05" {
		t.Fatalf("err = %v, want wave error with unhealthy [node-05]", err)
	}
}

func TestUnhealthyToleranceAbsorbsFailures(t *testing.T) {
	ff := newFakeFleet(func(id string, p *fakePatcher) {
		if id == "node-07" {
			p.applyErr = errors.New("flaky")
		}
	})
	r := rollout(t, ff, WithUnhealthyTolerance(0.9))
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v (tolerance should absorb the one bad target)", err)
	}
	if got := statusOf(res, "node-07"); got != StatusFailed {
		t.Fatalf("node-07 status %v, want failed", got)
	}
	if res.Patched != 15 {
		t.Fatalf("Patched = %d, want 15", res.Patched)
	}
}

func TestResumeSkipsCompletedWaves(t *testing.T) {
	store := &MemStore{}
	ctx, cancel := context.WithCancel(context.Background())

	// First coordinator: cancel after the gate of wave 1 — a crash at
	// a wave boundary.
	ff1 := newFakeFleet(nil)
	r1 := rollout(t, ff1, WithStateStore(store), WithProgress(func(wr WaveResult) {
		if wr.Index == 1 {
			cancel()
		}
	}))
	_, err := r1.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first run err = %v, want context.Canceled", err)
	}
	done := ff1.provisionedSet()
	if len(done) == 0 {
		t.Fatalf("first run patched nothing")
	}

	// Second coordinator: same options, fresh provisioner. It must not
	// re-provision (re-patch) anything the first run completed.
	ff2 := newFakeFleet(nil)
	r2 := rollout(t, ff2, WithStateStore(store))
	res, err := r2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.Patched != 16 {
		t.Fatalf("resumed run Patched = %d, want 16", res.Patched)
	}
	for id := range ff2.provisionedSet() {
		if done[id] {
			t.Fatalf("resume re-patched completed target %s", id)
		}
	}
}

func TestResumeRejectsForeignState(t *testing.T) {
	store := &MemStore{}
	ff := newFakeFleet(nil)
	r := rollout(t, ff, WithStateStore(store))
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	_, err := New(
		WithTargets(fleetTargets(16, 4)),
		WithCVEs("CVE-2016-0728", "CVE-2017-7184"),
		WithProvisioner(ff.provision),
		WithFirstWaveFraction(0.125),
		WithSeed(2), // different seed than the persisted rollout
		WithStateStore(store),
	)
	if !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("err = %v, want ErrStateMismatch", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	ff := newFakeFleet(nil)
	r := rollout(t, ff)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatalf("second Run succeeded; want error")
	}
}

func TestStateBytesDeterministic(t *testing.T) {
	run := func() []byte {
		store := &MemStore{}
		ff := newFakeFleet(func(id string, p *fakePatcher) {
			if id == "node-03" {
				p.applyErr = errors.New("patch refused")
			}
		})
		r := rollout(t, ff, WithStateStore(store), WithSeed(77))
		r.Run(context.Background())
		return store.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("no state persisted")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed persisted different state bytes (%d vs %d bytes)", len(a), len(b))
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := t.TempDir() + "/rollout.state"
	fs := NewFileStore(path)
	if st, err := fs.Load(); err != nil || st != nil {
		t.Fatalf("Load before save = %v, %v; want nil, nil", st, err)
	}
	want := &State{Seed: 9, CVEs: []string{"CVE-2016-0728"},
		Waves:   []Wave{{Index: 0, Targets: []string{"a"}}},
		Targets: []TargetState{{ID: "a", Domain: "r0", Status: StatusPatched}}}
	if err := fs.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := fs.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestFaultFractionDeterministicSelection(t *testing.T) {
	targets := fleetTargets(200, 10)
	pick := func(seed int64, frac float64) map[string]bool {
		fn := FaultFraction(seed, frac, SMIFaults(4)...)
		out := make(map[string]bool)
		for _, tg := range targets {
			if fn(tg) != nil {
				out[tg.ID] = true
			}
		}
		return out
	}
	a, b := pick(5, 0.1), pick(5, 0.1)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed selected different targets")
	}
	if len(a) == 0 || len(a) > 60 {
		t.Fatalf("frac 0.1 of 200 selected %d targets; selection badly skewed", len(a))
	}
	if n := len(pick(5, 0)); n != 0 {
		t.Fatalf("frac 0 selected %d targets", n)
	}
	if n := len(pick(5, 1)); n != 200 {
		t.Fatalf("frac 1 selected %d targets, want all 200", n)
	}
}

func TestNewRolloutOptionValidation(t *testing.T) {
	ff := newFakeFleet(nil)
	base := func() []Option {
		return []Option{
			WithTargets(fleetTargets(4, 2)),
			WithCVEs("CVE-2016-0728"),
			WithProvisioner(ff.provision),
		}
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"no targets", []Option{WithCVEs("CVE-2016-0728"), WithProvisioner(ff.provision)}},
		{"no cves", []Option{WithTargets(fleetTargets(4, 2)), WithProvisioner(ff.provision)}},
		{"no provisioner", []Option{WithTargets(fleetTargets(4, 2)), WithCVEs("CVE-2016-0728")}},
		{"empty fleet", append(base(), WithTargets(nil))},
		{"duplicate target", []Option{WithTargets([]Target{{ID: "a"}, {ID: "a"}}), WithCVEs("c"), WithProvisioner(ff.provision)}},
		{"empty target id", []Option{WithTargets([]Target{{ID: ""}}), WithCVEs("c"), WithProvisioner(ff.provision)}},
		{"targets twice", append(base(), WithTargets(fleetTargets(4, 2)))},
		{"cves twice", append(base(), WithCVEs("CVE-2017-7184"))},
		{"empty cve", []Option{WithTargets(fleetTargets(4, 2)), WithCVEs(""), WithProvisioner(ff.provision)}},
		{"nil provisioner", append(base(), WithProvisioner(nil))},
		{"canary zero", append(base(), WithCanarySize(0))},
		{"canary exceeds fleet", append(base(), WithCanarySize(5))},
		{"first fraction zero", append(base(), WithFirstWaveFraction(0))},
		{"first fraction over one", append(base(), WithFirstWaveFraction(1.5))},
		{"growth one", append(base(), WithGrowthFactor(1))},
		{"concurrency zero", append(base(), WithWaveConcurrency(0))},
		{"negative pause budget", append(base(), WithPauseBudget(-time.Second))},
		{"regress factor below one", append(base(), WithRegressFactor(0.5))},
		{"tolerance one", append(base(), WithUnhealthyTolerance(1))},
		{"halt threshold zero", append(base(), WithHaltThreshold(0))},
		{"batch size zero", append(base(), WithTargetBatchSize(0))},
		{"fetch workers zero", append(base(), WithTargetFetchWorkers(0))},
		{"nil store", append(base(), WithStateStore(nil))},
		{"nil faults", append(base(), WithTargetFaults(nil))},
		{"nil option", append(base(), nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts...)
			if err == nil {
				t.Fatalf("New accepted invalid options")
			}
			if !errors.Is(err, options.ErrInvalid) {
				t.Fatalf("err = %v, want options.ErrInvalid", err)
			}
			var oe *options.Error
			if !errors.As(err, &oe) {
				t.Fatalf("err %v does not unwrap to *options.Error", err)
			}
			if oe.Constructor != "kshot.NewRollout" {
				t.Fatalf("Constructor = %q, want kshot.NewRollout", oe.Constructor)
			}
		})
	}
}

func TestRolloutObserverCounters(t *testing.T) {
	hooks := obs.NewHooks(obs.DefaultTraceCapacity, nil)
	ff := newFakeFleet(nil)
	r := rollout(t, ff, WithObserver(hooks))
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := hooks.Metrics.Snapshot()
	counters := make(map[string]int64)
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters[obs.CtrRolloutPatched] != 16 {
		t.Fatalf("%s = %d, want 16", obs.CtrRolloutPatched, counters[obs.CtrRolloutPatched])
	}
	if counters[obs.CtrRolloutWaves] == 0 {
		t.Fatalf("no waves counted")
	}
}
