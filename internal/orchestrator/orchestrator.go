// Package orchestrator is KShot's fleet rollout coordinator: one
// process driving a CVE batch across N patch targets in staged waves
// — canary → first percentage wave → exponentially widening waves —
// the deployment inverse of the patch server's many-clients story.
//
// Each wave is health-gated on the targets' own observability
// metrics: a target is unhealthy if its run errored, any member of
// the batch failed to land, its virtual SMM pause blew the configured
// budget, or its mean per-patch downtime regressed past the canary
// baseline. A wave that fails the gate is rolled back in place —
// every applied patch on every member unwound in reverse order — and
// the rollout continues with the remaining waves unless the canary
// itself failed or the fleet-wide failure budget is exhausted, which
// halt it with ErrRolloutHalted.
//
// Scheduling is failure-domain aware: targets are tagged with a
// domain and no wave ever carries a quorum of any one domain, so a
// misbehaving wave cannot take a domain below majority.
//
// The whole rollout is deterministic from its seed: wave composition,
// chaos schedules (WithTargetFaults + FaultFraction), and the
// persisted state bytes all replay exactly. State is gob-encoded with
// pinned type IDs and saved through a Store after every target and
// wave, so a crashed coordinator resumes without re-patching
// completed targets.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"kshot/internal/core"
	"kshot/internal/faultinject"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// Target is one fleet member: a machine the rollout will patch,
// tagged with its failure domain (rack, AZ, shard — any blast-radius
// grouping the wave scheduler must respect).
type Target struct {
	ID     string
	Domain string
}

// Patcher is the per-target patching surface the rollout drives.
// *core.System (kshot.System) implements it; tests substitute fakes.
type Patcher interface {
	ApplyAll(ctx context.Context, cves []string, opts ...core.ApplyOption) (*core.BatchReport, error)
	Rollback(ctx context.Context, cve string) (*core.Report, error)
	SetObserver(*obs.Hooks)
	SetFaultInjector(*faultinject.Set)
	SetWallClock(timing.WallClock)
	Close()
}

// Provisioner turns a Target into a live Patcher — ordinarily by
// booting a kshot.System pointed at the shared patch server. It is
// called lazily, when the target's wave starts, and the rollout
// closes every Patcher it provisions.
type Provisioner func(ctx context.Context, t Target) (Patcher, error)

// Typed failure classes for Run; branch with errors.Is.
var (
	// ErrWaveRolledBack classifies a wave that failed its health gate
	// and was rolled back. Run returns it (possibly joined across
	// waves) even when the rollout otherwise completed.
	ErrWaveRolledBack = errors.New("orchestrator: wave failed health gate and was rolled back")

	// ErrRolloutHalted classifies an early stop: the canary wave
	// rolled back, or fleet-wide failures exceeded the halt
	// threshold. A halted rollout's error also matches
	// ErrWaveRolledBack when a rollback caused the halt.
	ErrRolloutHalted = errors.New("orchestrator: rollout halted")

	// ErrStateMismatch reports that a state store holds a different
	// rollout (other seed, CVE batch, or fleet) than the one being
	// constructed.
	ErrStateMismatch = errors.New("orchestrator: persisted state does not match rollout")
)

// WaveError reports one rolled-back wave. It matches ErrWaveRolledBack
// under errors.Is; retrieve it with errors.As for the members.
type WaveError struct {
	Wave      int
	Unhealthy []string // unhealthy target IDs, sorted
}

// Error implements the error interface.
func (e *WaveError) Error() string {
	return fmt.Sprintf("orchestrator: wave %d rolled back (unhealthy: %s)",
		e.Wave, strings.Join(e.Unhealthy, ", "))
}

// Is makes errors.Is(err, ErrWaveRolledBack) hold.
func (e *WaveError) Is(target error) bool { return target == ErrWaveRolledBack }

// HaltError reports an early stop of the whole rollout. It matches
// ErrRolloutHalted under errors.Is and unwraps to the wave error that
// tripped it.
type HaltError struct {
	Wave   int
	Reason string
	Err    error
}

// Error implements the error interface.
func (e *HaltError) Error() string {
	return fmt.Sprintf("orchestrator: halted at wave %d: %s", e.Wave, e.Reason)
}

// Is makes errors.Is(err, ErrRolloutHalted) hold.
func (e *HaltError) Is(target error) bool { return target == ErrRolloutHalted }

// Unwrap exposes the underlying wave error, so a halted rollout also
// matches ErrWaveRolledBack when a rollback caused the halt.
func (e *HaltError) Unwrap() error { return e.Err }

// WaveResult is one wave's gated outcome.
type WaveResult struct {
	Index        int
	Targets      []string
	Unhealthy    []string // sorted; empty when the wave passed
	RolledBack   bool
	MeanDowntime time.Duration // mean per-patch downtime across members
	Resumed      int           // members skipped because persisted state already had them
}

// Result is the rollout's final accounting.
type Result struct {
	// Targets holds final per-target states, sorted by ID.
	Targets []TargetState

	// Waves holds per-wave outcomes for the waves that ran.
	Waves []WaveResult

	// Patched, Failed, and RolledBack count targets by final status.
	Patched, Failed, RolledBack int

	// Baseline is the canary wave's mean per-patch downtime.
	Baseline time.Duration

	// Halted reports an early stop (see ErrRolloutHalted).
	Halted bool
}

// Rollout is a configured staged rollout. Build with New, drive with
// Run.
type Rollout struct {
	cfg config

	mu    sync.Mutex
	st    *State
	waves []WaveResult
	ran   bool
}

// New validates the options, fixes the wave plan, and — when a state
// store already holds this rollout — adopts the persisted state for
// resumption.
func New(opts ...Option) (*Rollout, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if o == nil {
			return nil, optErr("Option", "nil option")
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.targets == nil {
		return nil, optErr("WithTargets", "required: no fleet configured")
	}
	if cfg.cves == nil {
		return nil, optErr("WithCVEs", "required: no CVE batch configured")
	}
	if cfg.provision == nil {
		return nil, optErr("WithProvisioner", "required: no provisioner configured")
	}
	if cfg.canarySize > len(cfg.targets) {
		return nil, optErr("WithCanarySize", "canary of %d exceeds fleet of %d",
			cfg.canarySize, len(cfg.targets))
	}

	targets := append([]Target(nil), cfg.targets...)
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
	cfg.targets = targets

	r := &Rollout{cfg: cfg}
	if cfg.store != nil {
		prior, err := cfg.store.Load()
		if err != nil {
			return nil, err
		}
		if prior != nil {
			if err := r.checkResume(prior); err != nil {
				return nil, err
			}
			prior.Halted = false // an operator resuming has intervened
			r.st = prior
			return r, nil
		}
	}

	st := &State{
		Seed:  cfg.seed,
		CVEs:  append([]string(nil), cfg.cves...),
		Waves: planWaves(targets, cfg.canarySize, cfg.firstFrac, cfg.growth, cfg.seed),
	}
	st.Targets = make([]TargetState, len(targets))
	waveOf := make(map[string]int, len(targets))
	for _, w := range st.Waves {
		for _, id := range w.Targets {
			waveOf[id] = w.Index
		}
	}
	for i, t := range targets {
		st.Targets[i] = TargetState{ID: t.ID, Domain: t.Domain, Wave: waveOf[t.ID]}
	}
	r.st = st
	return r, nil
}

// checkResume verifies that persisted state belongs to this rollout.
func (r *Rollout) checkResume(prior *State) error {
	if prior.Seed != r.cfg.seed {
		return fmt.Errorf("%w: seed %d vs %d", ErrStateMismatch, prior.Seed, r.cfg.seed)
	}
	if len(prior.CVEs) != len(r.cfg.cves) {
		return fmt.Errorf("%w: CVE batch differs", ErrStateMismatch)
	}
	for i, cve := range prior.CVEs {
		if cve != r.cfg.cves[i] {
			return fmt.Errorf("%w: CVE batch differs at %d (%s vs %s)",
				ErrStateMismatch, i, cve, r.cfg.cves[i])
		}
	}
	if len(prior.Targets) != len(r.cfg.targets) {
		return fmt.Errorf("%w: fleet size %d vs %d",
			ErrStateMismatch, len(prior.Targets), len(r.cfg.targets))
	}
	for i, ts := range prior.Targets {
		t := r.cfg.targets[i]
		if ts.ID != t.ID || ts.Domain != t.Domain {
			return fmt.Errorf("%w: target %d is %s/%s, rollout has %s/%s",
				ErrStateMismatch, i, ts.ID, ts.Domain, t.ID, t.Domain)
		}
	}
	return nil
}

// Plan returns the fixed wave schedule.
func (r *Rollout) Plan() []Wave {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st.clone().Waves
}

// State returns a copy of the current rollout state.
func (r *Rollout) State() *State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st.clone()
}

// persist saves the current state through the store, if any.
// Callers hold r.mu.
func (r *Rollout) persistLocked() error {
	if r.cfg.store == nil {
		return nil
	}
	return r.cfg.store.Save(r.st)
}

// targetOutcome is what one target's run produced, before gating.
type targetOutcome struct {
	id       string
	applied  []string
	failures int
	pause    time.Duration
	downtime time.Duration
	err      error
}

// Run drives the rollout to completion (or halt). It returns the
// final accounting alongside the classification error: nil when every
// wave passed, an error matching ErrWaveRolledBack when one or more
// waves were rolled back, additionally matching ErrRolloutHalted when
// the rollout stopped early. Context cancellation aborts between
// deliveries with the state persisted, so a later Run resumes.
func (r *Rollout) Run(ctx context.Context) (*Result, error) {
	r.mu.Lock()
	if r.ran {
		r.mu.Unlock()
		return nil, errors.New("orchestrator: Run called twice; build a new Rollout (resume goes through the state store)")
	}
	r.ran = true
	r.mu.Unlock()

	var waveErrs []error
	for w := r.st.NextWave; w < len(r.st.Waves); w++ {
		if err := ctx.Err(); err != nil {
			return r.result(), err
		}
		wave := r.st.Waves[w]
		wr, err := r.runWave(ctx, wave)
		if err != nil {
			// Cancellation mid-wave: state already persisted per
			// target; the wave gate has not run, so NextWave stays.
			return r.result(), err
		}

		r.mu.Lock()
		r.waves = append(r.waves, wr)
		r.st.NextWave = w + 1
		if wr.RolledBack {
			we := &WaveError{Wave: w, Unhealthy: wr.Unhealthy}
			waveErrs = append(waveErrs, we)
			halt := ""
			if w == 0 {
				halt = "canary wave rolled back"
			} else if frac := r.failedFractionLocked(); frac > r.cfg.haltFrac && w+1 < len(r.st.Waves) {
				halt = fmt.Sprintf("%.0f%% of the fleet failed or rolled back (budget %.0f%%)",
					frac*100, r.cfg.haltFrac*100)
			}
			if halt != "" {
				r.st.Halted = true
				perr := r.persistLocked()
				r.mu.Unlock()
				r.notify(wr)
				if perr != nil {
					return r.result(), perr
				}
				return r.result(), &HaltError{Wave: w, Reason: halt, Err: we}
			}
		} else if w == 0 {
			r.st.Baseline = wr.MeanDowntime
			r.cfg.obs.ObserveDur(obs.HistRolloutBaseline, wr.MeanDowntime)
		}
		perr := r.persistLocked()
		r.mu.Unlock()
		r.notify(wr)
		if perr != nil {
			return r.result(), perr
		}
		// The failure budget protects waves that have not run yet: a
		// passed wave can still tip the fleetwide fraction over it
		// (e.g. under WithUnhealthyTolerance), but once no waves
		// remain there is nothing left to halt.
		if frac := func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return r.failedFractionLocked() }(); frac > r.cfg.haltFrac && w+1 < len(r.st.Waves) {
			r.mu.Lock()
			r.st.Halted = true
			perr := r.persistLocked()
			r.mu.Unlock()
			if perr != nil {
				return r.result(), perr
			}
			return r.result(), &HaltError{Wave: w,
				Reason: fmt.Sprintf("%.0f%% of the fleet failed or rolled back (budget %.0f%%)",
					frac*100, r.cfg.haltFrac*100),
				Err: errors.Join(waveErrs...)}
		}
	}
	return r.result(), errors.Join(waveErrs...)
}

// notify invokes the progress callback outside the state lock.
func (r *Rollout) notify(wr WaveResult) {
	if r.cfg.progress != nil {
		r.cfg.progress(wr)
	}
}

// failedFractionLocked is the share of the fleet in a terminal
// non-patched state. Callers hold r.mu.
func (r *Rollout) failedFractionLocked() float64 {
	bad := 0
	for _, ts := range r.st.Targets {
		if ts.Status == StatusFailed || ts.Status == StatusRolledBack {
			bad++
		}
	}
	return float64(bad) / float64(len(r.st.Targets))
}

// runWave patches every pending member of one wave (bounded
// concurrency), gates the wave's health, rolls it back if the gate
// fails, and records every member's terminal status. A non-nil error
// means the run was cancelled, not that the wave was unhealthy.
func (r *Rollout) runWave(ctx context.Context, wave Wave) (WaveResult, error) {
	wr := WaveResult{Index: wave.Index, Targets: wave.Targets}

	// Resume: members already terminal keep their recorded outcome
	// and are not re-patched; they still count for the health gate.
	var pending []Target
	r.mu.Lock()
	for _, id := range wave.Targets {
		ts := r.st.target(id)
		if ts.Status == StatusPending {
			pending = append(pending, Target{ID: ts.ID, Domain: ts.Domain})
		} else {
			wr.Resumed++
			r.cfg.obs.Count(obs.CtrRolloutResumeSkips, 1)
		}
	}
	r.mu.Unlock()

	// Patch the pending members, keeping their Patchers alive until
	// the gate decides whether the wave rolls back.
	patchers := make(map[string]Patcher, len(pending))
	var pmu sync.Mutex
	defer func() {
		pmu.Lock()
		defer pmu.Unlock()
		for _, p := range patchers {
			p.Close()
		}
	}()

	sem := make(chan struct{}, r.cfg.concurrency)
	outcomes := make(chan targetOutcome, len(pending))
	var wg sync.WaitGroup
	for _, t := range pending {
		wg.Add(1)
		go func(t Target) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out := r.runTarget(ctx, t, &pmu, patchers)
			outcomes <- out
		}(t)
	}
	wg.Wait()
	close(outcomes)

	var cancelled error
	r.mu.Lock()
	for out := range outcomes {
		ts := r.st.target(out.id)
		ts.Applied = out.applied
		ts.Failures = out.failures
		ts.Pause = out.pause
		ts.Downtime = out.downtime
		if out.err != nil {
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				cancelled = out.err
				continue
			}
			ts.Err = out.err.Error()
		}
		r.cfg.obs.ObserveDur(obs.HistTargetPause, out.pause)
		// Status stays Pending until the gate; persist the raw outcome
		// so a crash before gating resumes with the work retained.
	}
	perr := r.persistLocked()
	r.mu.Unlock()
	if cancelled != nil {
		return wr, cancelled
	}
	if perr != nil {
		return wr, perr
	}

	// Health gate over every member (recorded + fresh).
	r.mu.Lock()
	defer r.mu.Unlock()
	var downtimes []time.Duration
	for _, id := range wave.Targets {
		ts := r.st.target(id)
		if r.unhealthyLocked(ts) {
			wr.Unhealthy = append(wr.Unhealthy, id)
		}
		if ts.Downtime > 0 {
			downtimes = append(downtimes, ts.Downtime)
		}
	}
	sort.Strings(wr.Unhealthy)
	if len(downtimes) > 0 {
		var sum time.Duration
		for _, d := range downtimes {
			sum += d
		}
		wr.MeanDowntime = sum / time.Duration(len(downtimes))
	}

	tolerated := int(r.cfg.unhealthyTol * float64(len(wave.Targets)))
	if len(wr.Unhealthy) > tolerated {
		wr.RolledBack = true
		r.rollbackWaveLocked(ctx, wave, patchers, &pmu)
		r.cfg.obs.Count(obs.CtrRolloutWavesRolledBack, 1)
	} else {
		for _, id := range wave.Targets {
			ts := r.st.target(id)
			if ts.Status != StatusPending {
				continue // resumed member keeps its recorded status
			}
			if ts.Err != "" && len(ts.Applied) == 0 {
				ts.Status = StatusFailed
				r.cfg.obs.Count(obs.CtrRolloutFailed, 1)
				continue
			}
			ts.Status = StatusPatched
			r.cfg.obs.Count(obs.CtrRolloutPatched, 1)
		}
	}
	r.cfg.obs.Count(obs.CtrRolloutWaves, 1)
	return wr, nil
}

// unhealthyLocked applies the health gate to one recorded target.
func (r *Rollout) unhealthyLocked(ts *TargetState) bool {
	if ts.Err != "" || ts.Failures > 0 {
		return true
	}
	if ts.Status == StatusFailed || ts.Status == StatusRolledBack {
		return true
	}
	if r.cfg.pauseBudget > 0 && ts.Pause > r.cfg.pauseBudget {
		return true
	}
	if r.cfg.regressFactor > 0 && r.st.Baseline > 0 &&
		ts.Downtime > time.Duration(float64(r.st.Baseline)*r.cfg.regressFactor) {
		return true
	}
	return false
}

// rollbackWaveLocked unwinds every member of a failed wave: each
// applied CVE rolled back in reverse order on the patchers still held
// open for exactly this purpose. Callers hold r.mu.
func (r *Rollout) rollbackWaveLocked(ctx context.Context, wave Wave, patchers map[string]Patcher, pmu *sync.Mutex) {
	for _, id := range wave.Targets {
		ts := r.st.target(id)
		if ts.Status != StatusPending {
			continue // resumed terminal member; nothing held open
		}
		pmu.Lock()
		p := patchers[id]
		pmu.Unlock()
		if p != nil {
			for i := len(ts.Applied) - 1; i >= 0; i-- {
				if _, err := p.Rollback(ctx, ts.Applied[i]); err != nil && ts.Err == "" {
					ts.Err = fmt.Sprintf("rollback %s: %v", ts.Applied[i], err)
				}
			}
		}
		if len(ts.Applied) == 0 && ts.Err != "" {
			ts.Status = StatusFailed
			r.cfg.obs.Count(obs.CtrRolloutFailed, 1)
			continue
		}
		ts.Status = StatusRolledBack
		r.cfg.obs.Count(obs.CtrRolloutRolledBack, 1)
	}
}

// runTarget provisions and patches one target, returning its raw
// outcome. The provisioned Patcher is parked in patchers for the
// wave-level rollback; runWave closes it.
func (r *Rollout) runTarget(ctx context.Context, t Target, pmu *sync.Mutex, patchers map[string]Patcher) targetOutcome {
	out := targetOutcome{id: t.ID}
	p, err := r.cfg.provision(ctx, t)
	if err != nil {
		out.err = fmt.Errorf("provision %s: %w", t.ID, err)
		return out
	}
	pmu.Lock()
	patchers[t.ID] = p
	pmu.Unlock()

	hooks := &obs.Hooks{Metrics: obs.NewMetrics()}
	p.SetObserver(hooks)
	if r.cfg.faults != nil {
		if fi := r.cfg.faults(t); fi != nil {
			p.SetFaultInjector(fi)
		}
	}
	if r.cfg.wall != nil {
		p.SetWallClock(r.cfg.wall)
	}

	rep, runErr := p.ApplyAll(ctx, r.cfg.cves, r.cfg.applyOptions()...)
	if rep != nil {
		for _, pr := range rep.Reports {
			out.applied = append(out.applied, pr.ID)
		}
		out.failures = len(rep.Failed)
		out.pause = rep.SMMPause
	}
	out.downtime = meanDowntime(hooks)
	out.err = runErr
	return out
}

// meanDowntime reads the mean per-patch SMM downtime back from a
// target's obs metrics — the "existing obs metrics" leg of the health
// gate (patch.downtime_us histogram).
func meanDowntime(hooks *obs.Hooks) time.Duration {
	if hooks == nil || hooks.Metrics == nil {
		return 0
	}
	snap := hooks.Metrics.Snapshot()
	for _, h := range snap.Hists {
		if h.Name == obs.HistDowntime && h.Count > 0 {
			return time.Duration(h.Sum / float64(h.Count) * float64(time.Microsecond))
		}
	}
	return 0
}

// result assembles the final accounting. Safe to call at any point;
// Run calls it on every exit path.
func (r *Rollout) result() *Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st.clone()
	res := &Result{
		Targets:  st.Targets,
		Waves:    append([]WaveResult(nil), r.waves...),
		Baseline: st.Baseline,
		Halted:   st.Halted,
	}
	for _, ts := range st.Targets {
		switch ts.Status {
		case StatusPatched:
			res.Patched++
		case StatusFailed:
			res.Failed++
		case StatusRolledBack:
			res.RolledBack++
		}
	}
	return res
}
