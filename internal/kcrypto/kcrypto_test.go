package kcrypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// detRand is a deterministic entropy source for reproducible tests.
type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func TestDHAgreement(t *testing.T) {
	rng := newDetRand(1)
	a, err := GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.SharedSecret(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.SharedSecret(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Error("shared secrets differ")
	}
	if len(ka) != 32 {
		t.Errorf("key length %d, want 32", len(ka))
	}
}

func TestDHFreshKeysDiffer(t *testing.T) {
	// The anti-replay property depends on every patch getting a new
	// key: two independent exchanges must not produce the same secret.
	rng := newDetRand(2)
	peer, _ := GenerateKeyPair(rng)
	k1p, _ := GenerateKeyPair(rng)
	k2p, _ := GenerateKeyPair(rng)
	k1, _ := k1p.SharedSecret(peer.PublicBytes())
	k2, _ := k2p.SharedSecret(peer.PublicBytes())
	if bytes.Equal(k1, k2) {
		t.Error("two ephemeral exchanges yielded the same key")
	}
}

func TestDHRejectsDegenerateKeys(t *testing.T) {
	kp, _ := GenerateKeyPair(newDetRand(3))
	width := len(kp.PublicBytes())
	cases := map[string][]byte{
		"zero": make([]byte, width),
		"one":  append(make([]byte, width-1), 1),
		"huge": bytes.Repeat([]byte{0xFF}, width+8),
	}
	for name, pub := range cases {
		if _, err := kp.SharedSecret(pub); err == nil {
			t.Errorf("%s public key accepted", name)
		}
	}
}

func TestDHPublicBytesFixedWidth(t *testing.T) {
	for i := int64(0); i < 5; i++ {
		kp, _ := GenerateKeyPair(newDetRand(i + 10))
		if len(kp.PublicBytes()) != 256 {
			t.Fatalf("public key width %d, want 256", len(kp.PublicBytes()))
		}
	}
}

func TestSessionRoundTrip(t *testing.T) {
	key := make([]byte, 32)
	s, err := NewSession(key, newDetRand(4))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("patch payload bytes")
	ct, err := s.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(msg)+Overhead {
		t.Errorf("ciphertext length %d, want %d", len(ct), len(msg)+Overhead)
	}
	if bytes.Contains(ct, msg) {
		t.Error("ciphertext contains plaintext")
	}
	pt, err := s.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("round trip mismatch")
	}
}

func TestSessionNoncesUnique(t *testing.T) {
	s, _ := NewSession(make([]byte, 32), newDetRand(5))
	c1, _ := s.Encrypt([]byte("same message"))
	c2, _ := s.Encrypt([]byte("same message"))
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions identical — nonce reuse")
	}
}

func TestSessionErrors(t *testing.T) {
	if _, err := NewSession(make([]byte, 16), nil); err == nil {
		t.Error("short key accepted")
	}
	s, _ := NewSession(make([]byte, 32), newDetRand(6))
	if _, err := s.Decrypt([]byte{1, 2, 3}); err == nil {
		t.Error("truncated ciphertext accepted")
	}
}

// Property: decrypt(encrypt(m)) == m for arbitrary payloads, across
// independently derived (but matching) DH session keys.
func TestQuickEndToEndChannel(t *testing.T) {
	rng := newDetRand(7)
	f := func(msg []byte) bool {
		a, err := GenerateKeyPair(rng)
		if err != nil {
			return false
		}
		b, err := GenerateKeyPair(rng)
		if err != nil {
			return false
		}
		ka, _ := a.SharedSecret(b.PublicBytes())
		kb, _ := b.SharedSecret(a.PublicBytes())
		sa, err := NewSession(ka, rng)
		if err != nil {
			return false
		}
		sb, err := NewSession(kb, rng)
		if err != nil {
			return false
		}
		ct, err := sa.Encrypt(msg)
		if err != nil {
			return false
		}
		pt, err := sb.Decrypt(ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSumAlgorithms(t *testing.T) {
	data := []byte("verify me")
	sha, err := Sum(HashSHA256, data)
	if err != nil {
		t.Fatal(err)
	}
	sdbm, err := Sum(HashSDBM, data)
	if err != nil {
		t.Fatal(err)
	}
	if sha == sdbm {
		t.Error("different algorithms produced the same digest")
	}
	if _, err := Sum(HashAlg(99), data); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Deterministic.
	sha2, _ := Sum(HashSHA256, data)
	if sha != sha2 {
		t.Error("sum not deterministic")
	}
}

func TestSumDetectsCorruption(t *testing.T) {
	data := bytes.Repeat([]byte("abc123"), 100)
	for _, alg := range []HashAlg{HashSHA256, HashSDBM} {
		orig, _ := Sum(alg, data)
		for i := 0; i < len(data); i += 97 {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x01
			got, _ := Sum(alg, mut)
			if got == orig {
				t.Errorf("%v: single-bit flip at %d undetected", alg, i)
			}
		}
	}
}

func TestSDBMKnownBehaviour(t *testing.T) {
	if SDBM(nil) != 0 {
		t.Error("SDBM(nil) != 0")
	}
	if SDBM([]byte("a")) == SDBM([]byte("b")) {
		t.Error("trivial SDBM collision")
	}
}

func TestHashAlgString(t *testing.T) {
	if HashSHA256.String() != "sha256" || HashSDBM.String() != "sdbm" {
		t.Error("HashAlg.String wrong")
	}
	if HashAlg(42).String() == "" {
		t.Error("unknown HashAlg empty string")
	}
}

func TestGenerateKeyPairDefaultEntropy(t *testing.T) {
	kp, err := GenerateKeyPair(nil) // crypto/rand
	if err != nil {
		t.Fatal(err)
	}
	if len(kp.PublicBytes()) != 256 {
		t.Error("default-entropy keypair malformed")
	}
}

func TestMACRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	data := []byte("status record")
	mac := MAC(key, data)
	if !VerifyMAC(key, data, mac) {
		t.Fatal("valid MAC rejected")
	}
	// Any perturbation must fail: data, key, or the MAC itself.
	if VerifyMAC(key, []byte("status recorD"), mac) {
		t.Error("modified data accepted")
	}
	other := MAC([]byte("ffffffffffffffffffffffffffffffff"), data)
	if VerifyMAC(key, data, other) {
		t.Error("MAC under wrong key accepted")
	}
	mut := mac
	mut[0] ^= 1
	if VerifyMAC(key, data, mut) {
		t.Error("bit-flipped MAC accepted")
	}
}

func TestMACDistinctInputsDistinctTags(t *testing.T) {
	key := make([]byte, 32)
	seen := map[[DigestSize]byte]bool{}
	for i := 0; i < 64; i++ {
		m := MAC(key, []byte{byte(i)})
		if seen[m] {
			t.Fatalf("tag collision at %d", i)
		}
		seen[m] = true
	}
}
