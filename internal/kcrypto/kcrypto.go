// Package kcrypto implements the cryptographic primitives KShot uses
// between its trusted components: finite-field Diffie-Hellman key
// agreement for the SGX↔SMM shared-memory channel (§V-B/§V-C), an
// AES-CTR session cipher for patch package transport, SHA-256 payload
// verification, and the cheaper SDBM hash the paper suggests as an
// alternative verification function (§VI-C2).
//
// The DH private key on the SMM side is regenerated before every
// kernel patch, which is KShot's defense against replay of previously
// captured patch packages.
package kcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
)

// modp2048 is the RFC 3526 group 14 prime (2048-bit MODP), the
// standard choice for classic finite-field Diffie-Hellman.
const modp2048Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

var (
	dhPrime = mustHexBig(modp2048Hex)
	dhGen   = big.NewInt(2)
	// dhPrivBits keeps exponent arithmetic fast while retaining the
	// standard >= 2x security-level margin.
	dhPrivBytes = 32
)

func mustHexBig(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("kcrypto: bad prime constant")
	}
	return v
}

// KeyPair is one side's ephemeral Diffie-Hellman key pair.
type KeyPair struct {
	priv *big.Int
	pub  *big.Int
}

// GenerateKeyPair creates an ephemeral DH key pair using entropy from
// r (crypto/rand.Reader in production; a deterministic reader in
// tests).
func GenerateKeyPair(r io.Reader) (*KeyPair, error) {
	if r == nil {
		r = rand.Reader
	}
	buf := make([]byte, dhPrivBytes)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("dh keygen: %w", err)
	}
	priv := new(big.Int).SetBytes(buf)
	// Guard against degenerate exponents.
	if priv.Sign() == 0 {
		priv.SetInt64(2)
	}
	pub := new(big.Int).Exp(dhGen, priv, dhPrime)
	return &KeyPair{priv: priv, pub: pub}, nil
}

// PublicBytes returns the public key as a fixed-width big-endian blob
// suitable for writing into the mem_RW exchange area.
func (kp *KeyPair) PublicBytes() []byte {
	return kp.pub.FillBytes(make([]byte, dhPrime.BitLen()/8))
}

// SharedSecret derives the 32-byte session key from the peer's public
// key blob: SHA-256(g^ab mod p).
func (kp *KeyPair) SharedSecret(peerPub []byte) ([]byte, error) {
	peer := new(big.Int).SetBytes(peerPub)
	if peer.Sign() <= 0 || peer.Cmp(dhPrime) >= 0 {
		return nil, fmt.Errorf("dh: peer public key out of range")
	}
	// Reject the degenerate subgroup elements 1 and p-1.
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(dhPrime, one)
	if peer.Cmp(one) == 0 || peer.Cmp(pm1) == 0 {
		return nil, fmt.Errorf("dh: degenerate peer public key")
	}
	shared := new(big.Int).Exp(peer, kp.priv, dhPrime)
	sum := sha256.Sum256(shared.FillBytes(make([]byte, dhPrime.BitLen()/8)))
	return sum[:], nil
}

// Session is a symmetric transport cipher derived from a DH shared
// secret. Each encryption uses a fresh random nonce carried with the
// ciphertext.
type Session struct {
	block cipher.Block
	rng   io.Reader
}

// NewSession builds a session cipher from a 32-byte key.
func NewSession(key []byte, rng io.Reader) (*Session, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("session: key must be 32 bytes, got %d", len(key))
	}
	if rng == nil {
		rng = rand.Reader
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return &Session{block: block, rng: rng}, nil
}

// nonceSize is the AES-CTR IV length prefixed to every ciphertext.
const nonceSize = aes.BlockSize

// Encrypt returns nonce || AES-CTR(plaintext).
func (s *Session) Encrypt(plaintext []byte) ([]byte, error) {
	out := make([]byte, nonceSize+len(plaintext))
	if _, err := io.ReadFull(s.rng, out[:nonceSize]); err != nil {
		return nil, fmt.Errorf("session encrypt: %w", err)
	}
	cipher.NewCTR(s.block, out[:nonceSize]).XORKeyStream(out[nonceSize:], plaintext)
	return out, nil
}

// Decrypt reverses Encrypt.
func (s *Session) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < nonceSize {
		return nil, fmt.Errorf("session decrypt: ciphertext too short (%d bytes)", len(ciphertext))
	}
	out := make([]byte, len(ciphertext)-nonceSize)
	cipher.NewCTR(s.block, ciphertext[:nonceSize]).XORKeyStream(out, ciphertext[nonceSize:])
	return out, nil
}

// Overhead is the ciphertext expansion of Session.Encrypt.
const Overhead = nonceSize

// HashAlg selects the payload verification hash.
type HashAlg int

// Verification hash algorithms. SHA-256 is the paper's default; SDBM
// is the cheaper alternative it proposes for reducing SMM verification
// time.
const (
	HashSHA256 HashAlg = iota + 1
	HashSDBM
)

// String returns the algorithm name.
func (h HashAlg) String() string {
	switch h {
	case HashSHA256:
		return "sha256"
	case HashSDBM:
		return "sdbm"
	default:
		return fmt.Sprintf("hash(%d)", int(h))
	}
}

// DigestSize is the byte length of Sum's output for any algorithm
// (SDBM digests are zero-padded to the same width so package headers
// have a fixed layout).
const DigestSize = sha256.Size

// Sum computes the selected digest of data.
func Sum(alg HashAlg, data []byte) ([DigestSize]byte, error) {
	switch alg {
	case HashSHA256:
		return sha256.Sum256(data), nil
	case HashSDBM:
		var out [DigestSize]byte
		h := SDBM(data)
		for i := 0; i < 8; i++ {
			out[i] = byte(h >> (8 * i))
		}
		return out, nil
	default:
		return [DigestSize]byte{}, fmt.Errorf("sum: unknown hash algorithm %d", int(alg))
	}
}

// MAC computes HMAC-SHA256(key, data) — used to authenticate the SMM
// status mailbox so a kernel-level attacker cannot forge deployment
// confirmations toward the remote server.
func MAC(key, data []byte) [DigestSize]byte {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	var out [DigestSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// VerifyMAC reports whether mac is a valid HMAC-SHA256 of data under
// key, in constant time.
func VerifyMAC(key, data []byte, mac [DigestSize]byte) bool {
	want := MAC(key, data)
	return hmac.Equal(want[:], mac[:])
}

// DeriveKey derives a 32-byte subkey from root and the given context
// parts via HMAC-SHA256 (a one-block HKDF-expand). Parts are
// length-prefixed, so distinct part boundaries can never collide. It
// is the ratchet primitive of the derived-session channel used by
// template forks: both endpoints hold the fork's session root and mix
// in the fresh per-package nonces each side publishes through mem_RW,
// replacing the per-package DH exponentiation with one MAC while
// keeping the same publish/consume dataflow.
func DeriveKey(root []byte, parts ...[]byte) []byte {
	h := hmac.New(sha256.New, root)
	var lp [8]byte
	for _, p := range parts {
		for i := range lp {
			lp[i] = byte(uint64(len(p)) >> (8 * (7 - i)))
		}
		h.Write(lp[:])
		h.Write(p)
	}
	return h.Sum(nil)
}

// SDBM computes the classic SDBM string hash over data, extended to
// 64 bits. It is fast and adequate for detecting accidental
// corruption, but offers no cryptographic collision resistance — the
// tradeoff the paper's §VI-C2 remark contemplates.
func SDBM(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h = uint64(b) + (h << 6) + (h << 16) - h
	}
	return h
}
