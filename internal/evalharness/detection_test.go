package evalharness

import (
	"testing"
	"time"
)

// TestDetectionBenchSmoke runs the detection-latency experiment with
// tiny parameters: every injected tamper must be detected, latencies
// must be positive and ordered sanely against the sweep period, and
// the workload throughput columns must be populated.
func TestDetectionBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots several systems")
	}
	res, err := RunDetectionBench(4, []time.Duration{500 * time.Microsecond, 2 * time.Millisecond}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CVE == "" || len(res.Periods) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, p := range res.Periods {
		if p.Trials != 4 {
			t.Errorf("period %v: trials = %d, want 4", p.Period, p.Trials)
		}
		if p.P50 <= 0 || p.P99 < p.P50 || p.Mean <= 0 {
			t.Errorf("period %v: degenerate latency distribution p50=%v p99=%v mean=%v",
				p.Period, p.P50, p.P99, p.Mean)
		}
		if p.Sweeps == 0 {
			t.Errorf("period %v: no background sweeps recorded", p.Period)
		}
	}
	if res.BaselineOpsPerSec <= 0 || res.EnabledOpsPerSec <= 0 {
		t.Errorf("workload columns empty: baseline=%f enabled=%f",
			res.BaselineOpsPerSec, res.EnabledOpsPerSec)
	}
}
