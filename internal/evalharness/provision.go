package evalharness

import (
	"context"
	"fmt"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/patchserver"
)

// Provisioning-throughput experiment: how fast can targets for one
// kernel configuration be stood up, cold-booting each one (kernel
// build + machine boot + SMM lock + eager server registration) versus
// COW-forking a booted template (per-fork SMM secrets + SMRAM lock,
// server attach deferred)? The ratio is the template-fork payoff; the
// resident-byte split shows the marginal memory cost of a fork.

// ProvisionBenchResult reports cold versus forked provisioning rates.
type ProvisionBenchResult struct {
	ColdBoots int `json:"cold_boots"`
	Forks     int `json:"forks"`

	ColdMean time.Duration `json:"cold_mean_ns"`
	ForkMean time.Duration `json:"fork_mean_ns"`

	ColdPerSec float64 `json:"cold_per_sec"`
	ForkPerSec float64 `json:"fork_per_sec"`
	Speedup    float64 `json:"speedup"`

	// TemplateBoot is the one-time template construction cost the
	// forks amortize.
	TemplateBoot time.Duration `json:"template_boot_ns"`

	// SharedBytes/PrivateBytes are one fork's resident split right
	// after provisioning: shared frames cost nothing marginal, private
	// ones are the fork's true footprint.
	SharedBytes  uint64 `json:"shared_bytes"`
	PrivateBytes uint64 `json:"private_bytes"`
}

func closeAll(systems []*core.System) {
	for _, s := range systems {
		s.Close()
	}
}

// RunProvisionBench provisions cold cold-booted Systems and forks
// forked ones from a single template, measuring both rates against
// one shared patch server and the benchmark CVE configuration.
func RunProvisionBench(cold, forked int) (*ProvisionBenchResult, error) {
	if cold < 1 {
		cold = 3
	}
	if forked < 1 {
		forked = 50
	}
	e, ok := cvebench.Get("CVE-2014-0196")
	if !ok {
		return nil, fmt.Errorf("provision bench: benchmark CVE missing")
	}
	srv, err := patchserver.New(patchserver.WithTreeProvider(cvebench.TreeProviderFor(e)))
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	srv.RegisterPatch(e.SourcePatch())

	opts := core.Options{
		Version:    "4.4",
		ExtraFiles: map[string]string{e.File: e.Vuln},
		ServerAddr: srv.Addr(),
	}
	ctx := context.Background()

	// Both timed loops measure provisioning only: the systems are held
	// until the clock stops and closed outside the window, so teardown
	// cost never pollutes the rate.
	coldSystems := make([]*core.System, 0, cold)
	coldStart := time.Now()
	for i := 0; i < cold; i++ {
		sys, err := core.NewSystemCtx(ctx, opts)
		if err != nil {
			closeAll(coldSystems)
			return nil, fmt.Errorf("cold boot %d: %w", i, err)
		}
		coldSystems = append(coldSystems, sys)
	}
	coldWall := time.Since(coldStart)
	closeAll(coldSystems)

	tplStart := time.Now()
	tpl, err := core.NewTemplate(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer tpl.Close()
	tplWall := time.Since(tplStart)

	out := &ProvisionBenchResult{
		ColdBoots:    cold,
		Forks:        forked,
		TemplateBoot: tplWall,
	}
	forkSystems := make([]*core.System, 0, forked)
	forkStart := time.Now()
	for i := 0; i < forked; i++ {
		sys, err := tpl.Fork(ctx, opts)
		if err != nil {
			closeAll(forkSystems)
			return nil, fmt.Errorf("fork %d: %w", i, err)
		}
		forkSystems = append(forkSystems, sys)
	}
	forkWall := time.Since(forkStart)
	st := forkSystems[0].Machine.Mem.ResidentStats()
	out.SharedBytes, out.PrivateBytes = st.SharedBytes, st.PrivateBytes
	closeAll(forkSystems)

	out.ColdMean = coldWall / time.Duration(cold)
	out.ForkMean = forkWall / time.Duration(forked)
	if coldWall > 0 {
		out.ColdPerSec = float64(cold) / coldWall.Seconds()
	}
	if forkWall > 0 {
		out.ForkPerSec = float64(forked) / forkWall.Seconds()
	}
	if out.ForkMean > 0 {
		out.Speedup = float64(out.ColdMean) / float64(out.ForkMean)
	}
	return out, nil
}
