// Package evalharness regenerates every table and figure of the
// paper's evaluation (§VI) on the simulated platform:
//
//	Table I    — the 30-CVE benchmark suite
//	Table II   — SGX-side stage breakdown across patch sizes
//	Table III  — SMM-side stage breakdown across patch sizes
//	Figure 4   — SGX preparation time for six CVEs
//	Figure 5   — SMM patching time for six CVEs
//	Table IV   — general patching-system comparison
//	Table V    — kernel live patching comparison
//	RQ1        — correct patching of all 30 CVEs (exploit before/after)
//	§VI-C3     — Sysbench-style whole-system overhead
//
// It is shared by the root bench_test.go (which reports the same
// numbers as testing.B metrics) and by cmd/kshot-bench (which prints
// the tables and writes EXPERIMENTS-style output).
package evalharness

import (
	"context"
	"fmt"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/patchserver"
	"kshot/internal/report"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/smm"
	"kshot/internal/smmpatch"
	"kshot/internal/timing"
)

// PaperSizes are the patch sizes of Tables II and III.
var PaperSizes = []int{40, 400, 4 << 10, 40 << 10, 400 << 10, 10 << 20}

// SizePoint is one row of the size sweep: per-stage virtual times for
// a patch of Size payload bytes.
type SizePoint struct {
	Size int

	// SGX side (Table II).
	Fetch      time.Duration
	Preprocess time.Duration
	Pass       time.Duration

	// SMM side (Table III).
	KeyGen  time.Duration
	Decrypt time.Duration
	Verify  time.Duration
	Apply   time.Duration
	Switch  time.Duration
}

// SGXTotal is Table II's Total column.
func (p SizePoint) SGXTotal() time.Duration { return p.Fetch + p.Preprocess + p.Pass }

// SMMTotal is Table III's Total column (key generation and switching
// included, as the paper's footnote states).
func (p SizePoint) SMMTotal() time.Duration {
	return p.KeyGen + p.Decrypt + p.Verify + p.Apply + p.Switch
}

// sizeRig is a minimal platform for the size sweep: no kernel, no TCP
// — a synthetic new-function payload driven through the real enclave
// preparation and the real SMM processing path.
type sizeRig struct {
	m       *machine.Machine
	res     *mem.Reserved
	ctrl    *smm.Controller
	handler *smmpatch.Handler
	enclave *sgx.Enclave
	prog    *sgxprep.Program
	server  *kcrypto.Session
	clock   *timing.Clock
	model   timing.Model
}

const rigVersion = "4.4"

func newSizeRig(maxPayload int, alg kcrypto.HashAlg) (*sizeRig, error) {
	layout := mem.DefaultReservedLayout()
	physSize := uint64(machine.DefaultPhysSize)
	if n := uint64(maxPayload); n+(1<<20) > layout.WSize || n+(1<<20) > layout.XSize {
		// The paper's default 18 MB split cannot stage AND place the
		// 10 MB row; enlarge the reservation for this experiment (a
		// reproduction finding recorded in EXPERIMENTS.md).
		layout = mem.ReservedLayout{
			RWSize: mem.MemRWSize,
			WSize:  n + (2 << 20),
			XSize:  n + (2 << 20),
		}
	}
	m, err := machine.New(machine.Config{NumVCPUs: 1, PhysSize: physSize})
	if err != nil {
		return nil, err
	}
	res, err := mem.MapReservedLayout(m.Mem, kernel.ReservedBase, layout)
	if err != nil {
		m.Stop()
		return nil, err
	}
	clock := &timing.Clock{}
	model := timing.Calibrated()
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, clock, model)
	if err != nil {
		m.Stop()
		return nil, err
	}
	handler, err := smmpatch.New(smmpatch.Config{Reserved: res, KernelVersion: rigVersion})
	if err != nil {
		m.Stop()
		return nil, err
	}
	if err := handler.Register(ctrl); err != nil {
		m.Stop()
		return nil, err
	}
	if err := ctrl.Lock(); err != nil {
		m.Stop()
		return nil, err
	}

	serverKey := make([]byte, 32)
	for i := range serverKey {
		serverKey[i] = byte(i * 7)
	}
	serverSess, err := kcrypto.NewSession(serverKey, nil)
	if err != nil {
		m.Stop()
		return nil, err
	}
	prog, err := sgxprep.New(sgxprep.Config{
		ServerKey:     serverKey,
		KernelVersion: rigVersion,
		Placement:     handler.Placement(),
		HashAlg:       alg,
		Clock:         clock,
		Model:         model,
	})
	if err != nil {
		m.Stop()
		return nil, err
	}
	plat, err := sgx.NewPlatform(m.Mem, kernel.EPCBase, kernel.EPCSize)
	if err != nil {
		m.Stop()
		return nil, err
	}
	enclave, err := plat.Load(prog, sgxprep.EnclavePages)
	if err != nil {
		m.Stop()
		return nil, err
	}
	if err := ctrl.Trigger(smmpatch.CmdKeyExchange, 0); err != nil {
		m.Stop()
		return nil, err
	}
	return &sizeRig{
		m: m, res: res, ctrl: ctrl, handler: handler,
		enclave: enclave, prog: prog, server: serverSess,
		clock: clock, model: model,
	}, nil
}

func (r *sizeRig) close() { r.m.Stop() }

// syntheticBlob builds the server's encrypted blob for a patch whose
// single new function has exactly n payload bytes (a nop sled ending
// in ret — valid, executable code).
func (r *sizeRig) syntheticBlob(id string, n int) ([]byte, error) {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = 0x90 // nop
	}
	payload[n-1] = 0xC3 // ret
	bp := &patch.BinaryPatch{
		ID:            id,
		KernelVersion: rigVersion,
		Funcs: []patch.FuncPatch{{
			Name:    "bench_payload",
			Type:    patch.Type1,
			New:     true,
			Payload: payload,
		}},
	}
	plain, err := sgxprep.EncodeArgs(bp)
	if err != nil {
		return nil, err
	}
	return r.server.Encrypt(plain)
}

// roundTrip performs one full patch (and rollback, so the rig is
// reusable) and returns the per-stage virtual times.
func (r *sizeRig) roundTrip(id string, n int) (SizePoint, error) {
	pt := SizePoint{Size: n}
	blob, err := r.syntheticBlob(id, n)
	if err != nil {
		return pt, err
	}
	// Fetch (network transfer of the blob).
	pt.Fetch = r.clock.Span(func() {
		r.clock.Advance(timing.Linear(r.model.FetchFixed, r.model.FetchPerByte, len(blob)))
	})

	// Enclave preprocessing.
	smmPub, err := smmpatch.ReadSMMPub(r.m.Mem, mem.PrivKernel, r.res)
	if err != nil {
		return pt, err
	}
	memX, data := r.handler.Cursors()
	args, err := sgxprep.EncodeArgs(sgxprep.PrepareArgs{
		ServerBlob: blob, SMMPub: smmPub, MemXCursor: memX, DataCursor: data,
	})
	if err != nil {
		return pt, err
	}
	out, err := r.enclave.ECall(sgxprep.FnPrepare, args)
	if err != nil {
		return pt, err
	}
	res, err := sgxprep.DecodeResult(out)
	if err != nil {
		return pt, err
	}
	pt.Preprocess = r.prog.LastBreakdown().Preprocess

	// Pass (stage ciphertext into the reserved region).
	pt.Pass = r.clock.Span(func() {
		r.clock.Advance(timing.Linear(r.model.PassFixed, r.model.PassPerByte, len(res.Ciphertext)))
	})
	if err := smmpatch.StageBlob(r.m.Mem, mem.PrivKernel, smmpatch.EnclavePubAddr(r.res), res.EnclavePub); err != nil {
		return pt, err
	}
	if err := smmpatch.StageBlob(r.m.Mem, mem.PrivKernel, smmpatch.PackageAddr(r.res), res.Ciphertext); err != nil {
		return pt, err
	}

	// SMM processing.
	if err := r.ctrl.Trigger(smmpatch.CmdProcessPackage, 0); err != nil {
		return pt, err
	}
	bd := r.handler.LastBreakdown()
	pt.KeyGen = bd.KeyGen
	pt.Decrypt = bd.Decrypt
	pt.Verify = bd.Verify
	pt.Apply = bd.Apply
	pt.Switch = r.model.SMMEntry + r.model.SMMExit

	// Roll back so the next iteration reuses the same mem_X space.
	if err := r.rollback(id); err != nil {
		return pt, err
	}
	return pt, nil
}

func (r *sizeRig) rollback(id string) error {
	smmPub, err := smmpatch.ReadSMMPub(r.m.Mem, mem.PrivKernel, r.res)
	if err != nil {
		return err
	}
	args, err := sgxprep.EncodeArgs(sgxprep.RollbackArgs{ID: id, SMMPub: smmPub})
	if err != nil {
		return err
	}
	out, err := r.enclave.ECall(sgxprep.FnPrepareRollback, args)
	if err != nil {
		return err
	}
	res, err := sgxprep.DecodeResult(out)
	if err != nil {
		return err
	}
	if err := smmpatch.StageBlob(r.m.Mem, mem.PrivKernel, smmpatch.EnclavePubAddr(r.res), res.EnclavePub); err != nil {
		return err
	}
	if err := smmpatch.StageBlob(r.m.Mem, mem.PrivKernel, smmpatch.PackageAddr(r.res), res.Ciphertext); err != nil {
		return err
	}
	return r.ctrl.Trigger(smmpatch.CmdProcessPackage, 0)
}

// RunSizePoint measures one size with `iters` repetitions, averaged.
func RunSizePoint(size, iters int, alg kcrypto.HashAlg) (SizePoint, error) {
	rig, err := newSizeRig(size, alg)
	if err != nil {
		return SizePoint{}, err
	}
	defer rig.close()
	var acc SizePoint
	for i := 0; i < iters; i++ {
		pt, err := rig.roundTrip(fmt.Sprintf("BENCH-%d", size), size)
		if err != nil {
			return SizePoint{}, fmt.Errorf("size %d iter %d: %w", size, i, err)
		}
		acc = addPoints(acc, pt)
	}
	return scalePoint(acc, iters), nil
}

// RunSizeSweep measures every paper size.
func RunSizeSweep(iters int, alg kcrypto.HashAlg) ([]SizePoint, error) {
	out := make([]SizePoint, 0, len(PaperSizes))
	for _, size := range PaperSizes {
		pt, err := RunSizePoint(size, iters, alg)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func addPoints(a, b SizePoint) SizePoint {
	return SizePoint{
		Size:       b.Size,
		Fetch:      a.Fetch + b.Fetch,
		Preprocess: a.Preprocess + b.Preprocess,
		Pass:       a.Pass + b.Pass,
		KeyGen:     a.KeyGen + b.KeyGen,
		Decrypt:    a.Decrypt + b.Decrypt,
		Verify:     a.Verify + b.Verify,
		Apply:      a.Apply + b.Apply,
		Switch:     a.Switch + b.Switch,
	}
}

func scalePoint(a SizePoint, n int) SizePoint {
	d := time.Duration(n)
	return SizePoint{
		Size:       a.Size,
		Fetch:      a.Fetch / d,
		Preprocess: a.Preprocess / d,
		Pass:       a.Pass / d,
		KeyGen:     a.KeyGen / d,
		Decrypt:    a.Decrypt / d,
		Verify:     a.Verify / d,
		Apply:      a.Apply / d,
		Switch:     a.Switch / d,
	}
}

// Table2 renders the SGX operation breakdown (paper Table II).
func Table2(points []SizePoint, iters int) *report.Table {
	t := report.NewTable("TABLE II: Breakdown of SGX operations (us)",
		"Patch Size", "Fetching", "Pre-processing", "Passing", "Total")
	for _, p := range points {
		t.AddRow(report.Bytes(p.Size), report.Us(p.Fetch), report.Us(p.Preprocess),
			report.Us(p.Pass), report.Us(p.SGXTotal()))
	}
	t.AddNote(fmt.Sprintf("n = %d; virtual time, cost model calibrated to the paper's testbed", iters))
	return t
}

// Table3 renders the SMM operation breakdown (paper Table III).
func Table3(points []SizePoint, iters int) *report.Table {
	t := report.NewTable("TABLE III: Breakdown of SMM operations (us)",
		"Patch Size", "Data Decryption", "Patch Verification", "Patch Application", "Total*")
	for _, p := range points {
		t.AddRow(report.Bytes(p.Size), report.Us(p.Decrypt), report.Us(p.Verify),
			report.Us(p.Apply), report.Us(p.SMMTotal()))
	}
	t.AddNote("* includes key generation and SMM switching time")
	t.AddNote(fmt.Sprintf("n = %d; virtual time, cost model calibrated to the paper's testbed", iters))
	return t
}

// Deployment is a server+system pair for whole-system experiments.
type Deployment struct {
	Server  *patchserver.Server
	System  *core.System
	Entries []*cvebench.Entry
}

// NewDeployment provisions a system vulnerable to the given CVEs, with
// a patch server that can fix them.
func NewDeployment(version string, numVCPUs int, alg kcrypto.HashAlg, entries ...*cvebench.Entry) (*Deployment, error) {
	return NewDeploymentDispatch(version, numVCPUs, alg, isa.DispatchBlocks, entries...)
}

// NewDeploymentDispatch is NewDeployment with an explicit vCPU
// execution engine — the oracle interpreter for baseline benchmarks,
// lockstep for the differential verification suites.
func NewDeploymentDispatch(version string, numVCPUs int, alg kcrypto.HashAlg, d isa.Dispatch, entries ...*cvebench.Entry) (*Deployment, error) {
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entries...))
	if err != nil {
		return nil, err
	}
	extra := make(map[string]string, len(entries))
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
		extra[e.File] = e.Vuln
	}
	sys, err := core.NewSystem(core.Options{
		Version:    version,
		NumVCPUs:   numVCPUs,
		Dispatch:   d,
		ExtraFiles: extra,
		ServerAddr: srv.Addr(),
		HashAlg:    alg,
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &Deployment{Server: srv, System: sys, Entries: entries}, nil
}

// Close releases the deployment.
func (d *Deployment) Close() {
	d.System.Close()
	d.Server.Close()
}

// CVEPoint is one x-axis entry of Figures 4/5.
type CVEPoint struct {
	CVE    string
	Bytes  int
	Stages core.StageTimes
}

// RunFigureCVEOnce measures one CVE with `iters` apply+rollback
// cycles, averaged.
func RunFigureCVEOnce(cve string, iters int) (CVEPoint, error) {
	e, ok := cvebench.Get(cve)
	if !ok {
		return CVEPoint{}, fmt.Errorf("unknown CVE %q", cve)
	}
	d, err := NewDeployment("4.4", 1, kcrypto.HashSHA256, e)
	if err != nil {
		return CVEPoint{}, fmt.Errorf("%s: %w", e.CVE, err)
	}
	defer d.Close()
	var acc core.StageTimes
	bytes := 0
	for i := 0; i < iters; i++ {
		rep, err := d.System.Apply(context.Background(), e.CVE)
		if err != nil {
			return CVEPoint{}, fmt.Errorf("%s apply: %w", e.CVE, err)
		}
		if _, err := d.System.Rollback(context.Background(), e.CVE); err != nil {
			return CVEPoint{}, fmt.Errorf("%s rollback: %w", e.CVE, err)
		}
		st := rep.Stages
		acc.Fetch += st.Fetch
		acc.Preprocess += st.Preprocess
		acc.Pass += st.Pass
		acc.KeyGen += st.KeyGen
		acc.Decrypt += st.Decrypt
		acc.Verify += st.Verify
		acc.Apply += st.Apply
		acc.Switch += st.Switch
		bytes = st.PayloadBytes
	}
	n := time.Duration(iters)
	return CVEPoint{
		CVE:   e.CVE,
		Bytes: bytes,
		Stages: core.StageTimes{
			Fetch: acc.Fetch / n, Preprocess: acc.Preprocess / n, Pass: acc.Pass / n,
			KeyGen: acc.KeyGen / n, Decrypt: acc.Decrypt / n, Verify: acc.Verify / n,
			Apply: acc.Apply / n, Switch: acc.Switch / n,
			PayloadBytes: bytes,
		},
	}, nil
}

// RunFigureCVEs measures the six whole-system CVEs of §VI-C3,
// averaging `iters` apply+rollback cycles each.
func RunFigureCVEs(iters int) ([]CVEPoint, error) {
	var out []CVEPoint
	for _, e := range cvebench.FigureSix() {
		pt, err := RunFigureCVEOnce(e.CVE, iters)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Figure4 renders the SGX-side per-CVE breakdown (paper Figure 4).
func Figure4(points []CVEPoint) *report.Figure {
	f := &report.Figure{Title: "Fig. 4: SGX-based patch preparation time (us)"}
	series := []report.FigureSeries{
		{Name: "fetching"}, {Name: "pre-processing"}, {Name: "passing"},
	}
	for _, p := range points {
		f.XLabel = append(f.XLabel, fmt.Sprintf("%s (%s)", p.CVE, report.Bytes(p.Bytes)))
		series[0].Y = append(series[0].Y, us(p.Stages.Fetch))
		series[1].Y = append(series[1].Y, us(p.Stages.Preprocess))
		series[2].Y = append(series[2].Y, us(p.Stages.Pass))
	}
	f.Series = series
	return f
}

// Figure5 renders the SMM-side per-CVE breakdown (paper Figure 5).
func Figure5(points []CVEPoint) *report.Figure {
	f := &report.Figure{Title: "Fig. 5: SMM-based live patching time (us)"}
	series := []report.FigureSeries{
		{Name: "switch"}, {Name: "key gen"}, {Name: "decrypt"},
		{Name: "verify"}, {Name: "apply"},
	}
	for _, p := range points {
		f.XLabel = append(f.XLabel, fmt.Sprintf("%s (%s)", p.CVE, report.Bytes(p.Bytes)))
		series[0].Y = append(series[0].Y, us(p.Stages.Switch))
		series[1].Y = append(series[1].Y, us(p.Stages.KeyGen))
		series[2].Y = append(series[2].Y, us(p.Stages.Decrypt))
		series[3].Y = append(series[3].Y, us(p.Stages.Verify))
		series[4].Y = append(series[4].Y, us(p.Stages.Apply))
	}
	f.Series = series
	return f
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
