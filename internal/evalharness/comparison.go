package evalharness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kshot/internal/baseline"
	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/patch"
	"kshot/internal/report"
	"kshot/internal/workload"
)

// Table1 renders the benchmark suite (paper Table I), with measured
// binary payload sizes next to the paper's source LoC column.
func Table1() (*report.Table, error) {
	t := report.NewTable("TABLE I: Types and sizes of indicative kernel security vulnerability patches",
		"CVE Number", "Affected Functions", "Size (LoC)", "Type", "Payload")
	for _, e := range cvebench.All() {
		bp, err := buildEntryPatch(e)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.CVE, err)
		}
		t.AddRow(e.CVE, strings.Join(e.Functions, ", "),
			fmt.Sprintf("%d", e.SizeLoC), e.TypesString(), report.Bytes(bp.PayloadBytes()))
	}
	t.AddNote("Payload column: measured binary patch size on the simulated kernel (4.4 build)")
	return t, nil
}

// buildEntryPatch builds the binary patch for one entry against the
// 4.4 kernel.
func buildEntryPatch(e *cvebench.Entry) (*patch.BinaryPatch, error) {
	pre, err := cvebench.VulnerableTree("4.4", e)
	if err != nil {
		return nil, err
	}
	preImg, preUnit, err := pre.Build()
	if err != nil {
		return nil, err
	}
	post := pre.Clone()
	if err := post.Apply(e.SourcePatch()); err != nil {
		return nil, err
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		return nil, err
	}
	return patch.Build(e.CVE, "4.4",
		patch.ImagePair{Img: preImg, Unit: preUnit},
		patch.ImagePair{Img: postImg, Unit: postUnit})
}

// ComparisonRow is one system of the Table V comparison.
type ComparisonRow struct {
	System      string
	Granularity string
	Pause       time.Duration
	Total       time.Duration
	MemoryBytes uint64
	TCB         string
	Trusted     bool // whether patching survives a compromised kernel
}

// RunTable5 measures all four systems applying the same CVE patch on
// identical machines. The CVE must be small enough for the
// instruction-level baseline (e.g. CVE-2014-4157).
func RunTable5(cve string) ([]ComparisonRow, error) {
	e, ok := cvebench.Get(cve)
	if !ok {
		return nil, fmt.Errorf("unknown CVE %q", cve)
	}
	var rows []ComparisonRow

	for _, p := range []baseline.Patcher{baseline.KUP{}, baseline.KARMA{}, baseline.Kpatch{}} {
		tgt, err := baseline.NewTarget("4.4", map[string]string{e.File: e.Vuln}, 2)
		if err != nil {
			return nil, err
		}
		res, err := p.Apply(tgt, e.SourcePatch())
		tgt.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name(), err)
		}
		rows = append(rows, ComparisonRow{
			System:      p.Name(),
			Granularity: p.Granularity(),
			Pause:       res.Pause,
			Total:       res.Total,
			MemoryBytes: res.MemoryBytes,
			TCB:         p.TCB(),
			Trusted:     !p.TrustsKernel(),
		})
	}

	// KShot.
	d, err := NewDeployment("4.4", 2, kcrypto.HashSHA256, e)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	rep, err := d.System.Apply(context.Background(), e.CVE)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ComparisonRow{
		System:      "KShot",
		Granularity: "function",
		Pause:       rep.Stages.SMMTotal(),
		Total:       rep.Stages.SGXTotal() + rep.Stages.SMMTotal(),
		MemoryBytes: d.System.Kernel.Res.RW.Size + d.System.Kernel.Res.W.Size + d.System.Kernel.Res.X.Size,
		TCB:         "SMM handler + SGX enclave",
		Trusted:     true,
	})
	return rows, nil
}

// Table5 renders the kernel live patching comparison (paper Table V).
func Table5(rows []ComparisonRow) *report.Table {
	t := report.NewTable("TABLE V: Comparison of kernel live patching systems",
		"System", "Granularity", "OS Pause", "Total Time", "Memory", "TCB", "Compromised-kernel safe")
	for _, r := range rows {
		t.AddRow(r.System, r.Granularity,
			report.Us(r.Pause)+"us", report.Us(r.Total)+"us",
			report.Bytes(int(r.MemoryBytes)), r.TCB, yesNo(r.Trusted))
	}
	t.AddNote("Memory: KShot reports its fixed 18MB reservation; KUP its checkpoint+image;")
	t.AddNote("kpatch/KARMA their module space. Times are virtual (calibrated cost model).")
	return t
}

// Table4 renders the general patching comparison (paper Table IV).
// Rows for systems we implement carry measured properties; rows for
// literature-only systems restate the paper's qualitative claims and
// are marked as such.
func Table4() *report.Table {
	t := report.NewTable("TABLE IV: Comparison with general binary patching approaches",
		"System", "Domain", "Runtime Memory", "OS-independent", "Handles app state", "Source")
	t.AddRow("Dyninst", "userspace binaries", "no", "no", "no", "literature")
	t.AddRow("EEL", "executable editing", "no", "no", "no", "literature")
	t.AddRow("Libcare", "userspace processes", "yes", "no", "per-process", "literature")
	t.AddRow("Kitsune", "dynamic software update", "yes", "no", "annotated points", "literature")
	t.AddRow("PROTEOS", "research OS components", "yes", "no", "annotated points", "literature")
	t.AddRow("kpatch", "kernel functions", "yes", "no (trusts kernel)", "stop_machine", "measured")
	t.AddRow("KUP", "whole kernel", "yes", "no (trusts kexec)", "checkpoint/restore", "measured")
	t.AddRow("KARMA", "kernel instructions", "yes", "no (trusts kernel)", "atomic rewrite", "measured")
	t.AddRow("KShot", "kernel functions", "yes", "yes (SMM+SGX TEEs)", "hardware save/restore", "measured")
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RQ1Row is one CVE of the RQ1 applicability run.
type RQ1Row struct {
	CVE            string
	Types          string
	PayloadBytes   int
	VulnBefore     bool
	VulnAfter      bool
	PauseVirtual   time.Duration
	KernelHealthy  bool // unrelated syscalls still behave after patching
	RollbackWorked bool
}

// Passed reports whether the row meets the paper's RQ1 criterion.
func (r RQ1Row) Passed() bool {
	return r.VulnBefore && !r.VulnAfter && r.KernelHealthy && r.RollbackWorked
}

// RunRQ1 live-patches every Table I CVE on a freshly provisioned
// system, checking the exploit before and after, kernel health, and
// rollback (§VI-B).
func RunRQ1(version string, progress func(row RQ1Row)) ([]RQ1Row, error) {
	var rows []RQ1Row
	for _, e := range cvebench.All() {
		row, err := runRQ1One(version, e)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.CVE, err)
		}
		if progress != nil {
			progress(row)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runRQ1One(version string, e *cvebench.Entry) (RQ1Row, error) {
	row := RQ1Row{CVE: e.CVE, Types: e.TypesString()}
	d, err := NewDeployment(version, 2, kcrypto.HashSHA256, e)
	if err != nil {
		return row, err
	}
	defer d.Close()

	res, err := e.Exploit(d.System.Kernel, 0)
	if err != nil {
		return row, err
	}
	row.VulnBefore = res.Vulnerable

	rep, err := d.System.Apply(context.Background(), e.CVE)
	if err != nil {
		return row, err
	}
	row.PayloadBytes = rep.Stages.PayloadBytes
	row.PauseVirtual = rep.Stages.SMMTotal()

	res, err = e.Exploit(d.System.Kernel, 0)
	if err != nil {
		return row, err
	}
	row.VulnAfter = res.Vulnerable

	// Health check: an unrelated syscall still computes correctly.
	v, err := d.System.Kernel.Call(0, "sys_compute", 10, 4)
	row.KernelHealthy = err == nil && v == (10+4)*(10-4)+10

	// Rollback restores the vulnerable behaviour; then re-apply.
	if _, err := d.System.Rollback(context.Background(), e.CVE); err != nil {
		return row, err
	}
	res, err = e.Exploit(d.System.Kernel, 0)
	if err != nil {
		return row, err
	}
	row.RollbackWorked = res.Vulnerable
	return row, nil
}

// RQ1Table renders the applicability results.
func RQ1Table(rows []RQ1Row) *report.Table {
	t := report.NewTable("RQ1: Correct kernel patching across the Table I suite",
		"CVE Number", "Type", "Payload", "Exploit pre", "Exploit post", "OS pause", "Result")
	passed := 0
	for _, r := range rows {
		verdict := "FAIL"
		if r.Passed() {
			verdict = "ok"
			passed++
		}
		t.AddRow(r.CVE, r.Types, report.Bytes(r.PayloadBytes),
			yesNo(r.VulnBefore), yesNo(r.VulnAfter), report.Us(r.PauseVirtual)+"us", verdict)
	}
	t.AddNote(fmt.Sprintf("%d/%d patches applied correctly (exploit neutralized, kernel healthy, rollback intact)", passed, len(rows)))
	return t
}

// OverheadResult is the §VI-C3 whole-system experiment outcome.
type OverheadResult struct {
	Baseline  workload.Stats
	Disturbed workload.Stats

	// Overhead is the measured wall-clock throughput loss. In the
	// simulation this is dominated by the interpreter's real cost of
	// a patch cycle, not by the modeled OS pause, so it overstates
	// what the paper's testbed would see.
	Overhead float64

	Patches      int
	PausePerOp   time.Duration // average virtual OS pause per patch
	TotalVirtual time.Duration // total virtual OS pause across the storm

	// VirtualPauseFraction is the paper-comparable number: the total
	// virtual OS-pause time divided by the experiment window — the
	// fraction of time the OS was (virtually) stopped.
	VirtualPauseFraction float64
}

// RunOverhead measures workload throughput with and without a storm of
// `patches` apply+rollback cycles (each cycle is two SMM entries).
func RunOverhead(patches int, window time.Duration) (*OverheadResult, error) {
	e, ok := cvebench.Get("CVE-2014-4608")
	if !ok {
		return nil, fmt.Errorf("benchmark CVE missing")
	}
	d, err := NewDeployment("4.4", 4, kcrypto.HashSHA256, e)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	drv := workload.New(d.System.Kernel, workload.Mixed)
	var pauseAcc time.Duration
	storm := func() error {
		for i := 0; i < patches; i++ {
			rep, err := d.System.Apply(context.Background(), e.CVE)
			if err != nil {
				return fmt.Errorf("storm apply %d: %w", i, err)
			}
			pauseAcc += rep.Stages.SMMTotal()
			if _, err := d.System.Rollback(context.Background(), e.CVE); err != nil {
				return fmt.Errorf("storm rollback %d: %w", i, err)
			}
		}
		return nil
	}
	base, disturbed, ov, err := workload.Overhead(drv, window, storm)
	if err != nil {
		return nil, err
	}
	return &OverheadResult{
		Baseline:             base,
		Disturbed:            disturbed,
		Overhead:             ov,
		Patches:              patches,
		PausePerOp:           pauseAcc / time.Duration(patches),
		TotalVirtual:         pauseAcc,
		VirtualPauseFraction: float64(pauseAcc) / float64(window),
	}, nil
}
