package evalharness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshot/internal/timing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

const goldenReport = "report_30cve.txt"

// TestGoldenPhaseReport runs the full 30-CVE batched deployment under a
// fake wall clock with synchronous fetching and asserts the rendered
// observability report — phase table, metrics snapshot, event trace —
// byte-for-byte against testdata/golden/report_30cve.txt. Every time
// source is virtual and the pipeline is single-threaded, so the output
// is a pure function of the suite; regenerate deliberately with
//
//	go test ./internal/evalharness -run Golden -update
func TestGoldenPhaseReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full 30-CVE deployment in -short mode")
	}
	b, err := RunPhaseBreakdown(PhaseOptions{
		SyncFetch: true,
		Wall:      timing.NewFakeWall(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderPhaseReport(&buf, b); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "golden", goldenReport)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report differs from %s:\n%s\nrerun with -update if the change is intended",
			path, firstDiff(string(want), string(got)))
	}
}

// firstDiff pinpoints the first differing line so a golden mismatch is
// debuggable without dumping both multi-hundred-line reports.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}
