package evalharness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshot/internal/isa"
	"kshot/internal/timing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

const goldenReport = "report_30cve.txt"

// TestGoldenPhaseReport runs the full 30-CVE batched deployment under a
// fake wall clock with synchronous fetching and asserts the rendered
// observability report — phase table, metrics snapshot, event trace —
// byte-for-byte against testdata/golden/report_30cve.txt, once per
// execution engine. Every time source is virtual and the pipeline is
// single-threaded, so the output is a pure function of the suite — and
// because all durations are virtual steps, the block engine and the
// decode-switch oracle must render the exact same bytes: a golden
// mismatch between the two modes is an engine-equivalence bug, not a
// report change. Regenerate deliberately with
//
//	go test ./internal/evalharness -run Golden -update
//
// (-update writes from the default blocks run; the oracle subtest then
// re-checks the fresh file.)
func TestGoldenPhaseReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full 30-CVE deployment in -short mode")
	}
	path := filepath.Join("testdata", "golden", goldenReport)
	for _, mode := range []isa.Dispatch{isa.DispatchBlocks, isa.DispatchOracle} {
		t.Run(mode.String(), func(t *testing.T) {
			b, err := RunPhaseBreakdown(PhaseOptions{
				SyncFetch: true,
				Wall:      timing.NewFakeWall(),
				Dispatch:  mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := RenderPhaseReport(&buf, b); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()

			if *update && mode == isa.DispatchBlocks {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report under %s dispatch differs from %s:\n%s\nrerun with -update if the change is intended",
					mode, path, firstDiff(string(want), string(got)))
			}
		})
	}
}

// firstDiff pinpoints the first differing line so a golden mismatch is
// debuggable without dumping both multi-hundred-line reports.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}
