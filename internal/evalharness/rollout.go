package evalharness

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/orchestrator"
	"kshot/internal/patchserver"
)

// RolloutBenchResult is the fleet-rollout experiment: one coordinator
// driving a CVE batch across a simulated fleet in staged canary waves,
// every target booting its own machine and fetching from one shared
// patch server. Throughput is wall-clock (the real coordinator and
// server are being measured); the pause percentiles are virtual SMM
// time (the paper's downtime metric).
type RolloutBenchResult struct {
	Targets  int `json:"targets"`
	Domains  int `json:"domains"`
	CVEs     int `json:"cves"`
	Waves    int `json:"waves"`
	Patched  int `json:"patched"`
	Failed   int `json:"failed"`
	RolledBk int `json:"rolled_back"`

	Wall          time.Duration `json:"wall_ns"`
	TargetsPerSec float64       `json:"targets_per_sec"`

	MeanPause time.Duration `json:"mean_target_pause_ns"`
	P99Pause  time.Duration `json:"p99_target_pause_ns"`

	// Provisioning accounting: how much of the rollout went into
	// standing targets up, and at what rate. With TemplateFork set the
	// template-cache counters show how the fleet shared boots.
	TemplateFork    bool          `json:"template_fork"`
	ProvisionMean   time.Duration `json:"provision_mean_ns"`
	ProvisionPerSec float64       `json:"provisions_per_sec"`
	TemplateHits    int64         `json:"template_hits,omitempty"`
	TemplateMisses  int64         `json:"template_misses,omitempty"`
	TemplateForks   int64         `json:"template_forks,omitempty"`
}

// RolloutBenchOptions parameterizes RunRolloutBenchOpts. The zero
// value gets the historical defaults (2 targets, 1 domain, 2 CVEs,
// concurrency 4, cold boots).
type RolloutBenchOptions struct {
	Targets     int
	Domains     int
	CVEs        int
	Concurrency int

	// TemplateFork provisions the fleet by COW-forking one cached
	// template per configuration instead of cold-booting every target.
	TemplateFork bool
}

// RunRolloutBench measures the rollout orchestrator end to end:
// targets simulated machines across domains failure domains, patching
// cves CVEs from the benchmark registry in staged waves of
// concurrency-bounded parallelism. Targets are cold-booted; use
// RunRolloutBenchOpts to fork them from a template instead.
func RunRolloutBench(targets, domains, cves, concurrency int) (*RolloutBenchResult, error) {
	return RunRolloutBenchOpts(RolloutBenchOptions{
		Targets: targets, Domains: domains, CVEs: cves, Concurrency: concurrency,
	})
}

// RunRolloutBenchOpts is RunRolloutBench with the full option set.
func RunRolloutBenchOpts(o RolloutBenchOptions) (*RolloutBenchResult, error) {
	targets, domains, cves, concurrency := o.Targets, o.Domains, o.CVEs, o.Concurrency
	if targets < 2 {
		targets = 2
	}
	if domains < 1 {
		domains = 1
	}
	if concurrency < 1 {
		concurrency = 4
	}
	entries := cvebench.FigureSix()
	if cves < 1 || cves > len(entries) {
		cves = 2
	}
	entries = entries[:cves]

	ids := make([]string, len(entries))
	files := make(map[string]string, len(entries))
	for i, e := range entries {
		ids[i] = e.CVE
		files[e.File] = e.Vuln
	}
	srv, err := patchserver.New(patchserver.WithTreeProvider(cvebench.TreeProviderFor(entries...)))
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}

	fleet := make([]orchestrator.Target, targets)
	for i := range fleet {
		fleet[i] = orchestrator.Target{
			ID:     fmt.Sprintf("bench-%03d", i),
			Domain: fmt.Sprintf("dom-%d", i%domains),
		}
	}

	sysOpts := core.Options{
		Version:    "4.4",
		ExtraFiles: files,
		ServerAddr: srv.Addr(),
	}
	var cache *core.TemplateCache
	if o.TemplateFork {
		cache = core.NewTemplateCache()
		defer cache.Close()
		sysOpts.TemplateCache = cache
	}
	// Provisioning rate is accounted inside the provisioner so it
	// reflects exactly what the orchestrator paid, wave scheduling and
	// all excluded.
	var provNanos, provCount atomic.Int64
	roll, err := orchestrator.New(
		orchestrator.WithTargets(fleet),
		orchestrator.WithCVEs(ids...),
		orchestrator.WithProvisioner(func(ctx context.Context, t orchestrator.Target) (orchestrator.Patcher, error) {
			start := time.Now()
			sys, err := core.NewSystemCtx(ctx, sysOpts)
			if err != nil {
				return nil, err
			}
			provNanos.Add(int64(time.Since(start)))
			provCount.Add(1)
			return sys, nil
		}),
		orchestrator.WithSeed(1),
		orchestrator.WithFirstWaveFraction(0.05),
		orchestrator.WithWaveConcurrency(concurrency),
	)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res, runErr := roll.Run(context.Background())
	wall := time.Since(start)
	if runErr != nil {
		return nil, fmt.Errorf("rollout bench: %w", runErr)
	}

	out := &RolloutBenchResult{
		Targets:  targets,
		Domains:  domains,
		CVEs:     cves,
		Waves:    len(res.Waves),
		Patched:  res.Patched,
		Failed:   res.Failed,
		RolledBk: res.RolledBack,
		Wall:     wall,

		TemplateFork: o.TemplateFork,
	}
	if wall > 0 {
		out.TargetsPerSec = float64(targets) / wall.Seconds()
	}
	if n := provCount.Load(); n > 0 {
		out.ProvisionMean = time.Duration(provNanos.Load() / n)
		if provNanos.Load() > 0 {
			out.ProvisionPerSec = float64(n) / (time.Duration(provNanos.Load())).Seconds()
		}
	}
	if cache != nil {
		st := cache.Stats()
		out.TemplateHits, out.TemplateMisses, out.TemplateForks = st.Hits, st.Misses, st.Forks
	}

	pauses := make([]time.Duration, 0, len(res.Targets))
	var sum time.Duration
	for _, ts := range res.Targets {
		pauses = append(pauses, ts.Pause)
		sum += ts.Pause
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	if n := len(pauses); n > 0 {
		out.MeanPause = sum / time.Duration(n)
		idx := (99*n + 99) / 100 // ceil(0.99 n)
		if idx > n {
			idx = n
		}
		out.P99Pause = pauses[idx-1]
	}
	return out, nil
}
