package evalharness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/orchestrator"
	"kshot/internal/patchserver"
)

// RolloutBenchResult is the fleet-rollout experiment: one coordinator
// driving a CVE batch across a simulated fleet in staged canary waves,
// every target booting its own machine and fetching from one shared
// patch server. Throughput is wall-clock (the real coordinator and
// server are being measured); the pause percentiles are virtual SMM
// time (the paper's downtime metric).
type RolloutBenchResult struct {
	Targets  int `json:"targets"`
	Domains  int `json:"domains"`
	CVEs     int `json:"cves"`
	Waves    int `json:"waves"`
	Patched  int `json:"patched"`
	Failed   int `json:"failed"`
	RolledBk int `json:"rolled_back"`

	Wall          time.Duration `json:"wall_ns"`
	TargetsPerSec float64       `json:"targets_per_sec"`

	MeanPause time.Duration `json:"mean_target_pause_ns"`
	P99Pause  time.Duration `json:"p99_target_pause_ns"`
}

// RunRolloutBench measures the rollout orchestrator end to end:
// targets simulated machines across domains failure domains, patching
// cves CVEs from the benchmark registry in staged waves of
// concurrency-bounded parallelism.
func RunRolloutBench(targets, domains, cves, concurrency int) (*RolloutBenchResult, error) {
	if targets < 2 {
		targets = 2
	}
	if domains < 1 {
		domains = 1
	}
	if concurrency < 1 {
		concurrency = 4
	}
	entries := cvebench.FigureSix()
	if cves < 1 || cves > len(entries) {
		cves = 2
	}
	entries = entries[:cves]

	ids := make([]string, len(entries))
	files := make(map[string]string, len(entries))
	for i, e := range entries {
		ids[i] = e.CVE
		files[e.File] = e.Vuln
	}
	srv, err := patchserver.New(patchserver.WithTreeProvider(cvebench.TreeProviderFor(entries...)))
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}

	fleet := make([]orchestrator.Target, targets)
	for i := range fleet {
		fleet[i] = orchestrator.Target{
			ID:     fmt.Sprintf("bench-%03d", i),
			Domain: fmt.Sprintf("dom-%d", i%domains),
		}
	}

	roll, err := orchestrator.New(
		orchestrator.WithTargets(fleet),
		orchestrator.WithCVEs(ids...),
		orchestrator.WithProvisioner(func(ctx context.Context, t orchestrator.Target) (orchestrator.Patcher, error) {
			return core.NewSystem(core.Options{
				Version:    "4.4",
				ExtraFiles: files,
				ServerAddr: srv.Addr(),
			})
		}),
		orchestrator.WithSeed(1),
		orchestrator.WithFirstWaveFraction(0.05),
		orchestrator.WithWaveConcurrency(concurrency),
	)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res, runErr := roll.Run(context.Background())
	wall := time.Since(start)
	if runErr != nil {
		return nil, fmt.Errorf("rollout bench: %w", runErr)
	}

	out := &RolloutBenchResult{
		Targets:  targets,
		Domains:  domains,
		CVEs:     cves,
		Waves:    len(res.Waves),
		Patched:  res.Patched,
		Failed:   res.Failed,
		RolledBk: res.RolledBack,
		Wall:     wall,
	}
	if wall > 0 {
		out.TargetsPerSec = float64(targets) / wall.Seconds()
	}

	pauses := make([]time.Duration, 0, len(res.Targets))
	var sum time.Duration
	for _, ts := range res.Targets {
		pauses = append(pauses, ts.Pause)
		sum += ts.Pause
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	if n := len(pauses); n > 0 {
		out.MeanPause = sum / time.Duration(n)
		idx := (99*n + 99) / 100 // ceil(0.99 n)
		if idx > n {
			idx = n
		}
		out.P99Pause = pauses[idx-1]
	}
	return out, nil
}
