package evalharness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/patchserver"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
)

// FleetResult is the fleet-distribution experiment: per-request patch
// delivery cost with the server's build cache cold versus warm, plus
// the deduplication witness (kernel builds performed vs requests
// served). Durations are wall-clock nanoseconds — this experiment
// measures the real server, not the virtual timing model.
type FleetResult struct {
	Clients  int           `json:"clients"`
	Requests int           `json:"requests"`
	Builds   uint64        `json:"builds"`
	ColdPer  time.Duration `json:"cold_per_request_ns"`
	WarmPer  time.Duration `json:"warm_per_request_ns"`
	Speedup  float64       `json:"speedup"`
}

// RunFleetBench starts a loopback patch server and a fleet of clients,
// then measures per-request delivery cost for one CVE with the cache
// cold (every wave pays the double kernel build) and warm (waves hit
// the cached artifact). rounds is how many request waves each phase
// averages over.
func RunFleetBench(clients, rounds int) (*FleetResult, error) {
	if clients < 1 {
		clients = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	const cve = "CVE-2014-0196"
	e, ok := cvebench.Get(cve)
	if !ok {
		return nil, fmt.Errorf("unknown CVE %s", cve)
	}
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e))
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	srv.RegisterPatch(e.SourcePatch())

	info := patchserver.OSInfo{Version: "4.4", Ftrace: true, Inline: true}
	meas := sgx.MeasureIdentity(sgxprep.Identity(info.Version))
	conns := make([]*patchserver.Client, clients)
	keys := make([][]byte, clients)
	for i := range conns {
		c, err := patchserver.Dial(srv.Addr())
		if err != nil {
			return nil, err
		}
		defer c.Close()
		key, err := c.Hello(info, meas)
		if err != nil {
			return nil, err
		}
		conns[i], keys[i] = c, key
	}

	wave := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, len(conns))
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c *patchserver.Client) {
				defer wg.Done()
				blob, err := c.FetchPatch(context.Background(), cve)
				if err != nil {
					errs <- err
					return
				}
				// Decrypt to prove the per-session key still matches.
				sess, err := kcrypto.NewSession(keys[i], nil)
				if err == nil {
					_, err = sess.Decrypt(blob)
				}
				if err != nil {
					errs <- err
				}
			}(i, c)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	res := &FleetResult{Clients: clients}

	// Cold: flush before every wave so each wave pays exactly one build
	// (concurrent requests within the wave still coalesce — that is the
	// fleet behavior being measured).
	coldStart := time.Now()
	for r := 0; r < rounds; r++ {
		srv.FlushCache()
		if err := wave(); err != nil {
			return nil, fmt.Errorf("cold wave: %w", err)
		}
	}
	res.ColdPer = time.Since(coldStart) / time.Duration(rounds*clients)

	// Warm: the artifact stays cached across waves.
	warmStart := time.Now()
	for r := 0; r < rounds; r++ {
		if err := wave(); err != nil {
			return nil, fmt.Errorf("warm wave: %w", err)
		}
	}
	res.WarmPer = time.Since(warmStart) / time.Duration(rounds*clients)

	res.Requests = 2 * rounds * clients
	res.Builds = srv.Builds()
	if res.WarmPer > 0 {
		res.Speedup = float64(res.ColdPer) / float64(res.WarmPer)
	}
	return res, nil
}
