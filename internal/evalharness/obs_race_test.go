package evalharness

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// TestObservabilityUnderConcurrency hammers one shared Hooks from
// several concurrent deployments with async fetching and a deliberately
// tiny trace ring, then checks the accounting holds exactly: the ring's
// drop counter equals emitted minus retained, and the downtime
// histogram saw precisely one sample per applied patch. Run under
// -race this also proves the tracer, registry, and every hook site are
// data-race free.
func TestObservabilityUnderConcurrency(t *testing.T) {
	const replicas = 2 // each wave deployed this many times, all concurrent

	wall := timing.NewFakeWall()
	hooks := obs.NewHooks(64, wall) // far below the event volume, forcing wraps
	waves := cvebench.ConflictFreeWaves(cvebench.All())

	var (
		wg      sync.WaitGroup
		applied atomic.Int64
		mu      sync.Mutex
		errs    []error
	)
	for r := 0; r < replicas; r++ {
		for wi := range waves {
			wave := waves[wi]
			wg.Add(1)
			go func() {
				defer wg.Done()
				cves := make([]string, len(wave))
				for i, e := range wave {
					cves[i] = e.CVE
				}
				d, err := NewDeployment("4.4", 2, kcrypto.HashSHA256, wave...)
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				defer d.Close()
				d.System.SetWallClock(wall)
				d.System.SetObserver(hooks)
				rep, err := d.System.ApplyAll(context.Background(), cves)
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				if len(rep.Failed) > 0 {
					mu.Lock()
					for _, ferr := range rep.Failed {
						errs = append(errs, ferr)
					}
					mu.Unlock()
					return
				}
				applied.Add(int64(len(rep.Reports)))
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}

	wantApplied := applied.Load()
	if want := int64(replicas * len(cvebench.All())); wantApplied != want {
		t.Fatalf("applied %d patches, want %d", wantApplied, want)
	}

	// Ring accounting: the snapshot is taken under one critical section,
	// so the invariant must be exact, not approximate.
	snap := hooks.Tracer.Snapshot()
	if snap.Dropped != snap.Emitted-uint64(len(snap.Events)) {
		t.Errorf("ring invariant broken: dropped=%d emitted=%d retained=%d",
			snap.Dropped, snap.Emitted, len(snap.Events))
	}
	if snap.Emitted <= uint64(snap.Capacity) {
		t.Errorf("expected the ring to wrap: emitted=%d capacity=%d", snap.Emitted, snap.Capacity)
	}
	if snap.Dropped == 0 {
		t.Error("expected dropped events with a 64-slot ring")
	}
	if len(snap.Events) != snap.Capacity {
		t.Errorf("retained %d events, want full ring of %d", len(snap.Events), snap.Capacity)
	}

	// Metric accounting: one downtime sample and one applied count per
	// patched CVE, no double counting across concurrent deployments.
	if got := hooks.Metrics.Counter(obs.CtrApplied).Value(); got != wantApplied {
		t.Errorf("%s = %d, want %d", obs.CtrApplied, got, wantApplied)
	}
	var downtime *obs.HistSnap
	msnap := hooks.Metrics.Snapshot()
	for i := range msnap.Hists {
		if msnap.Hists[i].Name == obs.HistDowntime {
			downtime = &msnap.Hists[i]
			break
		}
	}
	if downtime == nil {
		t.Fatalf("histogram %s never observed", obs.HistDowntime)
	}
	if downtime.Count != uint64(wantApplied) {
		t.Errorf("%s count = %d, want %d (one sample per applied patch)",
			obs.HistDowntime, downtime.Count, wantApplied)
	}
	if downtime.Sum <= 0 {
		t.Errorf("%s sum = %v, want > 0", obs.HistDowntime, downtime.Sum)
	}
}
