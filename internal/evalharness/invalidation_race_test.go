package evalharness

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
)

// TestBlockInvalidationUnderConcurrentApply patches a kernel out from
// under a running workload. vCPU 1 hammers the vulnerable syscall in a
// loop while vCPU 0's goroutine applies the patch: the SMM world switch
// pauses the workload at a unit boundary, the handler rewrites kernel
// text, and the very next dispatch on vCPU 1 must notice the code-epoch
// bump and re-decode — a stale cached block would keep executing the
// vulnerable code the patch just removed. The test asserts the workload
// observes the flip from vulnerable to fixed with no failed calls, that
// the engine recorded cache flushes and fresh decodes, and that
// rollback flips behaviour back. Run under -race (CI does) this also
// proves the epoch/flush path is data-race free.
func TestBlockInvalidationUnderConcurrentApply(t *testing.T) {
	e, ok := cvebench.Get("CVE-2014-4157")
	if !ok {
		t.Fatal("CVE-2014-4157 not in registry")
	}
	d, err := NewDeploymentDispatch("4.4", 2, kcrypto.HashSHA256, isa.DispatchBlocks, e)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sys := d.System

	if r, err := e.Exploit(sys.Kernel, 0); err != nil || !r.Vulnerable {
		t.Fatalf("pre-apply exploit: vulnerable=%v, err=%v", r.Vulnerable, err)
	}

	var (
		stop       atomic.Bool
		iterations atomic.Int64
		sawVuln    atomic.Int64
		sawFixed   atomic.Int64
		wg         sync.WaitGroup
		mu         sync.Mutex
		workErrs   []error
	)
	workerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(workerDone)
		for !stop.Load() {
			r, err := e.Exploit(sys.Kernel, 1)
			if err != nil {
				mu.Lock()
				workErrs = append(workErrs, err)
				mu.Unlock()
				return
			}
			if r.Vulnerable {
				sawVuln.Add(1)
			} else {
				sawFixed.Add(1)
			}
			iterations.Add(1)
		}
	}()

	waitFor := func(stage string, cond func() bool) {
		for !cond() {
			select {
			case <-workerDone:
				stop.Store(true)
				wg.Wait()
				for _, werr := range workErrs {
					t.Fatalf("%s: workload died: %v", stage, werr)
				}
				t.Fatalf("%s: workload exited early", stage)
			default:
				runtime.Gosched()
			}
		}
	}

	// Let the workload populate vCPU 1's block cache, then patch it out
	// from under the loop.
	waitFor("warmup", func() bool { return iterations.Load() >= 20 })
	if _, err := sys.Apply(context.Background(), e.CVE); err != nil {
		t.Fatalf("apply mid-run: %v", err)
	}
	// The workload must observe the fix — the next dispatches run the
	// patched text, not a stale block.
	fixedAtApply := sawFixed.Load()
	waitFor("post-apply", func() bool { return sawFixed.Load() >= fixedAtApply+20 })
	stop.Store(true)
	wg.Wait()
	for _, werr := range workErrs {
		t.Fatalf("workload call failed: %v", werr)
	}

	if sawVuln.Load() == 0 || sawFixed.Load() == 0 {
		t.Fatalf("workload saw vuln=%d fixed=%d probes; want both behaviours across the apply",
			sawVuln.Load(), sawFixed.Load())
	}
	if r, err := e.Exploit(sys.Kernel, 0); err != nil || r.Vulnerable {
		t.Fatalf("post-apply exploit on vCPU 0: vulnerable=%v, err=%v", r.Vulnerable, err)
	}

	// The workload vCPU is quiescent now; its engine must show the
	// apply's text writes flushed the cache and forced fresh decodes.
	stats, ok := sys.Machine.VCPU(1).EngineStats()
	if !ok {
		t.Fatal("vCPU 1 is not running the block engine")
	}
	if stats.Flushes == 0 {
		t.Fatalf("engine stats %+v: apply bumped the code epoch but the cache never flushed", stats)
	}
	if stats.Decodes == 0 || stats.Hits == 0 {
		t.Fatalf("engine stats %+v: want both decodes and cache hits from the workload", stats)
	}

	// Rollback restores the vulnerable text; a fresh dispatch must not
	// serve the patched block.
	if _, err := sys.Rollback(context.Background(), e.CVE); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if r, err := e.Exploit(sys.Kernel, 1); err != nil || !r.Vulnerable {
		t.Fatalf("post-rollback exploit: vulnerable=%v, err=%v (stale patched block?)", r.Vulnerable, err)
	}
}
