package evalharness

import (
	"context"
	"fmt"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/timing"
	"kshot/internal/workload"
)

// Dispatch-engine benchmark: the same fixed amount of workload, under a
// live patch, once per execution engine. Because the work is fixed in
// operations (not wall-clock), the two runs retire identical virtual
// instruction streams; the virtual patch metrics must therefore agree
// exactly, and the wall-clock throughput ratio is the block engine's
// speedup.

// DispatchModeResult is one engine's half of the comparison.
type DispatchModeResult struct {
	Mode      string        `json:"mode"`
	Ops       uint64        `json:"ops"`
	Wall      time.Duration `json:"wall_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`

	// Stages are the patch's virtual stage times — engine-independent
	// by construction; RunDispatchBench fails if they differ.
	Stages timing.Stages `json:"stages"`
}

// DispatchResult compares oracle and block dispatch over identical
// work.
type DispatchResult struct {
	CVE     string             `json:"cve"`
	Oracle  DispatchModeResult `json:"oracle"`
	Blocks  DispatchModeResult `json:"blocks"`
	Speedup float64            `json:"speedup"`
}

// RunDispatchBench boots one deployment per engine, applies the CVE's
// patch, then drives the mixed workload for exactly ops operations
// under the patched kernel. It returns the throughput comparison and
// verifies the virtual-time patch metrics are bit-identical across
// engines.
func RunDispatchBench(cve string, ops uint64) (*DispatchResult, error) {
	out := &DispatchResult{CVE: cve}
	for _, mode := range []isa.Dispatch{isa.DispatchOracle, isa.DispatchBlocks} {
		r, err := runDispatchMode(cve, mode, ops)
		if err != nil {
			return nil, fmt.Errorf("dispatch bench (%v): %w", mode, err)
		}
		if mode == isa.DispatchOracle {
			out.Oracle = r
		} else {
			out.Blocks = r
		}
	}
	if out.Oracle.Stages != out.Blocks.Stages {
		return nil, fmt.Errorf("dispatch bench: virtual stage metrics diverge between engines: oracle %+v vs blocks %+v",
			out.Oracle.Stages, out.Blocks.Stages)
	}
	if out.Oracle.OpsPerSec > 0 {
		out.Speedup = out.Blocks.OpsPerSec / out.Oracle.OpsPerSec
	}
	return out, nil
}

func runDispatchMode(cve string, mode isa.Dispatch, ops uint64) (DispatchModeResult, error) {
	e, ok := cvebench.Get(cve)
	if !ok {
		return DispatchModeResult{}, fmt.Errorf("unknown CVE %q", cve)
	}
	d, err := NewDeploymentDispatch("4.4", 2, kcrypto.HashSHA256, mode, e)
	if err != nil {
		return DispatchModeResult{}, err
	}
	defer d.Close()

	rep, err := d.System.Apply(context.Background(), cve)
	if err != nil {
		return DispatchModeResult{}, err
	}

	drv := workload.New(d.System.Kernel, workload.Mixed)
	stats, err := drv.RunOps(ops)
	if err != nil {
		return DispatchModeResult{}, err
	}
	return DispatchModeResult{
		Mode:      mode.String(),
		Ops:       stats.Ops,
		Wall:      stats.Elapsed,
		OpsPerSec: stats.OpsPerSec(),
		Stages:    rep.Stages,
	}, nil
}
