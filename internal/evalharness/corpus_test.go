package evalharness

import (
	"testing"

	"kshot/internal/corpusgen"
)

// TestGeneratedCorpusSmoke is the CI gate for the generated corpus: a
// fixed-seed 64-case differential sweep (analysis-level on every case,
// full end-to-end apply/rollback on the first 8). It must stay fast
// enough to run under -race on every push.
func TestGeneratedCorpusSmoke(t *testing.T) {
	stats := RunCorpusSweep(SweepOptions{Seed: 0xC0DE, Count: 64, E2ECount: 8, Workers: 4})
	if stats.Cases != 64 || stats.E2ECases != 8 {
		t.Fatalf("sweep ran %d cases (%d e2e), want 64 (8 e2e)", stats.Cases, stats.E2ECases)
	}
	for _, d := range stats.Divergences {
		t.Error(d.String())
	}
	for ty, checked := range stats.Checked {
		if m := stats.Matched[ty]; m != checked {
			t.Errorf("Type %s classification: %d/%d predictions matched", ty, m, checked)
		}
	}
}

// TestVerifyCaseReportsDivergence sabotages a generated case's
// prediction and requires the harness to notice — the differential
// check must not be vacuously green.
func TestVerifyCaseReportsDivergence(t *testing.T) {
	c := corpusgen.GenCase(1)
	for name, fe := range c.Expect.Funcs {
		fe.Traced = !fe.Traced
		c.Expect.Funcs[name] = fe
		break
	}
	res := VerifyCase(c, false)
	if len(res.Divergences) == 0 {
		t.Fatal("sabotaged expectation produced no divergence")
	}
	d := res.Divergences[0]
	if d.Seed != c.Seed || d.ID != c.ID {
		t.Fatalf("divergence %+v does not carry the reproducing seed/ID", d)
	}
}

func TestCorpusTableRenders(t *testing.T) {
	stats := RunCorpusSweep(SweepOptions{Seed: 7, Count: 8, Workers: 4})
	out := CorpusTable(stats).String()
	if out == "" {
		t.Fatal("empty corpus table")
	}
}
