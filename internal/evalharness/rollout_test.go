package evalharness

import "testing"

func TestRunRolloutBench(t *testing.T) {
	if testing.Short() {
		t.Skip("full rollout bench skipped in -short mode")
	}
	res, err := RunRolloutBench(4, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 4 || res.Domains != 2 || res.CVEs != 1 {
		t.Errorf("inputs not echoed: %+v", res)
	}
	if res.Patched != 4 || res.Failed != 0 || res.RolledBk != 0 {
		t.Errorf("healthy fleet accounting wrong: %+v", res)
	}
	if res.Waves < 2 {
		t.Errorf("want at least canary + one wave, got %d", res.Waves)
	}
	if res.Wall <= 0 || res.TargetsPerSec <= 0 {
		t.Errorf("throughput not measured: wall=%v tps=%f", res.Wall, res.TargetsPerSec)
	}
	if res.MeanPause <= 0 || res.P99Pause < res.MeanPause {
		t.Errorf("pause stats inconsistent: mean=%v p99=%v", res.MeanPause, res.P99Pause)
	}
}
