package evalharness

import "testing"

func TestRunRolloutBench(t *testing.T) {
	if testing.Short() {
		t.Skip("full rollout bench skipped in -short mode")
	}
	res, err := RunRolloutBench(4, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 4 || res.Domains != 2 || res.CVEs != 1 {
		t.Errorf("inputs not echoed: %+v", res)
	}
	if res.Patched != 4 || res.Failed != 0 || res.RolledBk != 0 {
		t.Errorf("healthy fleet accounting wrong: %+v", res)
	}
	if res.Waves < 2 {
		t.Errorf("want at least canary + one wave, got %d", res.Waves)
	}
	if res.Wall <= 0 || res.TargetsPerSec <= 0 {
		t.Errorf("throughput not measured: wall=%v tps=%f", res.Wall, res.TargetsPerSec)
	}
	if res.MeanPause <= 0 || res.P99Pause < res.MeanPause {
		t.Errorf("pause stats inconsistent: mean=%v p99=%v", res.MeanPause, res.P99Pause)
	}
	if res.TemplateFork || res.TemplateForks != 0 {
		t.Errorf("cold rollout reported template traffic: %+v", res)
	}
	if res.ProvisionMean <= 0 || res.ProvisionPerSec <= 0 {
		t.Errorf("provision rate not measured: %+v", res)
	}
}

// TestRolloutForkedMatchesCold runs the same small fleet twice — cold
// boots versus template forks — and demands identical patch outcomes
// and identical virtual pause metrics: the provisioning mode may only
// change wall-clock, never what the fleet's OSes observed.
func TestRolloutForkedMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("full rollout bench skipped in -short mode")
	}
	base := RolloutBenchOptions{Targets: 6, Domains: 2, CVEs: 2, Concurrency: 3}

	cold, err := RunRolloutBenchOpts(base)
	if err != nil {
		t.Fatal(err)
	}
	forkedOpts := base
	forkedOpts.TemplateFork = true
	forked, err := RunRolloutBenchOpts(forkedOpts)
	if err != nil {
		t.Fatal(err)
	}

	if forked.Patched != cold.Patched || forked.Failed != cold.Failed || forked.RolledBk != cold.RolledBk {
		t.Errorf("outcomes diverge: cold %+v forked %+v", cold, forked)
	}
	if forked.MeanPause != cold.MeanPause || forked.P99Pause != cold.P99Pause {
		t.Errorf("virtual pause diverges: cold mean=%v p99=%v, forked mean=%v p99=%v",
			cold.MeanPause, cold.P99Pause, forked.MeanPause, forked.P99Pause)
	}
	if forked.TemplateMisses != 1 || forked.TemplateForks != int64(base.Targets) {
		t.Errorf("template traffic: misses=%d forks=%d, want 1 and %d",
			forked.TemplateMisses, forked.TemplateForks, base.Targets)
	}
	t.Logf("cold provision %v/target, forked %v/target (%.1fx)",
		cold.ProvisionMean, forked.ProvisionMean,
		float64(cold.ProvisionMean)/float64(forked.ProvisionMean))
}
