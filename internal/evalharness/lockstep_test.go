package evalharness

import (
	"context"
	"fmt"
	"testing"

	"kshot/internal/core"
	"kshot/internal/corpusgen"
	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/patchserver"
)

// lockstepCycle drives a full exploit → apply → exploit → health →
// rollback → exploit cycle on a system whose single vCPU executes every
// dispatch unit under both engines (isa.DispatchLockstep): the block
// engine runs a unit, the oracle replays it on rewound memory, and any
// divergence in registers, flags, step counts, errors, or touched
// frames fails the call. The cycle exercises the decoder across the
// whole pipeline — pristine text, trampoline-patched text, and
// restored text after rollback — so a block-engine bug anywhere in the
// patch lifecycle surfaces as a DivergenceError out of the syscall that
// hit it. repro carries the failure-report suffix (the corpus shrink
// idiom for generated cases, empty for the CVE suite).
func lockstepCycle(t *testing.T, sys *core.System, e *cvebench.Entry, repro string) {
	t.Helper()
	probe := func(stage string, wantVulnerable bool) {
		r, err := e.Exploit(sys.Kernel, 0)
		if err != nil {
			t.Fatalf("%s: exploit probe: %v%s", stage, err, repro)
		}
		if r.Vulnerable != wantVulnerable {
			t.Fatalf("%s: exploit vulnerable=%v, want %v (%s)%s", stage, r.Vulnerable, wantVulnerable, r.Detail, repro)
		}
	}

	probe("pre-apply", true)
	if _, err := sys.Apply(context.Background(), e.CVE); err != nil {
		t.Fatalf("apply: %v%s", err, repro)
	}
	probe("post-apply", false)
	if v, err := sys.Kernel.Call(0, "sys_compute", 10, 4); err != nil || v != (10+4)*(10-4)+10 {
		t.Fatalf("health: sys_compute = %d, %v%s", v, err, repro)
	}
	if _, err := sys.Rollback(context.Background(), e.CVE); err != nil {
		t.Fatalf("rollback: %v%s", err, repro)
	}
	probe("post-rollback", true)

	// Non-vacuity: the lockstep runner's block engine must actually have
	// decoded and dispatched blocks, and the apply/rollback writes into
	// kernel text must have flushed its cache at least once each.
	stats, ok := sys.Machine.VCPU(0).EngineStats()
	if !ok {
		t.Fatalf("vCPU is not running a block engine%s", repro)
	}
	if stats.Decodes == 0 || stats.Flushes == 0 {
		t.Fatalf("lockstep engine stats %+v: expected decodes and flushes%s", stats, repro)
	}
}

// TestLockstepCVESuite runs the CVE benchmark suite end to end under
// differential lockstep dispatch. In -short mode it keeps a spread of
// six entries; the full 30-CVE pass runs in CI's long configuration.
func TestLockstepCVESuite(t *testing.T) {
	entries := cvebench.All()
	if testing.Short() {
		var subset []*cvebench.Entry
		for i := 0; i < len(entries); i += 5 {
			subset = append(subset, entries[i])
		}
		entries = subset
	}
	for _, e := range entries {
		t.Run(e.CVE, func(t *testing.T) {
			d, err := NewDeploymentDispatch("4.4", 1, kcrypto.HashSHA256, isa.DispatchLockstep, e)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			lockstepCycle(t, d.System, e, "")
		})
	}
}

// TestLockstepCorpusArchetypes boots one generated case per corpusgen
// archetype under lockstep dispatch and runs the full patch cycle.
// Cases come off the deterministic seed stream, so every failure
// message names the exact seed that rebuilds the failing kernel:
// reproduce with kshot-corpus shrink -seed <seed>.
func TestLockstepCorpusArchetypes(t *testing.T) {
	const master = 0x10C4_57E9
	picked := make(map[string]*corpusgen.Case, len(corpusgen.Archetypes))
	for i := 0; len(picked) < len(corpusgen.Archetypes) && i < 256; i++ {
		c := corpusgen.GenCase(corpusgen.CaseSeed(master, i))
		if _, ok := picked[c.Archetype]; !ok {
			picked[c.Archetype] = c
		}
	}
	if len(picked) != len(corpusgen.Archetypes) {
		t.Fatalf("seed stream yielded %d/%d archetypes in 256 draws", len(picked), len(corpusgen.Archetypes))
	}

	for _, arch := range corpusgen.Archetypes {
		c := picked[arch]
		t.Run(arch, func(t *testing.T) {
			entry := c.Entry()
			srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entry))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			srv.RegisterPatch(entry.SourcePatch())

			sys, err := core.NewSystem(core.Options{
				Version:       c.Version,
				NumVCPUs:      1,
				Dispatch:      isa.DispatchLockstep,
				ExtraFiles:    map[string]string{c.File: c.Vuln},
				ServerAddr:    srv.Addr(),
				HashAlg:       kcrypto.HashSHA256,
				DisableFtrace: !c.Ftrace,
				DisableInline: !c.Inline,
			})
			if err != nil {
				t.Fatalf("boot: %v (reproduce: kshot-corpus shrink -seed %#x)", err, c.Seed)
			}
			defer sys.Close()

			lockstepCycle(t, sys, entry, repro(c))
		})
	}
}

func repro(c *corpusgen.Case) string {
	return fmt.Sprintf(" (reproduce: kshot-corpus shrink -seed %#x)", c.Seed)
}
