package evalharness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/introspect"
	"kshot/internal/mem"
	"kshot/internal/patchserver"
	"kshot/internal/workload"
)

// Detection-latency experiment: with the event-driven introspection
// layer sweeping kernel text at a fixed period, how long does a
// kernel-text tamper go unnoticed, and what does the always-on event
// channel cost a running workload? The sweep period is the knob: a
// shorter period shrinks the detection window and buys it with sweep
// overhead.

// DetectionPeriodResult is one sweep period's latency distribution.
type DetectionPeriodResult struct {
	Period time.Duration `json:"period_ns"`
	Trials int           `json:"trials"`

	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	Mean time.Duration `json:"mean_ns"`

	// Sweeps is how many background sweeps ran during the trials —
	// the work the period buys the latency with.
	Sweeps uint64 `json:"sweeps"`
}

// DetectionBenchResult is the full experiment: latency versus sweep
// period, plus the event channel's cost to a patched workload.
type DetectionBenchResult struct {
	CVE     string                  `json:"cve"`
	Periods []DetectionPeriodResult `json:"periods"`

	// BaselineOpsPerSec is workload throughput with introspection
	// disabled (every hook nil); EnabledOpsPerSec has the channel
	// wired and the fastest sweep period running. OverheadPct is the
	// relative cost.
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	EnabledOpsPerSec  float64 `json:"enabled_ops_per_sec"`
	OverheadPct       float64 `json:"overhead_pct"`
	WorkloadOps       uint64  `json:"workload_ops"`
}

// detectionDeployment boots one introspected system against a shared
// server/template fixture.
type detectionFixture struct {
	srv *patchserver.Server
	tc  *core.TemplateCache
	e   *cvebench.Entry
}

func newDetectionFixture(cve string) (*detectionFixture, error) {
	e, ok := cvebench.Get(cve)
	if !ok {
		return nil, fmt.Errorf("unknown CVE %q", cve)
	}
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e))
	if err != nil {
		return nil, err
	}
	srv.RegisterPatch(e.SourcePatch())
	return &detectionFixture{srv: srv, tc: core.NewTemplateCache(), e: e}, nil
}

func (f *detectionFixture) Close() {
	f.tc.Close()
	f.srv.Close()
}

func (f *detectionFixture) system(cfg *introspect.Config) (*core.System, error) {
	return core.NewSystemCtx(context.Background(), core.Options{
		Version:       "4.4",
		ExtraFiles:    map[string]string{f.e.File: f.e.Vuln},
		ServerAddr:    f.srv.Addr(),
		TemplateCache: f.tc,
		Introspection: cfg,
	})
}

// measureDetection runs trials tamper-inject/detect cycles at one
// background sweep period and returns the latency distribution.
func (f *detectionFixture) measureDetection(period time.Duration, trials int) (DetectionPeriodResult, error) {
	out := DetectionPeriodResult{Period: period, Trials: trials}
	sys, err := f.system(&introspect.Config{SweepEvery: period})
	if err != nil {
		return out, err
	}
	defer sys.Close()
	det := sys.Introspection()
	ch := sys.IntrospectionEvents()

	addr, err := sys.Kernel.FuncAddr(f.e.Functions[0])
	if err != nil {
		return out, err
	}
	lats := make([]time.Duration, 0, trials)
	var mean time.Duration
	for i := 0; i < trials; i++ {
		tgt := addr + uint64(i%16)
		var orig [1]byte
		if err := sys.Machine.Mem.Read(mem.PrivKernel, tgt, orig[:]); err != nil {
			return out, err
		}
		if err := sys.Machine.Mem.Write(mem.PrivKernel, tgt, []byte{orig[0] ^ 0xFF}); err != nil {
			return out, err
		}
		deadline := time.Now().Add(5*time.Second + 10*period)
		var lat time.Duration
		for found := false; !found; {
			for _, v := range det.TakeVerdicts() {
				if v.Kind == introspect.TamperDetected {
					lat, found = v.Latency, true
					break
				}
			}
			if !found {
				if time.Now().After(deadline) {
					return out, fmt.Errorf("tamper at %#x never detected (period %v)", tgt, period)
				}
				time.Sleep(period / 4)
			}
		}
		// Restore under a trusted window + non-patch SMI bracket, the
		// way the pipeline repairs text: the event classifies as
		// in-SMI and the window defers the concurrent sweeps' frame
		// diff until the close rebaselines.
		det.BeginTrustedWindow()
		ch.OnSMIEnter(0)
		if err := sys.Machine.Mem.Write(mem.PrivKernel, tgt, orig[:]); err != nil {
			det.EndTrustedWindow()
			return out, err
		}
		ch.OnSMIExit(0, 0)
		det.EndTrustedWindow()
		lats = append(lats, lat)
		mean += lat
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out.P50 = lats[len(lats)/2]
	out.P99 = lats[(len(lats)*99)/100]
	out.Mean = mean / time.Duration(len(lats))
	out.Sweeps = det.Stats().Sweeps
	return out, nil
}

// measureWorkload applies the patch and drives the mixed workload for
// ops operations, with introspection either absent or sweeping.
func (f *detectionFixture) measureWorkload(cfg *introspect.Config, ops uint64) (float64, error) {
	sys, err := f.system(cfg)
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	if _, err := sys.Apply(context.Background(), f.e.CVE); err != nil {
		return 0, err
	}
	stats, err := workload.New(sys.Kernel, workload.Mixed).RunOps(ops)
	if err != nil {
		return 0, err
	}
	return stats.OpsPerSec(), nil
}

// RunDetectionBench measures tamper-detection latency at each sweep
// period (trials injections per period) and the workload overhead of
// enabling the event channel, sweeping at the fastest given period.
// Zero-valued arguments select the defaults the EXPERIMENTS tables
// use.
func RunDetectionBench(trials int, periods []time.Duration, ops uint64) (*DetectionBenchResult, error) {
	if trials < 1 {
		trials = 20
	}
	if len(periods) == 0 {
		periods = []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	}
	if ops == 0 {
		ops = 20000
	}
	f, err := newDetectionFixture("CVE-2014-0196")
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := &DetectionBenchResult{CVE: f.e.CVE, WorkloadOps: ops}
	fastest := periods[0]
	for _, p := range periods {
		if p < fastest {
			fastest = p
		}
		r, err := f.measureDetection(p, trials)
		if err != nil {
			return nil, err
		}
		out.Periods = append(out.Periods, r)
	}

	if out.BaselineOpsPerSec, err = f.measureWorkload(nil, ops); err != nil {
		return nil, err
	}
	if out.EnabledOpsPerSec, err = f.measureWorkload(&introspect.Config{SweepEvery: fastest}, ops); err != nil {
		return nil, err
	}
	if out.BaselineOpsPerSec > 0 {
		out.OverheadPct = 100 * (1 - out.EnabledOpsPerSec/out.BaselineOpsPerSec)
	}
	return out, nil
}
