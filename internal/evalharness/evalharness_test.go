package evalharness

import (
	"strings"
	"testing"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
)

func TestSizePointSmall(t *testing.T) {
	pt, err := RunSizePoint(400, 2, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Size != 400 {
		t.Errorf("size = %d", pt.Size)
	}
	for name, d := range map[string]time.Duration{
		"fetch": pt.Fetch, "prep": pt.Preprocess, "pass": pt.Pass,
		"keygen": pt.KeyGen, "decrypt": pt.Decrypt, "verify": pt.Verify,
		"apply": pt.Apply, "switch": pt.Switch,
	} {
		if d <= 0 {
			t.Errorf("stage %s = %v", name, d)
		}
	}
	if pt.SMMTotal() >= pt.SGXTotal() {
		t.Errorf("SMM total %v >= SGX total %v at 400B", pt.SMMTotal(), pt.SGXTotal())
	}
}

func TestSizeSweepShapeIsLinear(t *testing.T) {
	// Two decades apart: the per-stage times must scale roughly
	// linearly (fixed costs aside) — the paper's headline shape.
	small, err := RunSizePoint(4<<10, 1, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunSizePoint(400<<10, 1, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.Preprocess) / float64(small.Preprocess)
	if ratio < 30 || ratio > 300 {
		t.Errorf("preprocess scaling 4KB->400KB = %.1fx, want ~100x", ratio)
	}
	if big.Verify <= small.Verify || big.Apply <= small.Apply {
		t.Error("SMM stages did not grow with size")
	}
	// The paper's crossover: at small sizes fixed SMM costs dominate;
	// verification dominates among size-dependent SMM stages.
	if big.Verify <= big.Decrypt {
		t.Error("verification should dominate decryption (SHA-256 vs AES-CTR)")
	}
}

func TestSDBMVerifyCheaper(t *testing.T) {
	sha, err := RunSizePoint(400<<10, 1, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	sdbm, err := RunSizePoint(400<<10, 1, kcrypto.HashSDBM)
	if err != nil {
		t.Fatal(err)
	}
	if sdbm.Verify >= sha.Verify {
		t.Errorf("SDBM verify %v not cheaper than SHA-256 %v", sdbm.Verify, sha.Verify)
	}
}

func TestTableRendering(t *testing.T) {
	points := []SizePoint{{
		Size: 4096, Fetch: 200 * time.Microsecond,
		Preprocess: 8 * time.Millisecond, Pass: 51 * time.Microsecond,
		KeyGen: 5200, Decrypt: 1270, Verify: 8520, Apply: 6920,
		Switch: 34600,
	}}
	t2 := Table2(points, 100)
	if !strings.Contains(t2.String(), "4KB") {
		t.Error("Table2 missing size row")
	}
	t3 := Table3(points, 100)
	if !strings.Contains(t3.String(), "key generation") {
		t.Error("Table3 missing footnote")
	}
}

func TestFigureCVEsAndRendering(t *testing.T) {
	points, err := RunFigureCVEs(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("figure points = %d, want 6", len(points))
	}
	// Sizes differ across CVEs, so the figures show a spread.
	sizes := map[int]bool{}
	for _, p := range points {
		if p.Bytes == 0 {
			t.Errorf("%s: zero payload", p.CVE)
		}
		sizes[p.Bytes] = true
		if p.Stages.Preprocess <= 0 || p.Stages.Apply <= 0 {
			t.Errorf("%s: empty stages %+v", p.CVE, p.Stages)
		}
	}
	if len(sizes) < 4 {
		t.Errorf("only %d distinct payload sizes across 6 CVEs", len(sizes))
	}
	f4, f5 := Figure4(points), Figure5(points)
	if !strings.Contains(f4.String(), "CVE-2014-4608") || !strings.Contains(f5.String(), "CVE-2016-5195") {
		t.Error("figures missing CVE labels")
	}
}

func TestTable1Builds(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, probe := range []string{"CVE-2014-0196", "CVE-2018-10124", "n_tty_write", "1,2"} {
		if !strings.Contains(out, probe) {
			t.Errorf("Table1 missing %q", probe)
		}
	}
}

func TestTable5Comparison(t *testing.T) {
	rows, err := RunTable5("CVE-2014-4157")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]ComparisonRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	kup, kshot, kpatch, karma := byName["KUP"], byName["KShot"], byName["kpatch"], byName["KARMA"]
	// Paper shape: KUP seconds >> kpatch ms >> KShot tens of µs;
	// KARMA fastest for tiny patches; only KShot survives kernel
	// compromise; KUP memory far above KShot's 18MB? (KUP checkpoints
	// app state; here the kernel heap) — KShot's reservation is fixed.
	if kup.Pause < time.Second {
		t.Errorf("KUP pause %v below seconds scale", kup.Pause)
	}
	if kpatch.Pause < 500*time.Microsecond || kpatch.Pause > 100*time.Millisecond {
		t.Errorf("kpatch pause %v outside ms scale", kpatch.Pause)
	}
	if kshot.Pause > 500*time.Microsecond {
		t.Errorf("KShot pause %v above tens-of-µs scale", kshot.Pause)
	}
	if kshot.Pause >= kpatch.Pause || kpatch.Pause >= kup.Pause {
		t.Error("pause ordering KShot < kpatch < KUP violated")
	}
	if karma.Total >= kshot.Pause {
		t.Logf("note: KARMA total %v vs KShot pause %v", karma.Total, kshot.Pause)
	}
	if !kshot.Trusted || kup.Trusted || kpatch.Trusted || karma.Trusted {
		t.Error("trust column wrong")
	}
	if kshot.MemoryBytes != 18<<20 {
		t.Errorf("KShot memory %d, want 18MB", kshot.MemoryBytes)
	}
	out := Table5(rows).String()
	if !strings.Contains(out, "KShot") || !strings.Contains(out, "18MB") {
		t.Error("Table5 render incomplete")
	}
}

func TestTable4Render(t *testing.T) {
	out := Table4().String()
	for _, s := range []string{"Dyninst", "Kitsune", "KShot", "literature", "measured"} {
		if !strings.Contains(out, s) {
			t.Errorf("Table4 missing %q", s)
		}
	}
}

func TestRQ1SingleEntry(t *testing.T) {
	e := mustEntry(t, "CVE-2017-17053")
	row, err := runRQ1One("4.4", e)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Passed() {
		t.Errorf("RQ1 row failed: %+v", row)
	}
	out := RQ1Table([]RQ1Row{row}).String()
	if !strings.Contains(out, "1/1 patches") {
		t.Errorf("RQ1 table summary wrong:\n%s", out)
	}
}

func TestOverheadSmallStorm(t *testing.T) {
	res, err := RunOverhead(10, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Ops == 0 || res.Disturbed.Ops == 0 {
		t.Fatal("workload produced no ops")
	}
	if res.PausePerOp <= 0 {
		t.Error("no pause accounted")
	}
	// The pause per patch must stay within the paper's tens-of-µs
	// scale for this ~160-byte patch.
	if res.PausePerOp > 500*time.Microsecond {
		t.Errorf("pause per patch %v above scale", res.PausePerOp)
	}
}

func mustEntry(t *testing.T, id string) *cvebench.Entry {
	t.Helper()
	e, ok := cvebench.Get(id)
	if !ok {
		t.Fatalf("unknown CVE %s", id)
	}
	return e
}

func TestRQ1On314Kernel(t *testing.T) {
	// The sweep works on the older kernel too (spot check: one CVE of
	// each type class).
	for _, id := range []string{"CVE-2014-0196", "CVE-2017-8251", "CVE-2015-8963"} {
		e := mustEntry(t, id)
		row, err := runRQ1One("3.14", e)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !row.Passed() {
			t.Errorf("%s failed on 3.14: %+v", id, row)
		}
	}
}
