package evalharness

import (
	"context"
	"fmt"
	"io"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/obs"
	"kshot/internal/report"
	"kshot/internal/timing"
)

// PhaseOptions configures a phase-breakdown run.
type PhaseOptions struct {
	// Version is the kernel version to deploy (default "4.4").
	Version string

	// BatchSize/Workers tune the ApplyAll pipeline (pipeline defaults
	// when zero).
	BatchSize int
	Workers   int

	// SyncFetch single-threads the pipeline so the emitted trace is
	// deterministic — the golden test sets it; interactive runs need
	// not.
	SyncFetch bool

	// TraceCapacity sizes the event ring (obs.DefaultTraceCapacity when
	// zero).
	TraceCapacity int

	// Wall stamps trace events and paces retries; nil means real time,
	// the golden test passes timing.NewFakeWall() for replayable
	// output.
	Wall timing.WallClock

	// Dispatch selects the vCPU execution engine (blocks by default).
	// The rendered report must be byte-identical across modes — the
	// golden test asserts it for both blocks and oracle.
	Dispatch isa.Dispatch
}

// CVEPhase is one per-CVE row of the phase-breakdown table: the virtual
// time each paper phase consumed for that patch.
type CVEPhase struct {
	CVE   string
	Wave  int
	Bytes int

	Fetch    time.Duration // T_fetch: helper download
	Prep     time.Duration // T_prep: enclave preprocessing + mem_W pass
	Verify   time.Duration // T_verify: in-SMM keygen + decrypt + verify
	SMIEnter time.Duration // T_smi_enter: world switch into SMM
	Apply    time.Duration // T_apply: in-SMM application
	Resume   time.Duration // T_resume: RSM back to the OS
}

// Downtime is the OS-pause share of the patch: everything from SMI
// entry to resume.
func (c CVEPhase) Downtime() time.Duration {
	return c.Verify + c.SMIEnter + c.Apply + c.Resume
}

// PhaseBreakdown is the outcome of RunPhaseBreakdown: per-CVE phase
// rows plus the observability snapshot sources that produced them.
type PhaseBreakdown struct {
	Rows  []CVEPhase
	Waves int

	SMIs     uint64
	SMMPause time.Duration

	// Hooks holds the tracer and metrics registry the run populated;
	// RenderPhaseReport snapshots both.
	Hooks *obs.Hooks
}

// RunPhaseBreakdown deploys the full Table I suite through the batched
// ApplyAll pipeline with observability hooks installed, one
// conflict-free wave per deployment, and maps each patch's stage times
// onto the paper's phase vocabulary. The boot-time key-exchange SMI
// happens before the hooks are installed, so the trace and metrics
// cover exactly the patching work.
func RunPhaseBreakdown(opts PhaseOptions) (*PhaseBreakdown, error) {
	if opts.Version == "" {
		opts.Version = "4.4"
	}
	hooks := obs.NewHooks(opts.TraceCapacity, opts.Wall)
	waves := cvebench.ConflictFreeWaves(cvebench.All())
	out := &PhaseBreakdown{Waves: len(waves), Hooks: hooks}
	ctx := context.Background()
	model := timing.Calibrated()

	applyOpts := []core.ApplyOption{}
	if opts.BatchSize > 0 {
		applyOpts = append(applyOpts, core.WithBatchSize(opts.BatchSize))
	}
	if opts.Workers > 0 {
		applyOpts = append(applyOpts, core.WithFetchWorkers(opts.Workers))
	}
	if opts.SyncFetch {
		applyOpts = append(applyOpts, core.WithSyncFetch())
	}

	for wi, wave := range waves {
		cves := make([]string, len(wave))
		for i, e := range wave {
			cves[i] = e.CVE
		}
		d, err := NewDeploymentDispatch(opts.Version, 2, kcrypto.HashSHA256, opts.Dispatch, wave...)
		if err != nil {
			return nil, fmt.Errorf("wave %d deployment: %w", wi, err)
		}
		d.System.SetWallClock(opts.Wall)
		d.System.SetObserver(hooks)
		hooks.Point(obs.PhaseWave, fmt.Sprintf("wave[%d]:%d", wi, len(wave)), wi)

		rep, err := d.System.ApplyAll(ctx, cves, applyOpts...)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("wave %d ApplyAll: %w", wi, err)
		}
		if len(rep.Failed) > 0 {
			d.Close()
			for cve, ferr := range rep.Failed {
				return nil, fmt.Errorf("wave %d ApplyAll %s: %w", wi, cve, ferr)
			}
		}
		out.SMIs += rep.SMIs
		out.SMMPause += rep.SMMPause
		for _, r := range rep.Reports {
			st := r.Stages
			enter := splitSwitch(st.Switch, model)
			out.Rows = append(out.Rows, CVEPhase{
				CVE:      r.ID,
				Wave:     wi,
				Bytes:    st.PayloadBytes,
				Fetch:    st.Fetch,
				Prep:     st.Preprocess + st.Pass,
				Verify:   st.KeyGen + st.Decrypt + st.Verify,
				SMIEnter: enter,
				Apply:    st.Apply,
				Resume:   st.Switch - enter,
			})
		}
		d.Close()
	}
	return out, nil
}

// splitSwitch apportions a patch's world-switch share between SMI entry
// and resume by the model's SMMEntry:SMMExit ratio. The share may be
// amortized (batched SMIs), so the split scales rather than reading the
// model values directly.
func splitSwitch(sw time.Duration, model timing.Model) time.Duration {
	total := model.SMMEntry + model.SMMExit
	if total <= 0 {
		return sw / 2
	}
	return time.Duration(float64(sw) * float64(model.SMMEntry) / float64(total))
}

// PhaseTable renders the per-CVE phase rows, sorted by CVE ID so
// concurrent runs produce identical tables.
func PhaseTable(b *PhaseBreakdown) *report.Table {
	t := report.NewTable("Per-CVE phase breakdown: 30-CVE batched deployment (us)",
		"CVE", "Wave", "Bytes", "T_fetch", "T_prep", "T_verify", "T_smi_enter", "T_apply", "T_resume", "Downtime")
	var downtime time.Duration
	for _, r := range b.Rows {
		downtime += r.Downtime()
		t.AddRow(r.CVE, fmt.Sprintf("%d", r.Wave), report.Bytes(r.Bytes),
			report.Us(r.Fetch), report.Us(r.Prep), report.Us(r.Verify),
			report.Us(r.SMIEnter), report.Us(r.Apply), report.Us(r.Resume),
			report.Us(r.Downtime()))
	}
	t.SortRows(0)
	t.AddNote(fmt.Sprintf("%d patches over %d conflict-free waves; %d SMIs, total OS pause %sus",
		len(b.Rows), b.Waves, b.SMIs, report.Us(b.SMMPause)))
	t.AddNote(fmt.Sprintf("summed per-patch downtime %sus (batched SMIs amortize the world switch)",
		report.Us(downtime)))
	return t
}

// RenderPhaseReport writes the full observability report: the phase
// table, the metrics snapshot, and the event trace. The golden test
// asserts this output byte-for-byte; kshot-bench --trace prints it.
func RenderPhaseReport(w io.Writer, b *PhaseBreakdown) error {
	if err := PhaseTable(b).Render(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	if err := b.Hooks.Metrics.Snapshot().RenderText(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	return b.Hooks.Tracer.Snapshot().RenderText(w)
}
