package evalharness

import (
	"context"
	"fmt"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/report"
)

// PipelinedComparison is the outcome of the serial-vs-pipelined
// multi-CVE experiment: the same suite applied once through the serial
// per-patch path and once through the batched ApplyAll pipeline, on
// identically provisioned deployments.
type PipelinedComparison struct {
	Patches int // CVEs applied per mode
	Waves   int // conflict-free deployment waves the suite needed

	// Serial per-patch path: one SMI per patch.
	SerialSMIs  uint64
	SerialPause time.Duration // total virtual OS pause

	// Batched pipeline: fewer SMIs, amortized world switches.
	BatchSMIs  uint64
	BatchPause time.Duration

	// Pipeline traffic counters summed over the waves.
	Batches  int
	Singles  int
	Retries  int
	Degraded int
}

// PauseReduction is the fraction of serial OS-pause time the batched
// pipeline eliminated.
func (p PipelinedComparison) PauseReduction() float64 {
	if p.SerialPause == 0 {
		return 0
	}
	return 1 - float64(p.BatchPause)/float64(p.SerialPause)
}

// RunPipelinedComparison applies every Table I CVE twice — serially
// and through the batched pipeline — and reports SMI counts and total
// OS pause for both. The suite is partitioned into conflict-free waves
// (entries defining the same kernel function cannot share a kernel);
// each wave gets a fresh deployment per mode so the two modes patch
// identical machines.
func RunPipelinedComparison(version string, batchSize, workers int) (*PipelinedComparison, error) {
	waves := cvebench.ConflictFreeWaves(cvebench.All())
	out := &PipelinedComparison{Waves: len(waves)}
	ctx := context.Background()

	for wi, wave := range waves {
		cves := make([]string, len(wave))
		for i, e := range wave {
			cves[i] = e.CVE
		}

		// Serial mode: one SMI per patch.
		d, err := NewDeployment(version, 2, kcrypto.HashSHA256, wave...)
		if err != nil {
			return nil, fmt.Errorf("wave %d serial deployment: %w", wi, err)
		}
		smis0 := d.System.SMM.Entries()
		pause0 := d.System.SMM.TotalPause()
		for _, cve := range cves {
			if _, err := d.System.Apply(ctx, cve); err != nil {
				d.Close()
				return nil, fmt.Errorf("wave %d serial apply %s: %w", wi, cve, err)
			}
		}
		out.SerialSMIs += d.System.SMM.Entries() - smis0
		out.SerialPause += d.System.SMM.TotalPause() - pause0
		d.Close()

		// Pipelined mode: batched SMIs on an identical fresh machine.
		d, err = NewDeployment(version, 2, kcrypto.HashSHA256, wave...)
		if err != nil {
			return nil, fmt.Errorf("wave %d pipelined deployment: %w", wi, err)
		}
		rep, err := d.System.ApplyAll(ctx, cves,
			core.WithBatchSize(batchSize), core.WithFetchWorkers(workers))
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("wave %d ApplyAll: %w", wi, err)
		}
		if len(rep.Failed) > 0 {
			d.Close()
			for cve, ferr := range rep.Failed {
				return nil, fmt.Errorf("wave %d ApplyAll %s: %w", wi, cve, ferr)
			}
		}
		out.BatchSMIs += rep.SMIs
		out.BatchPause += rep.SMMPause
		out.Batches += rep.Batches
		out.Singles += rep.Singles
		out.Retries += rep.Retries
		out.Degraded += rep.Degraded
		out.Patches += len(rep.Reports)
		d.Close()
	}
	return out, nil
}

// PipelinedTable renders the serial-vs-pipelined comparison.
func PipelinedTable(p *PipelinedComparison, batchSize, workers int) *report.Table {
	t := report.NewTable("Pipelined multi-CVE deployment vs serial (Table I suite)",
		"Mode", "Patches", "SMIs", "Total OS Pause")
	t.AddRow("serial Apply", fmt.Sprintf("%d", p.Patches),
		fmt.Sprintf("%d", p.SerialSMIs), report.Us(p.SerialPause)+"us")
	t.AddRow("pipelined ApplyAll", fmt.Sprintf("%d", p.Patches),
		fmt.Sprintf("%d", p.BatchSMIs), report.Us(p.BatchPause)+"us")
	t.AddNote(fmt.Sprintf("batch size %d, %d fetch workers, %d conflict-free waves; pause reduction %.1f%%",
		batchSize, workers, p.Waves, 100*p.PauseReduction()))
	t.AddNote(fmt.Sprintf("%d batch SMIs + %d per-patch SMIs, %d retries, %d degraded",
		p.Batches, p.Singles, p.Retries, p.Degraded))
	return t
}
