package evalharness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"kshot/internal/core"
	"kshot/internal/corpusgen"
	"kshot/internal/cvebench"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/patchserver"
	"kshot/internal/report"
)

// Divergence is one disagreement between the corpus generator's
// prediction and what the live pipeline actually did. Every divergence
// is seed-reproducible: regenerating the named seed rebuilds the exact
// case, so the report IS the minimized reproducer.
type Divergence struct {
	// Seed regenerates the case (corpusgen.GenCase(Seed)).
	Seed uint64

	// ID and Archetype identify the case in sweep output.
	ID        string
	Archetype string

	// Stage names the pipeline stage that diverged (build-pre,
	// patch-build, funcs, type, traced, new-globals, prepare,
	// trampoline, e2e-*...).
	Stage string

	// Detail says what was predicted and what the pipeline produced.
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s seed=%#016x arch=%s stage=%s: %s (reproduce: kshot-corpus shrink -seed %#x)",
		d.ID, d.Seed, d.Archetype, d.Stage, d.Detail, d.Seed)
}

// CaseResult is the differential verdict for one generated case.
type CaseResult struct {
	Case        *corpusgen.Case
	Divergences []Divergence

	// Checked/Matched count per-function prediction checks by expected
	// Type, feeding the sweep's classification-accuracy table.
	Checked map[patch.Type]int
	Matched map[patch.Type]int
}

func (r *CaseResult) diverge(stage, format string, a ...any) {
	r.Divergences = append(r.Divergences, Divergence{
		Seed: r.Case.Seed, ID: r.Case.ID, Archetype: r.Case.Archetype,
		Stage: stage, Detail: fmt.Sprintf(format, a...),
	})
}

// corpusPlacement is the synthetic reserved-memory layout the analysis
// stage prepares against (the e2e stage uses the live handler's real
// placement instead).
var corpusPlacement = patch.Placement{
	MemXBase: 0x0600_0000, MemXSize: 1 << 20,
	DataAllocBase: 0x0700_0000, DataAllocSize: 1 << 20,
}

// VerifyCase differentially verifies one generated case against the
// real pipeline. The analysis stage builds the vulnerable and fixed
// kernels under the case's exact configuration, runs the server-side
// patch build (source diff + call-graph inlining analysis + binary
// matching), and checks every generator prediction: the patched
// function set, each function's Type 1/2/3 classification, its ftrace
// prologue, the new globals, and — after preprocessing — the
// trampoline site math (entry vs entry+5, jmp displacement into
// mem_X). With e2e set it additionally boots a kshot.System with the
// case's config, confirms the exploit fires, applies the patch through
// the full SGX+SMM path, re-checks the live trampoline bytes, confirms
// the exploit is dead, rolls back, and requires the post-rollback
// kernel.text frame-diff to be empty and the exploit to fire again.
func VerifyCase(c *corpusgen.Case, e2e bool) *CaseResult {
	res := &CaseResult{
		Case:    c,
		Checked: make(map[patch.Type]int),
		Matched: make(map[patch.Type]int),
	}

	cfg := kernel.BuildConfig{Version: c.Version, Ftrace: c.Ftrace, Inline: c.Inline}
	build := func(src string, stage string) (patch.ImagePair, bool) {
		st, err := kernel.BaseTreeWithConfig(cfg)
		if err != nil {
			res.diverge(stage, "base tree: %v", err)
			return patch.ImagePair{}, false
		}
		st.AddFile(c.File, src)
		img, unit, err := st.Build()
		if err != nil {
			res.diverge(stage, "build: %v", err)
			return patch.ImagePair{}, false
		}
		return patch.ImagePair{Img: img, Unit: unit}, true
	}
	pre, ok := build(c.Vuln, "build-pre")
	if !ok {
		return res
	}
	post, ok := build(c.Fixed, "build-post")
	if !ok {
		return res
	}

	bp, err := patch.Build(c.ID, c.Version, pre, post)
	if err != nil {
		res.diverge("patch-build", "%v", err)
		return res
	}

	// Patched-function set.
	got := make(map[string]patch.FuncPatch, len(bp.Funcs))
	for _, f := range bp.Funcs {
		got[f.Name] = f
	}
	for _, name := range c.Expect.FuncNames() {
		if _, ok := got[name]; !ok {
			res.diverge("funcs", "predicted patch to %s, pipeline did not produce one", name)
		}
	}
	for name := range got {
		if _, ok := c.Expect.Funcs[name]; !ok {
			res.diverge("funcs", "pipeline patched %s, generator predicted no patch", name)
		}
	}

	// Per-function classification, newness, and ftrace prologue.
	for name, want := range c.Expect.Funcs {
		fp, ok := got[name]
		if !ok {
			continue // already reported under funcs
		}
		res.Checked[want.Type]++
		if fp.Type == want.Type {
			res.Matched[want.Type]++
		} else {
			res.diverge("type", "%s: predicted Type %s, pipeline classified Type %s", name, want.Type, fp.Type)
		}
		if fp.New != want.New {
			res.diverge("new", "%s: predicted new=%v, pipeline says new=%v", name, want.New, fp.New)
		}
		if fp.Traced != want.Traced {
			res.diverge("traced", "%s: predicted traced=%v, pipeline says traced=%v", name, want.Traced, fp.Traced)
		}
	}

	// Distinct types (the Table I column).
	if got, want := typesKey(bp.Types()), typesKey(c.Expect.Types); got != want {
		res.diverge("types", "predicted types {%s}, pipeline produced {%s}", want, got)
	}

	// New globals.
	var newGlobals []string
	for _, g := range bp.Globals {
		if g.New {
			newGlobals = append(newGlobals, g.Name)
		}
	}
	sort.Strings(newGlobals)
	if got, want := strings.Join(newGlobals, ","), strings.Join(c.Expect.NewGlobals, ","); got != want {
		res.diverge("new-globals", "predicted new globals [%s], pipeline produced [%s]", want, got)
	}

	// Trampoline site math, against the pre image's symbol table.
	pp, err := patch.Prepare(bp, pre.Img.Symbols, corpusPlacement, 0, 0)
	if err != nil {
		res.diverge("prepare", "%v", err)
		return res
	}
	for _, pf := range pp.Funcs {
		want, ok := c.Expect.Funcs[pf.Name]
		if !ok {
			continue
		}
		if want.New {
			if pf.TAddr != 0 || pf.TrampolineBytes != nil {
				res.diverge("trampoline", "%s: new function must get no trampoline (TAddr=%#x)", pf.Name, pf.TAddr)
			}
			continue
		}
		sym, ok := pre.Img.Symbols.Lookup(pf.Name)
		if !ok {
			res.diverge("trampoline", "%s: not in pre-image symbol table", pf.Name)
			continue
		}
		skip := uint64(0)
		if want.Traced {
			skip = isa.FtracePrologueLen
		}
		if pf.TAddr != sym.Addr || pf.TSize != sym.Size {
			res.diverge("trampoline", "%s: TAddr/TSize %#x/%d, want %#x/%d", pf.Name, pf.TAddr, pf.TSize, sym.Addr, sym.Size)
		}
		if pf.TrampolineAt != sym.Addr+skip {
			res.diverge("trampoline", "%s: trampoline at %#x, predicted entry+%d = %#x", pf.Name, pf.TrampolineAt, skip, sym.Addr+skip)
		}
		ds, err := isa.Disassemble(pf.TrampolineBytes, pf.TrampolineAt)
		if err != nil || len(ds) != 1 || ds[0].Inst.Op != isa.OpJmp {
			res.diverge("trampoline", "%s: trampoline bytes are not a single jmp (%v)", pf.Name, err)
			continue
		}
		if tgt, _ := ds[0].BranchTarget(); tgt != pf.PAddr {
			res.diverge("trampoline", "%s: trampoline jumps to %#x, payload placed at %#x", pf.Name, tgt, pf.PAddr)
		}
	}

	if e2e && len(res.Divergences) == 0 {
		verifyCaseE2E(c, res)
	}
	return res
}

// verifyCaseE2E drives the case through a live deployment: boot with
// the case's config, exploit, apply, inspect the live trampolines,
// re-exploit, roll back, frame-diff kernel.text, re-exploit.
func verifyCaseE2E(c *corpusgen.Case, res *CaseResult) {
	entry := c.Entry()
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entry))
	if err != nil {
		res.diverge("e2e-setup", "patch server: %v", err)
		return
	}
	defer srv.Close()
	srv.RegisterPatch(entry.SourcePatch())

	sys, err := core.NewSystem(core.Options{
		Version:       c.Version,
		NumVCPUs:      1,
		ExtraFiles:    map[string]string{c.File: c.Vuln},
		ServerAddr:    srv.Addr(),
		HashAlg:       kcrypto.HashSHA256,
		DisableFtrace: !c.Ftrace,
		DisableInline: !c.Inline,
	})
	if err != nil {
		res.diverge("e2e-setup", "boot: %v", err)
		return
	}
	defer sys.Close()

	snap := sys.Machine.Mem.Snapshot()
	probe := func(stage string, wantVulnerable bool) bool {
		r, err := entry.Exploit(sys.Kernel, 0)
		if err != nil {
			res.diverge(stage, "exploit probe: %v", err)
			return false
		}
		if r.Vulnerable != wantVulnerable {
			res.diverge(stage, "exploit vulnerable=%v, want %v (%s)", r.Vulnerable, wantVulnerable, r.Detail)
			return false
		}
		return true
	}

	if !probe("e2e-pre-exploit", true) {
		return
	}
	if _, err := sys.Apply(context.Background(), c.ID); err != nil {
		res.diverge("e2e-apply", "%v", err)
		return
	}

	// Live trampoline bytes: every non-new patched function must now
	// begin (past its prologue) with a jmp into the handler's mem_X.
	place := sys.Handler.Placement()
	for name, want := range c.Expect.Funcs {
		if want.New {
			continue
		}
		addr, err := sys.Kernel.FuncAddr(name)
		if err != nil {
			res.diverge("e2e-trampoline", "%s: %v", name, err)
			continue
		}
		b, err := sys.Kernel.FuncBytes(name)
		if err != nil {
			res.diverge("e2e-trampoline", "%s: %v", name, err)
			continue
		}
		skip := 0
		if want.Traced {
			skip = isa.FtracePrologueLen
		}
		if len(b) < skip+isa.FtracePrologueLen {
			res.diverge("e2e-trampoline", "%s: live function too small (%d bytes) for a trampoline at +%d", name, len(b), skip)
			continue
		}
		ds, err := isa.Disassemble(b[skip:skip+isa.FtracePrologueLen], addr+uint64(skip))
		if err != nil || len(ds) != 1 || ds[0].Inst.Op != isa.OpJmp {
			res.diverge("e2e-trampoline", "%s: live bytes at entry+%d are not a jmp (%v)", name, skip, err)
			continue
		}
		tgt, _ := ds[0].BranchTarget()
		if tgt < place.MemXBase || tgt >= place.MemXBase+place.MemXSize {
			res.diverge("e2e-trampoline", "%s: live trampoline targets %#x, outside mem_X [%#x,%#x)",
				name, tgt, place.MemXBase, place.MemXBase+place.MemXSize)
		}
	}

	if !probe("e2e-post-exploit", false) {
		return
	}
	if _, err := sys.Rollback(context.Background(), c.ID); err != nil {
		res.diverge("e2e-rollback", "%v", err)
		return
	}

	// Post-rollback kernel.text must be frame-identical to boot: the
	// exploit and the patch touched data and reserved memory, but every
	// text byte the apply wrote must be back.
	text := sys.Machine.Mem.Region(kernel.RegionText)
	dirty, err := sys.Machine.Mem.DiffFramesIn(snap, text.Base, text.Size)
	if err != nil {
		res.diverge("e2e-framediff", "%v", err)
		return
	}
	if len(dirty) > 0 {
		res.diverge("e2e-framediff", "%d kernel.text frames differ from boot after rollback (first at %#x)",
			len(dirty), mem.FrameAddr(dirty[0]))
		return
	}
	probe("e2e-revert-exploit", true)
}

// SweepOptions parameterizes RunCorpusSweep.
type SweepOptions struct {
	// Seed is the corpus master seed; Count the number of cases.
	Seed  uint64
	Count int

	// E2ECount drives the first N cases through a live system on top
	// of the analysis-level verification every case gets. Negative
	// means all of them.
	E2ECount int

	// Workers bounds verification concurrency (min 1).
	Workers int
}

// SweepStats aggregates a corpus sweep.
type SweepStats struct {
	Seed        uint64
	Cases       int
	E2ECases    int
	ByArchetype map[string]int
	ByTypes     map[string]int
	Checked     map[patch.Type]int
	Matched     map[patch.Type]int
	Divergences []Divergence
}

// RunCorpusSweep generates the corpus and differentially verifies
// every case. The returned stats (and the divergence order) are
// deterministic for a given options value regardless of Workers.
func RunCorpusSweep(opts SweepOptions) *SweepStats {
	cases := corpusgen.Generate(corpusgen.Config{Seed: opts.Seed, Count: opts.Count})
	e2eN := opts.E2ECount
	if e2eN < 0 || e2eN > len(cases) {
		e2eN = len(cases)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	results := make([]*CaseResult, len(cases))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c *corpusgen.Case) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = VerifyCase(c, i < e2eN)
		}(i, c)
	}
	wg.Wait()

	stats := &SweepStats{
		Seed: opts.Seed, Cases: len(cases), E2ECases: e2eN,
		ByArchetype: make(map[string]int), ByTypes: make(map[string]int),
		Checked: make(map[patch.Type]int), Matched: make(map[patch.Type]int),
	}
	for _, r := range results {
		stats.ByArchetype[r.Case.Archetype]++
		stats.ByTypes[r.Case.Expect.TypesString()]++
		for t, n := range r.Checked {
			stats.Checked[t] += n
		}
		for t, n := range r.Matched {
			stats.Matched[t] += n
		}
		stats.Divergences = append(stats.Divergences, r.Divergences...)
	}
	return stats
}

// CorpusTable renders a sweep for the CLI and EXPERIMENTS.md.
func CorpusTable(s *SweepStats) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Generated-corpus differential sweep (seed %#x)", s.Seed),
		"Metric", "Value")
	t.AddRow("cases", fmt.Sprintf("%d", s.Cases))
	t.AddRow("end-to-end cases", fmt.Sprintf("%d", s.E2ECases))
	t.AddRow("divergences", fmt.Sprintf("%d", len(s.Divergences)))
	for _, ty := range []patch.Type{patch.Type1, patch.Type2, patch.Type3} {
		if s.Checked[ty] == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("Type %s classification", ty),
			fmt.Sprintf("%d/%d (%.1f%%)", s.Matched[ty], s.Checked[ty],
				100*float64(s.Matched[ty])/float64(s.Checked[ty])))
	}
	var archs []string
	for a := range s.ByArchetype {
		archs = append(archs, a)
	}
	sort.Strings(archs)
	for _, a := range archs {
		t.AddRow("archetype "+a, fmt.Sprintf("%d", s.ByArchetype[a]))
	}
	t.AddNote("every divergence is reproducible from its seed alone: kshot-corpus shrink -seed <seed>")
	return t
}

func typesKey(ts []patch.Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}
