// Package binmatch aligns and compares two kernel binary images the
// way KShot's prototype uses iBinHunt and FIBER (§V-A): functions are
// decomposed into basic blocks, lifted to a position-independent
// normal form (register operands verbatim; branch targets rewritten to
// in-function instruction indices; call/data targets rewritten to
// symbol-relative form), and compared by normalized fingerprint. This
// makes the comparison immune to the wholesale address shifts a
// rebuild causes — only genuine semantic changes register as diffs.
package binmatch

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"kshot/internal/isa"
)

// Normalize lifts a function's code to its position-independent form,
// one instruction per line.
func Normalize(img *isa.Image, name string) (string, error) {
	sym, ok := img.Symbols.Lookup(name)
	if !ok || sym.Kind != isa.SymFunc {
		return "", fmt.Errorf("binmatch: no function %q", name)
	}
	code, err := img.FuncBytes(name)
	if err != nil {
		return "", err
	}
	decoded, err := isa.Disassemble(code, sym.Addr)
	if err != nil {
		return "", fmt.Errorf("binmatch %s: %w", name, err)
	}
	idxOf := make(map[uint64]int, len(decoded))
	for i, d := range decoded {
		idxOf[d.Addr] = i
	}

	var b strings.Builder
	for _, d := range decoded {
		switch {
		case d.Inst.Op.IsBranch():
			tgt, _ := d.BranchTarget()
			if idx, in := idxOf[tgt]; in {
				fmt.Fprintf(&b, "%s @%d\n", d.Inst.Op.Mnemonic(), idx)
				continue
			}
			if s, ok := img.Symbols.At(tgt); ok {
				fmt.Fprintf(&b, "%s %s+%d\n", d.Inst.Op.Mnemonic(), s.Name, tgt-s.Addr)
				continue
			}
			fmt.Fprintf(&b, "%s ?%#x\n", d.Inst.Op.Mnemonic(), tgt)
		case d.Inst.Op == isa.OpMovi || d.Inst.Op == isa.OpLoadg || d.Inst.Op == isa.OpStrg:
			if s, ok := img.Symbols.At(uint64(d.Inst.Imm)); ok {
				fmt.Fprintf(&b, "%s r%d,r%d %s+%d\n", d.Inst.Op.Mnemonic(), d.Inst.Dst, d.Inst.Src,
					s.Name, uint64(d.Inst.Imm)-s.Addr)
				continue
			}
			fmt.Fprintf(&b, "%s r%d,r%d #%d\n", d.Inst.Op.Mnemonic(), d.Inst.Dst, d.Inst.Src, d.Inst.Imm)
		default:
			fmt.Fprintf(&b, "%s\n", d.Inst.String())
		}
	}
	return b.String(), nil
}

// Fingerprint returns the SHA-256 of the function's normalized form.
func Fingerprint(img *isa.Image, name string) ([sha256.Size]byte, error) {
	n, err := Normalize(img, name)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return sha256.Sum256([]byte(n)), nil
}

// Block is one basic block of a function in normalized form.
type Block struct {
	StartIdx int    // index of the first instruction
	Norm     string // normalized instructions of the block
}

// Blocks decomposes a function into basic blocks: leaders are the
// entry, branch targets, and instructions following branches/rets.
func Blocks(img *isa.Image, name string) ([]Block, error) {
	sym, ok := img.Symbols.Lookup(name)
	if !ok || sym.Kind != isa.SymFunc {
		return nil, fmt.Errorf("binmatch: no function %q", name)
	}
	code, err := img.FuncBytes(name)
	if err != nil {
		return nil, err
	}
	decoded, err := isa.Disassemble(code, sym.Addr)
	if err != nil {
		return nil, err
	}
	norm, err := Normalize(img, name)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSuffix(norm, "\n"), "\n")

	idxOf := make(map[uint64]int, len(decoded))
	for i, d := range decoded {
		idxOf[d.Addr] = i
	}
	leaders := map[int]bool{0: true}
	for i, d := range decoded {
		if d.Inst.Op.IsBranch() {
			if tgt, _ := d.BranchTarget(); true {
				if idx, in := idxOf[tgt]; in {
					leaders[idx] = true
				}
			}
			if d.Inst.Op != isa.OpCall && i+1 < len(decoded) {
				leaders[i+1] = true
			}
		}
		if d.Inst.Op == isa.OpRet && i+1 < len(decoded) {
			leaders[i+1] = true
		}
	}
	starts := make([]int, 0, len(leaders))
	for i := range leaders {
		starts = append(starts, i)
	}
	sort.Ints(starts)

	var out []Block
	for bi, s := range starts {
		end := len(decoded)
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		out = append(out, Block{
			StartIdx: s,
			Norm:     strings.Join(lines[s:end], "\n"),
		})
	}
	return out, nil
}

// MatchScore returns the fraction of pre-image blocks of preFn that
// have an identical normalized block in postFn of the post image —
// the block-level similarity the binary matching literature uses to
// align functions across versions. 1.0 means every block matched.
func MatchScore(pre *isa.Image, preFn string, post *isa.Image, postFn string) (float64, error) {
	pb, err := Blocks(pre, preFn)
	if err != nil {
		return 0, err
	}
	qb, err := Blocks(post, postFn)
	if err != nil {
		return 0, err
	}
	if len(pb) == 0 {
		return 0, fmt.Errorf("binmatch: %s has no blocks", preFn)
	}
	avail := make(map[string]int)
	for _, b := range qb {
		avail[b.Norm]++
	}
	matched := 0
	for _, b := range pb {
		if avail[b.Norm] > 0 {
			avail[b.Norm]--
			matched++
		}
	}
	return float64(matched) / float64(len(pb)), nil
}

// Diff summarizes the function-level differences between two images.
type Diff struct {
	Changed []string // present in both with different normalized bodies
	Added   []string // only in post
	Removed []string // only in pre
}

// DiffImages compares all function symbols of two images by normalized
// fingerprint.
func DiffImages(pre, post *isa.Image) (Diff, error) {
	var d Diff
	preFuncs := make(map[string]bool)
	for _, s := range pre.Symbols.Funcs() {
		preFuncs[s.Name] = true
	}
	for _, s := range post.Symbols.Funcs() {
		if !preFuncs[s.Name] {
			d.Added = append(d.Added, s.Name)
			continue
		}
		fp1, err := Fingerprint(pre, s.Name)
		if err != nil {
			return Diff{}, err
		}
		fp2, err := Fingerprint(post, s.Name)
		if err != nil {
			return Diff{}, err
		}
		if fp1 != fp2 {
			d.Changed = append(d.Changed, s.Name)
		}
	}
	postFuncs := make(map[string]bool)
	for _, s := range post.Symbols.Funcs() {
		postFuncs[s.Name] = true
	}
	for name := range preFuncs {
		if !postFuncs[name] {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Changed)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d, nil
}
