package binmatch

import (
	"reflect"
	"strings"
	"testing"

	"kshot/internal/isa"
)

const preSrc = `
.global counter 8
.func alpha
    movi r1, 5
    cmpi r1, 0
    jz .end
    call beta
.end:
    ret
.endfunc
.func beta
    loadg r0, counter
    addi r0, 1
    storeg counter, r0
    ret
.endfunc
.func gamma
    movi r0, 42
    ret
.endfunc
.func doomed
    ret
.endfunc
.func epsilon
    cmpi r1, 0
    jz .b
    movi r0, 1
    ret
.b:
    movi r0, 2
    ret
.endfunc
`

// postSrc: beta changed (adds bounds clamp), doomed removed, delta
// added; alpha and gamma semantically identical but at new addresses.
const postSrc = `
.global counter 8
.func alpha
    movi r1, 5
    cmpi r1, 0
    jz .end
    call beta
.end:
    ret
.endfunc
.func beta
    loadg r0, counter
    addi r0, 1
    cmpi r0, 1000
    jle .store
    movi r0, 0
.store:
    storeg counter, r0
    ret
.endfunc
.func gamma
    movi r0, 42
    ret
.endfunc
.func delta
    movi r0, 7
    ret
.endfunc
.func epsilon
    cmpi r1, 0
    jz .b
    movi r0, 1
    ret
.b:
    movi r0, 3
    ret
.endfunc
`

func link(t *testing.T, src string, textBase uint64) *isa.Image {
	t.Helper()
	img, err := isa.Link(isa.MustParse(src), isa.LinkOptions{
		TextBase: textBase, DataBase: textBase + 0x10000, Ftrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestDiffImages(t *testing.T) {
	pre := link(t, preSrc, 0x10000)
	// Post built at a different base: every address shifts, only real
	// changes must be reported.
	post := link(t, postSrc, 0x90000)
	d, err := DiffImages(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Changed, []string{"beta", "epsilon"}) {
		t.Errorf("changed = %v, want [beta epsilon]", d.Changed)
	}
	if !reflect.DeepEqual(d.Added, []string{"delta"}) {
		t.Errorf("added = %v", d.Added)
	}
	if !reflect.DeepEqual(d.Removed, []string{"doomed"}) {
		t.Errorf("removed = %v", d.Removed)
	}
}

func TestNormalizePositionIndependent(t *testing.T) {
	a := link(t, preSrc, 0x10000)
	b := link(t, preSrc, 0x500000)
	for _, fn := range []string{"alpha", "beta", "gamma"} {
		na, err := Normalize(a, fn)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := Normalize(b, fn)
		if err != nil {
			t.Fatal(err)
		}
		if na != nb {
			t.Errorf("%s normal form depends on load address:\n%s\nvs\n%s", fn, na, nb)
		}
	}
}

func TestNormalizeResolvesSymbols(t *testing.T) {
	img := link(t, preSrc, 0x10000)
	n, err := Normalize(img, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n, "counter+0") {
		t.Errorf("global reference not symbolized:\n%s", n)
	}
	n, err = Normalize(img, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n, "beta+0") {
		t.Errorf("call target not symbolized:\n%s", n)
	}
	if !strings.Contains(n, "jz @") {
		t.Errorf("internal branch not index-normalized:\n%s", n)
	}
	if _, err := Normalize(img, "counter"); err == nil {
		t.Error("normalize of data symbol succeeded")
	}
}

func TestBlocksDecomposition(t *testing.T) {
	img := link(t, preSrc, 0x10000)
	blocks, err := Blocks(img, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	// alpha (with ftrace prologue): entry block ends at jz; then the
	// call block; then the .end block. Expect >= 3 blocks.
	if len(blocks) < 3 {
		t.Errorf("alpha blocks = %d, want >= 3", len(blocks))
	}
	if blocks[0].StartIdx != 0 {
		t.Error("first block does not start at 0")
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].StartIdx <= blocks[i-1].StartIdx {
			t.Error("blocks not ordered")
		}
	}
}

func TestMatchScore(t *testing.T) {
	pre := link(t, preSrc, 0x10000)
	post := link(t, postSrc, 0x90000)
	// Unchanged function: perfect score.
	s, err := MatchScore(pre, "gamma", post, "gamma")
	if err != nil {
		t.Fatal(err)
	}
	if s != 1.0 {
		t.Errorf("gamma self-score = %v, want 1.0", s)
	}
	// Heavily changed function whose control flow was restructured:
	// every pre block was touched, so the score collapses.
	s, err = MatchScore(pre, "beta", post, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1.0 {
		t.Errorf("beta score = %v, want < 1.0", s)
	}
	// Function with one changed block out of several: partial score.
	s, err = MatchScore(pre, "epsilon", post, "epsilon")
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 1.0 {
		t.Errorf("epsilon score = %v, want in (0,1)", s)
	}
	// Unrelated functions: low score.
	s, err = MatchScore(pre, "beta", post, "gamma")
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.5 {
		t.Errorf("unrelated score = %v, want <= 0.5", s)
	}
	if _, err := MatchScore(pre, "nosuch", post, "gamma"); err == nil {
		t.Error("missing function accepted")
	}
}

func TestFingerprintDetectsSingleInstruction(t *testing.T) {
	a := link(t, ".func f\nmovi r0, 1\nret\n.endfunc", 0x1000)
	b := link(t, ".func f\nmovi r0, 2\nret\n.endfunc", 0x1000)
	fa, err := Fingerprint(a, "f")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b, "f")
	if err != nil {
		t.Fatal(err)
	}
	if fa == fb {
		t.Error("one-immediate change undetected")
	}
}
