// Adversarial binary-matching tests: generated kernels whose layout is
// deliberately hostile to naive byte/address comparison, asserted
// against the corpus generator's ground truth. External test package
// so it can import corpusgen (which depends on patch → binmatch).
package binmatch_test

import (
	"sort"
	"strings"
	"testing"

	"kshot/internal/binmatch"
	"kshot/internal/corpusgen"
	"kshot/internal/isa"
	"kshot/internal/kernel"
)

func buildImage(t *testing.T, cfg kernel.BuildConfig, file, src string) *isa.Image {
	t.Helper()
	st, err := kernel.BaseTreeWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if file != "" {
		st.AddFile(file, src)
	}
	img, _, err := st.Build()
	if err != nil {
		t.Fatalf("build (%+v): %v", cfg, err)
	}
	return img
}

func sorted(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// TestDiffImagesMatchesGeneratorGroundTruth builds both variants of 48
// generated cases and requires the binary diff to agree exactly with
// the generator's prediction: Changed is precisely the replaced
// functions, Added precisely the new ones. The generated kernels are
// adversarial on purpose — filler functions and shared helpers sit
// AFTER the changed code, so every one of their bytes lands at a
// shifted address in the fixed build; flagging any of them means the
// matcher is comparing positions, not code.
func TestDiffImagesMatchesGeneratorGroundTruth(t *testing.T) {
	for _, c := range corpusgen.Generate(corpusgen.Config{Seed: 0xAD7E_2541, Count: 48}) {
		cfg := kernel.BuildConfig{Version: c.Version, Ftrace: c.Ftrace, Inline: c.Inline}
		pre := buildImage(t, cfg, c.File, c.Vuln)
		post := buildImage(t, cfg, c.File, c.Fixed)
		d, err := binmatch.DiffImages(pre, post)
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}

		var wantChanged, wantAdded []string
		for name, fe := range c.Expect.Funcs {
			if fe.New {
				wantAdded = append(wantAdded, name)
			} else {
				wantChanged = append(wantChanged, name)
			}
		}
		sort.Strings(wantChanged)
		sort.Strings(wantAdded)

		if got := sorted(d.Changed); strings.Join(got, ",") != strings.Join(wantChanged, ",") {
			t.Errorf("%s (arch %s, seed %#x): Changed = %v, generator ground truth %v",
				c.ID, c.Archetype, c.Seed, got, wantChanged)
		}
		if got := sorted(d.Added); strings.Join(got, ",") != strings.Join(wantAdded, ",") {
			t.Errorf("%s (arch %s, seed %#x): Added = %v, generator ground truth %v",
				c.ID, c.Archetype, c.Seed, got, wantAdded)
		}
		if len(d.Removed) != 0 {
			t.Errorf("%s: spurious removals %v", c.ID, d.Removed)
		}
	}
}

// TestDiffImagesFtracePrologueIsARealDiff compares the same source
// built with and without ftrace. The 5-byte prologue is a genuine byte
// difference in every traced function — the matcher must flag all of
// them (this asymmetry is exactly why the patch server rebuilds with
// the target's attested configuration instead of diffing across
// configs), while notrace functions, identical modulo address shifts,
// must stay unflagged.
func TestDiffImagesFtracePrologueIsARealDiff(t *testing.T) {
	on := buildImage(t, kernel.BuildConfig{Version: "4.4", Ftrace: true, Inline: true}, "", "")
	off := buildImage(t, kernel.BuildConfig{Version: "4.4", Ftrace: false, Inline: true}, "", "")
	d, err := binmatch.DiffImages(off, on)
	if err != nil {
		t.Fatal(err)
	}

	changed := make(map[string]bool, len(d.Changed))
	for _, n := range d.Changed {
		changed[n] = true
	}
	for _, s := range on.Symbols.Funcs() {
		if s.Name == "__fentry__" {
			continue // only exists in the traced build
		}
		if s.Traced && !changed[s.Name] {
			t.Errorf("traced function %s not flagged: prologue bytes are a real diff", s.Name)
		}
		if !s.Traced && changed[s.Name] {
			t.Errorf("notrace function %s flagged: it is byte-identical modulo address shifts", s.Name)
		}
	}
	added := sorted(d.Added)
	if len(added) != 1 || added[0] != "__fentry__" {
		t.Errorf("Added = %v, want only the __fentry__ stub", added)
	}
}

// TestDiffImagesInlineCalleeOnlyChange takes a generated
// validator-archetype case and builds its two variants under BOTH
// inlining configs. With inlining on, the changed helper has no symbol
// and the diff must surface only the call sites its body was expanded
// into; with inlining off, the helper is a standalone symbol and must
// be the only flagged function.
func TestDiffImagesInlineCalleeOnlyChange(t *testing.T) {
	var c *corpusgen.Case
	for seed := uint64(0); seed < 4096; seed++ {
		if g := corpusgen.GenCase(seed); g.Archetype == corpusgen.ArchValidator {
			c = g
			break
		}
	}
	if c == nil {
		t.Fatal("no validator case in the first 4096 seeds")
	}
	valid := "" // the inline validator's symbol name (prefix + "valid")
	for name := range c.Expect.Funcs {
		if i := strings.Index(name, "valid"); i >= 0 {
			valid = name[:i+len("valid")]
			break
		}
	}
	if valid == "" {
		t.Fatalf("cannot derive validator name from expectation %v", c.Expect.FuncNames())
	}

	for _, inline := range []bool{true, false} {
		cfg := kernel.BuildConfig{Version: c.Version, Ftrace: c.Ftrace, Inline: inline}
		d, err := binmatch.DiffImages(
			buildImage(t, cfg, c.File, c.Vuln),
			buildImage(t, cfg, c.File, c.Fixed))
		if err != nil {
			t.Fatalf("inline=%v: %v", inline, err)
		}
		if inline {
			if len(d.Changed) == 0 {
				t.Fatal("inline=true: no call sites flagged for an inlined-callee-only change")
			}
			for _, n := range d.Changed {
				if !strings.HasPrefix(n, valid+"_site") {
					t.Errorf("inline=true: flagged %s, want only %s_site* call sites", n, valid)
				}
			}
		} else {
			if len(d.Changed) != 1 || d.Changed[0] != valid {
				t.Errorf("inline=false: Changed = %v, want exactly [%s]", d.Changed, valid)
			}
		}
		if len(d.Added)+len(d.Removed) != 0 {
			t.Errorf("inline=%v: spurious added/removed %v/%v", inline, d.Added, d.Removed)
		}
	}
}
