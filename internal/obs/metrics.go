package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically adjusted integer metric.
type Counter struct {
	v atomic.Int64
}

// Add adds delta (nil-safe).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket histogram: bucket layout is chosen at
// creation and never changes, so concurrent observers only touch
// preallocated slots.
type Histogram struct {
	bounds []float64 // inclusive upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits accumulated under CAS
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. An implicit overflow bucket catches everything above the
// last bound.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample (nil-safe).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Metrics is the registry: named counters and histograms, safe for
// concurrent use (including concurrent first-touch registration). All
// methods are safe on a nil receiver.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() int64
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() int64),
	}
}

// GaugeFunc registers a gauge whose value is computed by fn at
// snapshot time — the right shape for instantaneous figures like
// resident memory, where a stored value would always be stale. A
// later registration under the same name replaces the function; fn
// must be safe to call from any goroutine.
func (m *Metrics) GaugeFunc(name string, fn func() int64) {
	if m == nil || fn == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = fn
	m.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Add adds delta to the named counter.
func (m *Metrics) Add(name string, delta int64) {
	m.Counter(name).Add(delta)
}

// HistogramWith returns the named histogram, creating it with the
// given bucket bounds on first use (later callers get the original
// layout regardless of the bounds they pass).
func (m *Metrics) HistogramWith(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = NewHistogram(bounds)
		m.hists[name] = h
	}
	return h
}

// Observe records a sample into the named histogram, creating it with
// the default bucket layout for that name on first use.
func (m *Metrics) Observe(name string, v float64) {
	m.HistogramWith(name, defaultBuckets(name)).Observe(v)
}

// LatencyBuckets is the default microsecond layout for duration
// histograms, spanning sub-µs switches to multi-ms batch SMIs.
var LatencyBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

// CountBuckets is the default layout for small-cardinality histograms
// (batch sizes, retry counts).
var CountBuckets = []float64{0, 1, 2, 4, 8, 16, 32}

// defaultBuckets picks a bucket layout from the metric name: the
// *_us duration convention gets latency buckets, everything else the
// small-count layout.
func defaultBuckets(name string) []float64 {
	if strings.HasSuffix(name, "_us") {
		return LatencyBuckets
	}
	return CountBuckets
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string
	Value int64
}

// HistSnap is one histogram in a snapshot.
type HistSnap struct {
	Name   string
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; the last is the overflow bucket
	Count  uint64
	Sum    float64
}

// GaugeSnap is one evaluated gauge in a snapshot.
type GaugeSnap struct {
	Name  string
	Value int64
}

// MetricsSnap is a point-in-time copy of the registry, sorted by name.
type MetricsSnap struct {
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
}

// Snapshot copies every metric, sorted by name for deterministic
// rendering.
func (m *Metrics) Snapshot() MetricsSnap {
	if m == nil {
		return MetricsSnap{}
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap := MetricsSnap{}
	for name, c := range m.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, fn := range m.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: fn()})
	}
	for name, h := range m.hists {
		hs := HistSnap{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		hs.Counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Hists = append(snap.Hists, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}

// RenderText writes the snapshot in an expvar-style plain-text format:
// one "name value" line per counter, then per-histogram bucket lines.
func (s MetricsSnap) RenderText(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Hists {
		fmt.Fprintf(&b, "%s count=%d sum=%.3f\n", h.Name, h.Count, h.Sum)
		for i, bound := range h.Bounds {
			if h.Counts[i] == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s le=%g %d\n", h.Name, bound, h.Counts[i])
		}
		if over := h.Counts[len(h.Counts)-1]; over > 0 {
			fmt.Fprintf(&b, "%s le=+Inf %d\n", h.Name, over)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
