package obs_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// scrape GETs path from the Hooks debug mux and returns the body.
func scrape(t *testing.T, h *obs.Hooks, path string) string {
	t.Helper()
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestGaugeFuncMetricsRendering is table-driven over gauge
// registration shapes: snapshot-time evaluation, replacement under
// the same name, nil-function rejection, and deterministic sorted
// rendering on the /metrics endpoint.
func TestGaugeFuncMetricsRendering(t *testing.T) {
	cases := []struct {
		name     string
		register func(h *obs.Hooks, v *int64)
		want     []string // exact lines that must appear
		absent   []string // substrings that must not appear
	}{
		{
			name: "computed at snapshot time",
			register: func(h *obs.Hooks, v *int64) {
				h.GaugeFunc("g.live", func() int64 { return *v })
				*v = 42 // after registration: the scrape must see this
			},
			want: []string{"g.live 42"},
		},
		{
			name: "same-name registration replaces",
			register: func(h *obs.Hooks, v *int64) {
				h.GaugeFunc("g.dup", func() int64 { return 1 })
				h.GaugeFunc("g.dup", func() int64 { return 2 })
			},
			want:   []string{"g.dup 2"},
			absent: []string{"g.dup 1"},
		},
		{
			name: "nil function ignored",
			register: func(h *obs.Hooks, v *int64) {
				h.GaugeFunc("g.nil", nil)
				h.GaugeFunc("g.ok", func() int64 { return 7 })
			},
			want:   []string{"g.ok 7"},
			absent: []string{"g.nil"},
		},
		{
			name: "negative values render signed",
			register: func(h *obs.Hooks, v *int64) {
				h.GaugeFunc("g.neg", func() int64 { return -3 })
			},
			want: []string{"g.neg -3"},
		},
		{
			name: "sorted with counters first",
			register: func(h *obs.Hooks, v *int64) {
				h.Count("a.counter", 5)
				h.GaugeFunc("z.gauge", func() int64 { return 1 })
				h.GaugeFunc("b.gauge", func() int64 { return 2 })
			},
			want: []string{"a.counter 5", "b.gauge 2", "z.gauge 1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := obs.NewHooks(16, timing.NewFakeWall())
			var v int64
			tc.register(h, &v)
			body := scrape(t, h, "/metrics")
			lines := strings.Split(strings.TrimSpace(body), "\n")
			seen := make(map[string]int, len(lines))
			for i, l := range lines {
				seen[l] = i
			}
			last := -1
			for _, w := range tc.want {
				i, ok := seen[w]
				if !ok {
					t.Errorf("missing line %q in:\n%s", w, body)
					continue
				}
				if i < last {
					t.Errorf("line %q out of sorted order", w)
				}
				last = i
			}
			for _, a := range tc.absent {
				if strings.Contains(body, a) {
					t.Errorf("unexpected %q in:\n%s", a, body)
				}
			}
		})
	}
}

// TestResidentGaugesOverHTTP registers the mem.resident.* gauges the
// way kshotd does — backed by a live Physical — and asserts the
// /metrics scrape tracks the shared/private frame split across a COW
// fork writing to its pages.
func TestResidentGaugesOverHTTP(t *testing.T) {
	m := mem.New(1 << 20)
	if _, err := m.Map("ram", 0, 1<<20, mem.Perms{Kernel: mem.PermRW}); err != nil {
		t.Fatal(err)
	}
	// Materialize two frames in the parent before forking.
	if err := m.Write(mem.PrivKernel, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(mem.PrivKernel, mem.FrameSize, []byte{2}); err != nil {
		t.Fatal(err)
	}
	fork := m.Fork()

	h := obs.NewHooks(16, timing.NewFakeWall())
	h.GaugeFunc(obs.GaugeMemSharedBytes, func() int64 {
		return int64(fork.ResidentStats().SharedBytes)
	})
	h.GaugeFunc(obs.GaugeMemPrivateBytes, func() int64 {
		return int64(fork.ResidentStats().PrivateBytes)
	})

	wantLine := func(t *testing.T, body, name string, v uint64) {
		t.Helper()
		line := fmt.Sprintf("%s %d", name, v)
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, body)
		}
	}

	// Fresh fork: everything resident is shared with the parent.
	body := scrape(t, h, "/metrics")
	wantLine(t, body, obs.GaugeMemSharedBytes, 2*mem.FrameSize)
	wantLine(t, body, obs.GaugeMemPrivateBytes, 0)

	// A write into the fork breaks one frame private; the gauges are
	// GaugeFuncs, so the next scrape sees it with no re-registration.
	if err := fork.Write(mem.PrivKernel, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	st := fork.ResidentStats()
	if st.PrivateBytes == 0 {
		t.Fatal("fork write did not break a frame private")
	}
	body = scrape(t, h, "/metrics")
	wantLine(t, body, obs.GaugeMemSharedBytes, st.SharedBytes)
	wantLine(t, body, obs.GaugeMemPrivateBytes, st.PrivateBytes)
}
