package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kshot/internal/timing"
)

func TestNilSafety(t *testing.T) {
	// A nil Hooks (and nil components) must be permanently quiet, never
	// panic — the disabled-observability contract every instrumented
	// layer relies on.
	var h *Hooks
	h.Span(PhaseApply, "x", -1, time.Microsecond, 4)
	h.Point(PhaseWave, "x", 0)
	h.Count(CtrApplied, 1)
	h.Observe(HistBatchSize, 3)
	h.ObserveDur(HistSMIPause, time.Millisecond)

	var tr *Tracer
	tr.Emit(Event{})
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Cap() != 0 {
		t.Error("nil tracer reported non-zero state")
	}
	tr.Reset()
	if snap := tr.Snapshot(); len(snap.Events) != 0 {
		t.Error("nil tracer snapshot has events")
	}

	var m *Metrics
	m.Add("c", 1)
	m.Observe("h", 1)
	if got := m.Counter("c").Value(); got != 0 {
		t.Errorf("nil metrics counter = %d", got)
	}
	if snap := m.Snapshot(); len(snap.Counters) != 0 || len(snap.Hists) != 0 {
		t.Error("nil metrics snapshot not empty")
	}

	// Hooks with nil components: methods must not panic either.
	h2 := &Hooks{}
	h2.Span(PhaseApply, "x", -1, time.Microsecond, 4)
	h2.Count(CtrApplied, 1)
	h2.Observe(HistBatchSize, 3)
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4, timing.NewFakeWall())
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindPoint, Phase: PhaseWave, ID: "e", Wave: i})
	}
	if tr.Emitted() != 10 || tr.Dropped() != 6 || tr.Cap() != 4 {
		t.Fatalf("emitted=%d dropped=%d cap=%d, want 10/6/4",
			tr.Emitted(), tr.Dropped(), tr.Cap())
	}
	snap := tr.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	// Invariant: emitted == dropped + retained, and the retained window
	// is the newest events in emission order.
	if snap.Emitted != snap.Dropped+uint64(len(snap.Events)) {
		t.Errorf("ring invariant broken: %d != %d + %d",
			snap.Emitted, snap.Dropped, len(snap.Events))
	}
	for i, ev := range snap.Events {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTracerRenderDeterministic(t *testing.T) {
	render := func() string {
		tr := NewTracer(8, timing.NewFakeWall())
		tr.Emit(Event{Kind: KindSpan, Phase: PhaseFetch, ID: "CVE-X", Wave: -1, Dur: 1500 * time.Nanosecond, Bytes: 40})
		tr.Emit(Event{Kind: KindPoint, Phase: PhaseWave, ID: "wave[0]:2", Wave: 0})
		var b strings.Builder
		if err := tr.Snapshot().RenderText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("renders differ under FakeWall:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "T_fetch") || !strings.Contains(a, "dur=1.500us bytes=40") {
		t.Errorf("unexpected span line:\n%s", a)
	}
	if !strings.Contains(a, "wave=0 id=wave[0]:2") {
		t.Errorf("unexpected point line:\n%s", a)
	}
	if strings.Contains(strings.SplitN(a, "\n", 2)[1], "wave=-1") {
		t.Errorf("wave=-1 must not render:\n%s", a)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64, timing.NewFakeWall())
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Event{Kind: KindPoint, Phase: PhaseBatch, ID: "c"})
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.Emitted != goroutines*each {
		t.Errorf("emitted = %d, want %d", snap.Emitted, goroutines*each)
	}
	if snap.Dropped != snap.Emitted-uint64(len(snap.Events)) {
		t.Errorf("drop accounting: %d dropped, %d emitted, %d retained",
			snap.Dropped, snap.Emitted, len(snap.Events))
	}
	// Seq must be unique and the retained window contiguous.
	seen := make(map[uint64]bool, len(snap.Events))
	for _, ev := range snap.Events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+10+99+100+1000; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Bounds are inclusive upper bounds: 1 lands in le=1, 1000 in +Inf.
	m := NewMetrics()
	mh := m.HistogramWith("t", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 1000} {
		mh.Observe(v)
	}
	snap := m.Snapshot()
	if len(snap.Hists) != 1 {
		t.Fatalf("hists = %d", len(snap.Hists))
	}
	want := []uint64{2, 2, 2, 1} // le=1, le=10, le=100, +Inf
	for i, w := range want {
		if snap.Hists[0].Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Hists[0].Counts[i], w)
		}
	}
}

func TestMetricsRegistryConcurrent(t *testing.T) {
	m := NewMetrics()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Add("ctr", 1)
				m.Observe("lat_us", float64(i%7))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("ctr").Value(); got != goroutines*each {
		t.Errorf("counter = %d, want %d", got, goroutines*each)
	}
	snap := m.Snapshot()
	if len(snap.Hists) != 1 || snap.Hists[0].Count != goroutines*each {
		t.Errorf("histogram count = %+v", snap.Hists)
	}
	// The _us suffix selects latency buckets.
	if len(snap.Hists[0].Bounds) != len(LatencyBuckets) {
		t.Errorf("lat_us got %d bounds, want latency layout", len(snap.Hists[0].Bounds))
	}
}

func TestHTTPEndpoints(t *testing.T) {
	h := NewHooks(16, timing.NewFakeWall())
	h.Count(CtrApplied, 3)
	h.Span(PhaseApply, "CVE-Y", -1, 2*time.Microsecond, 8)
	h.ObserveDur(HistSMIPause, 5*time.Microsecond)

	srv := httptest.NewServer(h.Mux())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "patch.applied 3") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "smi.pause_us count=1 sum=5.000") {
		t.Errorf("/metrics missing histogram:\n%s", metrics)
	}
	trace := get("/trace")
	if !strings.Contains(trace, "1 emitted, 1 retained, 0 dropped") {
		t.Errorf("/trace missing header:\n%s", trace)
	}
	if !strings.Contains(trace, "id=CVE-Y dur=2.000us bytes=8") {
		t.Errorf("/trace missing event:\n%s", trace)
	}

	// Handlers on a nil Hooks serve empty snapshots, not panics.
	nilSrv := httptest.NewServer((*Hooks)(nil).Mux())
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("nil hooks /metrics status = %d", resp.StatusCode)
	}
}
