// Package obs is KShot's zero-dependency observability layer: a
// fixed-capacity ring-buffer event tracer and a metrics registry,
// threaded through the patching pipeline the same way the faultinject
// hooks are. Both are driven through a *Hooks handle whose methods are
// safe on a nil receiver, so every instrumented layer pays one
// predictable branch when observability is disabled and nothing else.
//
// The tracer is modeled on an SMM-resident event log: capacity is
// fixed up front (SMRAM does not grow), emitting is bounded work with
// no allocation on the hot path, and when the buffer wraps the oldest
// events are overwritten and counted as dropped — the drop counter is
// the honesty witness (dropped == emitted − retained, always).
//
// Time sourcing goes through timing.WallClock: under timing.FakeWall
// every event timestamp is a pure function of the run's schedule, so a
// rendered trace replays byte-identically — which is what lets the
// evaluation report be golden-tested.
package obs

import (
	"time"

	"kshot/internal/timing"
)

// Phase names one of the paper's pipeline phases (§VI's per-phase
// breakdown). The SMI enter/resume pair brackets the only interval the
// OS is actually paused.
type Phase uint8

// The traced phases.
const (
	PhaseFetch    Phase = iota + 1 // T_fetch: helper downloads the encrypted patch
	PhasePrep                      // T_prep: enclave preprocessing + staging pass
	PhaseVerify                    // T_verify: in-SMM keygen + decrypt + verify
	PhaseSMIEnter                  // T_smi_enter: world switch into SMM
	PhaseApply                     // T_apply: in-SMM patch application
	PhaseResume                    // T_resume: RSM back to the OS
	PhaseWave                      // wave marker: one conflict-free deployment wave
	PhaseBatch                     // batch marker: one batched SMI delivery
)

// String returns the phase's evaluation-table name.
func (p Phase) String() string {
	switch p {
	case PhaseFetch:
		return "T_fetch"
	case PhasePrep:
		return "T_prep"
	case PhaseVerify:
		return "T_verify"
	case PhaseSMIEnter:
		return "T_smi_enter"
	case PhaseApply:
		return "T_apply"
	case PhaseResume:
		return "T_resume"
	case PhaseWave:
		return "wave"
	case PhaseBatch:
		return "batch"
	default:
		return "T_unknown"
	}
}

// Metric names used by the instrumented layers. Counters unless noted.
const (
	CtrSMIEntries  = "smi.entries"
	CtrFetches     = "fetch.results"
	CtrFetchErrors = "fetch.errors"
	CtrECalls      = "sgx.ecalls"
	CtrEnclaveLost = "sgx.destroyed"
	CtrApplied     = "patch.applied"
	CtrRolledBack  = "patch.rolled_back"
	CtrBatches     = "pipeline.batches"
	CtrSingles     = "pipeline.singles"
	CtrRetries     = "pipeline.retries"
	CtrDegraded    = "pipeline.degraded"

	// Fleet-distribution metrics (patch server build cache + connection
	// hygiene, client dial retries).
	CtrCacheHits      = "patchserver.cache.hits"
	CtrCacheMisses    = "patchserver.cache.misses"
	CtrCacheCoalesced = "patchserver.cache.coalesced"
	CtrCacheEvicted   = "patchserver.cache.evicted"
	CtrBuilds         = "patchserver.builds"
	CtrConnAccepted   = "patchserver.conns.accepted"
	CtrConnRefused    = "patchserver.conns.refused"
	CtrConnLive       = "patchserver.conns.live"
	CtrDialRetries    = "patchserver.dial.retries"

	// Fleet-rollout metrics (the orchestrator's wave scheduler and
	// health gate).
	CtrRolloutWaves           = "rollout.waves"
	CtrRolloutWavesRolledBack = "rollout.waves.rolled_back"
	CtrRolloutPatched         = "rollout.targets.patched"
	CtrRolloutFailed          = "rollout.targets.failed"
	CtrRolloutRolledBack      = "rollout.targets.rolled_back"
	CtrRolloutResumeSkips     = "rollout.resume.skipped"

	// Template-fork provisioning metrics (the core template cache and
	// the memory layer's copy-on-write fork accounting).
	CtrTemplateHits   = "template.cache.hits"
	CtrTemplateMisses = "template.cache.misses"
	CtrTemplateForks  = "template.cache.forks"

	// Introspection metrics (the event channel and the kernel-text
	// detector sweeping it).
	CtrIntrospectEvents     = "introspect.events"
	CtrIntrospectDrops      = "introspect.drops"
	CtrIntrospectSweeps     = "introspect.sweeps"
	CtrIntrospectDetections = "introspect.detections"

	// Snapshot-time gauges (GaugeFunc) for the resident-frame split of
	// a machine's physical memory: shared frames are COW references to
	// a template or snapshot, private ones are this machine's own
	// marginal footprint.
	GaugeMemSharedBytes  = "mem.resident.shared_bytes"
	GaugeMemPrivateBytes = "mem.resident.private_bytes"

	// FaultPrefix prefixes one counter per fired fault-injection point
	// (e.g. "fault.smm.refuse").
	FaultPrefix = "fault."

	HistSMIPause        = "smi.pause_us"                 // histogram: OS pause per SMI, µs
	HistBatchSize       = "batch.size"                   // histogram: members per delivered batch
	HistAttempts        = "patch.attempts"               // histogram: delivery attempts per patch
	HistDowntime        = "patch.downtime_us"            // histogram: per-patch SMM downtime, µs
	HistBuildLatency    = "patchserver.build_us"         // histogram: double kernel build + diff, µs
	HistTargetPause     = "rollout.target_pause_us"      // histogram: virtual SMM pause per rollout target, µs
	HistRolloutBaseline = "rollout.baseline_us"          // histogram: canary mean per-patch downtime, µs
	HistDetectLatency   = "introspect.detect_latency_us" // histogram: tamper event → verdict, µs (wall)
)

// DefaultTraceCapacity is the event-log size commands use unless told
// otherwise — sized like a small SMRAM log region.
const DefaultTraceCapacity = 4096

// Hooks bundles a tracer and a metrics registry behind one nil-safe
// handle. A nil *Hooks (or nil fields) is a valid, permanently-quiet
// observer, mirroring the faultinject.Set contract.
type Hooks struct {
	Tracer  *Tracer
	Metrics *Metrics
}

// NewHooks builds a Hooks with a tracer of the given capacity and a
// fresh metrics registry. clock stamps events; nil means the real
// clock, tests pass timing.FakeWall for replayable traces.
func NewHooks(traceCapacity int, clock timing.WallClock) *Hooks {
	return &Hooks{
		Tracer:  NewTracer(traceCapacity, clock),
		Metrics: NewMetrics(),
	}
}

// Span records a completed phase span with its virtual duration.
func (h *Hooks) Span(phase Phase, id string, wave int, dur time.Duration, bytes int) {
	if h == nil {
		return
	}
	h.Tracer.Emit(Event{Kind: KindSpan, Phase: phase, ID: id, Wave: wave, Dur: dur, Bytes: bytes})
}

// Point records an instantaneous phase marker.
func (h *Hooks) Point(phase Phase, id string, wave int) {
	if h == nil {
		return
	}
	h.Tracer.Emit(Event{Kind: KindPoint, Phase: phase, ID: id, Wave: wave})
}

// Count adds delta to the named counter.
func (h *Hooks) Count(name string, delta int64) {
	if h == nil {
		return
	}
	h.Metrics.Add(name, delta)
}

// GaugeFunc registers a snapshot-time-evaluated gauge.
func (h *Hooks) GaugeFunc(name string, fn func() int64) {
	if h == nil {
		return
	}
	h.Metrics.GaugeFunc(name, fn)
}

// Observe records a sample into the named histogram.
func (h *Hooks) Observe(name string, v float64) {
	if h == nil {
		return
	}
	h.Metrics.Observe(name, v)
}

// ObserveDur records a duration sample in microseconds — the unit
// every evaluation table uses.
func (h *Hooks) ObserveDur(name string, d time.Duration) {
	h.Observe(name, float64(d.Nanoseconds())/1000)
}
