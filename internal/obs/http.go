package obs

import "net/http"

// MetricsHandler serves the registry in the plain-text format of
// MetricsSnap.RenderText — an expvar-style scrape endpoint.
func (h *Hooks) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var snap MetricsSnap
		if h != nil {
			snap = h.Metrics.Snapshot()
		}
		_ = snap.RenderText(w)
	})
}

// TraceHandler serves the retained event log in the text format of
// TraceSnap.RenderText, newest events last.
func (h *Hooks) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var snap TraceSnap
		if h != nil {
			snap = h.Tracer.Snapshot()
		}
		_ = snap.RenderText(w)
	})
}

// Mux returns a pprof-style debug mux exposing /metrics and /trace.
func (h *Hooks) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", h.MetricsHandler())
	mux.Handle("/trace", h.TraceHandler())
	return mux
}
