package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"kshot/internal/timing"
)

// EventKind distinguishes span events (with a duration) from
// instantaneous markers.
type EventKind uint8

// Event kinds.
const (
	KindSpan EventKind = iota + 1
	KindPoint
)

// Event is one typed trace record. Events are fixed-size values so the
// ring buffer never allocates per emit.
type Event struct {
	// Seq is the global emission index (0-based), assigned by Emit.
	Seq uint64
	// At is the wall timestamp from the tracer's clock. Under
	// timing.FakeWall it is deterministic.
	At    time.Time
	Kind  EventKind
	Phase Phase
	// ID labels the subject: a CVE, an SMI command, a wave index.
	ID   string
	Wave int
	// Dur is the span's virtual duration (KindSpan only).
	Dur time.Duration
	// Bytes is the payload size the span covered, when meaningful.
	Bytes int
}

// String renders the event as one deterministic log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%06d %s %-11s", e.Seq, e.At.UTC().Format("15:04:05.000000"), e.Phase)
	if e.Wave >= 0 {
		fmt.Fprintf(&b, " wave=%d", e.Wave)
	}
	fmt.Fprintf(&b, " id=%s", e.ID)
	if e.Kind == KindSpan {
		fmt.Fprintf(&b, " dur=%sus", usString(e.Dur))
		if e.Bytes > 0 {
			fmt.Fprintf(&b, " bytes=%d", e.Bytes)
		}
	}
	return b.String()
}

func usString(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1000)
}

// Tracer is the fixed-capacity ring-buffer event log. Emit is bounded
// work under one short critical section — "lock-free-ish" in the sense
// that it never blocks on I/O, never allocates, and never grows; when
// the ring wraps, the oldest event is overwritten and counted dropped.
// All methods are safe on a nil receiver and for concurrent use.
type Tracer struct {
	clock timing.WallClock

	mu      sync.Mutex
	buf     []Event
	emitted uint64
	dropped uint64
}

// NewTracer builds a tracer retaining at most capacity events
// (DefaultTraceCapacity if capacity <= 0). clock stamps events; nil
// means the real clock.
func NewTracer(capacity int, clock timing.WallClock) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		clock = timing.Real()
	}
	return &Tracer{clock: clock, buf: make([]Event, 0, capacity)}
}

// Emit appends the event to the ring, stamping Seq and At. On a full
// ring the oldest retained event is overwritten and the drop counter
// advances, so emitted == retained + dropped always holds.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.mu.Lock()
	ev.Seq = t.emitted
	ev.At = now
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.emitted%uint64(cap(t.buf))] = ev
		t.dropped++
	}
	t.emitted++
	t.mu.Unlock()
}

// Emitted returns how many events were ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Reset clears the ring and both counters.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.emitted = 0
	t.dropped = 0
}

// TraceSnap is a consistent copy of the tracer's state.
type TraceSnap struct {
	// Events holds the retained events, oldest first.
	Events   []Event
	Emitted  uint64
	Dropped  uint64
	Capacity int
}

// Snapshot copies the retained events in emission order together with
// the counters, all under one critical section so the ring invariant
// (Emitted == Dropped + len(Events)) holds in every snapshot even
// while other goroutines keep emitting.
func (t *Tracer) Snapshot() TraceSnap {
	if t == nil {
		return TraceSnap{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnap{
		Emitted:  t.emitted,
		Dropped:  t.dropped,
		Capacity: cap(t.buf),
	}
	n := len(t.buf)
	snap.Events = make([]Event, 0, n)
	if t.emitted > uint64(n) {
		// The ring wrapped: the oldest retained event lives right
		// after the most recently written slot.
		start := t.emitted % uint64(n)
		snap.Events = append(snap.Events, t.buf[start:]...)
		snap.Events = append(snap.Events, t.buf[:start]...)
	} else {
		snap.Events = append(snap.Events, t.buf...)
	}
	return snap
}

// RenderText writes the snapshot as a deterministic text log: a header
// with the ring counters, then one line per retained event.
func (s TraceSnap) RenderText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d emitted, %d retained, %d dropped (capacity %d)\n",
		s.Emitted, len(s.Events), s.Dropped, s.Capacity)
	for _, ev := range s.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
