package kernel

import (
	"fmt"

	"kshot/internal/isa"
	"kshot/internal/machine"
	"kshot/internal/mem"
)

// Region names and segment sizes of the booted kernel.
const (
	RegionText = "kernel.text"
	RegionData = "kernel.data"
	RegionHeap = "kernel.heap"

	// TextRegionSize and DataRegionSize bound the mapped segments.
	// They exceed any image we build so a KUP-style whole-kernel
	// replacement fits in place.
	TextRegionSize = 4 << 20
	DataRegionSize = 4 << 20
	HeapBase       = DataBase + DataRegionSize
	HeapSize       = 2 << 20

	// DefaultMaxSteps bounds one syscall execution.
	DefaultMaxSteps = 2_000_000
)

// Kernel is a booted simulated kernel.
type Kernel struct {
	M   *machine.Machine
	Img *isa.Image
	Res *mem.Reserved

	cfg BuildConfig
}

// Boot maps the kernel image onto the machine with Linux-like page
// attributes and reserves the KShot region (the grub/paging_init step
// of §V-B). Kernel text is kernel-writable, as on a machine whose
// (compromisable) kernel controls its own page tables — KShot's point
// is that patch integrity must not depend on the kernel respecting
// write protection.
func Boot(m *machine.Machine, img *isa.Image, cfg BuildConfig) (*Kernel, error) {
	if len(img.Text) > TextRegionSize || len(img.Data) > DataRegionSize {
		return nil, fmt.Errorf("boot: image exceeds segment bounds (%d text, %d data)", len(img.Text), len(img.Data))
	}
	if _, err := m.Mem.Map(RegionText, TextBase, TextRegionSize, mem.Perms{
		Kernel: mem.PermRWX,
		SMM:    mem.PermRWX,
	}); err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	// Data and heap are not executable at any privilege — nothing ever
	// runs code from them, and keeping X off means ordinary data writes
	// do not count as code modification for the block-dispatch engine's
	// epoch-keyed cache (mem.Physical.CodeEpoch).
	if _, err := m.Mem.Map(RegionData, DataBase, DataRegionSize, mem.Perms{
		Kernel: mem.PermRW,
		SMM:    mem.PermRW,
	}); err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	if _, err := m.Mem.Map(RegionHeap, HeapBase, HeapSize, mem.Perms{
		User:   mem.PermRW,
		Kernel: mem.PermRW,
		SMM:    mem.PermRW,
	}); err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	res, err := mem.MapReserved(m.Mem, ReservedBase)
	if err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	k := &Kernel{M: m, Img: img, Res: res, cfg: cfg}
	if err := k.loadImage(img); err != nil {
		return nil, err
	}
	return k, nil
}

// loadImage copies image bytes into the mapped segments (done at boot
// privilege, i.e. SMM-level firmware loader).
func (k *Kernel) loadImage(img *isa.Image) error {
	if err := k.M.Mem.Write(mem.PrivSMM, img.TextBase, img.Text); err != nil {
		return fmt.Errorf("load text: %w", err)
	}
	if len(img.Data) > 0 {
		if err := k.M.Mem.Write(mem.PrivSMM, img.DataBase, img.Data); err != nil {
			return fmt.Errorf("load data: %w", err)
		}
	}
	return nil
}

// Fork rebinds this kernel onto m2, a machine forked from k.M. The
// image pointer is shared (isa.Image is immutable after build; even
// ReplaceImage swaps the pointer rather than mutating), the mapped
// segments and loaded bytes already exist in the forked memory, and
// the Reserved view is re-resolved against the fork's duplicated
// region table so per-fork permission changes (the SMRAM-style locks)
// never alias the template's regions.
func (k *Kernel) Fork(m2 *machine.Machine) (*Kernel, error) {
	if m2.Mem.Origin() != k.M.Mem {
		return nil, fmt.Errorf("kernel: fork target was not forked from this kernel's machine")
	}
	res, err := mem.ReservedFrom(m2.Mem)
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	return &Kernel{M: m2, Img: k.Img, Res: res, cfg: k.cfg}, nil
}

// Config returns the build configuration the kernel was compiled with.
func (k *Kernel) Config() BuildConfig { return k.cfg }

// Symbols returns the kernel symbol table (kallsyms).
func (k *Kernel) Symbols() *isa.SymTab { return k.Img.Symbols }

// FuncAddr returns the entry address of a kernel function.
func (k *Kernel) FuncAddr(name string) (uint64, error) {
	s, ok := k.Img.Symbols.Lookup(name)
	if !ok || s.Kind != isa.SymFunc {
		return 0, fmt.Errorf("kernel: no function %q", name)
	}
	return s.Addr, nil
}

// Call executes the named kernel function on the given vCPU — the
// simulation's syscall entry. It blocks until the call completes
// (including across any SMIs that pause the machine mid-call).
func (k *Kernel) Call(vcpu int, fn string, args ...uint64) (uint64, error) {
	return k.CallSteps(vcpu, fn, DefaultMaxSteps, args...)
}

// CallSteps is Call with an explicit step budget, for callers that park
// a vCPU in a busy-wait (block dispatch retires the same virtual steps
// in much less wall-clock, so a parked call needs a budget sized to the
// wait, not DefaultMaxSteps).
func (k *Kernel) CallSteps(vcpu int, fn string, maxSteps int, args ...uint64) (uint64, error) {
	addr, err := k.FuncAddr(fn)
	if err != nil {
		return 0, err
	}
	return k.M.VCPU(vcpu).Call(addr, maxSteps, args...)
}

// ReadGlobal reads a 64-bit kernel global by symbol name at kernel
// privilege.
func (k *Kernel) ReadGlobal(name string) (uint64, error) {
	s, ok := k.Img.Symbols.Lookup(name)
	if !ok || s.Kind != isa.SymObject {
		return 0, fmt.Errorf("kernel: no global %q", name)
	}
	return k.M.Mem.ReadU64(mem.PrivKernel, s.Addr)
}

// WriteGlobal writes a 64-bit kernel global by symbol name at kernel
// privilege.
func (k *Kernel) WriteGlobal(name string, v uint64) error {
	s, ok := k.Img.Symbols.Lookup(name)
	if !ok || s.Kind != isa.SymObject {
		return fmt.Errorf("kernel: no global %q", name)
	}
	return k.M.Mem.WriteU64(mem.PrivKernel, s.Addr, v)
}

// FuncBytes reads the current in-memory bytes of a kernel function
// (which may differ from the built image after patching or attack).
func (k *Kernel) FuncBytes(name string) ([]byte, error) {
	s, ok := k.Img.Symbols.Lookup(name)
	if !ok || s.Kind != isa.SymFunc {
		return nil, fmt.Errorf("kernel: no function %q", name)
	}
	buf := make([]byte, s.Size)
	if err := k.M.Mem.Read(mem.PrivKernel, s.Addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReplaceImage swaps in a complete new kernel image (the KUP-style
// whole-kernel update path). The machine must be quiescent; the new
// image must fit the existing segments.
func (k *Kernel) ReplaceImage(img *isa.Image) error {
	if len(img.Text) > TextRegionSize || len(img.Data) > DataRegionSize {
		return fmt.Errorf("replace: image exceeds segment bounds")
	}
	// Scrub the old text so stale code past the new image's end cannot
	// execute by accident. Zero releases whole frames back to the
	// sparse store instead of writing 4 MB of zeros.
	if err := k.M.Mem.Zero(mem.PrivSMM, TextBase, TextRegionSize); err != nil {
		return fmt.Errorf("replace: scrub: %w", err)
	}
	if err := k.loadImage(img); err != nil {
		return err
	}
	k.Img = img
	return nil
}
