package kernel

import "fmt"

// BaseTree returns the base kernel source tree for a supported version
// ("3.14" or "4.4"), built with the default configuration (ftrace and
// inlining both enabled). Benchmark code adds subsystem files
// containing vulnerable functions on top of this tree; the patch
// server applies source patches to it and rebuilds.
//
// The two versions differ in real ways — extra functions, different
// globals, different file content — so images built for one version
// are not address-compatible with the other, exercising the paper's
// requirement that the patch server rebuild with the target's exact
// version and configuration.
func BaseTree(version string) (*SourceTree, error) {
	return BaseTreeWithConfig(BuildConfig{Version: version, Ftrace: true, Inline: true})
}

// BaseTreeWithConfig is BaseTree with explicit build knobs — the
// generated-corpus sweeps boot kernels with every (ftrace × inline)
// combination, not just the default.
func BaseTreeWithConfig(cfg BuildConfig) (*SourceTree, error) {
	version := cfg.Version
	st := NewSourceTree(cfg)

	st.AddFile("lib/string.asm", libString)
	st.AddFile("kernel/sched.asm", schedSrc(version))
	st.AddFile("kernel/sys.asm", sysSrc)
	st.AddFile("mm/util.asm", mmUtil)
	st.AddFile("fs/vfs.asm", fsVfs)
	st.AddFile("net/sock.asm", netSock)
	st.AddFile("kernel/audit.asm", auditSrc)

	switch version {
	case "3.14":
		st.AddFile("kernel/compat.asm", compat314)
	case "4.4":
		st.AddFile("kernel/compat.asm", compat44)
		st.AddFile("kernel/extable.asm", extable44)
	default:
		return nil, fmt.Errorf("kernel: unsupported version %q (want 3.14 or 4.4)", version)
	}
	return st, nil
}

// libString: low-level helpers shared across subsystems. memcpy_words
// and memset_words operate on 8-byte words, the allocation granule of
// the simulated kernel.
const libString = `
; lib/string.asm — word-granular memory helpers

.func memcpy_words notrace     ; (dst, src, nwords)
.loop:
    cmpi r3, 0
    jz .done
    load r4, [r2]
    store [r1], r4
    addi r1, 8
    addi r2, 8
    subi r3, 1
    jmp .loop
.done:
    ret
.endfunc

.func memset_words notrace     ; (dst, value, nwords)
.loop:
    cmpi r3, 0
    jz .done
    store [r1], r2
    addi r1, 8
    subi r3, 1
    jmp .loop
.done:
    ret
.endfunc

.func bounds_ok inline          ; (idx, limit) -> 1 if idx < limit else 0
    cmp r1, r2
    jl .ok
    movi r0, 0
    ret
.ok:
    movi r0, 1
    ret
.endfunc

.func min_u64 inline            ; (a, b) -> min
    cmp r1, r2
    jl .a
    mov r0, r2
    ret
.a:
    mov r0, r1
    ret
.endfunc
`

// schedSrc: scheduler-flavoured state and syscalls; the jiffies
// counter doubles as the workload's visible progress marker.
func schedSrc(version string) string {
	code := 0x030e00 // 3.14
	if version == "4.4" {
		code = 0x040400
	}
	return fmt.Sprintf(`
; kernel/sched.asm — scheduler tick and identity

.global jiffies 8
.global kversion_code 8
.global pid_counter 8

.func schedule_tick
    loadg r0, jiffies
    addi r0, 1
    storeg jiffies, r0
    ret
.endfunc

.func sys_getpid
    loadg r0, pid_counter
    addi r0, 1
    storeg pid_counter, r0
    ret
.endfunc

.func sys_version
    movi r0, %d
    ret
.endfunc

.func kernel_init notrace
    movi r1, %d
    storeg kversion_code, r1
    movi r1, 0
    storeg jiffies, r1
    storeg pid_counter, r1
    ret
.endfunc
`, code, code)
}

// sysSrc: the syscalls workload threads exercise (the Sysbench-like
// CPU, memory, and mixed paths).
const sysSrc = `
; kernel/sys.asm — workload syscalls

.global sys_ops 8

.func sys_compute            ; (a, b) -> (a+b)*(a-b) + a  — CPU-bound path
    mov r3, r1
    add r3, r2               ; a+b
    mov r4, r1
    sub r4, r2               ; a-b
    mul r3, r4
    add r3, r1
    mov r0, r3
    loadg r5, sys_ops
    addi r5, 1
    storeg sys_ops, r5
    ret
.endfunc

.func sys_memmove            ; (dst, src, nwords) -> nwords — memory-bound path
    push r3
    call memcpy_words
    pop r0
    loadg r5, sys_ops
    addi r5, 1
    storeg sys_ops, r5
    ret
.endfunc

.func sys_checksum           ; (addr, nwords) -> sum of words
    movi r0, 0
.loop:
    cmpi r2, 0
    jz .done
    load r3, [r1]
    add r0, r3
    addi r1, 8
    subi r2, 1
    jmp .loop
.done:
    loadg r5, sys_ops
    addi r5, 1
    storeg sys_ops, r5
    ret
.endfunc
`

// mmUtil: memory-management helpers several CVE functions call.
const mmUtil = `
; mm/util.asm

.global page_faults 8

.func account_fault
    loadg r0, page_faults
    addi r0, 1
    storeg page_faults, r0
    ret
.endfunc

.func validate_range          ; (addr, len, limit) -> 1 ok / 0 bad
    mov r4, r1
    add r4, r2
    cmp r4, r3
    jle .ok
    movi r0, 0
    ret
.ok:
    movi r0, 1
    ret
.endfunc
`

// fsVfs: a small VFS layer — path-component hashing, a fixed dentry
// cache with open/close bookkeeping, and read accounting. Gives the
// kernel realistic nested call structure (syscall → lookup → hash)
// with both inline helpers and shared globals.
const fsVfs = `
; fs/vfs.asm

.global dentry_cache 128      ; 16 slots of path-hash entries
.global open_files 8
.global vfs_reads 8

.func vfs_hash_component inline   ; (acc, ch) -> acc*33 + ch
    movi r9, 33
    mul r1, r9
    add r1, r2
    mov r0, r1
    ret
.endfunc

.func vfs_path_hash               ; (seed, n) -> hash of n pseudo components
    mov r3, r2
    mov r0, r1
.next:
    cmpi r3, 0
    jz .done
    mov r1, r0
    mov r2, r3
    call vfs_hash_component
    subi r3, 1
    jmp .next
.done:
    ret
.endfunc

.func dcache_slot inline          ; (hash) -> &dentry_cache[hash % 16]
    movi r3, 15
    and r1, r3
    movi r4, 8
    mul r1, r4
    movi r0, @dentry_cache
    add r0, r1
    ret
.endfunc

.func sys_open                    ; (seed, n) -> fd-ish hash; caches the path
    push r1
    push r2
    call vfs_path_hash
    pop r2
    pop r1
    push r0
    mov r1, r0
    call dcache_slot
    mov r5, r0
    pop r0
    store [r5], r0
    loadg r6, open_files
    addi r6, 1
    storeg open_files, r6
    ret
.endfunc

.func sys_close                   ; () -> remaining open files
    loadg r0, open_files
    cmpi r0, 0
    jz .done
    subi r0, 1
    storeg open_files, r0
.done:
    ret
.endfunc

.func sys_read_acct               ; (nbytes) -> total bytes read so far
    loadg r0, vfs_reads
    add r0, r1
    storeg vfs_reads, r0
    ret
.endfunc
`

// netSock: a toy socket layer with a backlog queue and checksumming,
// exercising bounded-queue logic.
const netSock = `
; net/sock.asm

.global sock_backlog 64           ; 8-slot backlog ring
.global sock_head 8
.global sock_drops 8

.func sock_enqueue                ; (pkt) -> 0 ok / 105 ENOBUFS
    loadg r2, sock_head
    cmpi r2, 8
    jl .room
    loadg r3, sock_drops
    addi r3, 1
    storeg sock_drops, r3
    movi r0, 105
    ret
.room:
    movi r3, @sock_backlog
    mov r4, r2
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r1
    addi r2, 1
    storeg sock_head, r2
    movi r0, 0
    ret
.endfunc

.func sock_drain                  ; () -> sum of drained packets
    movi r0, 0
    loadg r2, sock_head
.loop:
    cmpi r2, 0
    jz .done
    subi r2, 1
    movi r3, @sock_backlog
    mov r4, r2
    movi r5, 8
    mul r4, r5
    add r3, r4
    load r6, [r3]
    add r0, r6
    jmp .loop
.done:
    movi r2, 0
    storeg sock_head, r2
    ret
.endfunc
`

// auditSrc: an audit trail counting privileged operations — a
// convenient side-effect channel for tests and workloads.
const auditSrc = `
; kernel/audit.asm

.global audit_events 8
.global audit_last 8

.func audit_log                   ; (code) -> event count
    storeg audit_last, r1
    loadg r0, audit_events
    addi r0, 1
    storeg audit_events, r0
    ret
.endfunc

.func sys_privileged_op           ; (code, arg) -> arg*2, audited
    push r2
    call audit_log
    pop r2
    mov r0, r2
    add r0, r2
    ret
.endfunc
`

// compat314: 3.14-only compatibility shims.
const compat314 = `
; kernel/compat.asm (3.14)

.func legacy_ioctl_shim
    mov r0, r1
    addi r0, 0
    ret
.endfunc
`

// compat44: 4.4 gained an extra entry point and a feature flag.
const compat44 = `
; kernel/compat.asm (4.4)

.global feature_flags 8

.func legacy_ioctl_shim
    mov r0, r1
    ret
.endfunc

.func sys_feature_probe
    loadg r0, feature_flags
    ret
.endfunc
`

// extable44: 4.4-only exception-table helpers.
const extable44 = `
; kernel/extable.asm (4.4)

.func fixup_exception
    movi r0, 1
    ret
.endfunc
`
