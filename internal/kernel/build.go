// Package kernel provides the simulated Linux kernel: a source tree in
// the assembler dialect, a deterministic build pipeline (the analogue
// of compiling a kernel with a given version, configuration, and
// compiler flags), and the booted runtime — text/data segments mapped
// with kernel page attributes, a kallsyms-style symbol table, and
// syscall-style entry points that workload threads execute on vCPUs.
//
// The build is configuration-sensitive on purpose: enabling ftrace
// inserts 5-byte trace prologues, enabling inlining changes which
// functions exist in the binary, and both change every downstream
// function address. That is precisely why KShot's patch server must
// rebuild with the target's exact configuration (§V-A), and why the
// patch pipeline identifies functions on the binary rather than
// trusting source-level names.
package kernel

import (
	"fmt"
	"sort"

	"kshot/internal/isa"
)

// Physical layout of the simulated machine. Chosen to fit comfortably
// in the machine's default 256 MB with room between segments.
const (
	TextBase     = 0x100_0000 // kernel text at 16 MB
	DataBase     = 0x400_0000 // kernel data/bss at 64 MB
	ReservedBase = 0x500_0000 // KShot 18 MB reservation at 80 MB
	EPCBase      = 0x800_0000 // SGX EPC at 128 MB
	EPCSize      = 4 << 20
	SMRAMBase    = 0xF00_0000 // SMRAM (TSEG) at 240 MB
)

// BuildConfig is the kernel build configuration — the "OS information"
// KShot collects and sends to the patch server so it can reproduce a
// bit-identical binary.
type BuildConfig struct {
	// Version is the kernel version string (e.g. "3.14", "4.4").
	Version string

	// Ftrace compiles traced functions with the 5-byte prologue
	// (CONFIG_FUNCTION_TRACER).
	Ftrace bool

	// Inline enables the compiler's inline expansion.
	Inline bool
}

// SourceTree is the kernel source: named files of assembler source,
// built in deterministic file order.
type SourceTree struct {
	cfg   BuildConfig
	order []string
	files map[string]string
}

// NewSourceTree creates an empty tree with the given configuration.
func NewSourceTree(cfg BuildConfig) *SourceTree {
	return &SourceTree{cfg: cfg, files: make(map[string]string)}
}

// Config returns the tree's build configuration.
func (st *SourceTree) Config() BuildConfig { return st.cfg }

// AddFile adds or replaces a source file. New files append to the
// build order; replaced files keep their position (so a patched file
// produces a layout-compatible image, with only downstream shifts from
// size changes — as a real rebuild would).
func (st *SourceTree) AddFile(name, src string) {
	if _, ok := st.files[name]; !ok {
		st.order = append(st.order, name)
	}
	st.files[name] = src
}

// File returns a file's source and whether it exists.
func (st *SourceTree) File(name string) (string, bool) {
	s, ok := st.files[name]
	return s, ok
}

// Files returns the file names in build order.
func (st *SourceTree) Files() []string {
	return append([]string(nil), st.order...)
}

// Clone returns an independent deep copy — the patch server clones the
// reported tree before applying a source patch.
func (st *SourceTree) Clone() *SourceTree {
	c := NewSourceTree(st.cfg)
	c.order = append([]string(nil), st.order...)
	for k, v := range st.files {
		c.files[k] = v
	}
	return c
}

// SourcePatch is a source-level kernel patch: replacement contents for
// one or more files (the form a CVE fix arrives in).
type SourcePatch struct {
	// ID identifies the patch (e.g. the CVE number).
	ID string

	// Files maps file name to its complete post-patch source.
	Files map[string]string
}

// Apply replaces the patched files in the tree. Every patched file
// must already exist: a kernel patch modifies shipped code.
func (st *SourceTree) Apply(p SourcePatch) error {
	var names []string
	for name := range p.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := st.files[name]; !ok {
			return fmt.Errorf("apply %s: patch touches unknown file %q", p.ID, name)
		}
	}
	for _, name := range names {
		st.files[name] = p.Files[name]
	}
	return nil
}

// Build assembles and links the tree into a kernel image, returning
// the image and the merged source unit (the source-level view the
// patch pipeline's call-graph analysis consumes).
func (st *SourceTree) Build() (*isa.Image, *isa.Unit, error) {
	merged := isa.MustParse("") // empty unit to merge into
	for _, name := range st.order {
		u, err := isa.Parse(st.files[name])
		if err != nil {
			return nil, nil, fmt.Errorf("build %s: %w", name, err)
		}
		if err := merged.Merge(u); err != nil {
			return nil, nil, fmt.Errorf("build %s: %w", name, err)
		}
	}
	img, err := isa.Link(merged, isa.LinkOptions{
		TextBase: TextBase,
		DataBase: DataBase,
		Ftrace:   st.cfg.Ftrace,
		Inline:   st.cfg.Inline,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("build link: %w", err)
	}
	return img, merged, nil
}
