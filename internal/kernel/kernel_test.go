package kernel

import (
	"testing"

	"kshot/internal/isa"
	"kshot/internal/machine"
	"kshot/internal/mem"
)

// bootVersion builds and boots a base kernel of the given version.
func bootVersion(t *testing.T, version string) *Kernel {
	t.Helper()
	st, err := BaseTree(version)
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := Boot(m, img, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(0, "kernel_init"); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootAndSyscalls(t *testing.T) {
	k := bootVersion(t, "3.14")

	got, err := k.Call(0, "sys_compute", 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64((10+4)*(10-4) + 10); got != want {
		t.Errorf("sys_compute = %d, want %d", got, want)
	}

	for i := 0; i < 5; i++ {
		if _, err := k.Call(0, "schedule_tick"); err != nil {
			t.Fatal(err)
		}
	}
	j, err := k.ReadGlobal("jiffies")
	if err != nil || j != 5 {
		t.Errorf("jiffies = %d, %v", j, err)
	}
}

func TestVersionsDiffer(t *testing.T) {
	k314 := bootVersion(t, "3.14")
	k44 := bootVersion(t, "4.4")

	v1, err := k314.Call(0, "sys_version")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := k44.Call(0, "sys_version")
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Error("versions report identical codes")
	}
	// 4.4-only syscall exists only there.
	if _, err := k44.Call(0, "sys_feature_probe"); err != nil {
		t.Errorf("4.4 feature probe: %v", err)
	}
	if _, err := k314.Call(0, "sys_feature_probe"); err == nil {
		t.Error("3.14 kernel has 4.4 syscall")
	}
	// Same symbol, different addresses across versions (layout shifts).
	a1, err1 := k314.FuncAddr("sys_compute")
	a2, err2 := k44.FuncAddr("sys_compute")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1 == a2 {
		t.Log("note: sys_compute happens to coincide across versions")
	}

	if _, err := BaseTree("5.0"); err == nil {
		t.Error("unsupported version accepted")
	}
}

func TestMemSyscallsUseHeap(t *testing.T) {
	k := bootVersion(t, "4.4")
	// Fill a heap source buffer, copy it, checksum it via syscalls.
	src, dst := uint64(HeapBase), uint64(HeapBase+4096)
	for i := uint64(0); i < 8; i++ {
		if err := k.M.Mem.WriteU64(mem.PrivKernel, src+8*i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Call(0, "sys_memmove", dst, src, 8); err != nil {
		t.Fatal(err)
	}
	sum, err := k.Call(0, "sys_checksum", dst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 36 {
		t.Errorf("checksum = %d, want 36", sum)
	}
	ops, err := k.ReadGlobal("sys_ops")
	if err != nil || ops != 2 {
		t.Errorf("sys_ops = %d, %v; want 2", ops, err)
	}
}

func TestFtraceConfigAffectsBinary(t *testing.T) {
	// The same source built with and without ftrace yields different
	// function addresses/sizes — why the patch server needs the exact
	// config.
	st, err := BaseTree("3.14")
	if err != nil {
		t.Fatal(err)
	}
	imgTraced, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := st.Config()
	cfg.Ftrace = false
	st2 := NewSourceTree(cfg)
	for _, f := range st.Files() {
		src, _ := st.File(f)
		st2.AddFile(f, src)
	}
	imgPlain, _, err := st2.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := imgTraced.Symbols.Lookup("sys_compute")
	b, _ := imgPlain.Symbols.Lookup("sys_compute")
	if a.Size == b.Size {
		t.Error("ftrace made no difference to function size")
	}
	if !a.Traced || b.Traced {
		t.Error("traced flags wrong")
	}
}

func TestSourceTreePatching(t *testing.T) {
	st, err := BaseTree("3.14")
	if err != nil {
		t.Fatal(err)
	}
	orig := st.Clone()

	patched := `
; kernel/compat.asm (3.14, patched)
.func legacy_ioctl_shim
    mov r0, r1
    addi r0, 7
    ret
.endfunc
`
	p := SourcePatch{ID: "TEST-1", Files: map[string]string{"kernel/compat.asm": patched}}
	if err := st.Apply(p); err != nil {
		t.Fatal(err)
	}
	// Clone must be unaffected.
	if a, _ := orig.File("kernel/compat.asm"); a == patched {
		t.Error("Apply mutated the clone source")
	}
	// File order unchanged (layout compatibility).
	if got, want := st.Files(), orig.Files(); len(got) != len(want) {
		t.Error("file order changed")
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("file %d reordered: %s vs %s", i, got[i], want[i])
			}
		}
	}
	// Patch touching unknown file rejected.
	bad := SourcePatch{ID: "TEST-2", Files: map[string]string{"no/such.asm": ""}}
	if err := st.Apply(bad); err == nil {
		t.Error("patch for unknown file accepted")
	}

	// Patched tree builds and behaves differently.
	img, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	k, err := Boot(m, img, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Call(0, "legacy_ioctl_shim", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("patched shim(5) = %d, want 12", got)
	}
}

func TestReplaceImage(t *testing.T) {
	k := bootVersion(t, "3.14")
	before, err := k.Call(0, "sys_version")
	if err != nil {
		t.Fatal(err)
	}

	st, err := BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	k.M.Pause()
	err = k.ReplaceImage(img)
	k.M.Resume()
	if err != nil {
		t.Fatal(err)
	}
	after, err := k.Call(0, "sys_version")
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("whole-kernel replacement did not change behaviour")
	}
	// 4.4 syscalls now exist.
	if _, err := k.Call(0, "sys_feature_probe"); err != nil {
		t.Errorf("post-replace feature probe: %v", err)
	}
}

func TestGlobalAccessors(t *testing.T) {
	k := bootVersion(t, "3.14")
	if err := k.WriteGlobal("jiffies", 123); err != nil {
		t.Fatal(err)
	}
	v, err := k.ReadGlobal("jiffies")
	if err != nil || v != 123 {
		t.Errorf("jiffies = %d, %v", v, err)
	}
	if _, err := k.ReadGlobal("nosuch"); err == nil {
		t.Error("missing global read succeeded")
	}
	if err := k.WriteGlobal("nosuch", 1); err == nil {
		t.Error("missing global write succeeded")
	}
	if _, err := k.ReadGlobal("sys_compute"); err == nil {
		t.Error("function read as global succeeded")
	}
	if _, err := k.FuncAddr("jiffies"); err == nil {
		t.Error("global resolved as function")
	}
}

func TestFuncBytesReflectLiveMemory(t *testing.T) {
	k := bootVersion(t, "3.14")
	before, err := k.FuncBytes("sys_compute")
	if err != nil {
		t.Fatal(err)
	}
	// A kernel-privilege writer (e.g. a rootkit) changes live text;
	// FuncBytes must see it.
	addr, _ := k.FuncAddr("sys_compute")
	if err := k.M.Mem.Write(mem.PrivKernel, addr, []byte{byte(isa.OpRet)}); err != nil {
		t.Fatal(err)
	}
	after, err := k.FuncBytes("sys_compute")
	if err != nil {
		t.Fatal(err)
	}
	if after[0] == before[0] {
		t.Error("live text change not visible")
	}
}

func TestBuildErrors(t *testing.T) {
	st := NewSourceTree(BuildConfig{Version: "x"})
	st.AddFile("bad.asm", "garbage")
	if _, _, err := st.Build(); err == nil {
		t.Error("bad source built")
	}
	st2 := NewSourceTree(BuildConfig{})
	st2.AddFile("a.asm", ".func f\nret\n.endfunc")
	st2.AddFile("b.asm", ".func f\nret\n.endfunc")
	if _, _, err := st2.Build(); err == nil {
		t.Error("duplicate function across files built")
	}
}

func TestKernelTracedSymbols(t *testing.T) {
	k := bootVersion(t, "3.14")
	// With ftrace on, regular functions carry the prologue; notrace
	// helpers do not.
	s, ok := k.Symbols().Lookup("sys_compute")
	if !ok || !s.Traced {
		t.Error("sys_compute not traced")
	}
	h, ok := k.Symbols().Lookup("memcpy_words")
	if !ok || h.Traced {
		t.Error("memcpy_words unexpectedly traced")
	}
	fentry, ok := k.Symbols().Lookup("__fentry__")
	if !ok {
		t.Fatal("no __fentry__")
	}
	fb, err := k.FuncBytes("sys_compute")
	if err != nil {
		t.Fatal(err)
	}
	if !isa.HasFtracePrologue(fb, s.Addr, fentry.Addr) {
		t.Error("prologue signature missing in live text")
	}
}

func TestVFSSubsystem(t *testing.T) {
	k := bootVersion(t, "4.4")
	// Opening paths populates the dentry cache and the open counter.
	fd1, err := k.Call(0, "sys_open", 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := k.Call(0, "sys_open", 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fd1 == fd2 {
		t.Error("different paths hashed identically")
	}
	// Deterministic hashing.
	again, err := k.Call(0, "sys_open", 7, 3)
	if err != nil || again != fd1 {
		t.Errorf("rehash = %d, want %d (%v)", again, fd1, err)
	}
	open, err := k.ReadGlobal("open_files")
	if err != nil || open != 3 {
		t.Errorf("open_files = %d, %v", open, err)
	}
	if _, err := k.Call(0, "sys_close"); err != nil {
		t.Fatal(err)
	}
	open, _ = k.ReadGlobal("open_files")
	if open != 2 {
		t.Errorf("open_files after close = %d", open)
	}
	// Read accounting accumulates.
	if _, err := k.Call(0, "sys_read_acct", 100); err != nil {
		t.Fatal(err)
	}
	total, err := k.Call(0, "sys_read_acct", 28)
	if err != nil || total != 128 {
		t.Errorf("vfs_reads = %d, %v", total, err)
	}
}

func TestSocketBacklog(t *testing.T) {
	k := bootVersion(t, "4.4")
	// Fill the 8-slot backlog; the ninth packet drops with ENOBUFS.
	for i := uint64(1); i <= 8; i++ {
		v, err := k.Call(0, "sock_enqueue", i)
		if err != nil || v != 0 {
			t.Fatalf("enqueue %d = %d, %v", i, v, err)
		}
	}
	v, err := k.Call(0, "sock_enqueue", 99)
	if err != nil || v != 105 {
		t.Fatalf("overflow enqueue = %d, %v; want ENOBUFS", v, err)
	}
	drops, _ := k.ReadGlobal("sock_drops")
	if drops != 1 {
		t.Errorf("sock_drops = %d", drops)
	}
	sum, err := k.Call(0, "sock_drain")
	if err != nil || sum != 36 {
		t.Errorf("drain = %d, %v; want 36", sum, err)
	}
	// Queue empty again.
	if v, _ := k.Call(0, "sock_enqueue", 5); v != 0 {
		t.Error("enqueue after drain failed")
	}
}

func TestAuditTrail(t *testing.T) {
	k := bootVersion(t, "3.14")
	v, err := k.Call(0, "sys_privileged_op", 42, 10)
	if err != nil || v != 20 {
		t.Fatalf("privileged op = %d, %v", v, err)
	}
	if _, err := k.Call(0, "sys_privileged_op", 43, 1); err != nil {
		t.Fatal(err)
	}
	events, _ := k.ReadGlobal("audit_events")
	last, _ := k.ReadGlobal("audit_last")
	if events != 2 || last != 43 {
		t.Errorf("audit events=%d last=%d", events, last)
	}
}
