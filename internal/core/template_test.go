package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"kshot/internal/cvebench"
	"kshot/internal/obs"
	"kshot/internal/patchserver"
)

// templateFixture is a patch server plus the canonical options for a
// single-CVE target configuration.
type templateFixture struct {
	Server *patchserver.Server
	Entry  *cvebench.Entry
	Opts   Options
}

func newTemplateFixture(t *testing.T, cve string) *templateFixture {
	t.Helper()
	e, ok := cvebench.Get(cve)
	if !ok {
		t.Fatalf("unknown CVE %s", cve)
	}
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterPatch(e.SourcePatch())
	return &templateFixture{
		Server: srv,
		Entry:  e,
		Opts: Options{
			Version:    "4.4",
			NumVCPUs:   2,
			ExtraFiles: map[string]string{e.File: e.Vuln},
			ServerAddr: srv.Addr(),
			Rand:       &detRand{r: rand.New(rand.NewSource(42))},
		},
	}
}

func TestTemplateForkAppliesPatch(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")
	tpl, err := NewTemplate(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tpl.Close)

	sys, err := tpl.Fork(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	res, err := f.Entry.Exploit(sys.Kernel, 0)
	if err != nil || !res.Vulnerable {
		t.Fatalf("fork not vulnerable before patch: %v %v", res, err)
	}
	rep, err := sys.Apply(context.Background(), f.Entry.CVE)
	if err != nil {
		t.Fatalf("Apply on fork: %v", err)
	}
	st := rep.Stages
	if st.Fetch <= 0 || st.Preprocess <= 0 || st.KeyGen <= 0 || st.Apply <= 0 {
		t.Errorf("fork stage times not all positive: %+v", st)
	}
	res, err = f.Entry.Exploit(sys.Kernel, 0)
	if err != nil || res.Vulnerable {
		t.Fatalf("fork still vulnerable after patch: %v %v", res, err)
	}
}

func TestForkIsolation(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")
	tpl, err := NewTemplate(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tpl.Close)
	// Template frame baseline, taken before any fork exists.
	snap := tpl.Machine().Mem.Snapshot()

	a, err := tpl.Fork(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := tpl.Fork(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	// Patch fork a; run the exploit in fork b (which scribbles on b's
	// memory too).
	if _, err := a.Apply(context.Background(), f.Entry.CVE); err != nil {
		t.Fatal(err)
	}
	res, err := f.Entry.Exploit(b.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vulnerable {
		t.Error("sibling fork lost its vulnerability when the other fork was patched")
	}
	res, err = f.Entry.Exploit(a.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("patched fork still vulnerable")
	}

	// Frame-level witness: the template's memory is bit-identical to
	// its pre-fork snapshot — no patch, exploit, SMRAM key, or journal
	// write in either fork reached a shared frame.
	dirty, err := tpl.Machine().Mem.DiffFrames(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Errorf("fork activity dirtied template frames %v", dirty)
	}

	// And the forks' SMM channels keyed differently: their published
	// credentials differ even though the machines started identical.
	if a.attKey == nil || string(a.attKey) == string(b.attKey) {
		t.Error("sibling forks share an attestation key")
	}
	if string(a.sessionRoot) == string(b.sessionRoot) {
		t.Error("sibling forks share a session root")
	}
}

func TestForkedVsColdStageMetricsIdentical(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")

	cold, err := NewSystem(f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cold.Close)
	coldRep, err := cold.Apply(context.Background(), f.Entry.CVE)
	if err != nil {
		t.Fatal(err)
	}

	tpl, err := NewTemplate(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tpl.Close)
	forked, err := tpl.Fork(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(forked.Close)
	forkRep, err := forked.Apply(context.Background(), f.Entry.CVE)
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance bar: per-stage virtual metrics are bit-identical
	// between a forked and a cold-booted System for the same CVE. The
	// derived-session channel charges the same modeled costs DH does;
	// only host wall-clock differs.
	if coldRep.Stages != forkRep.Stages {
		t.Errorf("stage metrics diverge:\n cold %+v\n fork %+v", coldRep.Stages, forkRep.Stages)
	}
}

func TestTemplateCacheSingleflight(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")
	cache := NewTemplateCache()
	t.Cleanup(cache.Close)
	hooks := obs.NewHooks(64, nil)
	cache.SetObserver(hooks)

	const n = 4
	var wg sync.WaitGroup
	systems := make([]*System, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := f.Opts
			opts.Rand = nil // concurrent forks must not share the seeded reader
			opts.TemplateCache = cache
			systems[i], errs[i] = NewSystemCtx(context.Background(), opts)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("system %d: %v", i, errs[i])
		}
		t.Cleanup(systems[i].Close)
	}

	st := cache.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("hits = %d, want %d", st.Hits, n-1)
	}
	if st.Forks != n {
		t.Errorf("forks = %d, want %d", st.Forks, n)
	}
	if st.Templates != 1 {
		t.Errorf("templates = %d, want 1", st.Templates)
	}
	snap := hooks.Metrics.Snapshot()
	got := map[string]int64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	if got[obs.CtrTemplateMisses] != 1 || got[obs.CtrTemplateHits] != int64(n-1) || got[obs.CtrTemplateForks] != int64(n) {
		t.Errorf("obs counters = %v", got)
	}

	// Every forked system patches independently.
	for i, sys := range systems[:2] {
		if _, err := sys.Apply(context.Background(), f.Entry.CVE); err != nil {
			t.Fatalf("apply on cached-fork %d: %v", i, err)
		}
	}
}

func TestTemplateCacheKeySeparatesConfigs(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")
	cache := NewTemplateCache()
	t.Cleanup(cache.Close)

	mk := func(mutate func(*Options)) *System {
		t.Helper()
		opts := f.Opts
		opts.TemplateCache = cache
		mutate(&opts)
		sys, err := NewSystemCtx(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sys.Close)
		return sys
	}
	mk(func(o *Options) {})
	mk(func(o *Options) { o.DisableFtrace = true })
	mk(func(o *Options) { o.NumVCPUs = 1 })
	// Per-fork knobs must NOT split the key.
	mk(func(o *Options) { o.CheckActiveness = true })

	if st := cache.Stats(); st.Templates != 3 {
		t.Errorf("templates = %d, want 3 (ftrace and vCPUs split, activeness does not)", st.Templates)
	}
}

func TestConcurrentForksFromOneTemplate(t *testing.T) {
	// N goroutines fork from one template and patch concurrently —
	// under -race this exercises the cross-store COW protocol end to
	// end (shared frames, per-fork SMRAM secrets, lazy server attach).
	f := newTemplateFixture(t, "CVE-2014-0196")
	tpl, err := NewTemplate(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tpl.Close)
	snap := tpl.Machine().Mem.Snapshot()

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := f.Opts
			opts.Rand = nil
			sys, err := tpl.Fork(context.Background(), opts)
			if err != nil {
				t.Errorf("fork %d: %v", i, err)
				return
			}
			defer sys.Close()
			if _, err := sys.Apply(context.Background(), f.Entry.CVE); err != nil {
				t.Errorf("fork %d apply: %v", i, err)
				return
			}
			if res, err := f.Entry.Exploit(sys.Kernel, 0); err != nil || res.Vulnerable {
				t.Errorf("fork %d still vulnerable: %v %v", i, res, err)
			}
		}(i)
	}
	wg.Wait()

	dirty, err := tpl.Machine().Mem.DiffFrames(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Errorf("concurrent forks dirtied template frames %v", dirty)
	}
}

func TestProvisioningCtxCancelled(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := NewSystemCtx(ctx, f.Opts); err == nil {
		t.Fatal("cold provisioning ignored cancelled ctx")
	}
	cache := NewTemplateCache()
	t.Cleanup(cache.Close)
	opts := f.Opts
	opts.TemplateCache = cache
	if _, err := NewSystemCtx(ctx, opts); err == nil {
		t.Fatal("template provisioning ignored cancelled ctx")
	}
}

func TestTemplateClosedRejectsForks(t *testing.T) {
	f := newTemplateFixture(t, "CVE-2014-0196")
	tpl, err := NewTemplate(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	// A fork taken before Close keeps working after it.
	sys, err := tpl.Fork(context.Background(), f.Opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	tpl.Close()
	if _, err := tpl.Fork(context.Background(), f.Opts); err != ErrTemplateClosed {
		t.Fatalf("fork after Close: err = %v, want ErrTemplateClosed", err)
	}
	if _, err := sys.Apply(context.Background(), f.Entry.CVE); err != nil {
		t.Fatalf("pre-Close fork broken by template Close: %v", err)
	}
}
