package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"kshot/internal/obs"
	"kshot/internal/options"
	"kshot/internal/patchserver"
	"kshot/internal/pipeline"
	"kshot/internal/sgxprep"
	"kshot/internal/smmpatch"
	"kshot/internal/timing"
)

// ApplyOption tunes an ApplyAll run. Every With* validates its
// argument eagerly; ApplyAll reports the first rejected option as a
// typed *options.Error matching options.ErrInvalid, before any fetch
// is issued.
type ApplyOption func(*applyConfig) error

type applyConfig struct {
	batchSize    int
	fetchWorkers int
	maxRetries   int
	backoff      time.Duration
	syncFetch    bool
}

func applyOptErr(option, format string, a ...any) error {
	return options.Errorf("System.ApplyAll", option, format, a...)
}

// WithBatchSize caps how many patches are delivered under one SMI
// (default pipeline.DefaultBatchSize, max smmpatch.MaxBatchMembers).
func WithBatchSize(n int) ApplyOption {
	return func(c *applyConfig) error {
		if n < 1 {
			return applyOptErr("WithBatchSize", "must be >= 1, got %d", n)
		}
		c.batchSize = n
		return nil
	}
}

// WithFetchWorkers sets the number of concurrent Stage-1 fetch
// connections (default pipeline.DefaultWorkers).
func WithFetchWorkers(n int) ApplyOption {
	return func(c *applyConfig) error {
		if n < 1 {
			return applyOptErr("WithFetchWorkers", "must be >= 1, got %d", n)
		}
		c.fetchWorkers = n
		return nil
	}
}

// WithMaxRetries bounds per-patch redeliveries after an activeness
// refusal; negative disables retries (default pipeline.DefaultMaxRetries).
func WithMaxRetries(n int) ApplyOption {
	return func(c *applyConfig) error {
		c.maxRetries = n
		return nil
	}
}

// WithRetryBackoff sets the base real-time delay before the first
// retry; it doubles per attempt (default pipeline.DefaultBackoff).
func WithRetryBackoff(d time.Duration) ApplyOption {
	return func(c *applyConfig) error {
		if d < 0 {
			return applyOptErr("WithRetryBackoff", "must be >= 0, got %v", d)
		}
		c.backoff = d
		return nil
	}
}

// WithSyncFetch fetches each batch inline right before delivering it,
// giving up fetch/delivery overlap so a seeded fault schedule replays
// at identical call indices on every run. Chaos tests use this;
// production runs should not.
func WithSyncFetch() ApplyOption {
	return func(c *applyConfig) error {
		c.syncFetch = true
		return nil
	}
}

// BatchReport is the outcome of one ApplyAll run.
type BatchReport struct {
	// Reports holds the successfully applied patches in request order.
	Reports []*Report

	// Failed maps each CVE that did not land to its final error.
	Failed map[string]error

	// Requested is the number of CVEs asked for.
	Requested int

	// SMIs is the number of SMM world switches this run raised;
	// SMMPause is the total virtual time the OS spent paused for them.
	// Batched delivery makes SMIs < Requested.
	SMIs     uint64
	SMMPause time.Duration

	// Pipeline traffic counters (see pipeline.Result).
	Batches  int
	Singles  int
	Retries  int
	Degraded int
}

// ApplyAll live-patches many CVEs through the concurrent batch
// pipeline: fetches fan out over a pool of attested server
// connections, the enclave prepares each batch in one ECALL, and each
// batch applies under a single SMI. Per-patch failures land in
// BatchReport.Failed without sinking the rest; the error return is
// reserved for cancellation.
func (s *System) ApplyAll(ctx context.Context, cves []string, opts ...ApplyOption) (*BatchReport, error) {
	if err := s.ensureAttached(ctx); err != nil {
		return nil, err
	}
	var cfg applyConfig
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	batchSize := cfg.batchSize
	if batchSize <= 0 {
		batchSize = pipeline.DefaultBatchSize
	}
	if batchSize > smmpatch.MaxBatchMembers {
		batchSize = smmpatch.MaxBatchMembers
	}
	workers := cfg.fetchWorkers
	if workers <= 0 {
		workers = pipeline.DefaultWorkers
	}

	// Stage-1 connection pool: each worker gets its own attested
	// connection so server-side patch builds genuinely overlap (the
	// server's channel-key cache hands every connection the key this
	// system's enclave holds). A failed dial falls back to sharing the
	// boot-time connection, which is mutex-guarded.
	nbatches := (len(cves) + batchSize - 1) / batchSize
	poolSize := workers
	if poolSize > nbatches {
		poolSize = nbatches
	}
	if poolSize < 1 {
		poolSize = 1
	}
	fetchers := make(chan *patchserver.Client, poolSize)
	var dialed []*patchserver.Client
	for i := 0; i < poolSize; i++ {
		if c, err := patchserver.Dial(s.serverAddr, s.dialOptions()...); err == nil {
			if _, err := c.HelloWithAttestation(s.info, s.meas, s.attKey); err == nil {
				c.SetFaultInjector(s.fi)
				c.SetWallClock(s.wall)
				c.SetObserver(s.obs)
				dialed = append(dialed, c)
				fetchers <- c
				continue
			}
			_ = c.Close()
		}
		fetchers <- s.client
	}
	defer func() {
		for _, c := range dialed {
			_ = c.Close()
		}
	}()

	entries0 := s.SMM.Entries()
	pause0 := s.SMM.TotalPause()

	res, runErr := pipeline.Run(ctx, &batchBackend{s: s, fetchers: fetchers}, cves, pipeline.Config{
		BatchSize:  batchSize,
		Workers:    workers,
		MaxRetries: cfg.maxRetries,
		Backoff:    cfg.backoff,
		Retryable:  func(err error) bool { return errors.Is(err, smmpatch.ErrTargetActive) },
		Clock:      s.wall,
		FI:         s.fi,
		Obs:        s.obs,
		SyncFetch:  cfg.syncFetch,
	})

	rep := &BatchReport{
		Requested: len(cves),
		Failed:    make(map[string]error),
		SMIs:      s.SMM.Entries() - entries0,
		SMMPause:  s.SMM.TotalPause() - pause0,
		Batches:   res.Batches,
		Singles:   res.Singles,
		Retries:   res.Retries,
		Degraded:  res.Degraded,
	}
	for _, m := range res.Members {
		if m.Err != nil {
			rep.Failed[m.CVE] = m.Err
			continue
		}
		rep.Reports = append(rep.Reports, &Report{ID: m.CVE, Stages: m.Stages})
	}
	return rep, runErr
}

// batchBackend adapts the System to the pipeline's Backend interface.
type batchBackend struct {
	s        *System
	fetchers chan *patchserver.Client
}

func (b *batchBackend) FetchMany(ctx context.Context, cves []string) ([]pipeline.Fetched, error) {
	var c *patchserver.Client
	select {
	case c = <-b.fetchers:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { b.fetchers <- c }()
	rs, err := c.FetchPatches(ctx, cves)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrFetch, err)
	}
	out := make([]pipeline.Fetched, len(rs))
	for i, r := range rs {
		f := pipeline.Fetched{CVE: r.CVE, Blob: r.Blob}
		if r.Err != nil {
			f.Blob = nil
			f.Err = fmt.Errorf("%w: %s: %w", ErrFetch, r.CVE, r.Err)
		} else {
			f.Time = timing.Linear(b.s.Model.FetchFixed, b.s.Model.FetchPerByte, len(r.Blob))
			b.s.Clock.Advance(f.Time)
			b.s.obs.Span(obs.PhaseFetch, r.CVE, -1, f.Time, len(r.Blob))
		}
		out[i] = f
	}
	return out, nil
}

// DeliverOne applies one already-fetched member through the
// single-package path (its own SMI) — used for single-member batches,
// retries after activeness refusals, and degraded batch members.
func (b *batchBackend) DeliverOne(ctx context.Context, m *pipeline.Member) error {
	st := StageTimes{Fetch: m.Stages.Fetch}
	rep, err := b.s.applyPrepared(ctx, m.CVE, m.Blob, &st)
	if err != nil {
		m.Stages = st
		return err
	}
	m.Stages = rep.Stages
	return nil
}

// DeliverBatch runs Stages 2–4 for a whole batch: one prepare-many
// ECALL, one staging directory, one SMI. Per-member outcomes land on
// the members; a non-nil return means the SMI itself failed and the
// pipeline should degrade to per-patch delivery.
func (b *batchBackend) DeliverBatch(ctx context.Context, members []*pipeline.Member) error {
	s := b.s
	if err := ctx.Err(); err != nil {
		return err
	}

	// Stage 2: prepare every member in one ECALL at running cursors.
	smmPub, err := smmpatch.ReadSMMPub(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return fmt.Errorf("core: read SMM key: %w", err)
	}
	memX, data := s.Handler.Cursors()
	blobs := make([][]byte, len(members))
	for i, m := range members {
		blobs[i] = m.Blob
	}
	args, err := sgxprep.EncodeArgs(sgxprep.BatchPrepareArgs{
		ServerBlobs: blobs,
		SMMPub:      smmPub,
		MemXCursor:  memX,
		DataCursor:  data,
	})
	if err != nil {
		return err
	}
	out, err := s.ecall(sgxprep.FnPrepareBatch, args)
	if err != nil {
		return fmt.Errorf("%w: batch: %w", ErrEnclavePrepare, err)
	}
	br, err := sgxprep.DecodeBatchResult(out)
	if err != nil {
		return err
	}
	if len(br.Members) != len(members) {
		return fmt.Errorf("core: batch prepare returned %d members, want %d", len(br.Members), len(members))
	}

	// Stage 3: stage the successfully prepared members as one mem_W
	// directory; preparation failures get per-member errors and drop
	// out here (the pipeline gives them a per-patch attempt).
	var staged []smmpatch.BatchMember
	var stagedIdx []int
	for i, mr := range br.Members {
		m := members[i]
		if mr.Err != "" {
			m.Err = fmt.Errorf("%w: %s: %s", ErrEnclavePrepare, m.CVE, mr.Err)
			continue
		}
		m.Stages.Preprocess = mr.Prep
		m.Stages.PayloadBytes = mr.PayloadBytes
		m.Stages.Pass = timing.Linear(s.Model.PassFixed, s.Model.PassPerByte, len(mr.Ciphertext))
		s.Clock.Advance(m.Stages.Pass)
		staged = append(staged, smmpatch.BatchMember{EnclavePub: mr.EnclavePub, Ciphertext: mr.Ciphertext})
		stagedIdx = append(stagedIdx, i)
	}
	if len(staged) == 0 {
		return nil
	}
	if err := smmpatch.StageBatch(s.Machine.Mem, s.helperPriv, s.Kernel.Res, staged); err != nil {
		return fmt.Errorf("core: stage batch: %w", err)
	}

	// Stage 4: one SMI for the whole batch, announced to the detector
	// like the single-package path so replays stay distinguishable.
	s.det.ExpectSMI(uint8(smmpatch.CmdProcessBatch))
	s.det.BeginTrustedWindow()
	batchErr := s.SMM.Trigger(smmpatch.CmdProcessBatch, 0)
	// Closing the window rebaselines atomically: a background sweep
	// can never diff this SMI's text changes against the old baseline.
	s.det.EndTrustedWindow()
	if batchErr != nil {
		return fmt.Errorf("core: SMM batch processing: %w", batchErr)
	}
	codes, err := smmpatch.ReadBatchResults(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return err
	}
	if len(codes) != len(staged) {
		return fmt.Errorf("core: batch results: %d codes for %d members", len(codes), len(staged))
	}
	bds := s.Handler.BatchBreakdowns()
	switchShare := timing.AmortizeFixed(s.Model.SMMEntry+s.Model.SMMExit, len(staged))
	for j, idx := range stagedIdx {
		m := members[idx]
		if j < len(bds) {
			m.Stages.KeyGen = bds[j].KeyGen
			m.Stages.Decrypt = bds[j].Decrypt
			m.Stages.Verify = bds[j].Verify
			m.Stages.Apply = bds[j].Apply
		}
		m.Stages.Switch = switchShare
		switch codes[j] {
		case smmpatch.StatusPatched:
			m.Err = nil
			s.obs.ObserveDur(obs.HistDowntime,
				m.Stages.KeyGen+m.Stages.Decrypt+m.Stages.Verify+m.Stages.Apply+m.Stages.Switch)
			s.det.NoteApplied(m.CVE)
		case smmpatch.StatusTargetActive:
			m.Err = fmt.Errorf("core: %s: %w", m.CVE, smmpatch.ErrTargetActive)
			s.det.NoteActiveRefusal(m.CVE)
		default:
			m.Err = fmt.Errorf("core: %s: batch member status %d", m.CVE, codes[j])
		}
	}
	// Confirm the batch SMI through the status mailbox and report to
	// the server with its MAC, same as single deliveries.
	status, err := smmpatch.ReadStatusRecord(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return err
	}
	if status.Code != smmpatch.StatusBatchDone {
		return &StatusError{ID: "batch", Got: status.Code, Want: smmpatch.StatusBatchDone}
	}
	return s.client.ReportStatusMAC(status.Code, status.Seq, status.Digest, status.MAC[:])
}
