package core

import (
	"errors"
	"fmt"

	"kshot/internal/smmpatch"
)

// Typed failure classes for the Apply/Rollback/ApplyAll paths. Callers
// branch with errors.Is rather than matching message strings:
//
//	_, err := sys.Apply(ctx, cve)
//	switch {
//	case errors.Is(err, core.ErrTargetActive): // retry later
//	case errors.Is(err, core.ErrFetch):        // network/server trouble
//	}
var (
	// ErrFetch classifies Stage-1 failures: the helper could not
	// download the encrypted patch from the remote server.
	ErrFetch = errors.New("core: patch fetch failed")

	// ErrEnclavePrepare classifies Stage-2 failures: the SGX enclave
	// refused or failed to preprocess the patch (bad server seal, wrong
	// kernel version, unresolvable symbols).
	ErrEnclavePrepare = errors.New("core: enclave preparation failed")

	// ErrStatusMismatch classifies Stage-4 confirmation failures: the
	// SMM status mailbox reported a different outcome than the helper
	// expected. Inspect the *StatusError for the codes.
	ErrStatusMismatch = errors.New("core: unexpected SMM status")

	// ErrTargetActive re-exports the SMM activeness refusal so callers
	// need not import smmpatch to classify the one retryable failure.
	ErrTargetActive = smmpatch.ErrTargetActive
)

// StatusError reports a status-mailbox code that did not match the
// expected outcome of a delivery. It matches ErrStatusMismatch under
// errors.Is and is retrieved with errors.As for the codes.
type StatusError struct {
	ID   string // patch ID the delivery was for
	Got  uint32 // smmpatch.Status* code read from the mailbox
	Want uint32
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("core: %s: SMM status %d, want %d", e.ID, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrStatusMismatch) true for StatusErrors.
func (e *StatusError) Is(target error) bool { return target == ErrStatusMismatch }
