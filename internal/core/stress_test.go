package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// TestApplyAllRandomizedWaveOrder delivers the conflict-free CVE set
// in seeded-random waves — shuffled order, random split points, random
// batch sizes and fetch-worker counts — and requires the end state to
// be identical every time: all exploits neutralized, the journal LIFO
// rollbackable, and the system reusable afterwards. Run under -race
// this doubles as a concurrency stress on the pipelined fetch path.
func TestApplyAllRandomizedWaveOrder(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d := newDeployment(t, "4.4", 0, batchCVEs...)

			order := append([]string(nil), batchCVEs...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			// Split into 1–3 waves at random boundaries.
			var waves [][]string
			for rest := order; len(rest) > 0; {
				n := 1 + rng.Intn(len(rest))
				waves = append(waves, rest[:n])
				rest = rest[n:]
			}

			for wi, wave := range waves {
				rep, err := d.System.ApplyAll(context.Background(), wave,
					WithBatchSize(1+rng.Intn(8)),
					WithFetchWorkers(1+rng.Intn(3)))
				if err != nil {
					t.Fatalf("wave %d %v: %v", wi, wave, err)
				}
				if len(rep.Failed) > 0 {
					t.Fatalf("wave %d failures: %v", wi, rep.Failed)
				}
			}

			applied := d.System.Applied()
			if len(applied) != len(batchCVEs) {
				t.Fatalf("Applied() = %v", applied)
			}
			for _, e := range d.Entries {
				res, err := e.Exploit(d.System.Kernel, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Vulnerable {
					t.Errorf("%s still vulnerable after waves %v", e.CVE, waves)
				}
			}

			// Whatever the wave order, the journal rolls back LIFO and
			// leaves a clean, reusable system.
			for i := len(applied) - 1; i >= 0; i-- {
				if _, err := d.System.Rollback(context.Background(), applied[i]); err != nil {
					t.Fatalf("rollback %s: %v", applied[i], err)
				}
			}
			if got := d.System.Applied(); len(got) != 0 {
				t.Fatalf("Applied() after rollback = %v", got)
			}
			if rep, err := d.System.ApplyAll(context.Background(), batchCVEs); err != nil || len(rep.Failed) > 0 {
				t.Fatalf("re-ApplyAll after stress: %v, failed %v", err, rep.Failed)
			}
		})
	}
}
