package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/kcrypto"
	"kshot/internal/mem"
	"kshot/internal/patchserver"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/smmpatch"
)

// detRand is a deterministic entropy source for reproducible tests.
type detRand struct{ r *rand.Rand }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// testDeployment is a server + provisioned system fixture.
type testDeployment struct {
	Server  *patchserver.Server
	System  *System
	Entries []*cvebench.Entry
}

func newDeployment(t *testing.T, version string, alg kcrypto.HashAlg, cves ...string) *testDeployment {
	t.Helper()
	entries := make([]*cvebench.Entry, len(cves))
	extra := make(map[string]string, len(cves))
	for i, id := range cves {
		e, ok := cvebench.Get(id)
		if !ok {
			t.Fatalf("unknown CVE %s", id)
		}
		entries[i] = e
		extra[e.File] = e.Vuln
	}
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entries...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}
	sys, err := NewSystem(Options{
		Version:    version,
		NumVCPUs:   2,
		ExtraFiles: extra,
		ServerAddr: srv.Addr(),
		HashAlg:    alg,
		Rand:       &detRand{r: rand.New(rand.NewSource(42))},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return &testDeployment{Server: srv, System: sys, Entries: entries}
}

func TestApplyEndToEnd(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196")
	e := d.Entries[0]

	res, err := e.Exploit(d.System.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vulnerable {
		t.Fatal("kernel not vulnerable before patch")
	}

	rep, err := d.System.Apply(context.Background(), e.CVE)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if rep.ID != e.CVE {
		t.Errorf("report ID = %s", rep.ID)
	}
	st := rep.Stages
	if st.Fetch <= 0 || st.Preprocess <= 0 || st.Pass <= 0 {
		t.Errorf("SGX stages not all positive: %+v", st)
	}
	if st.Decrypt <= 0 || st.Verify <= 0 || st.Apply <= 0 || st.KeyGen <= 0 || st.Switch <= 0 {
		t.Errorf("SMM stages not all positive: %+v", st)
	}
	if st.PayloadBytes == 0 {
		t.Error("payload bytes = 0")
	}
	if st.SMMTotal() >= st.SGXTotal() {
		t.Errorf("SMM pause (%v) should be far below SGX prep (%v) for this size", st.SMMTotal(), st.SGXTotal())
	}

	res, err = e.Exploit(d.System.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Errorf("kernel still vulnerable after patch: %s", res.Detail)
	}
	if got := d.System.Applied(); len(got) != 1 || got[0] != e.CVE {
		t.Errorf("Applied() = %v", got)
	}
	// The server received the deployment status (DoS handshake).
	sts := d.Server.Statuses()
	if len(sts) == 0 || sts[len(sts)-1].Code != smmpatch.StatusPatched {
		t.Errorf("server statuses = %+v", sts)
	}
}

func TestApplyThenRollback(t *testing.T) {
	d := newDeployment(t, "3.14", 0, "CVE-2015-1333")
	e := d.Entries[0]

	if _, err := d.System.Apply(context.Background(), e.CVE); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exploit(d.System.Kernel, 0)
	if err != nil || res.Vulnerable {
		t.Fatalf("patch ineffective: %+v, %v", res, err)
	}

	if _, err := d.System.Rollback(context.Background(), e.CVE); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	res, err = e.Exploit(d.System.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vulnerable {
		t.Error("rollback did not restore vulnerable behaviour")
	}
	if got := d.System.Applied(); len(got) != 0 {
		t.Errorf("Applied() after rollback = %v", got)
	}
	// Re-apply works after rollback.
	if _, err := d.System.Apply(context.Background(), e.CVE); err != nil {
		t.Fatalf("re-apply: %v", err)
	}
	res, _ = e.Exploit(d.System.Kernel, 0)
	if res.Vulnerable {
		t.Error("re-applied patch ineffective")
	}
}

func TestRollbackWithoutApply(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-7842")
	if _, err := d.System.Rollback(context.Background(), "CVE-2014-7842"); err == nil {
		t.Error("rollback with empty journal succeeded")
	}
}

func TestDuplicateApplyRejected(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2016-7916")
	if _, err := d.System.Apply(context.Background(), "CVE-2016-7916"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.System.Apply(context.Background(), "CVE-2016-7916"); err == nil {
		t.Error("duplicate apply succeeded")
	}
}

func TestApplyUnknownCVE(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2016-7916")
	if _, err := d.System.Apply(context.Background(), "CVE-1999-0001"); err == nil {
		t.Error("unknown CVE applied")
	}
}

func TestSequentialPatches(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196", "CVE-2016-7916", "CVE-2017-17053")
	for _, e := range d.Entries {
		res, err := e.Exploit(d.System.Kernel, 0)
		if err != nil || !res.Vulnerable {
			t.Fatalf("%s not vulnerable pre-patch: %+v %v", e.CVE, res, err)
		}
		if _, err := d.System.Apply(context.Background(), e.CVE); err != nil {
			t.Fatalf("apply %s: %v", e.CVE, err)
		}
	}
	// All three fixed simultaneously.
	for _, e := range d.Entries {
		res, err := e.Exploit(d.System.Kernel, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Vulnerable {
			t.Errorf("%s still vulnerable: %s", e.CVE, res.Detail)
		}
	}
	if got := d.System.Applied(); len(got) != 3 {
		t.Errorf("Applied() = %v", got)
	}
	// Only the most recent can be rolled back.
	if _, err := d.System.Rollback(context.Background(), d.Entries[0].CVE); err == nil {
		t.Error("out-of-order rollback succeeded")
	}
	if _, err := d.System.Rollback(context.Background(), d.Entries[2].CVE); err != nil {
		t.Errorf("in-order rollback failed: %v", err)
	}
}

func TestSDBMHashVariant(t *testing.T) {
	d := newDeployment(t, "4.4", kcrypto.HashSDBM, "CVE-2016-2543")
	e := d.Entries[0]
	rep, err := d.System.Apply(context.Background(), e.CVE)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := e.Exploit(d.System.Kernel, 0)
	if res.Vulnerable {
		t.Error("SDBM-verified patch ineffective")
	}
	if rep.Stages.Verify <= 0 {
		t.Error("verify stage empty")
	}
}

func TestProtectDetectsAndRepairsReversion(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196")
	e := d.Entries[0]

	// Remember the original entry bytes the way a rootkit that
	// snapshotted the kernel would.
	addr, err := d.System.Kernel.FuncAddr(e.Functions[0])
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]byte, 10)
	if err := d.System.Machine.Mem.Read(mem.PrivKernel, addr, orig); err != nil {
		t.Fatal(err)
	}

	if _, err := d.System.Apply(context.Background(), e.CVE); err != nil {
		t.Fatal(err)
	}
	// Clean introspection pass first.
	tampered, err := d.System.Protect()
	if err != nil {
		t.Fatal(err)
	}
	if tampered {
		t.Error("false positive tampering report")
	}

	// The rootkit reverts the patch at kernel privilege (§V-D's
	// malicious patch reversion).
	if err := d.System.Machine.Mem.Write(mem.PrivKernel, addr, orig); err != nil {
		t.Fatal(err)
	}
	res, _ := e.Exploit(d.System.Kernel, 0)
	if !res.Vulnerable {
		t.Fatal("reversion did not restore the vulnerability")
	}

	tampered, err = d.System.Protect()
	if err != nil {
		t.Fatal(err)
	}
	if !tampered {
		t.Error("introspection missed the reversion")
	}
	// The repair restored the trampoline.
	res, _ = e.Exploit(d.System.Kernel, 0)
	if res.Vulnerable {
		t.Error("introspection did not repair the patch")
	}
}

func TestApplyUnderConcurrentWorkload(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2016-5829")
	e := d.Entries[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for v := 0; v < d.System.Machine.NumVCPUs(); v++ {
		wg.Add(1)
		go func(vcpu int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.System.Kernel.Call(vcpu, "sys_compute", i, 3); err != nil {
					t.Errorf("workload on vcpu %d: %v", vcpu, err)
					return
				}
			}
		}(v)
	}
	if _, err := d.System.Apply(context.Background(), e.CVE); err != nil {
		t.Fatalf("apply under load: %v", err)
	}
	close(stop)
	wg.Wait()
	res, _ := e.Exploit(d.System.Kernel, 0)
	if res.Vulnerable {
		t.Error("patch under load ineffective")
	}
}

func TestHelperCannotReadPatchTraffic(t *testing.T) {
	// The staged package in mem_W is write-only for the helper and the
	// kernel: neither can read it back.
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196")
	if _, err := d.System.Apply(context.Background(), "CVE-2014-0196"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	res := d.System.Kernel.Res
	if err := d.System.Machine.Mem.Read(mem.PrivUser, smmpatch.PackageAddr(res), buf); err == nil {
		t.Error("helper read staged package")
	}
	if err := d.System.Machine.Mem.Read(mem.PrivKernel, smmpatch.PackageAddr(res), buf); err == nil {
		t.Error("kernel read staged package")
	}
	// And mem_X payloads are execute-only.
	memX, _ := d.System.Handler.Cursors()
	if memX == 0 {
		t.Fatal("no mem_X usage recorded")
	}
	if err := d.System.Machine.Mem.Read(mem.PrivKernel, res.XBase(), buf); err == nil {
		t.Error("kernel read patched text in mem_X")
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem(Options{Version: "9.9", ServerAddr: "127.0.0.1:1"}); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewSystem(Options{Version: "4.4", ServerAddr: "127.0.0.1:1"}); err == nil {
		t.Error("dead server accepted")
	}
	// A server that does not know the vulnerable subsystem cannot
	// patch it; Apply fails cleanly.
	e, _ := cvebench.Get("CVE-2014-0196")
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterPatch(e.SourcePatch())
	sys, err := NewSystem(Options{
		Version:    "4.4",
		ExtraFiles: map[string]string{e.File: e.Vuln},
		ServerAddr: srv.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Apply(context.Background(), e.CVE); err == nil {
		t.Error("patch for unknown subsystem applied")
	} else if !strings.Contains(err.Error(), "unknown file") && err == nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDoSDetectionViaServerHandshake(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196")

	// Healthy flow: the server sees the deployment status promptly.
	if _, err := d.System.Apply(context.Background(), "CVE-2014-0196"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Server.AwaitStatus(0, time.Second); !ok {
		t.Fatal("server missed healthy deployment status")
	}

	// DoS: a kernel-level attacker suppresses the helper after the
	// fetch — the patch is never staged, no SMI fires, and no status
	// arrives. The server's timeout detects it (§V-D).
	blob, err := fetchOnly(d)
	if err != nil {
		t.Fatal(err)
	}
	_ = blob // attacker drops it here
	after := lastSeq(d.Server)
	if _, ok := d.Server.AwaitStatus(after, 50*time.Millisecond); ok {
		t.Error("server saw a status for a suppressed deployment")
	}
}

// fetchOnly performs just the helper's fetch step.
func fetchOnly(d *testDeployment) ([]byte, error) {
	c, err := patchserver.Dial(d.Server.Addr())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	meas := sgxMeasurement("4.4")
	if _, err := c.Hello(patchserver.OSInfo{Version: "4.4", Ftrace: true, Inline: true}, meas); err != nil {
		return nil, err
	}
	return c.FetchPatch(context.Background(), "CVE-2014-0196")
}

func sgxMeasurement(version string) sgx.Measurement {
	return sgx.MeasureIdentity(sgxprep.Identity(version))
}

func lastSeq(s *patchserver.Server) uint64 {
	var max uint64
	for _, st := range s.Statuses() {
		if st.Seq > max {
			max = st.Seq
		}
	}
	return max
}

func TestActivenessOptionEndToEnd(t *testing.T) {
	// With CheckActiveness on, a patch to a function currently running
	// on a vCPU is refused and can be retried once the call drains.
	entries := []*cvebench.Entry{mustGet(t, "CVE-2014-0196")}
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(entries...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterPatch(entries[0].SourcePatch())
	sys, err := NewSystem(Options{
		Version:         "4.4",
		NumVCPUs:        2,
		ExtraFiles:      map[string]string{entries[0].File: entries[0].Vuln},
		ServerAddr:      srv.Addr(),
		CheckActiveness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	// Idle machine: the check passes and the patch lands.
	if _, err := sys.Apply(context.Background(), entries[0].CVE); err != nil {
		t.Fatalf("idle apply with activeness: %v", err)
	}
	res, _ := entries[0].Exploit(sys.Kernel, 0)
	if res.Vulnerable {
		t.Error("patch ineffective under activeness checking")
	}
}

func TestWatchKernelTextViaSystem(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196")
	if err := d.System.WatchKernelText(); err != nil {
		t.Fatal(err)
	}
	// Own patch: no tampering flagged.
	if _, err := d.System.Apply(context.Background(), "CVE-2014-0196"); err != nil {
		t.Fatal(err)
	}
	tampered, err := d.System.Protect()
	if err != nil {
		t.Fatal(err)
	}
	if tampered {
		t.Error("own patch flagged by text watch")
	}
	// Rootkit modifies an unrelated function: flagged.
	addr, err := d.System.Kernel.FuncAddr("schedule_tick")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.System.Machine.Mem.Write(mem.PrivKernel, addr+6, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	tampered, err = d.System.Protect()
	if err != nil {
		t.Fatal(err)
	}
	if !tampered {
		t.Error("foreign text modification missed by watch")
	}
}

func mustGet(t *testing.T, id string) *cvebench.Entry {
	t.Helper()
	e, ok := cvebench.Get(id)
	if !ok {
		t.Fatalf("unknown CVE %s", id)
	}
	return e
}

func TestStatusAttestationAuthenticity(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2014-0196")

	// A genuine deployment produces an authentic status at the server.
	if _, err := d.System.Apply(context.Background(), "CVE-2014-0196"); err != nil {
		t.Fatal(err)
	}
	sts := d.Server.Statuses()
	if len(sts) == 0 || !sts[len(sts)-1].Authentic {
		t.Fatalf("genuine status not authentic: %+v", sts)
	}

	// The attacker forges a "patched" confirmation: scribbles a status
	// record into the kernel-writable mailbox and forwards it. Without
	// the SMRAM-held attestation key the MAC cannot be produced, so
	// the server sees an inauthentic report.
	forged := make([]byte, 4+8+64)
	forged[0] = byte(smmpatch.StatusPatched)
	forged[4] = 99 // seq
	res := d.System.Kernel.Res
	if err := d.System.Machine.Mem.Write(mem.PrivKernel, res.RWBase()+0x8000, forged); err != nil {
		t.Fatal(err)
	}
	status, err := smmpatch.ReadStatusRecord(d.System.Machine.Mem, mem.PrivKernel, res)
	if err != nil {
		t.Fatal(err)
	}
	c, err := patchserver.Dial(d.Server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The forger re-registers with its own attestation key claim? No —
	// it must report on the existing registration path; simulate the
	// helper forwarding the forged mailbox over a fresh session that
	// registered the true key (the server's view of this target).
	if _, err := c.HelloWithAttestation(
		patchserver.OSInfo{Version: "4.4", Ftrace: true, Inline: true},
		sgxMeasurement("4.4"), attKeyOf(t, d)); err != nil {
		t.Fatal(err)
	}
	if err := c.ReportStatusMAC(status.Code, status.Seq, status.Digest, status.MAC[:]); err != nil {
		t.Fatal(err)
	}
	sts = d.Server.Statuses()
	last := sts[len(sts)-1]
	if last.Authentic {
		t.Error("forged status accepted as authentic")
	}
}

// attKeyOf extracts the deployment's attestation key by producing a
// genuine status and recovering nothing — the key itself is not
// reachable from tests via public API (it lives in SMRAM), so this
// helper re-derives the deterministic key from the deployment's rand
// seed by replaying the generator.
func attKeyOf(t *testing.T, d *testDeployment) []byte {
	t.Helper()
	// newDeployment seeds detRand with 42; NewSystem consumes the
	// first 32 bytes for the attestation key.
	r := &detRand{r: rand.New(rand.NewSource(42))}
	key := make([]byte, 32)
	if _, err := r.Read(key); err != nil {
		t.Fatal(err)
	}
	return key
}

func TestFleetOneServerManyTargets(t *testing.T) {
	// One patch server drives several target machines — the remote/
	// cloud deployment the paper's introduction motivates. Targets run
	// different kernel versions; each gets a correctly rebuilt patch.
	e := mustGet(t, "CVE-2016-7916")
	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(e))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterPatch(e.SourcePatch())

	versions := []string{"3.14", "4.4", "4.4"}
	systems := make([]*System, len(versions))
	for i, v := range versions {
		sys, err := NewSystem(Options{
			Version:    v,
			NumVCPUs:   1,
			ExtraFiles: map[string]string{e.File: e.Vuln},
			ServerAddr: srv.Addr(),
		})
		if err != nil {
			t.Fatalf("target %d (%s): %v", i, v, err)
		}
		t.Cleanup(sys.Close)
		systems[i] = sys
	}
	// Patch all targets concurrently.
	errs := make(chan error, len(systems))
	for _, sys := range systems {
		go func(sys *System) {
			_, err := sys.Apply(context.Background(), e.CVE)
			errs <- err
		}(sys)
	}
	for range systems {
		if err := <-errs; err != nil {
			t.Fatalf("fleet apply: %v", err)
		}
	}
	for i, sys := range systems {
		res, err := e.Exploit(sys.Kernel, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Vulnerable {
			t.Errorf("target %d (%s) still vulnerable", i, versions[i])
		}
	}
	// The server saw an authentic confirmation from every target.
	authentic := 0
	for _, st := range srv.Statuses() {
		if st.Authentic && st.Code == smmpatch.StatusPatched {
			authentic++
		}
	}
	if authentic != len(systems) {
		t.Errorf("authentic confirmations = %d, want %d", authentic, len(systems))
	}
}
