package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kshot/internal/cvebench"
	"kshot/internal/kernel"
	"kshot/internal/patchserver"
	"kshot/internal/smmpatch"
)

// batchCVEs is a conflict-free subset of Table I (distinct functions
// and files) used for ApplyAll tests.
var batchCVEs = []string{
	"CVE-2014-0196", "CVE-2016-7916", "CVE-2016-2543",
	"CVE-2015-5707", "CVE-2016-4578",
}

func TestApplyAllBatchedSingleSMI(t *testing.T) {
	d := newDeployment(t, "4.4", 0, batchCVEs...)
	rep, err := d.System.ApplyAll(context.Background(), batchCVEs, WithBatchSize(8))
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("failures: %v", rep.Failed)
	}
	// Five patches, one world switch.
	if rep.SMIs != 1 {
		t.Errorf("SMIs = %d, want 1 batched SMI for %d patches", rep.SMIs, len(batchCVEs))
	}
	if rep.Batches != 1 || rep.Singles != 0 || rep.Degraded != 0 || rep.Retries != 0 {
		t.Errorf("traffic = %d batches, %d singles, %d degraded, %d retries", rep.Batches, rep.Singles, rep.Degraded, rep.Retries)
	}
	if rep.SMMPause <= 0 {
		t.Error("no SMM pause recorded")
	}
	// Reports are in request order and fully staged.
	if len(rep.Reports) != len(batchCVEs) {
		t.Fatalf("reports = %d, want %d", len(rep.Reports), len(batchCVEs))
	}
	var smmSum time.Duration
	for i, r := range rep.Reports {
		if r.ID != batchCVEs[i] {
			t.Errorf("report %d = %s, want %s", i, r.ID, batchCVEs[i])
		}
		st := r.Stages
		if st.Fetch <= 0 || st.Preprocess <= 0 || st.Pass <= 0 {
			t.Errorf("%s: SGX stages not all positive: %+v", r.ID, st)
		}
		if st.KeyGen <= 0 || st.Decrypt <= 0 || st.Verify <= 0 || st.Apply <= 0 || st.Switch <= 0 {
			t.Errorf("%s: SMM stages not all positive: %+v", r.ID, st)
		}
		smmSum += st.SMMTotal()
	}
	// Per-member SMM stage times never exceed the true pause (key
	// generation and world switch are amortized, never double-counted).
	if smmSum > rep.SMMPause {
		t.Errorf("member SMM totals %v exceed measured pause %v", smmSum, rep.SMMPause)
	}
	// Every exploit is neutralized.
	for _, e := range d.Entries {
		res, err := e.Exploit(d.System.Kernel, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Vulnerable {
			t.Errorf("%s still vulnerable after batched apply", e.CVE)
		}
	}
	if got := d.System.Applied(); len(got) != len(batchCVEs) {
		t.Errorf("Applied() = %v", got)
	}
	// The server saw the batch confirmation, authentically.
	sts := d.Server.Statuses()
	if len(sts) == 0 {
		t.Fatal("server saw no batch status")
	}
	last := sts[len(sts)-1]
	if last.Code != smmpatch.StatusBatchDone || !last.Authentic {
		t.Errorf("batch status = %+v", last)
	}
}

func TestApplyAllRollbackOrdering(t *testing.T) {
	cves := batchCVEs[:3]
	d := newDeployment(t, "4.4", 0, cves...)
	if rep, err := d.System.ApplyAll(context.Background(), cves); err != nil || len(rep.Failed) > 0 {
		t.Fatalf("ApplyAll: %v, failed %v", err, rep.Failed)
	}
	applied := d.System.Applied()
	if len(applied) != 3 {
		t.Fatalf("Applied() = %v", applied)
	}
	// Batched members journal in request order, so rollback is LIFO on
	// that order: rolling back the first applied is refused.
	if _, err := d.System.Rollback(context.Background(), applied[0]); err == nil {
		t.Error("out-of-order rollback of a batched patch succeeded")
	}
	for i := len(applied) - 1; i >= 0; i-- {
		if _, err := d.System.Rollback(context.Background(), applied[i]); err != nil {
			t.Fatalf("rollback %s: %v", applied[i], err)
		}
	}
	if got := d.System.Applied(); len(got) != 0 {
		t.Errorf("Applied() after full rollback = %v", got)
	}
	// The system is still serviceable: the whole batch re-applies.
	if rep, err := d.System.ApplyAll(context.Background(), cves); err != nil || len(rep.Failed) > 0 {
		t.Fatalf("re-ApplyAll: %v, failed %v", err, rep.Failed)
	}
}

func TestApplyAllCancellationLeavesSystemConsistent(t *testing.T) {
	d := newDeployment(t, "4.4", 0, batchCVEs[:2]...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := d.System.ApplyAll(ctx, []string{batchCVEs[0], batchCVEs[1]})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyAll err = %v, want context.Canceled", err)
	}
	if len(rep.Reports) != 0 {
		t.Errorf("canceled run reported successes: %v", rep.Reports)
	}
	if got := d.System.Applied(); len(got) != 0 {
		t.Errorf("patches applied despite cancellation: %v", got)
	}
	// A canceled single Apply also fails cleanly.
	if _, err := d.System.Apply(ctx, batchCVEs[0]); err == nil {
		t.Error("Apply with canceled context succeeded")
	}
	// The system (and its server connection) remain fully usable.
	if _, err := d.System.Apply(context.Background(), batchCVEs[0]); err != nil {
		t.Fatalf("Apply after cancellation: %v", err)
	}
	res, _ := d.Entries[0].Exploit(d.System.Kernel, 0)
	if res.Vulnerable {
		t.Error("post-cancellation apply ineffective")
	}
}

// spinVuln/spinFixed define a patch target that parks inside itself
// until released via a global, so a test can hold a vCPU inside the
// function and deterministically draw an activeness refusal.
const spinVuln = `
.global gadget_entered 8
.global gadget_release 8
.func spin_gadget         ; (x) -> x+1, waits for release first
    movi r2, 1
    storeg gadget_entered, r2
.wait:
    loadg r2, gadget_release
    cmpi r2, 0
    jz .wait
    mov r0, r1
    addi r0, 1
    ret
.endfunc
`

const spinFixed = `
.global gadget_entered 8
.global gadget_release 8
.func spin_gadget         ; patched: -> x+2
    movi r2, 1
    storeg gadget_entered, r2
.wait:
    loadg r2, gadget_release
    cmpi r2, 0
    jz .wait
    mov r0, r1
    addi r0, 2
    ret
.endfunc
`

func TestApplyAllRetriesOnlyActiveMember(t *testing.T) {
	// Deployment with two ordinary CVEs plus the parkable spin target,
	// activeness checking on.
	entries := []*cvebench.Entry{mustGet(t, "CVE-2014-0196"), mustGet(t, "CVE-2016-7916")}
	provider := func(version string) (*kernel.SourceTree, error) {
		tree, err := kernel.BaseTree(version)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			tree.AddFile(e.File, e.Vuln)
		}
		tree.AddFile("cve/spin.asm", spinVuln)
		return tree, nil
	}
	srv, err := patchserver.NewServer("127.0.0.1:0", provider)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for _, e := range entries {
		srv.RegisterPatch(e.SourcePatch())
	}
	srv.RegisterPatch(kernel.SourcePatch{ID: "CVE-SPIN", Files: map[string]string{"cve/spin.asm": spinFixed}})

	extra := map[string]string{"cve/spin.asm": spinVuln}
	for _, e := range entries {
		extra[e.File] = e.Vuln
	}
	sys, err := NewSystem(Options{
		Version:         "4.4",
		NumVCPUs:        2,
		ExtraFiles:      extra,
		ServerAddr:      srv.Addr(),
		CheckActiveness: true,
		Rand:            &detRand{r: rand.New(rand.NewSource(7))},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	// Park vCPU 0 inside spin_gadget.
	if err := sys.Kernel.WriteGlobal("gadget_release", 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Generous step budget: the gadget busy-waits for the release
		// global, and block dispatch retires spin iterations far
		// faster than the default budget's worth of wall-clock.
		_, err := sys.Kernel.CallSteps(0, "spin_gadget", 200_000_000, 41)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := sys.Kernel.ReadGlobal("gadget_entered")
		if err != nil {
			t.Fatal(err)
		}
		if v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("vCPU never entered spin_gadget")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Release the parked call only after the batch SMI has run (and so
	// refused the spin member); the 10ms retry backoff then gives the
	// released vCPU ample time to leave the gadget before redelivery.
	smis0 := sys.SMM.Entries()
	go func() {
		for sys.SMM.Entries() == smis0 {
			time.Sleep(100 * time.Microsecond)
		}
		time.Sleep(time.Millisecond)
		if err := sys.Kernel.WriteGlobal("gadget_release", 1); err != nil {
			t.Errorf("release: %v", err)
		}
	}()

	cves := []string{"CVE-2014-0196", "CVE-SPIN", "CVE-2016-7916"}
	rep, err := sys.ApplyAll(context.Background(), cves,
		WithBatchSize(8), WithMaxRetries(8), WithRetryBackoff(10*time.Millisecond))
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if cerr := <-done; cerr != nil {
		t.Fatalf("parked call: %v", cerr)
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("failures: %v", rep.Failed)
	}
	// The live member was refused in the batch and redelivered alone;
	// its healthy batch mates were not repeated.
	if rep.Batches != 1 {
		t.Errorf("batch SMIs = %d, want 1", rep.Batches)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded for the active member")
	}
	if rep.Singles != rep.Retries {
		t.Errorf("singles = %d, retries = %d; only the refused member should be redelivered", rep.Singles, rep.Retries)
	}
	if rep.Degraded != 0 {
		t.Errorf("degraded = %d, want 0 (refusal is retryable, not a verification failure)", rep.Degraded)
	}
	if got := sys.Applied(); len(got) != 3 {
		t.Errorf("Applied() = %v", got)
	}
	// The patched gadget computes the fixed result.
	if err := sys.Kernel.WriteGlobal("gadget_release", 1); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Kernel.Call(0, "spin_gadget", 41)
	if err != nil || v != 43 {
		t.Errorf("patched spin_gadget = %d, %v; want 43", v, err)
	}
}

func TestTypedErrors(t *testing.T) {
	// Wrapping preserves errors.Is across the public sentinels.
	err := fmt.Errorf("%w: CVE-X: %w", ErrFetch, errors.New("conn reset"))
	if !errors.Is(err, ErrFetch) {
		t.Error("wrapped fetch error lost ErrFetch")
	}
	err = fmt.Errorf("%w: CVE-X: bad seal", ErrEnclavePrepare)
	if !errors.Is(err, ErrEnclavePrepare) {
		t.Error("wrapped prepare error lost ErrEnclavePrepare")
	}
	if !errors.Is(fmt.Errorf("core: x: %w", smmpatch.ErrTargetActive), ErrTargetActive) {
		t.Error("smmpatch refusal does not match core.ErrTargetActive")
	}

	// StatusError matches the sentinel and surfaces codes via As.
	se := error(&StatusError{ID: "CVE-Y", Got: smmpatch.StatusError, Want: smmpatch.StatusPatched})
	if !errors.Is(se, ErrStatusMismatch) {
		t.Error("StatusError does not match ErrStatusMismatch")
	}
	var got *StatusError
	if !errors.As(fmt.Errorf("deliver: %w", se), &got) || got.Got != smmpatch.StatusError {
		t.Errorf("errors.As(StatusError) = %v, %+v", got != nil, got)
	}
	if errors.Is(se, ErrFetch) || errors.Is(se, ErrTargetActive) {
		t.Error("StatusError matches unrelated sentinels")
	}
}

func TestApplyFetchErrorTyped(t *testing.T) {
	d := newDeployment(t, "4.4", 0, "CVE-2016-7916")
	_, err := d.System.Apply(context.Background(), "CVE-1999-0001")
	if !errors.Is(err, ErrFetch) {
		t.Errorf("unknown-CVE apply error = %v, want ErrFetch", err)
	}
}
