package core

import (
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/patchserver"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/timing"
)

// Template-fork provisioning: booting a target is dominated by the
// kernel build and machine bring-up, yet every System for the same
// (version, ftrace, inline, extra-files, dispatch, vCPUs) configuration
// boots bit-identical memory. A Template pays that cost once, halting
// just before anything per-target exists — no SMRAM, no keys, no RNG
// state, no server connection — and Fork stamps out live Systems by
// COW-sharing its frames. Everything secret is provisioned per fork,
// after the fork: each one gets a fresh attestation key, a fresh
// derived-session channel root, its own clock/model, and only then is
// its SMRAM locked. The template itself never holds a secret a fork
// could inherit.

// ErrTemplateClosed is returned by Fork and TemplateCache.System after
// Close.
var ErrTemplateClosed = errors.New("core: template closed")

// Template is an immutable booted target machine used as a COW fork
// source. Its machine never runs again after construction; forks share
// its clean frames and copy on first write.
type Template struct {
	opts Options // canonicalized; per-fork fields ignored
	m    *machine.Machine
	k    *kernel.Kernel
	info patchserver.OSInfo
	meas sgx.Measurement // expected enclave identity, same for every fork

	// root is the template-generation secret forks derive their
	// per-fork channel roots from. It never leaves the host-side
	// provisioner — it is not written into template memory, so no fork
	// can read a sibling's root out of shared frames.
	root []byte

	// rng serves fork-time key material when the options don't supply
	// a deterministic source; locked because forks are concurrent.
	rngMu sync.Mutex
	rng   io.Reader

	closed atomic.Bool
}

// NewTemplate boots a template machine for the given configuration.
// The boot stops right before per-target provisioning: kernel built
// and initialized, no SMM controller, no keys, no server contact.
func NewTemplate(ctx context.Context, opts Options) (*Template, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = withDefaults(opts)
	m, k, info, err := bootTarget(ctx, opts)
	if err != nil {
		return nil, err
	}
	rng := opts.Rand
	if rng == nil {
		rng = cryptorand.Reader
	}
	root := make([]byte, 32)
	if _, err := io.ReadFull(rng, root); err != nil {
		m.Stop()
		return nil, fmt.Errorf("core: template root: %w", err)
	}
	return &Template{
		opts: opts, m: m, k: k, info: info,
		meas: sgx.MeasureIdentity(sgxprep.Identity(opts.Version)),
		root: root, rng: rng,
	}, nil
}

// Machine exposes the template's (quiescent) machine — tests diff fork
// memory against it to prove isolation.
func (t *Template) Machine() *machine.Machine { return t.m }

// Info returns the OS identity forks attest to the patch server.
func (t *Template) Info() patchserver.OSInfo { return t.info }

// Close stops the template machine. Live forks keep working: their
// Physicals hold the shared frames directly.
func (t *Template) Close() {
	if t.closed.CompareAndSwap(false, true) {
		t.m.Stop()
	}
}

// forkEntropy draws n key-material bytes for one fork.
func (t *Template) forkEntropy(opts Options, n int) ([]byte, error) {
	buf := make([]byte, n)
	if opts.Rand != nil {
		_, err := io.ReadFull(opts.Rand, buf)
		return buf, err
	}
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	_, err := io.ReadFull(t.rng, buf)
	return buf, err
}

// Fork provisions a live System from the template: COW-fork the
// machine, rebind the kernel view, then run the per-target half of
// provisioning — fresh clock and cost model, fresh attestation key,
// a per-fork derived-session root, SMM handler install, and SMRAM
// lock. No network and no guest-memory write happens here; the server
// attach and the bootstrap key-exchange SMI are deferred to first use
// (see System.ensureAttached).
//
// Per-fork options (ServerAddr, HashAlg, Rand, CheckActiveness, retry
// knobs) are honored from opts; configuration baked into the template
// (version, build config, extra files, dispatch, vCPUs) comes from the
// template regardless of what opts says.
func (t *Template) Fork(ctx context.Context, opts Options) (*System, error) {
	if t.closed.Load() {
		return nil, ErrTemplateClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = withDefaults(opts)

	m2, err := t.m.Fork()
	if err != nil {
		return nil, err
	}
	k2, err := t.k.Fork(m2)
	if err != nil {
		m2.Stop()
		return nil, err
	}

	// Per-fork channel root: derived from the template root and fresh
	// entropy, so every fork's SMM/enclave sessions key differently
	// even though they share every clean frame.
	salt, err := t.forkEntropy(opts, 32)
	if err != nil {
		m2.Stop()
		return nil, fmt.Errorf("core: fork root: %w", err)
	}
	forkRoot := kcrypto.DeriveKey(t.root, salt)

	clock := &timing.Clock{}
	model := timing.Calibrated()
	rng := opts.Rand
	if rng == nil {
		rng = cryptorand.Reader
	}
	ctrl, handler, attKey, err := provisionSMM(opts, m2, k2, clock, model, rng, forkRoot)
	if err != nil {
		m2.Stop()
		return nil, err
	}

	s := &System{
		Machine:     m2,
		Kernel:      k2,
		SMM:         ctrl,
		Handler:     handler,
		Clock:       clock,
		Model:       model,
		info:        t.info,
		serverAddr:  opts.ServerAddr,
		meas:        t.meas,
		attKey:      attKey,
		hashAlg:     opts.HashAlg,
		rng:         opts.Rand,
		sessionRoot: forkRoot,

		dialRetries:    opts.DialRetries,
		requestRetries: opts.RequestRetries,
		retryBackoff:   opts.RetryBackoff,

		helperPriv: mem.PrivUser,

		// The bootstrap key-exchange SMI (which publishes the channel
		// nonce — in derived-session mode charging the same virtual
		// KeyGen cost a cold boot pays, keeping forked and cold stage
		// metrics identical) is deferred to first server contact along
		// with the attach. Until then the fork has written nothing: its
		// private frame set is empty and its marginal memory cost is
		// exactly zero.
		needBootstrap: true,
	}
	return s, nil
}

// templateKey canonicalizes the configuration axes a template bakes
// in. Everything per-fork — server address, hash algorithm, entropy
// source, activeness checking, retry knobs — is deliberately excluded,
// so Systems differing only in those share one template.
func templateKey(opts Options) string {
	h := sha256.New()
	names := make([]string, 0, len(opts.ExtraFiles))
	for name := range opts.ExtraFiles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%d:%s=%d:%s;", len(name), name, len(opts.ExtraFiles[name]), opts.ExtraFiles[name])
	}
	return fmt.Sprintf("v=%s ftrace=%t inline=%t dispatch=%d vcpus=%d files=%s",
		opts.Version, !opts.DisableFtrace, !opts.DisableInline,
		int(opts.Dispatch), opts.NumVCPUs, hex.EncodeToString(h.Sum(nil)))
}

// TemplateCacheStats is a point-in-time view of cache traffic.
type TemplateCacheStats struct {
	// Hits counts System calls served by an already-built (or
	// in-flight) template; Misses counts the calls that paid a cold
	// template boot; Forks counts successfully forked Systems.
	Hits, Misses, Forks int64
	// Templates is the number of distinct configurations cached.
	Templates int
}

// tcEntry is one singleflight slot: ready closes once the template
// boot finished (tpl or err set, never both).
type tcEntry struct {
	ready chan struct{}
	tpl   *Template
	err   error
}

// TemplateCache provisions Systems by forking one cached template per
// configuration. The first System for a configuration boots the
// template (concurrent requests for the same configuration wait on
// that one boot — singleflight); every later System is a COW fork.
// Failed template boots are not cached: the slot is cleared so a later
// call retries.
type TemplateCache struct {
	mu      sync.Mutex
	entries map[string]*tcEntry
	closed  bool

	obs                 atomic.Pointer[obs.Hooks]
	hits, misses, forks atomic.Int64
}

// NewTemplateCache builds an empty cache.
func NewTemplateCache() *TemplateCache {
	return &TemplateCache{entries: make(map[string]*tcEntry)}
}

// SetObserver installs observability hooks; template-cache traffic is
// counted under obs.CtrTemplateHits/Misses/Forks.
func (c *TemplateCache) SetObserver(ob *obs.Hooks) {
	c.obs.Store(ob)
}

func (c *TemplateCache) count(name string, ctr *atomic.Int64) {
	ctr.Add(1)
	c.obs.Load().Count(name, 1)
}

// Stats returns cache traffic counters.
func (c *TemplateCache) Stats() TemplateCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return TemplateCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Forks:     c.forks.Load(),
		Templates: n,
	}
}

// System provisions a System for opts through the cache: fork the
// configuration's template, booting it first if this is the first
// request for the configuration. NewSystemCtx routes here when
// Options.TemplateCache is set.
func (c *TemplateCache) System(ctx context.Context, opts Options) (*System, error) {
	opts = withDefaults(opts)
	tpl, err := c.template(ctx, opts)
	if err != nil {
		return nil, err
	}
	s, err := tpl.Fork(ctx, opts)
	if err != nil {
		return nil, err
	}
	c.count(obs.CtrTemplateForks, &c.forks)
	return s, nil
}

// template returns the singleflight template for opts' configuration.
func (c *TemplateCache) template(ctx context.Context, opts Options) (*Template, error) {
	key := templateKey(opts)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrTemplateClosed
	}
	if e := c.entries[key]; e != nil {
		c.mu.Unlock()
		c.count(obs.CtrTemplateHits, &c.hits)
		select {
		case <-e.ready:
			return e.tpl, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &tcEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.count(obs.CtrTemplateMisses, &c.misses)

	tpl, err := NewTemplate(ctx, opts)
	if err != nil {
		// Don't cache failure — clear the slot so a later call retries
		// (unless Close or a concurrent retry already replaced it).
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		e.err = err
		close(e.ready)
		return nil, err
	}
	e.tpl = tpl
	close(e.ready)
	return tpl, nil
}

// Close stops every cached template. In-flight template boots finish
// and are stopped by their booter; live forked Systems are unaffected.
func (c *TemplateCache) Close() {
	c.mu.Lock()
	c.closed = true
	entries := make([]*tcEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.entries = make(map[string]*tcEntry)
	c.mu.Unlock()
	for _, e := range entries {
		<-e.ready
		if e.tpl != nil {
			e.tpl.Close()
		}
	}
}
