// Package core is KShot's orchestrator and public API: it assembles
// the simulated target machine (kernel, SMM controller + patching
// handler, SGX platform + preparation enclave), connects to the remote
// patch server, and drives the live patching workflow of Figure 2:
//
//  1. the untrusted helper fetches the encrypted binary patch from the
//     remote server;
//  2. the SGX enclave preprocesses it against the running kernel and
//     seals it for the SMM channel;
//  3. the helper stages ciphertext into the reserved memory and raises
//     an SMI;
//  4. the SMM handler decrypts, verifies, and applies the patch on the
//     paused machine, then resumes the OS.
//
// Every step the helper performs runs at user/kernel privilege against
// access-controlled memory; every SMM step runs on a paused machine.
// A compromised kernel can disturb the helper (a denial of service the
// remote server detects) but cannot forge, read, or tamper with patch
// content.
package core

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/options"
	"kshot/internal/patchserver"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/smm"
	"kshot/internal/smmpatch"
	"kshot/internal/timing"
)

// Options configures a System.
type Options struct {
	// Version is the kernel version to boot ("3.14" or "4.4").
	Version string

	// NumVCPUs for the target machine (default 4).
	NumVCPUs int

	// Dispatch selects the vCPU execution engine: predecoded basic
	// blocks (the zero value), the decode-switch oracle interpreter,
	// or differential lockstep verification of the two (which requires
	// NumVCPUs == 1). Virtual-time metrics are identical across modes;
	// only wall-clock speed differs.
	Dispatch isa.Dispatch

	// ExtraFiles adds subsystem source files to the base tree — the
	// vulnerable code the benchmark kernels ship with.
	ExtraFiles map[string]string

	// DisableFtrace and DisableInline flip the kernel build config off
	// its defaults (both features on). The generated-corpus sweeps boot
	// every (ftrace × inline) combination; the patch server rebuilds
	// with whatever config the target attests, so patches stay
	// address-compatible either way.
	DisableFtrace bool
	DisableInline bool

	// ServerAddr is the remote patch server's TCP address.
	ServerAddr string

	// HashAlg selects payload verification hashing (default SHA-256).
	HashAlg kcrypto.HashAlg

	// Rand is the entropy source for all key material (crypto/rand
	// when nil; deterministic in tests).
	Rand io.Reader

	// CheckActiveness enables the SMM handler's conservative
	// activeness check: patches to functions currently executing on
	// (or returning into) some vCPU are refused with ErrTargetActive
	// and can be retried.
	CheckActiveness bool

	// DialRetries allows extra TCP connect attempts to the patch
	// server with exponential backoff, and RequestRetries allows
	// reconnect-and-replay of a transport-failed request burst (safe
	// here because the system's hellos are attested, so a reconnect
	// converges on the same channel key). RetryBackoff is the base
	// delay, doubling per attempt (patchserver.DefaultRetryBackoff
	// when zero). The backoff runs on the system's wall clock.
	DialRetries    int
	RequestRetries int
	RetryBackoff   time.Duration
}

// StageTimes reports the virtual time each pipeline stage consumed for
// one patch — the measurements behind Tables II/III and Figures 4/5.
// It is an alias of timing.Stages so the batch pipeline and the
// orchestrator share one stage vocabulary.
type StageTimes = timing.Stages

// Report is the outcome of one Apply or Rollback.
type Report struct {
	ID     string
	Stages StageTimes
}

// System is a provisioned KShot deployment on one target machine.
type System struct {
	Machine *machine.Machine
	Kernel  *kernel.Kernel
	SMM     *smm.Controller
	Handler *smmpatch.Handler
	Clock   *timing.Clock
	Model   timing.Model

	platform *sgx.Platform
	enclave  *sgx.Enclave
	prog     *sgxprep.Program
	client   *patchserver.Client
	info     patchserver.OSInfo

	// Retained so ApplyAll can dial extra attested fetch connections.
	serverAddr string
	meas       sgx.Measurement
	attKey     []byte

	// Client resilience knobs (see Options).
	dialRetries    int
	requestRetries int
	retryBackoff   time.Duration

	helperPriv mem.Priv

	// fi is the fault injection set threaded through every layer (nil
	// outside chaos testing); wall paces real-time waits (retry
	// backoff, injected latency) and defaults to the system clock; obs
	// is the observability hook set threaded the same way (nil when
	// tracing/metrics are disabled).
	fi   *faultinject.Set
	wall timing.WallClock
	obs  *obs.Hooks
}

// Validate checks the assembled options for values no deployment can
// boot with, returning a typed *options.Error (matching
// options.ErrInvalid) for the first offender. NewSystem calls it; the
// functional-options constructor surfaces the same errors through its
// With* funcs.
func (o *Options) Validate() error {
	bad := func(option, format string, a ...any) error {
		return options.Errorf("kshot.New", option, format, a...)
	}
	if o.NumVCPUs < 0 {
		return bad("WithVCPUs", "must be >= 0, got %d", o.NumVCPUs)
	}
	switch o.Dispatch {
	case isa.DispatchBlocks, isa.DispatchOracle:
	case isa.DispatchLockstep:
		if o.NumVCPUs > 1 {
			return bad("WithDispatch", "lockstep requires exactly 1 vCPU, got %d", o.NumVCPUs)
		}
	default:
		return bad("WithDispatch", "unknown dispatch mode %d", int(o.Dispatch))
	}
	if o.DialRetries < 0 {
		return bad("WithDialRetries", "must be >= 0, got %d", o.DialRetries)
	}
	if o.RequestRetries < 0 {
		return bad("WithRequestRetries", "must be >= 0, got %d", o.RequestRetries)
	}
	if o.RetryBackoff < 0 {
		return bad("WithDialBackoff", "must be >= 0, got %v", o.RetryBackoff)
	}
	return nil
}

// NewSystem boots the target machine, locks down SMM, attests and
// loads the preparation enclave, and registers with the patch server.
func NewSystem(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Version == "" {
		opts.Version = "4.4"
	}
	if opts.HashAlg == 0 {
		opts.HashAlg = kcrypto.HashSHA256
	}
	if opts.Dispatch == isa.DispatchLockstep && opts.NumVCPUs == 0 {
		opts.NumVCPUs = 1 // lockstep rewinds shared memory; one vCPU only
	}

	// Build and boot the (vulnerable) kernel.
	tree, err := kernel.BaseTreeWithConfig(kernel.BuildConfig{
		Version: opts.Version,
		Ftrace:  !opts.DisableFtrace,
		Inline:  !opts.DisableInline,
	})
	if err != nil {
		return nil, err
	}
	extra := make([]string, 0, len(opts.ExtraFiles))
	for name := range opts.ExtraFiles {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		tree.AddFile(name, opts.ExtraFiles[name])
	}
	img, _, err := tree.Build()
	if err != nil {
		return nil, fmt.Errorf("core: kernel build: %w", err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: opts.NumVCPUs, Dispatch: opts.Dispatch})
	if err != nil {
		return nil, err
	}
	k, err := kernel.Boot(m, img, tree.Config())
	if err != nil {
		m.Stop()
		return nil, err
	}
	if _, err := k.Call(0, "kernel_init"); err != nil {
		m.Stop()
		return nil, fmt.Errorf("core: kernel init: %w", err)
	}

	clock := &timing.Clock{}
	model := timing.Calibrated()

	// Provision SMM: install the patching handler, then lock SMRAM.
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, clock, model)
	if err != nil {
		m.Stop()
		return nil, err
	}
	// Status-attestation key: provisioned into SMRAM before lock and
	// registered with the server, so deployment confirmations cannot
	// be forged from the kernel-writable mailbox.
	attKey := make([]byte, 32)
	rng := opts.Rand
	if rng == nil {
		rng = cryptorand.Reader
	}
	if _, err := io.ReadFull(rng, attKey); err != nil {
		m.Stop()
		return nil, fmt.Errorf("core: attestation key: %w", err)
	}

	handler, err := smmpatch.New(smmpatch.Config{
		Reserved:        k.Res,
		KernelVersion:   opts.Version,
		Rand:            opts.Rand,
		CheckActiveness: opts.CheckActiveness,
		TextBase:        kernel.TextBase,
		TextSize:        kernel.TextRegionSize,
		AttestationKey:  attKey,
	})
	if err != nil {
		m.Stop()
		return nil, err
	}
	if err := handler.Register(ctrl); err != nil {
		m.Stop()
		return nil, err
	}
	if err := ctrl.Lock(); err != nil {
		m.Stop()
		return nil, err
	}

	// Register with the patch server under the enclave's expected
	// measurement, receiving the attested channel key.
	info := patchserver.OSInfo{
		Version: opts.Version,
		Ftrace:  tree.Config().Ftrace,
		Inline:  tree.Config().Inline,
	}
	dialOpts := []patchserver.DialOption{
		patchserver.WithDialRetries(opts.DialRetries),
		patchserver.WithRequestRetries(opts.RequestRetries),
	}
	if opts.RetryBackoff > 0 {
		dialOpts = append(dialOpts, patchserver.WithRetryBackoff(opts.RetryBackoff))
	}
	client, err := patchserver.Dial(opts.ServerAddr, dialOpts...)
	if err != nil {
		m.Stop()
		return nil, err
	}
	meas := sgx.MeasureIdentity(sgxprep.Identity(opts.Version))
	serverKey, err := client.HelloWithAttestation(info, meas, attKey)
	if err != nil {
		client.Close()
		m.Stop()
		return nil, err
	}

	// Load the preparation enclave.
	platform, err := sgx.NewPlatform(m.Mem, kernel.EPCBase, kernel.EPCSize)
	if err != nil {
		client.Close()
		m.Stop()
		return nil, err
	}
	prog, err := sgxprep.New(sgxprep.Config{
		ServerKey:     serverKey,
		KernelVersion: opts.Version,
		KernelSymbols: k.Symbols().All(),
		Placement:     handler.Placement(),
		HashAlg:       opts.HashAlg,
		Clock:         clock,
		Model:         model,
		Rand:          opts.Rand,
	})
	if err != nil {
		client.Close()
		m.Stop()
		return nil, err
	}
	enclave, err := platform.Load(prog, sgxprep.EnclavePages)
	if err != nil {
		client.Close()
		m.Stop()
		return nil, err
	}
	if enclave.Measurement() != meas {
		enclave.Destroy()
		client.Close()
		m.Stop()
		return nil, errors.New("core: loaded enclave does not match attested measurement")
	}

	s := &System{
		Machine:    m,
		Kernel:     k,
		SMM:        ctrl,
		Handler:    handler,
		Clock:      clock,
		Model:      model,
		platform:   platform,
		enclave:    enclave,
		prog:       prog,
		client:     client,
		info:       info,
		serverAddr: opts.ServerAddr,
		meas:       meas,
		attKey:     attKey,

		dialRetries:    opts.DialRetries,
		requestRetries: opts.RequestRetries,
		retryBackoff:   opts.RetryBackoff,

		helperPriv: mem.PrivUser,
	}
	// Bootstrap the SMM channel key.
	if err := ctrl.Trigger(smmpatch.CmdKeyExchange, 0); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// SetFaultInjector threads a fault injection set through every layer
// of the deployment — memory staging, SMI delivery, the batch handler,
// the ECALL boundary, and the patch-server client — or removes it with
// nil. The chaos suite installs a seeded set per run; production
// deployments never call this.
func (s *System) SetFaultInjector(fi *faultinject.Set) {
	s.fi = fi
	s.Machine.Mem.SetFaultInjector(fi)
	s.SMM.SetFaultInjector(fi)
	s.Handler.SetFaultInjector(fi)
	s.platform.SetFaultInjector(fi)
	s.client.SetFaultInjector(fi)
	s.wireFaultObserver()
}

// SetObserver threads the observability hooks through every layer of
// the deployment — SMI delivery, the SMM patching handler, the ECALL
// boundary, enclave preprocessing, and the patch-server client — or
// removes them with nil. Fired fault-injection points are counted under
// the obs.FaultPrefix namespace whenever both a set and hooks are
// installed, regardless of installation order.
func (s *System) SetObserver(ob *obs.Hooks) {
	s.obs = ob
	s.SMM.SetObserver(ob)
	s.Handler.SetObserver(ob)
	s.platform.SetObserver(ob)
	s.client.SetObserver(ob)
	s.prog.SetObserver(ob)
	s.wireFaultObserver()
}

func (s *System) wireFaultObserver() {
	ob := s.obs
	if ob == nil {
		s.fi.SetObserver(nil)
		return
	}
	s.fi.SetObserver(func(pt faultinject.Point) {
		ob.Count(obs.FaultPrefix+string(pt), 1)
	})
}

// SetWallClock replaces the clock pacing real-time waits (nil restores
// real time). Tests inject timing.FakeWall so retry backoff and
// injected latency never depend on the host clock.
func (s *System) SetWallClock(wc timing.WallClock) {
	s.wall = wc
	s.client.SetWallClock(wc)
}

// dialOptions builds the options for an extra attested patch-server
// connection: the system's retry knobs plus its current hooks, so a
// pool connection's dial-path faults and retry backoff run under the
// same injected set and clock as the boot-time client.
func (s *System) dialOptions() []patchserver.DialOption {
	opts := []patchserver.DialOption{
		patchserver.WithDialRetries(s.dialRetries),
		patchserver.WithRequestRetries(s.requestRetries),
	}
	if s.retryBackoff > 0 {
		opts = append(opts, patchserver.WithRetryBackoff(s.retryBackoff))
	}
	if s.fi != nil {
		opts = append(opts, patchserver.WithClientFaultInjector(s.fi))
	}
	if s.wall != nil {
		opts = append(opts, patchserver.WithClientWallClock(s.wall))
	}
	if s.obs != nil {
		opts = append(opts, patchserver.WithClientObserver(s.obs))
	}
	return opts
}

// ecall enters the preparation enclave, transparently recovering from
// enclave loss: if the enclave was destroyed (crash, EPC loss), it is
// reloaded, re-attested against the measurement registered with the
// server, and the call retried once. The enclave holds no state the
// reload cannot rebuild — sessions are re-derived per package from the
// SMM public key passed in the arguments.
func (s *System) ecall(fn int, args []byte) ([]byte, error) {
	out, err := s.enclave.ECall(fn, args)
	if err == nil || !errors.Is(err, sgx.ErrDestroyed) {
		return out, err
	}
	if rerr := s.reloadEnclave(); rerr != nil {
		return nil, fmt.Errorf("%w (reload failed: %w)", err, rerr)
	}
	return s.enclave.ECall(fn, args)
}

// reloadEnclave replaces a destroyed enclave with a fresh load of the
// same program and verifies its measurement still matches what the
// server attested at hello.
func (s *System) reloadEnclave() error {
	s.enclave.Destroy()
	e, err := s.platform.Load(s.prog, sgxprep.EnclavePages)
	if err != nil {
		return fmt.Errorf("core: enclave reload: %w", err)
	}
	if e.Measurement() != s.meas {
		e.Destroy()
		return errors.New("core: reloaded enclave does not match attested measurement")
	}
	s.enclave = e
	return nil
}

// Close releases the system's resources.
func (s *System) Close() {
	if s.enclave != nil {
		s.enclave.Destroy()
	}
	if s.client != nil {
		_ = s.client.Close()
	}
	s.Machine.Stop()
}

// Apply live-patches the named CVE end to end and reports per-stage
// times. The OS pauses only for the SMM portion. ctx bounds the fetch
// and is checked between stages; cancellation never interrupts an SMI
// already raised, so the system stays consistent.
func (s *System) Apply(ctx context.Context, cve string) (*Report, error) {
	st := StageTimes{}
	// Stage 1: fetch the encrypted patch (untrusted helper, network).
	blob, err := s.fetchBlob(ctx, s.client, cve, &st)
	if err != nil {
		return nil, err
	}
	return s.applyPrepared(ctx, cve, blob, &st)
}

// fetchBlob runs Stage 1 over the given server connection, recording
// the virtual fetch time in st.
func (s *System) fetchBlob(ctx context.Context, c *patchserver.Client, cve string, st *StageTimes) ([]byte, error) {
	blob, err := c.FetchPatch(ctx, cve)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrFetch, cve, err)
	}
	st.Fetch = timing.Linear(s.Model.FetchFixed, s.Model.FetchPerByte, len(blob))
	s.Clock.Advance(st.Fetch)
	s.obs.Span(obs.PhaseFetch, cve, -1, st.Fetch, len(blob))
	return blob, nil
}

// applyPrepared runs Stages 2–4 for an already fetched blob: enclave
// preprocessing, staging, and the SMI.
func (s *System) applyPrepared(ctx context.Context, cve string, blob []byte, st *StageTimes) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: enclave preprocessing.
	smmPub, err := smmpatch.ReadSMMPub(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return nil, fmt.Errorf("core: read SMM key: %w", err)
	}
	memX, data := s.Handler.Cursors()
	args, err := sgxprep.EncodeArgs(sgxprep.PrepareArgs{
		ServerBlob: blob,
		SMMPub:     smmPub,
		MemXCursor: memX,
		DataCursor: data,
	})
	if err != nil {
		return nil, err
	}
	out, err := s.ecall(sgxprep.FnPrepare, args)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrEnclavePrepare, cve, err)
	}
	res, err := sgxprep.DecodeResult(out)
	if err != nil {
		return nil, err
	}
	st.Preprocess = s.prog.LastBreakdown().Preprocess
	st.PayloadBytes = res.PayloadBytes

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.deliver(cve, res, st, smmpatch.StatusPatched)
}

// Rollback undoes the most recently applied patch (§V-C).
func (s *System) Rollback(ctx context.Context, cve string) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	smmPub, err := smmpatch.ReadSMMPub(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return nil, err
	}
	args, err := sgxprep.EncodeArgs(sgxprep.RollbackArgs{ID: cve, SMMPub: smmPub})
	if err != nil {
		return nil, err
	}
	out, err := s.ecall(sgxprep.FnPrepareRollback, args)
	if err != nil {
		return nil, fmt.Errorf("%w: rollback %s: %w", ErrEnclavePrepare, cve, err)
	}
	res, err := sgxprep.DecodeResult(out)
	if err != nil {
		return nil, err
	}
	st := StageTimes{Preprocess: s.prog.LastBreakdown().Preprocess}
	return s.deliver(cve, res, &st, smmpatch.StatusRolledBack)
}

// deliver stages the sealed package and runs the SMM portion.
func (s *System) deliver(cve string, res *sgxprep.Result, st *StageTimes, wantStatus uint32) (*Report, error) {
	// Stage 3: the helper stages ciphertext into reserved memory.
	st.Pass = s.Clock.Span(func() {
		s.Clock.Advance(timing.Linear(s.Model.PassFixed, s.Model.PassPerByte, len(res.Ciphertext)))
	})
	if err := smmpatch.StageBlob(s.Machine.Mem, s.helperPriv, smmpatch.EnclavePubAddr(s.Kernel.Res), res.EnclavePub); err != nil {
		return nil, fmt.Errorf("core: stage enclave key: %w", err)
	}
	if err := smmpatch.StageBlob(s.Machine.Mem, s.helperPriv, smmpatch.PackageAddr(s.Kernel.Res), res.Ciphertext); err != nil {
		return nil, fmt.Errorf("core: stage package: %w", err)
	}

	// Stage 4: SMI — the only part that pauses the OS.
	smiErr := s.SMM.Trigger(smmpatch.CmdProcessPackage, 0)
	bd := s.Handler.LastBreakdown()
	st.KeyGen = bd.KeyGen
	st.Decrypt = bd.Decrypt
	st.Verify = bd.Verify
	st.Apply = bd.Apply
	st.Switch = s.Model.SMMEntry + s.Model.SMMExit
	if smiErr != nil {
		return nil, fmt.Errorf("core: SMM processing: %w", smiErr)
	}

	// Confirm through the status mailbox and report to the server with
	// its MAC (the authenticated DoS-detection handshake).
	status, err := smmpatch.ReadStatusRecord(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return nil, err
	}
	if status.Code != wantStatus {
		return nil, &StatusError{ID: cve, Got: status.Code, Want: wantStatus}
	}
	if err := s.client.ReportStatusMAC(status.Code, status.Seq, status.Digest, status.MAC[:]); err != nil {
		return nil, err
	}
	if wantStatus == smmpatch.StatusPatched {
		s.obs.ObserveDur(obs.HistDowntime, st.KeyGen+st.Decrypt+st.Verify+st.Apply+st.Switch)
	}
	return &Report{ID: cve, Stages: *st}, nil
}

// Protect runs SMM introspection over all applied patches, repairing
// and reporting tampering (§V-D). It returns whether tampering was
// found during this run.
func (s *System) Protect() (bool, error) {
	before := s.Handler.TamperEvents()
	if err := s.SMM.Trigger(smmpatch.CmdIntrospect, 0); err != nil {
		return false, err
	}
	return s.Handler.TamperEvents() > before, nil
}

// Applied returns the currently applied patch IDs.
func (s *System) Applied() []string { return s.Handler.Applied() }

// WatchKernelText baselines an SMM-held integrity hash of the whole
// kernel text segment; later Protect calls flag any modification KShot
// did not make itself (HyperCheck-style kernel protection, §V-D).
func (s *System) WatchKernelText() error {
	return s.SMM.Trigger(smmpatch.CmdWatchText, 0)
}
