// Package core is KShot's orchestrator and public API: it assembles
// the simulated target machine (kernel, SMM controller + patching
// handler, SGX platform + preparation enclave), connects to the remote
// patch server, and drives the live patching workflow of Figure 2:
//
//  1. the untrusted helper fetches the encrypted binary patch from the
//     remote server;
//  2. the SGX enclave preprocesses it against the running kernel and
//     seals it for the SMM channel;
//  3. the helper stages ciphertext into the reserved memory and raises
//     an SMI;
//  4. the SMM handler decrypts, verifies, and applies the patch on the
//     paused machine, then resumes the OS.
//
// Every step the helper performs runs at user/kernel privilege against
// access-controlled memory; every SMM step runs on a paused machine.
// A compromised kernel can disturb the helper (a denial of service the
// remote server detects) but cannot forge, read, or tamper with patch
// content.
package core

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/introspect"
	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
	"kshot/internal/obs"
	"kshot/internal/options"
	"kshot/internal/patchserver"
	"kshot/internal/sgx"
	"kshot/internal/sgxprep"
	"kshot/internal/smm"
	"kshot/internal/smmpatch"
	"kshot/internal/timing"
)

// Options configures a System.
type Options struct {
	// Version is the kernel version to boot ("3.14" or "4.4").
	Version string

	// NumVCPUs for the target machine (default 4).
	NumVCPUs int

	// Dispatch selects the vCPU execution engine: predecoded basic
	// blocks (the zero value), the decode-switch oracle interpreter,
	// or differential lockstep verification of the two (which requires
	// NumVCPUs == 1). Virtual-time metrics are identical across modes;
	// only wall-clock speed differs.
	Dispatch isa.Dispatch

	// ExtraFiles adds subsystem source files to the base tree — the
	// vulnerable code the benchmark kernels ship with.
	ExtraFiles map[string]string

	// DisableFtrace and DisableInline flip the kernel build config off
	// its defaults (both features on). The generated-corpus sweeps boot
	// every (ftrace × inline) combination; the patch server rebuilds
	// with whatever config the target attests, so patches stay
	// address-compatible either way.
	DisableFtrace bool
	DisableInline bool

	// ServerAddr is the remote patch server's TCP address.
	ServerAddr string

	// HashAlg selects payload verification hashing (default SHA-256).
	HashAlg kcrypto.HashAlg

	// Rand is the entropy source for all key material (crypto/rand
	// when nil; deterministic in tests).
	Rand io.Reader

	// CheckActiveness enables the SMM handler's conservative
	// activeness check: patches to functions currently executing on
	// (or returning into) some vCPU are refused with ErrTargetActive
	// and can be retried.
	CheckActiveness bool

	// DialRetries allows extra TCP connect attempts to the patch
	// server with exponential backoff, and RequestRetries allows
	// reconnect-and-replay of a transport-failed request burst (safe
	// here because the system's hellos are attested, so a reconnect
	// converges on the same channel key). RetryBackoff is the base
	// delay, doubling per attempt (patchserver.DefaultRetryBackoff
	// when zero). The backoff runs on the system's wall clock.
	DialRetries    int
	RequestRetries int
	RetryBackoff   time.Duration

	// TemplateCache, when set, provisions the System by COW-forking a
	// cached template machine for this configuration instead of
	// cold-booting one (see template.go). The first provisioning per
	// (version, ftrace, inline, extra-files, dispatch, vCPUs) config
	// pays the full boot; every subsequent one is a fork.
	TemplateCache *TemplateCache

	// Introspection, when non-nil, enables the event-driven
	// kernel-text integrity layer: memory/execution/SMM hooks feed a
	// bounded event channel, and a Detector sweeps kernel.text against
	// the last-known-good snapshot, classifying tampering, stale-patch
	// replays, and activeness grooming into typed verdicts (see
	// internal/introspect). Nil — the default — leaves every hook
	// unset, so the disabled cost is one predictable branch on the
	// already-rare paths that could matter.
	Introspection *introspect.Config
}

// StageTimes reports the virtual time each pipeline stage consumed for
// one patch — the measurements behind Tables II/III and Figures 4/5.
// It is an alias of timing.Stages so the batch pipeline and the
// orchestrator share one stage vocabulary.
type StageTimes = timing.Stages

// Report is the outcome of one Apply or Rollback.
type Report struct {
	ID     string
	Stages StageTimes
}

// System is a provisioned KShot deployment on one target machine.
type System struct {
	Machine *machine.Machine
	Kernel  *kernel.Kernel
	SMM     *smm.Controller
	Handler *smmpatch.Handler
	Clock   *timing.Clock
	Model   timing.Model

	// platform/enclave/prog/client are nil on a forked System until
	// first server use: fork-time provisioning is deliberately
	// network-free, and ensureAttached performs the dial, attested
	// hello, and enclave load lazily (overlapping with rollout wave
	// scheduling instead of sitting on the provisioning critical
	// path). Cold-booted Systems attach eagerly during NewSystem, as
	// the paper's workflow describes.
	platform *sgx.Platform
	enclave  *sgx.Enclave
	prog     *sgxprep.Program
	client   *patchserver.Client
	info     patchserver.OSInfo

	// attachMu serializes the lazy attach; after it completes, client
	// and friends are immutable. needBootstrap (also under attachMu)
	// marks a forked System whose bootstrap key-exchange SMI is still
	// pending.
	attachMu      sync.Mutex
	needBootstrap bool

	// Retained so ApplyAll can dial extra attested fetch connections,
	// and (for forks) so the lazy attach can build the enclave.
	serverAddr  string
	meas        sgx.Measurement
	attKey      []byte
	hashAlg     kcrypto.HashAlg
	rng         io.Reader
	sessionRoot []byte // non-nil on forks: derived-session channel root

	// Client resilience knobs (see Options).
	dialRetries    int
	requestRetries int
	retryBackoff   time.Duration

	helperPriv mem.Priv

	// fi is the fault injection set threaded through every layer (nil
	// outside chaos testing); wall paces real-time waits (retry
	// backoff, injected latency) and defaults to the system clock; obs
	// is the observability hook set threaded the same way (nil when
	// tracing/metrics are disabled).
	fi   *faultinject.Set
	wall timing.WallClock
	obs  *obs.Hooks

	// intr/det are the introspection event channel and kernel-text
	// detector, nil unless EnableIntrospection ran. The pipeline
	// announces patch SMIs to det (ExpectSMI) and rebaselines it after
	// every successful text change, so the detector's last-known-good
	// snapshot tracks the text KShot itself produced.
	intr *introspect.Channel
	det  *introspect.Detector
}

// Validate checks the assembled options for values no deployment can
// boot with, returning a typed *options.Error (matching
// options.ErrInvalid) for the first offender. NewSystem calls it; the
// functional-options constructor surfaces the same errors through its
// With* funcs.
func (o *Options) Validate() error {
	bad := func(option, format string, a ...any) error {
		return options.Errorf("kshot.New", option, format, a...)
	}
	if o.NumVCPUs < 0 {
		return bad("WithVCPUs", "must be >= 0, got %d", o.NumVCPUs)
	}
	switch o.Dispatch {
	case isa.DispatchBlocks, isa.DispatchOracle:
	case isa.DispatchLockstep:
		if o.NumVCPUs > 1 {
			return bad("WithDispatch", "lockstep requires exactly 1 vCPU, got %d", o.NumVCPUs)
		}
	default:
		return bad("WithDispatch", "unknown dispatch mode %d", int(o.Dispatch))
	}
	if o.DialRetries < 0 {
		return bad("WithDialRetries", "must be >= 0, got %d", o.DialRetries)
	}
	if o.RequestRetries < 0 {
		return bad("WithRequestRetries", "must be >= 0, got %d", o.RequestRetries)
	}
	if o.RetryBackoff < 0 {
		return bad("WithDialBackoff", "must be >= 0, got %v", o.RetryBackoff)
	}
	if o.Introspection != nil {
		if o.Introspection.Capacity < 0 {
			return bad("WithIntrospection", "capacity must be >= 0, got %d", o.Introspection.Capacity)
		}
		if o.Introspection.SweepEvery < 0 {
			return bad("WithIntrospection", "sweep period must be >= 0, got %v", o.Introspection.SweepEvery)
		}
		if o.Introspection.GroomThreshold < 0 {
			return bad("WithIntrospection", "groom threshold must be >= 0, got %d", o.Introspection.GroomThreshold)
		}
	}
	return nil
}

// NewSystem boots the target machine, locks down SMM, attests and
// loads the preparation enclave, and registers with the patch server.
func NewSystem(opts Options) (*System, error) {
	return NewSystemCtx(context.Background(), opts)
}

// NewSystemCtx is NewSystem with provisioning-time cancellation: ctx
// is checked between boot stages (kernel build, machine boot, SMM
// provisioning, server registration), so a halted rollout stops
// booting stragglers instead of finishing every in-flight cold boot.
// When Options.TemplateCache is set, provisioning forks a cached
// template instead of cold-booting.
func NewSystemCtx(ctx context.Context, opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = withDefaults(opts)
	var s *System
	if opts.TemplateCache != nil {
		var err error
		if s, err = opts.TemplateCache.System(ctx, opts); err != nil {
			return nil, err
		}
	} else {
		m, k, info, err := bootTarget(ctx, opts)
		if err != nil {
			return nil, err
		}
		if s, err = provisionCold(ctx, opts, m, k, info); err != nil {
			m.Stop()
			return nil, err
		}
	}
	// Introspection wiring is per-System (a fork never inherits its
	// template's hooks), so it lands here — the common tail of both
	// provisioning paths.
	if opts.Introspection != nil {
		if err := s.EnableIntrospection(*opts.Introspection); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// withDefaults canonicalizes the zero-value options — the same
// defaults whether a System is cold-booted or template-forked, and
// the basis of the template cache key.
func withDefaults(opts Options) Options {
	if opts.Version == "" {
		opts.Version = "4.4"
	}
	if opts.HashAlg == 0 {
		opts.HashAlg = kcrypto.HashSHA256
	}
	if opts.NumVCPUs == 0 {
		if opts.Dispatch == isa.DispatchLockstep {
			opts.NumVCPUs = 1 // lockstep rewinds shared memory; one vCPU only
		} else {
			opts.NumVCPUs = 4
		}
	}
	return opts
}

// bootTarget builds the (vulnerable) kernel tree, boots the machine,
// and runs kernel_init — everything a target needs before any
// per-target secret exists. It is the shared front half of cold
// provisioning and template construction.
func bootTarget(ctx context.Context, opts Options) (*machine.Machine, *kernel.Kernel, patchserver.OSInfo, error) {
	var info patchserver.OSInfo
	if err := ctx.Err(); err != nil {
		return nil, nil, info, err
	}
	tree, err := kernel.BaseTreeWithConfig(kernel.BuildConfig{
		Version: opts.Version,
		Ftrace:  !opts.DisableFtrace,
		Inline:  !opts.DisableInline,
	})
	if err != nil {
		return nil, nil, info, err
	}
	extra := make([]string, 0, len(opts.ExtraFiles))
	for name := range opts.ExtraFiles {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		tree.AddFile(name, opts.ExtraFiles[name])
	}
	img, _, err := tree.Build()
	if err != nil {
		return nil, nil, info, fmt.Errorf("core: kernel build: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, info, err
	}
	m, err := machine.New(machine.Config{NumVCPUs: opts.NumVCPUs, Dispatch: opts.Dispatch})
	if err != nil {
		return nil, nil, info, err
	}
	k, err := kernel.Boot(m, img, tree.Config())
	if err != nil {
		m.Stop()
		return nil, nil, info, err
	}
	if _, err := k.Call(0, "kernel_init"); err != nil {
		m.Stop()
		return nil, nil, info, fmt.Errorf("core: kernel init: %w", err)
	}
	info = patchserver.OSInfo{
		Version: opts.Version,
		Ftrace:  tree.Config().Ftrace,
		Inline:  tree.Config().Inline,
	}
	return m, k, info, nil
}

// provisionSMM installs the per-target SMM state on a booted machine:
// controller, fresh status-attestation key, patching handler (in DH
// mode, or derived-session mode when sessionRoot is set), and the
// SMRAM lock. This always happens per target — never in the template —
// so every fork's SMRAM holds its own secrets before it is sealed.
func provisionSMM(opts Options, m *machine.Machine, k *kernel.Kernel, clock *timing.Clock, model timing.Model, rng io.Reader, sessionRoot []byte) (*smm.Controller, *smmpatch.Handler, []byte, error) {
	ctrl, err := smm.NewController(m, kernel.SMRAMBase, clock, model)
	if err != nil {
		return nil, nil, nil, err
	}
	// Status-attestation key: provisioned into SMRAM before lock and
	// registered with the server, so deployment confirmations cannot
	// be forged from the kernel-writable mailbox.
	attKey := make([]byte, 32)
	if _, err := io.ReadFull(rng, attKey); err != nil {
		return nil, nil, nil, fmt.Errorf("core: attestation key: %w", err)
	}
	handler, err := smmpatch.New(smmpatch.Config{
		Reserved:        k.Res,
		KernelVersion:   opts.Version,
		Rand:            opts.Rand,
		CheckActiveness: opts.CheckActiveness,
		TextBase:        kernel.TextBase,
		TextSize:        kernel.TextRegionSize,
		AttestationKey:  attKey,
		SessionRoot:     sessionRoot,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := handler.Register(ctrl); err != nil {
		return nil, nil, nil, err
	}
	if err := ctrl.Lock(); err != nil {
		return nil, nil, nil, err
	}
	return ctrl, handler, attKey, nil
}

// provisionCold finishes a cold boot the paper's way: SMM lock, eager
// server registration, eager enclave load, and the bootstrap
// key-exchange SMI.
func provisionCold(ctx context.Context, opts Options, m *machine.Machine, k *kernel.Kernel, info patchserver.OSInfo) (*System, error) {
	clock := &timing.Clock{}
	model := timing.Calibrated()

	rng := opts.Rand
	if rng == nil {
		rng = cryptorand.Reader
	}
	ctrl, handler, attKey, err := provisionSMM(opts, m, k, clock, model, rng, nil)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	s := &System{
		Machine:    m,
		Kernel:     k,
		SMM:        ctrl,
		Handler:    handler,
		Clock:      clock,
		Model:      model,
		info:       info,
		serverAddr: opts.ServerAddr,
		meas:       sgx.MeasureIdentity(sgxprep.Identity(opts.Version)),
		attKey:     attKey,
		hashAlg:    opts.HashAlg,
		rng:        opts.Rand,

		dialRetries:    opts.DialRetries,
		requestRetries: opts.RequestRetries,
		retryBackoff:   opts.RetryBackoff,

		helperPriv: mem.PrivUser,
	}
	// Register with the patch server under the enclave's expected
	// measurement and load the preparation enclave, eagerly.
	if err := s.attach(ctx); err != nil {
		return nil, err
	}
	// Bootstrap the SMM channel key.
	if err := ctrl.Trigger(smmpatch.CmdKeyExchange, 0); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// ensureAttached lazily performs the server-facing half of
// provisioning for a forked System: dial, attested hello, SGX
// platform construction, and the enclave load. It is a no-op once
// attached (cold-booted Systems attach during NewSystem). Safe for
// concurrent callers.
func (s *System) ensureAttached(ctx context.Context) error {
	s.attachMu.Lock()
	defer s.attachMu.Unlock()
	if s.client == nil {
		if err := s.attach(ctx); err != nil {
			return err
		}
	}
	// Forked Systems also defer the bootstrap key-exchange SMI to first
	// contact: the fork's SMRAM is locked and keyed at Fork time, but
	// publishing the channel nonce writes guest memory, and deferring it
	// keeps a fresh fork's private frame count at zero. Cold boots run
	// the SMI during provisioning and never set needBootstrap.
	if s.needBootstrap {
		if err := s.SMM.Trigger(smmpatch.CmdKeyExchange, 0); err != nil {
			return err
		}
		s.needBootstrap = false
	}
	return nil
}

// attach performs the dial + hello + enclave-load sequence. Callers
// hold attachMu or are single-threaded construction paths.
func (s *System) attach(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	client, err := patchserver.Dial(s.serverAddr, s.dialOptions()...)
	if err != nil {
		return err
	}
	serverKey, err := client.HelloWithAttestation(s.info, s.meas, s.attKey)
	if err != nil {
		client.Close()
		return err
	}
	if err := ctx.Err(); err != nil {
		client.Close()
		return err
	}

	platform, err := sgx.NewPlatform(s.Machine.Mem, kernel.EPCBase, kernel.EPCSize)
	if err != nil {
		client.Close()
		return err
	}
	prog, err := sgxprep.New(sgxprep.Config{
		ServerKey:     serverKey,
		KernelVersion: s.info.Version,
		KernelSymbols: s.Kernel.Symbols().All(),
		Placement:     s.Handler.Placement(),
		HashAlg:       s.hashAlg,
		Clock:         s.Clock,
		Model:         s.Model,
		Rand:          s.rng,
		SessionRoot:   s.sessionRoot,
	})
	if err != nil {
		client.Close()
		return err
	}
	enclave, err := platform.Load(prog, sgxprep.EnclavePages)
	if err != nil {
		client.Close()
		return err
	}
	if enclave.Measurement() != s.meas {
		enclave.Destroy()
		client.Close()
		return errors.New("core: loaded enclave does not match attested measurement")
	}
	// Hooks installed before attach propagate to the new layers (the
	// client picked them up through dialOptions).
	if s.fi != nil {
		platform.SetFaultInjector(s.fi)
	}
	if s.obs != nil {
		platform.SetObserver(s.obs)
		prog.SetObserver(s.obs)
	}
	s.client = client
	s.platform = platform
	s.prog = prog
	s.enclave = enclave
	return nil
}

// SetFaultInjector threads a fault injection set through every layer
// of the deployment — memory staging, SMI delivery, the batch handler,
// the ECALL boundary, and the patch-server client — or removes it with
// nil. The chaos suite installs a seeded set per run; production
// deployments never call this.
func (s *System) SetFaultInjector(fi *faultinject.Set) {
	s.fi = fi
	s.Machine.Mem.SetFaultInjector(fi)
	s.SMM.SetFaultInjector(fi)
	s.Handler.SetFaultInjector(fi)
	// Server-facing layers exist only after attach; ensureAttached
	// re-applies the stored set to them.
	if s.platform != nil {
		s.platform.SetFaultInjector(fi)
	}
	if s.client != nil {
		s.client.SetFaultInjector(fi)
	}
	s.wireFaultObserver()
}

// SetObserver threads the observability hooks through every layer of
// the deployment — SMI delivery, the SMM patching handler, the ECALL
// boundary, enclave preprocessing, and the patch-server client — or
// removes them with nil. Fired fault-injection points are counted under
// the obs.FaultPrefix namespace whenever both a set and hooks are
// installed, regardless of installation order.
func (s *System) SetObserver(ob *obs.Hooks) {
	s.obs = ob
	s.SMM.SetObserver(ob)
	s.Handler.SetObserver(ob)
	s.intr.SetObserver(ob)
	s.det.SetObserver(ob)
	if s.platform != nil {
		s.platform.SetObserver(ob)
	}
	if s.client != nil {
		s.client.SetObserver(ob)
	}
	if s.prog != nil {
		s.prog.SetObserver(ob)
	}
	s.wireFaultObserver()
}

func (s *System) wireFaultObserver() {
	ob := s.obs
	if ob == nil {
		s.fi.SetObserver(nil)
		return
	}
	s.fi.SetObserver(func(pt faultinject.Point) {
		ob.Count(obs.FaultPrefix+string(pt), 1)
	})
}

// EnableIntrospection wires the event-driven integrity layer into this
// System: the memory, execution, and SMM hooks feed a bounded event
// channel, and a Detector baselines kernel.text now and classifies
// later changes into typed verdicts. NewSystemCtx calls it when
// Options.Introspection is set; tests and the adversary harness may
// also call it directly on an already-provisioned System. Enabling
// twice is an error (the baseline would silently move).
func (s *System) EnableIntrospection(cfg introspect.Config) error {
	if s.det != nil {
		return fmt.Errorf("core: introspection already enabled")
	}
	ch := introspect.NewChannel(cfg.Capacity, s.wall)
	ch.Arm(cfg.ArmSteps)
	det, err := introspect.NewDetector(ch, s.Machine.Mem, kernel.TextBase, kernel.TextRegionSize, introspect.DetectorConfig{
		PatchCmds:      []uint8{uint8(smmpatch.CmdProcessPackage), uint8(smmpatch.CmdProcessBatch)},
		GroomThreshold: cfg.GroomThreshold,
		Wall:           s.wall,
	})
	if err != nil {
		return err
	}
	s.intr, s.det = ch, det
	ch.SetObserver(s.obs)
	det.SetObserver(s.obs)
	s.Machine.Mem.SetIntrospector(ch)
	s.Machine.SetIntrospect(ch)
	s.SMM.SetIntrospector(ch)
	if cfg.SweepEvery > 0 {
		det.Start(cfg.SweepEvery)
	}
	return nil
}

// Introspection returns the kernel-text detector, or nil when
// introspection is not enabled. All Detector methods are nil-safe, so
// callers may use the result unconditionally.
func (s *System) Introspection() *introspect.Detector { return s.det }

// IntrospectionEvents returns the introspection event channel, or nil
// when introspection is not enabled.
func (s *System) IntrospectionEvents() *introspect.Channel { return s.intr }

// SetWallClock replaces the clock pacing real-time waits (nil restores
// real time). Tests inject timing.FakeWall so retry backoff and
// injected latency never depend on the host clock.
func (s *System) SetWallClock(wc timing.WallClock) {
	s.wall = wc
	if s.client != nil {
		s.client.SetWallClock(wc)
	}
}

// dialOptions builds the options for an extra attested patch-server
// connection: the system's retry knobs plus its current hooks, so a
// pool connection's dial-path faults and retry backoff run under the
// same injected set and clock as the boot-time client.
func (s *System) dialOptions() []patchserver.DialOption {
	opts := []patchserver.DialOption{
		patchserver.WithDialRetries(s.dialRetries),
		patchserver.WithRequestRetries(s.requestRetries),
	}
	if s.retryBackoff > 0 {
		opts = append(opts, patchserver.WithRetryBackoff(s.retryBackoff))
	}
	if s.fi != nil {
		opts = append(opts, patchserver.WithClientFaultInjector(s.fi))
	}
	if s.wall != nil {
		opts = append(opts, patchserver.WithClientWallClock(s.wall))
	}
	if s.obs != nil {
		opts = append(opts, patchserver.WithClientObserver(s.obs))
	}
	return opts
}

// ecall enters the preparation enclave, transparently recovering from
// enclave loss: if the enclave was destroyed (crash, EPC loss), it is
// reloaded, re-attested against the measurement registered with the
// server, and the call retried once. The enclave holds no state the
// reload cannot rebuild — sessions are re-derived per package from the
// SMM public key passed in the arguments.
func (s *System) ecall(fn int, args []byte) ([]byte, error) {
	out, err := s.enclave.ECall(fn, args)
	if err == nil || !errors.Is(err, sgx.ErrDestroyed) {
		return out, err
	}
	if rerr := s.reloadEnclave(); rerr != nil {
		return nil, fmt.Errorf("%w (reload failed: %w)", err, rerr)
	}
	return s.enclave.ECall(fn, args)
}

// reloadEnclave replaces a destroyed enclave with a fresh load of the
// same program and verifies its measurement still matches what the
// server attested at hello.
func (s *System) reloadEnclave() error {
	s.enclave.Destroy()
	e, err := s.platform.Load(s.prog, sgxprep.EnclavePages)
	if err != nil {
		return fmt.Errorf("core: enclave reload: %w", err)
	}
	if e.Measurement() != s.meas {
		e.Destroy()
		return errors.New("core: reloaded enclave does not match attested measurement")
	}
	s.enclave = e
	return nil
}

// Close releases the system's resources.
func (s *System) Close() {
	s.det.Stop()
	if s.enclave != nil {
		s.enclave.Destroy()
	}
	if s.client != nil {
		_ = s.client.Close()
	}
	s.Machine.Stop()
}

// Apply live-patches the named CVE end to end and reports per-stage
// times. The OS pauses only for the SMM portion. ctx bounds the fetch
// and is checked between stages; cancellation never interrupts an SMI
// already raised, so the system stays consistent.
func (s *System) Apply(ctx context.Context, cve string) (*Report, error) {
	if err := s.ensureAttached(ctx); err != nil {
		return nil, err
	}
	st := StageTimes{}
	// Stage 1: fetch the encrypted patch (untrusted helper, network).
	blob, err := s.fetchBlob(ctx, s.client, cve, &st)
	if err != nil {
		return nil, err
	}
	return s.applyPrepared(ctx, cve, blob, &st)
}

// fetchBlob runs Stage 1 over the given server connection, recording
// the virtual fetch time in st.
func (s *System) fetchBlob(ctx context.Context, c *patchserver.Client, cve string, st *StageTimes) ([]byte, error) {
	blob, err := c.FetchPatch(ctx, cve)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrFetch, cve, err)
	}
	st.Fetch = timing.Linear(s.Model.FetchFixed, s.Model.FetchPerByte, len(blob))
	s.Clock.Advance(st.Fetch)
	s.obs.Span(obs.PhaseFetch, cve, -1, st.Fetch, len(blob))
	return blob, nil
}

// applyPrepared runs Stages 2–4 for an already fetched blob: enclave
// preprocessing, staging, and the SMI.
func (s *System) applyPrepared(ctx context.Context, cve string, blob []byte, st *StageTimes) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: enclave preprocessing.
	smmPub, err := smmpatch.ReadSMMPub(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return nil, fmt.Errorf("core: read SMM key: %w", err)
	}
	memX, data := s.Handler.Cursors()
	args, err := sgxprep.EncodeArgs(sgxprep.PrepareArgs{
		ServerBlob: blob,
		SMMPub:     smmPub,
		MemXCursor: memX,
		DataCursor: data,
	})
	if err != nil {
		return nil, err
	}
	out, err := s.ecall(sgxprep.FnPrepare, args)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrEnclavePrepare, cve, err)
	}
	res, err := sgxprep.DecodeResult(out)
	if err != nil {
		return nil, err
	}
	st.Preprocess = s.prog.LastBreakdown().Preprocess
	st.PayloadBytes = res.PayloadBytes

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.deliver(cve, res, st, smmpatch.StatusPatched)
}

// Rollback undoes the most recently applied patch (§V-C).
func (s *System) Rollback(ctx context.Context, cve string) (*Report, error) {
	if err := s.ensureAttached(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	smmPub, err := smmpatch.ReadSMMPub(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return nil, err
	}
	args, err := sgxprep.EncodeArgs(sgxprep.RollbackArgs{ID: cve, SMMPub: smmPub})
	if err != nil {
		return nil, err
	}
	out, err := s.ecall(sgxprep.FnPrepareRollback, args)
	if err != nil {
		return nil, fmt.Errorf("%w: rollback %s: %w", ErrEnclavePrepare, cve, err)
	}
	res, err := sgxprep.DecodeResult(out)
	if err != nil {
		return nil, err
	}
	st := StageTimes{Preprocess: s.prog.LastBreakdown().Preprocess}
	return s.deliver(cve, res, &st, smmpatch.StatusRolledBack)
}

// deliver stages the sealed package and runs the SMM portion.
func (s *System) deliver(cve string, res *sgxprep.Result, st *StageTimes, wantStatus uint32) (*Report, error) {
	// Stage 3: the helper stages ciphertext into reserved memory.
	st.Pass = s.Clock.Span(func() {
		s.Clock.Advance(timing.Linear(s.Model.PassFixed, s.Model.PassPerByte, len(res.Ciphertext)))
	})
	if err := smmpatch.StageBlob(s.Machine.Mem, s.helperPriv, smmpatch.EnclavePubAddr(s.Kernel.Res), res.EnclavePub); err != nil {
		return nil, fmt.Errorf("core: stage enclave key: %w", err)
	}
	if err := smmpatch.StageBlob(s.Machine.Mem, s.helperPriv, smmpatch.PackageAddr(s.Kernel.Res), res.Ciphertext); err != nil {
		return nil, fmt.Errorf("core: stage package: %w", err)
	}

	// Stage 4: SMI — the only part that pauses the OS. The pipeline
	// announces its own patch SMIs to the detector; one this trusted
	// path did not announce is a replayed artifact.
	s.det.ExpectSMI(uint8(smmpatch.CmdProcessPackage))
	s.det.BeginTrustedWindow()
	smiErr := s.SMM.Trigger(smmpatch.CmdProcessPackage, 0)
	// Closing the window rebaselines atomically: a background sweep
	// can never diff this SMI's text changes against the old baseline.
	s.det.EndTrustedWindow()
	bd := s.Handler.LastBreakdown()
	st.KeyGen = bd.KeyGen
	st.Decrypt = bd.Decrypt
	st.Verify = bd.Verify
	st.Apply = bd.Apply
	st.Switch = s.Model.SMMEntry + s.Model.SMMExit
	if smiErr != nil {
		if errors.Is(smiErr, smmpatch.ErrTargetActive) {
			s.det.NoteActiveRefusal(cve)
		}
		return nil, fmt.Errorf("core: SMM processing: %w", smiErr)
	}

	// Confirm through the status mailbox and report to the server with
	// its MAC (the authenticated DoS-detection handshake).
	status, err := smmpatch.ReadStatusRecord(s.Machine.Mem, s.helperPriv, s.Kernel.Res)
	if err != nil {
		return nil, err
	}
	if status.Code != wantStatus {
		return nil, &StatusError{ID: cve, Got: status.Code, Want: wantStatus}
	}
	if err := s.client.ReportStatusMAC(status.Code, status.Seq, status.Digest, status.MAC[:]); err != nil {
		return nil, err
	}
	if wantStatus == smmpatch.StatusPatched {
		s.obs.ObserveDur(obs.HistDowntime, st.KeyGen+st.Decrypt+st.Verify+st.Apply+st.Switch)
	}
	s.det.NoteApplied(cve)
	return &Report{ID: cve, Stages: *st}, nil
}

// Protect runs SMM introspection over all applied patches, repairing
// and reporting tampering (§V-D). It returns whether tampering was
// found during this run.
func (s *System) Protect() (bool, error) {
	before := s.Handler.TamperEvents()
	// The repair may rewrite trampolines; the trusted window defers
	// concurrent sweeps' frame diff and rebaselines on the repaired
	// text when it closes.
	s.det.BeginTrustedWindow()
	err := s.SMM.Trigger(smmpatch.CmdIntrospect, 0)
	s.det.EndTrustedWindow()
	if err != nil {
		return false, err
	}
	return s.Handler.TamperEvents() > before, nil
}

// Applied returns the currently applied patch IDs.
func (s *System) Applied() []string { return s.Handler.Applied() }

// WatchKernelText baselines an SMM-held integrity hash of the whole
// kernel text segment; later Protect calls flag any modification KShot
// did not make itself (HyperCheck-style kernel protection, §V-D).
func (s *System) WatchKernelText() error {
	return s.SMM.Trigger(smmpatch.CmdWatchText, 0)
}
