package timing

import (
	"context"
	"time"
)

// Backoff paces retries with exponential delays driven by a WallClock,
// so every retry loop in the system (pipeline redelivery, patch-server
// dial and request retry) shares one implementation the chaos suite
// can run on fake time. Not safe for concurrent use; make one per
// retry loop.
type Backoff struct {
	wall WallClock
	next time.Duration
	max  time.Duration
}

// NewBackoff returns a Backoff whose first Sleep waits base, doubling
// each call, capped at max (0 = uncapped). A nil wall uses the real
// clock; a non-positive base disables waiting (Sleep only checks ctx).
func NewBackoff(wall WallClock, base, max time.Duration) *Backoff {
	if wall == nil {
		wall = Real()
	}
	return &Backoff{wall: wall, next: base, max: max}
}

// Sleep waits for the current delay (doubling it for the next call)
// and reports whether the full wait elapsed; false means ctx is done
// and the retry loop should stop.
func (b *Backoff) Sleep(ctx context.Context) bool {
	d := b.next
	b.next *= 2
	if b.max > 0 && b.next > b.max {
		b.next = b.max
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	return b.wall.Sleep(ctx, d)
}
