package timing

import (
	"context"
	"testing"
	"time"
)

func TestFakeWallSleepIsInstantAndRecorded(t *testing.T) {
	f := NewFakeWall()
	start := f.Now()
	ctx := context.Background()

	real := time.Now()
	if !f.Sleep(ctx, time.Hour) {
		t.Fatal("Sleep returned false on live context")
	}
	if elapsed := time.Since(real); elapsed > time.Second {
		t.Fatalf("fake Sleep blocked for %v", elapsed)
	}
	if got := f.Now().Sub(start); got != time.Hour {
		t.Fatalf("fake time advanced %v, want 1h", got)
	}
	if f.Slept() != time.Hour || f.Sleeps() != 1 {
		t.Fatalf("recorded slept=%v sleeps=%d", f.Slept(), f.Sleeps())
	}
}

func TestFakeWallSleepRespectsCancelledContext(t *testing.T) {
	f := NewFakeWall()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if f.Sleep(ctx, time.Minute) {
		t.Fatal("Sleep returned true on cancelled context")
	}
	if f.Slept() != 0 {
		t.Fatalf("cancelled sleep still advanced time by %v", f.Slept())
	}
}

func TestFakeWallStartsAtFixedEpoch(t *testing.T) {
	if !NewFakeWall().Now().Equal(NewFakeWall().Now()) {
		t.Fatal("two fresh fake walls disagree on the epoch")
	}
}

func TestRealSleepInterruptedByCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if Real().Sleep(ctx, 30*time.Second) {
		t.Fatal("Sleep reported full duration despite cancel")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Sleep blocked for %v", elapsed)
	}
}

func TestRealSleepZeroDuration(t *testing.T) {
	if !Real().Sleep(context.Background(), 0) {
		t.Fatal("zero-duration sleep on live context should report true")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if Real().Sleep(ctx, 0) {
		t.Fatal("zero-duration sleep on cancelled context should report false")
	}
}
