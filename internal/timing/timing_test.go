package timing

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvanceAndNow(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("fresh clock not at zero")
	}
	if got := c.Advance(5 * time.Microsecond); got != 5*time.Microsecond {
		t.Errorf("Advance returned %v", got)
	}
	c.Advance(2 * time.Microsecond)
	if c.Now() != 7*time.Microsecond {
		t.Errorf("Now = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestClockSpan(t *testing.T) {
	var c Clock
	d := c.Span(func() {
		c.Advance(3 * time.Millisecond)
	})
	if d != 3*time.Millisecond {
		t.Errorf("Span = %v", d)
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000*time.Nanosecond {
		t.Errorf("concurrent total = %v", c.Now())
	}
}

func TestCalibratedPaperConstants(t *testing.T) {
	m := Calibrated()
	// §VI-C2 verbatim.
	if m.SMMEntry != 12900*time.Nanosecond || m.SMMExit != 21700*time.Nanosecond || m.KeyGen != 5200*time.Nanosecond {
		t.Errorf("fixed costs = %v/%v/%v", m.SMMEntry, m.SMMExit, m.KeyGen)
	}
	// The model must land close to the paper's calibration rows.
	checks := []struct {
		name  string
		got   time.Duration
		paper time.Duration
	}{
		{"prep 4KB", Linear(m.PrepFixed, m.PrepPerByte, 4096), 8034 * time.Microsecond},
		{"fetch 400KB", Linear(m.FetchFixed, m.FetchPerByte, 400<<10), 16707 * time.Microsecond},
		{"verify 400KB", Linear(m.VerifyFixed, m.VerifyPerByte, 400<<10), 311150 * time.Nanosecond},
		{"apply 400KB", Linear(m.ApplyFixed, m.ApplyPerByte, 400<<10), 396450 * time.Nanosecond},
	}
	for _, c := range checks {
		ratio := float64(c.got) / float64(c.paper)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: model %v vs paper %v (ratio %.2f)", c.name, c.got, c.paper, ratio)
		}
	}
	// SDBM must be cheaper per byte than SHA-256.
	if m.VerifySDBMPerByte >= m.VerifyPerByte {
		t.Error("SDBM not cheaper than SHA-256 in the model")
	}
	// Baseline ordering constants.
	if m.KUPKexecFixed <= m.KpatchStopMachine || m.KpatchStopMachine <= m.KARMAFixed {
		t.Error("baseline fixed costs out of order")
	}
}

func TestLinearSubNanosecondRates(t *testing.T) {
	// A 0.33 ns/B rate over 3 bytes must not vanish to zero over large
	// counts even though each byte is sub-nanosecond.
	d := Linear(0, 0.33, 1<<20)
	if d < 300*time.Microsecond || d > 400*time.Microsecond {
		t.Errorf("Linear(0.33ns/B, 1MB) = %v", d)
	}
	if Linear(time.Microsecond, 0, 12345) != time.Microsecond {
		t.Error("zero rate added time")
	}
}
