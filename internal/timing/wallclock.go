package timing

import (
	"context"
	"sync"
	"time"
)

// WallClock abstracts real elapsed time for the few places the
// simulator genuinely waits (retry backoff, induced network delays) as
// opposed to the virtual Clock that models the paper's latencies.
// Injecting a fake implementation makes those waits deterministic and
// instant in tests, so the chaos suite never depends on wall-clock
// time.
type WallClock interface {
	// Now returns the current wall time.
	Now() time.Time

	// Sleep blocks for d or until ctx is done, whichever comes first,
	// and reports whether the full duration elapsed.
	Sleep(ctx context.Context, d time.Duration) bool
}

// Real returns the WallClock backed by the system clock.
func Real() WallClock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// FakeWall is a deterministic WallClock: Sleep returns immediately,
// advancing the fake time by the requested duration and recording it.
// A cancelled context still wins over the sleep, preserving the real
// clock's cancellation semantics.
type FakeWall struct {
	mu     sync.Mutex
	now    time.Time
	slept  time.Duration
	sleeps int
}

// NewFakeWall returns a FakeWall starting at a fixed epoch so tests
// never observe the host clock.
func NewFakeWall() *FakeWall {
	return &FakeWall{now: time.Unix(1_600_000_000, 0)}
}

// Now returns the fake time.
func (f *FakeWall) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep advances the fake time by d without blocking.
func (f *FakeWall) Sleep(ctx context.Context, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	if d < 0 {
		d = 0
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.slept += d
	f.sleeps++
	f.mu.Unlock()
	return true
}

// Slept returns the total duration requested across all sleeps.
func (f *FakeWall) Slept() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slept
}

// Sleeps returns how many Sleep calls completed.
func (f *FakeWall) Sleeps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sleeps
}
