package timing

import "time"

// Stages reports the virtual time each Figure-2 pipeline stage
// consumed for one patch — the measurements behind Tables II/III and
// Figures 4/5. It lives here (rather than in core) so the batch
// pipeline can account stage times without importing the orchestrator.
type Stages struct {
	// SGX-side stages (Table II).
	Fetch      time.Duration
	Preprocess time.Duration
	Pass       time.Duration

	// SMM-side stages (Table III).
	KeyGen  time.Duration
	Decrypt time.Duration
	Verify  time.Duration
	Apply   time.Duration
	Switch  time.Duration // SMM entry + exit

	// PayloadBytes is the function payload total for this patch.
	PayloadBytes int
}

// SGXTotal is the non-blocking preparation total (Table II "Total").
func (st Stages) SGXTotal() time.Duration { return st.Fetch + st.Preprocess + st.Pass }

// SMMTotal is the blocking OS-pause total (Table III "Total",
// including key generation and SMM switching).
func (st Stages) SMMTotal() time.Duration {
	return st.KeyGen + st.Decrypt + st.Verify + st.Apply + st.Switch
}

// Add returns the stage-wise sum of two measurements — used to total a
// batch without losing the per-stage split.
func (st Stages) Add(o Stages) Stages {
	return Stages{
		Fetch:        st.Fetch + o.Fetch,
		Preprocess:   st.Preprocess + o.Preprocess,
		Pass:         st.Pass + o.Pass,
		KeyGen:       st.KeyGen + o.KeyGen,
		Decrypt:      st.Decrypt + o.Decrypt,
		Verify:       st.Verify + o.Verify,
		Apply:        st.Apply + o.Apply,
		Switch:       st.Switch + o.Switch,
		PayloadBytes: st.PayloadBytes + o.PayloadBytes,
	}
}

// AmortizeFixed splits a per-SMI fixed cost (world switch, key
// generation) evenly over the n members of a batched delivery, so
// per-patch stage reports still sum to the true SMI cost and the
// Table II/III shape survives batching.
func AmortizeFixed(fixed time.Duration, n int) time.Duration {
	if n <= 1 {
		return fixed
	}
	return fixed / time.Duration(n)
}
