// Package timing provides the virtual-time cost model used to report
// paper-comparable latencies.
//
// The paper's absolute numbers come from rdtsc on an Intel i7 testbed
// running firmware SMM handlers and SGX enclaves; an interpreter-based
// simulation cannot (and should not) match them by measuring its own
// wall clock. Instead, every simulated operation advances a virtual
// clock by a cost drawn from a model calibrated against the paper's
// own measurements (Tables II and III and §VI-C2): fixed costs for SMM
// world switches and key generation, plus per-byte rates for fetching,
// preprocessing, passing, decryption, verification, and application.
// Because the simulator still performs the real work (real AES, real
// SHA-256, real byte copies), the *shape* of the results — linearity in
// patch size, which stage dominates, where fixed costs stop mattering —
// is produced by the implementation, while the virtual clock maps work
// onto the paper's time scale.
package timing

import (
	"sync/atomic"
	"time"
)

// Clock accumulates virtual time. It is safe for concurrent use.
type Clock struct {
	ns atomic.Int64
}

// Advance adds d to the virtual clock and returns the new reading.
func (c *Clock) Advance(d time.Duration) time.Duration {
	return time.Duration(c.ns.Add(int64(d)))
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns.Store(0) }

// Span measures the virtual time consumed by fn.
func (c *Clock) Span(fn func()) time.Duration {
	start := c.Now()
	fn()
	return c.Now() - start
}

// Rate is a per-byte processing cost in nanoseconds per byte. It is a
// float because several of the paper's per-byte rates are well below
// one nanosecond.
type Rate float64

// Model is the calibrated cost model. Fixed costs are per operation;
// Per* rates are per byte processed.
type Model struct {
	// SMM world switch and fixed SMM-side costs (§VI-C2).
	SMMEntry time.Duration // CPU switch into SMM
	SMMExit  time.Duration // RSM back to protected mode
	KeyGen   time.Duration // per-patch Diffie-Hellman key generation in SMM

	// SGX-side stages (Table II), fixed + per-byte.
	FetchFixed   time.Duration
	FetchPerByte Rate
	PrepFixed    time.Duration
	PrepPerByte  Rate
	PassFixed    time.Duration
	PassPerByte  Rate

	// SMM-side stages (Table III), fixed + per-byte.
	DecryptFixed   time.Duration
	DecryptPerByte Rate
	VerifyFixed    time.Duration
	VerifyPerByte  Rate
	ApplyFixed     time.Duration
	ApplyPerByte   Rate

	// VerifySDBMPerByte is the per-byte cost of the cheaper SDBM hash
	// the paper suggests as an alternative to SHA-2 (§VI-C2). Used by
	// the verification-hash ablation.
	VerifySDBMPerByte Rate

	// Baseline-system constants for the Table V comparison, drawn from
	// the paper's reported figures: KUP replaces the whole kernel in
	// ~3 s; kpatch's stop_machine-based application takes ~ms; KARMA
	// applies small instruction patches in <5 µs.
	KUPKexecFixed        time.Duration
	KUPCheckpointPerByte Rate
	KpatchStopMachine    time.Duration
	KpatchPerByte        Rate
	KARMAFixed           time.Duration
	KARMAPerByte         Rate
}

// Calibrated returns the model fitted to the paper's published
// measurements. Per-byte rates are two-point fits over Table II and
// Table III rows (400 B and 400 KB); fixed costs are the corresponding
// intercepts or the directly reported constants.
func Calibrated() Model {
	return Model{
		// §VI-C2: "the average times for switching to, and resuming
		// from, SMM are 12.9µs and 21.7µs"; "5.2µs to generate
		// encryption keys".
		SMMEntry: 12900 * time.Nanosecond,
		SMMExit:  21700 * time.Nanosecond,
		KeyGen:   5200 * time.Nanosecond,

		// Table II fits.
		FetchFixed:   52 * time.Microsecond,
		FetchPerByte: 41,
		PrepFixed:    83 * time.Microsecond,
		PrepPerByte:  1918,
		PassFixed:    9 * time.Microsecond,
		PassPerByte:  10,

		// Table III fits. Verification (SHA-2) dominates, as §VI-C2
		// observes.
		DecryptFixed:   40 * time.Nanosecond,
		DecryptPerByte: 0.33,
		VerifyFixed:    2900 * time.Nanosecond,
		VerifyPerByte:  0.75,
		ApplyFixed:     60 * time.Nanosecond,
		ApplyPerByte:   0.97,

		VerifySDBMPerByte: 0.15,

		// Table V constants.
		KUPKexecFixed:        3 * time.Second,
		KUPCheckpointPerByte: 2,
		KpatchStopMachine:    1500 * time.Microsecond,
		KpatchPerByte:        5,
		KARMAFixed:           2 * time.Microsecond,
		KARMAPerByte:         1,
	}
}

// Linear computes fixed + n*perByte.
func Linear(fixed time.Duration, perByte Rate, n int) time.Duration {
	return fixed + time.Duration(float64(n)*float64(perByte))
}
