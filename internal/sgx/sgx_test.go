package sgx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"kshot/internal/mem"
)

const (
	epcBase = 0x800_0000
	epcSize = 64 * PageSize
)

func newTestPlatform(t *testing.T) (*mem.Physical, *Platform) {
	t.Helper()
	phys := mem.New(256 << 20)
	p, err := NewPlatform(phys, epcBase, epcSize)
	if err != nil {
		t.Fatal(err)
	}
	return phys, p
}

// counterProg is a minimal enclave program keeping a counter in EPC.
type counterProg struct {
	initErr error
}

func (p *counterProg) Identity() string { return "counter-enclave v1" }

func (p *counterProg) Init(env *Env) error {
	if p.initErr != nil {
		return p.initErr
	}
	return env.Write(0, make([]byte, 8))
}

func (p *counterProg) ECall(env *Env, fn int, args []byte) ([]byte, error) {
	switch fn {
	case 1: // increment by args[0]
		var buf [8]byte
		if err := env.Read(0, buf[:]); err != nil {
			return nil, err
		}
		v := binary.LittleEndian.Uint64(buf[:]) + uint64(args[0])
		binary.LittleEndian.PutUint64(buf[:], v)
		if err := env.Write(0, buf[:]); err != nil {
			return nil, err
		}
		return buf[:], nil
	case 2: // out-of-bounds probe
		return nil, env.Write(env.Size(), []byte{1})
	default:
		return nil, fmt.Errorf("no such ecall %d", fn)
	}
}

func TestEnclaveLifecycle(t *testing.T) {
	_, p := newTestPlatform(t)
	e, err := p.Load(&counterProg{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.ECall(1, []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(out) != 5 {
		t.Errorf("counter = %d, want 5", binary.LittleEndian.Uint64(out))
	}
	out, err = e.ECall(1, []byte{3})
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(out) != 8 {
		t.Errorf("counter = %d, want 8 (state not persisted in EPC)", binary.LittleEndian.Uint64(out))
	}
	e.Destroy()
	if _, err := e.ECall(1, []byte{1}); !errors.Is(err, ErrDestroyed) {
		t.Errorf("ECall after destroy = %v", err)
	}
	e.Destroy() // idempotent
}

func TestEPCUnreachableFromOtherPrivileges(t *testing.T) {
	phys, p := newTestPlatform(t)
	e, err := p.Load(&counterProg{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall(1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for _, priv := range []mem.Priv{mem.PrivUser, mem.PrivKernel, mem.PrivSMM} {
		if err := phys.Read(priv, e.Base(), buf); err == nil {
			t.Errorf("%v read of EPC succeeded", priv)
		}
		if err := phys.Write(priv, e.Base(), buf); err == nil {
			t.Errorf("%v write of EPC succeeded", priv)
		}
	}
	// Enclave privilege works (that is how the enclave itself runs).
	if err := phys.Read(mem.PrivEnclave, e.Base(), buf); err != nil {
		t.Errorf("enclave read failed: %v", err)
	}
	if binary.LittleEndian.Uint64(buf) != 9 {
		t.Errorf("EPC content = %d, want 9", binary.LittleEndian.Uint64(buf))
	}
}

func TestEnvBoundsChecked(t *testing.T) {
	_, p := newTestPlatform(t)
	e, err := p.Load(&counterProg{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall(2, nil); err == nil {
		t.Error("out-of-enclave EPC write succeeded")
	}
}

func TestMeasurementStableAndDistinct(t *testing.T) {
	_, p := newTestPlatform(t)
	e1, err := p.Load(&counterProg{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p.Load(&counterProg{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Measurement() != e2.Measurement() {
		t.Error("same program, different measurements")
	}
	if e1.Measurement() != Measure(&counterProg{}) {
		t.Error("Measure() disagrees with loaded measurement")
	}
	other := &otherProg{}
	e3, err := p.Load(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Measurement() == e1.Measurement() {
		t.Error("different programs, same measurement")
	}
}

type otherProg struct{}

func (o *otherProg) Identity() string                        { return "other v1" }
func (o *otherProg) Init(*Env) error                         { return nil }
func (o *otherProg) ECall(*Env, int, []byte) ([]byte, error) { return nil, nil }

func TestEPCExhaustionAndReuse(t *testing.T) {
	_, p := newTestPlatform(t)
	e, err := p.Load(&otherProg{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(&otherProg{}, 1); !errors.Is(err, ErrNoEPC) {
		t.Fatalf("overcommit = %v, want ErrNoEPC", err)
	}
	e.Destroy()
	if _, err := p.Load(&otherProg{}, 64); err != nil {
		t.Errorf("reload after destroy failed: %v", err)
	}
}

func TestDestroyScrubsPages(t *testing.T) {
	phys, p := newTestPlatform(t)
	e, err := p.Load(&counterProg{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall(1, []byte{7}); err != nil {
		t.Fatal(err)
	}
	base := e.Base()
	e.Destroy()
	buf := make([]byte, 8)
	if err := phys.Read(mem.PrivEnclave, base, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Errorf("EPC not scrubbed: % x", buf)
	}
}

func TestInitFailureUnwindsPages(t *testing.T) {
	_, p := newTestPlatform(t)
	if _, err := p.Load(&counterProg{initErr: errors.New("nope")}, 64); err == nil {
		t.Fatal("init failure not propagated")
	}
	// All pages must have been freed.
	if _, err := p.Load(&otherProg{}, 64); err != nil {
		t.Errorf("pages leaked after failed init: %v", err)
	}
}

func TestLoadValidation(t *testing.T) {
	_, p := newTestPlatform(t)
	if _, err := p.Load(&otherProg{}, 0); err == nil {
		t.Error("zero-page enclave accepted")
	}
	phys := mem.New(1 << 20)
	if _, err := NewPlatform(phys, 1, PageSize); err == nil {
		t.Error("unaligned EPC base accepted")
	}
	if _, err := NewPlatform(phys, 0, 100); err == nil {
		t.Error("unaligned EPC size accepted")
	}
}

func TestECallArgsCopied(t *testing.T) {
	_, p := newTestPlatform(t)
	e, err := p.Load(&echoProg{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	args := []byte{1, 2, 3}
	out, err := e.ECall(0, args)
	if err != nil {
		t.Fatal(err)
	}
	args[0] = 99 // caller mutation must not affect the enclave's copy
	if out[0] != 1 {
		t.Error("enclave saw caller mutation")
	}
}

type echoProg struct{ saved []byte }

func (e *echoProg) Identity() string { return "echo" }
func (e *echoProg) Init(*Env) error  { return nil }
func (e *echoProg) ECall(_ *Env, _ int, args []byte) ([]byte, error) {
	e.saved = args
	return args, nil
}
