// Package sgx simulates the Intel SGX surface KShot depends on: an
// Enclave Page Cache whose pages no non-enclave privilege can touch,
// enclave lifecycle (create, load, measure, destroy), a measurement-
// based identity used for attestation by the remote patch server, and
// the ECALL boundary through which the untrusted helper application
// invokes enclave functionality.
//
// Enclave program bodies are Go code standing in for compiled enclave
// binaries, but all persistent enclave state lives in EPC pages
// accessed at enclave privilege on the shared physical memory — a
// compromised kernel reading or writing those addresses faults exactly
// as the EPC access controls would make it fault on hardware.
package sgx

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"kshot/internal/faultinject"
	"kshot/internal/mem"
	"kshot/internal/obs"
)

// RegionEPC is the mapped EPC region name.
const RegionEPC = "sgx.epc"

// PageSize is the EPC allocation granule.
const PageSize = 4096

// Errors.
var (
	// ErrNoEPC is returned when enclave creation exhausts EPC pages.
	ErrNoEPC = errors.New("sgx: out of EPC pages")

	// ErrDestroyed is returned for calls into a destroyed enclave.
	ErrDestroyed = errors.New("sgx: enclave destroyed")
)

// Measurement is the enclave identity hash (MRENCLAVE analogue).
type Measurement [sha256.Size]byte

// Program is the code loaded into an enclave. Identity is the
// measured content (source identity + version); Init runs at load
// time inside the enclave; ECall serves enclave entry calls.
type Program interface {
	// Identity returns the measured identity of the enclave binary.
	Identity() string

	// Init is invoked once when the enclave is loaded.
	Init(env *Env) error

	// ECall dispatches an enclave call. args and the result cross the
	// trust boundary by value, like marshalled ECALL buffers.
	ECall(env *Env, fn int, args []byte) ([]byte, error)
}

// Platform manages the EPC and running enclaves on one machine.
type Platform struct {
	phys *mem.Physical
	base uint64
	size uint64

	mu     sync.Mutex
	nextID uint64
	// freePages is a simple page bitmap; enclaves are small and few.
	used []bool
	fi   *faultinject.Set
	obs  *obs.Hooks
}

// NewPlatform maps an EPC of the given size at base. EPC pages are
// accessible only at enclave privilege — not even SMM reads them on
// real hardware, and we preserve that.
func NewPlatform(phys *mem.Physical, base, size uint64) (*Platform, error) {
	if size == 0 || size%PageSize != 0 || base%PageSize != 0 {
		return nil, fmt.Errorf("sgx: EPC base/size must be page aligned (base %#x size %#x)", base, size)
	}
	if _, err := phys.Map(RegionEPC, base, size, mem.Perms{Enclave: mem.PermRW}); err != nil {
		return nil, fmt.Errorf("sgx: %w", err)
	}
	return &Platform{
		phys: phys,
		base: base,
		size: size,
		used: make([]bool, size/PageSize),
	}, nil
}

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted at the ECALL boundary of every enclave on
// this platform.
func (p *Platform) SetFaultInjector(fi *faultinject.Set) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fi = fi
}

func (p *Platform) injector() *faultinject.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fi
}

// SetObserver installs (or, with nil, removes) the observability hooks
// counting ECALL crossings and enclave losses on this platform.
func (p *Platform) SetObserver(ob *obs.Hooks) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = ob
}

func (p *Platform) observer() *obs.Hooks {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.obs
}

// Load creates an enclave with npages EPC pages, loads prog, computes
// its measurement, and runs Init inside.
func (p *Platform) Load(prog Program, npages int) (*Enclave, error) {
	if npages <= 0 {
		return nil, fmt.Errorf("sgx: enclave needs at least one page")
	}
	base, err := p.allocPages(npages)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	p.mu.Unlock()

	e := &Enclave{
		plat:        p,
		id:          id,
		prog:        prog,
		base:        base,
		size:        uint64(npages) * PageSize,
		measurement: Measure(prog),
	}
	// Zero the pages (EADD of zeroed pages).
	zero := make([]byte, PageSize)
	for off := uint64(0); off < e.size; off += PageSize {
		if err := p.phys.Write(mem.PrivEnclave, base+off, zero); err != nil {
			e.Destroy()
			return nil, fmt.Errorf("sgx: zeroing EPC: %w", err)
		}
	}
	if err := prog.Init(e.env()); err != nil {
		e.Destroy()
		return nil, fmt.Errorf("sgx: enclave init: %w", err)
	}
	return e, nil
}

// Measure computes the measurement a program would load with, without
// loading it. The remote patch server uses this to know the expected
// identity of a genuine KShot preparation enclave.
func Measure(prog Program) Measurement {
	return MeasureIdentity(prog.Identity())
}

// MeasureIdentity computes the measurement for a program identity
// string, letting a remote verifier derive the expected measurement
// without instantiating the program.
func MeasureIdentity(identity string) Measurement {
	return sha256.Sum256([]byte("sgx-enclave-v1\x00" + identity))
}

func (p *Platform) allocPages(n int) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	run := 0
	for i := range p.used {
		if p.used[i] {
			run = 0
			continue
		}
		run++
		if run == n {
			start := i - n + 1
			for j := start; j <= i; j++ {
				p.used[j] = true
			}
			return p.base + uint64(start)*PageSize, nil
		}
	}
	return 0, ErrNoEPC
}

func (p *Platform) freePages(base uint64, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := (base - p.base) / PageSize
	for i := uint64(0); i < size/PageSize; i++ {
		p.used[start+i] = false
	}
}

// Enclave is one loaded enclave instance.
type Enclave struct {
	plat *Platform
	id   uint64
	prog Program
	base uint64
	size uint64

	measurement Measurement

	mu        sync.Mutex
	destroyed bool
}

// Measurement returns the enclave's identity hash.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Base returns the enclave's EPC base address (useful in tests that
// verify the kernel cannot read it).
func (e *Enclave) Base() uint64 { return e.base }

// Size returns the enclave's EPC size in bytes.
func (e *Enclave) Size() uint64 { return e.size }

// ECall enters the enclave. The args buffer is copied before crossing
// the boundary so the untrusted caller cannot mutate it mid-call.
func (e *Enclave) ECall(fn int, args []byte) ([]byte, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, ErrDestroyed
	}
	e.mu.Unlock()
	ob := e.plat.observer()
	ob.Count(obs.CtrECalls, 1)
	// Fault injection at the trust boundary: an enclave loss (EPC
	// power event, enclave crash) surfaces as ErrDestroyed so callers
	// exercise their reload path; an ECALL failure is a plain error.
	fi := e.plat.injector()
	if fi.Fire(faultinject.SGXDestroy) {
		e.Destroy()
		ob.Count(obs.CtrEnclaveLost, 1)
		return nil, ErrDestroyed
	}
	if err := fi.Error(faultinject.SGXECallFail); err != nil {
		return nil, fmt.Errorf("sgx: ecall %d: %w", fn, err)
	}
	in := append([]byte(nil), args...)
	return e.prog.ECall(e.env(), fn, in)
}

// Destroy removes the enclave and frees its EPC pages. Page contents
// are scrubbed first, as EREMOVE guarantees.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return
	}
	e.destroyed = true
	zero := make([]byte, PageSize)
	for off := uint64(0); off < e.size; off += PageSize {
		// Scrub failures cannot happen on a mapped EPC; ignore by
		// construction (the region exists for the platform lifetime).
		_ = e.plat.phys.Write(mem.PrivEnclave, e.base+off, zero)
	}
	e.plat.freePages(e.base, e.size)
}

func (e *Enclave) env() *Env { return &Env{enclave: e} }

// Env is the in-enclave view handed to Program methods: EPC access at
// enclave privilege, bounds-checked to this enclave's own pages.
type Env struct {
	enclave *Enclave
}

// Size returns the enclave's EPC byte length.
func (v *Env) Size() uint64 { return v.enclave.size }

func (v *Env) check(off uint64, n int) error {
	if off+uint64(n) > v.enclave.size || off+uint64(n) < off {
		return fmt.Errorf("sgx: EPC access [%#x,+%d) outside enclave of %d bytes", off, n, v.enclave.size)
	}
	return nil
}

// Read copies enclave memory at offset off into dst.
func (v *Env) Read(off uint64, dst []byte) error {
	if err := v.check(off, len(dst)); err != nil {
		return err
	}
	return v.enclave.plat.phys.Read(mem.PrivEnclave, v.enclave.base+off, dst)
}

// Write stores src at enclave offset off.
func (v *Env) Write(off uint64, src []byte) error {
	if err := v.check(off, len(src)); err != nil {
		return err
	}
	return v.enclave.plat.phys.Write(mem.PrivEnclave, v.enclave.base+off, src)
}
