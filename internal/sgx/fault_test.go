package sgx

import (
	"errors"
	"testing"

	"kshot/internal/faultinject"
	"kshot/internal/mem"
)

// An injected ECALL failure is a plain error that unwraps to the
// injection sentinel; the enclave survives and serves the next call.
func TestInjectedECallFailure(t *testing.T) {
	_, p := newTestPlatform(t)
	e, err := p.Load(&counterProg{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.SetFaultInjector(faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.SGXECallFail, Call: 0},
	)))

	if _, err := e.ECall(1, []byte{1}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("ECall error = %v, want injected failure", err)
	}
	out, err := e.ECall(1, []byte{1})
	if err != nil {
		t.Fatalf("ECall after injected failure: %v", err)
	}
	if out[0] != 1 {
		t.Fatalf("counter = %d, want 1 (failed call must not run)", out[0])
	}
}

// An injected destroy at the ECALL boundary scrubs the enclave and
// surfaces ErrDestroyed — the exact failure callers' reload paths must
// absorb.
func TestInjectedEnclaveDestroy(t *testing.T) {
	phys, p := newTestPlatform(t)
	e, err := p.Load(&counterProg{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall(1, []byte{5}); err != nil {
		t.Fatal(err)
	}

	p.SetFaultInjector(faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.SGXDestroy, Call: 1},
	)))
	if _, err := e.ECall(1, []byte{1}); err != nil { // call 0: untouched
		t.Fatal(err)
	}
	if _, err := e.ECall(1, []byte{1}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("ECall error = %v, want ErrDestroyed", err)
	}
	// Destruction is permanent for this instance and the EPC was
	// scrubbed (EREMOVE semantics are preserved by the injection).
	if _, err := e.ECall(1, []byte{1}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("destroyed enclave answered: %v", err)
	}
	buf := make([]byte, 8)
	if err := phys.Read(mem.PrivEnclave, e.Base(), buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("EPC not scrubbed after injected destroy: %v", buf)
		}
	}

	// A fresh load on the same platform works: the pages were freed.
	e2, err := p.Load(&counterProg{}, 2)
	if err != nil {
		t.Fatalf("reload after injected destroy: %v", err)
	}
	if out, err := e2.ECall(1, []byte{3}); err != nil || out[0] != 3 {
		t.Fatalf("reloaded enclave: out=%v err=%v", out, err)
	}
}
