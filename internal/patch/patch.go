// Package patch implements KShot's binary patch pipeline (§V-A, §V-B):
// building a function-level binary patch from pre-/post-patch kernel
// images (the remote server's job), the patch package wire format of
// Figure 3, and the preprocessing that turns a built patch into
// placement-final executable bytes plus trampoline instructions (the
// SGX enclave's job).
//
// The package is pure logic — no enclave, SMM, or network dependencies
// — so the pipeline is testable end-to-end in isolation; the sgxprep
// and smmpatch packages wrap it in their respective trusted
// environments.
package patch

import "fmt"

// Type classifies a patched function per the paper's three categories.
type Type int

// Patch types (§V-A).
const (
	// Type1 functions are directly changed, present in the binary, and
	// involve no inlining.
	Type1 Type = 1
	// Type2 functions are implicated through compiler inlining: the
	// changed code was expanded into them.
	Type2 Type = 2
	// Type3 functions additionally depend on changed global or shared
	// variables.
	Type3 Type = 3
)

// String returns "1", "2" or "3".
func (t Type) String() string { return fmt.Sprintf("%d", int(t)) }

// Op is the operation field of a patch package.
type Op uint8

// Package operations (§V-C: "we check the operation field in the
// package").
const (
	OpPatch Op = iota + 1
	OpRollback
)

// RelocKind classifies a payload fix-up.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocBranch patches a rel32 branch displacement (call/jmp/jcc to
	// a symbol outside the patched function).
	RelocBranch RelocKind = iota + 1
	// RelocAbs64 patches a 64-bit absolute address operand
	// (movi @sym, loadg, storeg).
	RelocAbs64
)

// Reloc records one deferred fix-up in a function payload: the operand
// at Offset must be rewritten once the payload's final address and the
// target symbol's address in the *running* kernel are known.
type Reloc struct {
	Offset int // byte offset of the operand field within Payload
	Kind   RelocKind
	Sym    string // target symbol name
	Addend int64  // byte offset from the symbol's base address
}

// FuncPatch is one function's binary patch as built by the server.
type FuncPatch struct {
	// Name is the target function's symbol name.
	Name string

	// Type is the paper's classification for this function.
	Type Type

	// New marks a function added by the patch: it has no counterpart
	// in the running kernel (TAddr resolution is skipped) and is
	// reached only through relocated calls from other payloads.
	New bool

	// Traced reports whether the function carries the 5-byte ftrace
	// prologue in the running (pre-patch) kernel, so the trampoline
	// must be placed after it (§V-A "Supporting Kernel Tracing").
	Traced bool

	// Payload is the post-patch function body (prologue stripped for
	// replacement functions), with post-image operand values still in
	// place; Relocs lists the operands needing rewriting.
	Payload []byte

	// Relocs are the deferred fix-ups into Payload.
	Relocs []Reloc
}

// GlobalEdit describes a data-segment change the patch requires
// (§V-C step two: "check if any global variable needs to be changed in
// the kernel data or bss segment").
type GlobalEdit struct {
	// Name is the variable's symbol name.
	Name string

	// New marks a variable that does not exist in the running kernel
	// and must be allocated by the preprocessing step.
	New bool

	// Size is the variable's byte size.
	Size uint64

	// Init is the initial contents to install (nil to leave the
	// current value in place for existing variables, zeros for new).
	Init []byte
}

// BinaryPatch is the server's product: everything needed to patch one
// kernel, still independent of the target's memory placement.
type BinaryPatch struct {
	// ID identifies the fix (e.g. the CVE number).
	ID string

	// KernelVersion is the version the patch was built for; applying
	// it to another build is rejected.
	KernelVersion string

	// Funcs are the function patches, in deterministic order.
	Funcs []FuncPatch

	// Globals are the data-segment edits.
	Globals []GlobalEdit

	// Warnings records analysis findings that make the patch risky
	// (e.g. a size-changed shared variable — the storage-layout case
	// the paper's §V-A flags as failure-prone).
	Warnings []string
}

// PayloadBytes returns the total payload size across all functions —
// the "patch size" axis of the paper's Tables II/III.
func (bp *BinaryPatch) PayloadBytes() int {
	n := 0
	for _, f := range bp.Funcs {
		n += len(f.Payload)
	}
	return n
}

// Types returns the distinct patch types present, ascending — the
// "Type" column of Table I.
func (bp *BinaryPatch) Types() []Type {
	seen := map[Type]bool{}
	for _, f := range bp.Funcs {
		seen[f.Type] = true
	}
	var out []Type
	for _, t := range []Type{Type1, Type2, Type3} {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}

// FuncNames returns the patched function names in order — the
// "Affected Functions" column of Table I.
func (bp *BinaryPatch) FuncNames() []string {
	out := make([]string, len(bp.Funcs))
	for i, f := range bp.Funcs {
		out[i] = f.Name
	}
	return out
}
