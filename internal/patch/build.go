package patch

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"kshot/internal/binmatch"
	"kshot/internal/callgraph"
	"kshot/internal/isa"
)

// ImagePair couples a built kernel image with its source unit — what
// the patch server has for both the pre-patch and post-patch builds.
type ImagePair struct {
	Img  *isa.Image
	Unit *isa.Unit
}

// Build produces a BinaryPatch from the pre- and post-patch kernel
// builds, combining the paper's three analyses:
//
//   - source-level diff: which functions' source changed;
//   - call-graph comparison + inlining worklist (§V-A): which binary
//     functions those changes implicate through inlining;
//   - binary signature matching (iBinHunt/FIBER-style): which binary
//     functions actually differ, catching anything the source-level
//     view misses.
//
// The union of implicated and binary-changed functions is patched;
// functions added by the fix ship as new payloads.
func Build(id, kernelVersion string, pre, post ImagePair) (*BinaryPatch, error) {
	bp := &BinaryPatch{ID: id, KernelVersion: kernelVersion}

	// Source-level diff.
	srcChanged := diffSourceFuncs(pre.Unit, post.Unit)

	// Inlining closure over the post build (payloads come from post).
	srcGraph := callgraph.FromSource(post.Unit)
	binGraph, err := callgraph.FromBinary(post.Img)
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", id, err)
	}
	implicated := callgraph.Implicated(srcChanged, srcGraph, binGraph)
	implicatedSet := toSet(implicated)
	srcChangedSet := toSet(srcChanged)

	// Binary-level diff.
	bd, err := binmatch.DiffImages(pre.Img, post.Img)
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", id, err)
	}

	// Global variable analysis (Type 3).
	editedGlobals, warnings := diffGlobals(pre, post)
	bp.Globals = editedGlobals
	bp.Warnings = warnings
	touchedGlobals := map[string]bool{}
	for _, g := range editedGlobals {
		touchedGlobals[g.Name] = true
	}

	// Assemble the target set: implicated ∪ binary-changed, plus new
	// functions the patched code calls.
	targets := map[string]bool{}
	for name := range implicatedSet {
		targets[name] = true
	}
	for _, name := range bd.Changed {
		targets[name] = true
	}
	newFuncs := map[string]bool{}
	for _, name := range bd.Added {
		// A function absent from the running kernel ships as a new
		// payload even if the analyses also flagged it as changed.
		newFuncs[name] = true
		delete(targets, name)
	}

	names := make([]string, 0, len(targets)+len(newFuncs))
	for n := range targets {
		names = append(names, n)
	}
	for n := range newFuncs {
		names = append(names, n)
	}
	// Deterministic order: by post-image address, so mem_X placement
	// follows the paper's cumulative layout.
	sort.Slice(names, func(i, j int) bool {
		a, _ := post.Img.Symbols.Lookup(names[i])
		b, _ := post.Img.Symbols.Lookup(names[j])
		return a.Addr < b.Addr
	})

	for _, name := range names {
		isNew := newFuncs[name]
		fp, err := buildFuncPatch(pre, post, name, isNew)
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", id, err)
		}
		fp.Type = classify(name, isNew, srcChangedSet, implicatedSet, touchedGlobals, post)
		bp.Funcs = append(bp.Funcs, *fp)
	}
	if len(bp.Funcs) == 0 && len(bp.Globals) == 0 {
		// Distinguish a removal-only diff from a truly identical pair:
		// live patching can add and replace code, but it cannot take
		// symbols away from a running kernel, so a fix that only
		// deletes functions is unservable — and saying "identical"
		// about it sends the author debugging the wrong thing.
		if len(bd.Removed) > 0 {
			return nil, fmt.Errorf("build %s: patch only removes functions (%s); function removal is not live-patchable",
				id, strings.Join(bd.Removed, ", "))
		}
		return nil, fmt.Errorf("build %s: pre and post builds are identical", id)
	}
	return bp, nil
}

// classify assigns the paper's Type 1/2/3 label to one function.
func classify(name string, isNew bool, srcChanged, implicated, touchedGlobals map[string]bool, post ImagePair) Type {
	// Type 3 wins when the function touches an edited global.
	if referencesGlobals(post, name, touchedGlobals) {
		return Type3
	}
	// Directly changed at source level (or brand new): Type 1.
	if srcChanged[name] || isNew {
		return Type1
	}
	// Otherwise the function is only implicated through folded-in
	// changes: Type 2.
	return Type2
}

func referencesGlobals(post ImagePair, fn string, globals map[string]bool) bool {
	if len(globals) == 0 {
		return false
	}
	code, err := post.Img.FuncBytes(fn)
	if err != nil {
		return false
	}
	sym, _ := post.Img.Symbols.Lookup(fn)
	decoded, err := isa.Disassemble(code, sym.Addr)
	if err != nil {
		return false
	}
	for _, d := range decoded {
		switch d.Inst.Op {
		case isa.OpMovi, isa.OpLoadg, isa.OpStrg:
			if s, ok := post.Img.Symbols.At(uint64(d.Inst.Imm)); ok && globals[s.Name] {
				return true
			}
		}
	}
	return false
}

// buildFuncPatch extracts one function's payload from the post image
// and computes its relocation table.
func buildFuncPatch(pre, post ImagePair, name string, isNew bool) (*FuncPatch, error) {
	sym, ok := post.Img.Symbols.Lookup(name)
	if !ok || sym.Kind != isa.SymFunc {
		return nil, fmt.Errorf("func %s: not in post image", name)
	}
	code, err := post.Img.FuncBytes(name)
	if err != nil {
		return nil, err
	}

	fp := &FuncPatch{Name: name, New: isNew}

	// Replacement functions reached via trampoline: the original entry
	// (including its ftrace prologue) stays in place, so strip the
	// payload's own prologue. New functions keep theirs (relocated).
	skip := 0
	if !isNew {
		preSym, ok := pre.Img.Symbols.Lookup(name)
		if !ok || preSym.Kind != isa.SymFunc {
			return nil, fmt.Errorf("func %s: not in running kernel", name)
		}
		fp.Traced = preSym.Traced
		if sym.Traced {
			skip = isa.FtracePrologueLen
		}
	}

	payloadStart := sym.Addr + uint64(skip)
	payload := append([]byte(nil), code[skip:]...)
	fp.Payload = payload

	decoded, err := isa.Disassemble(payload, payloadStart)
	if err != nil {
		return nil, fmt.Errorf("func %s: %w", name, err)
	}
	payloadEnd := sym.Addr + sym.Size
	for _, d := range decoded {
		off := int(d.Addr - payloadStart)
		switch {
		case d.Inst.Op.IsBranch():
			tgt, _ := d.BranchTarget()
			if tgt >= payloadStart && tgt < payloadEnd {
				// Internal branch: relative displacement survives the
				// move to mem_X unchanged.
				continue
			}
			if tgt >= sym.Addr && tgt < payloadStart {
				return nil, fmt.Errorf("func %s: branch at %#x targets the ftrace prologue", name, d.Addr)
			}
			tsym, ok := post.Img.Symbols.At(tgt)
			if !ok {
				return nil, fmt.Errorf("func %s: branch at %#x targets unmapped %#x", name, d.Addr, tgt)
			}
			fp.Relocs = append(fp.Relocs, Reloc{
				Offset: off + 1, // rel32 field follows the opcode byte
				Kind:   RelocBranch,
				Sym:    tsym.Name,
				Addend: int64(tgt - tsym.Addr),
			})
		case d.Inst.Op == isa.OpMovi, d.Inst.Op == isa.OpLoadg, d.Inst.Op == isa.OpStrg:
			if tsym, ok := post.Img.Symbols.At(uint64(d.Inst.Imm)); ok {
				fp.Relocs = append(fp.Relocs, Reloc{
					Offset: off + 2, // imm64 follows opcode + register byte
					Kind:   RelocAbs64,
					Sym:    tsym.Name,
					Addend: int64(uint64(d.Inst.Imm) - tsym.Addr),
				})
			}
		}
	}
	return fp, nil
}

// diffSourceFuncs returns the names of functions whose source text
// differs between the two units (including functions only in post).
func diffSourceFuncs(pre, post *isa.Unit) []string {
	preKeys := map[string]string{}
	for _, f := range pre.Funcs {
		preKeys[f.Name] = srcFuncKey(f)
	}
	var out []string
	for _, f := range post.Funcs {
		if k, ok := preKeys[f.Name]; !ok || k != srcFuncKey(f) {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// srcFuncKey serializes a source function deterministically.
func srcFuncKey(f *isa.SrcFunc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v:%v\n", f.Inline, f.NoTrace)
	for _, it := range f.Items {
		if it.Label != "" {
			fmt.Fprintf(&b, "%s:\n", it.Label)
			continue
		}
		i := it.Inst
		fmt.Fprintf(&b, "%d %d/%d/%d/%s %d/%d/%d/%s\n",
			i.Op, i.A.Kind, i.A.Reg, i.A.Imm, i.A.Sym,
			i.B.Kind, i.B.Reg, i.B.Imm, i.B.Sym)
	}
	return b.String()
}

// diffGlobals compares the source-level globals of the two builds.
func diffGlobals(pre, post ImagePair) ([]GlobalEdit, []string) {
	var edits []GlobalEdit
	var warnings []string
	for _, g := range post.Unit.Globals {
		old := pre.Unit.Global(g.Name)
		switch {
		case old == nil:
			edits = append(edits, GlobalEdit{
				Name: g.Name,
				New:  true,
				Size: g.Size,
				Init: append([]byte(nil), g.Init...),
			})
		case old.Size != g.Size:
			// Storage layout change: the paper's hard case. Reallocate
			// and warn — unpatched readers of the old storage keep the
			// old location.
			edits = append(edits, GlobalEdit{
				Name: g.Name,
				New:  true,
				Size: g.Size,
				Init: append([]byte(nil), g.Init...),
			})
			warnings = append(warnings, fmt.Sprintf(
				"global %q resized %d -> %d bytes: reallocated; unpatched readers keep the old storage",
				g.Name, old.Size, g.Size))
		case !bytes.Equal(old.Init, g.Init):
			edits = append(edits, GlobalEdit{
				Name: g.Name,
				Size: g.Size,
				Init: append([]byte(nil), g.Init...),
			})
		}
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Name < edits[j].Name })
	return edits, warnings
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
