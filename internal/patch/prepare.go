package patch

import (
	"encoding/binary"
	"fmt"

	"kshot/internal/isa"
)

// Placement describes the target machine's reserved memory, which the
// patch server registered with the SMM handler in advance (§V-A: "the
// configurations of reserved memory ... are all saved in SMM code in
// advance").
type Placement struct {
	// MemXBase/MemXSize is the execute-only area receiving patched
	// function text.
	MemXBase uint64
	MemXSize uint64

	// DataAllocBase/Size is where new global variables introduced by a
	// patch are allocated (a kernel-readable/writable slice of the
	// reserved area).
	DataAllocBase uint64
	DataAllocSize uint64
}

// funcAlign is the placement alignment of patched functions in mem_X.
const funcAlign = 16

// PreparedFunc is one function patch after preprocessing: final bytes
// at a final address, plus the trampoline to install.
type PreparedFunc struct {
	Seq    uint16
	Name   string
	Type   Type
	New    bool
	Traced bool

	// TAddr is the entry of the vulnerable function in the running
	// kernel (0 for new functions — no trampoline).
	TAddr uint64

	// TSize is the vulnerable function's size in the running kernel
	// (0 for new functions). The SMM handler's optional activeness
	// check uses it to decide whether any vCPU is executing inside
	// the function being replaced.
	TSize uint64

	// PAddr is the function's final location in mem_X.
	PAddr uint64

	// Payload is the placement-final, fully relocated machine code.
	Payload []byte

	// TrampolineAt/TrampolineBytes is the 5-byte jmp to write at the
	// target (after the ftrace prologue when Traced).
	TrampolineAt    uint64
	TrampolineBytes []byte
}

// PreparedGlobal is a resolved data-segment edit.
type PreparedGlobal struct {
	Name string
	Addr uint64
	Init []byte // bytes to write (nil: leave as-is)
}

// Prepared is the preprocessed patch, ready for packaging and
// transport to the SMM handler.
type Prepared struct {
	ID            string
	KernelVersion string
	Funcs         []PreparedFunc
	Globals       []PreparedGlobal

	// MemXUsed is the number of mem_X bytes consumed.
	MemXUsed uint64
	// DataUsed is the number of data-allocation bytes consumed.
	DataUsed uint64
}

// Prepare performs the SGX-side preprocessing of §V-B: it assigns each
// payload its mem_X address following the paper's cumulative layout
// (p_i.paddr = p_{i-1}.paddr + p_{i-1}.size, aligned), allocates
// storage for new globals, resolves every relocation against the
// running kernel's symbol table, and computes the trampoline
// instructions (jmp rel32 = p.paddr − p.taddr − 5, placed after the
// 5-byte trace sequence for traced functions).
//
// kernelSyms is the *running* kernel's symbol table; memXCursor and
// dataCursor say how much of each area earlier patches already
// consumed.
func Prepare(bp *BinaryPatch, kernelSyms *isa.SymTab, place Placement, memXCursor, dataCursor uint64) (*Prepared, error) {
	p := &Prepared{ID: bp.ID, KernelVersion: bp.KernelVersion}

	// Allocate new globals and install value edits.
	newAddrs := make(map[string]uint64)
	dataOff := dataCursor
	for _, g := range bp.Globals {
		if g.New {
			dataOff = alignUp(dataOff, 8)
			if dataOff+g.Size > place.DataAllocSize {
				return nil, fmt.Errorf("prepare %s: data allocation area exhausted", bp.ID)
			}
			addr := place.DataAllocBase + dataOff
			newAddrs[g.Name] = addr
			init := g.Init
			if init == nil {
				init = make([]byte, g.Size)
			}
			p.Globals = append(p.Globals, PreparedGlobal{Name: g.Name, Addr: addr, Init: init})
			dataOff += g.Size
			continue
		}
		sym, ok := kernelSyms.Lookup(g.Name)
		if !ok || sym.Kind != isa.SymObject {
			return nil, fmt.Errorf("prepare %s: global %q not in running kernel", bp.ID, g.Name)
		}
		p.Globals = append(p.Globals, PreparedGlobal{Name: g.Name, Addr: sym.Addr, Init: g.Init})
	}
	p.DataUsed = dataOff - dataCursor

	// First pass: assign mem_X addresses (new functions must be
	// resolvable as branch targets of other payloads).
	paddrs := make(map[string]uint64, len(bp.Funcs))
	cursor := memXCursor
	for _, f := range bp.Funcs {
		cursor = alignUp(cursor, funcAlign)
		if cursor+uint64(len(f.Payload)) > place.MemXSize {
			return nil, fmt.Errorf("prepare %s: mem_X exhausted (%d of %d bytes used)",
				bp.ID, cursor, place.MemXSize)
		}
		paddrs[f.Name] = place.MemXBase + cursor
		cursor += uint64(len(f.Payload))
	}
	p.MemXUsed = cursor - memXCursor

	resolve := func(name string) (uint64, bool) {
		if a, ok := newAddrs[name]; ok {
			return a, true
		}
		if s, ok := kernelSyms.Lookup(name); ok {
			return s.Addr, true
		}
		if a, ok := paddrs[name]; ok {
			// New functions and fellow payloads resolve to mem_X.
			return a, true
		}
		return 0, false
	}

	// Second pass: relocate payloads and compute trampolines.
	for i, f := range bp.Funcs {
		paddr := paddrs[f.Name]
		payload := append([]byte(nil), f.Payload...)
		for _, r := range f.Relocs {
			base, ok := resolve(r.Sym)
			if !ok {
				return nil, fmt.Errorf("prepare %s/%s: unresolved symbol %q", bp.ID, f.Name, r.Sym)
			}
			target := uint64(int64(base) + r.Addend)
			switch r.Kind {
			case RelocBranch:
				if r.Offset < 1 || r.Offset+4 > len(payload) {
					return nil, fmt.Errorf("prepare %s/%s: branch reloc offset %d out of payload", bp.ID, f.Name, r.Offset)
				}
				instAddr := paddr + uint64(r.Offset) - 1
				rel, err := isa.JmpRel32To(instAddr, target)
				if err != nil {
					return nil, fmt.Errorf("prepare %s/%s: %w", bp.ID, f.Name, err)
				}
				binary.LittleEndian.PutUint32(payload[r.Offset:], uint32(rel))
			case RelocAbs64:
				if r.Offset < 0 || r.Offset+8 > len(payload) {
					return nil, fmt.Errorf("prepare %s/%s: abs reloc offset %d out of payload", bp.ID, f.Name, r.Offset)
				}
				binary.LittleEndian.PutUint64(payload[r.Offset:], target)
			default:
				return nil, fmt.Errorf("prepare %s/%s: unknown reloc kind %d", bp.ID, f.Name, r.Kind)
			}
		}

		pf := PreparedFunc{
			Seq:     uint16(i),
			Name:    f.Name,
			Type:    f.Type,
			New:     f.New,
			Traced:  f.Traced,
			PAddr:   paddr,
			Payload: payload,
		}
		if !f.New {
			tsym, ok := kernelSyms.Lookup(f.Name)
			if !ok || tsym.Kind != isa.SymFunc {
				return nil, fmt.Errorf("prepare %s: target %q not in running kernel", bp.ID, f.Name)
			}
			pf.TAddr = tsym.Addr
			pf.TSize = tsym.Size
			skip := uint64(0)
			if f.Traced {
				skip = isa.FtracePrologueLen
			}
			pf.TrampolineAt = tsym.Addr + skip
			if tsym.Size < skip+isa.FtracePrologueLen {
				return nil, fmt.Errorf("prepare %s: target %q too small for trampoline (%d bytes)",
					bp.ID, f.Name, tsym.Size)
			}
			rel, err := isa.JmpRel32To(pf.TrampolineAt, paddr)
			if err != nil {
				return nil, fmt.Errorf("prepare %s/%s: trampoline: %w", bp.ID, f.Name, err)
			}
			pf.TrampolineBytes = isa.EncodeJmpRel32(rel)
		}
		p.Funcs = append(p.Funcs, pf)
	}
	return p, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
