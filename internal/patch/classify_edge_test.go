package patch

import (
	"strings"
	"testing"

	"kshot/internal/kernel"
)

// buildEdgePair builds pre/post kernels from two versions of an extra
// subsystem file, under the default (ftrace+inline) configuration.
func buildEdgePair(t *testing.T, preSrc, postSrc string) (ImagePair, ImagePair) {
	t.Helper()
	st, err := kernel.BaseTree("3.14")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("drivers/edge.asm", preSrc)
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatalf("pre build: %v", err)
	}
	post := st.Clone()
	if err := post.Apply(kernel.SourcePatch{ID: "EDGE", Files: map[string]string{"drivers/edge.asm": postSrc}}); err != nil {
		t.Fatal(err)
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		t.Fatalf("post build: %v", err)
	}
	return ImagePair{preImg, preUnit}, ImagePair{postImg, postUnit}
}

// TestClassifyEdgeCases drives the classifier and its neighbors
// through the shapes the generated corpus found easiest to get wrong.
func TestClassifyEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		pre, post string
		check     func(t *testing.T, bp *BinaryPatch, err error, pre ImagePair)
	}{
		{
			// A patch target so small the 5-byte trampoline cannot fit:
			// Build succeeds (the payload is fine), Prepare must refuse.
			name: "tiny function cannot host trampoline",
			pre: `
.func edge_stub notrace        ; single ret: 1 byte, < 5-byte jmp
    ret
.endfunc
`,
			post: `
.func edge_stub notrace
    movi r0, 14
    ret
.endfunc
`,
			check: func(t *testing.T, bp *BinaryPatch, err error, pre ImagePair) {
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if got := bp.FuncNames(); len(got) != 1 || got[0] != "edge_stub" {
					t.Fatalf("FuncNames = %v", got)
				}
				if bp.Funcs[0].Type != Type1 {
					t.Fatalf("Type = %s, want 1", bp.Funcs[0].Type)
				}
				_, perr := Prepare(bp, pre.Img.Symbols, defaultPlacement(), 0, 0)
				if perr == nil || !strings.Contains(perr.Error(), "too small for trampoline") {
					t.Fatalf("Prepare = %v, want too-small-for-trampoline error", perr)
				}
			},
		},
		{
			// The fix deletes the function outright. That is not
			// live-patchable, and the error must say so instead of
			// claiming the builds are identical.
			name: "function disappearing post-patch",
			pre: `
.func edge_gone
    movi r0, 7
    ret
.endfunc
`,
			post: `
; edge_gone removed by the fix
`,
			check: func(t *testing.T, bp *BinaryPatch, err error, pre ImagePair) {
				if err == nil {
					t.Fatal("removal-only patch built successfully")
				}
				if !strings.Contains(err.Error(), "only removes functions") ||
					!strings.Contains(err.Error(), "edge_gone") {
					t.Fatalf("error %q does not identify the removal", err)
				}
				if strings.Contains(err.Error(), "identical") {
					t.Fatalf("removal-only patch still misreported as identical: %v", err)
				}
			},
		},
		{
			// Removal riding along with a real change: the surviving
			// change is patched, the removed symbol is silently dropped
			// (its callers were rewritten by the same fix).
			name: "removal alongside a real change",
			pre: `
.func edge_old_helper
    movi r0, 1
    ret
.endfunc

.func edge_user
    call edge_old_helper
    ret
.endfunc
`,
			post: `
.func edge_user
    movi r0, 1
    ret
.endfunc
`,
			check: func(t *testing.T, bp *BinaryPatch, err error, pre ImagePair) {
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if got := bp.FuncNames(); len(got) != 1 || got[0] != "edge_user" {
					t.Fatalf("FuncNames = %v, want only edge_user", got)
				}
			},
		},
		{
			// Type 2 + Type 3 combined in one function: an inline
			// validator's fix references a global the patch adds. The
			// call sites are implicated through inlining (Type 2
			// condition) AND reference the edited global (Type 3
			// condition) — Type 3 must win, per the classifier's
			// precedence.
			name: "inlined fix referencing new global classifies Type 3",
			pre: `
.func edge_val inline          ; (len) -> 1 valid
    movi r0, 1
    ret
.endfunc

.func edge_site                ; (len) -> verdict
    call edge_val
    ret
.endfunc
`,
			post: `
.data edge_cap 08 00 00 00 00 00 00 00

.func edge_val inline          ; (len) -> 1 if len < cap
    movi r0, 0
    loadg r2, edge_cap
    cmp r1, r2
    jge .end
    movi r0, 1
.end:
    ret
.endfunc

.func edge_site
    call edge_val
    ret
.endfunc
`,
			check: func(t *testing.T, bp *BinaryPatch, err error, pre ImagePair) {
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if got := bp.FuncNames(); len(got) != 1 || got[0] != "edge_site" {
					t.Fatalf("FuncNames = %v, want only the call site (validator is inlined away)", got)
				}
				if bp.Funcs[0].Type != Type3 {
					t.Fatalf("site classified Type %s; global reference must outrank inline implication (Type 3)",
						bp.Funcs[0].Type)
				}
				var newGlobals []string
				for _, g := range bp.Globals {
					if g.New {
						newGlobals = append(newGlobals, g.Name)
					}
				}
				if len(newGlobals) != 1 || newGlobals[0] != "edge_cap" {
					t.Fatalf("new globals = %v, want [edge_cap]", newGlobals)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pre, post := buildEdgePair(t, tc.pre, tc.post)
			bp, err := Build("EDGE", "3.14", pre, post)
			tc.check(t, bp, err, pre)
		})
	}
}
