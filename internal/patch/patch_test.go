package patch

import (
	"strings"
	"testing"

	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/mem"
)

// vulnFile is a subsystem with a Type 1 bug: missing bounds check.
const vulnFile = `
; drivers/widget.asm
.global widget_limit 8

.func widget_ioctl                ; (cmd) -> cmd*2, should clamp at 100
    mov r0, r1
    add r0, r1
    ret
.endfunc

.func widget_helper inline
    addi r0, 3
    ret
.endfunc

.func widget_query               ; calls the inline helper
    mov r0, r1
    call widget_helper
    ret
.endfunc
`

// vulnFilePatched fixes widget_ioctl (Type 1 change).
const vulnFilePatched = `
; drivers/widget.asm (patched)
.global widget_limit 8

.func widget_ioctl
    mov r0, r1
    add r0, r1
    cmpi r0, 100
    jle .ok
    movi r0, 100
.ok:
    ret
.endfunc

.func widget_helper inline
    addi r0, 3
    ret
.endfunc

.func widget_query
    mov r0, r1
    call widget_helper
    ret
.endfunc
`

// vulnFileInlinePatched changes only the inline helper (Type 2).
const vulnFileInlinePatched = `
; drivers/widget.asm (inline helper patched)
.global widget_limit 8

.func widget_ioctl
    mov r0, r1
    add r0, r1
    ret
.endfunc

.func widget_helper inline
    addi r0, 4
    ret
.endfunc

.func widget_query
    mov r0, r1
    call widget_helper
    ret
.endfunc
`

// vulnFileGlobalPatched adds a global consulted by widget_ioctl
// (Type 3) and a brand-new function.
const vulnFileGlobalPatched = `
; drivers/widget.asm (global added)
.global widget_limit 8
.data   widget_cap   64 00 00 00 00 00 00 00

.func widget_ioctl
    mov r0, r1
    add r0, r1
    loadg r2, widget_cap
    cmp r0, r2
    jle .ok
    call widget_clamp
.ok:
    ret
.endfunc

.func widget_clamp
    loadg r0, widget_cap
    ret
.endfunc

.func widget_helper inline
    addi r0, 3
    ret
.endfunc

.func widget_query
    mov r0, r1
    call widget_helper
    ret
.endfunc
`

// buildPair builds pre and post kernels sharing the 3.14 base tree.
func buildPair(t *testing.T, postWidget string) (ImagePair, ImagePair, *kernel.SourceTree) {
	t.Helper()
	st, err := kernel.BaseTree("3.14")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("drivers/widget.asm", vulnFile)
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	post := st.Clone()
	if err := post.Apply(kernel.SourcePatch{ID: "TEST", Files: map[string]string{"drivers/widget.asm": postWidget}}); err != nil {
		t.Fatal(err)
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ImagePair{preImg, preUnit}, ImagePair{postImg, postUnit}, st
}

func defaultPlacement() Placement {
	return Placement{
		MemXBase:      kernel.ReservedBase + mem.MemRWSize + mem.MemWSize,
		MemXSize:      mem.MemXSize,
		DataAllocBase: kernel.ReservedBase + 4096,
		DataAllocSize: mem.MemRWSize - 4096,
	}
}

func TestBuildType1(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFilePatched)
	bp, err := Build("CVE-TEST-1", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.FuncNames(); len(got) != 1 || got[0] != "widget_ioctl" {
		t.Fatalf("patched funcs = %v, want [widget_ioctl]", got)
	}
	if bp.Funcs[0].Type != Type1 {
		t.Errorf("type = %v, want 1", bp.Funcs[0].Type)
	}
	if bp.Funcs[0].New || !bp.Funcs[0].Traced {
		t.Errorf("flags wrong: %+v", bp.Funcs[0])
	}
	if len(bp.Globals) != 0 {
		t.Errorf("unexpected global edits: %v", bp.Globals)
	}
	if ts := bp.Types(); len(ts) != 1 || ts[0] != Type1 {
		t.Errorf("Types() = %v", ts)
	}
}

func TestBuildType2InlineImplication(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFileInlinePatched)
	bp, err := Build("CVE-TEST-2", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	// widget_helper has no binary symbol; its caller widget_query is
	// implicated.
	if got := bp.FuncNames(); len(got) != 1 || got[0] != "widget_query" {
		t.Fatalf("patched funcs = %v, want [widget_query]", got)
	}
	if bp.Funcs[0].Type != Type2 {
		t.Errorf("type = %v, want 2", bp.Funcs[0].Type)
	}
}

func TestBuildType3GlobalsAndNewFunc(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFileGlobalPatched)
	bp, err := Build("CVE-TEST-3", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	names := bp.FuncNames()
	if len(names) != 2 {
		t.Fatalf("patched funcs = %v, want ioctl + clamp", names)
	}
	var ioctl, clamp *FuncPatch
	for i := range bp.Funcs {
		switch bp.Funcs[i].Name {
		case "widget_ioctl":
			ioctl = &bp.Funcs[i]
		case "widget_clamp":
			clamp = &bp.Funcs[i]
		}
	}
	if ioctl == nil || clamp == nil {
		t.Fatalf("missing expected funcs: %v", names)
	}
	if ioctl.Type != Type3 {
		t.Errorf("ioctl type = %v, want 3", ioctl.Type)
	}
	if !clamp.New {
		t.Error("widget_clamp not marked new")
	}
	if len(bp.Globals) != 1 || bp.Globals[0].Name != "widget_cap" || !bp.Globals[0].New {
		t.Errorf("globals = %+v", bp.Globals)
	}
	if bp.PayloadBytes() == 0 {
		t.Error("zero payload bytes")
	}
}

func TestBuildIdenticalRejected(t *testing.T) {
	pre, _, _ := buildPair(t, vulnFilePatched)
	if _, err := Build("X", "3.14", pre, pre); err == nil {
		t.Error("identical builds produced a patch")
	}
}

func TestBuildWarnsOnResizedGlobal(t *testing.T) {
	resized := strings.Replace(vulnFile, ".global widget_limit 8", ".global widget_limit 16", 1)
	pre, post, _ := buildPair(t, resized)
	bp, err := Build("CVE-RESIZE", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Warnings) == 0 {
		t.Error("no warning for resized global")
	}
	if len(bp.Globals) != 1 || !bp.Globals[0].New || bp.Globals[0].Size != 16 {
		t.Errorf("resized global edit = %+v", bp.Globals)
	}
}

func TestPrepareTrampolineArithmetic(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFilePatched)
	bp, err := Build("CVE-TEST-1", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	place := defaultPlacement()
	p, err := Prepare(bp, pre.Img.Symbols, place, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs[0]
	tsym, _ := pre.Img.Symbols.Lookup("widget_ioctl")
	if f.TAddr != tsym.Addr {
		t.Errorf("taddr = %#x, want %#x", f.TAddr, tsym.Addr)
	}
	// Traced target: trampoline after the 5-byte prologue.
	if f.TrampolineAt != tsym.Addr+isa.FtracePrologueLen {
		t.Errorf("trampoline at %#x, want %#x", f.TrampolineAt, tsym.Addr+5)
	}
	if f.PAddr < place.MemXBase || f.PAddr%16 != 0 {
		t.Errorf("paddr %#x misplaced", f.PAddr)
	}
	// Decode the trampoline and verify it lands exactly on paddr —
	// the paper's p.paddr − p.taddr − 5 arithmetic.
	inst, n, err := isa.Decode(f.TrampolineBytes)
	if err != nil || n != 5 || inst.Op != isa.OpJmp {
		t.Fatalf("trampoline decode: %v %v", inst, err)
	}
	if got := uint64(int64(f.TrampolineAt) + 5 + inst.Imm); got != f.PAddr {
		t.Errorf("trampoline target %#x, want %#x", got, f.PAddr)
	}
	if p.MemXUsed == 0 {
		t.Error("MemXUsed = 0")
	}
}

func TestPrepareErrors(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFilePatched)
	bp, err := Build("CVE-TEST-1", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	place := defaultPlacement()
	// mem_X exhausted.
	if _, err := Prepare(bp, pre.Img.Symbols, place, place.MemXSize-4, 0); err == nil {
		t.Error("exhausted mem_X accepted")
	}
	// Unresolvable target function (wrong kernel's symbols).
	empty, _ := isa.NewSymTab(nil)
	if _, err := Prepare(bp, empty, place, 0, 0); err == nil {
		t.Error("unknown target function accepted")
	}
}

// applyPrepared writes a prepared patch into machine memory the way
// the SMM handler will (payloads to mem_X, globals, trampolines).
func applyPrepared(t *testing.T, m *machine.Machine, p *Prepared) {
	t.Helper()
	for _, g := range p.Globals {
		if g.Init != nil {
			if err := m.Mem.Write(mem.PrivSMM, g.Addr, g.Init); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, f := range p.Funcs {
		if err := m.Mem.Write(mem.PrivSMM, f.PAddr, f.Payload); err != nil {
			t.Fatal(err)
		}
		if f.TAddr != 0 {
			if err := m.Mem.Write(mem.PrivSMM, f.TrampolineAt, f.TrampolineBytes); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEndToEndExecution is the pipeline's ground truth: build the
// patch, prepare it, apply it to a live machine, and check the kernel
// now computes post-patch results — including relocated calls back
// into unpatched kernel code and new functions in mem_X.
func TestEndToEndExecution(t *testing.T) {
	cases := []struct {
		name    string
		postSrc string
		fn      string
		arg     uint64
		pre     uint64
		post    uint64
	}{
		{"type1 clamp", vulnFilePatched, "widget_ioctl", 400, 800, 100},
		{"type2 helper", vulnFileInlinePatched, "widget_query", 10, 13, 14},
		{"type3 global", vulnFileGlobalPatched, "widget_ioctl", 400, 800, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pre, post, st := buildPair(t, tc.postSrc)
			m, err := machine.New(machine.Config{NumVCPUs: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Stop()
			k, err := kernel.Boot(m, pre.Img, st.Config())
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.Call(0, tc.fn, tc.arg)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.pre {
				t.Fatalf("pre-patch %s(%d) = %d, want %d", tc.fn, tc.arg, got, tc.pre)
			}

			bp, err := Build("CVE-E2E", "3.14", pre, post)
			if err != nil {
				t.Fatal(err)
			}
			place := defaultPlacement()
			p, err := Prepare(bp, pre.Img.Symbols, place, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			applyPrepared(t, m, p)

			got, err = k.Call(0, tc.fn, tc.arg)
			if err != nil {
				t.Fatalf("post-patch call: %v", err)
			}
			if got != tc.post {
				t.Errorf("post-patch %s(%d) = %d, want %d", tc.fn, tc.arg, got, tc.post)
			}
			// Unrelated kernel functionality is untouched.
			if v, err := k.Call(0, "sys_compute", 10, 4); err != nil || v != (10+4)*(10-4)+10 {
				t.Errorf("sys_compute broken after patch: %d, %v", v, err)
			}
		})
	}
}

func TestFormatRoundTrip(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFileGlobalPatched)
	bp, err := Build("CVE-FMT", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(bp, pre.Img.Symbols, defaultPlacement(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Marshal(p, OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.ID != "CVE-FMT" || pkg.KernelVersion != "3.14" || pkg.Op != OpPatch {
		t.Errorf("header = %+v", pkg)
	}
	if len(pkg.Funcs) != len(p.Funcs) || len(pkg.Globals) != len(p.Globals) {
		t.Fatalf("counts: %d/%d funcs, %d/%d globals",
			len(pkg.Funcs), len(p.Funcs), len(pkg.Globals), len(p.Globals))
	}
	for i := range pkg.Funcs {
		a, b := pkg.Funcs[i], p.Funcs[i]
		if a.Name != b.Name || a.TAddr != b.TAddr || a.PAddr != b.PAddr ||
			a.Type != b.Type || a.New != b.New || a.Traced != b.Traced ||
			string(a.Payload) != string(b.Payload) ||
			string(a.TrampolineBytes) != string(b.TrampolineBytes) {
			t.Errorf("func %d mismatch:\n%+v\n%+v", i, a, b)
		}
		// Declared payload digest verifies.
		sum, err := kcrypto.Sum(pkg.HashAlg, a.Payload)
		if err != nil || sum != pkg.FuncHashes[i] {
			t.Errorf("func %d digest mismatch", i)
		}
	}
}

func TestFormatDetectsCorruption(t *testing.T) {
	pre, post, _ := buildPair(t, vulnFilePatched)
	bp, err := Build("CVE-COR", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(bp, pre.Img.Symbols, defaultPlacement(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Marshal(p, OpPatch, kcrypto.HashSHA256)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte corruption must be caught by the package
	// digest (or fail structural validation).
	for i := 0; i < len(wire); i += 13 {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x40
		if _, err := Unmarshal(mut); err == nil {
			t.Errorf("corruption at byte %d undetected", i)
		}
	}
	// Truncations must be caught.
	for _, n := range []int{0, 1, 10, len(wire) / 2, len(wire) - 1} {
		if _, err := Unmarshal(wire[:n]); err == nil {
			t.Errorf("truncation to %d bytes undetected", n)
		}
	}
}

func TestMarshalRollback(t *testing.T) {
	wire, err := MarshalRollback("CVE-RB", "3.14")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Op != OpRollback || pkg.ID != "CVE-RB" || len(pkg.Funcs) != 0 {
		t.Errorf("rollback pkg = %+v", pkg)
	}
}

func TestPrepareSequentialPlacement(t *testing.T) {
	// Two patches prepared back to back must not overlap in mem_X.
	pre, post, _ := buildPair(t, vulnFilePatched)
	bp, err := Build("CVE-A", "3.14", pre, post)
	if err != nil {
		t.Fatal(err)
	}
	place := defaultPlacement()
	p1, err := Prepare(bp, pre.Img.Symbols, place, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prepare(bp, pre.Img.Symbols, place, p1.MemXUsed, p1.DataUsed)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Funcs[0].PAddr < p1.Funcs[0].PAddr+uint64(len(p1.Funcs[0].Payload)) {
		t.Errorf("second patch overlaps first: %#x vs %#x+%d",
			p2.Funcs[0].PAddr, p1.Funcs[0].PAddr, len(p1.Funcs[0].Payload))
	}
}
