package patch

// Property-based pipeline test: generate random kernel modules with
// arbitrary (forward-branching) control flow, calls, and global
// accesses; mutate a random subset of functions; run the full pipeline
// (Build → Prepare → apply to a live machine) and require that every
// function of the live-patched kernel behaves *identically* to a
// kernel rebuilt from the post source — same return values, same
// global side effects — over randomized inputs. This exercises
// trampoline arithmetic, relocation fix-ups (internal branches,
// cross-function calls, absolute global references), ftrace skipping,
// and mem_X placement against inputs no hand-written test would
// enumerate.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kshot/internal/isa"
	"kshot/internal/kernel"
	"kshot/internal/machine"
)

// genFunc emits one random function. Branches only jump forward and
// calls only target higher-numbered functions, so execution always
// terminates.
func genFunc(r *rand.Rand, name string, callees, globals []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".func %s\n", name)
	// Scratch init from the arguments.
	fmt.Fprintf(&b, "    mov r6, r1\n    mov r7, r2\n    movi r8, %d\n", r.Intn(100))

	n := 4 + r.Intn(10)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ".L%d:\n", i)
		switch r.Intn(8) {
		case 0:
			fmt.Fprintf(&b, "    addi r6, %d\n", r.Intn(50)+1)
		case 1:
			fmt.Fprintf(&b, "    add r6, r7\n")
		case 2:
			fmt.Fprintf(&b, "    mul r7, r8\n")
		case 3:
			fmt.Fprintf(&b, "    sub r8, r6\n")
		case 4:
			if len(globals) > 0 {
				g := globals[r.Intn(len(globals))]
				if r.Intn(2) == 0 {
					fmt.Fprintf(&b, "    loadg r9, %s\n    add r6, r9\n", g)
				} else {
					fmt.Fprintf(&b, "    storeg %s, r6\n", g)
				}
			} else {
				fmt.Fprintf(&b, "    addi r7, 3\n")
			}
		case 5:
			if len(callees) > 0 {
				c := callees[r.Intn(len(callees))]
				// Preserve scratch across the call per our convention
				// (callee clobbers everything): stash r6 on the stack.
				fmt.Fprintf(&b, "    push r6\n    push r7\n    push r8\n")
				fmt.Fprintf(&b, "    mov r1, r6\n    mov r2, r8\n    call %s\n", c)
				fmt.Fprintf(&b, "    pop r8\n    pop r7\n    pop r6\n    add r6, r0\n")
			} else {
				fmt.Fprintf(&b, "    xor r9, r9\n")
			}
		case 6:
			// Forward conditional branch to a later label.
			tgt := i + 1 + r.Intn(n-i)
			ops := []string{"jz", "jnz", "jl", "jg", "jle", "jge"}
			fmt.Fprintf(&b, "    cmpi r6, %d\n    %s .L%d\n", r.Intn(200), ops[r.Intn(len(ops))], tgt)
		default:
			fmt.Fprintf(&b, "    shl r7, r8\n    movi r8, %d\n", r.Intn(7)+1)
		}
	}
	fmt.Fprintf(&b, ".L%d:\n", n)
	fmt.Fprintf(&b, "    mov r0, r6\n    add r0, r7\n    ret\n.endfunc\n")
	return b.String()
}

// genModule builds a random subsystem file of nf functions and ng
// globals; function i may call functions j > i.
func genModule(r *rand.Rand, nf, ng int) (string, []string, []string) {
	var globals []string
	var b strings.Builder
	for i := 0; i < ng; i++ {
		g := fmt.Sprintf("pp_g%d", i)
		globals = append(globals, g)
		fmt.Fprintf(&b, ".global %s 8\n", g)
	}
	names := make([]string, nf)
	for i := range names {
		names[i] = fmt.Sprintf("pp_f%d", i)
	}
	// Emit in reverse order so callees exist textually (order doesn't
	// matter for linking, but keeps the call DAG obvious).
	for i := nf - 1; i >= 0; i-- {
		b.WriteString(genFunc(r, names[i], names[i+1:], globals))
	}
	return b.String(), names, globals
}

// buildKernelWith builds a 4.4 kernel with the module file injected.
func buildKernelWith(t *testing.T, moduleSrc string) (*isa.Image, *isa.Unit, *kernel.SourceTree) {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("pp/module.asm", moduleSrc)
	img, unit, err := st.Build()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, moduleSrc)
	}
	return img, unit, st
}

// bootFor boots a machine around an image.
func bootFor(t *testing.T, img *isa.Image, st *kernel.SourceTree) *kernel.Kernel {
	t.Helper()
	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := kernel.Boot(m, img, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestQuickPipelineEquivalence is the pipeline's golden property.
func TestQuickPipelineEquivalence(t *testing.T) {
	rounds := 25
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round%02d", round), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + round)))
			nf := 2 + r.Intn(4)
			ng := 1 + r.Intn(3)
			preSrc, names, globals := genModule(r, nf, ng)

			// Mutate 1..nf functions by regenerating them with a
			// different seed (arbitrary behaviour change).
			r2 := rand.New(rand.NewSource(int64(9000 + round)))
			postSrc := preSrc
			nMut := 1 + r.Intn(nf)
			for i := 0; i < nMut; i++ {
				idx := r.Intn(nf)
				oldFn := extractFunc(preSrc, names[idx])
				newFn := genFunc(r2, names[idx], names[idx+1:], globals)
				postSrc = strings.Replace(postSrc, oldFn, newFn, 1)
			}
			if postSrc == preSrc {
				t.Skip("mutation produced identical source")
			}

			preImg, preUnit, st := buildKernelWith(t, preSrc)
			postImg, postUnit, _ := buildKernelWith(t, postSrc)

			bp, err := Build("PP", "4.4", ImagePair{preImg, preUnit}, ImagePair{postImg, postUnit})
			if err != nil {
				t.Fatalf("build patch: %v", err)
			}
			place := defaultPlacement()
			prep, err := Prepare(bp, preImg.Symbols, place, 0, 0)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}

			patched := bootFor(t, preImg, st)
			applyPrepared(t, patched.M, prep)
			reference := bootFor(t, postImg, st)

			// Probe every function with random inputs; return value
			// and all global side effects must agree.
			for probe := 0; probe < 6; probe++ {
				a1 := uint64(r.Intn(1000))
				a2 := uint64(r.Intn(1000))
				for gi, g := range globals {
					seed := uint64(gi*13 + probe*7)
					if err := patched.WriteGlobal(g, seed); err != nil {
						t.Fatal(err)
					}
					if err := reference.WriteGlobal(g, seed); err != nil {
						t.Fatal(err)
					}
				}
				for _, fn := range names {
					got, err1 := patched.Call(0, fn, a1, a2)
					want, err2 := reference.Call(0, fn, a1, a2)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s(%d,%d): patched err=%v reference err=%v", fn, a1, a2, err1, err2)
					}
					if err1 != nil {
						continue // both faulted identically (e.g. step limit)
					}
					if got != want {
						t.Fatalf("%s(%d,%d) = %d on patched kernel, %d on rebuilt kernel\npre:\n%s\npost:\n%s",
							fn, a1, a2, got, want, preSrc, postSrc)
					}
				}
				for _, g := range globals {
					gv, _ := patched.ReadGlobal(g)
					wv, _ := reference.ReadGlobal(g)
					if gv != wv {
						t.Fatalf("global %s diverged: %d vs %d", g, gv, wv)
					}
				}
			}
		})
	}
}

// extractFunc returns the full ".func name ... .endfunc" block.
func extractFunc(src, name string) string {
	start := strings.Index(src, ".func "+name+"\n")
	if start < 0 {
		panic("function not found: " + name)
	}
	end := strings.Index(src[start:], ".endfunc\n")
	return src[start : start+end+len(".endfunc\n")]
}
