package patch

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"kshot/internal/kcrypto"
)

// Wire format of the patch package passed from the SGX enclave to the
// SMM handler through mem_W (Figure 3 of the paper). Each function
// entry carries {sequence, opt, type, flags, taddr, paddr, size, hash,
// payload, trampoline}; the package ends with a whole-package digest
// so header tampering is as detectable as payload tampering.

// Wire format constants.
const (
	wireMagic   = "KSPK"
	wireVersion = 1

	// FuncHeaderSize is the fixed per-function header length. The
	// paper reports 42 bytes of header per function; ours is larger
	// because we carry a full 32-byte digest and 64-bit addresses.
	FuncHeaderSize = 2 + 1 + 1 + 8 + 8 + 8 + 8 + 4 + kcrypto.DigestSize
)

// Flag bits in the function header.
const (
	flagNew uint8 = 1 << iota
	flagTraced
)

// Package is the decoded wire package as the SMM handler sees it.
type Package struct {
	Op            Op
	HashAlg       kcrypto.HashAlg
	ID            string
	KernelVersion string
	Funcs         []PreparedFunc
	Globals       []PreparedGlobal

	// FuncHashes holds the header-declared payload digest of each
	// function, to be compared against a recomputation (§V-C step
	// one).
	FuncHashes [][kcrypto.DigestSize]byte
}

// Marshal encodes a prepared patch into the wire format.
func Marshal(p *Prepared, op Op, alg kcrypto.HashAlg) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(wireMagic)
	b.WriteByte(wireVersion)
	b.WriteByte(byte(op))
	b.WriteByte(byte(alg))
	if err := writeStr8(&b, p.ID); err != nil {
		return nil, err
	}
	if err := writeStr8(&b, p.KernelVersion); err != nil {
		return nil, err
	}
	writeU16(&b, uint16(len(p.Funcs)))
	writeU16(&b, uint16(len(p.Globals)))

	for _, f := range p.Funcs {
		if len(f.Payload) > 1<<31 {
			return nil, fmt.Errorf("marshal %s: payload too large", f.Name)
		}
		sum, err := kcrypto.Sum(alg, f.Payload)
		if err != nil {
			return nil, err
		}
		writeU16(&b, f.Seq)
		b.WriteByte(byte(f.Type))
		var flags uint8
		if f.New {
			flags |= flagNew
		}
		if f.Traced {
			flags |= flagTraced
		}
		b.WriteByte(flags)
		writeU64(&b, f.TAddr)
		writeU64(&b, f.TSize)
		writeU64(&b, f.PAddr)
		writeU64(&b, f.TrampolineAt)
		writeU32(&b, uint32(len(f.Payload)))
		b.Write(sum[:])
		b.Write(f.Payload)
		if f.TAddr != 0 {
			if len(f.TrampolineBytes) != 5 {
				return nil, fmt.Errorf("marshal %s: trampoline must be 5 bytes", f.Name)
			}
			b.Write(f.TrampolineBytes)
		}
		// Name travels after the fixed header (for journaling and
		// diagnostics on the SMM side).
		if err := writeStr8(&b, f.Name); err != nil {
			return nil, err
		}
	}

	for _, g := range p.Globals {
		if err := writeStr8(&b, g.Name); err != nil {
			return nil, err
		}
		writeU64(&b, g.Addr)
		writeU32(&b, uint32(len(g.Init)))
		b.Write(g.Init)
	}

	// Whole-package digest (always SHA-256: header integrity is not
	// the ablation's subject).
	sum, err := kcrypto.Sum(kcrypto.HashSHA256, b.Bytes())
	if err != nil {
		return nil, err
	}
	b.Write(sum[:])
	return b.Bytes(), nil
}

// Unmarshal decodes and structurally validates a wire package,
// including the whole-package digest. Per-function payload digests are
// surfaced for the caller to verify (the SMM handler recomputes them
// as its own integrity step).
func Unmarshal(data []byte) (*Package, error) {
	if len(data) < len(wireMagic)+3+kcrypto.DigestSize {
		return nil, fmt.Errorf("package: truncated (%d bytes)", len(data))
	}
	body := data[:len(data)-kcrypto.DigestSize]
	var declared [kcrypto.DigestSize]byte
	copy(declared[:], data[len(body):])
	sum, err := kcrypto.Sum(kcrypto.HashSHA256, body)
	if err != nil {
		return nil, err
	}
	if sum != declared {
		return nil, fmt.Errorf("package: whole-package digest mismatch")
	}

	r := &reader{buf: body}
	if string(r.bytes(4)) != wireMagic {
		return nil, fmt.Errorf("package: bad magic")
	}
	if v := r.u8(); v != wireVersion {
		return nil, fmt.Errorf("package: unsupported version %d", v)
	}
	pkg := &Package{}
	pkg.Op = Op(r.u8())
	if pkg.Op != OpPatch && pkg.Op != OpRollback {
		return nil, fmt.Errorf("package: bad op %d", pkg.Op)
	}
	pkg.HashAlg = kcrypto.HashAlg(r.u8())
	pkg.ID = r.str8()
	pkg.KernelVersion = r.str8()
	nf := int(r.u16())
	ng := int(r.u16())

	for i := 0; i < nf; i++ {
		var f PreparedFunc
		f.Seq = r.u16()
		f.Type = Type(r.u8())
		flags := r.u8()
		f.New = flags&flagNew != 0
		f.Traced = flags&flagTraced != 0
		f.TAddr = r.u64()
		f.TSize = r.u64()
		f.PAddr = r.u64()
		f.TrampolineAt = r.u64()
		size := int(r.u32())
		var h [kcrypto.DigestSize]byte
		copy(h[:], r.bytes(kcrypto.DigestSize))
		f.Payload = append([]byte(nil), r.bytes(size)...)
		if f.TAddr != 0 {
			f.TrampolineBytes = append([]byte(nil), r.bytes(5)...)
		}
		f.Name = r.str8()
		if r.err != nil {
			return nil, fmt.Errorf("package: func %d: %w", i, r.err)
		}
		pkg.Funcs = append(pkg.Funcs, f)
		pkg.FuncHashes = append(pkg.FuncHashes, h)
	}
	for i := 0; i < ng; i++ {
		var g PreparedGlobal
		g.Name = r.str8()
		g.Addr = r.u64()
		n := int(r.u32())
		g.Init = append([]byte(nil), r.bytes(n)...)
		if r.err != nil {
			return nil, fmt.Errorf("package: global %d: %w", i, r.err)
		}
		pkg.Globals = append(pkg.Globals, g)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("package: %d trailing bytes", len(r.buf)-r.pos)
	}
	return pkg, nil
}

// MarshalRollback encodes a rollback command package for the given
// patch ID.
func MarshalRollback(id, kernelVersion string) ([]byte, error) {
	p := &Prepared{ID: id, KernelVersion: kernelVersion}
	return Marshal(p, OpRollback, kcrypto.HashSHA256)
}

func writeStr8(b *bytes.Buffer, s string) error {
	if len(s) > 255 {
		return fmt.Errorf("string field too long (%d bytes)", len(s))
	}
	b.WriteByte(uint8(len(s)))
	b.WriteString(s)
	return nil
}

func writeU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}

func writeU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

// reader is a bounds-checked sequential decoder.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("truncated at offset %d (want %d bytes)", r.pos, n)
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str8() string {
	n := int(r.u8())
	return string(r.bytes(n))
}
