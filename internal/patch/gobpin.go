package patch

import (
	"encoding/gob"
	"io"
)

// init pins encoding/gob's process-global type IDs for the patch wire
// types. Gob assigns IDs from a global counter in first-encode order,
// so the encoded byte length of a BinaryPatch would otherwise depend
// on which subsystem happened to gob-encode first in the process —
// enough to shift ciphertext sizes, and therefore the virtual transfer
// times derived from them, between otherwise identical runs. Encoding
// one canonical value at init fixes the assignment order for every
// importer.
func init() {
	err := gob.NewEncoder(io.Discard).Encode(&BinaryPatch{
		Funcs:    []FuncPatch{{Relocs: []Reloc{{}}}},
		Globals:  []GlobalEdit{{}},
		Warnings: []string{""},
	})
	if err != nil {
		panic("patch: gob type pin: " + err.Error())
	}
}
