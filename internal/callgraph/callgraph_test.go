package callgraph

import (
	"reflect"
	"testing"

	"kshot/internal/isa"
)

const graphSrc = `
.func leaf_a inline
    addi r0, 1
    ret
.endfunc

.func leaf_b
    movi r0, 2
    ret
.endfunc

.func middle inline
    call leaf_a
    call leaf_b
    ret
.endfunc

.func top1
    call middle
    ret
.endfunc

.func top2
    call middle
    call leaf_b
    ret
.endfunc

.func lonely
    ret
.endfunc
`

func buildGraphs(t *testing.T, inline bool) (*Graph, *Graph) {
	t.Helper()
	u := isa.MustParse(graphSrc)
	src := FromSource(u)
	img, err := isa.Link(u, isa.LinkOptions{TextBase: 0x1000, Inline: inline, Ftrace: true})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := FromBinary(img)
	if err != nil {
		t.Fatal(err)
	}
	return src, bin
}

func TestSourceGraph(t *testing.T) {
	u := isa.MustParse(graphSrc)
	g := FromSource(u)
	if !reflect.DeepEqual(g.Callees("middle"), []string{"leaf_a", "leaf_b"}) {
		t.Errorf("middle callees = %v", g.Callees("middle"))
	}
	if !reflect.DeepEqual(g.Callers("middle"), []string{"top1", "top2"}) {
		t.Errorf("middle callers = %v", g.Callers("middle"))
	}
	if !g.Has("lonely") || len(g.Callees("lonely")) != 0 {
		t.Error("lonely node wrong")
	}
	if g.HasEdge("top1", "leaf_b") {
		t.Error("phantom edge")
	}
}

func TestBinaryGraphNoInline(t *testing.T) {
	src, bin := buildGraphs(t, false)
	// Without inlining, the graphs agree (modulo __fentry__, which is
	// excluded).
	for _, n := range src.Nodes() {
		if !bin.Has(n) {
			t.Errorf("binary missing %s", n)
		}
		if !reflect.DeepEqual(src.Callees(n), bin.Callees(n)) {
			t.Errorf("%s callees: src %v bin %v", n, src.Callees(n), bin.Callees(n))
		}
	}
	if len(DetectInlining(src, bin)) != 0 {
		t.Errorf("inlining detected where none exists: %v", DetectInlining(src, bin))
	}
}

func TestBinaryGraphWithInline(t *testing.T) {
	src, bin := buildGraphs(t, true)
	// middle and leaf_a vanish from the binary.
	if bin.Has("middle") || bin.Has("leaf_a") {
		t.Error("inline functions still present in binary graph")
	}
	// top1's call to leaf_b (via middle's body) is now direct.
	if !bin.HasEdge("top1", "leaf_b") {
		t.Error("top1 lost transitive call to leaf_b")
	}
	edges := DetectInlining(src, bin)
	want := []InlineEdge{
		{"middle", "leaf_a"}, // reported under its source parent
		{"top1", "middle"},
		{"top2", "middle"},
	}
	// middle itself is not in the binary so its own folded edge is not
	// reported; filter expectation accordingly.
	var got []InlineEdge
	for _, e := range edges {
		got = append(got, e)
	}
	want = want[1:]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("inline edges = %v, want %v", got, want)
	}
}

func TestImplicatedDirectChange(t *testing.T) {
	src, bin := buildGraphs(t, true)
	// leaf_b changed: it exists in the binary, and nobody inlines it.
	got := Implicated([]string{"leaf_b"}, src, bin)
	if !reflect.DeepEqual(got, []string{"leaf_b"}) {
		t.Errorf("implicated = %v", got)
	}
}

func TestImplicatedTransitiveInlining(t *testing.T) {
	src, bin := buildGraphs(t, true)
	// leaf_a changed: leaf_a was inlined into middle, middle into
	// top1/top2 — so the functions to patch are top1 and top2.
	got := Implicated([]string{"leaf_a"}, src, bin)
	if !reflect.DeepEqual(got, []string{"top1", "top2"}) {
		t.Errorf("implicated = %v, want [top1 top2]", got)
	}
}

func TestImplicatedMixed(t *testing.T) {
	src, bin := buildGraphs(t, true)
	got := Implicated([]string{"leaf_a", "leaf_b"}, src, bin)
	if !reflect.DeepEqual(got, []string{"leaf_b", "top1", "top2"}) {
		t.Errorf("implicated = %v", got)
	}
	// No changes → nothing implicated.
	if n := Implicated(nil, src, bin); len(n) != 0 {
		t.Errorf("implicated(nil) = %v", n)
	}
}

func TestImplicatedNoInlineBuild(t *testing.T) {
	src, bin := buildGraphs(t, false)
	// Without inlining every change maps to itself only.
	got := Implicated([]string{"leaf_a"}, src, bin)
	if !reflect.DeepEqual(got, []string{"leaf_a"}) {
		t.Errorf("implicated = %v", got)
	}
}

func TestFromBinaryIgnoresFentry(t *testing.T) {
	_, bin := buildGraphs(t, true)
	for _, n := range bin.Nodes() {
		if n == "__fentry__" {
			t.Error("__fentry__ leaked into graph")
		}
		for _, c := range bin.Callees(n) {
			if c == "__fentry__" {
				t.Error("__fentry__ edge leaked")
			}
		}
	}
}

func TestNodesSorted(t *testing.T) {
	src, _ := buildGraphs(t, false)
	nodes := src.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Errorf("nodes not sorted: %v", nodes)
		}
	}
}
