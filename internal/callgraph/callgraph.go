// Package callgraph builds and compares source-level and binary-level
// call graphs of the simulated kernel, reproducing the analysis KShot
// performs with codeviz (source) and IDA Pro (binary) in §V-A.
//
// The difference between the two graphs reveals compiler inlining: an
// edge F→g present in source but absent from the binary (with g
// emitting no standalone symbol, or the call folded away) means g's
// body was spliced into F. Because inlining is transitive, the package
// implements the paper's worklist algorithm: starting from the
// source-changed functions, it iteratively adds callers that inlined
// an implicated function until a fixed point, yielding the set of
// binary functions that must actually be patched.
package callgraph

import (
	"fmt"
	"sort"

	"kshot/internal/isa"
)

// Graph is a directed call graph over function names.
type Graph struct {
	callees map[string][]string
	callers map[string][]string
	nodes   map[string]bool
}

func newGraph() *Graph {
	return &Graph{
		callees: make(map[string][]string),
		callers: make(map[string][]string),
		nodes:   make(map[string]bool),
	}
}

func (g *Graph) addNode(n string) {
	g.nodes[n] = true
}

func (g *Graph) addEdge(from, to string) {
	g.addNode(from)
	g.addNode(to)
	if !contains(g.callees[from], to) {
		g.callees[from] = append(g.callees[from], to)
	}
	if !contains(g.callers[to], from) {
		g.callers[to] = append(g.callers[to], from)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Has reports whether the function appears in the graph.
func (g *Graph) Has(fn string) bool { return g.nodes[fn] }

// HasEdge reports whether from calls to.
func (g *Graph) HasEdge(from, to string) bool { return contains(g.callees[from], to) }

// Callees returns the functions fn calls, in first-seen order.
func (g *Graph) Callees(fn string) []string {
	return append([]string(nil), g.callees[fn]...)
}

// Callers returns the functions that call fn.
func (g *Graph) Callers(fn string) []string {
	return append([]string(nil), g.callers[fn]...)
}

// Nodes returns all function names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FromSource builds the source-level call graph of a translation unit
// (the codeviz analogue): every function is a node, every `call sym`
// in its body an edge.
func FromSource(u *isa.Unit) *Graph {
	g := newGraph()
	for _, f := range u.Funcs {
		g.addNode(f.Name)
		for _, callee := range f.CallTargets() {
			g.addEdge(f.Name, callee)
		}
	}
	return g
}

// FromBinary builds the binary-level call graph of a linked image (the
// IDA analogue): each function symbol is disassembled and its call
// rel32 targets are resolved through the symbol table. The ftrace
// prologue's __fentry__ edge is excluded — it is tracing machinery,
// not a semantic call.
func FromBinary(img *isa.Image) (*Graph, error) {
	g := newGraph()
	for _, sym := range img.Symbols.Funcs() {
		if sym.Name == "__fentry__" {
			continue
		}
		g.addNode(sym.Name)
		code, err := img.FuncBytes(sym.Name)
		if err != nil {
			return nil, fmt.Errorf("callgraph: %w", err)
		}
		decoded, err := isa.Disassemble(code, sym.Addr)
		if err != nil {
			return nil, fmt.Errorf("callgraph %s: %w", sym.Name, err)
		}
		for _, d := range decoded {
			if d.Inst.Op != isa.OpCall {
				continue
			}
			tgt, _ := d.BranchTarget()
			callee, ok := img.Symbols.At(tgt)
			if !ok {
				return nil, fmt.Errorf("callgraph %s: call at %#x targets unmapped %#x", sym.Name, d.Addr, tgt)
			}
			if callee.Name == "__fentry__" {
				continue
			}
			g.addEdge(sym.Name, callee.Name)
		}
	}
	return g, nil
}

// InlineEdge records that Callee's body was inlined into Caller.
type InlineEdge struct {
	Caller string
	Callee string
}

// DetectInlining compares the source and binary graphs and returns the
// edges the compiler folded away. An edge F→g counts as inlined when
// the source has it but the binary function F no longer calls g —
// whether because g emitted no symbol at all, or because this
// particular call site was expanded.
func DetectInlining(src, bin *Graph) []InlineEdge {
	var out []InlineEdge
	for _, caller := range src.Nodes() {
		if !bin.Has(caller) {
			// Caller itself was inlined away; its own call sites are
			// accounted for transitively at its callers.
			continue
		}
		for _, callee := range src.Callees(caller) {
			if !bin.HasEdge(caller, callee) {
				out = append(out, InlineEdge{Caller: caller, Callee: callee})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// Implicated runs the paper's worklist algorithm: given the names of
// source-changed functions, it returns the set of binary functions
// that must be patched, closed over transitive inlining. The result is
// sorted; every returned name exists in the binary graph.
func Implicated(changed []string, src, bin *Graph) []string {
	implicated := make(map[string]bool)
	seen := make(map[string]bool)
	work := append([]string(nil), changed...)

	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true

		if bin.Has(fn) {
			implicated[fn] = true
		}
		// A caller embeds fn's changed body when the compiler folded
		// the call: either fn emits no standalone symbol at all (so
		// every call site was expanded), or the caller exists in the
		// binary but its call edge to fn vanished (partial inlining).
		// A surviving call instruction, by contrast, will reach the
		// patched standalone copy through its trampoline, so it does
		// not implicate the caller.
		for _, caller := range src.Callers(fn) {
			folded := !bin.Has(fn) || (bin.Has(caller) && !bin.HasEdge(caller, fn))
			if folded && !seen[caller] {
				work = append(work, caller)
			}
		}
	}

	out := make([]string, 0, len(implicated))
	for fn := range implicated {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}
