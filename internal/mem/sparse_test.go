package mem

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestMapDuplicateNameRejected(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "ram", 0, 1<<20, Perms{Kernel: PermRW})
	if _, err := m.Map("ram", 2<<20, 1<<20, Perms{Kernel: PermRW}); err == nil {
		t.Fatal("duplicate region name accepted")
	}
	// The failed Map must not have disturbed the original mapping.
	r := m.Region("ram")
	if r == nil || r.Base != 0 {
		t.Fatalf("original region damaged by rejected Map: %+v", r)
	}
	if err := m.Write(PrivKernel, 0x100, []byte{1}); err != nil {
		t.Fatalf("write after rejected Map: %v", err)
	}
	// The name stays usable after an Unmap.
	if err := m.Unmap("ram"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("ram", 2<<20, 1<<20, Perms{Kernel: PermRW}); err != nil {
		t.Fatalf("remap after unmap: %v", err)
	}
}

func TestLazyAllocation(t *testing.T) {
	m := New(1 << 30) // 1 GB simulated; nothing resident
	if got := m.ResidentBytes(); got != 0 {
		t.Fatalf("fresh memory resident = %d", got)
	}
	mustMap(t, m, "ram", 0, 1<<30, Perms{Kernel: PermRW})
	// Reads of never-written memory observe zeros without allocating.
	buf := make([]byte, 4096)
	if err := m.Read(PrivKernel, 512<<20, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
	if got := m.ResidentBytes(); got != 0 {
		t.Fatalf("read materialized %d bytes", got)
	}
	// A one-byte write materializes exactly one frame.
	if err := m.Write(PrivKernel, 512<<20, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if got := m.ResidentBytes(); got != FrameSize {
		t.Fatalf("resident = %d, want one frame (%d)", got, FrameSize)
	}
}

func TestSnapshotRestoreDiff(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "ram", 0, 4<<20, Perms{Kernel: PermRW})

	orig := []byte("pristine contents")
	if err := m.Write(PrivKernel, 0x100, orig); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if dirty, err := m.DiffFrames(snap); err != nil || len(dirty) != 0 {
		t.Fatalf("diff right after snapshot = %v, %v", dirty, err)
	}

	// Dirty two separate frames.
	if err := m.Write(PrivKernel, 0x100, []byte("overwritten!!")); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(PrivKernel, 3*FrameSize+5, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	dirty, err := m.DiffFrames(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 3 {
		t.Fatalf("dirty frames = %v, want [0 3]", dirty)
	}
	// Range-restricted diff sees only the overlapping frame.
	dirty, err = m.DiffFramesIn(snap, 3*FrameSize, FrameSize)
	if err != nil || len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("ranged diff = %v, %v", dirty, err)
	}
	if got := FrameAddr(dirty[0]); got != 3*FrameSize {
		t.Fatalf("FrameAddr(3) = %#x", got)
	}

	// Restore rewinds contents; the snapshot stays reusable.
	for round := 0; round < 2; round++ {
		if err := m.Restore(snap); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(orig))
		if err := m.Read(PrivKernel, 0x100, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, orig) {
			t.Fatalf("round %d: restored %q, want %q", round, got, orig)
		}
		if dirty, err := m.DiffFrames(snap); err != nil || len(dirty) != 0 {
			t.Fatalf("round %d: diff after restore = %v, %v", round, dirty, err)
		}
		// Re-dirty for the second round.
		if err := m.Write(PrivKernel, 0x100, []byte("scribble")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotCOWIsolation(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "ram", 0, 1<<20, Perms{Kernel: PermRW})
	if err := m.Write(PrivKernel, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	// Writing through the live store must not leak into the snapshot.
	if err := m.Write(PrivKernel, 0, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := m.Read(PrivKernel, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("snapshot mutated by post-snapshot write: %v", got)
	}
}

func TestSnapshotZeroedFrameDiff(t *testing.T) {
	// A frame written before the snapshot and zeroed after it differs
	// (released slot vs recorded bytes); a frame that was zero both
	// times is equal even though its pointer changed shape.
	m := newTestMem(t)
	mustMap(t, m, "ram", 0, 1<<20, Perms{Kernel: PermRW})
	if err := m.Write(PrivKernel, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Zero(PrivKernel, 0, FrameSize); err != nil {
		t.Fatal(err)
	}
	dirty, err := m.DiffFrames(snap)
	if err != nil || len(dirty) != 1 || dirty[0] != 0 {
		t.Fatalf("diff after zeroing written frame = %v, %v", dirty, err)
	}
	// Materialize a frame with zeros where the snapshot has nil: the
	// bytes are identical, so it must not report dirty.
	if err := m.Write(PrivKernel, 2*FrameSize, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	dirty, err = m.DiffFramesIn(snap, 2*FrameSize, FrameSize)
	if err != nil || len(dirty) != 0 {
		t.Fatalf("all-zero materialized frame reported dirty: %v, %v", dirty, err)
	}
}

func TestSnapshotForeignRejected(t *testing.T) {
	m1, m2 := newTestMem(t), newTestMem(t)
	snap := m1.Snapshot()
	if err := m2.Restore(snap); err == nil {
		t.Fatal("foreign snapshot restored")
	}
	if _, err := m2.DiffFrames(snap); err == nil {
		t.Fatal("foreign snapshot diffed")
	}
	if err := m1.Restore(nil); err == nil {
		t.Fatal("nil snapshot restored")
	}
}

func TestZeroSemantics(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "rw", 0, 4*FrameSize, Perms{Kernel: PermRW})
	mustMap(t, m, "ro", 4*FrameSize, FrameSize, Perms{Kernel: PermR})

	// Fill a span crossing three frames, then zero the middle of it.
	fill := bytes.Repeat([]byte{0x5A}, 3*FrameSize)
	if err := m.Write(PrivKernel, 0, fill); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(PrivKernel, FrameSize/2, 2*FrameSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3*FrameSize)
	if err := m.Read(PrivKernel, 0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		in := uint64(i) >= FrameSize/2 && uint64(i) < FrameSize/2+2*FrameSize
		if in && b != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
		if !in && b != 0x5A {
			t.Fatalf("byte %d outside the span clobbered", i)
		}
	}

	// Zero validates like Write: read-only and unmapped ranges fault
	// with the same fault a Write would raise.
	err := m.Zero(PrivKernel, 4*FrameSize, 16)
	var f *Fault
	if !errors.As(err, &f) || f.Access != Write || f.Region != "ro" {
		t.Fatalf("zero of read-only region: %v", err)
	}
	err = m.Zero(PrivKernel, 20*FrameSize, 16)
	if !errors.As(err, &f) || f.Region != "" {
		t.Fatalf("zero of unmapped range: %v", err)
	}

	// Whole-frame zeroing releases backing storage.
	before := m.ResidentBytes()
	if err := m.Write(PrivKernel, 3*FrameSize, bytes.Repeat([]byte{1}, FrameSize)); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(PrivKernel, 3*FrameSize, FrameSize); err != nil {
		t.Fatal(err)
	}
	if after := m.ResidentBytes(); after > before {
		t.Fatalf("whole-frame zero kept storage: %d -> %d", before, after)
	}
}

// TestConcurrentDisjointFrames is the -race stress test: vCPU-like
// writers hammer disjoint frames while snapshots and diffs run
// concurrently. Each writer must always read back its own last write
// (disjoint frames never interfere), and the race detector must stay
// quiet across the sharded locking and COW paths.
func TestConcurrentDisjointFrames(t *testing.T) {
	m := New(64 << 20)
	mustMap(t, m, "ram", 0, 64<<20, Perms{Kernel: PermRW})

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 4 * FrameSize
			buf := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				// Cross a frame boundary on odd rounds.
				addr := base + uint64(i%2)*(FrameSize-32)
				want := byte(w<<4 | i&0xF)
				for j := range buf {
					buf[j] = want
				}
				if err := m.Write(PrivKernel, addr, buf); err != nil {
					errc <- err
					return
				}
				got := make([]byte, len(buf))
				if err := m.Read(PrivKernel, addr, got); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("worker %d round %d: read back %x, want %x", w, i, got[0], want)
					return
				}
			}
		}(w)
	}
	// Concurrent snapshot/diff traffic over the same frames.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			s := m.Snapshot()
			if _, err := m.DiffFrames(s); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
