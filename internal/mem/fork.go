package mem

import "sync/atomic"

// Copy-on-write forking. Fork produces a child Physical that starts
// byte-identical to the parent while sharing every resident frame with
// it: the fork is O(frames) pointer work, like Snapshot, and the first
// write on either side clones only the touched 64 KiB frame. This is
// the memory half of template-fork provisioning — boot one template
// machine, then stamp out fleet targets whose marginal footprint is
// just their private dirty set (see ResidentStats).

// Fork returns a new Physical whose contents, region table, and code
// epoch are identical to m's at the instant of the call.
//
// Contents are shared copy-on-write: every resident frame is marked
// shared (exactly as Snapshot does) and referenced from both stores,
// so later writes on either side clone privately and are never visible
// to the other. The region table is duplicated with fresh Region
// objects carrying the same geometry and current permissions —
// SetPerms/Map/Unmap on one side (e.g. the per-fork SMRAM lock) do not
// affect the other. The child's code epoch starts at the parent's
// value and advances independently; since a fork is always paired with
// fresh vCPUs (fresh block caches), per-fork epoch counting keeps the
// predecoded-block invalidation protocol sound without any cross-fork
// coordination.
//
// Fork may run concurrently with reads and writes on m (it holds every
// frame shard), but callers must not Map/Unmap/SetPerms on m during
// the call; Fork holds mapMu to exclude that. The child records m as
// its origin, so snapshots of m (or of m's own ancestors) remain valid
// arguments to the child's Restore/DiffFrames.
func (m *Physical) Fork() *Physical {
	child := &Physical{
		size:   m.size,
		frames: make([]atomic.Pointer[frame], len(m.frames)),
		origin: m,
	}

	// Region table first, under mapMu, so the geometry/permission view
	// and the frame contents are captured against the same quiescent
	// mapping state.
	m.mapMu.Lock()
	tab := m.tab.Load()
	sorted := make([]*Region, len(tab.sorted))
	byName := make(map[string]*Region, len(tab.byName))
	for i, r := range tab.sorted {
		nr := &Region{Name: r.Name, Base: r.Base, Size: r.Size}
		nr.perms.Store(r.perms.Load())
		sorted[i] = nr
		byName[nr.Name] = nr
	}
	child.tab.Store(&regionTable{epoch: tab.epoch, sorted: sorted, byName: byName})
	child.codeGen.Store(m.codeGen.Load())

	// Share every resident frame copy-on-write. The shared flag must be
	// set before the frame pointer is published into the child — that
	// ordering (plus the all-shard lock against concurrent parent
	// writers) is what makes "shared==false implies exclusively owned"
	// hold across both stores.
	m.lockMask(^uint64(0), true)
	for i := range m.frames {
		fr := m.frames[i].Load()
		if fr == nil {
			continue // child slot is already nil; skip the write barrier
		}
		fr.shared.Store(true)
		child.frames[i].Store(fr)
	}
	m.unlockMask(^uint64(0), true)
	m.mapMu.Unlock()

	return child
}

// Origin returns the Physical this one was forked from, or nil for a
// root (non-forked) Physical.
func (m *Physical) Origin() *Physical { return m.origin }
