package mem

import (
	"bytes"
	"sync"
	"testing"
)

// forkedPair builds a parent with one RW kernel region holding a known
// pattern in its first frame, plus its fork.
func forkedPair(t *testing.T) (*Physical, *Physical) {
	t.Helper()
	parent := newTestMem(t)
	mustMap(t, parent, "ram", 0, 8*FrameSize, Perms{Kernel: PermRW})
	if err := parent.Write(PrivKernel, 0x100, []byte("template-bytes")); err != nil {
		t.Fatal(err)
	}
	return parent, parent.Fork()
}

func TestForkSharesContents(t *testing.T) {
	parent, child := forkedPair(t)
	buf := make([]byte, 14)
	if err := child.Read(PrivKernel, 0x100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "template-bytes" {
		t.Fatalf("fork contents = %q", buf)
	}
	// Sharing, not copying: the fork's entire resident set is shared
	// and costs no private bytes.
	st := child.ResidentStats()
	if st.PrivateBytes != 0 {
		t.Fatalf("fresh fork has %d private bytes", st.PrivateBytes)
	}
	if st.SharedBytes != parent.ResidentStats().SharedBytes {
		t.Fatalf("fork shared=%d, parent shared=%d", st.SharedBytes, parent.ResidentStats().SharedBytes)
	}
	if child.Origin() != parent {
		t.Fatal("fork origin not recorded")
	}
}

func TestForkWriteIsolation(t *testing.T) {
	parent, child := forkedPair(t)
	sibling := parent.Fork()

	// A write in one fork is invisible in the template and the sibling.
	if err := child.Write(PrivKernel, 0x100, []byte("CHILD-OVERWRITE")); err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*Physical{"parent": parent, "sibling": sibling} {
		buf := make([]byte, 14)
		if err := m.Read(PrivKernel, 0x100, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "template-bytes" {
			t.Fatalf("%s sees fork's write: %q", name, buf)
		}
	}
	// And the other direction: a later template write is invisible in
	// the (already cloned and the still-shared) forks.
	if err := parent.Write(PrivKernel, 2*FrameSize, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := sibling.Read(PrivKernel, 2*FrameSize, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("sibling sees parent's post-fork write")
	}
	// The dirty frame is the fork's only private memory.
	if st := child.ResidentStats(); st.PrivateBytes != FrameSize {
		t.Fatalf("fork private = %d, want one frame", st.PrivateBytes)
	}
}

func TestForkRegionTableIndependence(t *testing.T) {
	parent, child := forkedPair(t)

	// Locking a region in the fork (the per-fork SMRAM lock) must not
	// change the template's permissions, and vice versa.
	if err := child.SetPerms("ram", Perms{}); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(PrivKernel, 0x200, []byte{1}); err != nil {
		t.Fatalf("parent write blocked by fork's SetPerms: %v", err)
	}
	if err := child.Write(PrivKernel, 0x200, []byte{1}); err == nil {
		t.Fatal("fork write allowed through revoked perms")
	}

	// New mappings are per-store too.
	if _, err := child.Map("fork-only", 9*FrameSize, FrameSize, Perms{Kernel: PermRW}); err != nil {
		t.Fatal(err)
	}
	if parent.Region("fork-only") != nil {
		t.Fatal("fork's Map leaked into parent")
	}
}

func TestForkCodeEpochIndependent(t *testing.T) {
	parent := newTestMem(t)
	mustMap(t, parent, "text", 0, FrameSize, Perms{Kernel: PermRWX})
	e0 := parent.CodeEpoch()
	child := parent.Fork()
	if child.CodeEpoch() != e0 {
		t.Fatalf("fork epoch = %d, parent = %d", child.CodeEpoch(), e0)
	}
	// A code write in the fork bumps only the fork's epoch.
	if err := child.Write(PrivKernel, 0x10, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	if child.CodeEpoch() == e0 {
		t.Fatal("fork code write did not advance fork epoch")
	}
	if parent.CodeEpoch() != e0 {
		t.Fatal("fork code write advanced parent epoch")
	}
}

func TestForkDiffAgainstTemplateSnapshot(t *testing.T) {
	parent, child := forkedPair(t)
	snap := parent.Snapshot()

	// A template snapshot is a valid diff base for the fork (the
	// origin chain), and the diff names exactly the fork's dirty
	// frames.
	dirty, err := child.DiffFrames(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Fatalf("fresh fork differs from template: frames %v", dirty)
	}
	if err := child.Write(PrivKernel, 3*FrameSize+5, []byte{1}); err != nil {
		t.Fatal(err)
	}
	dirty, err = child.DiffFrames(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("dirty frames = %v, want [3]", dirty)
	}
	// Restore from the template snapshot rolls the fork back.
	if err := child.Restore(snap); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 14)
	if err := child.Read(PrivKernel, 0x100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "template-bytes" {
		t.Fatalf("restored fork = %q", buf)
	}
}

func TestForkOfForkChains(t *testing.T) {
	parent, child := forkedPair(t)
	grand := child.Fork()
	snap := parent.Snapshot()
	// The grandchild accepts the grandparent's snapshot through the
	// origin chain.
	if _, err := grand.DiffFrames(snap); err != nil {
		t.Fatalf("grandchild rejects ancestor snapshot: %v", err)
	}
	// An unrelated Physical still rejects it.
	other := New(1 << 20)
	if _, err := other.DiffFrames(snap); err == nil {
		t.Fatal("unrelated Physical accepted foreign snapshot")
	}
}

func TestForkConcurrentWriters(t *testing.T) {
	parent := newTestMem(t)
	mustMap(t, parent, "ram", 0, 64*FrameSize, Perms{Kernel: PermRW})
	pattern := bytes.Repeat([]byte{0x5A}, 256)
	for f := uint64(0); f < 64; f++ {
		if err := parent.Write(PrivKernel, f*FrameSize, pattern); err != nil {
			t.Fatal(err)
		}
	}

	// N forks concurrently scribble distinct bytes over the same
	// addresses while the parent keeps writing too; under -race this
	// exercises the cross-store shared-flag protocol.
	const forks = 8
	var wg sync.WaitGroup
	children := make([]*Physical, forks)
	for i := 0; i < forks; i++ {
		children[i] = parent.Fork()
	}
	for i, c := range children {
		wg.Add(1)
		go func(i int, c *Physical) {
			defer wg.Done()
			b := []byte{byte(i + 1)}
			for f := uint64(0); f < 64; f++ {
				if err := c.Write(PrivKernel, f*FrameSize+8, b); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := uint64(0); f < 64; f++ {
			if err := parent.Write(PrivKernel, f*FrameSize+9, []byte{0xFF}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	for i, c := range children {
		buf := make([]byte, 2)
		for f := uint64(0); f < 64; f++ {
			if err := c.Read(PrivKernel, f*FrameSize+8, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(i+1) {
				t.Fatalf("fork %d frame %d: own write lost (%#x)", i, f, buf[0])
			}
			if buf[1] == 0xFF {
				t.Fatalf("fork %d frame %d: parent's post-fork write visible", i, f)
			}
		}
	}
}
