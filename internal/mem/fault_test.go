package mem

import (
	"bytes"
	"errors"
	"testing"

	"kshot/internal/faultinject"
)

func newReserved(t *testing.T) (*Physical, *Reserved) {
	t.Helper()
	m := New(64 << 20)
	res, err := MapReserved(m, 0x100_0000)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// An injected mem_W access fault rejects the helper's staging write
// exactly like a hardware permission fault, leaving memory untouched.
func TestInjectedMemWFault(t *testing.T) {
	m, res := newReserved(t)
	m.SetFaultInjector(faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.MemWFault, Call: 0},
	)))

	err := m.Write(PrivUser, res.WBase(), []byte("staged package"))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("write error = %v, want *Fault", err)
	}
	if f.Region != RegionMemW {
		t.Fatalf("fault region %q, want %q", f.Region, RegionMemW)
	}
	// The scheduled fault fired once; the retried write succeeds.
	if err := m.Write(PrivUser, res.WBase(), []byte("staged package")); err != nil {
		t.Fatalf("second write: %v", err)
	}
}

// An injected corruption flips exactly one bit of the staged bytes —
// the caller's buffer stays intact, and SMM sees the corrupted copy.
func TestInjectedMemWCorruption(t *testing.T) {
	m, res := newReserved(t)
	m.SetFaultInjector(faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.MemWCorrupt, Call: 0, Bit: 9},
	)))

	src := bytes.Repeat([]byte{0xA5}, 16)
	orig := append([]byte(nil), src...)
	if err := m.Write(PrivKernel, res.WBase(), src); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(src, orig) {
		t.Fatal("injection mutated the caller's buffer")
	}

	got := make([]byte, 16)
	if err := m.Read(PrivSMM, res.WBase(), got); err != nil {
		t.Fatalf("SMM read: %v", err)
	}
	diff := 0
	for i := range got {
		b := got[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ in memory, want exactly 1", diff)
	}
}

// SMM's own writes into mem_W are exempt: the handler is trusted
// firmware, not part of the hostile hand-off surface.
func TestInjectionExemptsSMMWrites(t *testing.T) {
	m, res := newReserved(t)
	fi := faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.MemWFault, Call: 0},
		faultinject.Fault{Point: faultinject.MemWCorrupt, Call: 0},
	))
	m.SetFaultInjector(fi)

	src := []byte{1, 2, 3, 4}
	if err := m.Write(PrivSMM, res.WBase(), src); err != nil {
		t.Fatalf("SMM write: %v", err)
	}
	got := make([]byte, 4)
	if err := m.Read(PrivSMM, res.WBase(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("SMM write corrupted: %v", got)
	}
	if fi.Calls(faultinject.MemWFault) != 0 {
		t.Fatal("SMM write consulted the injector")
	}
}

// Writes outside mem_W never consult the injector, and removing the
// injector restores clean behavior.
func TestInjectionScopedToMemW(t *testing.T) {
	m, res := newReserved(t)
	fi := faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.MemWFault, Call: 0},
	))
	m.SetFaultInjector(fi)

	if err := m.Write(PrivKernel, res.RWBase(), []byte{7}); err != nil {
		t.Fatalf("mem_RW write consulted mem_W injection: %v", err)
	}
	if fi.Calls(faultinject.MemWFault) != 0 {
		t.Fatal("non-mem_W write advanced the injector")
	}

	m.SetFaultInjector(nil)
	if err := m.Write(PrivUser, res.WBase(), []byte{7}); err != nil {
		t.Fatalf("write after removing injector: %v", err)
	}
}
