package mem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// refMem is a deliberately naive flat-array model of Physical used as
// the differential-fuzz oracle: one contiguous byte slice, linear
// region scans, per-byte permission checks. It shares no code with the
// sparse store, so agreement between the two is evidence the frame
// bookkeeping, COW cloning, and region-table swaps preserve the
// original semantics.
type refMem struct {
	size uint64
	data []byte
	regs []*refRegion
}

type refRegion struct {
	name       string
	base, size uint64
	perms      [numPriv]Perm
}

func newRefMem(size uint64) *refMem {
	return &refMem{size: size, data: make([]byte, size)}
}

func (f *refMem) find(addr uint64) *refRegion {
	for _, r := range f.regs {
		if addr >= r.base && addr < r.base+r.size {
			return r
		}
	}
	return nil
}

func (f *refMem) mapRegion(name string, base, size uint64, ps Perms) error {
	if size == 0 {
		return errors.New("zero size")
	}
	if base+size < base || base+size > f.size {
		return errors.New("out of bounds")
	}
	for _, r := range f.regs {
		if r.name == name {
			return errors.New("duplicate name")
		}
		if base < r.base+r.size && r.base < base+size {
			return errors.New("overlap")
		}
	}
	f.regs = append(f.regs, &refRegion{
		name: name, base: base, size: size,
		perms: [numPriv]Perm{PrivUser: ps.User, PrivKernel: ps.Kernel, PrivEnclave: ps.Enclave, PrivSMM: ps.SMM},
	})
	return nil
}

func (f *refMem) unmap(name string) error {
	for i, r := range f.regs {
		if r.name == name {
			f.regs = append(f.regs[:i], f.regs[i+1:]...)
			return nil
		}
	}
	return errors.New("no such region")
}

// access validates [addr, addr+n) byte by byte, reproducing Physical's
// fault details (first offending address and its region name) from
// first principles.
func (f *refMem) access(priv Priv, kind Access, addr, n uint64) *Fault {
	if n == 0 {
		return nil
	}
	if addr+n < addr || addr+n > f.size {
		return &Fault{Priv: priv, Access: kind, Addr: addr}
	}
	for off := addr; off < addr+n; off++ {
		r := f.find(off)
		if r == nil {
			return &Fault{Priv: priv, Access: kind, Addr: off}
		}
		if !r.perms[priv].allows(kind) {
			return &Fault{Priv: priv, Access: kind, Addr: off, Region: r.name}
		}
		// Skip to the end of this region: permissions are uniform
		// inside it, so re-checking every byte only costs time.
		off = r.base + r.size - 1
	}
	return nil
}

// sameFault compares an error from Physical against the oracle fault.
func sameFault(err error, want *Fault) bool {
	if want == nil {
		return err == nil
	}
	var got *Fault
	if !errors.As(err, &got) {
		return false
	}
	return got.Priv == want.Priv && got.Access == want.Access &&
		got.Addr == want.Addr && got.Region == want.Region
}

// fuzzRegions is the palette of mappings the fuzz interpreter can
// toggle: overlapping candidates, mixed permissions, a frame-unaligned
// region, and one butting against the end of physical memory.
var fuzzRegions = []struct {
	name string
	base uint64
	size uint64
	ps   Perms
}{
	{"ram", 0, 4 * FrameSize, Perms{Kernel: PermRW, User: PermR}},
	{"text", 4 * FrameSize, 2 * FrameSize, Perms{Kernel: PermRX, SMM: PermRWX}},
	{"odd", 6*FrameSize + 0x123, FrameSize / 2, Perms{Kernel: PermRW}},
	{"wide", 2 * FrameSize, 8 * FrameSize, Perms{Kernel: PermRWX}}, // overlaps ram/text/odd
	{"tail", fuzzPhysSize - FrameSize/4, FrameSize / 4, Perms{SMM: PermRW}},
	{"gap", 10 * FrameSize, FrameSize, Perms{Enclave: PermRW}},
}

const fuzzPhysSize = 16 * FrameSize // 1 MiB: 16 frames, cheap to diff flat

// FuzzSparseMemAccess feeds random op sequences to the sparse store
// and the flat oracle and requires byte- and fault-identical behavior,
// including across Map/Unmap epoch bumps (which must invalidate the
// fetch RegionCache) and Snapshot/Restore cycles.
func FuzzSparseMemAccess(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0x13, 0x37, 0xFF, 0x00, 0xAA, 0x55, 0x21, 0x42, 0x63, 0x84, 0xA5, 0xC6})
	f.Add(bytes.Repeat([]byte{0x2F, 0x90, 0x04, 0x71}, 16))
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := New(fuzzPhysSize)
		ref := newRefMem(fuzzPhysSize)
		var cache RegionCache
		var snap *Snapshot
		var refSnap []byte

		// take consumes k bytes from ops (zero-padded at the tail).
		take := func(k int) []byte {
			out := make([]byte, k)
			copy(out, ops)
			ops = ops[min(len(ops), k):]
			return out
		}

		for step := 0; len(ops) > 0 && step < 512; step++ {
			b := take(4)
			op := b[0] % 8
			priv := Priv(b[1]%4) + 1
			addr := (uint64(b[2])<<8 | uint64(b[3])) * 67 % (fuzzPhysSize + FrameSize) // may exceed size
			lb := take(2)
			n := (uint64(lb[0])<<8 | uint64(lb[1])) % (FrameSize + 17) // spans ≤ 2 frame boundaries

			switch op {
			case 0: // Read
				got := make([]byte, n)
				err := m.Read(priv, addr, got)
				want := ref.access(priv, Read, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: read(%v,%#x,%d) fault mismatch: got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 && !bytes.Equal(got, ref.data[addr:addr+n]) {
					t.Fatalf("step %d: read(%v,%#x,%d) bytes diverge", step, priv, addr, n)
				}
			case 1: // Write
				src := bytes.Repeat([]byte{b[1] ^ b[2]}, int(n))
				for i := range src {
					src[i] += byte(i)
				}
				err := m.Write(priv, addr, src)
				want := ref.access(priv, Write, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: write(%v,%#x,%d) fault mismatch: got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 {
					copy(ref.data[addr:], src)
				}
			case 2: // Fetch through the per-CPU cache
				got := make([]byte, n)
				err := m.FetchCached(priv, addr, got, &cache)
				want := ref.access(priv, Execute, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: fetch(%v,%#x,%d) fault mismatch: got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 && !bytes.Equal(got, ref.data[addr:addr+n]) {
					t.Fatalf("step %d: fetch(%v,%#x,%d) bytes diverge", step, priv, addr, n)
				}
			case 3: // Zero
				err := m.Zero(priv, addr, n)
				want := ref.access(priv, Write, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: zero(%v,%#x,%d) fault mismatch: got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 {
					clear(ref.data[addr : addr+n])
				}
			case 4: // Map from the palette
				spec := fuzzRegions[int(b[1])%len(fuzzRegions)]
				_, err := m.Map(spec.name, spec.base, spec.size, spec.ps)
				refErr := ref.mapRegion(spec.name, spec.base, spec.size, spec.ps)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("step %d: map %q: got %v, oracle %v", step, spec.name, err, refErr)
				}
			case 5: // Unmap from the palette
				name := fuzzRegions[int(b[1])%len(fuzzRegions)].name
				err := m.Unmap(name)
				refErr := ref.unmap(name)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("step %d: unmap %q: got %v, oracle %v", step, name, err, refErr)
				}
			case 6: // Snapshot and cross-check DiffFrames
				snap = m.Snapshot()
				refSnap = append([]byte(nil), ref.data...)
				fallthrough
			case 7: // DiffFrames against the flat oracle
				if snap == nil {
					continue
				}
				dirty, err := m.DiffFrames(snap)
				if err != nil {
					t.Fatalf("step %d: diff: %v", step, err)
				}
				var want []uint64
				for fr := uint64(0); fr < fuzzPhysSize/FrameSize; fr++ {
					a := fr * FrameSize
					if !bytes.Equal(ref.data[a:a+FrameSize], refSnap[a:a+FrameSize]) {
						want = append(want, fr)
					}
				}
				if fmt.Sprint(dirty) != fmt.Sprint(want) {
					t.Fatalf("step %d: dirty frames %v, oracle %v", step, dirty, want)
				}
				if op == 7 && b[1]&1 == 1 { // sometimes restore
					if err := m.Restore(snap); err != nil {
						t.Fatalf("step %d: restore: %v", step, err)
					}
					copy(ref.data, refSnap)
				}
			}
		}
	})
}
