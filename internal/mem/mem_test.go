package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTestMem(t *testing.T) *Physical {
	t.Helper()
	return New(64 << 20)
}

func mustMap(t *testing.T, m *Physical, name string, base, size uint64, ps Perms) *Region {
	t.Helper()
	r, err := m.Map(name, base, size, ps)
	if err != nil {
		t.Fatalf("map %s: %v", name, err)
	}
	return r
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "ram", 0, 1<<20, Perms{Kernel: PermRW})

	want := []byte{1, 2, 3, 4, 5}
	if err := m.Write(PrivKernel, 0x100, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(want))
	if err := m.Read(PrivKernel, 0x100, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read back %v, want %v", got, want)
	}
}

func TestPermissionDenied(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "text", 0, 4096, Perms{Kernel: PermRX, User: PermX, SMM: PermRWX})

	tests := []struct {
		name   string
		op     func() error
		wantOK bool
	}{
		{"kernel read", func() error { return m.Read(PrivKernel, 0, make([]byte, 4)) }, true},
		{"kernel write", func() error { return m.Write(PrivKernel, 0, []byte{1}) }, false},
		{"kernel exec", func() error { return m.Fetch(PrivKernel, 0, make([]byte, 1)) }, true},
		{"user read", func() error { return m.Read(PrivUser, 0, make([]byte, 4)) }, false},
		{"user exec", func() error { return m.Fetch(PrivUser, 0, make([]byte, 1)) }, true},
		{"smm write", func() error { return m.Write(PrivSMM, 0, []byte{1}) }, true},
		{"enclave read", func() error { return m.Read(PrivEnclave, 0, make([]byte, 4)) }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.op()
			if tt.wantOK && err != nil {
				t.Errorf("unexpected fault: %v", err)
			}
			if !tt.wantOK {
				var f *Fault
				if !errors.As(err, &f) {
					t.Errorf("want *Fault, got %v", err)
				}
			}
		})
	}
}

func TestFaultDetails(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "secret", 0x1000, 4096, Perms{SMM: PermRWX})

	err := m.Read(PrivKernel, 0x1800, make([]byte, 8))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	if f.Region != "secret" || f.Priv != PrivKernel || f.Access != Read {
		t.Errorf("fault = %+v, want region secret, kernel read", f)
	}

	err = m.Read(PrivKernel, 0x10_0000, make([]byte, 8))
	if !errors.As(err, &f) || f.Region != "" {
		t.Errorf("unmapped access: got %v, want unmapped fault", err)
	}
}

func TestUnmappedAndOutOfBounds(t *testing.T) {
	m := New(4096)
	if err := m.Read(PrivSMM, 0, make([]byte, 1)); err == nil {
		t.Error("read of unmapped memory succeeded")
	}
	mustMap(t, m, "all", 0, 4096, Perms{SMM: PermRWX})
	if err := m.Read(PrivSMM, 4090, make([]byte, 16)); err == nil {
		t.Error("out-of-bounds read succeeded")
	}
	if err := m.Read(PrivSMM, ^uint64(0)-4, make([]byte, 16)); err == nil {
		t.Error("overflowing read succeeded")
	}
}

func TestSpanningRegions(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "a", 0, 4096, Perms{Kernel: PermRW})
	mustMap(t, m, "b", 4096, 4096, Perms{Kernel: PermRW})

	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.Write(PrivKernel, 4096-64, data); err != nil {
		t.Fatalf("spanning write: %v", err)
	}
	got := make([]byte, 128)
	if err := m.Read(PrivKernel, 4096-64, got); err != nil {
		t.Fatalf("spanning read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("spanning read mismatch")
	}

	// Span into a forbidden region: no partial effects allowed.
	mustMap(t, m, "x", 8192, 4096, Perms{Kernel: PermX})
	marker := []byte{0xAA}
	if err := m.Write(PrivKernel, 8190, marker); err != nil {
		t.Fatalf("pre-write: %v", err)
	}
	if err := m.Write(PrivKernel, 8190, []byte{1, 2, 3, 4}); err == nil {
		t.Fatal("write spanning into X-only region succeeded")
	}
	got1 := make([]byte, 1)
	if err := m.Read(PrivKernel, 8190, got1); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if got1[0] != 0xAA {
		t.Error("failed spanning write had partial effect")
	}
}

func TestMapOverlapRejected(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "a", 0x1000, 0x1000, Perms{})
	cases := []struct{ base, size uint64 }{
		{0x1000, 0x1000}, // exact
		{0x800, 0x1000},  // straddles start
		{0x1800, 0x1000}, // straddles end
		{0x1400, 0x100},  // inside
		{0x0, 0x4000},    // encloses
	}
	for _, c := range cases {
		if _, err := m.Map("b", c.base, c.size, Perms{}); err == nil {
			t.Errorf("overlapping map [%#x,+%#x) succeeded", c.base, c.size)
		}
	}
	// Adjacent is fine.
	if _, err := m.Map("c", 0x2000, 0x1000, Perms{}); err != nil {
		t.Errorf("adjacent map failed: %v", err)
	}
}

func TestMapValidation(t *testing.T) {
	m := New(4096)
	if _, err := m.Map("zero", 0, 0, Perms{}); err == nil {
		t.Error("zero-size map succeeded")
	}
	if _, err := m.Map("oob", 4000, 4096, Perms{}); err == nil {
		t.Error("out-of-bounds map succeeded")
	}
	if _, err := m.Map("wrap", ^uint64(0)-10, 100, Perms{}); err == nil {
		t.Error("wrapping map succeeded")
	}
}

func TestSetPermsAndUnmap(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "smram", 0, 4096, Perms{Kernel: PermRW, SMM: PermRWX})
	if err := m.Write(PrivKernel, 0, []byte{1}); err != nil {
		t.Fatalf("pre-lock write: %v", err)
	}
	// Lock: drop kernel access, as firmware locks SMRAM at boot.
	if err := m.SetPerms("smram", Perms{SMM: PermRWX}); err != nil {
		t.Fatalf("set perms: %v", err)
	}
	if err := m.Write(PrivKernel, 0, []byte{2}); err == nil {
		t.Error("post-lock kernel write succeeded")
	}
	if err := m.Write(PrivSMM, 0, []byte{2}); err != nil {
		t.Errorf("post-lock SMM write failed: %v", err)
	}
	if err := m.SetPerms("nosuch", Perms{}); err == nil {
		t.Error("set perms on missing region succeeded")
	}

	if err := m.Unmap("smram"); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if err := m.Read(PrivSMM, 0, make([]byte, 1)); err == nil {
		t.Error("read of unmapped region succeeded")
	}
	if err := m.Unmap("smram"); err == nil {
		t.Error("double unmap succeeded")
	}
}

func TestRegionLookup(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "a", 0x1000, 0x1000, Perms{})
	mustMap(t, m, "b", 0x3000, 0x1000, Perms{})

	if r := m.Region("a"); r == nil || r.Base != 0x1000 {
		t.Errorf("Region(a) = %+v", r)
	}
	if r := m.Region("nope"); r != nil {
		t.Errorf("Region(nope) = %+v, want nil", r)
	}
	regs := m.Regions()
	if len(regs) != 2 || regs[0].Name != "a" || regs[1].Name != "b" {
		t.Errorf("Regions() = %v", regs)
	}
	if !regs[0].Contains(0x1fff) || regs[0].Contains(0x2000) {
		t.Error("Contains boundary wrong")
	}
}

func TestU64Helpers(t *testing.T) {
	m := newTestMem(t)
	mustMap(t, m, "ram", 0, 4096, Perms{Kernel: PermRW})
	const v = 0x1122_3344_5566_7788
	if err := m.WriteU64(PrivKernel, 64, v); err != nil {
		t.Fatalf("WriteU64: %v", err)
	}
	got, err := m.ReadU64(PrivKernel, 64)
	if err != nil || got != v {
		t.Fatalf("ReadU64 = %#x, %v; want %#x", got, err, uint64(v))
	}
	// Verify little-endian layout.
	b := make([]byte, 8)
	if err := m.Read(PrivKernel, 64, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x88 || b[7] != 0x11 {
		t.Errorf("not little-endian: % x", b)
	}
	if _, err := m.ReadU64(PrivUser, 64); err == nil {
		t.Error("user ReadU64 succeeded")
	}
}

func TestReservedLayout(t *testing.T) {
	m := New(256 << 20)
	res, err := MapReserved(m, 128<<20)
	if err != nil {
		t.Fatalf("MapReserved: %v", err)
	}
	if res.RW.Size+res.W.Size+res.X.Size != ReservedTotalSize {
		t.Errorf("parts sum to %d, want %d (18MB)", res.RW.Size+res.W.Size+res.X.Size, ReservedTotalSize)
	}
	if res.W.Base != res.RW.End() || res.X.Base != res.W.End() {
		t.Error("reserved parts not contiguous")
	}

	// Paper §V-B access matrix, kernel's view:
	// mem_RW: read+write; mem_W: write only; mem_X: execute only.
	check := func(desc string, err error, wantOK bool) {
		t.Helper()
		if wantOK && err != nil {
			t.Errorf("%s: unexpected fault %v", desc, err)
		}
		if !wantOK && err == nil {
			t.Errorf("%s: access allowed, want fault", desc)
		}
	}
	buf := make([]byte, 8)
	check("kernel read mem_RW", m.Read(PrivKernel, res.RWBase(), buf), true)
	check("kernel write mem_RW", m.Write(PrivKernel, res.RWBase(), buf), true)
	check("kernel write mem_W", m.Write(PrivKernel, res.WBase(), buf), true)
	check("kernel read mem_W", m.Read(PrivKernel, res.WBase(), buf), false)
	check("kernel exec mem_X", m.Fetch(PrivKernel, res.XBase(), buf), true)
	check("kernel read mem_X", m.Read(PrivKernel, res.XBase(), buf), false)
	check("kernel write mem_X", m.Write(PrivKernel, res.XBase(), buf), false)
	// SMM has full access to all three.
	check("smm read mem_X", m.Read(PrivSMM, res.XBase(), buf), true)
	check("smm write mem_X", m.Write(PrivSMM, res.XBase(), buf), true)

	if _, err := MapReserved(m, 1234); err == nil {
		t.Error("unaligned MapReserved succeeded")
	}
}

func TestStringers(t *testing.T) {
	if PrivKernel.String() != "kernel" || PrivSMM.String() != "smm" {
		t.Error("Priv.String wrong")
	}
	if Priv(99).String() == "" || Access(99).String() == "" {
		t.Error("unknown stringers empty")
	}
	if PermRWX.String() != "rwx" || PermNone.String() != "---" || (PermR|PermX).String() != "r-x" {
		t.Error("Perm.String wrong")
	}
	if Read.String() != "read" || Write.String() != "write" || Execute.String() != "execute" {
		t.Error("Access.String wrong")
	}
}

// Property: a write at any in-range offset with any payload reads back
// identically, and never succeeds for a privilege the region forbids.
func TestQuickWriteReadIdentity(t *testing.T) {
	m := New(1 << 20)
	if _, err := m.Map("rw", 0, 1<<20, Perms{Kernel: PermRW}); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, payload []byte) bool {
		addr := uint64(off)
		if len(payload) == 0 || addr+uint64(len(payload)) > 1<<20 {
			return true
		}
		if err := m.Write(PrivKernel, addr, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := m.Read(PrivKernel, addr, got); err != nil {
			return false
		}
		if !bytes.Equal(got, payload) {
			return false
		}
		// The same bytes must be invisible to a user-level reader.
		return m.Read(PrivUser, addr, got) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: permission checks are total — for every (priv, access) pair
// the region's declared permission alone decides the outcome.
func TestQuickPermissionMatrix(t *testing.T) {
	f := func(user, kernel, enclave, smm uint8) bool {
		m := New(4096)
		ps := Perms{
			User:    Perm(user) & PermRWX,
			Kernel:  Perm(kernel) & PermRWX,
			Enclave: Perm(enclave) & PermRWX,
			SMM:     Perm(smm) & PermRWX,
		}
		if _, err := m.Map("r", 0, 4096, ps); err != nil {
			return false
		}
		perms := map[Priv]Perm{
			PrivUser: ps.User, PrivKernel: ps.Kernel,
			PrivEnclave: ps.Enclave, PrivSMM: ps.SMM,
		}
		buf := make([]byte, 1)
		for priv, perm := range perms {
			if (m.Read(priv, 0, buf) == nil) != (perm&PermR != 0) {
				return false
			}
			if (m.Write(priv, 0, buf) == nil) != (perm&PermW != 0) {
				return false
			}
			if (m.Fetch(priv, 0, buf) == nil) != (perm&PermX != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New(1 << 20)
	if _, err := m.Map("rw", 0, 1<<20, Perms{Kernel: PermRW}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			buf := []byte{byte(g)}
			addr := uint64(g * 128)
			for i := 0; i < 1000; i++ {
				if err := m.Write(PrivKernel, addr, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got := make([]byte, 1)
				if err := m.Read(PrivKernel, addr, got); err != nil || got[0] != byte(g) {
					t.Errorf("read: %v %v", got, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
