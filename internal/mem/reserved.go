package mem

import "fmt"

// KShot reserves 18 MB of physical memory at boot (§V-B of the paper),
// split into three logical parts with asymmetric kernel-side access:
//
//   - mem_RW: small read/write area used for the Diffie-Hellman key
//     exchange between the SGX enclave and the SMM handler.
//   - mem_W: write-only (from the kernel/user point of view) staging
//     area where the untrusted helper application deposits the
//     encrypted patch package. The kernel can write it but cannot read
//     it back, so a compromised kernel cannot inspect patch traffic.
//   - mem_X: execute-only area holding the decrypted patched function
//     text. The kernel can execute it (trampolines jump here) but can
//     neither read nor overwrite it.
//
// The SMM handler has full access to all three parts.
const (
	// ReservedTotalSize is the paper's 18 MB boot-time reservation.
	ReservedTotalSize = 18 << 20

	// MemRWSize holds DH public keys and handshake state.
	MemRWSize = 64 << 10

	// MemWSize stages the encrypted patch package plus rollback
	// journal entries written back by SMM.
	MemWSize = 6 << 20

	// MemXSize holds decrypted, executable patched function text.
	MemXSize = ReservedTotalSize - MemRWSize - MemWSize
)

// Canonical region names used throughout the system.
const (
	RegionMemRW = "kshot.mem_rw"
	RegionMemW  = "kshot.mem_w"
	RegionMemX  = "kshot.mem_x"
)

// Reserved describes the mapped KShot reserved region.
type Reserved struct {
	Base uint64 // base of the whole 18 MB reservation

	RW *Region // key-exchange area
	W  *Region // encrypted patch staging area
	X  *Region // executable patched text area
}

// RWBase returns the physical base address of mem_RW.
func (r *Reserved) RWBase() uint64 { return r.RW.Base }

// WBase returns the physical base address of mem_W.
func (r *Reserved) WBase() uint64 { return r.W.Base }

// XBase returns the physical base address of mem_X.
func (r *Reserved) XBase() uint64 { return r.X.Base }

// ReservedLayout sizes the three parts of the reservation. The zero
// value is replaced by the paper's default 18 MB split.
type ReservedLayout struct {
	RWSize uint64
	WSize  uint64
	XSize  uint64
}

// Total returns the layout's combined size.
func (l ReservedLayout) Total() uint64 { return l.RWSize + l.WSize + l.XSize }

// DefaultReservedLayout is the paper's 18 MB boot-time split.
func DefaultReservedLayout() ReservedLayout {
	return ReservedLayout{RWSize: MemRWSize, WSize: MemWSize, XSize: MemXSize}
}

// ReservedFrom rebinds a Reserved view to regions already mapped in m
// — the forked-Physical case, where Fork duplicated the region table
// with fresh Region objects and a Reserved built against the parent
// would silently alias the parent's permissions.
func ReservedFrom(m *Physical) (*Reserved, error) {
	rw := m.Region(RegionMemRW)
	w := m.Region(RegionMemW)
	x := m.Region(RegionMemX)
	if rw == nil || w == nil || x == nil {
		return nil, fmt.Errorf("reserved: kshot regions not mapped")
	}
	return &Reserved{Base: rw.Base, RW: rw, W: w, X: x}, nil
}

// MapReserved maps the three-part KShot reserved region at base with
// the paper's default 18 MB layout.
func MapReserved(m *Physical, base uint64) (*Reserved, error) {
	return MapReservedLayout(m, base, DefaultReservedLayout())
}

// MapReservedLayout maps the three-part KShot reserved region at base,
// applying the paper's asymmetric kernel-side page attributes. It is
// called at (simulated) boot, mirroring the grub + paging_init changes
// described in §V-B. A non-default layout supports experiments whose
// patches exceed the default split (the paper's 10 MB size row cannot
// fit an encrypted copy in mem_W and an executable copy in mem_X
// within 18 MB simultaneously).
func MapReservedLayout(m *Physical, base uint64, layout ReservedLayout) (*Reserved, error) {
	if layout == (ReservedLayout{}) {
		layout = DefaultReservedLayout()
	}
	if base%4096 != 0 {
		return nil, fmt.Errorf("map reserved: base %#x not page aligned", base)
	}
	if layout.RWSize == 0 || layout.WSize == 0 || layout.XSize == 0 {
		return nil, fmt.Errorf("map reserved: all three parts need non-zero size")
	}
	rw, err := m.Map(RegionMemRW, base, layout.RWSize, Perms{
		User:    PermRW,
		Kernel:  PermRW,
		Enclave: PermRW,
		SMM:     PermRWX,
	})
	if err != nil {
		return nil, fmt.Errorf("map reserved: %w", err)
	}
	w, err := m.Map(RegionMemW, base+layout.RWSize, layout.WSize, Perms{
		User:    PermW,
		Kernel:  PermW,
		Enclave: PermW,
		SMM:     PermRWX,
	})
	if err != nil {
		return nil, fmt.Errorf("map reserved: %w", err)
	}
	x, err := m.Map(RegionMemX, base+layout.RWSize+layout.WSize, layout.XSize, Perms{
		User:    PermNone,
		Kernel:  PermX,
		Enclave: PermNone,
		SMM:     PermRWX,
	})
	if err != nil {
		return nil, fmt.Errorf("map reserved: %w", err)
	}
	return &Reserved{Base: base, RW: rw, W: w, X: x}, nil
}
