package mem

import (
	"bytes"
	"testing"
)

// FuzzForkMem differentially fuzzes a forked Physical against the flat
// oracle: the template boots with a deterministic pattern, the fork
// takes random read/write/zero/perm traffic that must match a fresh
// oracle holding the same initial bytes, and after every sequence the
// template must diff clean against its pre-fork snapshot — no op on
// the fork may leak through a shared frame.
func FuzzForkMem(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x10, 0x00, 0x20, 0x00})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	f.Add(bytes.Repeat([]byte{0x81, 0x42, 0x24, 0x18}, 24))
	f.Fuzz(func(t *testing.T, ops []byte) {
		template := New(fuzzPhysSize)
		if _, err := template.Map("ram", 0, 12*FrameSize, Perms{Kernel: PermRW, User: PermR}); err != nil {
			t.Fatal(err)
		}
		if _, err := template.Map("mmio", 14*FrameSize, FrameSize, Perms{SMM: PermRW}); err != nil {
			t.Fatal(err)
		}
		// Deterministic template contents: a recognizable stripe in
		// every second frame (the others stay lazily zero, so the fork
		// inherits a mix of resident and absent frames).
		stripe := make([]byte, 512)
		for i := range stripe {
			stripe[i] = byte(i*7 + 3)
		}
		for fr := uint64(0); fr < 12; fr += 2 {
			if err := template.Write(PrivKernel, fr*FrameSize+128, stripe); err != nil {
				t.Fatal(err)
			}
		}
		snap := template.Snapshot()

		child := template.Fork()
		// Oracle: flat model seeded with the template's exact bytes and
		// region layout.
		ref := newRefMem(fuzzPhysSize)
		if err := ref.mapRegion("ram", 0, 12*FrameSize, Perms{Kernel: PermRW, User: PermR}); err != nil {
			t.Fatal(err)
		}
		if err := ref.mapRegion("mmio", 14*FrameSize, FrameSize, Perms{SMM: PermRW}); err != nil {
			t.Fatal(err)
		}
		for fr := uint64(0); fr < 12; fr += 2 {
			copy(ref.data[fr*FrameSize+128:], stripe)
		}

		take := func(k int) []byte {
			out := make([]byte, k)
			copy(out, ops)
			ops = ops[min(len(ops), k):]
			return out
		}
		for step := 0; len(ops) > 0 && step < 256; step++ {
			b := take(4)
			op := b[0] % 4
			priv := Priv(b[1]%4) + 1
			addr := (uint64(b[2])<<8 | uint64(b[3])) * 61 % (fuzzPhysSize + FrameSize)
			lb := take(2)
			n := (uint64(lb[0])<<8 | uint64(lb[1])) % (FrameSize + 17)

			switch op {
			case 0: // Read on the fork
				got := make([]byte, n)
				err := child.Read(priv, addr, got)
				want := ref.access(priv, Read, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: fork read(%v,%#x,%d): got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 && !bytes.Equal(got, ref.data[addr:addr+n]) {
					t.Fatalf("step %d: fork read(%v,%#x,%d) bytes diverge from oracle", step, priv, addr, n)
				}
			case 1: // Write on the fork
				src := bytes.Repeat([]byte{b[1] ^ 0x3C}, int(n))
				for i := range src {
					src[i] -= byte(i * 3)
				}
				err := child.Write(priv, addr, src)
				want := ref.access(priv, Write, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: fork write(%v,%#x,%d): got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 {
					copy(ref.data[addr:], src)
				}
			case 2: // Zero on the fork
				err := child.Zero(priv, addr, n)
				want := ref.access(priv, Write, addr, n)
				if !sameFault(err, want) {
					t.Fatalf("step %d: fork zero(%v,%#x,%d): got %v want %v", step, priv, addr, n, err, want)
				}
				if err == nil && n > 0 {
					clear(ref.data[addr : addr+n])
				}
			case 3: // Diff the fork against the template snapshot
				dirty, err := child.DiffFrames(snap)
				if err != nil {
					t.Fatalf("step %d: fork diff vs template snapshot: %v", step, err)
				}
				var want []uint64
				for fr := uint64(0); fr < fuzzPhysSize/FrameSize; fr++ {
					a := fr * FrameSize
					tmpl := make([]byte, FrameSize)
					template.readFrames(a, tmpl)
					if !bytes.Equal(ref.data[a:a+FrameSize], tmpl) {
						want = append(want, fr)
					}
				}
				if len(dirty) != len(want) {
					t.Fatalf("step %d: fork dirty %v, oracle %v", step, dirty, want)
				}
				for i := range dirty {
					if dirty[i] != want[i] {
						t.Fatalf("step %d: fork dirty %v, oracle %v", step, dirty, want)
					}
				}
			}
		}

		// The template saw none of it: identical to its pre-fork
		// snapshot and to the oracle's notion of the original bytes.
		tmplDirty, err := template.DiffFrames(snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(tmplDirty) != 0 {
			t.Fatalf("fork traffic dirtied template frames %v", tmplDirty)
		}
		for fr := uint64(0); fr < 12; fr += 2 {
			got := make([]byte, len(stripe))
			if err := template.Read(PrivKernel, fr*FrameSize+128, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, stripe) {
				t.Fatalf("template frame %d corrupted by fork traffic", fr)
			}
		}
	})
}
