package mem

import "testing"

// BenchmarkMemAccess measures the hot read/write path through region
// validation, sharded locking, and the frame store.
func BenchmarkMemAccess(b *testing.B) {
	m := New(256 << 20)
	if _, err := m.Map("ram", 0, 64<<20, Perms{Kernel: PermRW}); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%1024) * 4096
		if err := m.Write(PrivKernel, addr, buf); err != nil {
			b.Fatal(err)
		}
		if err := m.Read(PrivKernel, addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures a full COW snapshot/dirty/restore
// cycle over a machine-sized Physical with a realistic resident set.
func BenchmarkSnapshotRestore(b *testing.B) {
	m := New(256 << 20)
	if _, err := m.Map("ram", 0, 64<<20, Perms{Kernel: PermRW}); err != nil {
		b.Fatal(err)
	}
	// Materialize a 8 MB resident set.
	fill := make([]byte, 1<<20)
	for i := range fill {
		fill[i] = byte(i)
	}
	for off := uint64(0); off < 8<<20; off += 1 << 20 {
		if err := m.Write(PrivKernel, off, fill); err != nil {
			b.Fatal(err)
		}
	}
	dirty := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Snapshot()
		if err := m.Write(PrivKernel, uint64(i%8)<<20, dirty); err != nil {
			b.Fatal(err)
		}
		if d, err := m.DiffFrames(s); err != nil || len(d) > 1 {
			b.Fatalf("diff = %v, %v", d, err)
		}
		if err := m.Restore(s); err != nil {
			b.Fatal(err)
		}
	}
}
