package mem_test

import (
	"testing"

	"kshot/internal/isa"
	"kshot/internal/mem"
)

// BenchmarkMemAccess measures the memory system under its two real
// consumers: the raw read/write path through region validation, sharded
// locking, and the frame store ("stream"), and a patched kernel
// function executing on top of it under each vCPU engine
// ("workload-under-patch"). The latter pair is the block-dispatch
// engine's headline number: the same trampoline-patched function, the
// same virtual steps, decode-switch oracle vs predecoded blocks.
func BenchmarkMemAccess(b *testing.B) {
	b.Run("stream", benchStream)
	b.Run("workload-under-patch/oracle", func(b *testing.B) { benchWorkloadUnderPatch(b, true) })
	b.Run("workload-under-patch/blocks", func(b *testing.B) { benchWorkloadUnderPatch(b, false) })
}

func benchStream(b *testing.B) {
	m := mem.New(256 << 20)
	if _, err := m.Map("ram", 0, 64<<20, mem.Perms{Kernel: mem.PermRW}); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%1024) * 4096
		if err := m.Write(mem.PrivKernel, addr, buf); err != nil {
			b.Fatal(err)
		}
		if err := m.Read(mem.PrivKernel, addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// workloadSrc is a small syscall-shaped kernel function — argument
// validation, a bounded loop of loads/stores over a table, an
// accumulator — plus the fixed version a patch would install.
const workloadSrc = `
.global table 128
.func compute_fixed
    movi r0, 0
    movi r3, 16
.loop:
    cmpi r3, 0
    jz .done
    load r4, [r1]
    add r4, r2
    store [r1], r4
    add r0, r4
    addi r1, 8
    subi r3, 1
    jmp .loop
.done:
    ret
.endfunc
.func compute
    movi r0, 1
    ret
.endfunc
`

// benchWorkloadUnderPatch builds the image, installs a KShot-style
// trampoline (jmp at compute's entry into the fixed body, written at
// SMM privilege exactly like the patch handler), and then drives the
// patched function through the chosen engine. The trampoline write
// bumps the code epoch once at setup; steady state is what a patched
// kernel serves for the rest of its uptime.
func benchWorkloadUnderPatch(b *testing.B, oracle bool) {
	img, err := isa.Link(isa.MustParse(workloadSrc), isa.LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New(16 << 20)
	if _, err := m.Map("text", img.TextBase, uint64(len(img.Text)), mem.Perms{Kernel: mem.PermRX, SMM: mem.PermRWX}); err != nil {
		b.Fatal(err)
	}
	if err := m.Write(mem.PrivSMM, img.TextBase, img.Text); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("data", img.DataBase, uint64(len(img.Data)), mem.Perms{Kernel: mem.PermRW, SMM: mem.PermRW}); err != nil {
		b.Fatal(err)
	}
	if err := m.Write(mem.PrivSMM, img.DataBase, img.Data); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("stack", 1<<20, 64<<10, mem.Perms{Kernel: mem.PermRW}); err != nil {
		b.Fatal(err)
	}
	stack := uint64(1<<20 + 64<<10)

	entry, _ := img.Symbols.Lookup("compute")
	fixed, _ := img.Symbols.Lookup("compute_fixed")
	table, _ := img.Symbols.Lookup("table")
	rel, err := isa.JmpRel32To(entry.Addr, fixed.Addr)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Write(mem.PrivSMM, entry.Addr, isa.EncodeJmpRel32(rel)); err != nil {
		b.Fatal(err)
	}

	cpu := isa.New(m, mem.PrivKernel)
	call := cpu.Call
	if !oracle {
		call = isa.NewEngine(cpu).Call
	}
	// One warm call: fault in frames, populate the block cache, and pin
	// down the expected result (16 table slots, +7 each, summed — first
	// call sees zeros).
	if v, err := call(entry.Addr, stack, 10000, table.Addr, 7); err != nil || v != 16*7 {
		b.Fatalf("warm call = %d, %v; want %d", v, err, 16*7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := call(entry.Addr, stack, 10000, table.Addr, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures a full COW snapshot/dirty/restore
// cycle over a machine-sized Physical with a realistic resident set.
func BenchmarkSnapshotRestore(b *testing.B) {
	m := mem.New(256 << 20)
	if _, err := m.Map("ram", 0, 64<<20, mem.Perms{Kernel: mem.PermRW}); err != nil {
		b.Fatal(err)
	}
	// Materialize a 8 MB resident set.
	fill := make([]byte, 1<<20)
	for i := range fill {
		fill[i] = byte(i)
	}
	for off := uint64(0); off < 8<<20; off += 1 << 20 {
		if err := m.Write(mem.PrivKernel, off, fill); err != nil {
			b.Fatal(err)
		}
	}
	dirty := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Snapshot()
		if err := m.Write(mem.PrivKernel, uint64(i%8)<<20, dirty); err != nil {
			b.Fatal(err)
		}
		if d, err := m.DiffFrames(s); err != nil || len(d) > 1 {
			b.Fatalf("diff = %v, %v", d, err)
		}
		if err := m.Restore(s); err != nil {
			b.Fatal(err)
		}
	}
}
