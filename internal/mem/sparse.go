package mem

import (
	"bytes"
	"sync/atomic"
)

// Sparse frame store. Physical memory is split into fixed 64 KiB
// frames, materialized on first write; a nil frame slot reads as
// zeros. Frame access is guarded by sharded rwmutexes (shard = frame
// index mod lockShards) so concurrent vCPUs touching disjoint frames
// never serialize on a global lock, while accesses to the same frame
// still serialize and keep the simulator data-race free.
//
// Snapshots are copy-on-write at frame granularity: Snapshot marks
// every live frame shared and records its pointer; the next write to a
// shared frame clones it first. A frame pointer that still matches the
// snapshot therefore proves the frame's bytes are untouched, which is
// what lets DiffFrames find dirty memory without comparing (or even
// allocating) the clean majority.

const (
	// FrameShift is log2 of the frame size.
	FrameShift = 16
	// FrameSize is the allocation and copy-on-write granule of the
	// sparse store.
	FrameSize = 1 << FrameShift

	// lockShards is the number of frame-lock shards. It must be a
	// power of two no larger than 64 (shard sets are tracked in a
	// uint64 bitmask).
	lockShards = 64
)

// frame is one 64 KiB unit of backing storage.
type frame struct {
	// shared is set while at least one snapshot or forked Physical
	// references this frame; writers must clone instead of mutating in
	// place. The flag is monotonic (set-only): a frame can become
	// cross-referenced, but a clone — the only way back to exclusive
	// ownership — is a fresh frame object. It is atomic rather than
	// shard-lock protected because after Fork the same frame object is
	// reachable from Physicals with independent shard locks; atomicity
	// plus monotonicity keeps the invariant race-free: a frame is only
	// ever published to a second owner *after* shared is set, so a
	// writer that observes shared==false holds the frame exclusively.
	shared atomic.Bool
	data   [FrameSize]byte
}

// shardMask returns the bitmask of lock shards covering frames
// [first, last].
func shardMask(first, last uint64) uint64 {
	if last-first+1 >= lockShards {
		return ^uint64(0)
	}
	var mask uint64
	for f := first; f <= last; f++ {
		mask |= 1 << (f & (lockShards - 1))
	}
	return mask
}

// lockMask acquires the shards in mask, in ascending shard order (the
// global lock order that makes multi-shard holders deadlock-free).
func (m *Physical) lockMask(mask uint64, write bool) {
	for i := 0; i < lockShards; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if write {
			m.shards[i].Lock()
		} else {
			m.shards[i].RLock()
		}
	}
}

func (m *Physical) unlockMask(mask uint64, write bool) {
	for i := 0; i < lockShards; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if write {
			m.shards[i].Unlock()
		} else {
			m.shards[i].RUnlock()
		}
	}
}

// frameSpan iterates the frames overlapped by [addr, addr+n) and calls
// fn with the frame index and the intersection [off, off+len) relative
// to the frame base, plus the matching slice of buf.
func frameSpan(addr uint64, buf []byte, fn func(idx, off uint64, part []byte)) {
	n := uint64(len(buf))
	for cur := addr; cur < addr+n; {
		idx := cur >> FrameShift
		end := (idx + 1) << FrameShift
		if end > addr+n {
			end = addr + n
		}
		fn(idx, cur-(idx<<FrameShift), buf[cur-addr:end-addr])
		cur = end
	}
}

// readFrames copies [addr, addr+len(dst)) into dst. The span must be
// pre-validated and in bounds.
func (m *Physical) readFrames(addr uint64, dst []byte) {
	first := addr >> FrameShift
	last := (addr + uint64(len(dst)) - 1) >> FrameShift
	mask := shardMask(first, last)
	m.lockMask(mask, false)
	frameSpan(addr, dst, func(idx, off uint64, part []byte) {
		if fr := m.frames[idx].Load(); fr != nil {
			copy(part, fr.data[off:])
		} else {
			clear(part)
		}
	})
	m.unlockMask(mask, false)
}

// writeFrames copies src to [addr, addr+len(src)), materializing or
// cloning frames as needed. The span must be pre-validated and in
// bounds. Holding every covered shard for the whole span keeps
// multi-frame writes atomic with respect to concurrent readers, like
// the single-mutex store this replaces.
func (m *Physical) writeFrames(addr uint64, src []byte) {
	first := addr >> FrameShift
	last := (addr + uint64(len(src)) - 1) >> FrameShift
	mask := shardMask(first, last)
	m.lockMask(mask, true)
	frameSpan(addr, src, func(idx, off uint64, part []byte) {
		fr := m.frames[idx].Load()
		switch {
		case fr == nil:
			fr = new(frame)
			m.frames[idx].Store(fr)
		case fr.shared.Load():
			cl := new(frame)
			cl.data = fr.data
			fr = cl
			m.frames[idx].Store(fr)
		}
		copy(fr.data[off:], part)
	})
	m.unlockMask(mask, true)
}

// zeroFrames clears [addr, addr+n): wholly covered frames are released
// (a nil slot reads as zeros), partially covered edge frames are
// cleared in place (after a copy-on-write clone if shared).
func (m *Physical) zeroFrames(addr, n uint64) {
	first := addr >> FrameShift
	last := (addr + n - 1) >> FrameShift
	mask := shardMask(first, last)
	m.lockMask(mask, true)
	for cur := addr; cur < addr+n; {
		idx := cur >> FrameShift
		base := idx << FrameShift
		end := base + FrameSize
		if cur == base && end <= addr+n {
			m.frames[idx].Store(nil)
			cur = end
			continue
		}
		if end > addr+n {
			end = addr + n
		}
		fr := m.frames[idx].Load()
		if fr != nil {
			if fr.shared.Load() {
				cl := new(frame)
				cl.data = fr.data
				fr = cl
				m.frames[idx].Store(fr)
			}
			clear(fr.data[cur-base : end-base])
		}
		cur = end
	}
	m.unlockMask(mask, true)
}

// ResidentBytes returns the bytes of backing storage currently
// materialized — the sparse store's actual footprint, as opposed to
// Size(), the simulated physical size.
func (m *Physical) ResidentBytes() uint64 {
	st := m.ResidentStats()
	return st.SharedBytes + st.PrivateBytes
}

// ResidentStats is ResidentBytes split by ownership.
type ResidentStats struct {
	// SharedBytes counts resident frames that may also back a
	// snapshot, the fork template, or sibling forks — the memory a
	// fleet of forks amortizes across targets.
	SharedBytes uint64
	// PrivateBytes counts resident frames this Physical owns
	// exclusively — its copy-on-write dirty set.
	PrivateBytes uint64
}

// ResidentStats returns the materialized footprint split into frames
// shared with snapshots/forks versus frames private to this Physical.
// For a forked System the private figure is the true marginal memory
// cost of that fork.
func (m *Physical) ResidentStats() ResidentStats {
	var st ResidentStats
	for i := range m.frames {
		mu := &m.shards[i&(lockShards-1)]
		mu.RLock()
		fr := m.frames[i].Load()
		if fr != nil {
			if fr.shared.Load() {
				st.SharedBytes += FrameSize
			} else {
				st.PrivateBytes += FrameSize
			}
		}
		mu.RUnlock()
	}
	return st
}

// Snapshot is a frame-granular copy-on-write capture of a Physical's
// contents. Taking one is O(frames) pointer work — no memory is
// copied; the store copies a frame only when it is next written.
// Snapshots stay valid until the Physical is garbage; Restore and
// DiffFrames accept only snapshots of the same Physical.
type Snapshot struct {
	m      *Physical
	frames []*frame // nil entries are all-zero frames
}

// Snapshot captures the current memory contents copy-on-write. It does
// not capture the region table: mappings and permissions evolve
// independently of contents, exactly as physical RAM is independent of
// attribute programming.
func (m *Physical) Snapshot() *Snapshot {
	s := &Snapshot{m: m, frames: make([]*frame, len(m.frames))}
	m.lockMask(^uint64(0), true)
	for i := range m.frames {
		fr := m.frames[i].Load()
		if fr != nil {
			fr.shared.Store(true)
		}
		s.frames[i] = fr
	}
	m.unlockMask(^uint64(0), true)
	return s
}

// Restore rewinds memory contents to the snapshot. The snapshot
// remains valid (and copy-on-write protected), so the same snapshot
// can be restored repeatedly — the reset step of a chaos cycle. A
// forked Physical may also restore a snapshot of any ancestor in its
// fork chain (rewinding the fork to template state); the ancestor is
// unaffected, since restored frames stay copy-on-write.
func (m *Physical) Restore(s *Snapshot) error {
	if s == nil || !m.ownsSnapshot(s) {
		return errSnapshotForeign
	}
	m.lockMask(^uint64(0), true)
	for i, fr := range s.frames {
		if fr != nil {
			fr.shared.Store(true)
		}
		m.frames[i].Store(fr)
	}
	m.unlockMask(^uint64(0), true)
	// Restoring swaps frame contents without going through access(), so
	// any cached code translation may now be stale.
	ep := m.codeGen.Add(1)
	if h := m.intr.Load(); h != nil {
		h.sink.OnCodeEpoch(ep)
	}
	return nil
}

// DiffFrames returns the indices of frames whose bytes differ from the
// snapshot, in ascending order. Frames still sharing the snapshot's
// backing pointer are equal by construction and are skipped without a
// byte compare; only frames written since the snapshot (or written
// before it and zeroed since, etc.) are compared content-wise, so a
// pristine-byte sweep costs O(dirty), not O(physical size). Use
// FrameAddr to map an index to its physical base address.
func (m *Physical) DiffFrames(s *Snapshot) ([]uint64, error) {
	return m.diffFrames(s, 0, m.size)
}

// DiffFramesIn is DiffFrames restricted to frames overlapping
// [base, base+size).
func (m *Physical) DiffFramesIn(s *Snapshot, base, size uint64) ([]uint64, error) {
	return m.diffFrames(s, base, size)
}

var errSnapshotForeign = errSnapshot{}

type errSnapshot struct{}

func (errSnapshot) Error() string { return "mem: snapshot belongs to a different Physical" }

// ownsSnapshot reports whether s was taken of m or of an ancestor in
// m's fork chain. Ancestor snapshots are byte-compatible: Fork
// preserves size and frame geometry, so diffing a fork against its
// template's snapshot is exactly the "what did this fork touch?"
// question the isolation suite asks.
func (m *Physical) ownsSnapshot(s *Snapshot) bool {
	for p := m; p != nil; p = p.origin {
		if s.m == p {
			return true
		}
	}
	return false
}

func (m *Physical) diffFrames(s *Snapshot, base, size uint64) ([]uint64, error) {
	if s == nil || !m.ownsSnapshot(s) {
		return nil, errSnapshotForeign
	}
	if size == 0 {
		return nil, nil
	}
	first := base >> FrameShift
	last := (base + size - 1) >> FrameShift
	if last >= uint64(len(m.frames)) {
		last = uint64(len(m.frames)) - 1
	}
	var dirty []uint64
	m.lockMask(^uint64(0), false)
	for idx := first; idx <= last; idx++ {
		cur := m.frames[idx].Load()
		old := s.frames[idx]
		if cur == old {
			continue // shared frames never mutate, so pointer-equal means byte-equal
		}
		if !framesEqual(cur, old) {
			dirty = append(dirty, idx)
		}
	}
	m.unlockMask(^uint64(0), false)
	return dirty, nil
}

// framesEqual compares two frames, treating nil as all zeros.
func framesEqual(a, b *frame) bool {
	switch {
	case a == nil && b == nil:
		return true
	case a == nil:
		return isZero(b.data[:])
	case b == nil:
		return isZero(a.data[:])
	default:
		return bytes.Equal(a.data[:], b.data[:])
	}
}

var zeroFrameData [FrameSize]byte

func isZero(b []byte) bool { return bytes.Equal(b, zeroFrameData[:]) }

// FrameAddr returns the physical base address of frame idx.
func FrameAddr(idx uint64) uint64 { return idx << FrameShift }
