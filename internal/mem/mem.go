// Package mem models the physical memory of the simulated target
// machine, including page-attribute access control enforced per
// privilege level.
//
// KShot's security argument depends on hardware-enforced answers to the
// question "who may read, write, or execute this physical region?":
// SMRAM is only reachable from System Management Mode, the Enclave Page
// Cache is only reachable from enclave mode, and the reserved KShot
// region is split into read/write, write-only, and execute-only parts
// (mem_RW, mem_W, mem_X) from the kernel's point of view. This package
// enforces exactly those checks in software so that a forbidden access
// faults the same way the hardware would.
//
// Storage is sparse: physical memory is backed by 64 KiB frames
// allocated lazily on first write (see sparse.go), so constructing a
// machine costs nothing proportional to its physical size, reads of
// never-written memory observe zeros without allocating, and
// copy-on-write snapshots share clean frames with the live store.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kshot/internal/faultinject"
)

// Priv is the privilege level performing an access. It mirrors the four
// execution contexts that matter to KShot: untrusted userspace, the
// (possibly compromised) kernel, SGX enclave mode, and SMM.
type Priv int

// Privilege levels, ordered least to most privileged. The ordering is
// informational only: access decisions come from the region attribute
// table, never from numeric comparison, because real SGX/SMM privileges
// are not a strict hierarchy (the kernel cannot read the EPC even
// though it is "more privileged" than an enclave).
const (
	PrivUser Priv = iota + 1
	PrivKernel
	PrivEnclave
	PrivSMM

	numPriv = 5 // array dimension; index 0 unused
)

// String returns the conventional name of the privilege level.
func (p Priv) String() string {
	switch p {
	case PrivUser:
		return "user"
	case PrivKernel:
		return "kernel"
	case PrivEnclave:
		return "enclave"
	case PrivSMM:
		return "smm"
	default:
		return fmt.Sprintf("priv(%d)", int(p))
	}
}

// Access is the kind of memory access being attempted.
type Access int

// Access kinds.
const (
	Read Access = iota + 1
	Write
	Execute
)

// String returns the access kind name.
func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Perm is a permission bitmask attached to a region for one privilege
// level.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX

	PermNone Perm = 0
	PermRW        = PermR | PermW
	PermRX        = PermR | PermX
	PermRWX       = PermR | PermW | PermX
)

// String renders the permission as an "rwx"-style triple.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// allows reports whether the permission admits the given access kind.
func (p Perm) allows(a Access) bool {
	switch a {
	case Read:
		return p&PermR != 0
	case Write:
		return p&PermW != 0
	case Execute:
		return p&PermX != 0
	default:
		return false
	}
}

// Fault describes a rejected or unmapped memory access. It is returned
// as an error from Physical access methods and can be matched with
// errors.As.
type Fault struct {
	Priv   Priv
	Access Access
	Addr   uint64
	Region string // region name, or "" if the address is unmapped
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Region == "" {
		return fmt.Sprintf("memory fault: %s %s at %#x: unmapped", f.Priv, f.Access, f.Addr)
	}
	return fmt.Sprintf("memory fault: %s %s at %#x: denied by region %q", f.Priv, f.Access, f.Addr, f.Region)
}

// Region is a contiguous range of physical memory with per-privilege
// access permissions. Geometry (Name, Base, Size) is immutable after
// Map; the permission table is updated atomically by SetPerms, so
// readers on the access fast path never take a lock for it.
type Region struct {
	Name string
	Base uint64
	Size uint64

	// perms packs the [numPriv]Perm table into one word (8 bits per
	// level) so SetPerms can swap it atomically under concurrent
	// accesses.
	perms atomic.Uint64
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// PermFor returns the permissions the region grants to the given
// privilege level.
func (r *Region) PermFor(p Priv) Perm {
	if p <= 0 || int(p) >= numPriv {
		return PermNone
	}
	return Perm(r.perms.Load() >> (8 * uint(p)))
}

// execAnyMask selects the X bit of every privilege level in the packed
// permission word.
const execAnyMask = uint64(PermX)<<(8*uint(PrivUser)) |
	uint64(PermX)<<(8*uint(PrivKernel)) |
	uint64(PermX)<<(8*uint(PrivEnclave)) |
	uint64(PermX)<<(8*uint(PrivSMM))

// execAny reports whether any privilege level may execute from the
// region — i.e. whether a write into it can change code some CPU might
// run, which is what the code epoch (CodeEpoch) tracks.
func (r *Region) execAny() bool { return r.perms.Load()&execAnyMask != 0 }

// Perms describes per-privilege permissions when creating or updating a
// region. Omitted levels default to no access.
type Perms struct {
	User    Perm
	Kernel  Perm
	Enclave Perm
	SMM     Perm
}

func (ps Perms) pack() uint64 {
	return uint64(ps.User)<<(8*uint(PrivUser)) |
		uint64(ps.Kernel)<<(8*uint(PrivKernel)) |
		uint64(ps.Enclave)<<(8*uint(PrivEnclave)) |
		uint64(ps.SMM)<<(8*uint(PrivSMM))
}

// regionTable is an immutable snapshot of the mapped regions. Map and
// Unmap publish a fresh table (with a bumped epoch) via an atomic
// pointer swap, so the access path reads it without locking and
// RegionCache entries can be validated with a single epoch compare.
type regionTable struct {
	epoch  uint64
	sorted []*Region // by Base, non-overlapping
	byName map[string]*Region
}

// at returns the region containing addr, by binary search.
func (t *regionTable) at(addr uint64) *Region {
	lo, hi := 0, len(t.sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		r := t.sorted[mid]
		switch {
		case addr < r.Base:
			hi = mid
		case addr >= r.End():
			lo = mid + 1
		default:
			return r
		}
	}
	return nil
}

// Physical is the machine's physical memory: a sparse frame store
// overlaid with access-controlled regions. The zero value is unusable;
// construct with New.
//
// Physical is safe for concurrent use. All vCPUs, the SMM handler and
// enclave threads share one Physical. Accesses to disjoint frames
// proceed in parallel (locking is sharded by frame); accesses that
// touch the same frame serialize, so the simulator itself stays
// data-race free even when the simulated kernel races.
type Physical struct {
	size uint64

	tab   atomic.Pointer[regionTable]
	mapMu sync.Mutex // serializes Map/Unmap table swaps

	// Sparse frame store; see sparse.go.
	frames []atomic.Pointer[frame]
	shards [lockShards]sync.RWMutex

	// fi, when non-nil, injects faults into non-SMM writes to the
	// mem_W staging region (bit flips, access faults) for the chaos
	// suite. Nil in production paths.
	fi atomic.Pointer[faultinject.Set]

	// codeGen counts every event after which previously fetched code
	// may be stale: writes or zeroing into an executable region, region
	// map/unmap, permission swaps, and snapshot restores. Predecoded
	// block caches (internal/isa) key on it — an epoch mismatch means
	// "re-decode", which is the entire invalidation protocol.
	codeGen atomic.Uint64

	// intr, when non-nil, receives code-integrity events (writes into
	// executable memory, unattributed code-epoch bumps) for the
	// introspection layer. Published like fi so the disabled path costs
	// one pointer load on the already-rare exec-write branch.
	intr atomic.Pointer[introspectHook]

	// origin, when non-nil, is the Physical this one was forked from
	// (see fork.go). It widens snapshot ownership: a fork accepts
	// snapshots taken of any ancestor, so isolation checks can diff a
	// fork against the template capture.
	origin *Physical
}

// New creates a physical memory of the given size with no mapped
// regions. Every access faults until regions are mapped. No backing
// storage is allocated up front: frames materialize on first write.
func New(size uint64) *Physical {
	m := &Physical{
		size:   size,
		frames: make([]atomic.Pointer[frame], (size+FrameSize-1)>>FrameShift),
	}
	m.tab.Store(&regionTable{byName: map[string]*Region{}})
	return m
}

// Size returns the total physical memory size in bytes.
func (m *Physical) Size() uint64 { return m.size }

// CodeEpoch returns the current code generation: a counter bumped after
// any event that can change bytes some privilege level may execute
// (writes/zeroing into an exec-permitted region, Map/Unmap, SetPerms,
// snapshot Restore). Callers that cache decoded code compare epochs
// before reuse; a mismatch means every cached translation must be
// discarded. The bump is ordered after the memory mutation, so a cache
// populated from a racing read of the old bytes is invalidated by the
// very bump that follows the write.
func (m *Physical) CodeEpoch() uint64 { return m.codeGen.Load() }

// Map adds a region. It returns an error if the range is out of bounds,
// overlaps an existing region, or reuses the name of a mapped region
// (names key Unmap/Region/SetPerms, so they must be unique).
func (m *Physical) Map(name string, base, size uint64, ps Perms) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("map %q: zero size", name)
	}
	if base+size < base || base+size > m.size {
		return nil, fmt.Errorf("map %q: range [%#x,%#x) exceeds physical memory of %#x bytes",
			name, base, base+size, m.size)
	}
	r := &Region{Name: name, Base: base, Size: size}
	r.perms.Store(ps.pack())

	m.mapMu.Lock()
	defer m.mapMu.Unlock()
	tab := m.tab.Load()
	if _, ok := tab.byName[name]; ok {
		return nil, fmt.Errorf("map %q: region name already in use", name)
	}
	for _, other := range tab.sorted {
		if base < other.End() && other.Base < r.End() {
			return nil, fmt.Errorf("map %q: overlaps region %q [%#x,%#x)",
				name, other.Name, other.Base, other.End())
		}
	}
	// Publish a fresh table with r inserted in Base order.
	pos := 0
	for pos < len(tab.sorted) && tab.sorted[pos].Base < base {
		pos++
	}
	sorted := make([]*Region, 0, len(tab.sorted)+1)
	sorted = append(sorted, tab.sorted[:pos]...)
	sorted = append(sorted, r)
	sorted = append(sorted, tab.sorted[pos:]...)
	m.tab.Store(&regionTable{
		epoch:  tab.epoch + 1,
		sorted: sorted,
		byName: withRegion(tab.byName, r),
	})
	m.codeGen.Add(1)
	return r, nil
}

// Unmap removes the named region. Its memory contents are preserved but
// become unreachable until remapped.
func (m *Physical) Unmap(name string) error {
	m.mapMu.Lock()
	defer m.mapMu.Unlock()
	tab := m.tab.Load()
	r, ok := tab.byName[name]
	if !ok {
		return fmt.Errorf("unmap %q: no such region", name)
	}
	sorted := make([]*Region, 0, len(tab.sorted)-1)
	for _, other := range tab.sorted {
		if other != r {
			sorted = append(sorted, other)
		}
	}
	byName := make(map[string]*Region, len(tab.byName)-1)
	for n, other := range tab.byName {
		if n != name {
			byName[n] = other
		}
	}
	m.tab.Store(&regionTable{epoch: tab.epoch + 1, sorted: sorted, byName: byName})
	m.codeGen.Add(1)
	return nil
}

func withRegion(byName map[string]*Region, r *Region) map[string]*Region {
	out := make(map[string]*Region, len(byName)+1)
	for n, other := range byName {
		out[n] = other
	}
	out[r.Name] = r
	return out
}

// Region returns the named region, or nil if absent.
func (m *Physical) Region(name string) *Region {
	return m.tab.Load().byName[name]
}

// Regions returns a snapshot of all mapped regions in address order.
func (m *Physical) Regions() []*Region {
	tab := m.tab.Load()
	out := make([]*Region, len(tab.sorted))
	copy(out, tab.sorted)
	return out
}

// SetPerms atomically replaces the permission table of the named
// region. This models firmware/boot-time attribute changes and the
// SMRAM lock; callers in the simulation are trusted code (boot or SMM).
func (m *Physical) SetPerms(name string, ps Perms) error {
	// mapMu keeps the name lookup stable against a concurrent Unmap of
	// the same name; the permission swap itself is a single atomic
	// store visible to in-flight accesses without any lock.
	m.mapMu.Lock()
	defer m.mapMu.Unlock()
	r, ok := m.tab.Load().byName[name]
	if !ok {
		return fmt.Errorf("set perms %q: no such region", name)
	}
	r.perms.Store(ps.pack())
	ep := m.codeGen.Add(1)
	if h := m.intr.Load(); h != nil {
		h.sink.OnCodeEpoch(ep)
	}
	return nil
}

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted on helper writes into mem_W.
func (m *Physical) SetFaultInjector(fi *faultinject.Set) {
	m.fi.Store(fi)
}

// Introspector receives code-integrity events from the memory layer.
// mem deliberately does not import the introspect package (introspect
// imports mem for its frame-diff sweeps); introspect.Channel satisfies
// this interface and core wires it in.
type Introspector interface {
	// OnExecWrite fires after a write (or zero) lands in executable
	// memory; epoch is the code epoch the write bumped to.
	OnExecWrite(addr uint64, n int, epoch uint64)

	// OnCodeEpoch fires after the code epoch moves without byte
	// attribution (SetPerms, snapshot Restore).
	OnCodeEpoch(epoch uint64)
}

// introspectHook boxes the interface so it can live in an
// atomic.Pointer — the same publication pattern as the fault set, so
// installing or removing an introspector never takes a lock the access
// fast path would notice.
type introspectHook struct{ sink Introspector }

// SetIntrospector installs (or, with nil, removes) the introspection
// sink. The disabled-path cost is one atomic pointer load on the
// already-rare executable-write branch and on mapping changes; data
// reads and writes never see it.
func (m *Physical) SetIntrospector(i Introspector) {
	if i == nil {
		m.intr.Store(nil)
		return
	}
	m.intr.Store(&introspectHook{sink: i})
}

// validateSpan checks that every byte of [addr, addr+n) is mapped with
// the permission the access needs, walking adjacent regions. It returns
// the region containing addr on success. Partial effects never occur:
// the whole span validates before any byte moves.
func (m *Physical) validateSpan(tab *regionTable, priv Priv, kind Access, addr, n uint64) (*Region, error) {
	r := tab.at(addr)
	if r == nil {
		return nil, &Fault{Priv: priv, Access: kind, Addr: addr}
	}
	if !r.PermFor(priv).allows(kind) {
		return nil, &Fault{Priv: priv, Access: kind, Addr: addr, Region: r.Name}
	}
	if addr+n <= r.End() {
		// Fast path: the span is contained in one region.
		return r, nil
	}
	for cur := r.End(); cur < addr+n; {
		next := tab.at(cur)
		if next == nil {
			return nil, &Fault{Priv: priv, Access: kind, Addr: cur}
		}
		if !next.PermFor(priv).allows(kind) {
			return nil, &Fault{Priv: priv, Access: kind, Addr: cur, Region: next.Name}
		}
		cur = next.End()
	}
	return r, nil
}

// access validates and performs a read (dst != nil) or write
// (src != nil) of n bytes at addr on behalf of priv. Accesses may span
// multiple adjacent regions; every byte must be mapped and permitted.
func (m *Physical) access(priv Priv, kind Access, addr uint64, dst, src []byte) error {
	n := uint64(len(dst))
	if src != nil {
		n = uint64(len(src))
	}
	if n == 0 {
		return nil
	}
	if addr+n < addr || addr+n > m.size {
		return &Fault{Priv: priv, Access: kind, Addr: addr}
	}

	tab := m.tab.Load()
	r, err := m.validateSpan(tab, priv, kind, addr, n)
	if err != nil {
		return err
	}

	// Fault injection: the helper's deposits into the mem_W staging
	// region are the hand-off buffer KShot must survive losing. SMM's
	// own accesses are exempt — the handler is trusted firmware.
	if src != nil && priv != PrivSMM && r.Name == RegionMemW {
		if fi := m.fi.Load(); fi != nil {
			if fi.Fire(faultinject.MemWFault) {
				return &Fault{Priv: priv, Access: kind, Addr: addr, Region: r.Name}
			}
			if f, ok := fi.Take(faultinject.MemWCorrupt); ok {
				corrupted := append([]byte(nil), src...)
				f.FlipBit(corrupted)
				src = corrupted
			}
		}
	}

	if dst != nil {
		m.readFrames(addr, dst)
	} else {
		m.writeFrames(addr, src)
		if m.spanExecutable(tab, r, addr, n) {
			ep := m.codeGen.Add(1)
			if h := m.intr.Load(); h != nil {
				h.sink.OnExecWrite(addr, int(n), ep)
			}
		}
	}
	return nil
}

// spanExecutable reports whether any region overlapped by the
// already-validated span [addr, addr+n) starting in r grants execute to
// some privilege level. The single-region fast path is one atomic load
// and a mask — cheap enough for every store instruction the interpreter
// retires.
func (m *Physical) spanExecutable(tab *regionTable, r *Region, addr, n uint64) bool {
	if r.execAny() {
		return true
	}
	for cur := r.End(); cur < addr+n; {
		next := tab.at(cur)
		if next == nil {
			return false // unreachable: validateSpan walked this same table
		}
		if next.execAny() {
			return true
		}
		cur = next.End()
	}
	return false
}

// Read copies len(dst) bytes from addr into dst on behalf of priv.
func (m *Physical) Read(priv Priv, addr uint64, dst []byte) error {
	return m.access(priv, Read, addr, dst, nil)
}

// Write copies src into memory at addr on behalf of priv.
func (m *Physical) Write(priv Priv, addr uint64, src []byte) error {
	return m.access(priv, Write, addr, nil, src)
}

// Fetch copies len(dst) instruction bytes from addr into dst on behalf
// of priv, checking execute permission. It is used by the CPU
// interpreter's instruction fetch.
func (m *Physical) Fetch(priv Priv, addr uint64, dst []byte) error {
	return m.access(priv, Execute, addr, dst, nil)
}

// RegionCache is a caller-owned single-entry cache for region lookup,
// used by FetchCached. Each vCPU keeps one: the interpreter's fetch
// loop hits the same region (kernel.text) almost every instruction, so
// the binary search and span walk are skipped while the cached region
// still covers the access and no Map/Unmap has occurred since (epoch
// compare). Permissions are re-read on every use, so SetPerms takes
// effect immediately even on cache hits. The zero value is an empty
// cache. A RegionCache must not be shared between goroutines.
type RegionCache struct {
	epoch uint64
	r     *Region
}

// FetchCached is Fetch with a region-lookup cache. Semantics are
// identical to Fetch; only the lookup cost differs.
func (m *Physical) FetchCached(priv Priv, addr uint64, dst []byte, c *RegionCache) error {
	n := uint64(len(dst))
	if n == 0 {
		return nil
	}
	if r := c.r; r != nil && addr >= r.Base && addr+n >= addr && addr+n <= r.End() {
		tab := m.tab.Load()
		if tab.epoch == c.epoch {
			if !r.PermFor(priv).allows(Execute) {
				return &Fault{Priv: priv, Access: Execute, Addr: addr, Region: r.Name}
			}
			m.readFrames(addr, dst)
			return nil
		}
	}
	if err := m.access(priv, Execute, addr, dst, nil); err != nil {
		return err
	}
	tab := m.tab.Load()
	if r := tab.at(addr); r != nil && addr+n <= r.End() {
		c.r, c.epoch = r, tab.epoch
	}
	return nil
}

// Zero clears n bytes at addr on behalf of priv. It validates exactly
// like a Write of n zero bytes, but wholly covered frames are released
// back to the sparse store instead of being cleared byte by byte, so
// scrubbing a large range (a KUP-style whole-kernel replacement) is
// cheap and shrinks resident memory.
func (m *Physical) Zero(priv Priv, addr, n uint64) error {
	if n == 0 {
		return nil
	}
	if addr+n < addr || addr+n > m.size {
		return &Fault{Priv: priv, Access: Write, Addr: addr}
	}
	tab := m.tab.Load()
	r, err := m.validateSpan(tab, priv, Write, addr, n)
	if err != nil {
		return err
	}
	if r.Name == RegionMemW && priv != PrivSMM && m.fi.Load() != nil {
		// Keep injection semantics exactly those of an equivalent
		// Write; the chaos suite never exercises Zero on mem_W, but
		// correctness must not depend on that.
		return m.Write(priv, addr, make([]byte, n))
	}
	m.zeroFrames(addr, n)
	if m.spanExecutable(tab, r, addr, n) {
		ep := m.codeGen.Add(1)
		if h := m.intr.Load(); h != nil {
			h.sink.OnExecWrite(addr, int(n), ep)
		}
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Physical) ReadU64(priv Priv, addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.Read(priv, addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Physical) WriteU64(priv Priv, addr uint64, v uint64) error {
	var b [8]byte
	putLEU64(b[:], v)
	return m.Write(priv, addr, b[:])
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLEU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
