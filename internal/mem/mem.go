// Package mem models the physical memory of the simulated target
// machine, including page-attribute access control enforced per
// privilege level.
//
// KShot's security argument depends on hardware-enforced answers to the
// question "who may read, write, or execute this physical region?":
// SMRAM is only reachable from System Management Mode, the Enclave Page
// Cache is only reachable from enclave mode, and the reserved KShot
// region is split into read/write, write-only, and execute-only parts
// (mem_RW, mem_W, mem_X) from the kernel's point of view. This package
// enforces exactly those checks in software so that a forbidden access
// faults the same way the hardware would.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"kshot/internal/faultinject"
)

// Priv is the privilege level performing an access. It mirrors the four
// execution contexts that matter to KShot: untrusted userspace, the
// (possibly compromised) kernel, SGX enclave mode, and SMM.
type Priv int

// Privilege levels, ordered least to most privileged. The ordering is
// informational only: access decisions come from the region attribute
// table, never from numeric comparison, because real SGX/SMM privileges
// are not a strict hierarchy (the kernel cannot read the EPC even
// though it is "more privileged" than an enclave).
const (
	PrivUser Priv = iota + 1
	PrivKernel
	PrivEnclave
	PrivSMM

	numPriv = 5 // array dimension; index 0 unused
)

// String returns the conventional name of the privilege level.
func (p Priv) String() string {
	switch p {
	case PrivUser:
		return "user"
	case PrivKernel:
		return "kernel"
	case PrivEnclave:
		return "enclave"
	case PrivSMM:
		return "smm"
	default:
		return fmt.Sprintf("priv(%d)", int(p))
	}
}

// Access is the kind of memory access being attempted.
type Access int

// Access kinds.
const (
	Read Access = iota + 1
	Write
	Execute
)

// String returns the access kind name.
func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Perm is a permission bitmask attached to a region for one privilege
// level.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX

	PermNone Perm = 0
	PermRW        = PermR | PermW
	PermRX        = PermR | PermX
	PermRWX       = PermR | PermW | PermX
)

// String renders the permission as an "rwx"-style triple.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// allows reports whether the permission admits the given access kind.
func (p Perm) allows(a Access) bool {
	switch a {
	case Read:
		return p&PermR != 0
	case Write:
		return p&PermW != 0
	case Execute:
		return p&PermX != 0
	default:
		return false
	}
}

// Fault describes a rejected or unmapped memory access. It is returned
// as an error from Physical access methods and can be matched with
// errors.As.
type Fault struct {
	Priv   Priv
	Access Access
	Addr   uint64
	Region string // region name, or "" if the address is unmapped
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Region == "" {
		return fmt.Sprintf("memory fault: %s %s at %#x: unmapped", f.Priv, f.Access, f.Addr)
	}
	return fmt.Sprintf("memory fault: %s %s at %#x: denied by region %q", f.Priv, f.Access, f.Addr, f.Region)
}

// Region is a contiguous range of physical memory with per-privilege
// access permissions.
type Region struct {
	Name string
	Base uint64
	Size uint64

	perms [numPriv]Perm
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// PermFor returns the permissions the region grants to the given
// privilege level.
func (r *Region) PermFor(p Priv) Perm {
	if p <= 0 || int(p) >= numPriv {
		return PermNone
	}
	return r.perms[p]
}

// Perms describes per-privilege permissions when creating or updating a
// region. Omitted levels default to no access.
type Perms struct {
	User    Perm
	Kernel  Perm
	Enclave Perm
	SMM     Perm
}

func (ps Perms) table() [numPriv]Perm {
	var t [numPriv]Perm
	t[PrivUser] = ps.User
	t[PrivKernel] = ps.Kernel
	t[PrivEnclave] = ps.Enclave
	t[PrivSMM] = ps.SMM
	return t
}

// Physical is the machine's physical memory: a flat byte array overlaid
// with access-controlled regions. The zero value is unusable; construct
// with New.
//
// Physical is safe for concurrent use. All vCPUs, the SMM handler and
// enclave threads share one Physical.
type Physical struct {
	mu      sync.RWMutex
	data    []byte
	regions []*Region // sorted by Base, non-overlapping

	// fi, when non-nil, injects faults into non-SMM writes to the
	// mem_W staging region (bit flips, access faults) for the chaos
	// suite. Nil in production paths.
	fi *faultinject.Set
}

// New creates a physical memory of the given size with no mapped
// regions. Every access faults until regions are mapped.
func New(size uint64) *Physical {
	return &Physical{data: make([]byte, size)}
}

// Size returns the total physical memory size in bytes.
func (m *Physical) Size() uint64 { return uint64(len(m.data)) }

// Map adds a region. It returns an error if the range is out of bounds
// or overlaps an existing region.
func (m *Physical) Map(name string, base, size uint64, ps Perms) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("map %q: zero size", name)
	}
	if base+size < base || base+size > uint64(len(m.data)) {
		return nil, fmt.Errorf("map %q: range [%#x,%#x) exceeds physical memory of %#x bytes",
			name, base, base+size, len(m.data))
	}
	r := &Region{Name: name, Base: base, Size: size, perms: ps.table()}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, other := range m.regions {
		if base < other.End() && other.Base < r.End() {
			return nil, fmt.Errorf("map %q: overlaps region %q [%#x,%#x)",
				name, other.Name, other.Base, other.End())
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return r, nil
}

// Unmap removes the named region. Its memory contents are preserved but
// become unreachable until remapped.
func (m *Physical) Unmap(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.regions {
		if r.Name == name {
			m.regions = append(m.regions[:i], m.regions[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("unmap %q: no such region", name)
}

// Region returns the named region, or nil if absent.
func (m *Physical) Region(name string) *Region {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Regions returns a snapshot of all mapped regions in address order.
func (m *Physical) Regions() []*Region {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// SetPerms atomically replaces the permission table of the named
// region. This models firmware/boot-time attribute changes and the
// SMRAM lock; callers in the simulation are trusted code (boot or SMM).
func (m *Physical) SetPerms(name string, ps Perms) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.regions {
		if r.Name == name {
			r.perms = ps.table()
			return nil
		}
	}
	return fmt.Errorf("set perms %q: no such region", name)
}

// SetFaultInjector installs (or, with nil, removes) the fault
// injection set consulted on helper writes into mem_W.
func (m *Physical) SetFaultInjector(fi *faultinject.Set) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fi = fi
}

// regionAt returns the region containing addr. Caller must hold mu.
func (m *Physical) regionAt(addr uint64) *Region {
	// Binary search over sorted, non-overlapping regions.
	lo, hi := 0, len(m.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := m.regions[mid]
		switch {
		case addr < r.Base:
			hi = mid
		case addr >= r.End():
			lo = mid + 1
		default:
			return r
		}
	}
	return nil
}

// access validates and performs a read (dst != nil) or write
// (src != nil) of n bytes at addr on behalf of priv. Accesses may span
// multiple adjacent regions; every byte must be mapped and permitted.
func (m *Physical) access(priv Priv, kind Access, addr uint64, dst, src []byte) error {
	n := uint64(len(dst))
	if src != nil {
		n = uint64(len(src))
	}
	if n == 0 {
		return nil
	}
	if addr+n < addr || addr+n > uint64(len(m.data)) {
		return &Fault{Priv: priv, Access: kind, Addr: addr}
	}

	// Reads share the lock; writes take it exclusively so concurrent
	// vCPU accesses to overlapping bytes serialize per access (the
	// simulated kernel can still exhibit instruction-level races, but
	// the simulator itself stays data-race free).
	if src != nil {
		m.mu.Lock()
		defer m.mu.Unlock()
	} else {
		m.mu.RLock()
		defer m.mu.RUnlock()
	}

	// Validate the whole span first so partial effects never occur.
	for cur := addr; cur < addr+n; {
		r := m.regionAt(cur)
		if r == nil {
			return &Fault{Priv: priv, Access: kind, Addr: cur}
		}
		if !r.PermFor(priv).allows(kind) {
			return &Fault{Priv: priv, Access: kind, Addr: cur, Region: r.Name}
		}
		cur = r.End()
	}

	// Fault injection: the helper's deposits into the mem_W staging
	// region are the hand-off buffer KShot must survive losing. SMM's
	// own accesses are exempt — the handler is trusted firmware.
	if src != nil && priv != PrivSMM && m.fi != nil {
		if r := m.regionAt(addr); r != nil && r.Name == RegionMemW {
			if m.fi.Fire(faultinject.MemWFault) {
				return &Fault{Priv: priv, Access: kind, Addr: addr, Region: r.Name}
			}
			if f, ok := m.fi.Take(faultinject.MemWCorrupt); ok {
				corrupted := append([]byte(nil), src...)
				f.FlipBit(corrupted)
				src = corrupted
			}
		}
	}

	if dst != nil {
		copy(dst, m.data[addr:addr+n])
	} else {
		copy(m.data[addr:addr+n], src)
	}
	return nil
}

// Read copies len(dst) bytes from addr into dst on behalf of priv.
func (m *Physical) Read(priv Priv, addr uint64, dst []byte) error {
	return m.access(priv, Read, addr, dst, nil)
}

// Write copies src into memory at addr on behalf of priv.
func (m *Physical) Write(priv Priv, addr uint64, src []byte) error {
	return m.access(priv, Write, addr, nil, src)
}

// Fetch copies len(dst) instruction bytes from addr into dst on behalf
// of priv, checking execute permission. It is used by the CPU
// interpreter's instruction fetch.
func (m *Physical) Fetch(priv Priv, addr uint64, dst []byte) error {
	return m.access(priv, Execute, addr, dst, nil)
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Physical) ReadU64(priv Priv, addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.Read(priv, addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Physical) WriteU64(priv Priv, addr uint64, v uint64) error {
	var b [8]byte
	putLEU64(b[:], v)
	return m.Write(priv, addr, b[:])
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLEU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
