package mem

import "testing"

// BenchmarkFork measures the constant-ish cost of a COW fork of a
// default-size Physical with a modest resident set: the region-table
// copy, the slot-slice allocation, and one shared-flag pass over the
// resident frames. No frame data is copied.
func BenchmarkFork(b *testing.B) {
	m := New(256 << 20)
	if _, err := m.Map("ram", 0, 64*FrameSize, Perms{Kernel: PermRW}); err != nil {
		b.Fatal(err)
	}
	one := []byte{1}
	for f := uint64(0); f < 64; f++ {
		if err := m.Write(PrivKernel, f*FrameSize, one); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Fork()
	}
}
