// Package pipeline is KShot's concurrent multi-CVE patch manager. It
// fans Stage 1 of Figure 2 (fetching encrypted patches) out across a
// worker pool, coalesces the fetched members into batches, and hands
// each batch to a backend that runs Stages 2–4 (enclave prepare-many,
// staging, one SMI for the whole batch). Delivery is strictly in
// request order — enclave preparation places members at a running
// mem_X cursor, so batch k+1's placement assumes batch k applied
// first — but fetching for later batches overlaps the preparation and
// delivery of earlier ones, which is where the wall-clock win over
// serial Apply comes from. The OS-pause win comes from the batch SMI
// itself: one world switch and one SMM key generation per batch
// instead of per patch.
//
// Failure handling is per-member:
//
//   - a member the backend marks with a retryable error (the SMM
//     activeness check refusing a live target) is retried alone with
//     exponential backoff, without repeating its batch mates;
//   - a member that fails inside a batch for any other reason (bad
//     verification, preparation failure) degrades to one per-patch
//     delivery attempt, so a single poisoned member cannot suppress
//     its batch mates or hide which member was at fault;
//   - a batch whose delivery fails structurally (SMI-level error)
//     degrades to per-patch deliveries for every member.
//
// The package knows nothing about SGX, SMM, or the network: the
// Backend interface carries all of that, which keeps the concurrency
// logic testable with in-memory fakes.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/obs"
	"kshot/internal/timing"
)

// Defaults for Config zero values.
const (
	DefaultBatchSize  = 8
	DefaultWorkers    = 4
	DefaultMaxRetries = 3
	DefaultBackoff    = 200 * time.Microsecond
)

// Config tunes a pipeline run. The zero value gets the defaults above.
type Config struct {
	// BatchSize is the maximum number of patches delivered under a
	// single SMI.
	BatchSize int

	// Workers is the number of concurrent batch fetchers.
	Workers int

	// MaxRetries bounds per-member redelivery attempts after a
	// retryable refusal. Negative disables retries entirely.
	MaxRetries int

	// Backoff is the base real-time delay before the first retry; it
	// doubles per attempt.
	Backoff time.Duration

	// Retryable classifies member delivery errors worth retrying
	// (e.g. the activeness check refusing a live target). Nil means
	// nothing is retryable.
	Retryable func(error) bool

	// Clock paces retry backoff and injected stalls. Nil means real
	// time; tests inject timing.FakeWall so runs never depend on the
	// host clock.
	Clock timing.WallClock

	// FI, when non-nil, injects faults at the pipeline's own seams:
	// worker stalls before fetches and context cancellation at stage
	// boundaries.
	FI *faultinject.Set

	// Obs, when non-nil, records pipeline-level metrics (batch sizes,
	// delivery-mode counters, per-member attempt counts) and batch
	// markers in the trace.
	Obs *obs.Hooks

	// SyncFetch runs each batch's fetch inline, immediately before its
	// delivery, instead of overlapping fetches with earlier deliveries.
	// The wall-clock pipelining win is deliberately given up: with a
	// single goroutine touching every injection point, a seeded fault
	// schedule interleaves at identical call indices on every run,
	// which is what replayable chaos testing needs.
	SyncFetch bool
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	switch {
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	case c.MaxRetries == 0:
		c.MaxRetries = DefaultMaxRetries
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.Retryable == nil {
		c.Retryable = func(error) bool { return false }
	}
	if c.Clock == nil {
		c.Clock = timing.Real()
	}
	return c
}

// Member is one CVE moving through the pipeline. The backend fills
// Stages as the member passes each stage; Err holds the member's final
// failure (nil on success).
type Member struct {
	CVE    string
	Blob   []byte // fetched encrypted patch
	Stages timing.Stages

	Err      error
	Attempts int  // delivery attempts (batch + per-patch)
	Fallback bool // delivered (or re-attempted) via per-patch SMI
}

// Fetched is one CVE's outcome from Backend.FetchMany.
type Fetched struct {
	CVE  string
	Blob []byte
	Time time.Duration // virtual fetch stage time
	Err  error
}

// Backend runs the platform-specific stages for the pipeline.
type Backend interface {
	// FetchMany downloads the encrypted patches for cves. It returns
	// one entry per CVE in order; per-CVE failures go in Fetched.Err,
	// the error return is for whole-call failures.
	FetchMany(ctx context.Context, cves []string) ([]Fetched, error)

	// DeliverBatch prepares and applies the members under a single
	// SMI. Per-member outcomes (including refusals) are recorded on
	// the members' Err fields; the error return means the batch as a
	// whole failed structurally and nothing can be said about members.
	DeliverBatch(ctx context.Context, members []*Member) error

	// DeliverOne prepares and applies a single member under its own
	// SMI, returning its outcome.
	DeliverOne(ctx context.Context, m *Member) error
}

// Result summarizes a pipeline run.
type Result struct {
	// Members holds every requested CVE in request order, each with
	// its final outcome.
	Members []*Member

	// Batches counts multi-member SMI deliveries; Singles counts
	// per-patch SMI deliveries (single-member batches, retries, and
	// degraded members).
	Batches int
	Singles int

	// Retries counts redeliveries after retryable refusals; Degraded
	// counts members that fell back from a batch to a per-patch SMI.
	Retries  int
	Degraded int
}

// Run drives the full pipeline for cves and returns per-member
// outcomes. The returned error is non-nil only for cancellation:
// member-level failures are reported on the members so one bad patch
// never hides the rest.
//
// On cancellation the pipeline stops cleanly between deliveries:
// members already applied stay applied (live patching is not
// transactional across patches), unprocessed members get ctx's error,
// and no SMI is in flight when Run returns.
func Run(ctx context.Context, b Backend, cves []string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	members := make([]*Member, len(cves))
	for i, cve := range cves {
		members[i] = &Member{CVE: cve}
	}
	res := &Result{Members: members}
	if len(members) == 0 {
		return res, nil
	}
	if ob := cfg.Obs; ob != nil {
		// Metrics are published once per run, on every return path, so
		// counter totals always match the Result the caller sees.
		defer func() {
			ob.Count(obs.CtrBatches, int64(res.Batches))
			ob.Count(obs.CtrSingles, int64(res.Singles))
			ob.Count(obs.CtrRetries, int64(res.Retries))
			ob.Count(obs.CtrDegraded, int64(res.Degraded))
			for _, m := range members {
				if m.Attempts > 0 {
					ob.Observe(obs.HistAttempts, float64(m.Attempts))
				}
			}
		}()
	}

	// Injected cancellation wraps the caller's context so a planned
	// fault at any stage boundary exercises the same cleanup paths a
	// real caller-side cancellation would.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	boundary := func() {
		if cfg.FI.Fire(faultinject.PipelineCancel) {
			cancel()
		}
	}

	var batches [][]*Member
	for i := 0; i < len(members); i += cfg.BatchSize {
		end := i + cfg.BatchSize
		if end > len(members) {
			end = len(members)
		}
		batches = append(batches, members[i:end])
	}

	// Fetch fan-out: a worker pool pulls batch indices and fetches
	// each batch's blobs concurrently. Results land in per-batch
	// buffered channels so no worker ever blocks on the deliverer.
	type fetchOut struct {
		fetched []Fetched
		err     error
	}
	fetchBatch := func(i int) fetchOut {
		// Injected worker stall: the fetch worker wedges for a while
		// before issuing its call (a slow or contended helper thread).
		if d, ok := cfg.FI.Delay(faultinject.PipelineStall); ok {
			cfg.Clock.Sleep(ctx, d)
		}
		ids := make([]string, len(batches[i]))
		for j, m := range batches[i] {
			ids[j] = m.CVE
		}
		f, err := b.FetchMany(ctx, ids)
		return fetchOut{f, err}
	}
	var outs []chan fetchOut
	if !cfg.SyncFetch {
		outs = make([]chan fetchOut, len(batches))
		for i := range outs {
			outs[i] = make(chan fetchOut, 1)
		}
		idxCh := make(chan int)
		workers := cfg.Workers
		if workers > len(batches) {
			workers = len(batches)
		}
		for w := 0; w < workers; w++ {
			go func() {
				for i := range idxCh {
					outs[i] <- fetchBatch(i)
				}
			}()
		}
		go func() {
			defer close(idxCh)
			for i := range batches {
				select {
				case idxCh <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Delivery: strictly in request order (the enclave prepares each
	// batch at the cursor the previous batch left behind).
	for i, batch := range batches {
		boundary() // fetch → delivery hand-off
		var fo fetchOut
		if cfg.SyncFetch {
			if err := ctx.Err(); err != nil {
				markUnprocessed(batches[i:], err)
				return res, err
			}
			fo = fetchBatch(i)
		} else {
			select {
			case fo = <-outs[i]:
			case <-ctx.Done():
				markUnprocessed(batches[i:], ctx.Err())
				return res, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			markUnprocessed(batches[i:], err)
			return res, err
		}
		if fo.err != nil {
			for _, m := range batch {
				m.Err = fo.err
			}
			continue
		}
		for j, f := range fo.fetched {
			if j >= len(batch) {
				break
			}
			m := batch[j]
			m.Blob = f.Blob
			m.Stages.Fetch = f.Time
			m.Err = f.Err
		}

		var deliverable []*Member
		for _, m := range batch {
			if m.Err == nil && m.Blob != nil {
				deliverable = append(deliverable, m)
			}
		}
		if len(deliverable) == 0 {
			continue
		}
		if ob := cfg.Obs; ob != nil {
			ob.Observe(obs.HistBatchSize, float64(len(deliverable)))
			ob.Point(obs.PhaseBatch, fmt.Sprintf("batch[%d]:%d", i, len(deliverable)), -1)
		}
		boundary() // pre-delivery

		if len(deliverable) == 1 {
			m := deliverable[0]
			m.Attempts++
			m.Err = b.DeliverOne(ctx, m)
			res.Singles++
		} else {
			res.Batches++
			for _, m := range deliverable {
				m.Attempts++
			}
			if err := b.DeliverBatch(ctx, deliverable); err != nil {
				// Structural batch failure: graceful degradation to
				// per-patch SMIs for every member.
				for _, m := range deliverable {
					if cerr := ctx.Err(); cerr != nil {
						markUnprocessed(batches[i:], cerr)
						return res, cerr
					}
					deliverFallback(ctx, b, m, res)
				}
			}
		}

		boundary() // post-delivery, pre-retry

		// Per-member outcomes: retry refused members alone; give batch
		// verification failures one per-patch attempt of their own.
		for _, m := range deliverable {
			if cerr := ctx.Err(); cerr != nil {
				markUnprocessed(batches[i:], cerr)
				return res, cerr
			}
			switch {
			case m.Err == nil:
			case cfg.Retryable(m.Err):
				retryMember(ctx, b, m, cfg, res)
			case !m.Fallback && m.Attempts == 1:
				deliverFallback(ctx, b, m, res)
				if m.Err != nil && cfg.Retryable(m.Err) {
					retryMember(ctx, b, m, cfg, res)
				}
			}
		}
	}
	return res, ctx.Err()
}

// deliverFallback re-attempts a member via its own per-patch SMI after
// a batch-path failure.
func deliverFallback(ctx context.Context, b Backend, m *Member, res *Result) {
	m.Fallback = true
	m.Attempts++
	m.Err = b.DeliverOne(ctx, m)
	res.Singles++
	res.Degraded++
}

// retryMember redelivers a refused member with exponential backoff
// until it lands, the error stops being retryable, or attempts run
// out. Only this member is redelivered — its batch mates are done.
func retryMember(ctx context.Context, b Backend, m *Member, cfg Config, res *Result) {
	bo := timing.NewBackoff(cfg.Clock, cfg.Backoff, 0)
	for attempt := 0; attempt < cfg.MaxRetries && m.Err != nil && cfg.Retryable(m.Err); attempt++ {
		// The backoff sleep honors cancellation: a cancelled context
		// interrupts the wait immediately instead of letting a long
		// backoff pin the run.
		if !bo.Sleep(ctx) {
			m.Err = ctx.Err()
			return
		}
		m.Attempts++
		m.Err = b.DeliverOne(ctx, m)
		res.Singles++
		res.Retries++
	}
}

// markUnprocessed records ctx's error on members that never got a
// delivery attempt, so a canceled run still reports every member.
func markUnprocessed(batches [][]*Member, err error) {
	for _, batch := range batches {
		for _, m := range batch {
			if m.Err == nil && m.Attempts == 0 {
				m.Err = err
			}
		}
	}
}
