package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// errRefused stands in for the SMM activeness check refusing a live
// target; errPoisoned for a verification failure.
var (
	errRefused  = errors.New("target active")
	errPoisoned = errors.New("verification failed")
)

// fakeBackend is an in-memory Backend that records delivery traffic
// and fails members according to scripted rules.
type fakeBackend struct {
	mu sync.Mutex

	// refuse[cve] = number of times DeliverOne/DeliverBatch refuses the
	// member with errRefused before letting it through.
	refuse map[string]int
	// poison holds CVEs that always fail with errPoisoned.
	poison map[string]bool
	// failBatch makes every DeliverBatch call fail structurally.
	failBatch bool
	// fetchErr holds CVEs whose fetch fails.
	fetchErr map[string]bool

	batchCalls  [][]string // member CVEs per DeliverBatch call
	singleCalls []string   // CVE per DeliverOne call
	applied     []string   // CVEs that landed, in apply order
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		refuse:   map[string]int{},
		poison:   map[string]bool{},
		fetchErr: map[string]bool{},
	}
}

func (f *fakeBackend) FetchMany(ctx context.Context, cves []string) ([]Fetched, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Fetched, len(cves))
	for i, cve := range cves {
		out[i] = Fetched{CVE: cve, Blob: []byte("blob:" + cve), Time: time.Millisecond}
		if f.fetchErr[cve] {
			out[i].Blob = nil
			out[i].Err = fmt.Errorf("fetch %s: not found", cve)
		}
	}
	return out, nil
}

// outcome applies the scripted rules to one member.
func (f *fakeBackend) outcome(cve string) error {
	if f.poison[cve] {
		return errPoisoned
	}
	if f.refuse[cve] > 0 {
		f.refuse[cve]--
		return errRefused
	}
	f.applied = append(f.applied, cve)
	return nil
}

func (f *fakeBackend) DeliverBatch(ctx context.Context, members []*Member) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.CVE
	}
	f.batchCalls = append(f.batchCalls, ids)
	if f.failBatch {
		return errors.New("SMI failed")
	}
	for _, m := range members {
		m.Err = f.outcome(m.CVE)
	}
	return nil
}

func (f *fakeBackend) DeliverOne(ctx context.Context, m *Member) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.singleCalls = append(f.singleCalls, m.CVE)
	return f.outcome(m.CVE)
}

func cveList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("CVE-2020-%04d", i)
	}
	return out
}

func TestRunBatchesInOrder(t *testing.T) {
	f := newFakeBackend()
	cves := cveList(10)
	res, err := Run(context.Background(), f, cves, Config{BatchSize: 4, Workers: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Batches != 3 || res.Singles != 0 {
		t.Fatalf("got %d batches, %d singles; want 3 batches (4+4+2)", res.Batches, res.Singles)
	}
	if len(f.applied) != 10 {
		t.Fatalf("applied %d patches, want 10", len(f.applied))
	}
	for i, cve := range cves {
		if f.applied[i] != cve {
			t.Fatalf("apply order broken at %d: got %s want %s", i, f.applied[i], cve)
		}
		m := res.Members[i]
		if m.Err != nil || m.Attempts != 1 || m.Fallback {
			t.Fatalf("member %s: err=%v attempts=%d fallback=%v", cve, m.Err, m.Attempts, m.Fallback)
		}
		if m.Stages.Fetch != time.Millisecond {
			t.Fatalf("member %s: fetch stage not recorded", cve)
		}
	}
}

func TestRunRetriesOnlyRefusedMember(t *testing.T) {
	f := newFakeBackend()
	f.refuse["CVE-2020-0002"] = 2 // refused twice, then lands
	cves := cveList(4)
	res, err := Run(context.Background(), f, cves, Config{
		BatchSize: 4,
		Backoff:   time.Microsecond,
		Retryable: func(err error) bool { return errors.Is(err, errRefused) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Batches != 1 {
		t.Fatalf("got %d batch SMIs, want 1", res.Batches)
	}
	// Only the refused member is redelivered — twice, alone.
	if got := f.singleCalls; len(got) != 2 || got[0] != "CVE-2020-0002" || got[1] != "CVE-2020-0002" {
		t.Fatalf("per-patch redeliveries = %v, want [CVE-2020-0002 CVE-2020-0002]", got)
	}
	if res.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", res.Retries)
	}
	for _, m := range res.Members {
		if m.Err != nil {
			t.Fatalf("member %s failed: %v", m.CVE, m.Err)
		}
	}
	if m := res.Members[2]; m.Attempts != 3 {
		t.Fatalf("refused member attempts = %d, want 3 (batch + 2 retries)", m.Attempts)
	}
	if len(f.applied) != 4 {
		t.Fatalf("applied %d, want 4", len(f.applied))
	}
}

func TestRunRetriesExhaust(t *testing.T) {
	f := newFakeBackend()
	f.refuse["CVE-2020-0001"] = 99
	res, err := Run(context.Background(), f, cveList(2), Config{
		BatchSize:  2,
		MaxRetries: 2,
		Backoff:    time.Microsecond,
		Retryable:  func(err error) bool { return errors.Is(err, errRefused) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Members[1]
	if !errors.Is(m.Err, errRefused) {
		t.Fatalf("exhausted member err = %v, want errRefused", m.Err)
	}
	if m.Attempts != 3 { // batch + 2 retries
		t.Fatalf("attempts = %d, want 3", m.Attempts)
	}
	if res.Members[0].Err != nil {
		t.Fatalf("healthy batch mate failed: %v", res.Members[0].Err)
	}
}

func TestRunDegradesPoisonedMemberToPerPatch(t *testing.T) {
	f := newFakeBackend()
	f.poison["CVE-2020-0001"] = true
	res, err := Run(context.Background(), f, cveList(3), Config{BatchSize: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Members[1]
	if !errors.Is(m.Err, errPoisoned) || !m.Fallback || m.Attempts != 2 {
		t.Fatalf("poisoned member: err=%v fallback=%v attempts=%d; want poisoned/fallback/2", m.Err, m.Fallback, m.Attempts)
	}
	if res.Degraded != 1 || res.Singles != 1 {
		t.Fatalf("Degraded=%d Singles=%d, want 1/1", res.Degraded, res.Singles)
	}
	// Batch mates applied exactly once despite the poisoned member.
	if len(f.applied) != 2 {
		t.Fatalf("applied = %v, want the 2 healthy members", f.applied)
	}
}

func TestRunDegradesWholeBatchOnStructuralFailure(t *testing.T) {
	f := newFakeBackend()
	f.failBatch = true
	res, err := Run(context.Background(), f, cveList(3), Config{BatchSize: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(f.batchCalls) != 1 {
		t.Fatalf("batch attempts = %d, want 1", len(f.batchCalls))
	}
	if len(f.singleCalls) != 3 || res.Degraded != 3 {
		t.Fatalf("per-patch fallbacks = %v (Degraded=%d), want all 3 members", f.singleCalls, res.Degraded)
	}
	for _, m := range res.Members {
		if m.Err != nil || !m.Fallback {
			t.Fatalf("member %s: err=%v fallback=%v", m.CVE, m.Err, m.Fallback)
		}
	}
}

func TestRunFetchFailureSkipsMember(t *testing.T) {
	f := newFakeBackend()
	f.fetchErr["CVE-2020-0000"] = true
	res, err := Run(context.Background(), f, cveList(3), Config{BatchSize: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Members[0].Err == nil || res.Members[0].Attempts != 0 {
		t.Fatalf("unfetched member: err=%v attempts=%d", res.Members[0].Err, res.Members[0].Attempts)
	}
	if len(f.applied) != 2 {
		t.Fatalf("applied = %v, want the 2 fetched members", f.applied)
	}
}

func TestRunSingleMemberBatchUsesPerPatchSMI(t *testing.T) {
	f := newFakeBackend()
	res, err := Run(context.Background(), f, cveList(1), Config{BatchSize: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Batches != 0 || res.Singles != 1 || res.Degraded != 0 {
		t.Fatalf("Batches=%d Singles=%d Degraded=%d, want 0/1/0", res.Batches, res.Singles, res.Degraded)
	}
}

func TestRunCancellationMarksUnprocessed(t *testing.T) {
	f := newFakeBackend()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any delivery
	res, err := Run(ctx, f, cveList(6), Config{BatchSize: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if len(f.batchCalls) != 0 && len(f.singleCalls) != 0 {
		// Workers may have raced a fetch, but nothing may be delivered.
		t.Fatalf("deliveries after cancel: batches=%v singles=%v", f.batchCalls, f.singleCalls)
	}
	for _, m := range res.Members {
		if m.Attempts == 0 && m.Err == nil {
			t.Fatalf("member %s left unmarked after cancellation", m.CVE)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run(context.Background(), newFakeBackend(), nil, Config{})
	if err != nil || len(res.Members) != 0 || res.Batches+res.Singles != 0 {
		t.Fatalf("empty run: res=%+v err=%v", res, err)
	}
}
