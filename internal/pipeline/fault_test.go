package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"kshot/internal/faultinject"
	"kshot/internal/timing"
)

func retryableRefused(err error) bool { return errors.Is(err, errRefused) }

// Regression test: a cancelled context must interrupt the retry
// backoff sleep immediately. With a 30s backoff, a run that waits the
// sleep out would blow the test timeout; a correct one returns within
// milliseconds of the cancel.
func TestRetryBackoffHonorsCancellation(t *testing.T) {
	b := newFakeBackend()
	b.refuse["CVE-2020-0000"] = 10 // refused on every delivery

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	res, err := Run(ctx, b, cveList(1), Config{
		BatchSize:  4,
		MaxRetries: 3,
		Backoff:    30 * time.Second,
		Retryable:  retryableRefused,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v; backoff ignored cancellation", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if got := res.Members[0].Err; !errors.Is(got, context.Canceled) {
		t.Fatalf("member error = %v, want context.Canceled", got)
	}
}

// With an injected fake clock, retry backoff is deterministic and
// instant: the fake records exactly the doubling schedule without the
// test ever touching the host clock.
func TestRetryBackoffUsesInjectedClock(t *testing.T) {
	b := newFakeBackend()
	b.refuse["CVE-2020-0000"] = 2
	fake := timing.NewFakeWall()

	res, err := Run(context.Background(), b, cveList(1), Config{
		BatchSize:  4,
		MaxRetries: 3,
		Backoff:    200 * time.Millisecond,
		Retryable:  retryableRefused,
		Clock:      fake,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Members[0].Err != nil {
		t.Fatalf("member failed: %v", res.Members[0].Err)
	}
	if res.Retries != 2 {
		t.Fatalf("retries = %d, want 2", res.Retries)
	}
	if want := 200*time.Millisecond + 400*time.Millisecond; fake.Slept() != want {
		t.Fatalf("fake clock slept %v, want %v (200ms then doubled)", fake.Slept(), want)
	}
}

// An injected cancellation at the very first stage boundary stops the
// run before any delivery.
func TestInjectedCancelBeforeFirstDelivery(t *testing.T) {
	b := newFakeBackend()
	fi := faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.PipelineCancel, Call: 0},
	))
	res, err := Run(context.Background(), b, cveList(8), Config{BatchSize: 4, FI: fi})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if len(b.applied) != 0 {
		t.Fatalf("applied %v before cancellation boundary", b.applied)
	}
	for i, m := range res.Members {
		if !errors.Is(m.Err, context.Canceled) {
			t.Fatalf("member %d error = %v, want context.Canceled", i, m.Err)
		}
	}
}

// An injected cancellation after the first batch's delivery leaves the
// applied members applied and marks the rest with the context error —
// the pipeline's documented cancellation contract, now exercised from
// the inside.
func TestInjectedCancelBetweenBatches(t *testing.T) {
	b := newFakeBackend()
	// Boundary calls per batch: loop top, pre-delivery, post-delivery.
	fi := faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.PipelineCancel, Call: 2},
	))
	cves := cveList(8)
	res, err := Run(context.Background(), b, cves, Config{BatchSize: 4, Workers: 1, FI: fi})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if len(b.applied) != 4 {
		t.Fatalf("applied %v, want exactly the first batch", b.applied)
	}
	for i, m := range res.Members {
		if i < 4 {
			if m.Err != nil {
				t.Fatalf("member %d (delivered) error = %v", i, m.Err)
			}
		} else if !errors.Is(m.Err, context.Canceled) {
			t.Fatalf("member %d error = %v, want context.Canceled", i, m.Err)
		}
	}
}

// SyncFetch trades pipelining for determinism but must not change
// outcomes: same members applied, same per-member results, and a
// cancellation injected mid-run fires at the same call index every
// time.
func TestSyncFetchParity(t *testing.T) {
	run := func(syncFetch bool) *Result {
		b := newFakeBackend()
		fi := faultinject.New(faultinject.Exact(
			faultinject.Fault{Point: faultinject.PipelineCancel, Call: 5},
		))
		res, err := Run(context.Background(), b, cveList(12),
			Config{BatchSize: 4, Workers: 2, FI: fi, SyncFetch: syncFetch})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("syncFetch=%v: Run error = %v, want context.Canceled", syncFetch, err)
		}
		return res
	}
	// Boundary call 5 is batch 1's post-delivery boundary: exactly the
	// first two batches land, regardless of fetch overlap.
	for _, syncFetch := range []bool{false, true} {
		res := run(syncFetch)
		for i, m := range res.Members {
			if i < 8 && m.Err != nil {
				t.Errorf("syncFetch=%v: member %d error = %v, want applied", syncFetch, i, m.Err)
			}
			if i >= 8 && !errors.Is(m.Err, context.Canceled) {
				t.Errorf("syncFetch=%v: member %d error = %v, want context.Canceled", syncFetch, i, m.Err)
			}
		}
	}
}

// An injected worker stall delays the fetch through the injected
// clock but never changes the outcome.
func TestInjectedWorkerStall(t *testing.T) {
	b := newFakeBackend()
	fake := timing.NewFakeWall()
	fi := faultinject.New(faultinject.Exact(
		faultinject.Fault{Point: faultinject.PipelineStall, Call: 0, Delay: 500 * time.Millisecond},
	))
	res, err := Run(context.Background(), b, cveList(8), Config{BatchSize: 4, Workers: 1, Clock: fake, FI: fi})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, m := range res.Members {
		if m.Err != nil {
			t.Fatalf("member %d failed: %v", i, m.Err)
		}
	}
	if fake.Slept() != 500*time.Millisecond {
		t.Fatalf("fake clock slept %v, want 500ms", fake.Slept())
	}
}
