// Package adversary simulates an active attacker racing the live
// patcher, closing the loop on chaos invariant 5: the attacker must
// never win silently. Each attack runs against a real provisioned
// System with introspection enabled, and its schedule is derived
// entirely from one uint64 seed, so any campaign failure reproduces
// from the seed alone.
//
// Three attacker archetypes map onto the three verdict kinds the
// introspection detector can raise:
//
//   - Reinfect writes junk back into freshly patched kernel text in
//     the middle of a rollout — at the k-th patch SMI, while earlier
//     patches have already landed. The write happens outside any SMI
//     window, so the event channel classifies it as tampering even
//     though the pipeline's own rebaseline absorbs it into the
//     frame-diff snapshot (introspect.TamperDetected).
//   - Replay captures the staged patch artifact (enclave key +
//     ciphertext package) during a legitimate rollout and re-triggers
//     the patch SMI with the stale blobs afterwards. The SMM handler
//     rejects the one-shot session key, and the detector flags the
//     unannounced patch SMI (introspect.StalePatchReplay).
//   - Groom parks a vCPU inside the patch target so the conservative
//     activeness check refuses the patch over and over, starving the
//     rollout (introspect.ActivenessGroomed after the refusal
//     threshold), then releases so the patch eventually lands.
//
// The attack schedule rides the introspection channel's synchronous
// tap: the attacker strikes at the k-th patch-SMI event, which is the
// same instruction-level point on every run with the same seed.
package adversary

import (
	"fmt"

	"kshot/internal/introspect"
)

// Kind selects the attacker archetype.
type Kind uint8

const (
	// Reinfect re-writes patched kernel text mid-rollout.
	Reinfect Kind = iota + 1
	// Replay re-triggers a patch SMI with a captured stale artifact.
	Replay
	// Groom parks a vCPU in the patch target to starve the
	// activeness check.
	Groom
)

// String names the attacker for logs and campaign output.
func (k Kind) String() string {
	switch k {
	case Reinfect:
		return "reinfect"
	case Replay:
		return "replay"
	case Groom:
		return "groom"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Plan is a fully deterministic attack schedule. Every field is
// derived from Seed by NewPlan; nothing else feeds the schedule, so a
// failing seed reproduces the exact run.
type Plan struct {
	// Seed is the campaign seed this plan was derived from.
	Seed uint64

	// Kind is the attacker archetype.
	Kind Kind

	// StrikeSMI is the 1-based patch-SMI ordinal the attacker acts
	// on: the SMI whose enter event triggers the tamper write
	// (Reinfect, clamped so at least one patch has landed), or the
	// SMI whose staged artifact is captured for replay (Replay).
	// Groom ignores it (the refusal threshold paces that attack).
	StrikeSMI int

	// Strikes is how many times the attacker acts: text writes per
	// strike event for Reinfect, replay attempts for Replay.
	Strikes int
}

// splitmix64 is the standard SplitMix64 mixer — tiny, seedable, and
// stable across platforms, which is all a reproducible schedule needs.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewPlan derives an attack plan from a seed.
func NewPlan(seed uint64) Plan {
	s := seed
	return Plan{
		Seed:      seed,
		Kind:      Kind(1 + splitmix64(&s)%3),
		StrikeSMI: int(1 + splitmix64(&s)%3),
		Strikes:   int(1 + splitmix64(&s)%2),
	}
}

// Outcome is the result of one attack run: what the attacker managed
// to do, what the defense reported, and whether the system came back
// clean.
type Outcome struct {
	Plan Plan

	// Struck counts attacker actions that actually executed (tamper
	// writes, replay SMIs). Zero means the attack never fired, so no
	// detection is owed.
	Struck int

	// Starved reports whether a Groom attacker held the patch off for
	// at least the detector's refusal threshold.
	Starved bool

	// Applied lists the CVEs that ended up applied despite the
	// attack, in apply order.
	Applied []string

	// Verdicts is every verdict the detector raised during the run,
	// harvested before cleanup so cleanup's own writes cannot mask a
	// missing detection.
	Verdicts []introspect.Verdict

	// TextClean reports whether kernel.text frame-diffed clean
	// against the pristine pre-attack snapshot after rollback.
	TextClean bool

	// ApplyErr is a rollout error other than the per-member failures
	// the pipeline absorbs; CleanupErr is a rollback/restore failure.
	ApplyErr   error
	CleanupErr error
}

// Detected reports whether any harvested verdict has the given kind.
func (o *Outcome) Detected(k introspect.VerdictKind) bool {
	for _, v := range o.Verdicts {
		if v.Kind == k {
			return true
		}
	}
	return false
}

// SilentWin reports the one state chaos invariant 5 forbids: the
// attacker acted and the defense said nothing. Each archetype owes a
// specific verdict kind; an attack that never fired owes nothing.
func (o *Outcome) SilentWin() bool {
	switch o.Plan.Kind {
	case Reinfect:
		return o.Struck > 0 && !o.Detected(introspect.TamperDetected)
	case Replay:
		return o.Struck > 0 && !o.Detected(introspect.StalePatchReplay)
	case Groom:
		return o.Starved && !o.Detected(introspect.ActivenessGroomed)
	default:
		return false
	}
}
