package adversary

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/introspect"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/patchserver"
	"kshot/internal/smmpatch"
)

// advSpinVuln is the Groom attacker's parking gadget: a patch target
// that spins inside itself until released through a global, so the
// attacker can hold a vCPU in the function for as long as it wants to
// starve the activeness check.
const advSpinVuln = `
.global adv_entered 8
.global adv_release 8
.func adv_gadget          ; (x) -> x+1, parks until released
    movi r2, 1
    storeg adv_entered, r2
.wait:
    loadg r2, adv_release
    cmpi r2, 0
    jz .wait
    mov r0, r1
    addi r0, 1
    ret
.endfunc
.func adv_caller          ; keeps a return address into the gadget live
    push r1
    call adv_gadget
    pop r1
    ret
.endfunc
`

const advSpinFixed = `
.global adv_entered 8
.global adv_release 8
.func adv_gadget          ; patched: -> x+2
    movi r2, 1
    storeg adv_entered, r2
.wait:
    loadg r2, adv_release
    cmpi r2, 0
    jz .wait
    mov r0, r1
    addi r0, 2
    ret
.endfunc
.func adv_caller          ; patched: normalizes the error code path
    push r1
    call adv_gadget
    pop r1
    addi r0, 0
    ret
.endfunc
`

// spinEntry is the synthetic CVE the Groom attacker targets. It is a
// registry-shaped literal, not a registered benchmark entry, so the
// real CVE corpus stays untouched.
func spinEntry() *cvebench.Entry {
	return &cvebench.Entry{
		CVE:       "ADV-SPIN",
		Functions: []string{"adv_gadget", "adv_caller"},
		File:      "cve/adv_spin.asm",
		Vuln:      advSpinVuln,
		Fixed:     advSpinFixed,
	}
}

// SimCVEs are the real benchmark CVEs the Reinfect and Replay
// attackers race; the rollout applies them in this order.
var SimCVEs = []string{"CVE-2014-0196", "CVE-2016-5195", "CVE-2017-17806"}

// Sim hosts a patch server and a template cache shared by every
// attack run: the first run pays the cold kernel boot, each later run
// forks the cached template, so a 200-seed campaign stays cheap.
type Sim struct {
	srv     *patchserver.Server
	tc      *core.TemplateCache
	opts    core.Options
	entries map[string]*cvebench.Entry
}

// NewSim builds the shared fixture for the given kernel version.
func NewSim(version string) (*Sim, error) {
	entries := make(map[string]*cvebench.Entry, len(SimCVEs)+1)
	var list []*cvebench.Entry
	extra := make(map[string]string)
	for _, id := range SimCVEs {
		e, ok := cvebench.Get(id)
		if !ok {
			return nil, fmt.Errorf("adversary: unknown CVE %s", id)
		}
		entries[id] = e
		list = append(list, e)
		extra[e.File] = e.Vuln
	}
	spin := spinEntry()
	entries[spin.CVE] = spin
	list = append(list, spin)
	extra[spin.File] = spin.Vuln

	srv, err := patchserver.NewServer("127.0.0.1:0", cvebench.TreeProviderFor(list...))
	if err != nil {
		return nil, err
	}
	for _, e := range list {
		srv.RegisterPatch(e.SourcePatch())
	}
	return &Sim{
		srv: srv,
		tc:  core.NewTemplateCache(),
		opts: core.Options{
			Version:         version,
			ExtraFiles:      extra,
			ServerAddr:      srv.Addr(),
			CheckActiveness: true,
		},
		entries: entries,
	}, nil
}

// Close tears down the template cache and patch server.
func (s *Sim) Close() {
	s.tc.Close()
	s.srv.Close()
}

// newSystem forks a fresh introspected System for one attack run.
func (s *Sim) newSystem(ctx context.Context) (*core.System, error) {
	opts := s.opts
	opts.TemplateCache = s.tc
	// No background sweep: Run sweeps at deterministic points so the
	// same seed always classifies the same event stream.
	opts.Introspection = &introspect.Config{Capacity: 4096}
	return core.NewSystemCtx(ctx, opts)
}

// isPatchCmd reports whether an SMI event is a patch-processing SMI
// (as opposed to key exchange or introspection).
func isPatchCmd(c uint8) bool {
	return c == uint8(smmpatch.CmdProcessPackage) || c == uint8(smmpatch.CmdProcessBatch)
}

// flip records one tamper write so cleanup can restore the bytes.
type flip struct {
	addr uint64
	orig []byte
}

// readBlob reads one length-prefixed staging blob (the layout
// smmpatch.StageBlob writes).
func readBlob(m *mem.Physical, addr uint64) ([]byte, error) {
	var hdr [4]byte
	if err := m.Read(mem.PrivKernel, addr, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > 4<<20 {
		return nil, fmt.Errorf("adversary: implausible staged blob length %d", n)
	}
	data := make([]byte, n)
	if err := m.Read(mem.PrivKernel, addr+4, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Run executes one seeded attack against a freshly forked System and
// reports the outcome. Everything the attacker does is scheduled off
// the introspection channel's synchronous tap, so the strike lands at
// the same event-stream position on every run of the same plan.
func (s *Sim) Run(ctx context.Context, plan Plan) (*Outcome, error) {
	sys, err := s.newSystem(ctx)
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	out := &Outcome{Plan: plan}
	pristine := sys.Machine.Mem.Snapshot()
	det := sys.Introspection()
	ch := sys.IntrospectionEvents()

	var flips []flip
	switch plan.Kind {
	case Reinfect:
		flips = s.runReinfect(ctx, sys, plan, out)
	case Replay:
		s.runReplay(ctx, sys, plan, out)
	case Groom:
		s.runGroom(ctx, sys, plan, out)
	default:
		return nil, fmt.Errorf("adversary: unknown attack kind %d", plan.Kind)
	}
	ch.SetTap(nil)

	// Harvest before cleanup: cleanup's own restores hit kernel text
	// and would otherwise raise verdicts that could mask a missing
	// detection of the attack itself.
	det.Sweep()
	out.Verdicts = det.TakeVerdicts()
	out.Applied = sys.Applied()

	// Cleanup: undo tamper writes first (rollback assumes the patched
	// trampolines it recorded), then roll back every applied patch in
	// LIFO order, then require the text to frame-diff clean against
	// the pristine pre-attack snapshot.
	for i := len(flips) - 1; i >= 0; i-- {
		f := flips[i]
		if err := sys.Machine.Mem.Write(mem.PrivKernel, f.addr, f.orig); err != nil && out.CleanupErr == nil {
			out.CleanupErr = fmt.Errorf("adversary: restore tampered bytes: %w", err)
		}
	}
	applied := sys.Applied()
	for i := len(applied) - 1; i >= 0; i-- {
		if _, err := sys.Rollback(ctx, applied[i]); err != nil && out.CleanupErr == nil {
			out.CleanupErr = fmt.Errorf("adversary: rollback %s: %w", applied[i], err)
		}
	}
	det.Sweep()
	det.TakeVerdicts() // discard cleanup noise
	left, err := sys.Machine.Mem.DiffFramesIn(pristine, kernel.TextBase, kernel.TextRegionSize)
	out.TextClean = err == nil && len(left) == 0 && out.CleanupErr == nil
	return out, nil
}

// runReinfect rolls out the real CVE corpus one patch per SMI and, at
// the plan's strike SMI (clamped so at least one patch has landed),
// flips bytes at the entry of the most recently patched function —
// outside any SMI window, which is exactly what the event channel is
// there to catch even though the pipeline's own rebaseline absorbs
// the damage into the frame-diff snapshot.
func (s *Sim) runReinfect(ctx context.Context, sys *core.System, plan Plan, out *Outcome) []flip {
	strikeAt := plan.StrikeSMI + 1
	if strikeAt < 2 {
		strikeAt = 2
	}
	if strikeAt > len(SimCVEs) {
		strikeAt = len(SimCVEs)
	}

	var (
		mu     sync.Mutex
		flips  []flip
		enters int
	)
	sys.IntrospectionEvents().SetTap(func(ev introspect.Event) {
		if ev.Kind != introspect.KindSMIEnter || !isPatchCmd(ev.Cmd) {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		enters++
		if enters != strikeAt {
			return
		}
		// Patches land in request order; by SMI #n, n-1 have been
		// applied. Re-infect the most recent one.
		target := s.entries[SimCVEs[enters-2]].Functions[0]
		addr, err := sys.Kernel.FuncAddr(target)
		if err != nil {
			return
		}
		orig := make([]byte, plan.Strikes+1)
		if err := sys.Machine.Mem.Read(mem.PrivKernel, addr, orig); err != nil {
			return
		}
		junk := make([]byte, len(orig))
		for i, b := range orig {
			junk[i] = b ^ 0xFF
		}
		if err := sys.Machine.Mem.Write(mem.PrivKernel, addr, junk); err != nil {
			return
		}
		flips = append(flips, flip{addr: addr, orig: orig})
		out.Struck++
	})

	_, err := sys.ApplyAll(ctx, SimCVEs,
		core.WithBatchSize(1), core.WithFetchWorkers(1), core.WithSyncFetch())
	out.ApplyErr = err

	mu.Lock()
	defer mu.Unlock()
	return flips
}

// runReplay captures the stale artifact during a legitimate rollout
// and re-triggers the patch SMI with it afterwards — an unannounced
// patch SMI carrying a stale one-shot session key. The kernel-level
// attacker can read the enclave key from the RW mailbox at the plan's
// capture SMI, but the ciphertext package sits in mem_W, which is
// write-only below SMM — so the replay pairs the captured key with
// the package bytes still resident in staging from the last patch.
// The handler refuses either way; the detector must still call the
// SMI out.
func (s *Sim) runReplay(ctx context.Context, sys *core.System, plan Plan, out *Outcome) {
	captureAt := plan.StrikeSMI
	if captureAt < 1 {
		captureAt = 1
	}
	if captureAt > len(SimCVEs) {
		captureAt = len(SimCVEs)
	}

	var (
		mu          sync.Mutex
		enters      int
		stalePub    []byte
		captureErrs []error
	)
	res := sys.Kernel.Res
	m := sys.Machine.Mem
	sys.IntrospectionEvents().SetTap(func(ev introspect.Event) {
		if ev.Kind != introspect.KindSMIEnter || ev.Cmd != uint8(smmpatch.CmdProcessPackage) {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		enters++
		if enters != captureAt {
			return
		}
		// The SMI has not run yet: the key the helper just staged is
		// still sitting in the RW mailbox, readable by any
		// kernel-level attacker.
		pub, err := readBlob(m, smmpatch.EnclavePubAddr(res))
		if err != nil {
			captureErrs = append(captureErrs, err)
			return
		}
		stalePub = pub
	})

	_, err := sys.ApplyAll(ctx, SimCVEs,
		core.WithBatchSize(1), core.WithFetchWorkers(1), core.WithSyncFetch())
	out.ApplyErr = err
	sys.IntrospectionEvents().SetTap(nil)

	mu.Lock()
	pub := stalePub
	if out.ApplyErr == nil && len(captureErrs) > 0 {
		out.ApplyErr = captureErrs[0]
	}
	mu.Unlock()
	if pub == nil {
		return
	}
	// Replaying inside the tap would nest Trigger under a paused
	// machine; the stale artifact does not expire, so the attacker
	// replays after the rollout instead.
	for i := 0; i < plan.Strikes; i++ {
		if err := smmpatch.StageBlob(m, mem.PrivKernel, smmpatch.EnclavePubAddr(res), pub); err != nil {
			break
		}
		// The handler rejects the stale session key; the SMI still
		// happened, and no ExpectSMI announced it.
		_ = sys.SMM.Trigger(smmpatch.CmdProcessPackage, 0)
		out.Struck++
	}
}

// runGroom parks vCPU 0 inside the spin gadget so every delivery SMI
// refuses with ErrTargetActive, releases the gadget once the refusal
// streak reaches the detector's threshold, and lets the patch land.
func (s *Sim) runGroom(ctx context.Context, sys *core.System, plan Plan, out *Outcome) {
	k := sys.Kernel
	threshold := introspect.DefaultGroomThreshold
	fail := func(err error) {
		if out.ApplyErr == nil {
			out.ApplyErr = err
		}
	}
	if err := k.WriteGlobal("adv_release", 0); err != nil {
		fail(err)
		return
	}
	if err := k.WriteGlobal("adv_entered", 0); err != nil {
		fail(err)
		return
	}
	done := make(chan error, 1)
	go func() {
		// Parked across the whole starved rollout: size the step
		// budget to the wait, not DefaultMaxSteps.
		_, err := k.CallSteps(0, "adv_caller", 1<<30, 41)
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := k.ReadGlobal("adv_entered")
		if err != nil {
			fail(err)
			return
		}
		if v == 1 {
			break
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("adversary: vCPU never entered spin gadget"))
			return
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Release from the tap at the threshold'th refused patch SMI:
	// the detector owes its verdict by then, and the next retry can
	// find a quiescent target.
	var exits atomic.Int64
	released := make(chan struct{})
	sys.IntrospectionEvents().SetTap(func(ev introspect.Event) {
		if ev.Kind != introspect.KindSMIExit || !isPatchCmd(ev.Cmd) {
			return
		}
		if exits.Add(1) != int64(threshold) {
			return
		}
		// Data write, not text: no event, no deadlock. The parked
		// vCPU leaves the gadget as soon as the machine resumes.
		if err := k.WriteGlobal("adv_release", 1); err == nil {
			close(released)
		}
	})

	rep, err := sys.ApplyAll(ctx, []string{spinEntry().CVE},
		core.WithMaxRetries(6), core.WithFetchWorkers(1), core.WithSyncFetch())
	out.ApplyErr = err
	sys.IntrospectionEvents().SetTap(nil)
	if rep != nil {
		out.Starved = rep.Retries >= threshold
	}

	// Make sure the parked call is gone before cleanup rolls back.
	select {
	case <-released:
	default:
		_ = k.WriteGlobal("adv_release", 1)
	}
	select {
	case callErr := <-done:
		if callErr != nil && out.ApplyErr == nil {
			out.ApplyErr = fmt.Errorf("adversary: parked call: %w", callErr)
		}
	case <-time.After(10 * time.Second):
		fail(fmt.Errorf("adversary: parked vCPU never released"))
	}
}
