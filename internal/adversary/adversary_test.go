package adversary

import (
	"context"
	"os"
	"strconv"
	"testing"

	"kshot/internal/introspect"
)

// sharedSim lazily boots the one template-backed fixture every test
// in the package forks from.
var sharedSim *Sim

func getSim(t *testing.T) *Sim {
	t.Helper()
	if sharedSim == nil {
		s, err := NewSim("4.4")
		if err != nil {
			t.Fatalf("NewSim: %v", err)
		}
		sharedSim = s
	}
	return sharedSim
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedSim != nil {
		sharedSim.Close()
	}
	os.Exit(code)
}

// runPlan executes one plan and applies the invariants every run must
// hold regardless of archetype.
func runPlan(t *testing.T, plan Plan) *Outcome {
	t.Helper()
	out, err := getSim(t).Run(context.Background(), plan)
	if err != nil {
		t.Fatalf("seed %#x (%s): Run: %v", plan.Seed, plan.Kind, err)
	}
	if out.ApplyErr != nil {
		t.Errorf("seed %#x (%s): rollout error: %v", plan.Seed, plan.Kind, out.ApplyErr)
	}
	if out.CleanupErr != nil {
		t.Errorf("seed %#x (%s): cleanup error: %v", plan.Seed, plan.Kind, out.CleanupErr)
	}
	if !out.TextClean {
		t.Errorf("seed %#x (%s): kernel text not pristine after rollback", plan.Seed, plan.Kind)
	}
	if out.SilentWin() {
		t.Errorf("seed %#x (%s): SILENT WIN — struck=%d starved=%v verdicts=%v",
			plan.Seed, plan.Kind, out.Struck, out.Starved, out.Verdicts)
	}
	return out
}

// planFor derives, by scanning seeds upward from base, the first plan
// of the wanted kind — keeping the focused tests on the same
// seed-only reproduction path as the campaign.
func planFor(t *testing.T, kind Kind, base uint64) Plan {
	t.Helper()
	for seed := base; seed < base+64; seed++ {
		if p := NewPlan(seed); p.Kind == kind {
			return p
		}
	}
	t.Fatalf("no %s plan within 64 seeds of %#x", kind, base)
	return Plan{}
}

func TestReinfectDetected(t *testing.T) {
	out := runPlan(t, planFor(t, Reinfect, 1))
	if out.Struck == 0 {
		t.Fatal("reinfect attacker never struck")
	}
	if !out.Detected(introspect.TamperDetected) {
		t.Fatalf("no TamperDetected verdict; got %v", out.Verdicts)
	}
	for _, v := range out.Verdicts {
		if v.Kind == introspect.TamperDetected && v.Latency < 0 {
			t.Errorf("negative detection latency %v", v.Latency)
		}
	}
	if len(out.Applied) != len(SimCVEs) {
		t.Errorf("applied %v, want all of %v", out.Applied, SimCVEs)
	}
}

func TestReplayDetected(t *testing.T) {
	out := runPlan(t, planFor(t, Replay, 1))
	if out.Struck == 0 {
		t.Fatal("replay attacker never struck")
	}
	if !out.Detected(introspect.StalePatchReplay) {
		t.Fatalf("no StalePatchReplay verdict; got %v", out.Verdicts)
	}
	if len(out.Applied) != len(SimCVEs) {
		t.Errorf("applied %v, want all of %v", out.Applied, SimCVEs)
	}
}

func TestGroomDetected(t *testing.T) {
	out := runPlan(t, planFor(t, Groom, 1))
	if !out.Starved {
		t.Fatal("groom attacker never starved the rollout")
	}
	if !out.Detected(introspect.ActivenessGroomed) {
		t.Fatalf("no ActivenessGroomed verdict; got %v", out.Verdicts)
	}
	if len(out.Applied) != 1 {
		t.Errorf("applied %v, want the spin gadget patch to land after release", out.Applied)
	}
}

// TestAdversaryCampaign is chaos invariant 5: across a seeded attack
// campaign, the attacker never wins silently and the system always
// rolls back to pristine text. Any failure reproduces from the seed
// alone: set KSHOT_ADV_SEED to rerun exactly one seed.
func TestAdversaryCampaign(t *testing.T) {
	if env := os.Getenv("KSHOT_ADV_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("KSHOT_ADV_SEED: %v", err)
		}
		runPlan(t, NewPlan(seed))
		return
	}
	seeds := 200
	if testing.Short() {
		seeds = 24
	}
	kinds := make(map[Kind]int)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		plan := NewPlan(seed)
		kinds[plan.Kind]++
		runPlan(t, plan)
		if t.Failed() && kinds[Reinfect]+kinds[Replay]+kinds[Groom] > 8 {
			t.Fatal("aborting campaign after early failures")
		}
	}
	// The splitmix64 schedule must actually exercise all three
	// archetypes, or the invariant is vacuous for the missing kind.
	for _, k := range []Kind{Reinfect, Replay, Groom} {
		if kinds[k] == 0 {
			t.Errorf("campaign never drew a %s attacker", k)
		}
	}
	t.Logf("campaign: %d seeds — %d reinfect, %d replay, %d groom",
		seeds, kinds[Reinfect], kinds[Replay], kinds[Groom])
}
