package cvebench

// ConflictFreeWaves partitions entries into ordered waves such that no
// wave holds two entries that define the same kernel function or
// contribute the same source file. One simulated kernel cannot host
// two definitions of a function (the build rejects duplicates — e.g.
// sctp_assoc_update appears in both CVE-2014-5077 and CVE-2015-1421),
// so a multi-CVE run provisions one deployment per wave and patches
// each wave's entries together. Greedy first-fit keeps the wave count
// minimal in practice: the Table I suite splits 28 + 2.
func ConflictFreeWaves(entries []*Entry) [][]*Entry {
	var waves [][]*Entry
	var seen []map[string]bool
	for _, e := range entries {
		placed := false
		for i, keys := range seen {
			if !conflicts(keys, e) {
				waves[i] = append(waves[i], e)
				addKeys(keys, e)
				placed = true
				break
			}
		}
		if !placed {
			keys := make(map[string]bool)
			addKeys(keys, e)
			seen = append(seen, keys)
			waves = append(waves, []*Entry{e})
		}
	}
	return waves
}

func entryKeys(e *Entry) []string {
	keys := make([]string, 0, len(e.Functions)+1)
	keys = append(keys, "file:"+e.File)
	for _, fn := range e.Functions {
		keys = append(keys, "fn:"+fn)
	}
	return keys
}

func conflicts(keys map[string]bool, e *Entry) bool {
	for _, k := range entryKeys(e) {
		if keys[k] {
			return true
		}
	}
	return false
}

func addKeys(keys map[string]bool, e *Entry) {
	for _, k := range entryKeys(e) {
		keys[k] = true
	}
}
