package cvebench

import (
	"reflect"
	"testing"

	"kshot/internal/kernel"
	"kshot/internal/machine"
	"kshot/internal/patch"
)

func bootTree(t *testing.T, st *kernel.SourceTree) *kernel.Kernel {
	t.Helper()
	img, _, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{NumVCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	k, err := kernel.Boot(m, img, st.Config())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 30 {
		t.Fatalf("Table I has %d entries, want 30", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.CVE] {
			t.Errorf("duplicate CVE %s", e.CVE)
		}
		seen[e.CVE] = true
		if len(e.Functions) == 0 || e.SizeLoC <= 0 || len(e.Types) == 0 {
			t.Errorf("%s: incomplete entry", e.CVE)
		}
		if e.FigureOnly {
			t.Errorf("%s: figure-only entry in Table I list", e.CVE)
		}
	}
	six := FigureSix()
	if len(six) != 6 {
		t.Fatalf("FigureSix returned %d", len(six))
	}
	for _, e := range six {
		if e == nil {
			t.Fatal("nil figure entry")
		}
	}
	if _, ok := Get("CVE-2016-5195"); !ok {
		t.Error("Get failed for known CVE")
	}
	if _, ok := Get("CVE-0000-0000"); ok {
		t.Error("Get succeeded for unknown CVE")
	}
}

// TestAllEntriesVulnThenFixed is the benchmark's ground truth: for
// every entry (Table I + figure extras), the exploit must succeed on a
// kernel built with the vulnerable source and fail on one built with
// the fixed source — on both supported kernel versions.
func TestAllEntriesVulnThenFixed(t *testing.T) {
	for _, s := range table {
		e := registry[s.cve]
		t.Run(e.CVE, func(t *testing.T) {
			for _, version := range []string{"3.14", "4.4"} {
				vulnTree, err := VulnerableTree(version, e)
				if err != nil {
					t.Fatal(err)
				}
				k := bootTree(t, vulnTree)
				res, err := e.Exploit(k, 0)
				if err != nil {
					t.Fatalf("%s exploit on vulnerable kernel: %v", version, err)
				}
				if !res.Vulnerable {
					t.Errorf("%s: exploit failed on vulnerable kernel (%s)", version, res.Detail)
				}

				fixedTree := vulnTree.Clone()
				if err := fixedTree.Apply(e.SourcePatch()); err != nil {
					t.Fatal(err)
				}
				k2 := bootTree(t, fixedTree)
				res, err = e.Exploit(k2, 0)
				if err != nil {
					t.Fatalf("%s exploit on fixed kernel: %v", version, err)
				}
				if res.Vulnerable {
					t.Errorf("%s: exploit still works on fixed kernel (%s)", version, res.Detail)
				}
			}
		})
	}
}

// TestPatchTypesMatchTable verifies the pipeline's classification of
// each built binary patch covers the entry's Table I types.
func TestPatchTypesMatchTable(t *testing.T) {
	for _, s := range table {
		e := registry[s.cve]
		t.Run(e.CVE, func(t *testing.T) {
			pre, err := VulnerableTree("4.4", e)
			if err != nil {
				t.Fatal(err)
			}
			preImg, preUnit, err := pre.Build()
			if err != nil {
				t.Fatal(err)
			}
			post := pre.Clone()
			if err := post.Apply(e.SourcePatch()); err != nil {
				t.Fatal(err)
			}
			postImg, postUnit, err := post.Build()
			if err != nil {
				t.Fatal(err)
			}
			bp, err := patch.Build(e.CVE, "4.4",
				patch.ImagePair{Img: preImg, Unit: preUnit},
				patch.ImagePair{Img: postImg, Unit: postUnit})
			if err != nil {
				t.Fatal(err)
			}
			if got := bp.Types(); !reflect.DeepEqual(got, e.Types) {
				t.Errorf("types = %v, want %v (funcs %v)", got, e.Types, bp.FuncNames())
			}
			if bp.PayloadBytes() == 0 {
				t.Error("empty payload")
			}
		})
	}
}

// TestPayloadSizesTrackTableSizes checks the generated patch sizes
// scale with Table I's LoC column, so the per-CVE figures show the
// paper's size spread.
func TestPayloadSizesTrackTableSizes(t *testing.T) {
	big, _ := Get("CVE-2016-7914")   // 330 LoC
	small, _ := Get("CVE-2014-4157") // 5 LoC
	sizeOf := func(e *Entry) int {
		pre, err := VulnerableTree("4.4", e)
		if err != nil {
			t.Fatal(err)
		}
		preImg, preUnit, err := pre.Build()
		if err != nil {
			t.Fatal(err)
		}
		post := pre.Clone()
		if err := post.Apply(e.SourcePatch()); err != nil {
			t.Fatal(err)
		}
		postImg, postUnit, err := post.Build()
		if err != nil {
			t.Fatal(err)
		}
		bp, err := patch.Build(e.CVE, "4.4",
			patch.ImagePair{Img: preImg, Unit: preUnit},
			patch.ImagePair{Img: postImg, Unit: postUnit})
		if err != nil {
			t.Fatal(err)
		}
		return bp.PayloadBytes()
	}
	b, s := sizeOf(big), sizeOf(small)
	if b <= 4*s {
		t.Errorf("330-LoC patch (%dB) not much larger than 5-LoC patch (%dB)", b, s)
	}
}

func TestSourcePatchTouchesOnlyEntryFile(t *testing.T) {
	e, _ := Get("CVE-2014-0196")
	sp := e.SourcePatch()
	if len(sp.Files) != 1 {
		t.Fatalf("patch touches %d files", len(sp.Files))
	}
	if _, ok := sp.Files[e.File]; !ok {
		t.Error("patch does not touch the entry's file")
	}
	if sp.ID != e.CVE {
		t.Error("patch ID mismatch")
	}
}

func TestTypesString(t *testing.T) {
	e, _ := Get("CVE-2014-3687")
	if e.TypesString() != "1,2" {
		t.Errorf("TypesString = %q", e.TypesString())
	}
}

func TestTreeProviderIncludesAllEntries(t *testing.T) {
	a, _ := Get("CVE-2014-0196")
	b, _ := Get("CVE-2016-7916")
	provider := TreeProviderFor(a, b)
	st, err := provider("3.14")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Entry{a, b} {
		if src, ok := st.File(e.File); !ok || src != e.Vuln {
			t.Errorf("provider tree missing vulnerable %s", e.File)
		}
	}
	if _, err := provider("9.9"); err == nil {
		t.Error("bad version accepted")
	}
}
