// Package cvebench provides the paper's evaluation benchmark: the 30
// kernel CVE patches of Table I (plus the three extra CVEs §VI-C3's
// figures use), each modeled as a vulnerable kernel subsystem file, a
// source-level fix, and a mechanical exploit check that succeeds
// against the vulnerable kernel and fails once the patch is live.
//
// Real CVE patches cannot be reproduced verbatim on a simulated
// kernel, so each entry instantiates the archetype of its bug class —
// missing bounds check (buffer overflows like CVE-2014-0196), missing
// validation with information leak (CVE-2016-7916-style), a fix inside
// an inline function that implicates its callers (Type 2, as in
// CVE-2017-17053), and data-structure extension (Type 3, as in
// CVE-2014-3690) — while preserving Table I's affected-function names,
// patch sizes (lines of changed code, which drive payload bytes), and
// Type 1/2/3 classification. The paper's RQ1 criterion ("patch
// applies, system stays stable, bug gone") is checked the same way:
// run the exploit before and after.
package cvebench

import (
	"fmt"
	"strings"

	"kshot/internal/kernel"
)

// ExploitResult reports one exploit probe.
type ExploitResult struct {
	// Vulnerable is true when the exploit succeeded.
	Vulnerable bool
	// Detail describes what the probe observed.
	Detail string
}

// ExploitFunc probes a running kernel for the entry's vulnerability.
type ExploitFunc func(k *kernel.Kernel, vcpu int) (ExploitResult, error)

// archetype generators return the vulnerable source, the patched
// source, and the exploit probe.

const canaryMagic = 0x1337

// pad emits n filler instructions so generated functions match Table
// I's patch sizes (and therefore produce realistically sized binary
// payloads).
func pad(n int) string {
	if n <= 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("    addi r9, 1\n")
	}
	return b.String()
}

// splitPad distributes the size budget across k functions.
func splitPad(totalLoC, baseLines, k int) int {
	per := (totalLoC - baseLines*k) / k
	if per < 0 {
		return 0
	}
	return per
}

// boundsCheckFunc generates one function writing attacker-indexed
// slots of a fixed 8-word buffer; the vulnerable variant omits the
// bounds check, so index 8 clobbers the adjacent canary.
func boundsCheckFunc(fn string, padN int, fixed bool) string {
	check := ""
	if fixed {
		check = "    cmpi r1, 8\n    jl .inbounds\n    movi r0, 14\n    ret\n.inbounds:\n"
	}
	return fmt.Sprintf(`
.global %[1]s_buf 64
.data   %[1]s_canary 37 13 00 00 00 00 00 00

.func %[1]s              ; (idx, val) -> 0 ok / 14 EFAULT
%[2]s    movi r3, @%[1]s_buf
    mov r4, r1
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r2
%[3]s    movi r0, 0
    ret
.endfunc
`, fn, check, pad(padN))
}

// boundsCheckExploit writes one word past the buffer and checks the
// canary.
func boundsCheckExploit(fn string) ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (ExploitResult, error) {
		if err := k.WriteGlobal(fn+"_canary", canaryMagic); err != nil {
			return ExploitResult{}, err
		}
		if _, err := k.Call(vcpu, fn, 8, 0x6666); err != nil {
			return ExploitResult{}, fmt.Errorf("exploit call %s: %w", fn, err)
		}
		v, err := k.ReadGlobal(fn + "_canary")
		if err != nil {
			return ExploitResult{}, err
		}
		if v != canaryMagic {
			return ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("out-of-bounds write clobbered %s_canary (now %#x)", fn, v)}, nil
		}
		return ExploitResult{Detail: "out-of-bounds write rejected"}, nil
	}
}

// leakFunc generates a function that, in the vulnerable variant,
// returns the content of a secret global when probed with a crafted
// argument (an information-leak archetype).
func leakFunc(fn string, padN int, fixed bool) string {
	check := ""
	if fixed {
		check = "    cmpi r1, 57005\n    jnz .serve\n    movi r0, 0\n    ret\n.serve:\n"
	}
	return fmt.Sprintf(`
.data %[1]s_secret 5a a5 5a a5 00 00 00 00

.func %[1]s              ; (req) -> per-request data
%[2]s    cmpi r1, 57005          ; 0xdead: internal debug path
    jnz .normal
    loadg r0, %[1]s_secret
    ret
.normal:
%[3]s    mov r0, r1
    addi r0, 1
    ret
.endfunc
`, fn, check, pad(padN))
}

const leakSecret = 0xa55aa55a

func leakExploit(fn string) ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (ExploitResult, error) {
		v, err := k.Call(vcpu, fn, 0xdead)
		if err != nil {
			return ExploitResult{}, fmt.Errorf("exploit call %s: %w", fn, err)
		}
		if v == leakSecret {
			return ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("%s leaked secret %#x", fn, v)}, nil
		}
		return ExploitResult{Detail: "leak path returns 0"}, nil
	}
}

// inlineValidatorFunc generates the Type 2 shape: the named function
// is an *inline* validator (vulnerable: accepts everything), and
// synthetic call sites embed it. Fixing the validator implicates the
// sites.
func inlineValidatorFunc(fn string, sites int, padN int, fixed bool) string {
	body := "    movi r0, 1\n"
	if fixed {
		body = "    movi r0, 0\n    cmpi r1, 8\n    jge .end\n    movi r0, 1\n.end:\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `
.global %[1]s_buf 64
.data   %[1]s_canary 37 13 00 00 00 00 00 00

.func %[1]s inline       ; (len) -> 1 valid / 0 invalid
%[2]s%[3]s    ret
.endfunc
`, fn, body, pad(padN))
	for i := 1; i <= sites; i++ {
		fmt.Fprintf(&b, `
.func %[1]s_site%[2]d        ; (len, val) -> 0 ok / 14 EFAULT
    push r1
    call %[1]s
    pop r1
    cmpi r0, 0
    jnz .write
    movi r0, 14
    ret
.write:
    movi r3, @%[1]s_buf
    mov r4, r1
    movi r5, 8
    mul r4, r5
    add r3, r4
    store [r3], r2
    movi r0, 0
    ret
.endfunc
`, fn, i)
	}
	return b.String()
}

func inlineValidatorExploit(fn string) ExploitFunc {
	site := fn + "_site1"
	return func(k *kernel.Kernel, vcpu int) (ExploitResult, error) {
		if err := k.WriteGlobal(fn+"_canary", canaryMagic); err != nil {
			return ExploitResult{}, err
		}
		if _, err := k.Call(vcpu, site, 8, 0x6666); err != nil {
			return ExploitResult{}, fmt.Errorf("exploit call %s: %w", site, err)
		}
		v, err := k.ReadGlobal(fn + "_canary")
		if err != nil {
			return ExploitResult{}, err
		}
		if v != canaryMagic {
			return ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("inlined validator admitted out-of-bounds write through %s", site)}, nil
		}
		return ExploitResult{Detail: "validator rejects out-of-range length"}, nil
	}
}

// structExtensionFuncs generates the Type 3 shape modeled on
// CVE-2014-3690: the fix adds a cached field (a new global standing in
// for the added struct member), an initializer that populates it, and
// a consumer that validates against it. The vulnerable variant trusts
// its argument unchecked.
func structExtensionFuncs(base string, fns []string, padPer int, fixed bool) string {
	consumer, initializer := fns[0], fns[0]
	reader := fns[0]
	if len(fns) > 1 {
		initializer = fns[1]
	}
	if len(fns) > 2 {
		reader = fns[2]
	}
	var b strings.Builder
	if fixed {
		fmt.Fprintf(&b, ".data %s_cached 00 01 00 00 00 00 00 00\n", base) // 256
	}
	// Consumer: in the fixed variant it clamps against the cached
	// value; vulnerable passes anything through.
	clamp := ""
	if fixed {
		clamp = fmt.Sprintf("    loadg r2, %s_cached\n    cmp r0, r2\n    jle .fine\n    mov r0, r2\n.fine:\n", base)
	}
	fmt.Fprintf(&b, `
.func %[1]s              ; (v) -> sanitized v
    mov r0, r1
    add r0, r1
%[2]s%[3]s    ret
.endfunc
`, consumer, clamp, pad(padPer))
	if len(fns) > 1 {
		store := "    movi r0, 0\n"
		if fixed {
			store = fmt.Sprintf("    movi r0, 256\n    storeg %s_cached, r0\n", base)
		}
		fmt.Fprintf(&b, `
.func %[1]s              ; initialize cached state
%[2]s%[3]s    ret
.endfunc
`, initializer, store, pad(padPer))
	}
	if len(fns) > 2 {
		read := "    movi r0, 0\n"
		if fixed {
			read = fmt.Sprintf("    loadg r0, %s_cached\n", base)
		}
		fmt.Fprintf(&b, `
.func %[1]s_impl notrace ; internal reader
%[2]s    ret
.endfunc

.func %[1]s              ; read cached state
    call %[1]s_impl
%[3]s    ret
.endfunc
`, reader, read, pad(padPer))
	}
	return b.String()
}

func structExtensionExploit(fns []string) ExploitFunc {
	consumer := fns[0]
	return func(k *kernel.Kernel, vcpu int) (ExploitResult, error) {
		// An oversized privileged value must be clamped post-patch.
		v, err := k.Call(vcpu, consumer, 100000)
		if err != nil {
			return ExploitResult{}, fmt.Errorf("exploit call %s: %w", consumer, err)
		}
		if v > 256 {
			return ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("%s accepted unvalidated state %#x", consumer, v)}, nil
		}
		return ExploitResult{Detail: "state validated against cached field"}, nil
	}
}

// refcountFunc generates a double-decrement bug: the error path drops
// a reference it never took (the use-after-free archetype, as in
// CVE-2016-0728's keyring leak).
func refcountFunc(fn string, padN int, fixed bool) string {
	errPath := "    loadg r3, " + fn + "_refs\n    subi r3, 1\n    storeg " + fn + "_refs, r3\n"
	if fixed {
		errPath = ""
	}
	return fmt.Sprintf(`
.data %[1]s_refs 01 00 00 00 00 00 00 00

.func %[1]s              ; (obj) -> 0 ok / 22 EINVAL; takes+drops a ref
    loadg r3, %[1]s_refs
    addi r3, 1
    storeg %[1]s_refs, r3
    cmpi r1, 0
    jnz .ok
    ; error path
    loadg r3, %[1]s_refs
    subi r3, 1
    storeg %[1]s_refs, r3
%[2]s    movi r0, 22
    ret
.ok:
%[3]s    loadg r3, %[1]s_refs
    subi r3, 1
    storeg %[1]s_refs, r3
    movi r0, 0
    ret
.endfunc
`, fn, errPath, pad(padN))
}

func refcountExploit(fn string) ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (ExploitResult, error) {
		if err := k.WriteGlobal(fn+"_refs", 1); err != nil {
			return ExploitResult{}, err
		}
		// Hit the error path; the buggy version double-drops.
		if _, err := k.Call(vcpu, fn, 0); err != nil {
			return ExploitResult{}, fmt.Errorf("exploit call %s: %w", fn, err)
		}
		refs, err := k.ReadGlobal(fn + "_refs")
		if err != nil {
			return ExploitResult{}, err
		}
		if refs != 1 {
			return ExploitResult{Vulnerable: true,
				Detail: fmt.Sprintf("refcount fell to %d after error path (double put)", int64(refs))}, nil
		}
		return ExploitResult{Detail: "refcount balanced on error path"}, nil
	}
}
