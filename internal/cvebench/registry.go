package cvebench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"kshot/internal/kernel"
	"kshot/internal/patch"
)

// Entry is one benchmark vulnerability: a vulnerable kernel subsystem,
// its fix, and an exploit probe.
type Entry struct {
	// CVE is the identifier, as listed in Table I.
	CVE string

	// Functions are the affected kernel functions (Table I column 2).
	Functions []string

	// SizeLoC is the total size, in lines of code, of all changed
	// functions post-patch (Table I column 3).
	SizeLoC int

	// Types is the Table I classification.
	Types []patch.Type

	// File is the subsystem source file the entry contributes.
	File string

	// Vuln and Fixed are the pre-/post-patch file contents.
	Vuln  string
	Fixed string

	// Exploit probes a running kernel for the vulnerability.
	Exploit ExploitFunc

	// Summary describes the real-world bug and which archetype models
	// it here.
	Summary string

	// FigureOnly marks the three extra CVEs that appear on the x-axis
	// of Figures 4/5 but not in Table I.
	FigureOnly bool
}

// SourcePatch returns the entry's fix as a source patch for the patch
// server.
func (e *Entry) SourcePatch() kernel.SourcePatch {
	return kernel.SourcePatch{ID: e.CVE, Files: map[string]string{e.File: e.Fixed}}
}

// TypesString renders the classification like Table I ("1,2").
func (e *Entry) TypesString() string {
	parts := make([]string, len(e.Types))
	for i, t := range e.Types {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

// spec is the registry's build recipe for one entry.
type spec struct {
	cve   string
	fns   []string
	size  int
	types string // "1", "2", "3", "1,2", "1,3"
	t1    string // archetype for the Type-1 part: bounds | leak | ref
	desc  string
	fig   bool
}

// table transcribes Table I (plus the three figure-only CVEs at the
// end). Function names are the paper's, with obvious OCR damage in the
// source text repaired (e.g. "scp_chunk_pending" → sctp_chunk_pending).
var table = []spec{
	{cve: "CVE-2014-0196", fns: []string{"n_tty_write"}, size: 86, types: "1", t1: "bounds", desc: "pty layer buffer overflow in n_tty_write; modeled as a missing bounds check clobbering adjacent state"},
	{cve: "CVE-2014-3687", fns: []string{"sctp_chunk_pending", "sctp_assoc_lookup_asconf_ack"}, size: 16, types: "1,2", t1: "leak", desc: "SCTP duplicate-ASCONF chunk handling; direct fix plus an inline lookup helper implicating its callers"},
	{cve: "CVE-2014-3690", fns: []string{"vmx_vcpu_run", "vmcs_host_cr4", "vmx_set_constant_host_state"}, size: 247, types: "3", desc: "KVM host CR4 not restored on VM exit; modeled as a cached-state field added to a shared structure (Type 3)"},
	{cve: "CVE-2014-4157", fns: []string{"current_thread_info"}, size: 5, types: "2", desc: "MIPS ptrace flag leak through inline current_thread_info; fix lands in every inlining call site"},
	{cve: "CVE-2014-5077", fns: []string{"sctp_assoc_update"}, size: 98, types: "1", t1: "bounds", desc: "SCTP association NULL dereference during simultaneous connections; missing-validation archetype"},
	{cve: "CVE-2014-8206", fns: []string{"do_remount"}, size: 34, types: "2", desc: "mount remount flag confusion in do_remount; inline permission validator implicates callers"},
	{cve: "CVE-2014-7842", fns: []string{"handle_emulation_failure"}, size: 16, types: "1", t1: "leak", desc: "KVM emulation-failure path leaks state; information-leak archetype on a crafted request"},
	{cve: "CVE-2014-8133", fns: []string{"set_tls_desc", "regset_tls_set"}, size: 81, types: "1,2", t1: "bounds", desc: "TLS descriptor validation bypass (espfix); bounds check plus an inline setter helper"},
	{cve: "CVE-2015-1333", fns: []string{"__key_link_end"}, size: 21, types: "1", t1: "ref", desc: "keyring link allocation leak in __key_link_end; refcount imbalance on the error path"},
	{cve: "CVE-2015-1421", fns: []string{"sctp_assoc_update"}, size: 96, types: "1", t1: "ref", desc: "SCTP use-after-free on INIT collisions; refcount double-put archetype"},
	{cve: "CVE-2015-5707", fns: []string{"sg_start_req"}, size: 117, types: "1", t1: "bounds", desc: "integer overflow in SCSI generic sg_start_req; out-of-bounds write archetype"},
	{cve: "CVE-2015-7172", fns: []string{"key_gc_unused_keys", "request_key_and_link"}, size: 20, types: "1", t1: "leak", desc: "keyring garbage collection vs request_key race; information-leak archetype"},
	{cve: "CVE-2015-8812", fns: []string{"iwch_l2t_send", "iwch_cxgb3_ofld_send"}, size: 26, types: "1", t1: "bounds", desc: "iw_cxgb3 use-after-free on congested sends; missing bounds check before queueing"},
	{cve: "CVE-2015-8963", fns: []string{"perf_swevent_add", "swevent_hlist_get_cpu", "perf_event_exit_cpu_context"}, size: 72, types: "3", desc: "perf swevent hlist use-after-free on CPU hotplug; cached per-CPU field added (Type 3)"},
	{cve: "CVE-2015-8964", fns: []string{"tty_set_termios_ldisc"}, size: 10, types: "2", desc: "tty line-discipline use-after-free on failed reset; inline state validator implicates callers"},
	{cve: "CVE-2016-2143", fns: []string{"init_new_context", "pgd_alloc", "pgd_free"}, size: 53, types: "2", desc: "s390 fork page-table corruption; inline context initializers fixed at every expansion site"},
	{cve: "CVE-2016-2543", fns: []string{"snd_seq_ioctl_remove_events"}, size: 25, types: "1", t1: "leak", desc: "ALSA sequencer NULL pointer in queue deletion; missing-check information leak archetype"},
	{cve: "CVE-2016-4578", fns: []string{"snd_timer_user_ccallback"}, size: 24, types: "1", t1: "leak", desc: "ALSA timer stack info leak in user ccallback; uninitialized-field leak archetype"},
	{cve: "CVE-2016-4580", fns: []string{"x25_negotiate_facilities"}, size: 67, types: "1", t1: "bounds", desc: "x25 facilities negotiation stack leak; bounds check on negotiated lengths"},
	{cve: "CVE-2016-5195", fns: []string{"follow_page_pte", "faultin_page"}, size: 229, types: "1,3", t1: "bounds", desc: "Dirty COW: racy copy-on-write in follow_page_pte/faultin_page; bounds fix plus retry-state field (Type 3)"},
	{cve: "CVE-2016-5829", fns: []string{"hiddev_ioctl_usage"}, size: 119, types: "1", t1: "bounds", desc: "HID hiddev out-of-bounds write in ioctl usage handling; bounds-check archetype"},
	{cve: "CVE-2016-7914", fns: []string{"assoc_array_insert_into_terminal_node"}, size: 330, types: "1", t1: "bounds", desc: "assoc_array insertion out-of-bounds index; largest patch in the suite (330 LoC)"},
	{cve: "CVE-2016-7916", fns: []string{"environ_read"}, size: 63, types: "1", t1: "leak", desc: "procfs environ_read race reads freed memory; crafted-request information leak"},
	{cve: "CVE-2017-6347", fns: []string{"ip_cmsg_recv_checksum"}, size: 15, types: "2", desc: "ip_cmsg_recv_checksum misreads partial checksums; inline validator implicates callers"},
	{cve: "CVE-2017-8251", fns: []string{"omninet_open"}, size: 9, types: "2", desc: "omninet_open missing port check; smallest Type 2 patch in the suite"},
	{cve: "CVE-2017-16994", fns: []string{"walk_page_range"}, size: 27, types: "1", t1: "ref", desc: "walk_page_range skips hugetlb VMAs leaking mappings; refcount-imbalance archetype"},
	{cve: "CVE-2017-17053", fns: []string{"init_new_context"}, size: 13, types: "2", desc: "x86 LDT init_new_context error path use-after-free (Listing 2 of the paper); inline fix implicating callers"},
	{cve: "CVE-2017-17806", fns: []string{"hmac_create", "crypto_shash_alg_has_setkey"}, size: 91, types: "1,2", t1: "bounds", desc: "HMAC missing SHA-3 setkey check (Listing 1 of the paper); stack overflow plus inline alg-check helper"},
	{cve: "CVE-2017-18270", fns: []string{"install_user_keyring", "join_session_keyring"}, size: 273, types: "1,2", t1: "ref", desc: "keyrings: install_user_keyring race allows cross-user access; refcount fix plus inline join helper"},
	{cve: "CVE-2018-10124", fns: []string{"kill_something_info", "sys_kill"}, size: 51, types: "1,2", t1: "leak", desc: "kill_something_info INT_MIN negation overflow; leak archetype plus inline signal validator"},

	// Figure 4/5 x-axis extras (§VI-C3's whole-system selection).
	{cve: "CVE-2014-3153", fns: []string{"futex_requeue"}, size: 150, types: "1", t1: "bounds", fig: true, desc: "futex_requeue requeues to the same futex (Towelroot); bounds-check archetype (figure set)"},
	{cve: "CVE-2014-4608", fns: []string{"lzo1x_decompress_safe"}, size: 39, types: "1", t1: "bounds", fig: true, desc: "lzo1x_decompress_safe integer overflow; the paper's 156-byte whole-system example (figure set)"},
	{cve: "CVE-2016-0728", fns: []string{"join_session_keyring"}, size: 81, types: "1", t1: "ref", fig: true, desc: "keyring join_session_keyring refcount overflow; double-put archetype (figure set)"},
}

// registry is built once at init from the table; Register extends it
// at runtime (generated corpus entries), guarded by regMu.
var (
	regMu    sync.RWMutex
	registry = func() map[string]*Entry {
		m := make(map[string]*Entry, len(table))
		for _, s := range table {
			e, err := buildEntry(s)
			if err != nil {
				panic(fmt.Sprintf("cvebench: %s: %v", s.cve, err))
			}
			if err := checkConflicts(m, e); err != nil {
				panic(fmt.Sprintf("cvebench: %s: %v", s.cve, err))
			}
			m[s.cve] = e
		}
		return m
	}()
)

// checkConflicts rejects an entry that cannot coexist with the ones
// already registered. The dangerous case is two entries claiming the
// same source File with different Vuln or Fixed content: a tree
// provider would install one entry's vulnerable file and the other's
// source patch would silently clobber it, so the built patch would no
// longer correspond to either CVE.
func checkConflicts(m map[string]*Entry, e *Entry) error {
	if prev, ok := m[e.CVE]; ok {
		if prev.File == e.File && prev.Vuln == e.Vuln && prev.Fixed == e.Fixed {
			return nil // identical re-registration is a no-op upstream
		}
		return fmt.Errorf("entry %s already registered with different content", e.CVE)
	}
	for _, other := range m {
		if other.File != e.File {
			continue
		}
		if other.Vuln != e.Vuln {
			return fmt.Errorf("entry %s patches file %s already claimed by %s with conflicting vulnerable content",
				e.CVE, e.File, other.CVE)
		}
		if other.Fixed != e.Fixed {
			return fmt.Errorf("entry %s patches file %s already claimed by %s with conflicting fixed content",
				e.CVE, e.File, other.CVE)
		}
	}
	return nil
}

// Register adds an entry to the registry at runtime — the path
// generated corpus cases use so Get and CVE-addressed tooling resolve
// them like Table I entries. Registration is atomic: on error (missing
// fields, a duplicate CVE with different content, or a same-File
// content conflict per checkConflicts) the registry is unchanged.
// Registered entries do not appear in All or FigureSix, which render
// the paper's fixed tables.
func Register(e *Entry) error {
	switch {
	case e == nil:
		return fmt.Errorf("cvebench: Register(nil)")
	case e.CVE == "" || e.File == "":
		return fmt.Errorf("cvebench: Register %q: CVE and File are required", e.CVE)
	case e.Vuln == "" || e.Fixed == "":
		return fmt.Errorf("cvebench: Register %s: Vuln and Fixed sources are required", e.CVE)
	case e.Vuln == e.Fixed:
		return fmt.Errorf("cvebench: Register %s: vulnerable and fixed content are identical", e.CVE)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := registry[e.CVE]; ok && prev.File == e.File && prev.Vuln == e.Vuln && prev.Fixed == e.Fixed {
		return nil // identical re-registration: keep the existing entry
	}
	if err := checkConflicts(registry, e); err != nil {
		return fmt.Errorf("cvebench: Register: %w", err)
	}
	registry[e.CVE] = e
	return nil
}

// All returns the 30 Table I entries in table order.
func All() []*Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Entry, 0, 30)
	for _, s := range table {
		if !s.fig {
			out = append(out, registry[s.cve])
		}
	}
	return out
}

// FigureSix returns the six CVEs of Figures 4 and 5, in the paper's
// x-axis order.
func FigureSix() []*Entry {
	ids := []string{
		"CVE-2014-0196", "CVE-2014-3153", "CVE-2014-4608",
		"CVE-2016-0728", "CVE-2016-5195", "CVE-2017-17806",
	}
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Entry, len(ids))
	for i, id := range ids {
		out[i] = registry[id]
	}
	return out
}

// Get returns the entry for a CVE identifier (Table I or registered).
func Get(cve string) (*Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[cve]
	return e, ok
}

// buildEntry instantiates a spec's archetypes.
func buildEntry(s spec) (*Entry, error) {
	e := &Entry{
		CVE:        s.cve,
		Functions:  append([]string(nil), s.fns...),
		SizeLoC:    s.size,
		File:       "cve/" + strings.ToLower(s.cve) + ".asm",
		Summary:    s.desc,
		FigureOnly: s.fig,
	}
	for _, t := range strings.Split(s.types, ",") {
		switch t {
		case "1":
			e.Types = append(e.Types, patch.Type1)
		case "2":
			e.Types = append(e.Types, patch.Type2)
		case "3":
			e.Types = append(e.Types, patch.Type3)
		default:
			return nil, fmt.Errorf("bad type %q", t)
		}
	}

	var vuln, fixed strings.Builder
	var probes []ExploitFunc
	header := fmt.Sprintf("; %s — %s (types %s)\n", s.cve, strings.Join(s.fns, ", "), s.types)
	vuln.WriteString(header)
	fixed.WriteString(header)

	emitT1 := func(fn string, padN int) {
		switch s.t1 {
		case "leak":
			vuln.WriteString(leakFunc(fn, padN, false))
			fixed.WriteString(leakFunc(fn, padN, true))
			probes = append(probes, leakExploit(fn))
		case "ref":
			vuln.WriteString(refcountFunc(fn, padN, false))
			fixed.WriteString(refcountFunc(fn, padN, true))
			probes = append(probes, refcountExploit(fn))
		default: // bounds
			vuln.WriteString(boundsCheckFunc(fn, padN, false))
			fixed.WriteString(boundsCheckFunc(fn, padN, true))
			probes = append(probes, boundsCheckExploit(fn))
		}
	}

	switch s.types {
	case "1":
		padN := splitPad(s.size, 14, len(s.fns))
		for _, fn := range s.fns {
			emitT1(fn, padN)
		}
	case "2":
		padN := splitPad(s.size, 8, len(s.fns))
		for _, fn := range s.fns {
			vuln.WriteString(inlineValidatorFunc(fn, 2, padN, false))
			fixed.WriteString(inlineValidatorFunc(fn, 2, padN, true))
			probes = append(probes, inlineValidatorExploit(fn))
		}
	case "1,2":
		padN := splitPad(s.size, 12, len(s.fns))
		emitT1(s.fns[0], padN)
		for _, fn := range s.fns[1:] {
			vuln.WriteString(inlineValidatorFunc(fn, 1, padN, false))
			fixed.WriteString(inlineValidatorFunc(fn, 1, padN, true))
			probes = append(probes, inlineValidatorExploit(fn))
		}
	case "3":
		base := strings.ToLower(strings.ReplaceAll(s.cve, "-", "_"))
		padN := splitPad(s.size, 10, len(s.fns))
		vuln.WriteString(structExtensionFuncs(base, s.fns, padN, false))
		fixed.WriteString(structExtensionFuncs(base, s.fns, padN, true))
		probes = append(probes, structExtensionExploit(s.fns))
	case "1,3":
		base := strings.ToLower(strings.ReplaceAll(s.cve, "-", "_"))
		padN := splitPad(s.size, 12, len(s.fns))
		emitT1(s.fns[0], padN)
		vuln.WriteString(structExtensionFuncs(base, s.fns[1:], padN, false))
		fixed.WriteString(structExtensionFuncs(base, s.fns[1:], padN, true))
		probes = append(probes, structExtensionExploit(s.fns[1:]))
	default:
		return nil, fmt.Errorf("unsupported type combination %q", s.types)
	}

	e.Vuln = vuln.String()
	e.Fixed = fixed.String()
	e.Exploit = anyVulnerable(probes)
	return e, nil
}

// anyVulnerable combines probes: the kernel is vulnerable while any
// probe still succeeds.
func anyVulnerable(probes []ExploitFunc) ExploitFunc {
	return func(k *kernel.Kernel, vcpu int) (ExploitResult, error) {
		var details []string
		vulnerable := false
		for _, p := range probes {
			r, err := p(k, vcpu)
			if err != nil {
				return ExploitResult{}, err
			}
			if r.Vulnerable {
				vulnerable = true
			}
			details = append(details, r.Detail)
		}
		return ExploitResult{Vulnerable: vulnerable, Detail: strings.Join(details, "; ")}, nil
	}
}

// VulnerableTree builds a kernel source tree of the given version with
// the entry's vulnerable subsystem included.
func VulnerableTree(version string, e *Entry) (*kernel.SourceTree, error) {
	st, err := kernel.BaseTree(version)
	if err != nil {
		return nil, err
	}
	st.AddFile(e.File, e.Vuln)
	return st, nil
}

// TreeProviderFor returns a patchserver.TreeProvider-compatible
// function producing trees that include the vulnerable files of the
// given entries (the distro vendor's full source).
func TreeProviderFor(entries ...*Entry) func(version string) (*kernel.SourceTree, error) {
	sorted := append([]*Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].File < sorted[j].File })
	return func(version string) (*kernel.SourceTree, error) {
		st, err := kernel.BaseTree(version)
		if err != nil {
			return nil, err
		}
		for _, e := range sorted {
			st.AddFile(e.File, e.Vuln)
		}
		return st, nil
	}
}
