package cvebench

import "testing"

func TestConflictFreeWavesPartitionTableI(t *testing.T) {
	all := All()
	waves := ConflictFreeWaves(all)

	// Every entry lands in exactly one wave.
	total := 0
	seen := make(map[string]bool, len(all))
	for _, w := range waves {
		total += len(w)
		for _, e := range w {
			if seen[e.CVE] {
				t.Errorf("%s appears in more than one wave", e.CVE)
			}
			seen[e.CVE] = true
		}
	}
	if total != len(all) {
		t.Errorf("waves hold %d entries, want %d", total, len(all))
	}

	// Within a wave no two entries share a file or define the same
	// function — one kernel cannot host duplicate definitions.
	for wi, w := range waves {
		keys := make(map[string]string)
		for _, e := range w {
			for _, k := range entryKeys(e) {
				if prev, dup := keys[k]; dup {
					t.Errorf("wave %d: %s and %s both contribute %s", wi, prev, e.CVE, k)
				}
				keys[k] = e.CVE
			}
		}
	}

	// Table I needs splitting (sctp_assoc_update and init_new_context
	// each appear under two CVEs) but only just: a big first wave plus a
	// small remainder.
	if len(waves) < 2 {
		t.Errorf("waves = %d, want >= 2 (duplicate function definitions in Table I)", len(waves))
	}
	if len(waves[0]) < len(all)-len(waves[0]) {
		t.Errorf("first-fit wave sizes %v: first wave should dominate", waveSizes(waves))
	}
}

func TestConflictFreeWavesPreservesOrderWithinWave(t *testing.T) {
	all := All()
	waves := ConflictFreeWaves(all)
	pos := make(map[string]int, len(all))
	for i, e := range all {
		pos[e.CVE] = i
	}
	for wi, w := range waves {
		for i := 1; i < len(w); i++ {
			if pos[w[i-1].CVE] > pos[w[i].CVE] {
				t.Errorf("wave %d not in registry order: %s after %s", wi, w[i-1].CVE, w[i].CVE)
			}
		}
	}
}

func TestConflictFreeWavesEmpty(t *testing.T) {
	if waves := ConflictFreeWaves(nil); len(waves) != 0 {
		t.Errorf("ConflictFreeWaves(nil) = %v", waves)
	}
}

func waveSizes(waves [][]*Entry) []int {
	sizes := make([]int, len(waves))
	for i, w := range waves {
		sizes[i] = len(w)
	}
	return sizes
}
