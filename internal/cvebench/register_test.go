package cvebench

import (
	"strings"
	"testing"
)

func genEntry(cve, file, vuln, fixed string) *Entry {
	return &Entry{CVE: cve, File: file, Vuln: vuln, Fixed: fixed,
		Functions: []string{"f"}, Summary: "test entry"}
}

func TestRegisterAndGet(t *testing.T) {
	e := genEntry("TEST-REG-1", "cve/test_reg_1.asm", "; v\n", "; f\n")
	if err := Register(e); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, ok := Get("TEST-REG-1")
	if !ok || got != e {
		t.Fatal("registered entry not resolvable via Get")
	}
	// Identical re-registration is a no-op, not an error.
	if err := Register(genEntry("TEST-REG-1", "cve/test_reg_1.asm", "; v\n", "; f\n")); err != nil {
		t.Fatalf("identical re-registration: %v", err)
	}
	if again, _ := Get("TEST-REG-1"); again != e {
		t.Fatal("identical re-registration replaced the original entry")
	}
}

func TestRegisterRejectsSameFileConflicts(t *testing.T) {
	base := genEntry("TEST-CONF-A", "cve/test_conf.asm", "; vuln\n", "; fixed\n")
	if err := Register(base); err != nil {
		t.Fatalf("Register base: %v", err)
	}

	// Same file, conflicting fixed content: the second patch would
	// silently clobber the first at the server's tree provider.
	err := Register(genEntry("TEST-CONF-B", "cve/test_conf.asm", "; vuln\n", "; other fix\n"))
	if err == nil {
		t.Fatal("conflicting Fixed content on the same File was accepted")
	}
	if !strings.Contains(err.Error(), "conflicting fixed content") || !strings.Contains(err.Error(), "TEST-CONF-A") {
		t.Fatalf("conflict error does not name the clash: %v", err)
	}
	if _, ok := Get("TEST-CONF-B"); ok {
		t.Fatal("rejected entry leaked into the registry")
	}

	// Same file, conflicting vulnerable content.
	err = Register(genEntry("TEST-CONF-C", "cve/test_conf.asm", "; other vuln\n", "; fixed\n"))
	if err == nil || !strings.Contains(err.Error(), "conflicting vulnerable content") {
		t.Fatalf("conflicting Vuln content not rejected: %v", err)
	}

	// Same file with identical content under a new ID is fine (two IDs
	// sharing one subsystem fix).
	if err := Register(genEntry("TEST-CONF-D", "cve/test_conf.asm", "; vuln\n", "; fixed\n")); err != nil {
		t.Fatalf("identical-content same-file entry rejected: %v", err)
	}
}

func TestRegisterRejectsDuplicateIDWithDifferentContent(t *testing.T) {
	if err := Register(genEntry("TEST-DUP-1", "cve/test_dup_1.asm", "; v\n", "; f\n")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	err := Register(genEntry("TEST-DUP-1", "cve/test_dup_1b.asm", "; v2\n", "; f2\n"))
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate ID with different content not rejected: %v", err)
	}
}

func TestRegisterRejectsIncompleteEntries(t *testing.T) {
	for _, e := range []*Entry{
		nil,
		genEntry("", "cve/x.asm", "v", "f"),
		genEntry("TEST-BAD", "", "v", "f"),
		genEntry("TEST-BAD", "cve/x.asm", "", "f"),
		genEntry("TEST-BAD", "cve/x.asm", "same", "same"),
	} {
		if err := Register(e); err == nil {
			t.Errorf("incomplete entry %+v accepted", e)
		}
	}
}

// TestRegisterAgainstTableEntry checks the conflict rules also protect
// the init-built Table I corpus.
func TestRegisterAgainstTableEntry(t *testing.T) {
	orig, ok := Get("CVE-2014-0196")
	if !ok {
		t.Fatal("Table I entry missing")
	}
	err := Register(genEntry("TEST-TBL", orig.File, orig.Vuln, "; different fix\n"))
	if err == nil {
		t.Fatal("conflict with a Table I entry's file was accepted")
	}
	if got, _ := Get("CVE-2014-0196"); got != orig {
		t.Fatal("Table I entry was disturbed by a rejected registration")
	}
}
