package faultinject

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// Identical seeds must derive identical schedules, and a point's
// schedule must not depend on which other points are armed.
func TestPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := NewPlan(seed, PlanConfig{})
		b := NewPlan(seed, PlanConfig{})
		if !reflect.DeepEqual(a.Faults(), b.Faults()) {
			t.Fatalf("seed %d: plans differ", seed)
		}
		solo := NewPlan(seed, PlanConfig{Points: []Point{SMMRefuse}})
		if !reflect.DeepEqual(solo.Scheduled(SMMRefuse), a.Scheduled(SMMRefuse)) {
			t.Fatalf("seed %d: %s schedule depends on other armed points", seed, SMMRefuse)
		}
	}
}

func TestPlanDiffersAcrossSeeds(t *testing.T) {
	a := NewPlan(1, PlanConfig{})
	b := NewPlan(2, PlanConfig{})
	if reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatalf("seeds 1 and 2 produced identical plans")
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	cfg := PlanConfig{Prob: 1.0, MaxPerPoint: 3, Horizon: 10}
	p := NewPlan(7, cfg)
	for _, pt := range Points() {
		s := p.Scheduled(pt)
		if len(s) != 3 {
			t.Fatalf("%s: got %d faults, want 3", pt, len(s))
		}
		for i, f := range s {
			if f.Call != i {
				t.Fatalf("%s: prob 1 should fire on consecutive calls, got %+v", pt, s)
			}
		}
	}
}

func TestNilSetIsQuiet(t *testing.T) {
	var s *Set
	if s.Fire(SMMRefuse) {
		t.Fatal("nil set fired")
	}
	if err := s.Error(SGXECallFail); err != nil {
		t.Fatalf("nil set returned error %v", err)
	}
	buf := []byte{0xAA}
	if s.Corrupt(MemWCorrupt, buf) || buf[0] != 0xAA {
		t.Fatal("nil set corrupted a buffer")
	}
	if n, ok := s.Truncate(FetchTruncate, 10); ok || n != 10 {
		t.Fatalf("nil set truncated: n=%d ok=%v", n, ok)
	}
	if _, ok := s.Delay(FetchDelay); ok {
		t.Fatal("nil set delayed")
	}
	if s.Calls(SMMRefuse) != 0 || s.Fired() != 0 || s.Log() != nil {
		t.Fatal("nil set has state")
	}
	s.Reset() // must not panic
}

func TestExactFiresOnScheduledCalls(t *testing.T) {
	s := New(Exact(
		Fault{Point: SMMRefuse, Call: 1},
		Fault{Point: SMMRefuse, Call: 3},
	))
	var fired []bool
	for i := 0; i < 5; i++ {
		fired = append(fired, s.Fire(SMMRefuse))
	}
	want := []bool{false, true, false, true, false}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if s.Calls(SMMRefuse) != 5 {
		t.Fatalf("calls = %d, want 5", s.Calls(SMMRefuse))
	}
	if s.Fired() != 2 {
		t.Fatalf("fired count = %d, want 2", s.Fired())
	}
}

func TestErrorUnwrapsToSentinel(t *testing.T) {
	s := New(Exact(Fault{Point: SGXECallFail, Call: 0}))
	err := s.Error(SGXECallFail)
	if err == nil {
		t.Fatal("expected injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not unwrap to ErrInjected", err)
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Point != SGXECallFail {
		t.Fatalf("error %v is not an *Injected for %s", err, SGXECallFail)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	s := New(Exact(Fault{Point: MemWCorrupt, Call: 0, Bit: 13}))
	orig := bytes.Repeat([]byte{0x5A}, 8)
	buf := append([]byte(nil), orig...)
	if !s.Corrupt(MemWCorrupt, buf) {
		t.Fatal("corrupt did not fire")
	}
	diffBits := 0
	for i := range buf {
		for b := 0; b < 8; b++ {
			if (buf[i]^orig[i])&(1<<b) != 0 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("corrupt flipped %d bits, want 1", diffBits)
	}
}

func TestTruncateShortens(t *testing.T) {
	s := New(Exact(Fault{Point: FetchTruncate, Call: 0, Frac: 0.5}))
	n, ok := s.Truncate(FetchTruncate, 100)
	if !ok || n != 50 {
		t.Fatalf("truncate = (%d,%v), want (50,true)", n, ok)
	}
	// Frac rounding can never keep the whole body.
	s = New(Exact(Fault{Point: FetchTruncate, Call: 0, Frac: 0.999}))
	if n, ok := s.Truncate(FetchTruncate, 1); !ok || n != 0 {
		t.Fatalf("truncate(1) = (%d,%v), want (0,true)", n, ok)
	}
}

func TestDelayReturnsPlannedDuration(t *testing.T) {
	s := New(Exact(Fault{Point: FetchDelay, Call: 0, Delay: 42 * time.Microsecond}))
	d, ok := s.Delay(FetchDelay)
	if !ok || d != 42*time.Microsecond {
		t.Fatalf("delay = (%v,%v), want (42µs,true)", d, ok)
	}
}

func TestResetRearms(t *testing.T) {
	s := New(Exact(Fault{Point: SMMRefuse, Call: 0}))
	if !s.Fire(SMMRefuse) {
		t.Fatal("first pass should fire")
	}
	if s.Fire(SMMRefuse) {
		t.Fatal("second pass should not fire")
	}
	s.Reset()
	if !s.Fire(SMMRefuse) {
		t.Fatal("reset should rearm call 0")
	}
	if s.Fired() != 1 {
		t.Fatalf("fired after reset = %d, want 1", s.Fired())
	}
}

// Two Sets driven by the same plan and consulted in the same order
// must fire identically and record identical logs.
func TestSetLogDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		plan := NewPlan(seed, PlanConfig{Prob: 0.5})
		run := func() []Fault {
			s := New(plan)
			for i := 0; i < 30; i++ {
				for _, pt := range Points() {
					s.fire(pt)
				}
			}
			return s.Log()
		}
		if a, b := run(), run(); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: logs differ:\n%v\n%v", seed, a, b)
		}
	}
}
