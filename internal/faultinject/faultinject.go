// Package faultinject is KShot's deterministic, seed-driven fault
// injection layer. Named injection points are threaded through the
// layers that carry the security argument — physical memory staging,
// SMI delivery, the SGX enclave boundary, the patch-server transport,
// and the batch pipeline — and each point consults an installed Set on
// every pass. A Set is driven by a Plan: a pure function of (seed,
// point) to a fault schedule, so any failure the chaos suite finds is
// replayable from its seed alone.
//
// When no Set is installed the hooks are nil-receiver no-ops: a nil
// *Set is a valid, permanently-quiet injector, so production paths pay
// one predictable branch and nothing else.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Point names one injection site. The dotted prefix is the package the
// hook lives in.
type Point string

// The injection points wired through the simulator.
const (
	// MemWCorrupt flips one bit of a helper write into the mem_W
	// staging region (a corrupted hand-off buffer).
	MemWCorrupt Point = "mem.w.corrupt"
	// MemWFault rejects a helper write into mem_W with an access
	// fault (staging denied mid-run).
	MemWFault Point = "mem.w.fault"

	// SMMRefuse makes the controller refuse to deliver an SMI before
	// pausing the machine (chipset drops the interrupt).
	SMMRefuse Point = "smm.refuse"
	// SMMBatchAbort aborts the batch handler between members: the
	// remaining members report errors but the SMI completes.
	SMMBatchAbort Point = "smm.batch.abort"

	// SGXECallFail fails an ECALL at the enclave boundary.
	SGXECallFail Point = "sgx.ecall.fail"
	// SGXDestroy destroys the enclave at an ECALL boundary (EPC loss,
	// enclave crash), surfacing sgx.ErrDestroyed to the caller.
	SGXDestroy Point = "sgx.destroy"

	// FetchError fails one patch fetch result.
	FetchError Point = "patchserver.fetch.error"
	// FetchTruncate truncates one fetched patch body.
	FetchTruncate Point = "patchserver.fetch.truncate"
	// FetchDelay injects extra latency into a fetch call (an induced
	// timeout when the caller's context expires first).
	FetchDelay Point = "patchserver.fetch.delay"
	// DialError fails one client connect attempt (server unreachable,
	// transient network failure) — the dial-retry path's fault.
	DialError Point = "patchserver.dial.error"
	// AcceptStall wedges the server's accept loop for the injected
	// duration (slow or contended frontend).
	AcceptStall Point = "patchserver.accept.stall"
	// BuildCacheBypass drops the build-cache entry for the requested
	// artifact, forcing a full rebuild (cache corruption, cold restart).
	BuildCacheBypass Point = "patchserver.cache.bypass"

	// PipelineStall stalls a fetch worker before it issues its call.
	PipelineStall Point = "pipeline.stall"
	// PipelineCancel cancels the pipeline's context at a stage
	// boundary.
	PipelineCancel Point = "pipeline.cancel"
)

// Points returns every injection point, in stable order.
func Points() []Point {
	return []Point{
		MemWCorrupt, MemWFault,
		SMMRefuse, SMMBatchAbort,
		SGXECallFail, SGXDestroy,
		FetchError, FetchTruncate, FetchDelay,
		DialError, AcceptStall, BuildCacheBypass,
		PipelineStall, PipelineCancel,
	}
}

// ErrInjected is the sentinel all injected errors unwrap to, so tests
// and retry classifiers can tell induced failures from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Injected is the error an Error-kind hook returns. It unwraps to
// ErrInjected.
type Injected struct {
	Point Point
	Call  int
}

// Error implements the error interface.
func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (call %d)", e.Point, e.Call)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *Injected) Unwrap() error { return ErrInjected }

// Fault is one scheduled injection: fire at the point's Call-th pass
// (0-based). The remaining fields parameterize point-specific effects
// and are ignored by points that do not use them.
type Fault struct {
	Point Point
	Call  int

	// Bit selects which bit a corruption flips (taken modulo the
	// buffer length at the hook site).
	Bit uint
	// Frac is the fraction of a body a truncation keeps, in [0,1).
	Frac float64
	// Delay is the extra latency a delay/stall point injects.
	Delay time.Duration
}

// FlipBit applies the fault's corruption effect: it flips the planned
// bit of buf in place (modulo the buffer length).
func (f Fault) FlipBit(buf []byte) {
	if len(buf) == 0 {
		return
	}
	bit := f.Bit % uint(len(buf)*8)
	buf[bit/8] ^= 1 << (bit % 8)
}

// PlanConfig tunes schedule generation. The zero value gets defaults
// suitable for the chaos suite.
type PlanConfig struct {
	// Points lists the points to arm; nil arms all of them.
	Points []Point
	// Prob is the per-call fire probability while the point still has
	// budget (default 0.3).
	Prob float64
	// MaxPerPoint bounds how many times one point fires (default 2),
	// so schedules model transient faults the system should absorb
	// rather than a permanently broken component.
	MaxPerPoint int
	// Horizon is how many call indices per point are considered
	// (default 24).
	Horizon int
	// MaxDelay bounds injected delays (default 2ms).
	MaxDelay time.Duration
}

func (c PlanConfig) withDefaults() PlanConfig {
	if c.Points == nil {
		c.Points = Points()
	}
	if c.Prob <= 0 {
		c.Prob = 0.3
	}
	if c.MaxPerPoint <= 0 {
		c.MaxPerPoint = 2
	}
	if c.Horizon <= 0 {
		c.Horizon = 24
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	return c
}

// Plan maps each armed point to its fault schedule. A Plan is a pure
// function of (seed, config): building it twice yields identical
// schedules, which is what makes every chaos failure replayable.
type Plan struct {
	Seed     int64
	schedule map[Point][]Fault
}

// NewPlan derives a schedule for every armed point from seed. Each
// point gets its own PRNG stream seeded by hash(seed, point), so one
// point's schedule never depends on which other points are armed.
func NewPlan(seed int64, cfg PlanConfig) *Plan {
	cfg = cfg.withDefaults()
	p := &Plan{Seed: seed, schedule: make(map[Point][]Fault, len(cfg.Points))}
	for _, pt := range cfg.Points {
		rng := rand.New(rand.NewSource(pointSeed(seed, pt)))
		var faults []Fault
		for call := 0; call < cfg.Horizon && len(faults) < cfg.MaxPerPoint; call++ {
			if rng.Float64() >= cfg.Prob {
				continue
			}
			faults = append(faults, Fault{
				Point: pt,
				Call:  call,
				Bit:   uint(rng.Intn(1 << 16)),
				Frac:  rng.Float64() * 0.9,
				Delay: time.Duration(1 + rng.Int63n(int64(cfg.MaxDelay))),
			})
		}
		if len(faults) > 0 {
			p.schedule[pt] = faults
		}
	}
	return p
}

// Exact builds a plan firing precisely the given faults — the
// targeted-injection entry point for per-package unit tests.
func Exact(faults ...Fault) *Plan {
	p := &Plan{Seed: -1, schedule: make(map[Point][]Fault)}
	for _, f := range faults {
		p.schedule[f.Point] = append(p.schedule[f.Point], f)
	}
	for pt := range p.schedule {
		s := p.schedule[pt]
		sort.Slice(s, func(i, j int) bool { return s[i].Call < s[j].Call })
	}
	return p
}

// Scheduled returns the plan's fault list for a point (in call order).
func (p *Plan) Scheduled(pt Point) []Fault {
	return append([]Fault(nil), p.schedule[pt]...)
}

// Faults returns every scheduled fault, ordered by point then call.
func (p *Plan) Faults() []Fault {
	var out []Fault
	for _, pt := range Points() {
		out = append(out, p.schedule[pt]...)
	}
	return out
}

// pointSeed mixes the plan seed with the point name so every point
// draws from an independent deterministic stream.
func pointSeed(seed int64, pt Point) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", seed, pt)
	return int64(h.Sum64())
}

// Set is the runtime injector the hooks consult. It tracks a call
// counter per point and fires the planned fault when the counter hits
// a scheduled index, recording everything it fired. All methods are
// safe on a nil receiver (permanently disabled) and for concurrent
// use.
type Set struct {
	mu       sync.Mutex
	plan     *Plan
	calls    map[Point]int
	fired    map[Point][]Fault
	observer func(Point)
}

// New builds a Set driven by plan (nil plan means never fire).
func New(plan *Plan) *Set {
	return &Set{
		plan:  plan,
		calls: make(map[Point]int),
		fired: make(map[Point][]Fault),
	}
}

// SetObserver installs a callback invoked (outside the set's lock)
// every time a fault actually fires — how the observability layer
// counts fault-point hits without this package importing it.
func (s *Set) SetObserver(fn func(Point)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// fire advances the point's call counter and returns the scheduled
// fault if this pass is one.
func (s *Set) fire(pt Point) (Fault, bool) {
	if s == nil || s.plan == nil {
		return Fault{}, false
	}
	s.mu.Lock()
	n := s.calls[pt]
	s.calls[pt] = n + 1
	for _, f := range s.plan.schedule[pt] {
		if f.Call == n {
			s.fired[pt] = append(s.fired[pt], f)
			obs := s.observer
			s.mu.Unlock()
			if obs != nil {
				obs(pt)
			}
			return f, true
		}
	}
	s.mu.Unlock()
	return Fault{}, false
}

// Fire reports whether the point's fault fires on this pass — the hook
// form for effects the call site realizes itself (refusal, abort,
// cancellation, destruction).
func (s *Set) Fire(pt Point) bool {
	_, ok := s.fire(pt)
	return ok
}

// Take advances the point and returns the fired fault, for hooks that
// apply a parameterized effect themselves.
func (s *Set) Take(pt Point) (Fault, bool) { return s.fire(pt) }

// Error returns an *Injected error when the point fires, nil
// otherwise.
func (s *Set) Error(pt Point) error {
	f, ok := s.fire(pt)
	if !ok {
		return nil
	}
	return &Injected{Point: pt, Call: f.Call}
}

// Corrupt flips one planned bit of buf in place when the point fires,
// reporting whether it did. Empty buffers never fire.
func (s *Set) Corrupt(pt Point, buf []byte) bool {
	if s == nil || len(buf) == 0 {
		return false
	}
	f, ok := s.fire(pt)
	if !ok {
		return false
	}
	f.FlipBit(buf)
	return true
}

// Truncate returns the length to keep of an n-byte body when the
// point fires.
func (s *Set) Truncate(pt Point, n int) (int, bool) {
	f, ok := s.fire(pt)
	if !ok {
		return n, false
	}
	keep := int(float64(n) * f.Frac)
	if keep >= n {
		keep = n - 1
	}
	if keep < 0 {
		keep = 0
	}
	return keep, true
}

// Delay returns the planned extra latency when the point fires.
func (s *Set) Delay(pt Point) (time.Duration, bool) {
	f, ok := s.fire(pt)
	if !ok {
		return 0, false
	}
	return f.Delay, true
}

// Calls returns how many times the point has been consulted.
func (s *Set) Calls(pt Point) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[pt]
}

// Fired returns how many faults actually fired across all points.
func (s *Set) Fired() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, fs := range s.fired {
		n += len(fs)
	}
	return n
}

// Log returns every fault that fired, ordered by point then call —
// the determinism witness the chaos suite compares across runs.
func (s *Set) Log() []Fault {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Fault
	for _, pt := range Points() {
		out = append(out, s.fired[pt]...)
	}
	return out
}

// Reset clears call counters and the fired log, rearming the plan.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = make(map[Point]int)
	s.fired = make(map[Point][]Fault)
}
