package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"kshot/internal/core"
	"kshot/internal/cvebench"
	"kshot/internal/evalharness"
	"kshot/internal/faultinject"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/sgx"
	"kshot/internal/smm"
	"kshot/internal/timing"
)

// chaosSubsetSize is how many CVEs each seeded schedule drives through
// ApplyAll. The subset rotates with the seed so the campaign sweeps
// the whole conflict-free pool.
const chaosSubsetSize = 4

// chaosHarness is one provisioned deployment reused across seeded
// chaos cycles. Reuse is safe because every cycle ends with a full
// LIFO rollback verified byte-identical against the pristine
// snapshots below — and it is what lets the campaign run hundreds of
// schedules without hundreds of machine boots.
type chaosHarness struct {
	t        *testing.T
	d        *evalharness.Deployment
	pool     []*cvebench.Entry
	pristine map[string][]byte // function -> pre-patch text bytes
	snap     *mem.Snapshot     // COW capture of the pristine machine
	text     *mem.Region
	smram    *mem.Region
	epc      *mem.Region
}

// outcome is the replayable result of one seeded cycle: which CVEs
// landed, which failed, and the exact fault schedule that fired.
type outcome struct {
	applied  []string
	failed   []string
	fired    int
	faults   []faultinject.Fault
	faultLog string
}

func newChaosHarness(t *testing.T, entries []*cvebench.Entry) *chaosHarness {
	t.Helper()
	d, err := evalharness.NewDeployment("4.4", 2, kcrypto.HashSHA256, entries...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	h := &chaosHarness{
		t: t, d: d, pool: entries,
		pristine: make(map[string][]byte),
		text:     d.System.Machine.Mem.Region(kernel.RegionText),
		smram:    d.System.Machine.Mem.Region(smm.RegionSMRAM),
		epc:      d.System.Machine.Mem.Region(sgx.RegionEPC),
	}
	if h.text == nil || h.smram == nil || h.epc == nil {
		t.Fatal("kernel.text/SMRAM/EPC regions not mapped")
	}
	// COW snapshot of the pristine machine: the frame-diff invariant
	// sweeps every byte of kernel.text against it, not just the
	// functions each CVE names.
	h.snap = d.System.Machine.Mem.Snapshot()
	for _, e := range entries {
		for _, fn := range e.Functions {
			// Some Table I rows list functions the patch introduces;
			// only functions present in the pristine kernel can anchor
			// the byte-identity invariant.
			b, err := d.System.Kernel.FuncBytes(fn)
			if err != nil {
				continue
			}
			h.pristine[fn] = append([]byte(nil), b...)
		}
	}
	if len(h.pristine) == 0 {
		t.Fatal("no pristine function snapshots taken")
	}
	return h
}

// subset picks the seed's rotating slice of the pool.
func (h *chaosHarness) subset(seed int64) []*cvebench.Entry {
	n := chaosSubsetSize
	if n > len(h.pool) {
		n = len(h.pool)
	}
	start := int(seed*7) % len(h.pool)
	out := make([]*cvebench.Entry, n)
	for i := range out {
		out[i] = h.pool[(start+i)%len(h.pool)]
	}
	return out
}

// cycle runs one seeded fault schedule through ApplyAll and asserts
// the four chaos invariants, leaving the system fully rolled back for
// the next seed. It returns the replay witness.
func (h *chaosHarness) cycle(seed int64, entries []*cvebench.Entry) outcome {
	t := h.t
	sys := h.d.System
	cves := make([]string, len(entries))
	inSubset := make(map[string]*cvebench.Entry, len(entries))
	for i, e := range entries {
		cves[i] = e.CVE
		inSubset[e.CVE] = e
	}

	fi := faultinject.New(faultinject.NewPlan(seed, faultinject.PlanConfig{}))
	sys.SetFaultInjector(fi)
	sys.SetWallClock(timing.NewFakeWall())
	rep, err := sys.ApplyAll(context.Background(), cves,
		core.WithBatchSize(2+int(seed%5)),
		core.WithFetchWorkers(1),
		core.WithSyncFetch(),
		core.WithMaxRetries(2),
		core.WithRetryBackoff(time.Millisecond))
	// ApplyAll's error return is reserved for cancellation, which the
	// pipeline.cancel fault point legitimately injects; anything else
	// is a harness bug, not chaos.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("seed %d: ApplyAll: %v", seed, err)
	}
	sys.SetFaultInjector(nil)

	out := outcome{fired: fi.Fired(), faults: fi.Log(), faultLog: fmt.Sprintf("%+v", fi.Log())}
	out.applied = append(out.applied, sys.Applied()...)
	for cve := range rep.Failed {
		out.failed = append(out.failed, cve)
	}
	sort.Strings(out.failed)

	// Invariant 1 — no torn writes: every requested CVE is either
	// fully applied (its exploit neutralized) or untouched (its
	// functions byte-identical to the pristine kernel).
	for _, cve := range out.applied {
		if inSubset[cve] == nil {
			t.Fatalf("seed %d: phantom patch %s applied (not in subset %v)", seed, cve, cves)
		}
	}
	appliedSet := make(map[string]bool, len(out.applied))
	for _, cve := range out.applied {
		appliedSet[cve] = true
	}
	for _, e := range entries {
		if appliedSet[e.CVE] {
			res, err := e.Exploit(sys.Kernel, 0)
			if err != nil {
				t.Fatalf("seed %d: exploit %s: %v", seed, e.CVE, err)
			}
			if res.Vulnerable {
				t.Fatalf("seed %d: %s reported applied but still vulnerable: %s", seed, e.CVE, res.Detail)
			}
		} else {
			h.requirePristine(seed, e, "after faulted ApplyAll")
		}
	}
	// The SMM introspection pass agrees: nothing half-written to
	// repair.
	tampered, err := sys.Protect()
	if err != nil {
		t.Fatalf("seed %d: Protect: %v", seed, err)
	}
	if tampered {
		t.Fatalf("seed %d: introspection found torn/tampered text after faulted run", seed)
	}

	// Invariant 2 — isolation: SMRAM and the EPC stay unreachable
	// from kernel and user privilege whatever faults were injected.
	h.requireIsolated(seed)

	// Invariant 3 — rollback restores original bytes. Applied() is
	// journal order, so walk it LIFO.
	for i := len(out.applied) - 1; i >= 0; i-- {
		if _, err := sys.Rollback(context.Background(), out.applied[i]); err != nil {
			t.Fatalf("seed %d: rollback %s: %v", seed, out.applied[i], err)
		}
	}
	if left := sys.Applied(); len(left) != 0 {
		t.Fatalf("seed %d: journal not empty after full rollback: %v", seed, left)
	}
	for _, e := range entries {
		h.requirePristine(seed, e, "after rollback")
	}
	h.requireTextClean(seed, "after rollback")
	memX, data := sys.Handler.Cursors()
	if memX != 0 || data != 0 {
		t.Fatalf("seed %d: allocation cursors (%d,%d) not rewound by rollback", seed, memX, data)
	}

	// Invariant 3b — no stale blocks: byte identity (3) is checked by
	// reading memory, but execution goes through the block-dispatch
	// cache. Every rolled-back exploit must actually fire again; a
	// cached block of the patched code would keep it neutralized even
	// though the text bytes are pristine.
	for _, cve := range out.applied {
		e := inSubset[cve]
		res, err := e.Exploit(sys.Kernel, 0)
		if err != nil {
			t.Fatalf("seed %d: post-rollback exploit %s: %v", seed, cve, err)
		}
		if !res.Vulnerable {
			t.Fatalf("seed %d: %s not vulnerable after rollback — stale patched block serving old text?", seed, cve)
		}
	}
	if len(out.applied) > 0 {
		if stats, ok := sys.Machine.VCPU(0).EngineStats(); ok && stats.Flushes == 0 {
			t.Fatalf("seed %d: patches applied and rolled back but the block cache never flushed (%+v)", seed, stats)
		}
	}

	// Invariant 4 — the system is still serviceable: a clean ApplyAll
	// of the same subset lands everything.
	clean, err := sys.ApplyAll(context.Background(), cves, core.WithFetchWorkers(1))
	if err != nil {
		t.Fatalf("seed %d: clean ApplyAll after chaos: %v", seed, err)
	}
	if len(clean.Failed) > 0 {
		t.Fatalf("seed %d: clean ApplyAll failures after chaos: %v", seed, clean.Failed)
	}
	for _, e := range entries {
		res, err := e.Exploit(sys.Kernel, 0)
		if err != nil {
			t.Fatalf("seed %d: post-chaos exploit %s: %v", seed, e.CVE, err)
		}
		if res.Vulnerable {
			t.Fatalf("seed %d: %s vulnerable after clean ApplyAll", seed, e.CVE)
		}
	}
	// Reset for the next seed and prove the reset too.
	final := sys.Applied()
	for i := len(final) - 1; i >= 0; i-- {
		if _, err := sys.Rollback(context.Background(), final[i]); err != nil {
			t.Fatalf("seed %d: reset rollback %s: %v", seed, final[i], err)
		}
	}
	for _, e := range entries {
		h.requirePristine(seed, e, "after reset")
	}
	h.requireTextClean(seed, "after reset")
	return out
}

// requireTextClean sweeps the entire kernel.text segment against the
// boot-time snapshot at frame granularity — stronger than
// requirePristine, which only covers the functions a CVE names. The
// copy-on-write store skips pointer-identical frames, so the sweep
// costs O(frames patched this cycle), not O(segment size).
func (h *chaosHarness) requireTextClean(seed int64, when string) {
	h.t.Helper()
	dirty, err := h.d.System.Machine.Mem.DiffFramesIn(h.snap, h.text.Base, h.text.Size)
	if err != nil {
		h.t.Fatalf("seed %d: frame diff %s: %v", seed, when, err)
	}
	if len(dirty) != 0 {
		addrs := make([]string, len(dirty))
		for i, idx := range dirty {
			addrs[i] = fmt.Sprintf("%#x", mem.FrameAddr(idx))
		}
		h.t.Fatalf("seed %d: kernel.text frames %v differ from pristine snapshot %s",
			seed, addrs, when)
	}
}

func (h *chaosHarness) requirePristine(seed int64, e *cvebench.Entry, when string) {
	h.t.Helper()
	for _, fn := range e.Functions {
		want, ok := h.pristine[fn]
		if !ok {
			continue
		}
		got, err := h.d.System.Kernel.FuncBytes(fn)
		if err != nil {
			h.t.Fatalf("seed %d: read %s %s: %v", seed, fn, when, err)
		}
		if !bytes.Equal(got, want) {
			h.t.Fatalf("seed %d: %s (%s) not byte-identical to pristine kernel %s",
				seed, fn, e.CVE, when)
		}
	}
}

func (h *chaosHarness) requireIsolated(seed int64) {
	h.t.Helper()
	m := h.d.System.Machine.Mem
	buf := make([]byte, 8)
	for _, probe := range []struct {
		name string
		addr uint64
	}{
		{"SMRAM", h.smram.Base},
		{"SMRAM end", h.smram.End() - 8},
		{"EPC", h.epc.Base},
		{"EPC end", h.epc.End() - 8},
	} {
		for _, priv := range []mem.Priv{mem.PrivUser, mem.PrivKernel} {
			if err := m.Read(priv, probe.addr, buf); err == nil {
				h.t.Fatalf("seed %d: %s readable at priv %d", seed, probe.name, priv)
			}
			if err := m.Write(priv, probe.addr, buf); err == nil {
				h.t.Fatalf("seed %d: %s writable at priv %d", seed, probe.name, priv)
			}
		}
	}
}

// chaosPool is the largest conflict-free wave of the Table I suite —
// the entries that can share one simulated kernel.
func chaosPool(t *testing.T) []*cvebench.Entry {
	t.Helper()
	waves := cvebench.ConflictFreeWaves(cvebench.All())
	if len(waves) == 0 || len(waves[0]) < chaosSubsetSize {
		t.Fatalf("conflict-free pool too small: %d waves", len(waves))
	}
	return waves[0]
}

// TestChaosCampaign is the main fault-injection campaign: hundreds of
// seeded fault schedules, each replayable, each checked against all
// four invariants. Reproduce a single failing seed with
//
//	KSHOT_CHAOS_SEED=<n> go test ./internal/faultinject/ -run ChaosCampaign
//
// and scale the campaign with KSHOT_CHAOS_SEEDS=<count>.
func TestChaosCampaign(t *testing.T) {
	h := newChaosHarness(t, chaosPool(t))

	if v := os.Getenv("KSHOT_CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("KSHOT_CHAOS_SEED=%q: %v", v, err)
		}
		out := h.cycle(seed, h.subset(seed))
		t.Logf("seed %d: fired %d faults, applied %v, failed %v\nschedule: %s",
			seed, out.fired, out.applied, out.failed, out.faultLog)
		return
	}

	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	if v := os.Getenv("KSHOT_CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("KSHOT_CHAOS_SEEDS=%q: %v", v, err)
		}
		seeds = n
	}

	pointsFired := make(map[faultinject.Point]int)
	totalFired, disturbed := 0, 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		out := h.cycle(seed, h.subset(seed))
		totalFired += out.fired
		if out.fired > 0 {
			disturbed++
		}
		if len(out.failed) > 0 && out.fired == 0 {
			t.Fatalf("seed %d: failures %v with no faults fired", seed, out.failed)
		}
		for _, f := range out.faults {
			pointsFired[f.Point]++
		}
	}
	t.Logf("chaos campaign: %d seeds, %d fired faults, %d disturbed runs, point coverage %v",
		seeds, totalFired, disturbed, pointsFired)
	if disturbed < seeds/2 {
		t.Errorf("only %d/%d schedules fired any fault; plan too timid", disturbed, seeds)
	}
	if len(pointsFired) < 5 {
		t.Errorf("campaign exercised %d injection points (%v), want >= 5", len(pointsFired), pointsFired)
	}
}

// TestChaosDeterministicReplay is the replayability guarantee behind
// KSHOT_CHAOS_SEED: the same seed produces the same fault sequence
// and the same outcome — on a reused system (cycle twice) and on a
// completely fresh deployment.
func TestChaosDeterministicReplay(t *testing.T) {
	seeds := []int64{3, 17}
	if testing.Short() {
		seeds = seeds[:1]
	}
	pool := chaosPool(t)
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h1 := newChaosHarness(t, pool)
			sub := h1.subset(seed)
			first := h1.cycle(seed, sub)
			if first.fired == 0 {
				t.Logf("seed %d fired no faults; replay check still meaningful but quiet", seed)
			}
			// Same harness, reset state: identical replay.
			again := h1.cycle(seed, sub)
			compareOutcomes(t, "reused system", first, again)
			// Fresh deployment: no hidden state feeds the schedule.
			h2 := newChaosHarness(t, pool)
			fresh := h2.cycle(seed, h2.subset(seed))
			compareOutcomes(t, "fresh deployment", first, fresh)
		})
	}
}

func compareOutcomes(t *testing.T, what string, a, b outcome) {
	t.Helper()
	if a.faultLog != b.faultLog {
		t.Errorf("%s: fault schedules diverge:\n first: %s\nsecond: %s", what, a.faultLog, b.faultLog)
	}
	if fmt.Sprintf("%v", a.applied) != fmt.Sprintf("%v", b.applied) {
		t.Errorf("%s: applied sets diverge: %v vs %v", what, a.applied, b.applied)
	}
	if fmt.Sprintf("%v", a.failed) != fmt.Sprintf("%v", b.failed) {
		t.Errorf("%s: failed sets diverge: %v vs %v", what, a.failed, b.failed)
	}
}

// TestChaosFullSuite drives the complete Table I suite — every CVE,
// partitioned into conflict-free waves exactly like a real multi-CVE
// campaign — through seeded fault schedules with the same four
// invariants. Fewer seeds than the rotating campaign: each cycle here
// is a full 30-CVE ApplyAll.
func TestChaosFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite chaos skipped in short mode")
	}
	// Seeds chosen so injected cancellations land mid-run (boundary
	// call 10+), exercising partial application rather than stopping
	// before the first delivery.
	seeds := []int64{135, 181, 361}
	waves := cvebench.ConflictFreeWaves(cvebench.All())
	total := 0
	for _, w := range waves {
		total += len(w)
	}
	for wi, wave := range waves {
		h := newChaosHarness(t, wave)
		for _, seed := range seeds {
			out := h.cycle(seed, wave)
			t.Logf("wave %d (%d CVEs) seed %d: %d faults fired, %d applied, %d failed",
				wi, len(wave), seed, out.fired, len(out.applied), len(out.failed))
		}
	}
	t.Logf("full-suite chaos: %d CVEs across %d waves, %d seeds each", total, len(waves), len(seeds))
}
