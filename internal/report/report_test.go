package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("TABLE X: demo", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	tb.AddRow("short")
	tb.AddNote("n = 100")
	out := tb.String()
	if !strings.Contains(out, "TABLE X: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a-much-longer-name") || !strings.Contains(out, "n = 100") {
		t.Error("missing content")
	}
	// All data lines equally wide (aligned columns).
	var widths []int
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(ln, "|") {
			widths = append(widths, len(ln))
		}
	}
	if len(widths) < 5 {
		t.Fatalf("table too short: %q", out)
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
}

func TestUs(t *testing.T) {
	cases := map[time.Duration]string{
		42830 * time.Nanosecond:  "42.8",
		56 * time.Microsecond:    "56.0",
		8285 * time.Microsecond:  "8285",
		40 * time.Nanosecond:     "0.04",
		1270 * time.Nanosecond:   "1.27",
		11464 * time.Microsecond: "11464",
	}
	for d, want := range cases {
		if got := Us(d); got != want {
			t.Errorf("Us(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[int]string{
		40:        "40B",
		400:       "400B",
		4096:      "4KB",
		40 << 10:  "40KB",
		400 << 10: "400KB",
		10 << 20:  "10MB",
		1536:      "1.5KB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title:  "Fig. demo",
		XLabel: []string{"CVE-A", "CVE-B"},
		Series: []FigureSeries{
			{Name: "prep", Y: []float64{100, 200}},
			{Name: "pass", Y: []float64{10, 20}},
		},
	}
	out := f.String()
	if !strings.Contains(out, "CVE-A") || !strings.Contains(out, "prep") {
		t.Errorf("figure missing labels:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}

	var csv strings.Builder
	if err := f.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "x,prep,pass" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "CVE-A,100.000,10.000") {
		t.Errorf("csv body = %v", lines)
	}
}

func TestFigureEmptySeries(t *testing.T) {
	f := &Figure{XLabel: []string{"a"}, Series: []FigureSeries{{Name: "s"}}}
	if out := f.String(); !strings.Contains(out, "0.00us") {
		t.Errorf("missing zero bar: %q", out)
	}
}
