// Package report renders the evaluation's tables and figures as
// aligned ASCII tables, CSV, and ASCII bar charts, used by the
// benchmark harness and the kshot-bench command to regenerate every
// table and figure of the paper.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is an aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(note string) {
	t.notes = append(t.notes, note)
}

// SortRows orders the rows lexicographically by the given column
// (stably, so equal keys keep insertion order). Harnesses that collect
// per-CVE rows from concurrent runs sort before rendering so the output
// is reproducible.
func (t *Table) SortRows(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := "", ""
		if col < len(t.rows[i]) {
			a = t.rows[i][col]
		}
		if col < len(t.rows[j]) {
			b = t.rows[j][col]
		}
		return a < b
	})
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", wd, c)
		}
		b.WriteString("|\n")
	}
	sep := func() {
		for _, wd := range widths {
			b.WriteString("|" + strings.Repeat("-", wd+2))
		}
		b.WriteString("|\n")
	}
	sep()
	line(t.Headers)
	sep()
	for _, row := range t.rows {
		line(row)
	}
	sep()
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Us formats a duration in microseconds the way the paper's tables do.
func Us(d time.Duration) string {
	us := float64(d.Nanoseconds()) / 1000
	switch {
	case us >= 1000:
		return fmt.Sprintf("%.0f", us)
	case us >= 10:
		return fmt.Sprintf("%.1f", us)
	default:
		return fmt.Sprintf("%.2f", us)
	}
}

// Bytes humanizes a byte count like the paper's size axis (40B, 4KB,
// 10MB).
func Bytes(n int) string {
	switch {
	case n >= 1<<20:
		if n%(1<<20) == 0 {
			return fmt.Sprintf("%dMB", n>>20)
		}
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		if n%(1<<10) == 0 {
			return fmt.Sprintf("%dKB", n>>10)
		}
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Figure is a grouped bar chart: one group per X label, one bar per
// series (matching the stacked-stage figures 4 and 5).
type Figure struct {
	Title  string
	XLabel []string
	Series []FigureSeries
}

// FigureSeries is one series of a figure.
type FigureSeries struct {
	Name string
	Y    []float64 // one value per X label, in microseconds
}

// RenderCSV writes the figure data as CSV (x, series...).
func (f *Figure) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	for i, x := range f.XLabel {
		b.WriteString(x)
		for _, s := range f.Series {
			v := 0.0
			if i < len(s.Y) {
				v = s.Y[i]
			}
			fmt.Fprintf(&b, ",%.3f", v)
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Render writes the figure as horizontal ASCII bars, one block per X
// label, bars scaled to the figure-wide maximum.
func (f *Figure) Render(w io.Writer) error {
	const barWidth = 50
	maxV := 0.0
	for _, s := range f.Series {
		for _, v := range s.Y {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	nameW := 0
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	for i, x := range f.XLabel {
		fmt.Fprintf(&b, "%s\n", x)
		for _, s := range f.Series {
			v := 0.0
			if i < len(s.Y) {
				v = s.Y[i]
			}
			n := int(v / maxV * barWidth)
			if n == 0 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s %s %.2fus\n", nameW, s.Name, strings.Repeat("#", n), v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	_ = f.Render(&b)
	return b.String()
}
