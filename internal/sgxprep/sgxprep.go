// Package sgxprep implements KShot's SGX-resident patch preparation
// enclave (§V-B). The enclave receives the encrypted binary patch the
// untrusted helper fetched from the remote server, decrypts and
// verifies it inside the EPC, preprocesses it against the running
// kernel's symbol table (mem_X placement, relocation resolution,
// trampoline computation — the heavy lifting that would otherwise
// extend the OS pause if done in SMM), performs its half of the
// Diffie-Hellman exchange with the SMM handler, and returns the
// encrypted patch package for the helper to stage into mem_W.
//
// Plaintext patch bytes and key material exist only inside the
// enclave: the helper sees ciphertext in, ciphertext out.
package sgxprep

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/obs"
	"kshot/internal/patch"
	"kshot/internal/sgx"
	"kshot/internal/timing"
)

// ECALL function numbers.
const (
	// FnPrepare preprocesses a patch blob into an encrypted package.
	FnPrepare = 1
	// FnPrepareRollback builds an encrypted rollback command package.
	FnPrepareRollback = 2
	// FnPrepareBatch preprocesses many patch blobs in one ECALL,
	// sealing each member with its own ephemeral key against the same
	// SMM public key, for batched SMI delivery.
	FnPrepareBatch = 3
)

// EnclavePages is the number of EPC pages the preparation enclave
// needs.
const EnclavePages = 8

// serverKeyOff is where the provisioned server channel key lives in
// the EPC.
const serverKeyOff = 0

// PrepareArgs is the (gob-encoded) input of FnPrepare.
type PrepareArgs struct {
	// ServerBlob is the encrypted BinaryPatch from the remote server.
	ServerBlob []byte

	// SMMPub is the SMM handler's published DH public key, read from
	// mem_RW by the helper.
	SMMPub []byte

	// MemXCursor/DataCursor are the SMM handler's current allocation
	// cursors.
	MemXCursor uint64
	DataCursor uint64
}

// RollbackArgs is the input of FnPrepareRollback.
type RollbackArgs struct {
	ID     string
	SMMPub []byte
}

// BatchPrepareArgs is the input of FnPrepareBatch. Members are
// prepared in order against a running allocation cursor: member i+1's
// mem_X placement assumes members 0..i apply first, which is exactly
// the order the SMM batch handler processes the staging directory.
type BatchPrepareArgs struct {
	// ServerBlobs are the encrypted BinaryPatches, one per member.
	ServerBlobs [][]byte

	// SMMPub is the SMM handler's published DH public key; every
	// member is sealed against it with a fresh enclave ephemeral key.
	SMMPub []byte

	// MemXCursor/DataCursor are the SMM handler's allocation cursors
	// before the batch.
	MemXCursor uint64
	DataCursor uint64
}

// BatchMemberResult is one member's outcome in a BatchResult. A failed
// member carries Err and consumes no allocation; later members are
// still prepared (one bad blob does not sink the batch).
type BatchMemberResult struct {
	Result

	// Prep is this member's share of the preprocessing cost.
	Prep time.Duration

	// Err is the member's preparation failure, empty on success. It is
	// a string because the result crosses the (gob-encoded) enclave
	// boundary.
	Err string
}

// BatchResult is the output of FnPrepareBatch, in member order.
type BatchResult struct {
	Members []BatchMemberResult
}

// Result is the output of both ECALLs.
type Result struct {
	// Ciphertext is the encrypted patch package for mem_W.
	Ciphertext []byte

	// EnclavePub is the enclave's DH public key for mem_RW.
	EnclavePub []byte

	// ID echoes the patch ID; MemXUsed/DataUsed report the allocation
	// this patch will consume (for the caller's bookkeeping).
	ID       string
	MemXUsed uint64
	DataUsed uint64

	// PayloadBytes is the total function payload size (the "patch
	// size" the evaluation tables sweep).
	PayloadBytes int
}

// Breakdown reports the virtual preprocessing time of the last ECALL
// (the "Pre-processing" column of Table II).
type Breakdown struct {
	Preprocess time.Duration
}

// Config parameterizes the enclave program.
type Config struct {
	// ServerKey is the 32-byte channel key shared with the remote
	// patch server (established via remote attestation of this
	// enclave's measurement).
	ServerKey []byte

	// KernelVersion and KernelSymbols describe the running kernel
	// (collected safely at boot, §V-B).
	KernelVersion string
	KernelSymbols []isa.Symbol

	// Placement is the SMM handler's reserved memory layout.
	Placement patch.Placement

	// HashAlg selects the payload verification hash (SHA-256 default;
	// SDBM for the paper's cheaper-hash ablation).
	HashAlg kcrypto.HashAlg

	// Clock/Model drive virtual-time accounting. Clock may be nil.
	Clock *timing.Clock
	Model timing.Model

	// Rand is the entropy source (crypto/rand when nil).
	Rand io.Reader

	// SessionRoot, when 32 bytes, switches the SGX↔SMM channel into
	// derived-session mode (template forks): sealForSMM draws a fresh
	// random 32-byte salt instead of an ephemeral DH pair and seals
	// with HMAC(root, smmNonce, salt), publishing the salt through the
	// EnclavePub slot. The same root is provisioned into the fork's
	// SMM handler before SMRAM lock. Nil keeps the paper's DH
	// exchange. See smmpatch.Config.SessionRoot for the protocol
	// rationale.
	SessionRoot []byte
}

// Program is the enclave program; load it with sgx.Platform.Load.
type Program struct {
	cfg     Config
	rng     io.Reader
	symtab  *isa.SymTab
	lastPre Breakdown
	obs     *obs.Hooks
}

var _ sgx.Program = (*Program)(nil)

// New validates the configuration and builds the enclave program.
func New(cfg Config) (*Program, error) {
	if len(cfg.ServerKey) != 32 {
		return nil, errors.New("sgxprep: server key must be 32 bytes")
	}
	if len(cfg.SessionRoot) != 0 && len(cfg.SessionRoot) != 32 {
		return nil, errors.New("sgxprep: session root must be 32 bytes")
	}
	if cfg.HashAlg == 0 {
		cfg.HashAlg = kcrypto.HashSHA256
	}
	if cfg.Clock == nil {
		cfg.Clock = &timing.Clock{}
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.Reader
	}
	symtab, err := isa.NewSymTab(cfg.KernelSymbols)
	if err != nil {
		return nil, fmt.Errorf("sgxprep: %w", err)
	}
	return &Program{cfg: cfg, rng: rng, symtab: symtab}, nil
}

// Identity returns the measured identity string of the preparation
// enclave for a kernel version; the remote server computes the
// expected measurement from it without instantiating the program.
func Identity(kernelVersion string) string {
	return "kshot-patch-preparation-enclave v1 kernel=" + kernelVersion
}

// Identity implements sgx.Program; it is the measured enclave
// identity the remote server attests.
func (p *Program) Identity() string { return Identity(p.cfg.KernelVersion) }

// Init stores the server channel key in the EPC.
func (p *Program) Init(env *sgx.Env) error {
	return env.Write(serverKeyOff, p.cfg.ServerKey)
}

// LastBreakdown returns the preprocessing time of the last ECALL.
func (p *Program) LastBreakdown() Breakdown { return p.lastPre }

// SetObserver installs (or, with nil, removes) the observability hooks
// emitting a T_prep span per prepared patch.
func (p *Program) SetObserver(ob *obs.Hooks) { p.obs = ob }

// ECall implements sgx.Program.
func (p *Program) ECall(env *sgx.Env, fn int, args []byte) ([]byte, error) {
	switch fn {
	case FnPrepare:
		var in PrepareArgs
		if err := gobDecode(args, &in); err != nil {
			return nil, fmt.Errorf("sgxprep: args: %w", err)
		}
		return p.prepare(env, in)
	case FnPrepareRollback:
		var in RollbackArgs
		if err := gobDecode(args, &in); err != nil {
			return nil, fmt.Errorf("sgxprep: args: %w", err)
		}
		return p.prepareRollback(env, in)
	case FnPrepareBatch:
		var in BatchPrepareArgs
		if err := gobDecode(args, &in); err != nil {
			return nil, fmt.Errorf("sgxprep: args: %w", err)
		}
		return p.prepareBatch(env, in)
	default:
		return nil, fmt.Errorf("sgxprep: no such ecall %d", fn)
	}
}

func (p *Program) prepare(env *sgx.Env, in PrepareArgs) ([]byte, error) {
	// Decrypt the server blob with the key held in the EPC.
	serverKey := make([]byte, 32)
	if err := env.Read(serverKeyOff, serverKey); err != nil {
		return nil, err
	}
	serverSession, err := kcrypto.NewSession(serverKey, p.rng)
	if err != nil {
		return nil, err
	}
	plain, err := serverSession.Decrypt(in.ServerBlob)
	if err != nil {
		return nil, fmt.Errorf("sgxprep: server blob: %w", err)
	}
	var bp patch.BinaryPatch
	if err := gobDecode(plain, &bp); err != nil {
		return nil, fmt.Errorf("sgxprep: server blob decode: %w", err)
	}
	if bp.KernelVersion != p.cfg.KernelVersion {
		return nil, fmt.Errorf("sgxprep: patch for kernel %q, running %q", bp.KernelVersion, p.cfg.KernelVersion)
	}

	// Preprocess: placement, relocation, trampolines, packaging
	// (Table II "Pre-processing", charged per payload byte).
	start := p.cfg.Clock.Now()
	prepared, err := patch.Prepare(&bp, p.symtab, p.cfg.Placement, in.MemXCursor, in.DataCursor)
	if err != nil {
		return nil, err
	}
	wire, err := patch.Marshal(prepared, patch.OpPatch, p.cfg.HashAlg)
	if err != nil {
		return nil, err
	}
	p.cfg.Clock.Advance(timing.Linear(p.cfg.Model.PrepFixed, p.cfg.Model.PrepPerByte, bp.PayloadBytes()))
	p.lastPre = Breakdown{Preprocess: p.cfg.Clock.Now() - start}
	p.obs.Span(obs.PhasePrep, bp.ID, -1, p.lastPre.Preprocess, bp.PayloadBytes())

	res, err := p.sealForSMM(wire, in.SMMPub)
	if err != nil {
		return nil, err
	}
	res.ID = bp.ID
	res.MemXUsed = prepared.MemXUsed
	res.DataUsed = prepared.DataUsed
	res.PayloadBytes = bp.PayloadBytes()
	return gobEncode(res)
}

// prepareBatch is the prepare-many ECALL: each server blob is
// decrypted, preprocessed at the running cursor, and sealed with its
// own ephemeral key against the shared SMM public key. Preprocessing
// costs are computed directly from the model (not clock spans) so the
// per-member numbers stay exact when pipelined fetches advance the
// shared clock concurrently.
func (p *Program) prepareBatch(env *sgx.Env, in BatchPrepareArgs) ([]byte, error) {
	serverKey := make([]byte, 32)
	if err := env.Read(serverKeyOff, serverKey); err != nil {
		return nil, err
	}
	serverSession, err := kcrypto.NewSession(serverKey, p.rng)
	if err != nil {
		return nil, err
	}

	curX, curD := in.MemXCursor, in.DataCursor
	out := BatchResult{Members: make([]BatchMemberResult, len(in.ServerBlobs))}
	var total time.Duration
	for i, blob := range in.ServerBlobs {
		mr := &out.Members[i]
		plain, err := serverSession.Decrypt(blob)
		if err != nil {
			mr.Err = fmt.Sprintf("server blob: %v", err)
			continue
		}
		var bp patch.BinaryPatch
		if err := gobDecode(plain, &bp); err != nil {
			mr.Err = fmt.Sprintf("server blob decode: %v", err)
			continue
		}
		mr.ID = bp.ID
		if bp.KernelVersion != p.cfg.KernelVersion {
			mr.Err = fmt.Sprintf("patch for kernel %q, running %q", bp.KernelVersion, p.cfg.KernelVersion)
			continue
		}
		prepared, err := patch.Prepare(&bp, p.symtab, p.cfg.Placement, curX, curD)
		if err != nil {
			mr.Err = err.Error()
			continue
		}
		wire, err := patch.Marshal(prepared, patch.OpPatch, p.cfg.HashAlg)
		if err != nil {
			mr.Err = err.Error()
			continue
		}
		prep := timing.Linear(p.cfg.Model.PrepFixed, p.cfg.Model.PrepPerByte, bp.PayloadBytes())
		p.cfg.Clock.Advance(prep)
		total += prep
		p.obs.Span(obs.PhasePrep, bp.ID, -1, prep, bp.PayloadBytes())
		sealed, err := p.sealForSMM(wire, in.SMMPub)
		if err != nil {
			mr.Err = err.Error()
			continue
		}
		mr.Ciphertext = sealed.Ciphertext
		mr.EnclavePub = sealed.EnclavePub
		mr.MemXUsed = prepared.MemXUsed
		mr.DataUsed = prepared.DataUsed
		mr.PayloadBytes = bp.PayloadBytes()
		mr.Prep = prep
		// MemXUsed/DataUsed are per-patch consumption deltas; cursors
		// advance only past successful members, matching the SMM
		// handler, which skips failed ones.
		curX += prepared.MemXUsed
		curD += prepared.DataUsed
	}
	p.lastPre = Breakdown{Preprocess: total}
	return gobEncode(out)
}

func (p *Program) prepareRollback(_ *sgx.Env, in RollbackArgs) ([]byte, error) {
	wire, err := patch.MarshalRollback(in.ID, p.cfg.KernelVersion)
	if err != nil {
		return nil, err
	}
	p.cfg.Clock.Advance(p.cfg.Model.PrepFixed)
	p.obs.Span(obs.PhasePrep, "rollback:"+in.ID, -1, p.cfg.Model.PrepFixed, 0)
	res, err := p.sealForSMM(wire, in.SMMPub)
	if err != nil {
		return nil, err
	}
	res.ID = in.ID
	return gobEncode(res)
}

// sealForSMM performs the enclave's half of the channel exchange and
// encrypts the wire package for the mem_W channel: the paper's
// ephemeral-DH half in cold-boot mode, or a fresh ratchet salt mixed
// with the fork's session root in derived-session mode. Either way
// the enclave contributes fresh per-package entropy through the
// EnclavePub slot, so the SMM side's consume-once replay protection
// behaves identically in both modes.
func (p *Program) sealForSMM(wire, smmPub []byte) (*Result, error) {
	var shared, pub []byte
	if len(p.cfg.SessionRoot) != 0 {
		salt := make([]byte, 32)
		if _, err := io.ReadFull(p.rng, salt); err != nil {
			return nil, fmt.Errorf("sgxprep: salt: %w", err)
		}
		shared = kcrypto.DeriveKey(p.cfg.SessionRoot, smmPub, salt)
		pub = salt
	} else {
		kp, err := kcrypto.GenerateKeyPair(p.rng)
		if err != nil {
			return nil, err
		}
		shared, err = kp.SharedSecret(smmPub)
		if err != nil {
			return nil, fmt.Errorf("sgxprep: key agreement: %w", err)
		}
		pub = kp.PublicBytes()
	}
	session, err := kcrypto.NewSession(shared, p.rng)
	if err != nil {
		return nil, err
	}
	ct, err := session.Encrypt(wire)
	if err != nil {
		return nil, err
	}
	return &Result{Ciphertext: ct, EnclavePub: pub}, nil
}

func gobEncode(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// EncodeArgs gob-encodes ECALL arguments (helper-side convenience).
func EncodeArgs(v any) ([]byte, error) { return gobEncode(v) }

// DecodeResult decodes an ECALL result (helper-side convenience).
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := gobDecode(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeBatchResult decodes a FnPrepareBatch result.
func DecodeBatchResult(data []byte) (*BatchResult, error) {
	var r BatchResult
	if err := gobDecode(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
