package sgxprep

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"kshot/internal/isa"
	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/sgx"
	"kshot/internal/timing"
)

type detRand struct{ r *rand.Rand }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

const vulnSrc = `
.func probe
    mov r0, r1
    add r0, r1
    ret
.endfunc
`

const fixedSrc = `
.func probe
    mov r0, r1
    add r0, r1
    cmpi r0, 64
    jle .k
    movi r0, 64
.k:
    ret
.endfunc
`

// fixture builds a loaded enclave plus the material around it.
type fixture struct {
	prog      *Program
	enclave   *sgx.Enclave
	serverKey []byte
	preImg    patch.ImagePair
	bp        *patch.BinaryPatch
	place     patch.Placement
	smmKey    *kcrypto.KeyPair
}

func newFixture(t *testing.T, alg kcrypto.HashAlg) *fixture {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	st.AddFile("cve/probe.asm", vulnSrc)
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	post := st.Clone()
	if err := post.Apply(kernel.SourcePatch{ID: "P", Files: map[string]string{"cve/probe.asm": fixedSrc}}); err != nil {
		t.Fatal(err)
	}
	postImg, postUnit, err := post.Build()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := patch.Build("CVE-FIX", "4.4",
		patch.ImagePair{Img: preImg, Unit: preUnit},
		patch.ImagePair{Img: postImg, Unit: postUnit})
	if err != nil {
		t.Fatal(err)
	}

	rng := &detRand{r: rand.New(rand.NewSource(3))}
	serverKey := make([]byte, 32)
	if _, err := rng.Read(serverKey); err != nil {
		t.Fatal(err)
	}
	place := patch.Placement{
		MemXBase: 0x100000, MemXSize: 1 << 20,
		DataAllocBase: 0x300000, DataAllocSize: 1 << 16,
	}
	prog, err := New(Config{
		ServerKey:     serverKey,
		KernelVersion: "4.4",
		KernelSymbols: preImg.Symbols.All(),
		Placement:     place,
		HashAlg:       alg,
		Model:         timing.Calibrated(),
		Rand:          rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	phys := mem.New(64 << 20)
	plat, err := sgx.NewPlatform(phys, 0x200000, 64*sgx.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := plat.Load(prog, EnclavePages)
	if err != nil {
		t.Fatal(err)
	}
	smmKey, err := kcrypto.GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		prog: prog, enclave: enclave, serverKey: serverKey,
		preImg: patch.ImagePair{Img: preImg, Unit: preUnit},
		bp:     bp, place: place, smmKey: smmKey,
	}
}

// serverBlob encrypts the binary patch the way the server does.
func (f *fixture) serverBlob(t *testing.T) []byte {
	t.Helper()
	plain, err := EncodeArgs(f.bp)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := kcrypto.NewSession(f.serverKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sess.Encrypt(plain)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (f *fixture) prepare(t *testing.T) *Result {
	t.Helper()
	args, err := EncodeArgs(PrepareArgs{
		ServerBlob: f.serverBlob(t),
		SMMPub:     f.smmKey.PublicBytes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.enclave.ECall(FnPrepare, args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(out)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPrepareProducesDecryptablePackage(t *testing.T) {
	f := newFixture(t, kcrypto.HashSHA256)
	res := f.prepare(t)
	if res.ID != "CVE-FIX" || res.PayloadBytes == 0 || res.MemXUsed == 0 {
		t.Errorf("result = %+v", res)
	}
	// The SMM side can decrypt with its private key.
	shared, err := f.smmKey.SharedSecret(res.EnclavePub)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := kcrypto.NewSession(shared, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := sess.Decrypt(res.Ciphertext)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := patch.Unmarshal(wire)
	if err != nil {
		t.Fatalf("unmarshal prepared package: %v", err)
	}
	if pkg.ID != "CVE-FIX" || pkg.Op != patch.OpPatch || len(pkg.Funcs) != 1 {
		t.Errorf("package = %+v", pkg)
	}
	if pkg.Funcs[0].PAddr < f.place.MemXBase {
		t.Error("payload placed outside mem_X")
	}
	if f.prog.LastBreakdown().Preprocess <= 0 {
		t.Error("no preprocessing time recorded")
	}
	// Ciphertext must not contain the plaintext wire bytes.
	if bytes.Contains(res.Ciphertext, wire[:32]) {
		t.Error("package plaintext visible in ciphertext")
	}
}

func TestPrepareRollbackPackage(t *testing.T) {
	f := newFixture(t, kcrypto.HashSHA256)
	args, err := EncodeArgs(RollbackArgs{ID: "CVE-FIX", SMMPub: f.smmKey.PublicBytes()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.enclave.ECall(FnPrepareRollback, args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(out)
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := f.smmKey.SharedSecret(res.EnclavePub)
	sess, _ := kcrypto.NewSession(shared, nil)
	wire, err := sess.Decrypt(res.Ciphertext)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := patch.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Op != patch.OpRollback || pkg.ID != "CVE-FIX" {
		t.Errorf("rollback package = %+v", pkg)
	}
}

func TestRejectsWrongServerKey(t *testing.T) {
	f := newFixture(t, kcrypto.HashSHA256)
	wrong := make([]byte, 32)
	sess, _ := kcrypto.NewSession(wrong, nil)
	plain, _ := EncodeArgs(f.bp)
	ct, _ := sess.Encrypt(plain)
	args, _ := EncodeArgs(PrepareArgs{ServerBlob: ct, SMMPub: f.smmKey.PublicBytes()})
	if _, err := f.enclave.ECall(FnPrepare, args); err == nil {
		t.Error("blob under wrong key accepted")
	}
}

func TestRejectsVersionMismatch(t *testing.T) {
	f := newFixture(t, kcrypto.HashSHA256)
	f.bp.KernelVersion = "3.14"
	args, _ := EncodeArgs(PrepareArgs{ServerBlob: f.serverBlob(t), SMMPub: f.smmKey.PublicBytes()})
	_, err := f.enclave.ECall(FnPrepare, args)
	if err == nil || !strings.Contains(err.Error(), "3.14") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

func TestRejectsBadECall(t *testing.T) {
	f := newFixture(t, kcrypto.HashSHA256)
	if _, err := f.enclave.ECall(99, nil); err == nil {
		t.Error("unknown ecall accepted")
	}
	if _, err := f.enclave.ECall(FnPrepare, []byte("garbage")); err == nil {
		t.Error("garbage args accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{ServerKey: []byte("short")}); err == nil {
		t.Error("short server key accepted")
	}
	if _, err := New(Config{
		ServerKey:     make([]byte, 32),
		KernelSymbols: []isa.Symbol{{Name: "x"}, {Name: "x"}},
	}); err == nil {
		t.Error("duplicate symbols accepted")
	}
}

func TestIdentityIncludesVersion(t *testing.T) {
	if Identity("3.14") == Identity("4.4") {
		t.Error("identities of different kernels coincide")
	}
	f := newFixture(t, kcrypto.HashSHA256)
	if f.prog.Identity() != Identity("4.4") {
		t.Error("program identity mismatch")
	}
}

func TestSDBMAlgCarriedInPackage(t *testing.T) {
	f := newFixture(t, kcrypto.HashSDBM)
	res := f.prepare(t)
	shared, _ := f.smmKey.SharedSecret(res.EnclavePub)
	sess, _ := kcrypto.NewSession(shared, nil)
	wire, err := sess.Decrypt(res.Ciphertext)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := patch.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.HashAlg != kcrypto.HashSDBM {
		t.Errorf("hash alg = %v", pkg.HashAlg)
	}
}
