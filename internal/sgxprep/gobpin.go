package sgxprep

import (
	"encoding/gob"
	"io"
)

// init pins encoding/gob's process-global type IDs for the ECALL wire
// types, in one canonical order. Without this, the encoded size of an
// argument or result block — and with it the staged ciphertext length
// and the virtual stage times derived from byte counts — would depend
// on which subsystem gob-encoded first in the process. See the matching
// pin in internal/patch, whose init runs before this one.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{
		&PrepareArgs{},
		&RollbackArgs{},
		&BatchPrepareArgs{},
		&BatchResult{Members: []BatchMemberResult{{}}},
		&Result{},
	} {
		if err := enc.Encode(v); err != nil {
			panic("sgxprep: gob type pin: " + err.Error())
		}
	}
}
