package sgxprep

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"kshot/internal/kcrypto"
	"kshot/internal/kernel"
	"kshot/internal/mem"
	"kshot/internal/patch"
	"kshot/internal/sgx"
	"kshot/internal/timing"
)

// multiFixture is a loaded enclave plus n distinct binary patches,
// each touching its own function so they can stack in one batch.
type multiFixture struct {
	prog      *Program
	enclave   *sgx.Enclave
	serverKey []byte
	bps       []*patch.BinaryPatch
	place     patch.Placement
	smmKey    *kcrypto.KeyPair
}

func vulnFn(i int) string {
	return fmt.Sprintf(".func probe%d\n    mov r0, r1\n    add r0, r1\n    ret\n.endfunc\n", i)
}

// fixedFn grows with i so the members consume visibly different
// amounts of mem_X — the interesting case for cursor chaining.
func fixedFn(i int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, ".func probe%d\n    mov r0, r1\n    add r0, r1\n", i)
	for j := 0; j <= i; j++ {
		b.WriteString("    addi r0, 1\n")
	}
	b.WriteString("    ret\n.endfunc\n")
	return b.String()
}

func newMultiFixture(t *testing.T, n int) *multiFixture {
	t.Helper()
	st, err := kernel.BaseTree("4.4")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		st.AddFile(fmt.Sprintf("cve/probe%d.asm", i), vulnFn(i))
	}
	preImg, preUnit, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	bps := make([]*patch.BinaryPatch, n)
	for i := 0; i < n; i++ {
		post := st.Clone()
		id := fmt.Sprintf("CVE-MULTI-%d", i)
		if err := post.Apply(kernel.SourcePatch{
			ID:    id,
			Files: map[string]string{fmt.Sprintf("cve/probe%d.asm", i): fixedFn(i)},
		}); err != nil {
			t.Fatal(err)
		}
		postImg, postUnit, err := post.Build()
		if err != nil {
			t.Fatal(err)
		}
		bps[i], err = patch.Build(id, "4.4",
			patch.ImagePair{Img: preImg, Unit: preUnit},
			patch.ImagePair{Img: postImg, Unit: postUnit})
		if err != nil {
			t.Fatal(err)
		}
	}

	rng := &detRand{r: rand.New(rand.NewSource(11))}
	serverKey := make([]byte, 32)
	if _, err := rng.Read(serverKey); err != nil {
		t.Fatal(err)
	}
	place := patch.Placement{
		MemXBase: 0x100000, MemXSize: 1 << 20,
		DataAllocBase: 0x300000, DataAllocSize: 1 << 16,
	}
	prog, err := New(Config{
		ServerKey:     serverKey,
		KernelVersion: "4.4",
		KernelSymbols: preImg.Symbols.All(),
		Placement:     place,
		Model:         timing.Calibrated(),
		Rand:          rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	phys := mem.New(64 << 20)
	plat, err := sgx.NewPlatform(phys, 0x200000, 64*sgx.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := plat.Load(prog, EnclavePages)
	if err != nil {
		t.Fatal(err)
	}
	smmKey, err := kcrypto.GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	return &multiFixture{
		prog: prog, enclave: enclave, serverKey: serverKey,
		bps: bps, place: place, smmKey: smmKey,
	}
}

func (f *multiFixture) serverBlob(t *testing.T, bp *patch.BinaryPatch) []byte {
	t.Helper()
	plain, err := EncodeArgs(bp)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := kcrypto.NewSession(f.serverKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sess.Encrypt(plain)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// open decrypts a sealed member the way the SMM handler would and
// returns the plaintext package.
func (f *multiFixture) open(t *testing.T, ct, enclavePub []byte) *patch.Package {
	t.Helper()
	shared, err := f.smmKey.SharedSecret(enclavePub)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := kcrypto.NewSession(shared, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := sess.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := patch.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestPrepareManyCursorChaining is the prepare-many property test:
// a FnPrepareBatch over n members must chain the allocation cursors
// exactly like n sequential FnPrepare calls whose caller advances the
// cursors by each result's reported deltas — same placements, same
// payloads, no overlap, deltas summing to the final cursor.
func TestPrepareManyCursorChaining(t *testing.T) {
	const n = 6
	f := newMultiFixture(t, n)
	const startX, startD = uint64(192), uint64(64)

	blobs := make([][]byte, n)
	for i, bp := range f.bps {
		blobs[i] = f.serverBlob(t, bp)
	}
	args, err := EncodeArgs(BatchPrepareArgs{
		ServerBlobs: blobs,
		SMMPub:      f.smmKey.PublicBytes(),
		MemXCursor:  startX,
		DataCursor:  startD,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.enclave.ECall(FnPrepareBatch, args)
	if err != nil {
		t.Fatalf("FnPrepareBatch: %v", err)
	}
	batch, err := DecodeBatchResult(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Members) != n {
		t.Fatalf("members = %d, want %d", len(batch.Members), n)
	}

	// Sequential reference run: same blobs through FnPrepare one at a
	// time, the caller chaining cursors by the reported deltas.
	curX, curD := startX, startD
	seq := make([]*Result, n)
	for i := range blobs {
		args, err := EncodeArgs(PrepareArgs{
			ServerBlob: blobs[i],
			SMMPub:     f.smmKey.PublicBytes(),
			MemXCursor: curX,
			DataCursor: curD,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.enclave.ECall(FnPrepare, args)
		if err != nil {
			t.Fatalf("FnPrepare member %d: %v", i, err)
		}
		seq[i], err = DecodeResult(out)
		if err != nil {
			t.Fatal(err)
		}
		curX += seq[i].MemXUsed
		curD += seq[i].DataUsed
	}

	type span struct{ lo, hi uint64 }
	var spans []span
	var sumX, sumD uint64
	for i, m := range batch.Members {
		if m.Err != "" {
			t.Fatalf("member %d failed: %s", i, m.Err)
		}
		if m.ID != f.bps[i].ID {
			t.Errorf("member %d ID = %s, want %s", i, m.ID, f.bps[i].ID)
		}
		if m.MemXUsed == 0 {
			t.Errorf("member %d consumed no mem_X", i)
		}
		// Delta parity with the sequential run.
		if m.MemXUsed != seq[i].MemXUsed || m.DataUsed != seq[i].DataUsed {
			t.Errorf("member %d deltas (%d,%d) differ from sequential (%d,%d)",
				i, m.MemXUsed, m.DataUsed, seq[i].MemXUsed, seq[i].DataUsed)
		}
		bpkg := f.open(t, m.Ciphertext, m.EnclavePub)
		spkg := f.open(t, seq[i].Ciphertext, seq[i].EnclavePub)
		if len(bpkg.Funcs) != len(spkg.Funcs) {
			t.Fatalf("member %d: batch has %d funcs, sequential %d", i, len(bpkg.Funcs), len(spkg.Funcs))
		}
		for j := range bpkg.Funcs {
			bf, sf := bpkg.Funcs[j], spkg.Funcs[j]
			// Identical placement and payload: batching changes the
			// sealing keys, never the prepared patch.
			if bf.PAddr != sf.PAddr || !bytes.Equal(bf.Payload, sf.Payload) {
				t.Errorf("member %d func %d: batch (%#x,%d bytes) vs sequential (%#x,%d bytes)",
					i, j, bf.PAddr, len(bf.Payload), sf.PAddr, len(sf.Payload))
			}
			lo, hi := bf.PAddr, bf.PAddr+uint64(len(bf.Payload))
			if lo < f.place.MemXBase+startX || hi > f.place.MemXBase+f.place.MemXSize {
				t.Errorf("member %d func %d placed [%#x,%#x) outside the chained window", i, j, lo, hi)
			}
			spans = append(spans, span{lo, hi})
		}
		sumX += m.MemXUsed
		sumD += m.DataUsed
	}
	// Payload spans never overlap across members.
	for a := range spans {
		for b := a + 1; b < len(spans); b++ {
			if spans[a].lo < spans[b].hi && spans[b].lo < spans[a].hi {
				t.Errorf("payload spans overlap: [%#x,%#x) and [%#x,%#x)",
					spans[a].lo, spans[a].hi, spans[b].lo, spans[b].hi)
			}
		}
	}
	// Deltas accumulate to exactly the sequential run's final cursor.
	if startX+sumX != curX || startD+sumD != curD {
		t.Errorf("batch consumed (%d,%d), sequential chain ended at (%d,%d) from (%d,%d)",
			sumX, sumD, curX, curD, startX, startD)
	}
}

// TestPrepareManyBadMemberConsumesNothing pins the skip contract the
// SMM side depends on: a failed member reports zero deltas and later
// members place exactly as if it were never in the batch.
func TestPrepareManyBadMemberConsumesNothing(t *testing.T) {
	const n = 3
	f := newMultiFixture(t, n)
	good := [][]byte{f.serverBlob(t, f.bps[0]), f.serverBlob(t, f.bps[2])}
	blobs := [][]byte{good[0], []byte("not a sealed blob"), good[1]}

	args, err := EncodeArgs(BatchPrepareArgs{ServerBlobs: blobs, SMMPub: f.smmKey.PublicBytes()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.enclave.ECall(FnPrepareBatch, args)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := DecodeBatchResult(out)
	if err != nil {
		t.Fatal(err)
	}
	bad := batch.Members[1]
	if bad.Err == "" {
		t.Fatal("garbage member prepared successfully")
	}
	if bad.MemXUsed != 0 || bad.DataUsed != 0 || len(bad.Ciphertext) != 0 {
		t.Errorf("failed member consumed allocation: %+v", bad.Result)
	}
	// The survivor after the hole sits right after the first member
	// (modulo the 16-byte function placement alignment).
	first := f.open(t, batch.Members[0].Ciphertext, batch.Members[0].EnclavePub)
	third := f.open(t, batch.Members[2].Ciphertext, batch.Members[2].EnclavePub)
	end := first.Funcs[0].PAddr + uint64(len(first.Funcs[0].Payload))
	if want := (end + 15) &^ 15; third.Funcs[0].PAddr != want {
		t.Errorf("member after failed one placed at %#x, want %#x (hole must not consume)",
			third.Funcs[0].PAddr, want)
	}
}
