package isa

import (
	"fmt"

	"kshot/internal/mem"
)

// Differential lockstep execution: every dispatch unit runs under the
// block engine, then memory is rewound (copy-on-write snapshot) and the
// same unit replays under the oracle interpreter on the very same
// physical memory. Full architectural state, retired-step counts, error
// text, and every memory frame are compared at the unit boundary — a
// block boundary, by construction — so a divergence is caught at the
// first unit it occurs in, not at the end of the workload.
//
// The rewind-replay design is what makes lockstep composable with the
// rest of the simulator: exploits and syscalls perform arbitrary memory
// traffic, so two independent machines would drift apart for reasons
// that have nothing to do with dispatch. One machine, rewound per unit,
// compares the only thing under test: what this unit did.

// DivergenceError reports a behavioral difference between the block
// engine and the oracle interpreter within one dispatch unit. Any
// occurrence is a bug in the block engine (or, symmetrically, in the
// oracle).
type DivergenceError struct {
	Unit int    // dispatch unit index within the session
	RIP  uint64 // RIP at unit entry
	What string // which comparison failed

	BlocksState State
	OracleState State

	BlocksRetired uint64
	OracleRetired uint64

	BlocksErr string // error text, "" if nil
	OracleErr string
}

// Error implements the error interface.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("dispatch divergence at unit %d (rip %#x): %s: blocks{rip %#x zf %v sf %v retired %d err %q} vs oracle{rip %#x zf %v sf %v retired %d err %q}",
		e.Unit, e.RIP, e.What,
		e.BlocksState.RIP, e.BlocksState.ZF, e.BlocksState.SF, e.BlocksRetired, e.BlocksErr,
		e.OracleState.RIP, e.OracleState.ZF, e.OracleState.SF, e.OracleRetired, e.OracleErr)
}

// Lockstep is a Runner that cross-checks the block engine against the
// oracle interpreter unit by unit. It requires exclusive use of the
// underlying memory for the duration of each unit (single-vCPU
// machines; the SMI pause protocol provides the bracket).
type Lockstep struct {
	eng    *Engine
	oracle *CPU
	units  int
}

// NewLockstep creates a lockstep runner over c. The oracle replays on a
// shadow CPU sharing c's memory; c itself always carries the block
// engine's (verified) result forward.
func NewLockstep(c *CPU) *Lockstep {
	return &Lockstep{eng: NewEngine(c), oracle: New(c.M, c.Priv)}
}

// Engine returns the verified block engine, for cache statistics.
func (l *Lockstep) Engine() *Engine { return l.eng }

// Units returns the number of dispatch units verified so far.
func (l *Lockstep) Units() int { return l.units }

// RunUnit executes one unit under both engines and compares. On
// agreement it returns the block engine's result; on divergence it
// returns a *DivergenceError.
func (l *Lockstep) RunUnit(budget int) (int, error) {
	c := l.eng.C
	pre := c.Save()
	preSteps := c.Steps
	entryRIP := c.RIP
	snap := c.M.Snapshot()

	n, engErr := l.eng.RunUnit(budget)
	engState := c.Save()
	engRetired := c.Steps - preSteps
	engSnap := c.M.Snapshot()

	// Rewind memory and replay the same unit under the oracle. The
	// restore bumps the code epoch, so the engine re-decodes every
	// unit — slow, but it means lockstep also soaks the decoder.
	if err := c.M.Restore(snap); err != nil {
		return n, err
	}
	o := l.oracle
	o.Restore(pre)
	o.Steps = preSteps
	var oErr error
	for oErr == nil && o.Steps-preSteps < engRetired {
		oErr = o.Step()
	}
	if engErr == nil && oErr == nil && engRetired == 0 {
		// The engine made no progress without erroring — it must not;
		// step the oracle once so the comparison below exposes it.
		oErr = o.Step()
	}
	if engErr != nil && oErr == nil && o.Steps-preSteps == engRetired {
		// The engine's error retired nothing (fetch/decode failure);
		// the oracle's next step must fail identically.
		oErr = o.Step()
	}
	oRetired := o.Steps - preSteps

	div := &DivergenceError{
		Unit: l.units, RIP: entryRIP,
		BlocksState: engState, OracleState: o.Save(),
		BlocksRetired: engRetired, OracleRetired: oRetired,
		BlocksErr: errText(engErr), OracleErr: errText(oErr),
	}
	switch {
	case div.BlocksErr != div.OracleErr:
		div.What = "error mismatch"
	case engRetired != oRetired:
		div.What = "retired-step mismatch"
	case engState != o.Save():
		div.What = "architectural state mismatch"
	default:
		dirty, err := c.M.DiffFrames(engSnap)
		if err != nil {
			return n, err
		}
		if len(dirty) > 0 {
			div.What = fmt.Sprintf("memory mismatch in %d frame(s), first at %#x",
				len(dirty), mem.FrameAddr(dirty[0]))
		}
	}
	if div.What != "" {
		return n, div
	}

	// Agreement: memory holds the oracle's (identical) bytes; c still
	// holds the engine's state. Carry both forward.
	l.units++
	return n, engErr
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
