// Package isa defines the instruction set of the simulated target
// machine: a byte-encoded, variable-length, x86-like ISA with an
// assembler, disassembler, and interpreter CPU.
//
// The encodings that KShot's binary patching depends on are faithful to
// x86: JMP rel32 and CALL rel32 are five bytes (opcode + little-endian
// signed 32-bit displacement relative to the next instruction), so the
// paper's trampoline arithmetic — replacing a target function's first
// instruction with a jmp whose offset is p.paddr − p.taddr + 5 — and
// its 5-byte ftrace prologue handling carry over bit-for-bit. Other
// opcodes are simplified but preserve the properties patching cares
// about: variable instruction length, relative branches that need
// fix-ups when code moves, and absolute data references.
package isa

import "fmt"

// Op is an operation code. The numeric values are the actual encoded
// opcode bytes.
type Op byte

// Opcodes. JMP, CALL, NOP and the Jcc family reuse genuine x86 opcode
// bytes (with rel32 operands); the rest are assigned unique bytes.
const (
	OpNop   Op = 0x90 // nop
	OpRet   Op = 0xC3 // ret
	OpHlt   Op = 0xF4 // hlt
	OpTrap  Op = 0xCC // trap imm8 — software interrupt / exploit marker
	OpCall  Op = 0xE8 // call rel32
	OpJmp   Op = 0xE9 // jmp rel32
	OpJz    Op = 0x74 // jz rel32
	OpJnz   Op = 0x75 // jnz rel32
	OpJl    Op = 0x7C // jl rel32 (signed)
	OpJge   Op = 0x7D // jge rel32
	OpJle   Op = 0x7E // jle rel32
	OpJg    Op = 0x7F // jg rel32
	OpMovi  Op = 0xB8 // movi reg, imm64
	OpMov   Op = 0x89 // mov dst, src
	OpAdd   Op = 0x01 // add dst, src
	OpSub   Op = 0x29 // sub dst, src
	OpMul   Op = 0x0F // mul dst, src
	OpDiv   Op = 0x06 // div dst, src (faults on zero divisor)
	OpAnd   Op = 0x21 // and dst, src
	OpOr    Op = 0x09 // or dst, src
	OpXor   Op = 0x31 // xor dst, src
	OpShl   Op = 0xD2 // shl dst, src
	OpShr   Op = 0xD3 // shr dst, src
	OpCmp   Op = 0x39 // cmp a, b — sets flags from a−b
	OpCmpi  Op = 0x3D // cmpi reg, imm32
	OpAddi  Op = 0x05 // addi reg, imm32 (sign-extended)
	OpSubi  Op = 0x2D // subi reg, imm32
	OpLoad  Op = 0x8B // load dst, [base+disp32]
	OpStore Op = 0x88 // store [base+disp32], src
	OpPush  Op = 0x50 // push reg
	OpPop   Op = 0x58 // pop reg
	OpLoadg Op = 0xA1 // loadg dst, [abs64]
	OpStrg  Op = 0xA3 // storeg [abs64], src
)

// Fixed instruction lengths in bytes, per opcode.
const (
	LenNop     = 1
	LenRet     = 1
	LenHlt     = 1
	LenTrap    = 2
	LenBranch  = 5 // call/jmp/jcc: opcode + rel32
	LenMovi    = 10
	LenRegReg  = 3
	LenRegImm  = 6 // cmpi/addi/subi: opcode + reg + imm32
	LenMemDisp = 7 // load/store: opcode + 2 regs + disp32
	LenStack   = 2
	LenAbs     = 10 // loadg/storeg: opcode + reg + abs64
)

// Length returns the encoded byte length of an instruction with this
// opcode, or 0 if the opcode is invalid.
func (op Op) Length() int {
	switch op {
	case OpNop, OpRet, OpHlt:
		return 1
	case OpTrap:
		return LenTrap
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		return LenBranch
	case OpMovi:
		return LenMovi
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		return LenRegReg
	case OpCmpi, OpAddi, OpSubi:
		return LenRegImm
	case OpLoad, OpStore:
		return LenMemDisp
	case OpPush, OpPop:
		return LenStack
	case OpLoadg, OpStrg:
		return LenAbs
	default:
		return 0
	}
}

// IsBranch reports whether the opcode is a control transfer with a
// rel32 operand (call, jmp, or conditional jump).
func (op Op) IsBranch() bool {
	switch op {
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		return true
	default:
		return false
	}
}

// IsCond reports whether the opcode is a conditional jump.
func (op Op) IsCond() bool {
	switch op {
	case OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		return true
	default:
		return false
	}
}

// Mnemonic returns the assembler mnemonic for the opcode.
func (op Op) Mnemonic() string {
	if s, ok := mnemonics[op]; ok {
		return s
	}
	return fmt.Sprintf("op%#02x", byte(op))
}

var mnemonics = map[Op]string{
	OpNop: "nop", OpRet: "ret", OpHlt: "hlt", OpTrap: "trap",
	OpCall: "call", OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpJl: "jl", OpJge: "jge", OpJle: "jle", OpJg: "jg",
	OpMovi: "movi", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpCmp: "cmp", OpCmpi: "cmpi",
	OpAddi: "addi", OpSubi: "subi", OpLoad: "load", OpStore: "store",
	OpPush: "push", OpPop: "pop", OpLoadg: "loadg", OpStrg: "storeg",
}

// opByMnemonic is the inverse of mnemonics, built once at init.
var opByMnemonic = func() map[string]Op {
	m := make(map[string]Op, len(mnemonics))
	for op, s := range mnemonics {
		m[s] = op
	}
	return m
}()

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// RegSP is the stack pointer register (r15, written "sp" in assembly).
const RegSP = 15

// Inst is a decoded machine instruction.
type Inst struct {
	Op  Op
	Dst uint8 // destination register (or base register for store)
	Src uint8 // source register
	Imm int64 // immediate, displacement, rel32, or absolute address
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch i.Op {
	case OpNop, OpRet, OpHlt:
		return i.Op.Mnemonic()
	case OpTrap:
		return fmt.Sprintf("trap %d", i.Imm)
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		return fmt.Sprintf("%s %+d", i.Op.Mnemonic(), i.Imm)
	case OpMovi:
		return fmt.Sprintf("movi %s, %#x", regName(i.Dst), uint64(i.Imm))
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		return fmt.Sprintf("%s %s, %s", i.Op.Mnemonic(), regName(i.Dst), regName(i.Src))
	case OpCmpi, OpAddi, OpSubi:
		return fmt.Sprintf("%s %s, %d", i.Op.Mnemonic(), regName(i.Dst), i.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s%+d]", regName(i.Dst), regName(i.Src), i.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s%+d], %s", regName(i.Dst), i.Imm, regName(i.Src))
	case OpPush, OpPop:
		return fmt.Sprintf("%s %s", i.Op.Mnemonic(), regName(i.Dst))
	case OpLoadg:
		return fmt.Sprintf("loadg %s, [%#x]", regName(i.Dst), uint64(i.Imm))
	case OpStrg:
		return fmt.Sprintf("storeg [%#x], %s", uint64(i.Imm), regName(i.Src))
	default:
		return fmt.Sprintf("op%#02x", byte(i.Op))
	}
}

func regName(r uint8) string {
	if r == RegSP {
		return "sp"
	}
	return fmt.Sprintf("r%d", r)
}
