package isa

// Block-dispatch execution engine. The decode-switch interpreter in
// cpu.go fetches and decodes every instruction on every execution; this
// file decodes each straight-line run of kernel text once into a
// predecoded basic block — operands resolved, branch targets computed,
// one function pointer per instruction — and thereafter executes from
// the cached block with no fetch, no decode, and a lazily committed
// RIP.
//
// Three superinstructions cover the patterns that dominate KShot
// workloads:
//
//   - ftrace prologue: `call __fentry__` where the callee is a bare
//     ret. The call/ret pair executes as one fused pred (the block does
//     not even end at the call).
//   - flag-set + conditional jump: cmp/cmpi/add/sub/addi/subi
//     immediately followed by a jcc runs as one fused terminator.
//   - jmp chains: a jmp whose target is another jmp (the shape a patch
//     trampoline produces) is folded up to maxChainHops deep, so a
//     patched function costs one dispatch, not one per hop.
//
// Correctness contract: a block must be observationally identical to
// running CPU.Step over the same addresses — the same retired-step
// counts, the same flag/register/RIP results, and the same errors with
// the same RIP attribution. Anything the decoder cannot predecode
// exactly (an invalid opcode, an unfetchable address) simply ends the
// block; the dispatcher falls back to Step, which reproduces the
// oracle's behavior by construction.
//
// Invalidation is epoch-keyed: the cache is valid for exactly one value
// of mem.Physical.CodeEpoch(), which bumps after any write into
// executable memory, any mapping or permission change, and any snapshot
// restore. RunUnit compares epochs before dispatch and flushes on
// mismatch — "epoch mismatch ⇒ re-decode" is the whole protocol, no new
// synchronization. A store executed from inside a block re-checks the
// epoch after writing, so even self-modifying code never runs a stale
// successor instruction within the same block.

const (
	// blockCap bounds the instructions decoded into one block, so a
	// huge straight-line function still interleaves with the step
	// budget and SMI pause points at a reasonable granularity.
	blockCap = 64

	// maxChainHops bounds jmp-chain folding (1 + folded hops). Patch
	// trampolines are one hop; stacked patches a few. The cap also
	// bounds decode-time work and makes jmp cycles harmless.
	maxChainHops = 4
)

// pred is one predecoded execution step: usually a single instruction,
// or a fused superinstruction covering two (flag-set+jcc, call+ret) or
// several (a folded jmp chain).
type pred struct {
	fn       predFn
	op, op2  Op // op2: the fused jcc for flag-set+jcc preds
	dst, src uint8
	imm      int64
	addr     uint64 // address of the (first) instruction
	next     uint64 // fall-through address past the (fused) instruction(s)
	target   uint64 // branch target / fused callee / folded chain exit
	steps    int    // instructions this pred retires when it completes
}

// predFn executes one pred. It returns the instructions retired (the
// fn itself advances c.Steps by the same amount), whether the unit is
// over (control left the straight line, or the code epoch moved), and
// any execution error. On error the fn commits c.RIP to the faulting
// instruction, exactly where the oracle interpreter would have left it.
type predFn func(e *Engine, p *pred) (retired int, done bool, err error)

// Block is a predecoded basic block: the straight-line instruction run
// starting at Start, ending at the first control transfer (or at
// blockCap, or at the first byte the decoder could not predecode).
type Block struct {
	start, end uint64
	preds      []pred
	src        []Decoded
}

// Start returns the block's entry address.
func (b *Block) Start() uint64 { return b.start }

// End returns the first address past the block's in-line instructions.
func (b *Block) End() uint64 { return b.end }

// Instructions returns the block's per-instruction expansion: the
// linear decode of its in-block bytes, exactly as Disassemble/Step
// would see them. Fused superinstructions expand to their constituent
// in-block instructions (a folded jmp chain contributes only its first,
// in-block jmp; the folded hops live outside the block).
func (b *Block) Instructions() []Decoded { return b.src }

// EngineStats counts block-cache behavior for tests and benchmarks.
// Read them only while the owning vCPU is quiescent.
type EngineStats struct {
	Decodes   uint64 // blocks decoded (cache misses)
	Hits      uint64 // block dispatches served from cache
	Flushes   uint64 // whole-cache invalidations (code epoch moved)
	Fallbacks uint64 // single Step fallbacks (undecodable head or budget)
}

// Engine executes a CPU through predecoded basic blocks, falling back
// to CPU.Step whenever predecoding cannot represent the next
// instruction exactly. An Engine is owned by one vCPU and is not safe
// for concurrent use; the shared state it reads (memory contents, the
// code epoch) is synchronized by mem.Physical itself.
type Engine struct {
	C *CPU

	blocks map[uint64]*Block
	epoch  uint64

	stats EngineStats

	// intr, when non-nil, receives cache-flush events and (while
	// armed) per-unit step events; cpuID attributes them to the owning
	// vCPU. Set only while the vCPU is quiescent.
	intr  IntrospectSink
	cpuID int
}

// NewEngine creates a block-dispatch engine over the CPU.
func NewEngine(c *CPU) *Engine {
	return &Engine{C: c, blocks: make(map[uint64]*Block), epoch: c.M.CodeEpoch()}
}

// Stats returns the cache counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// SetIntrospect installs (or, with nil, removes) the introspection
// sink, attributing events to vCPU cpu. Call only while the owning
// vCPU is quiescent (e.g. with the machine paused); the engine itself
// is single-goroutine.
func (e *Engine) SetIntrospect(s IntrospectSink, cpu int) {
	e.intr = s
	e.cpuID = cpu
}

// Flush discards every cached block. RunUnit flushes automatically on
// code-epoch mismatch; Flush exists for callers that change what the
// engine executes out of band (tests).
func (e *Engine) Flush() {
	e.flush(e.C.M.CodeEpoch())
}

func (e *Engine) flush(epoch uint64) {
	e.blocks = make(map[uint64]*Block)
	e.epoch = epoch
	e.stats.Flushes++
	if e.intr != nil {
		e.intr.OnCacheFlush(e.cpuID, epoch)
	}
}

// RunUnit executes one dispatch unit — one basic block, or one oracle
// Step when the address has no decodable block or the budget cannot
// cover a fused pred — and returns the instructions retired. budget
// must be >= 1; the unit never retires more than budget instructions.
// Callers must hold the CPU quiescent for the duration (the machine
// brackets each unit between SMI pause points).
func (e *Engine) RunUnit(budget int) (int, error) {
	n, err := e.runUnit(budget)
	// Per-unit step events are sev-step-style single-stepping at
	// dispatch-unit granularity; the armed check keeps the disarmed
	// cost to one predictable branch per unit.
	if s := e.intr; s != nil && s.StepArmed() {
		s.OnStep(e.cpuID, e.C.RIP, n)
	}
	return n, err
}

func (e *Engine) runUnit(budget int) (int, error) {
	c := e.C
	if ep := c.M.CodeEpoch(); ep != e.epoch {
		e.flush(ep)
	}
	b := e.blocks[c.RIP]
	if b == nil {
		if b = e.decodeBlock(c.RIP); b == nil {
			e.stats.Fallbacks++
			return e.stepOnce()
		}
		e.blocks[c.RIP] = b
		e.stats.Decodes++
	} else {
		e.stats.Hits++
	}
	return e.exec(b, budget)
}

// stepOnce delegates one instruction to the oracle interpreter,
// deriving the retired count from the Steps delta (a fetch or decode
// failure retires nothing; everything else retires one).
func (e *Engine) stepOnce() (int, error) {
	c := e.C
	before := c.Steps
	err := c.Step()
	return int(c.Steps - before), err
}

// exec runs the block until a control transfer, an error, or the
// budget. RIP is committed lazily: at block exit, at a taken branch, or
// at the faulting instruction on error.
func (e *Engine) exec(b *Block, budget int) (int, error) {
	c := e.C
	used := 0
	for i := range b.preds {
		p := &b.preds[i]
		if p.steps > budget-used {
			if used == 0 {
				// The budget cannot cover even the first (fused)
				// pred; retire single instructions via the oracle so
				// budget semantics stay exact.
				e.stats.Fallbacks++
				return e.stepOnce()
			}
			c.RIP = p.addr
			return used, nil
		}
		n, done, err := p.fn(e, p)
		used += n
		if err != nil {
			return used, err
		}
		if done {
			return used, nil
		}
	}
	c.RIP = b.end
	return used, nil
}

// decodeBlock predecodes the straight-line run at addr. It returns nil
// when not even the first instruction predecodes (the caller falls back
// to Step, which reproduces the exact fetch/decode error).
func (e *Engine) decodeBlock(addr uint64) *Block {
	c := e.C
	var buf [LenMovi]byte
	b := &Block{start: addr}
	cur := addr
	for len(b.preds) < blockCap {
		if err := c.M.Fetch(c.Priv, cur, buf[:1]); err != nil {
			break
		}
		n := Op(buf[0]).Length()
		if n == 0 {
			break
		}
		if n > 1 {
			if err := c.M.Fetch(c.Priv, cur+1, buf[1:n]); err != nil {
				break
			}
		}
		inst, _, err := Decode(buf[:n])
		if err != nil {
			break
		}
		d := Decoded{Addr: cur, Inst: inst, Len: n}
		term, ok := e.appendPred(b, d)
		if !ok {
			break
		}
		b.src = append(b.src, d)
		cur += uint64(n)
		if term {
			b.end = cur
			return b
		}
	}
	if len(b.preds) == 0 {
		return nil
	}
	b.end = cur
	return b
}

// appendPred converts one decoded instruction into the block's next
// pred, applying superinstruction fusion. It reports whether the block
// is complete (term: the pred is a terminator) and whether the
// instruction could be predecoded at all (ok; a false ends the block
// before the instruction and the dispatcher's Step fallback handles
// it).
func (e *Engine) appendPred(b *Block, d Decoded) (term, ok bool) {
	in := d.Inst
	next := d.Addr + uint64(d.Len)
	p := pred{op: in.Op, dst: in.Dst, src: in.Src, imm: in.Imm, addr: d.Addr, next: next, steps: 1}

	switch in.Op {
	case OpNop:
		p.fn = execNop
	case OpHlt:
		p.fn = execHlt
		b.preds = append(b.preds, p)
		return true, true
	case OpTrap:
		p.fn = execTrap
		b.preds = append(b.preds, p)
		return true, true
	case OpRet:
		p.fn = execRet
		b.preds = append(b.preds, p)
		return true, true
	case OpCall:
		p.target, _ = d.BranchTarget()
		// ftrace-prologue fusion: a call whose callee is a bare ret
		// (the `call __fentry__` shape at every traced function entry)
		// runs as one fused pred and does not end the block.
		var cb [1]byte
		if e.C.M.Fetch(e.C.Priv, p.target, cb[:]) == nil && Op(cb[0]) == OpRet {
			p.fn = execFusedCallRet
			p.steps = 2
			b.preds = append(b.preds, p)
			return false, true
		}
		p.fn = execCall
		b.preds = append(b.preds, p)
		return true, true
	case OpJmp:
		// Trampoline fusion: fold a chain of jmps (patch trampolines
		// stack exactly this way) into one pred that retires one step
		// per folded hop.
		p.target, _ = d.BranchTarget()
		p.fn = execJmpChain
		for p.steps < maxChainHops {
			var jb [LenBranch]byte
			if e.C.M.Fetch(e.C.Priv, p.target, jb[:]) != nil {
				break
			}
			hop, _, err := Decode(jb[:])
			if err != nil || hop.Op != OpJmp {
				break
			}
			p.target = uint64(int64(p.target) + LenBranch + hop.Imm)
			p.steps++
		}
		b.preds = append(b.preds, p)
		return true, true
	case OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		p.target, _ = d.BranchTarget()
		// Flag-set + jcc fusion: merge into the preceding cmp-family
		// pred when there is one.
		if n := len(b.preds); n > 0 {
			if lp := &b.preds[n-1]; lp.steps == 1 && fusableFlagSetter(lp.op) {
				lp.fn = execFusedFlagsJcc
				lp.op2 = in.Op
				lp.target = p.target
				lp.next = next
				lp.steps = 2
				return true, true
			}
		}
		p.fn = execJcc
		b.preds = append(b.preds, p)
		return true, true
	case OpMovi:
		p.fn = execMovi
	case OpMov:
		p.fn = execMov
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp, OpCmpi, OpAddi, OpSubi:
		p.fn = execFlags
	case OpDiv:
		p.fn = execDiv
	case OpLoad:
		p.fn = execLoad
	case OpStore:
		p.fn = execStore
	case OpPush:
		p.fn = execPush
	case OpPop:
		p.fn = execPop
	case OpLoadg:
		p.fn = execLoadg
	case OpStrg:
		p.fn = execStrg
	default:
		// Length() accepted the opcode but no executor exists — end
		// the block before this instruction so the dispatcher's Step
		// fallback keeps the oracle's "unhandled opcode" path.
		return true, false
	}
	b.preds = append(b.preds, p)
	return false, true
}

// fusableFlagSetter reports whether op is a register-only flag-setting
// instruction (no fault paths), safe to fuse with a following jcc.
func fusableFlagSetter(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpAddi, OpSubi, OpCmp, OpCmpi:
		return true
	}
	return false
}

// flagResult computes the flag-setting ops' result and writeback,
// mirroring the oracle's switch arms exactly.
func flagResult(c *CPU, op Op, dst, src uint8, imm int64) int64 {
	switch op {
	case OpAdd:
		return c.alu(dst, c.Reg[dst]+c.Reg[src])
	case OpSub:
		return c.alu(dst, c.Reg[dst]-c.Reg[src])
	case OpMul:
		return c.alu(dst, c.Reg[dst]*c.Reg[src])
	case OpAnd:
		return c.alu(dst, c.Reg[dst]&c.Reg[src])
	case OpOr:
		return c.alu(dst, c.Reg[dst]|c.Reg[src])
	case OpXor:
		return c.alu(dst, c.Reg[dst]^c.Reg[src])
	case OpShl:
		return c.alu(dst, c.Reg[dst]<<(c.Reg[src]&63))
	case OpShr:
		return c.alu(dst, c.Reg[dst]>>(c.Reg[src]&63))
	case OpCmp:
		return int64(c.Reg[dst] - c.Reg[src])
	case OpCmpi:
		return int64(c.Reg[dst] - uint64(imm))
	case OpAddi:
		return c.alu(dst, c.Reg[dst]+uint64(imm))
	case OpSubi:
		return c.alu(dst, c.Reg[dst]-uint64(imm))
	}
	return 0
}

func execNop(e *Engine, p *pred) (int, bool, error) {
	e.C.Steps++
	return 1, false, nil
}

func execHlt(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	c.RIP = p.addr
	return 1, true, &ExecError{RIP: p.addr, Err: errHlt()}
}

func execTrap(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	c.RIP = p.next
	return 1, true, &TrapError{Code: int(p.imm), RIP: p.addr}
}

func execRet(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	v, err := c.pop()
	if err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	c.RIP = v
	return 1, true, nil
}

func execCall(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	if err := c.push(p.next); err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	c.RIP = p.target
	return 1, true, nil
}

// execFusedCallRet is the ftrace-prologue superinstruction: call to a
// bare ret, fused. When the popped return address is the fall-through
// (the overwhelmingly common case — nothing touched the stack slot),
// the block continues in-line; otherwise the unit ends at the popped
// address, exactly as the oracle's ret would.
func execFusedCallRet(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++ // the call
	if err := c.push(p.next); err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	c.Steps++ // the callee's ret
	v, err := c.pop()
	if err != nil {
		c.RIP = p.target
		return 2, true, &ExecError{RIP: p.target, Err: err}
	}
	c.RIP = v
	return 2, v != p.next, nil
}

// execJmpChain is the trampoline superinstruction: the in-block jmp
// plus up to maxChainHops-1 folded follow-on jmps, each retiring one
// step.
func execJmpChain(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps += uint64(p.steps)
	c.RIP = p.target
	return p.steps, true, nil
}

func execJcc(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	if c.condTaken(p.op) {
		c.RIP = p.target
	} else {
		c.RIP = p.next
	}
	return 1, true, nil
}

// execFusedFlagsJcc is the ALU/cmp+jcc superinstruction: set flags,
// then branch on them, as one fused terminator.
func execFusedFlagsJcc(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps += 2
	c.setFlags(flagResult(c, p.op, p.dst, p.src, p.imm))
	if c.condTaken(p.op2) {
		c.RIP = p.target
	} else {
		c.RIP = p.next
	}
	return 2, true, nil
}

func execMovi(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	c.Reg[p.dst] = uint64(p.imm)
	return 1, false, nil
}

func execMov(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	c.Reg[p.dst] = c.Reg[p.src]
	return 1, false, nil
}

func execFlags(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	c.setFlags(flagResult(c, p.op, p.dst, p.src, p.imm))
	return 1, false, nil
}

func execDiv(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	if c.Reg[p.src] == 0 {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: errDivZero()}
	}
	c.setFlags(c.alu(p.dst, c.Reg[p.dst]/c.Reg[p.src]))
	return 1, false, nil
}

func execLoad(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	v, err := c.M.ReadU64(c.Priv, uint64(int64(c.Reg[p.src])+p.imm))
	if err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	c.Reg[p.dst] = v
	return 1, false, nil
}

func execStore(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	addr := uint64(int64(c.Reg[p.dst]) + p.imm)
	if err := c.M.WriteU64(c.Priv, addr, c.Reg[p.src]); err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	return 1, e.codeMoved(p), nil
}

func execPush(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	if err := c.push(c.Reg[p.dst]); err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	return 1, e.codeMoved(p), nil
}

func execPop(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	v, err := c.pop()
	if err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	c.Reg[p.dst] = v
	return 1, false, nil
}

func execLoadg(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	v, err := c.M.ReadU64(c.Priv, uint64(p.imm))
	if err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	c.Reg[p.dst] = v
	return 1, false, nil
}

func execStrg(e *Engine, p *pred) (int, bool, error) {
	c := e.C
	c.Steps++
	if err := c.M.WriteU64(c.Priv, uint64(p.imm), c.Reg[p.src]); err != nil {
		c.RIP = p.addr
		return 1, true, &ExecError{RIP: p.addr, Err: err}
	}
	return 1, e.codeMoved(p), nil
}

// codeMoved re-checks the code epoch after a memory write mid-block. A
// bump means the write may have rewritten code — including this very
// block's later instructions — so the unit ends at the fall-through and
// the next dispatch re-decodes, preserving exact self-modifying-code
// semantics.
func (e *Engine) codeMoved(p *pred) bool {
	if e.C.M.CodeEpoch() == e.epoch {
		return false
	}
	e.C.RIP = p.next
	return true
}

// Run is CPU.Run over block dispatch: execute until the call session
// completes, a trap or fault occurs, or maxSteps instructions retire
// (ErrStepLimit) — with identical semantics to the oracle loop.
func (e *Engine) Run(maxSteps int) error {
	c := e.C
	remaining := maxSteps
	for remaining > 0 {
		if c.Done() {
			return nil
		}
		n, err := e.RunUnit(remaining)
		if err != nil {
			return err
		}
		if n < 1 {
			n = 1
		}
		remaining -= n
	}
	if c.Done() {
		return nil
	}
	return ErrStepLimit
}

// Call is CPU.Call over block dispatch.
func (e *Engine) Call(entry, stackTop uint64, maxSteps int, args ...uint64) (uint64, error) {
	c := e.C
	if len(args) > 5 {
		return 0, errTooManyArgs(len(args))
	}
	c.Reg = [NumRegs]uint64{}
	c.Reg[RegSP] = stackTop
	for i, a := range args {
		c.Reg[1+i] = a
	}
	if err := c.push(StopAddr); err != nil {
		return 0, err
	}
	c.RIP = entry
	if err := e.Run(maxSteps); err != nil {
		return c.Reg[0], err
	}
	return c.Reg[0], nil
}
