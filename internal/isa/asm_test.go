package isa

import (
	"strings"
	"testing"
)

const sampleSrc = `
; sample translation unit
.global counter 8
.data   magic   de ad be ef

.func helper inline
    addi r0, 1
    ret
.endfunc

.func leaf notrace
    movi r0, 7
    ret
.endfunc

.func entry
    movi r1, 3
    cmpi r1, 0
    jz .zero
    call helper
    call leaf
    jmp .out
.zero:
    movi r0, 0
.out:
    ret
.endfunc
`

func TestParseSample(t *testing.T) {
	u, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(u.Funcs) != 3 || len(u.Globals) != 2 {
		t.Fatalf("got %d funcs, %d globals", len(u.Funcs), len(u.Globals))
	}
	if f := u.Func("helper"); f == nil || !f.Inline {
		t.Error("helper not parsed as inline")
	}
	if f := u.Func("leaf"); f == nil || !f.NoTrace {
		t.Error("leaf not parsed as notrace")
	}
	if g := u.Global("counter"); g == nil || g.Size != 8 || g.Init != nil {
		t.Error("counter global wrong")
	}
	if g := u.Global("magic"); g == nil || g.Size != 4 || g.Init[0] != 0xde {
		t.Error("magic data wrong")
	}
	entry := u.Func("entry")
	targets := entry.CallTargets()
	if len(targets) != 2 || targets[0] != "helper" || targets[1] != "leaf" {
		t.Errorf("call targets = %v", targets)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"nested func", ".func a\n.func b\n.endfunc\n.endfunc"},
		{"stray endfunc", ".endfunc"},
		{"dup func", ".func a\nret\n.endfunc\n.func a\nret\n.endfunc"},
		{"dup global", ".global x 8\n.global x 8"},
		{"global in func", ".func a\n.global x 8\n.endfunc"},
		{"unterminated", ".func a\nret"},
		{"label outside", ".lbl:"},
		{"label no dot", ".func a\nlbl:\nret\n.endfunc"},
		{"inst outside", "nop"},
		{"bad mnemonic", ".func a\nfrobnicate r1\n.endfunc"},
		{"bad reg", ".func a\nmov r99, r1\n.endfunc"},
		{"bad operand count", ".func a\nmov r1\n.endfunc"},
		{"bad imm", ".func a\nmovi r1, zzz\n.endfunc"},
		{"bad trap", ".func a\ntrap 999\n.endfunc"},
		{"bad mem", ".func a\nload r1, r2\n.endfunc"},
		{"bad disp", ".func a\nload r1, [r2+zz]\n.endfunc"},
		{"bad global size", ".global x 0"},
		{"bad data byte", ".data x zz"},
		{"bad directive", ".bogus x"},
		{"bad attr", ".func a wat\nret\n.endfunc"},
		{"func no name", ".func"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("parse succeeded for %q", c.src)
			}
		})
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Parse("\n\n.func a\nbogus\n.endfunc")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T", err)
	}
	if se.Line != 4 {
		t.Errorf("line = %d, want 4", se.Line)
	}
	if !strings.Contains(se.Error(), "line 4") {
		t.Errorf("error text: %s", se.Error())
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	u, err := Parse("  ; lead\n.func a  # trailing\n  nop ; mid\n  ret\n.endfunc\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(u.Funcs[0].Items) != 2 {
		t.Errorf("items = %d, want 2", len(u.Funcs[0].Items))
	}
}

func TestMergeUnits(t *testing.T) {
	a := MustParse(".func f\nret\n.endfunc\n.global g 8")
	b := MustParse(".func h\nret\n.endfunc")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Func("h") == nil {
		t.Error("merged function missing")
	}
	dup := MustParse(".func f\nret\n.endfunc")
	if err := a.Merge(dup); err == nil {
		t.Error("merge with duplicate function succeeded")
	}
	dupG := MustParse(".global g 8")
	if err := a.Merge(dupG); err == nil {
		t.Error("merge with duplicate global succeeded")
	}
}

func TestLinkLayout(t *testing.T) {
	u := MustParse(sampleSrc)
	img, err := Link(u, LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	entry, ok := img.Symbols.Lookup("entry")
	if !ok || entry.Kind != SymFunc {
		t.Fatal("entry symbol missing")
	}
	// Functions laid out in order, contiguous.
	helper, _ := img.Symbols.Lookup("helper")
	leaf, _ := img.Symbols.Lookup("leaf")
	if helper.Addr != 0x10000 {
		t.Errorf("first func at %#x, want 0x10000", helper.Addr)
	}
	if leaf.Addr != helper.Addr+helper.Size {
		t.Error("functions not contiguous")
	}
	// Globals aligned to 8.
	counter, _ := img.Symbols.Lookup("counter")
	magic, _ := img.Symbols.Lookup("magic")
	if counter.Addr%8 != 0 || magic.Addr%8 != 0 {
		t.Error("globals not aligned")
	}
	// Initialized data present.
	off := magic.Addr - img.DataBase
	if img.Data[off] != 0xde || img.Data[off+3] != 0xef {
		t.Error("data init bytes wrong")
	}
	// Whole text disassembles.
	if _, err := Disassemble(img.Text, img.TextBase); err != nil {
		t.Errorf("disassemble: %v", err)
	}
	// FuncBytes matches symbol size.
	fb, err := img.FuncBytes("entry")
	if err != nil || uint64(len(fb)) != entry.Size {
		t.Errorf("FuncBytes: %d bytes, want %d (%v)", len(fb), entry.Size, err)
	}
	if _, err := img.FuncBytes("counter"); err == nil {
		t.Error("FuncBytes on object symbol succeeded")
	}
}

func TestLinkBranchResolution(t *testing.T) {
	u := MustParse(`
.func a
    jmp .end
    trap 1
.end:
    ret
.endfunc
.func b
    call a
    ret
.endfunc
`)
	img, err := Link(u, LinkOptions{TextBase: 0x1000})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	dec, err := Disassemble(img.Text, img.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := img.Symbols.Lookup("a")
	// First instruction of a: jmp over the trap to the ret.
	tgt, ok := dec[0].BranchTarget()
	if !ok {
		t.Fatal("first inst not a branch")
	}
	if sym, _ := img.Symbols.At(tgt); sym.Name != "a" {
		t.Errorf("jmp target %#x not inside a", tgt)
	}
	// b's call resolves to a's entry.
	var callTgt uint64
	for _, d := range dec {
		if d.Inst.Op == OpCall {
			callTgt, _ = d.BranchTarget()
		}
	}
	if callTgt != a.Addr {
		t.Errorf("call target %#x, want %#x", callTgt, a.Addr)
	}
}

func TestLinkUndefinedSymbols(t *testing.T) {
	cases := []string{
		".func a\ncall nosuch\nret\n.endfunc",
		".func a\njmp .nolabel\nret\n.endfunc",
		".func a\nmovi r1, @nosuch\nret\n.endfunc",
		".func a\nloadg r1, nosuch\nret\n.endfunc",
		".func a\nstoreg nosuch, r1\nret\n.endfunc",
	}
	for _, src := range cases {
		u := MustParse(src)
		if _, err := Link(u, LinkOptions{}); err == nil {
			t.Errorf("link succeeded for %q", src)
		}
	}
}

func TestLinkDuplicateLabel(t *testing.T) {
	u := MustParse(".func a\n.l:\nnop\n.l:\nret\n.endfunc")
	if _, err := Link(u, LinkOptions{}); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestFtracePrologue(t *testing.T) {
	u := MustParse(sampleSrc)
	img, err := Link(u, LinkOptions{TextBase: 0x10000, DataBase: 0x80000, Ftrace: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	fentry, ok := img.Symbols.Lookup("__fentry__")
	if !ok {
		t.Fatal("__fentry__ not auto-defined")
	}
	entry, _ := img.Symbols.Lookup("entry")
	if !entry.Traced {
		t.Error("entry not marked traced")
	}
	eb, _ := img.FuncBytes("entry")
	if !HasFtracePrologue(eb, entry.Addr, fentry.Addr) {
		t.Error("entry lacks ftrace prologue signature")
	}
	// notrace function must not have it.
	leaf, _ := img.Symbols.Lookup("leaf")
	if leaf.Traced {
		t.Error("notrace leaf marked traced")
	}
	lb, _ := img.FuncBytes("leaf")
	if HasFtracePrologue(lb, leaf.Addr, fentry.Addr) {
		t.Error("leaf has unexpected prologue")
	}
	// A call rel32 that is NOT to __fentry__ must not match.
	if HasFtracePrologue(eb, entry.Addr, fentry.Addr+1) {
		t.Error("prologue signature matched wrong fentry addr")
	}
}

func TestInlineExpansion(t *testing.T) {
	u := MustParse(`
.func inc inline
    addi r0, 1
    ret
.endfunc
.func twice inline
    call inc
    call inc
    ret
.endfunc
.func top
    movi r0, 0
    call twice
    ret
.endfunc
`)
	noInline, err := Link(u, LinkOptions{TextBase: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := Link(u, LinkOptions{TextBase: 0x1000, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	// With inlining, top must contain no calls at all.
	tb, _ := inlined.FuncBytes("top")
	dec, err := Disassemble(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dec {
		if d.Inst.Op == OpCall {
			t.Error("call survived inline expansion")
		}
	}
	// And top must be bigger than the non-inlined version.
	a, _ := noInline.Symbols.Lookup("top")
	b, _ := inlined.Symbols.Lookup("top")
	if b.Size <= a.Size {
		t.Errorf("inlined top size %d <= plain %d", b.Size, a.Size)
	}
}

func TestInlineLabelRenaming(t *testing.T) {
	u := MustParse(`
.func pick inline
    cmpi r1, 0
    jz .no
    movi r0, 1
    jmp .done
.no:
    movi r0, 2
.done:
    ret
.endfunc
.func top
    call pick
    call pick
    ret
.endfunc
`)
	// Two expansions of the same labeled body: labels must stay unique.
	if _, err := Link(u, LinkOptions{Inline: true}); err != nil {
		t.Fatalf("link with repeated inline: %v", err)
	}
}

func TestInlineCycleRejected(t *testing.T) {
	u := MustParse(`
.func a inline
    call b
    ret
.endfunc
.func b inline
    call a
    ret
.endfunc
.func top
    call a
    ret
.endfunc
`)
	if _, err := Link(u, LinkOptions{Inline: true}); err == nil {
		t.Error("inline cycle accepted")
	}
}

func TestInlineRequiresTrailingRet(t *testing.T) {
	u := MustParse(`
.func bad inline
    ret
    nop
.endfunc
.func top
    call bad
    ret
.endfunc
`)
	if _, err := Link(u, LinkOptions{Inline: true}); err == nil {
		t.Error("inline function without trailing ret accepted")
	}
	u2 := MustParse(`
.func bad inline
    cmpi r1, 0
    jz .x
    ret
.x:
    ret
.endfunc
.func top
    call bad
    ret
.endfunc
`)
	if _, err := Link(u2, LinkOptions{Inline: true}); err == nil {
		t.Error("inline function with multiple rets accepted")
	}
}

func TestSymTab(t *testing.T) {
	tab, err := NewSymTab([]Symbol{
		{Name: "b", Kind: SymFunc, Addr: 0x2000, Size: 16},
		{Name: "a", Kind: SymFunc, Addr: 0x1000, Size: 32},
		{Name: "g", Kind: SymObject, Addr: 0x8000, Size: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := tab.At(0x101f); !ok || s.Name != "a" {
		t.Errorf("At(0x101f) = %v, %v", s, ok)
	}
	if _, ok := tab.At(0x1020); ok {
		t.Error("At past end of symbol matched")
	}
	if _, ok := tab.At(0x500); ok {
		t.Error("At before first symbol matched")
	}
	if fs := tab.Funcs(); len(fs) != 2 || fs[0].Name != "a" {
		t.Errorf("Funcs() = %v", fs)
	}
	if len(tab.All()) != 3 {
		t.Error("All() wrong length")
	}
	if _, err := NewSymTab([]Symbol{{Name: "x"}, {Name: "x"}}); err == nil {
		t.Error("duplicate symbol accepted")
	}
}
