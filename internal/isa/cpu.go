package isa

import (
	"errors"
	"fmt"

	"kshot/internal/mem"
)

// StopAddr is the sentinel return address pushed before entering a
// function via Call. When a ret pops it, execution of the call session
// is complete.
const StopAddr uint64 = 0xFFFF_FFFF_FFFF_FFF0

// TrapError is returned by Step/Run when the CPU executes a trap
// instruction. Benchmark exploit checks use trap codes to signal that
// a vulnerable path was reached.
type TrapError struct {
	Code int
	RIP  uint64
}

// Error implements the error interface.
func (e *TrapError) Error() string {
	return fmt.Sprintf("trap %d at %#x", e.Code, e.RIP)
}

// ExecError wraps a fault raised while executing, recording where.
type ExecError struct {
	RIP uint64
	Err error
}

// Error implements the error interface.
func (e *ExecError) Error() string { return fmt.Sprintf("exec at %#x: %v", e.RIP, e.Err) }

// Unwrap supports errors.Is/As matching of the underlying fault.
func (e *ExecError) Unwrap() error { return e.Err }

// ErrStepLimit is returned by Run when the step budget is exhausted
// before the call session completes.
var ErrStepLimit = errors.New("cpu: step limit exceeded")

// Shared error constructors: the oracle interpreter (Step) and the
// block-dispatch engine (block.go) must produce byte-identical error
// text for the same fault — the differential lockstep suite compares
// error strings.
func errHlt() error              { return errors.New("hlt in non-idle context") }
func errDivZero() error          { return errors.New("division by zero") }
func errTooManyArgs(n int) error { return fmt.Errorf("call: too many arguments (%d)", n) }

// State is the architectural state of one virtual CPU — exactly what
// the SMM hardware saves to the SMRAM state save area on an SMI and
// restores on RSM.
type State struct {
	Reg  [NumRegs]uint64
	RIP  uint64
	ZF   bool
	SF   bool
	Priv mem.Priv
}

// CPU is an interpreter for the simulated ISA, executing instructions
// from access-controlled physical memory at a given privilege level.
type CPU struct {
	State
	M *mem.Physical

	// Steps counts instructions retired, for cost accounting.
	Steps uint64

	fetchBuf [LenMovi]byte

	// fetchCache remembers the region the last instruction fetch
	// resolved to. The fetch loop hits kernel.text almost every step,
	// so this skips the region lookup on the hot path; mem validates
	// the cache against mapping changes, so semantics are unchanged.
	fetchCache mem.RegionCache
}

// NewCPU creates a CPU executing at the given privilege.
func New(m *mem.Physical, priv mem.Priv) *CPU {
	return &CPU{State: State{Priv: priv}, M: m}
}

// Save returns a copy of the architectural state.
func (c *CPU) Save() State { return c.State }

// Restore replaces the architectural state.
func (c *CPU) Restore(s State) { c.State = s }

// Step fetches, decodes, and executes one instruction.
func (c *CPU) Step() error {
	// Fetch the opcode byte, then the instruction remainder.
	if err := c.M.FetchCached(c.Priv, c.RIP, c.fetchBuf[:1], &c.fetchCache); err != nil {
		return &ExecError{RIP: c.RIP, Err: err}
	}
	n := Op(c.fetchBuf[0]).Length()
	if n == 0 {
		return &ExecError{RIP: c.RIP, Err: fmt.Errorf("invalid opcode %#02x", c.fetchBuf[0])}
	}
	if n > 1 {
		if err := c.M.FetchCached(c.Priv, c.RIP+1, c.fetchBuf[1:n], &c.fetchCache); err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
	}
	inst, _, err := Decode(c.fetchBuf[:n])
	if err != nil {
		return &ExecError{RIP: c.RIP, Err: err}
	}
	next := c.RIP + uint64(n)
	c.Steps++

	switch inst.Op {
	case OpNop:
	case OpHlt:
		return &ExecError{RIP: c.RIP, Err: errHlt()}
	case OpTrap:
		trap := &TrapError{Code: int(inst.Imm), RIP: c.RIP}
		c.RIP = next
		return trap
	case OpRet:
		addr, err := c.pop()
		if err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
		c.RIP = addr
		return nil
	case OpCall:
		if err := c.push(next); err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
		c.RIP = uint64(int64(next) + inst.Imm)
		return nil
	case OpJmp:
		c.RIP = uint64(int64(next) + inst.Imm)
		return nil
	case OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		if c.condTaken(inst.Op) {
			c.RIP = uint64(int64(next) + inst.Imm)
		} else {
			c.RIP = next
		}
		return nil
	case OpMovi:
		c.Reg[inst.Dst] = uint64(inst.Imm)
	case OpMov:
		c.Reg[inst.Dst] = c.Reg[inst.Src]
	case OpAdd:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]+c.Reg[inst.Src]))
	case OpSub:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]-c.Reg[inst.Src]))
	case OpMul:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]*c.Reg[inst.Src]))
	case OpDiv:
		if c.Reg[inst.Src] == 0 {
			return &ExecError{RIP: c.RIP, Err: errDivZero()}
		}
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]/c.Reg[inst.Src]))
	case OpAnd:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]&c.Reg[inst.Src]))
	case OpOr:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]|c.Reg[inst.Src]))
	case OpXor:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]^c.Reg[inst.Src]))
	case OpShl:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]<<(c.Reg[inst.Src]&63)))
	case OpShr:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]>>(c.Reg[inst.Src]&63)))
	case OpCmp:
		c.setFlags(int64(c.Reg[inst.Dst] - c.Reg[inst.Src]))
	case OpCmpi:
		c.setFlags(int64(c.Reg[inst.Dst] - uint64(inst.Imm)))
	case OpAddi:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]+uint64(inst.Imm)))
	case OpSubi:
		c.setFlags(c.alu(inst.Dst, c.Reg[inst.Dst]-uint64(inst.Imm)))
	case OpLoad:
		v, err := c.M.ReadU64(c.Priv, uint64(int64(c.Reg[inst.Src])+inst.Imm))
		if err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
		c.Reg[inst.Dst] = v
	case OpStore:
		addr := uint64(int64(c.Reg[inst.Dst]) + inst.Imm)
		if err := c.M.WriteU64(c.Priv, addr, c.Reg[inst.Src]); err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
	case OpPush:
		if err := c.push(c.Reg[inst.Dst]); err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
	case OpPop:
		v, err := c.pop()
		if err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
		c.Reg[inst.Dst] = v
	case OpLoadg:
		v, err := c.M.ReadU64(c.Priv, uint64(inst.Imm))
		if err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
		c.Reg[inst.Dst] = v
	case OpStrg:
		if err := c.M.WriteU64(c.Priv, uint64(inst.Imm), c.Reg[inst.Src]); err != nil {
			return &ExecError{RIP: c.RIP, Err: err}
		}
	default:
		return &ExecError{RIP: c.RIP, Err: fmt.Errorf("unhandled opcode %#02x", byte(inst.Op))}
	}
	c.RIP = next
	return nil
}

func (c *CPU) alu(dst uint8, v uint64) int64 {
	c.Reg[dst] = v
	return int64(v)
}

func (c *CPU) setFlags(v int64) {
	c.ZF = v == 0
	c.SF = v < 0
}

func (c *CPU) condTaken(op Op) bool {
	switch op {
	case OpJz:
		return c.ZF
	case OpJnz:
		return !c.ZF
	case OpJl:
		return c.SF && !c.ZF
	case OpJge:
		return !c.SF || c.ZF
	case OpJle:
		return c.SF || c.ZF
	case OpJg:
		return !c.SF && !c.ZF
	default:
		return false
	}
}

func (c *CPU) push(v uint64) error {
	c.Reg[RegSP] -= 8
	return c.M.WriteU64(c.Priv, c.Reg[RegSP], v)
}

func (c *CPU) pop() (uint64, error) {
	v, err := c.M.ReadU64(c.Priv, c.Reg[RegSP])
	if err != nil {
		return 0, err
	}
	c.Reg[RegSP] += 8
	return v, nil
}

// Done reports whether the current call session has completed (a ret
// popped the stop sentinel).
func (c *CPU) Done() bool { return c.RIP == StopAddr }

// Run steps until the call session completes, a trap or fault occurs,
// or maxSteps instructions retire (returning ErrStepLimit).
func (c *CPU) Run(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if c.Done() {
			return nil
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	if c.Done() {
		return nil
	}
	return ErrStepLimit
}

// Call executes the function at entry with up to five arguments in
// r1..r5, using the given stack top. It returns r0.
func (c *CPU) Call(entry, stackTop uint64, maxSteps int, args ...uint64) (uint64, error) {
	if len(args) > 5 {
		return 0, errTooManyArgs(len(args))
	}
	c.Reg = [NumRegs]uint64{}
	c.Reg[RegSP] = stackTop
	for i, a := range args {
		c.Reg[1+i] = a
	}
	if err := c.push(StopAddr); err != nil {
		return 0, err
	}
	c.RIP = entry
	if err := c.Run(maxSteps); err != nil {
		return c.Reg[0], err
	}
	return c.Reg[0], nil
}
