package isa

import (
	"bytes"
	"strings"
	"testing"
)

// TestOpcodeCoverage drives every opcode through encode, decode, length
// accounting, and the assembler-syntax renderer, asserting exact output
// for each. One entry per opcode keeps the disassembler's whole surface
// pinned: adding an opcode without extending this table fails the
// exhaustiveness check below.
func TestOpcodeCoverage(t *testing.T) {
	cases := []struct {
		inst Inst
		len  int
		str  string
	}{
		// nullary
		{Inst{Op: OpNop}, LenNop, "nop"},
		{Inst{Op: OpRet}, LenRet, "ret"},
		{Inst{Op: OpHlt}, LenHlt, "hlt"},
		// trap imm8
		{Inst{Op: OpTrap, Imm: 0x41}, LenTrap, "trap 65"},
		// branches: opcode + rel32, signed displacement
		{Inst{Op: OpCall, Imm: 1234}, LenBranch, "call +1234"},
		{Inst{Op: OpJmp, Imm: -5}, LenBranch, "jmp -5"},
		{Inst{Op: OpJz, Imm: 16}, LenBranch, "jz +16"},
		{Inst{Op: OpJnz, Imm: -2048}, LenBranch, "jnz -2048"},
		{Inst{Op: OpJl, Imm: 0}, LenBranch, "jl +0"},
		{Inst{Op: OpJge, Imm: 7}, LenBranch, "jge +7"},
		{Inst{Op: OpJle, Imm: -7}, LenBranch, "jle -7"},
		{Inst{Op: OpJg, Imm: 1 << 20}, LenBranch, "jg +1048576"},
		// movi reg, imm64
		{Inst{Op: OpMovi, Dst: 3, Imm: -1}, LenMovi, "movi r3, 0xffffffffffffffff"},
		// reg, reg ALU
		{Inst{Op: OpMov, Dst: 1, Src: 2}, LenRegReg, "mov r1, r2"},
		{Inst{Op: OpAdd, Dst: 0, Src: 15}, LenRegReg, "add r0, sp"},
		{Inst{Op: OpSub, Dst: 4, Src: 5}, LenRegReg, "sub r4, r5"},
		{Inst{Op: OpMul, Dst: 6, Src: 7}, LenRegReg, "mul r6, r7"},
		{Inst{Op: OpDiv, Dst: 8, Src: 9}, LenRegReg, "div r8, r9"},
		{Inst{Op: OpAnd, Dst: 10, Src: 11}, LenRegReg, "and r10, r11"},
		{Inst{Op: OpOr, Dst: 12, Src: 13}, LenRegReg, "or r12, r13"},
		{Inst{Op: OpXor, Dst: 14, Src: 14}, LenRegReg, "xor r14, r14"},
		{Inst{Op: OpShl, Dst: 1, Src: 3}, LenRegReg, "shl r1, r3"},
		{Inst{Op: OpShr, Dst: 2, Src: 4}, LenRegReg, "shr r2, r4"},
		{Inst{Op: OpCmp, Dst: 5, Src: 6}, LenRegReg, "cmp r5, r6"},
		// reg, imm32 (sign-extended)
		{Inst{Op: OpCmpi, Dst: 7, Imm: 99}, LenRegImm, "cmpi r7, 99"},
		{Inst{Op: OpAddi, Dst: 8, Imm: -1}, LenRegImm, "addi r8, -1"},
		{Inst{Op: OpSubi, Dst: 9, Imm: 1 << 30}, LenRegImm, "subi r9, 1073741824"},
		// memory with base+disp32
		{Inst{Op: OpLoad, Dst: 1, Src: 2, Imm: 64}, LenMemDisp, "load r1, [r2+64]"},
		{Inst{Op: OpStore, Dst: 3, Src: 4, Imm: -8}, LenMemDisp, "store [r3-8], r4"},
		// stack
		{Inst{Op: OpPush, Dst: 15}, LenStack, "push sp"},
		{Inst{Op: OpPop, Dst: 0}, LenStack, "pop r0"},
		// absolute 64-bit data references
		{Inst{Op: OpLoadg, Dst: 2, Imm: 0x400100}, LenAbs, "loadg r2, [0x400100]"},
		{Inst{Op: OpStrg, Src: 3, Imm: 0x400108}, LenAbs, "storeg [0x400108], r3"},
	}

	covered := map[Op]bool{}
	for _, tc := range cases {
		covered[tc.inst.Op] = true
		t.Run(tc.str, func(t *testing.T) {
			if got := tc.inst.Op.Length(); got != tc.len {
				t.Errorf("Length() = %d, want %d", got, tc.len)
			}
			if got := tc.inst.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
			enc, err := Encode(nil, tc.inst)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(enc) != tc.len {
				t.Fatalf("encoded %d bytes, want %d", len(enc), tc.len)
			}
			if Op(enc[0]) != tc.inst.Op {
				t.Errorf("first byte %#02x, want opcode %#02x", enc[0], byte(tc.inst.Op))
			}
			dec, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if n != tc.len || dec != tc.inst {
				t.Errorf("round trip: got %+v len %d, want %+v len %d", dec, n, tc.inst, tc.len)
			}
			// Extra trailing bytes must not change the decode.
			dec2, n2, err := Decode(append(enc, 0x90, 0xC3))
			if err != nil || n2 != n || dec2 != dec {
				t.Errorf("decode with trailing bytes: %+v len %d err %v", dec2, n2, err)
			}
		})
	}

	// Exhaustiveness: every byte value the ISA assigns a length must
	// have a table entry, so a new opcode cannot land untested.
	for b := 0; b < 256; b++ {
		op := Op(b)
		if op.Length() > 0 && !covered[op] {
			t.Errorf("opcode %#02x (%s) has no coverage case", b, op.Mnemonic())
		}
	}
}

// TestOpcodeCoverageBlockDispatch drives every opcode through the
// block-dispatch engine next to the oracle interpreter, comparing the
// full architectural outcome (result, state, retired steps, error text)
// — the per-opcode analogue of the lockstep suite. The exhaustiveness
// check below forces a new opcode to get a dispatch case alongside its
// encode/decode case, keeping the two engines' opcode coverage in
// lockstep. The fused and unfused superinstruction forms are pinned by
// the dedicated tests in block_test.go (TestFusedCallRet,
// TestUnfusedCall, TestFusedFlagsJcc, TestJmpChainFolding); the jcc
// cases here additionally take both branch directions through the fused
// cmp+jcc path.
func TestOpcodeCoverageBlockDispatch(t *testing.T) {
	jccSrc := func(jcc string) string {
		return `
.func f
    cmpi r1, 5
    ` + jcc + ` .hit
    movi r0, 10
    ret
.hit:
    movi r0, 20
    ret
.endfunc
`
	}
	cases := []struct {
		ops     []Op
		src     string
		argSets [][]uint64
	}{
		{[]Op{OpNop, OpMovi, OpRet}, ".func f\nnop\nmovi r0, 1\nret\n.endfunc", [][]uint64{{}}},
		{[]Op{OpHlt}, ".func f\nhlt\n.endfunc", [][]uint64{{}}},
		{[]Op{OpTrap}, ".func f\ntrap 65\nret\n.endfunc", [][]uint64{{}}},
		{[]Op{OpCall}, `
.func callee
    add r1, r2
    mov r0, r1
    ret
.endfunc
.func f
    call callee
    ret
.endfunc
`, [][]uint64{{3, 4}}},
		{[]Op{OpJmp}, ".func f\njmp .x\nmovi r0, 1\nret\n.x:\nmovi r0, 2\nret\n.endfunc", [][]uint64{{}}},
		{[]Op{OpJz}, jccSrc("jz"), [][]uint64{{5}, {6}}},
		{[]Op{OpJnz}, jccSrc("jnz"), [][]uint64{{5}, {6}}},
		{[]Op{OpJl}, jccSrc("jl"), [][]uint64{{3}, {5}, {9}}},
		{[]Op{OpJge}, jccSrc("jge"), [][]uint64{{3}, {5}, {9}}},
		{[]Op{OpJle}, jccSrc("jle"), [][]uint64{{3}, {5}, {9}}},
		{[]Op{OpJg}, jccSrc("jg"), [][]uint64{{3}, {5}, {9}}},
		{[]Op{OpMov, OpAdd}, ".func f\nmov r0, r1\nadd r0, r2\nret\n.endfunc", [][]uint64{{3, 4}}},
		{[]Op{OpSub}, ".func f\nmov r0, r1\nsub r0, r2\nret\n.endfunc", [][]uint64{{9, 4}, {4, 9}}},
		{[]Op{OpMul}, ".func f\nmov r0, r1\nmul r0, r2\nret\n.endfunc", [][]uint64{{6, 7}}},
		{[]Op{OpDiv}, ".func f\nmov r0, r1\ndiv r0, r2\nret\n.endfunc", [][]uint64{{42, 6}, {42, 0}}},
		{[]Op{OpAnd}, ".func f\nmov r0, r1\nand r0, r2\nret\n.endfunc", [][]uint64{{0xff, 0x0f}}},
		{[]Op{OpOr}, ".func f\nmov r0, r1\nor r0, r2\nret\n.endfunc", [][]uint64{{0xf0, 0x0f}}},
		{[]Op{OpXor}, ".func f\nmov r0, r1\nxor r0, r2\nret\n.endfunc", [][]uint64{{0xff, 0xff}, {1, 2}}},
		{[]Op{OpShl}, ".func f\nmov r0, r1\nshl r0, r2\nret\n.endfunc", [][]uint64{{1, 8}, {1, 70}}},
		{[]Op{OpShr}, ".func f\nmov r0, r1\nshr r0, r2\nret\n.endfunc", [][]uint64{{256, 8}}},
		{[]Op{OpCmp}, `
.func f
    cmp r1, r2
    jz .eq
    movi r0, 1
    ret
.eq:
    movi r0, 2
    ret
.endfunc
`, [][]uint64{{4, 4}, {4, 5}}},
		{[]Op{OpCmpi}, jccSrc("jz"), [][]uint64{{5}, {4}}},
		{[]Op{OpAddi}, ".func f\nmov r0, r1\naddi r0, -1\nret\n.endfunc", [][]uint64{{10}, {0}}},
		{[]Op{OpSubi}, ".func f\nmov r0, r1\nsubi r0, 7\nret\n.endfunc", [][]uint64{{10}, {3}}},
		{[]Op{OpLoad, OpStore}, `
.func f
    store [sp-16], r1
    load r0, [sp-16]
    addi r0, 1
    ret
.endfunc
`, [][]uint64{{41}}},
		{[]Op{OpPush, OpPop}, ".func f\npush r1\npush r2\npop r0\npop r3\nadd r0, r3\nret\n.endfunc", [][]uint64{{5, 6}}},
		{[]Op{OpLoadg, OpStrg}, `
.global g 8
.func f
    storeg g, r1
    loadg r0, g
    addi r0, 2
    ret
.endfunc
`, [][]uint64{{7}}},
	}

	covered := map[Op]bool{}
	for _, tc := range cases {
		for _, op := range tc.ops {
			covered[op] = true
		}
		t.Run(tc.ops[0].Mnemonic(), func(t *testing.T) {
			img, oracle, e, stack := dualRig(t, tc.src, LinkOptions{})
			for _, args := range tc.argSets {
				callBoth(t, img, oracle, e, stack, "f", 1000, args...)
			}
		})
	}
	for b := 0; b < 256; b++ {
		op := Op(b)
		if op.Length() > 0 && !covered[op] {
			t.Errorf("opcode %#02x (%s) has no block-dispatch coverage case", b, op.Mnemonic())
		}
	}
}

// TestDecodeTruncated feeds every multi-byte opcode a prefix one byte
// short of its encoded length and expects the decoder to identify the
// truncation rather than read out of bounds.
func TestDecodeTruncated(t *testing.T) {
	full := map[Op][]byte{
		OpTrap:  MustEncode(Inst{Op: OpTrap, Imm: 3}),
		OpJmp:   MustEncode(Inst{Op: OpJmp, Imm: 100}),
		OpMovi:  MustEncode(Inst{Op: OpMovi, Dst: 1, Imm: 42}),
		OpAdd:   MustEncode(Inst{Op: OpAdd, Dst: 1, Src: 2}),
		OpAddi:  MustEncode(Inst{Op: OpAddi, Dst: 1, Imm: 42}),
		OpLoad:  MustEncode(Inst{Op: OpLoad, Dst: 1, Src: 2, Imm: 8}),
		OpPush:  MustEncode(Inst{Op: OpPush, Dst: 1}),
		OpLoadg: MustEncode(Inst{Op: OpLoadg, Dst: 1, Imm: 0x400000}),
	}
	for op, enc := range full {
		for cut := 1; cut < len(enc); cut++ {
			_, _, err := Decode(enc[:cut])
			if err == nil {
				t.Errorf("%s: decoding %d of %d bytes succeeded", op.Mnemonic(), cut, len(enc))
				continue
			}
			if !strings.Contains(err.Error(), "truncated instruction") {
				t.Errorf("%s truncated to %d bytes: error %q lacks truncation diagnosis",
					op.Mnemonic(), cut, err)
			}
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("decoding empty input succeeded")
	}
}

// TestDecodeBadOpcode checks that unassigned opcode bytes are rejected
// by Decode and located precisely by Disassemble.
func TestDecodeBadOpcode(t *testing.T) {
	for _, b := range []byte{0x00, 0x02, 0xFF, 0x80} {
		if Op(b).Length() != 0 {
			t.Fatalf("test assumes %#02x is unassigned", b)
		}
		_, _, err := Decode([]byte{b})
		if err == nil || !strings.Contains(err.Error(), "invalid opcode") {
			t.Errorf("Decode(%#02x) error = %v, want invalid opcode", b, err)
		}
	}

	// A bad byte mid-stream must be reported at its address, not the
	// base: two nops then garbage at base+2.
	code := append(MustEncode(Inst{Op: OpNop}, Inst{Op: OpNop}), 0xFF)
	_, err := Disassemble(code, 0x1000)
	if err == nil || !strings.Contains(err.Error(), "0x1002") {
		t.Errorf("Disassemble error = %v, want failure at 0x1002", err)
	}

	// Truncation mid-stream: a jmp missing its displacement tail.
	code = append(MustEncode(Inst{Op: OpRet}), byte(OpJmp), 0x01)
	_, err = Disassemble(code, 0x2000)
	if err == nil || !strings.Contains(err.Error(), "0x2001") ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("Disassemble error = %v, want truncation at 0x2001", err)
	}
}

// TestDisassembleRoundTrip re-encodes a disassembled stream and expects
// the original bytes, byte for byte — the property the in-SMM
// introspection pass relies on when verifying patched text.
func TestDisassembleRoundTrip(t *testing.T) {
	prog := MustEncode(
		Inst{Op: OpMovi, Dst: 0, Imm: 7},
		Inst{Op: OpPush, Dst: 0},
		Inst{Op: OpCall, Imm: 12},
		Inst{Op: OpPop, Dst: 1},
		Inst{Op: OpCmpi, Dst: 1, Imm: 7},
		Inst{Op: OpJnz, Imm: -20},
		Inst{Op: OpLoad, Dst: 2, Src: 1, Imm: 16},
		Inst{Op: OpStrg, Src: 2, Imm: 0x400200},
		Inst{Op: OpRet},
	)
	decoded, err := Disassemble(prog, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	var re []byte
	addr := uint64(0x400000)
	for _, d := range decoded {
		if d.Addr != addr {
			t.Errorf("instruction at %#x, want %#x", d.Addr, addr)
		}
		re, err = Encode(re, d.Inst)
		if err != nil {
			t.Fatal(err)
		}
		addr += uint64(d.Len)
	}
	if !bytes.Equal(re, prog) {
		t.Errorf("re-encoded stream differs:\n  got  % x\n  want % x", re, prog)
	}
	// Branch targets resolve relative to the *next* instruction.
	if tgt, ok := decoded[2].BranchTarget(); !ok || tgt != decoded[2].Addr+LenBranch+12 {
		t.Errorf("call target = %#x ok=%v", tgt, ok)
	}
}
