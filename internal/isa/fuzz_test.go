package isa

import (
	"bytes"
	"testing"
)

// FuzzAsmDisasmRoundTrip feeds arbitrary byte streams to the
// disassembler. The contract under fuzzing:
//
//   - Disassemble never panics, whatever the input;
//   - a rejected stream is simply rejected (corruption detection is
//     the point of linear disassembly in the introspection checks);
//   - an accepted stream re-encodes byte-for-byte: Encode(Decode(b))
//     == b for every instruction, so the assembler and disassembler
//     agree on one canonical encoding per instruction.
func FuzzAsmDisasmRoundTrip(f *testing.F) {
	f.Add([]byte{byte(OpNop)})
	f.Add([]byte{0xFF, 0x00, 0x12}) // invalid opcode
	f.Add(EncodeJmpRel32(-5))       // tight self-loop trampoline
	f.Add(MustEncode(
		Inst{Op: OpMovi, Dst: 1, Imm: 0x1234_5678_9abc},
		Inst{Op: OpAdd, Dst: 1, Src: 2},
		Inst{Op: OpCmpi, Dst: 1, Imm: -7},
		Inst{Op: OpJnz, Imm: -19},
		Inst{Op: OpRet},
	))
	f.Add(MustEncode(
		Inst{Op: OpLoadg, Dst: 0, Imm: 0x8000},
		Inst{Op: OpStore, Dst: 2, Src: 3, Imm: 16},
		Inst{Op: OpTrap, Imm: 255},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x40_0000
		decoded, err := Disassemble(data, base)
		if err != nil {
			return
		}
		var out []byte
		addr := uint64(base)
		for _, d := range decoded {
			if d.Addr != addr {
				t.Fatalf("instruction at %#x, want %#x (stream must be gapless)", d.Addr, addr)
			}
			if d.Len != d.Inst.Op.Length() {
				t.Fatalf("%s decoded with length %d, opcode table says %d",
					d.Inst.Op.Mnemonic(), d.Len, d.Inst.Op.Length())
			}
			out, err = Encode(out, d.Inst)
			if err != nil {
				t.Fatalf("decoded instruction %+v rejected by Encode: %v", d.Inst, err)
			}
			addr += uint64(d.Len)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data, out)
		}
	})
}
