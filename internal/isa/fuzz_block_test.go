package isa

import (
	"errors"
	"testing"

	"kshot/internal/mem"
)

// FuzzBlockDecode feeds arbitrary byte streams to the block decoder,
// mapped as kernel text. The contract under fuzzing:
//
//   - decodeBlock never panics and never reads past what Fetch allows;
//   - a decoded block's per-instruction expansion (Block.Instructions)
//     is exactly the linear decode disasm.go/Step would perform over
//     the same bytes — same instructions, same lengths, gapless, and
//     ending exactly at Block.End();
//   - executing the stream under the block engine is observationally
//     identical to the oracle interpreter: the lockstep runner drives
//     both over the same memory and fails on any state, step-count,
//     error, or memory divergence.
func FuzzBlockDecode(f *testing.F) {
	// Straight line, ALU + flags.
	f.Add(MustEncode(
		Inst{Op: OpMovi, Dst: 1, Imm: 7},
		Inst{Op: OpAddi, Dst: 1, Imm: 3},
		Inst{Op: OpRet},
	))
	// Fused cmp+jcc pair, taken backwards (a loop).
	f.Add(MustEncode(
		Inst{Op: OpMovi, Dst: 1, Imm: 3},
		Inst{Op: OpSubi, Dst: 1, Imm: 1},
		Inst{Op: OpJnz, Imm: -(LenRegImm + LenBranch)},
		Inst{Op: OpRet},
	))
	// Ftrace-prologue shape: call whose callee is a bare ret.
	f.Add(MustEncode(
		Inst{Op: OpCall, Imm: LenRet},
		Inst{Op: OpRet},
		Inst{Op: OpRet},
	))
	// Trampoline chain: jmp -> jmp -> body.
	f.Add(MustEncode(
		Inst{Op: OpJmp, Imm: LenBranch},
		Inst{Op: OpJmp, Imm: LenBranch},
		Inst{Op: OpJmp, Imm: -(2 * LenBranch)},
		Inst{Op: OpMovi, Dst: 0, Imm: 1},
		Inst{Op: OpRet},
	))
	// Memory traffic + trap terminator.
	f.Add(MustEncode(
		Inst{Op: OpPush, Dst: 1},
		Inst{Op: OpPop, Dst: 2},
		Inst{Op: OpStore, Dst: 15, Src: 2, Imm: -64},
		Inst{Op: OpLoad, Dst: 0, Src: 15, Imm: -64},
		Inst{Op: OpTrap, Imm: 7},
	))
	// Invalid opcode mid-stream: block must end cleanly before it.
	f.Add(append(MustEncode(Inst{Op: OpNop}, Inst{Op: OpNop}), 0xFF, 0x00))
	// Truncated tail: movi missing most of its immediate.
	f.Add(append(MustEncode(Inst{Op: OpNop}), byte(OpMovi), 0x01, 0x02))

	const (
		textBase = uint64(0x10000)
		dataBase = uint64(0x80000)
		stackTop = uint64(0x90000 + 0x1000)
	)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 2048 {
			return
		}
		m := mem.New(1 << 20)
		if _, err := m.Map("text", textBase, uint64(len(data)), mem.Perms{Kernel: mem.PermRX, SMM: mem.PermRWX}); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(mem.PrivSMM, textBase, data); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Map("data", dataBase, 0x1000, mem.Perms{Kernel: mem.PermRW}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Map("stack", 0x90000, 0x1000, mem.Perms{Kernel: mem.PermRW}); err != nil {
			t.Fatal(err)
		}

		// Structural check: the block's expansion is the linear decode.
		c := New(m, mem.PrivKernel)
		e := NewEngine(c)
		if b := e.decodeBlock(textBase); b != nil {
			if b.Start() != textBase {
				t.Fatalf("block starts at %#x, want %#x", b.Start(), textBase)
			}
			insts := b.Instructions()
			if len(insts) == 0 || len(insts) > blockCap {
				t.Fatalf("block has %d instructions (cap %d)", len(insts), blockCap)
			}
			addr := textBase
			for i, d := range insts {
				off := addr - textBase
				inst, n, err := Decode(data[off:])
				if err != nil {
					t.Fatalf("instruction %d at %#x: block decoded what Decode rejects: %v", i, addr, err)
				}
				if d.Addr != addr || d.Inst != inst || d.Len != n {
					t.Fatalf("instruction %d: block %+v (addr %#x len %d), linear decode %+v (addr %#x len %d)",
						i, d.Inst, d.Addr, d.Len, inst, addr, n)
				}
				addr += uint64(n)
			}
			if b.End() != addr {
				t.Fatalf("block end %#x, instructions end at %#x", b.End(), addr)
			}
		}

		// Behavioral check: run the stream under differential lockstep.
		// Every unit executes under both engines on the same memory; any
		// divergence is fatal. Other errors (faults, invalid opcodes,
		// traps) are legitimate outcomes of arbitrary code.
		lc := New(m, mem.PrivKernel)
		lc.Reg[RegSP] = stackTop - 8
		if err := lc.M.WriteU64(mem.PrivKernel, lc.Reg[RegSP], StopAddr); err != nil {
			t.Fatal(err)
		}
		lc.Reg[1] = dataBase
		lc.RIP = textBase
		ls := NewLockstep(lc)
		for unit := 0; unit < 64 && !lc.Done(); unit++ {
			_, err := ls.RunUnit(32)
			if err == nil {
				continue
			}
			var div *DivergenceError
			if errors.As(err, &div) {
				t.Fatalf("engines diverge on %x: %v", data, div)
			}
			break
		}
	})
}
