package isa

import (
	"errors"
	"testing"

	"kshot/internal/mem"
)

// testMachine loads an image into fresh physical memory with standard
// kernel-style permissions and returns a kernel-privilege CPU plus the
// stack top.
func testMachine(t *testing.T, img *Image) (*CPU, uint64) {
	t.Helper()
	m := mem.New(16 << 20)
	mustMapImage(t, m, img)
	if _, err := m.Map("stack", 1<<20, 64<<10, mem.Perms{Kernel: mem.PermRW, SMM: mem.PermRW}); err != nil {
		t.Fatal(err)
	}
	return New(m, mem.PrivKernel), 1<<20 + 64<<10
}

func mustMapImage(t *testing.T, m *mem.Physical, img *Image) {
	t.Helper()
	if _, err := m.Map("text", img.TextBase, uint64(len(img.Text)), mem.Perms{Kernel: mem.PermRX, SMM: mem.PermRWX}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(mem.PrivSMM, img.TextBase, img.Text); err != nil {
		t.Fatal(err)
	}
	dataLen := uint64(len(img.Data))
	if dataLen == 0 {
		dataLen = 8
	}
	if _, err := m.Map("data", img.DataBase, dataLen, mem.Perms{Kernel: mem.PermRW, SMM: mem.PermRWX}); err != nil {
		t.Fatal(err)
	}
	if len(img.Data) > 0 {
		if err := m.Write(mem.PrivSMM, img.DataBase, img.Data); err != nil {
			t.Fatal(err)
		}
	}
}

func linkAndRun(t *testing.T, src, fn string, args ...uint64) (uint64, error) {
	t.Helper()
	img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	cpu, stack := testMachine(t, img)
	sym, ok := img.Symbols.Lookup(fn)
	if !ok {
		t.Fatalf("no function %q", fn)
	}
	return cpu.Call(sym.Addr, stack, 100000, args...)
}

func TestArithmetic(t *testing.T) {
	src := `
.func compute
    mov r0, r1
    add r0, r2
    movi r3, 10
    mul r0, r3
    subi r0, 5
    ret
.endfunc
`
	got, err := linkAndRun(t, src, "compute", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64((3+4)*10 - 5); got != want {
		t.Errorf("compute = %d, want %d", got, want)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// sum 1..n via loop
	src := `
.func sum
    movi r0, 0
.loop:
    cmpi r1, 0
    jz .done
    add r0, r1
    subi r1, 1
    jmp .loop
.done:
    ret
.endfunc
`
	got, err := linkAndRun(t, src, "sum", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("sum(10) = %d, want 55", got)
	}
}

func TestConditionals(t *testing.T) {
	src := `
.func sign     ; returns 1 if r1>5, 2 if <5, 3 if ==5 (unsigned-ish small values)
    cmpi r1, 5
    jg .gt
    jl .lt
    movi r0, 3
    ret
.gt:
    movi r0, 1
    ret
.lt:
    movi r0, 2
    ret
.endfunc
`
	cases := map[uint64]uint64{7: 1, 2: 2, 5: 3}
	for in, want := range cases {
		got, err := linkAndRun(t, src, "sign", in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("sign(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCallsAndStack(t *testing.T) {
	src := `
.func double
    add r1, r1
    mov r0, r1
    ret
.endfunc
.func quad
    push r1
    call double
    mov r1, r0
    call double
    pop r1
    ret
.endfunc
`
	got, err := linkAndRun(t, src, "quad", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("quad(5) = %d, want 20", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
.global counter 8
.func bump
    loadg r0, counter
    addi r0, 1
    storeg counter, r0
    ret
.endfunc
`
	img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		t.Fatal(err)
	}
	cpu, stack := testMachine(t, img)
	sym, _ := img.Symbols.Lookup("bump")
	for i := 0; i < 3; i++ {
		if _, err := cpu.Call(sym.Addr, stack, 1000); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := img.Symbols.Lookup("counter")
	v, err := cpu.M.ReadU64(mem.PrivKernel, g.Addr)
	if err != nil || v != 3 {
		t.Errorf("counter = %d, %v; want 3", v, err)
	}
}

func TestLoadStoreDisplacement(t *testing.T) {
	src := `
.global arr 32
.func swap01      ; swap arr[0], arr[1] given r1 = &arr
    load r2, [r1]
    load r3, [r1+8]
    store [r1], r3
    store [r1+8], r2
    ret
.endfunc
`
	img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	if err != nil {
		t.Fatal(err)
	}
	cpu, stack := testMachine(t, img)
	arr, _ := img.Symbols.Lookup("arr")
	if err := cpu.M.WriteU64(mem.PrivKernel, arr.Addr, 111); err != nil {
		t.Fatal(err)
	}
	if err := cpu.M.WriteU64(mem.PrivKernel, arr.Addr+8, 222); err != nil {
		t.Fatal(err)
	}
	f, _ := img.Symbols.Lookup("swap01")
	if _, err := cpu.Call(f.Addr, stack, 1000, arr.Addr); err != nil {
		t.Fatal(err)
	}
	a, _ := cpu.M.ReadU64(mem.PrivKernel, arr.Addr)
	b, _ := cpu.M.ReadU64(mem.PrivKernel, arr.Addr+8)
	if a != 222 || b != 111 {
		t.Errorf("after swap: %d, %d", a, b)
	}
}

func TestTrap(t *testing.T) {
	_, err := linkAndRun(t, ".func boom\ntrap 42\nret\n.endfunc", "boom")
	var te *TrapError
	if !errors.As(err, &te) || te.Code != 42 {
		t.Fatalf("want trap 42, got %v", err)
	}
}

func TestDivideByZero(t *testing.T) {
	_, err := linkAndRun(t, ".func d\nmovi r2, 0\ndiv r1, r2\nret\n.endfunc", "d", 10)
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("want exec error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	src := ".func spin\n.l:\njmp .l\n.endfunc"
	img, _ := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	cpu, stack := testMachine(t, img)
	sym, _ := img.Symbols.Lookup("spin")
	_, err := cpu.Call(sym.Addr, stack, 100)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
}

func TestExecutePermissionEnforced(t *testing.T) {
	// Executing from a region without X faults: simulate the kernel
	// trying to execute from its RW data region.
	img, _ := Link(MustParse(".func f\nret\n.endfunc"), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	cpu, stack := testMachine(t, img)
	cpu.Reg[RegSP] = stack
	if err := cpu.push(StopAddr); err != nil {
		t.Fatal(err)
	}
	cpu.RIP = 0x80000 // data region: kernel RW but not X
	err := cpu.Step()
	var f *mem.Fault
	if !errors.As(err, &f) || f.Access != mem.Execute {
		t.Fatalf("want execute fault, got %v", err)
	}
}

func TestCallTooManyArgs(t *testing.T) {
	img, _ := Link(MustParse(".func f\nret\n.endfunc"), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	cpu, stack := testMachine(t, img)
	sym, _ := img.Symbols.Lookup("f")
	if _, err := cpu.Call(sym.Addr, stack, 100, 1, 2, 3, 4, 5, 6); err == nil {
		t.Error("six arguments accepted")
	}
}

func TestShiftAndLogic(t *testing.T) {
	src := `
.func f
    movi r2, 4
    shl r1, r2     ; r1 <<= 4
    movi r3, 0xf0
    and r1, r3
    movi r4, 1
    or r1, r4
    mov r0, r1
    movi r5, 2
    shr r0, r5     ; >>= 2
    ret
.endfunc
`
	got, err := linkAndRun(t, src, "f", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := ((uint64(7)<<4)&0xf0 | 1) >> 2
	if got != want {
		t.Errorf("f(7) = %d, want %d", got, want)
	}
}

func TestXorZeroFlag(t *testing.T) {
	src := `
.func f
    mov r2, r1
    xor r1, r2    ; r1 = 0, ZF set
    jz .ok
    movi r0, 99
    ret
.ok:
    movi r0, 1
    ret
.endfunc
`
	got, err := linkAndRun(t, src, "f", 12345)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("xor did not set ZF (got %d)", got)
	}
}

func TestSaveRestoreState(t *testing.T) {
	img, _ := Link(MustParse(".func f\nmovi r1, 9\nret\n.endfunc"), LinkOptions{TextBase: 0x10000, DataBase: 0x80000})
	cpu, _ := testMachine(t, img)
	cpu.Reg[3] = 77
	cpu.RIP = 0x1234
	cpu.ZF = true
	s := cpu.Save()
	cpu.Reg[3] = 0
	cpu.RIP = 0
	cpu.ZF = false
	cpu.Restore(s)
	if cpu.Reg[3] != 77 || cpu.RIP != 0x1234 || !cpu.ZF {
		t.Error("state not restored")
	}
}

func TestInlinedExecutionMatchesCalled(t *testing.T) {
	// The same source linked with and without inlining must compute the
	// same results — the property that makes Type 2 patching sound.
	src := `
.func classify inline
    cmpi r1, 100
    jg .big
    movi r0, 1
    jmp .end
.big:
    movi r0, 2
.end:
    ret
.endfunc
.func top
    call classify
    addi r0, 10
    ret
.endfunc
`
	for _, inline := range []bool{false, true} {
		img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000, Inline: inline})
		if err != nil {
			t.Fatal(err)
		}
		cpu, stack := testMachine(t, img)
		sym, _ := img.Symbols.Lookup("top")
		for in, want := range map[uint64]uint64{5: 11, 500: 12} {
			got, err := cpu.Call(sym.Addr, stack, 1000, in)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("inline=%v top(%d) = %d, want %d", inline, in, got, want)
			}
		}
	}
}

func TestFtraceExecutionTransparent(t *testing.T) {
	// Traced functions execute through __fentry__ and still work.
	src := ".func f\nmovi r0, 5\nret\n.endfunc"
	img, err := Link(MustParse(src), LinkOptions{TextBase: 0x10000, DataBase: 0x80000, Ftrace: true})
	if err != nil {
		t.Fatal(err)
	}
	cpu, stack := testMachine(t, img)
	sym, _ := img.Symbols.Lookup("f")
	got, err := cpu.Call(sym.Addr, stack, 1000)
	if err != nil || got != 5 {
		t.Fatalf("traced f() = %d, %v", got, err)
	}
}
