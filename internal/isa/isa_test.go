package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var allOps = []Op{
	OpNop, OpRet, OpHlt, OpTrap, OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge,
	OpJle, OpJg, OpMovi, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr,
	OpXor, OpShl, OpShr, OpCmp, OpCmpi, OpAddi, OpSubi, OpLoad, OpStore,
	OpPush, OpPop, OpLoadg, OpStrg,
}

func TestOpcodeBytesUnique(t *testing.T) {
	seen := map[Op]bool{}
	for _, op := range allOps {
		if seen[op] {
			t.Errorf("opcode byte %#02x reused", byte(op))
		}
		seen[op] = true
		if op.Length() == 0 {
			t.Errorf("op %s has zero length", op.Mnemonic())
		}
	}
}

func TestBranchEncodingIsFiveBytes(t *testing.T) {
	// The paper's trampoline math depends on 5-byte jmp/call rel32.
	for _, op := range []Op{OpJmp, OpCall, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg} {
		if op.Length() != 5 {
			t.Errorf("%s length = %d, want 5", op.Mnemonic(), op.Length())
		}
	}
	b := EncodeJmpRel32(-32)
	if len(b) != 5 || b[0] != 0xE9 {
		t.Errorf("EncodeJmpRel32 = % x", b)
	}
}

func randInst(r *rand.Rand) Inst {
	op := allOps[r.Intn(len(allOps))]
	inst := Inst{Op: op, Dst: uint8(r.Intn(NumRegs)), Src: uint8(r.Intn(NumRegs))}
	switch op {
	case OpTrap:
		inst.Imm = int64(r.Intn(256))
		inst.Dst, inst.Src = 0, 0
	case OpCall, OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg:
		inst.Imm = int64(int32(r.Uint32()))
		inst.Dst, inst.Src = 0, 0
	case OpMovi, OpLoadg:
		inst.Imm = int64(r.Uint64())
		inst.Src = 0
	case OpStrg:
		inst.Imm = int64(r.Uint64())
		inst.Dst = 0
	case OpCmpi, OpAddi, OpSubi:
		inst.Imm = int64(int32(r.Uint32()))
		inst.Src = 0
	case OpLoad, OpStore:
		inst.Imm = int64(int32(r.Uint32()))
	case OpPush, OpPop:
		inst.Src = 0
	case OpNop, OpRet, OpHlt:
		inst.Dst, inst.Src = 0, 0
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		// both registers used
	}
	return inst
}

// Property: decode(encode(i)) == i for every instruction.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randInst(r)
		b, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		if len(b) != in.Op.Length() {
			t.Fatalf("encode %s: %d bytes, want %d", in.Op.Mnemonic(), len(b), in.Op.Length())
		}
		out, n, err := Decode(b)
		if err != nil {
			t.Fatalf("decode % x: %v", b, err)
		}
		if n != len(b) || out != in {
			t.Fatalf("round trip: %v -> % x -> %v", in, b, out)
		}
	}
}

// Property: disassembling an encoded stream recovers the stream.
func TestQuickDisassembleRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(count%32) + 1
		insts := make([]Inst, n)
		var code []byte
		for i := range insts {
			insts[i] = randInst(r)
			var err error
			code, err = Encode(code, insts[i])
			if err != nil {
				return false
			}
		}
		dec, err := Disassemble(code, 0x1000)
		if err != nil || len(dec) != n {
			return false
		}
		for i, d := range dec {
			if d.Inst != insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("decode of empty input succeeded")
	}
	if _, _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("decode of invalid opcode succeeded")
	}
	if _, _, err := Decode([]byte{byte(OpJmp), 1, 2}); err == nil {
		t.Error("decode of truncated jmp succeeded")
	}
	if _, _, err := Decode([]byte{byte(OpMov), 99, 0}); err == nil {
		t.Error("decode with out-of-range register succeeded")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(nil, Inst{Op: Op(0xFF)}); err == nil {
		t.Error("encode invalid opcode succeeded")
	}
	if _, err := Encode(nil, Inst{Op: OpMov, Dst: 200}); err == nil {
		t.Error("encode out-of-range register succeeded")
	}
	if _, err := Encode(nil, Inst{Op: OpJmp, Imm: 1 << 40}); err == nil {
		t.Error("encode oversized rel32 succeeded")
	}
	if _, err := Encode(nil, Inst{Op: OpTrap, Imm: 999}); err == nil {
		t.Error("encode oversized trap code succeeded")
	}
}

func TestJmpRel32To(t *testing.T) {
	rel, err := JmpRel32To(0x1000, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(0x1000) + 5 + int64(rel); got != 0x2000 {
		t.Errorf("target = %#x, want 0x2000", got)
	}
	rel, err = JmpRel32To(0x2000, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(0x2000) + 5 + int64(rel); got != 0x1000 {
		t.Errorf("backward target = %#x, want 0x1000", got)
	}
	if _, err := JmpRel32To(0, 1<<40); err == nil {
		t.Error("oversized displacement accepted")
	}
}

func TestInstStringAllForms(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		in := randInst(r)
		if in.String() == "" {
			t.Fatalf("empty String for %v", in)
		}
	}
	if (Inst{Op: OpLoad, Dst: 1, Src: 2, Imm: -8}).String() != "load r1, [r2-8]" {
		t.Errorf("load string: %s", Inst{Op: OpLoad, Dst: 1, Src: 2, Imm: -8}.String())
	}
	if (Inst{Op: OpMov, Dst: RegSP, Src: 0}).String() != "mov sp, r0" {
		t.Error("sp alias not rendered")
	}
}
